package exact

import (
	"runtime"
	"sync"

	"repro/internal/graph"
)

// ThreeNodeCounts returns the induced 3-node graphlet counts
// [wedges, triangles] using degree sums and per-edge common-neighbor
// intersection — a single pass over edges, parallelized.
func ThreeNodeCounts(g *graph.Graph) []int64 {
	tri := Triangles(g)
	var wedgesNonInduced int64
	for v := 0; v < g.NumNodes(); v++ {
		d := int64(g.Degree(int32(v)))
		wedgesNonInduced += d * (d - 1) / 2
	}
	// Every triangle contains 3 non-induced wedges.
	return []int64{wedgesNonInduced - 3*tri, tri}
}

// Triangles returns the number of triangles in g.
func Triangles(g *graph.Graph) int64 {
	var total int64
	var mu sync.Mutex
	parallelNodes(g.NumNodes(), func(lo, hi int32) {
		var local int64
		for u := lo; u < hi; u++ {
			for _, v := range g.Neighbors(u) {
				if v > u {
					local += int64(g.CommonNeighbors(u, v))
				}
			}
		}
		mu.Lock()
		total += local
		mu.Unlock()
	})
	return total / 3
}

// GlobalClusteringCoefficient returns 3·C₂³/(C₁³ + 3·C₂³) = 3c₂³/(2c₂³+1),
// the quantity §2.1 derives from the triangle concentration.
func GlobalClusteringCoefficient(g *graph.Graph) float64 {
	c := ThreeNodeCounts(g)
	den := float64(c[0]) + 3*float64(c[1])
	if den == 0 {
		return 0
	}
	return 3 * float64(c[1]) / den
}

// FourNodeCounts returns the induced 4-node graphlet counts in paper order
// (4-path, 3-star, 4-cycle, tailed-triangle, chordal-cycle, 4-clique) via
// non-induced pattern counting and the standard linear transform. It is much
// faster than enumeration on large sparse graphs and is cross-checked
// against CountESU in the tests.
func FourNodeCounts(g *graph.Graph) []int64 {
	n := g.NumNodes()

	// Per-node degrees, per-edge triangle counts.
	var (
		mu        sync.Mutex
		triEdge   = make(map[int64]int64) // edge key -> common neighbors
		nTriTotal int64
	)
	key := func(u, v int32) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)<<32 | int64(v)
	}
	parallelNodes(n, func(lo, hi int32) {
		local := make(map[int64]int64)
		var localTri int64
		for u := lo; u < hi; u++ {
			for _, v := range g.Neighbors(u) {
				if v > u {
					c := int64(g.CommonNeighbors(u, v))
					if c > 0 {
						local[key(u, v)] = c
					}
					localTri += c
				}
			}
		}
		mu.Lock()
		for k, c := range local {
			triEdge[k] = c
		}
		nTriTotal += localTri
		mu.Unlock()
	})
	T := nTriTotal / 3 // triangles

	// Non-induced pattern counts.
	var nPath, nStar, nTailed, nDiamond, nCycle, nK4 int64

	// Stars: Σ C(d,3); contribution of degrees to paths below.
	for v := 0; v < n; v++ {
		d := int64(g.Degree(int32(v)))
		nStar += d * (d - 1) * (d - 2) / 6
	}
	// Paths: Σ_(u,v)∈E (du-1)(dv-1) - 3T.
	g.Edges(func(u, v int32) bool {
		nPath += int64(g.Degree(u)-1) * int64(g.Degree(v)-1)
		return true
	})
	nPath -= 3 * T

	// Tailed triangles: Σ_triangles (da+db+dc-6) = Σ_e tri(e)·(du+dv-4)/... —
	// computed per edge: each triangle {u,v,w} is seen by its three edges;
	// summing tri(e)·(du+dv-4) over edges counts (du+dv-4)+(du+dw-4)+(dv+dw-4)
	// = 2(du+dv+dw)-12 per triangle, i.e. twice the tail count.
	var tailedTwice int64
	g.Edges(func(u, v int32) bool {
		if c, ok := triEdge[key(u, v)]; ok {
			tailedTwice += c * int64(g.Degree(u)+g.Degree(v)-4)
		}
		return true
	})
	nTailed = tailedTwice / 2

	// Diamonds: Σ_e C(tri(e), 2).
	for _, c := range triEdge {
		nDiamond += c * (c - 1) / 2
	}

	// 4-cycles: ½ Σ_{u<v} C(codeg(u,v), 2) over all node pairs. Computed by
	// wedge aggregation: for each center w and pair of its neighbors (u,v),
	// increment codeg(u,v); equivalently Σ_pairs C(codeg,2) = Σ_pairs pairs
	// of distinct centers = # of 4-node "bi-wedges". We count via hashed
	// codegree accumulation per node to stay near O(Σ d²).
	nCycle = fourCycles(g)

	// K4: for each edge, count edges among the common neighborhood; each K4
	// counted once per its 6 edges.
	var k4Six int64
	var mu2 sync.Mutex
	parallelNodes(n, func(lo, hi int32) {
		var local int64
		var buf []int32
		for u := lo; u < hi; u++ {
			for _, v := range g.Neighbors(u) {
				if v <= u {
					continue
				}
				buf = g.CommonNeighborsInto(buf[:0], u, v)
				for i := 0; i < len(buf); i++ {
					for j := i + 1; j < len(buf); j++ {
						if g.HasEdge(buf[i], buf[j]) {
							local++
						}
					}
				}
			}
		}
		mu2.Lock()
		k4Six += local
		mu2.Unlock()
	})
	nK4 = k4Six / 6

	// Invert the non-induced -> induced linear system (bottom-up).
	k4 := nK4
	dm := nDiamond - 6*k4
	tt := nTailed - 4*dm - 12*k4
	c4 := nCycle - dm - 3*k4
	st := nStar - tt - 2*dm - 4*k4
	p4 := nPath - 2*tt - 4*c4 - 6*dm - 12*k4
	return []int64{p4, st, c4, tt, dm, k4}
}

// fourCycles counts non-induced 4-cycles as
// ¼ Σ_u Σ_{x≠u} C(paths2(u,x), 2), where paths2(u,x) is the number of
// length-2 paths from u to x: every cycle u-v-x-w is counted once at each of
// its four corners. Each worker owns a node range and a dense length-2
// counter with a touched list, so the computation is exact and O(Σ_v d_v²).
func fourCycles(g *graph.Graph) int64 {
	n := g.NumNodes()
	var total int64
	var mu sync.Mutex
	parallelNodes(n, func(lo, hi int32) {
		l2 := make([]int32, n)
		var touched []int32
		var local int64
		for u := lo; u < hi; u++ {
			touched = touched[:0]
			for _, v := range g.Neighbors(u) {
				for _, x := range g.Neighbors(v) {
					if x == u {
						continue
					}
					if l2[x] == 0 {
						touched = append(touched, x)
					}
					l2[x]++
				}
			}
			for _, x := range touched {
				c := int64(l2[x])
				local += c * (c - 1) / 2
				l2[x] = 0
			}
		}
		mu.Lock()
		total += local
		mu.Unlock()
	})
	return total / 4
}

// parallelNodes runs fn over [0,n) split into contiguous chunks on all CPUs.
func parallelNodes(n int, fn func(lo, hi int32)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, int32(n))
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int32) {
			defer wg.Done()
			fn(lo, hi)
		}(int32(lo), int32(hi))
	}
	wg.Wait()
}
