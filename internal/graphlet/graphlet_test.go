package graphlet

import (
	"fmt"
	"testing"
)

func TestCatalogSizes(t *testing.T) {
	want := map[int]int{3: 2, 4: 6, 5: 21}
	for k, n := range want {
		if got := Count(k); got != n {
			t.Errorf("Count(%d) = %d, want %d", k, got, n)
		}
	}
}

func TestCatalogIDsAndSanity(t *testing.T) {
	for k := 3; k <= 5; k++ {
		seen := map[uint16]bool{}
		for i, g := range Catalog(k) {
			if g.ID != i+1 {
				t.Errorf("k=%d index %d has ID %d", k, i, g.ID)
			}
			if g.K != k {
				t.Errorf("k=%d id=%d has K=%d", k, g.ID, g.K)
			}
			if seen[g.Code] {
				t.Errorf("k=%d id=%d duplicate canonical code %d", k, g.ID, g.Code)
			}
			seen[g.Code] = true
			if g.Edges < k-1 || g.Edges > k*(k-1)/2 {
				t.Errorf("k=%d id=%d edge count %d out of range", k, g.ID, g.Edges)
			}
			sum := 0
			for _, d := range g.DegSeq {
				sum += d
			}
			if sum != 2*g.Edges {
				t.Errorf("k=%d id=%d degree sum %d != 2*edges %d", k, g.ID, sum, 2*g.Edges)
			}
		}
	}
}

// TestAlphaTable2 checks the computed α against the paper's Table 2
// (3- and 4-node graphlets under SRW(1..3)).
func TestAlphaTable2(t *testing.T) {
	for d := 1; d <= 3; d++ {
		for i, half := range PaperTable2ThreeAlpha[d] {
			if got := Alpha(3, d, i+1); got != half {
				t.Errorf("alpha(k=3, d=%d, g3_%d) = %d, want %d", d, i+1, got, half)
			}
		}
	}
	for d := 1; d <= 3; d++ {
		for i, half := range PaperTable2Four[d] {
			if got := Alpha(4, d, i+1); got != 2*half {
				t.Errorf("alpha(k=4, d=%d, g4_%d) = %d, want %d", d, i+1, got, 2*half)
			}
		}
	}
	// d = k = 4: l = 1, α = 1 for every graphlet.
	for i := 1; i <= 6; i++ {
		if got := Alpha(4, 4, i); got != 1 {
			t.Errorf("alpha(k=4, d=4, g4_%d) = %d, want 1", i, got)
		}
	}
}

// TestAlphaTable3 checks the computed α against the paper's Table 3
// (all 21 5-node graphlets under SRW(1..4)). Because the catalog order is
// derived from this very table, the test would fail loudly at init (panic)
// if the matching were not a bijection; here we re-verify the values.
func TestAlphaTable3(t *testing.T) {
	errata := map[int]bool{}
	for _, id := range Table3SRW4Errata {
		errata[id] = true
	}
	for d := 1; d <= 4; d++ {
		for i, half := range PaperTable3Five[d] {
			want := 2 * half
			if d == 4 && errata[i+1] {
				// Published value is 2x the Appendix-B closed form; see
				// the PaperTable3Five doc comment.
				want = half
			}
			if got := Alpha(5, d, i+1); got != want {
				t.Errorf("alpha(k=5, d=%d, g5_%d) = %d, want %d", d, i+1, got, want)
			}
		}
	}
	for i := 1; i <= 21; i++ {
		if got := Alpha(5, 5, i); got != 1 {
			t.Errorf("alpha(k=5, d=5, g5_%d) = %d, want 1", i, got)
		}
	}
}

// TestAlphaSRW1IsHamiltonPaths verifies the paper's observation that α under
// SRW(1) is twice the number of undirected Hamiltonian paths.
func TestAlphaSRW1IsHamiltonPaths(t *testing.T) {
	// Known Hamiltonian path counts.
	cases := []struct {
		k, id int
		paths int64
	}{
		{3, 1, 1}, {3, 2, 3},
		{4, 1, 1}, {4, 2, 0}, {4, 3, 4}, {4, 6, 12},
		{5, 7, 5},   // 5-cycle
		{5, 21, 60}, // 5-clique: 5!/2
	}
	for _, c := range cases {
		if got := ByID(c.k, c.id).HamiltonPaths(); got != c.paths {
			t.Errorf("HamiltonPaths(g%d_%d) = %d, want %d", c.k, c.id, got, c.paths)
		}
	}
}

// TestAlphaPSRWFormula verifies the closed form for d = k-1 (PSRW):
// α = |S|·(|S|-1) where S is the set of connected (k-1)-node subgraphs,
// since any two (k-1)-subsets of a k-set share k-2 nodes.
func TestAlphaPSRWFormula(t *testing.T) {
	for k := 3; k <= 5; k++ {
		for _, g := range Catalog(k) {
			s := int64(len(connectedSubsets(k, k-1, func(i, j int) bool { return g.Adj[i][j] })))
			want := s * (s - 1)
			if got := g.Alpha[k-1]; got != want {
				t.Errorf("k=%d id=%d: alpha[d=k-1] = %d, want |S|(|S|-1) = %d", k, g.ID, got, want)
			}
		}
	}
}

func TestClassifyCodeAllCodes(t *testing.T) {
	for k := 3; k <= 5; k++ {
		nb := k * (k - 1) / 2
		connected, disconnected := 0, 0
		for code := 0; code < 1<<uint(nb); code++ {
			idx := ClassifyCode(k, uint16(code))
			if idx == -1 {
				disconnected++
				continue
			}
			connected++
			if idx < 0 || idx >= Count(k) {
				t.Fatalf("k=%d code=%d: bad class %d", k, code, idx)
			}
		}
		if connected+disconnected != 1<<uint(nb) {
			t.Fatalf("k=%d: classification table incomplete", k)
		}
		if connected == 0 {
			t.Fatalf("k=%d: no connected codes", k)
		}
	}
}

// TestClassifyMatchesCanonical verifies that every code classifies to the
// graphlet with the same canonical code.
func TestClassifyMatchesCanonical(t *testing.T) {
	for k := 3; k <= 5; k++ {
		info := ki(k)
		for code := 0; code < len(info.classify); code++ {
			idx := info.classify[code]
			if idx < 0 {
				continue
			}
			cc := canonicalCode(info, uint16(code))
			if cc != info.catalog[idx].Code {
				t.Fatalf("k=%d code=%d: classified as %s but canonical %d != %d",
					k, code, info.catalog[idx].Name, cc, info.catalog[idx].Code)
			}
		}
	}
}

// TestClassifyInvariantUnderRelabeling: classification must be identical for
// all permuted encodings of the same subgraph.
func TestClassifyInvariantUnderRelabeling(t *testing.T) {
	for k := 3; k <= 5; k++ {
		for _, g := range Catalog(k) {
			want := g.ID - 1
			for _, perm := range permutations(k) {
				code := CodeOf(k, func(i, j int) bool { return g.Adj[perm[i]][perm[j]] })
				if got := ClassifyCode(k, code); got != want {
					t.Fatalf("k=%d %s perm %v: classified %d, want %d", k, g.Name, perm, got, want)
				}
			}
		}
	}
}

func TestNamesUniqueAndNonEmpty(t *testing.T) {
	for k := 3; k <= 5; k++ {
		seen := map[string]bool{}
		for _, g := range Catalog(k) {
			if g.Name == "" {
				t.Errorf("k=%d id=%d has empty name", k, g.ID)
			}
			if seen[g.Name] {
				t.Errorf("k=%d duplicate name %q", k, g.Name)
			}
			seen[g.Name] = true
		}
	}
}

func TestKnownNames(t *testing.T) {
	cases := map[[2]int]string{
		{3, 1}: "wedge", {3, 2}: "triangle",
		{4, 1}: "4-path", {4, 6}: "4-clique",
		{5, 1}: "5-path", {5, 7}: "5-cycle", {5, 21}: "5-clique",
	}
	for key, want := range cases {
		if got := ByID(key[0], key[1]).Name; got != want {
			t.Errorf("name(g%d_%d) = %q, want %q", key[0], key[1], got, want)
		}
	}
}

// TestChainCoverage: every chain enumerated must cover all k nodes and have
// consecutive states sharing exactly d-1 nodes.
func TestChainCoverage(t *testing.T) {
	for k := 3; k <= 5; k++ {
		for _, g := range Catalog(k) {
			hasEdge := func(i, j int) bool { return g.Adj[i][j] }
			for d := 1; d < k; d++ {
				l := k - d + 1
				EnumerateChains(k, d, hasEdge, func(chain []uint8) bool {
					if len(chain) != l {
						t.Fatalf("k=%d d=%d %s: chain length %d != %d", k, d, g.Name, len(chain), l)
					}
					var union uint8
					for i, m := range chain {
						union |= m
						if i > 0 {
							shared := popcount8(chain[i-1] & m)
							if d == 1 {
								if shared != 0 {
									t.Fatalf("d=1 chain repeats node")
								}
							} else if shared != d-1 {
								t.Fatalf("k=%d d=%d %s: consecutive states share %d nodes", k, d, g.Name, shared)
							}
						}
					}
					if popcount8(union) != k {
						t.Fatalf("k=%d d=%d %s: chain covers %d nodes", k, d, g.Name, popcount8(union))
					}
					return true
				})
			}
		}
	}
}

func popcount8(x uint8) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestAlphaZeroCases(t *testing.T) {
	// Under SRW(1), graphlets without a Hamiltonian path have α = 0:
	// 3-star (g4_2) and the three 5-node cases the paper calls out
	// (g5_2, g5_3, g5_6).
	zero := [][2]int{{4, 2}, {5, 2}, {5, 3}, {5, 6}}
	for _, z := range zero {
		if got := Alpha(z[0], 1, z[1]); got != 0 {
			t.Errorf("alpha(k=%d, d=1, id=%d) = %d, want 0", z[0], z[1], got)
		}
	}
}

func ExampleCatalog() {
	for _, g := range Catalog(3) {
		fmt.Printf("g3_%d %s edges=%d\n", g.ID, g.Name, g.Edges)
	}
	// Output:
	// g3_1 wedge edges=2
	// g3_2 triangle edges=3
}
