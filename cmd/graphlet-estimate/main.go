// Command graphlet-estimate estimates k-node graphlet concentration of an
// edge-list graph with the paper's random-walk framework.
//
// Usage:
//
//	graphlet-estimate -graph graph.txt [-format auto] [-k 4] [-d 2] [-css] [-nb] [-steps 20000] [-walkers 1] [-seed 1] [-exact] [-counts]
//	graphlet-estimate -graph graph.txt -sizes 3,4,5 [-d 2] [-css] [-steps 20000]
//
// The graph file is either a text edge list ("u v" lines, '#'/'%' comments
// allowed) or a .gcsr binary CSR file (see cmd/graphlet-pack), detected
// automatically; -format edgelist|gcsr forces it. .gcsr inputs are opened
// zero-copy via mmap, so even huge graphs start estimating immediately. The
// largest connected component is used (a no-op for pre-packed connected
// graphs). With -exact, the exact concentration is also enumerated for
// comparison. With -counts, unbiased count estimates (Equation 4) are
// printed for d <= 2.
//
// -sizes runs one shared random walk covering every listed size at once
// (instead of -k): the step budget is paid once and a concentration table is
// printed per size. The per-size estimates are byte-identical to what
// separate -k runs with the same seed would produce.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	graphletrw "repro"
)

func main() {
	var (
		path    = flag.String("graph", "", "graph file, edge list or .gcsr (required)")
		format  = flag.String("format", "auto", "input format: auto|edgelist|gcsr")
		k       = flag.Int("k", 4, "graphlet size (3..5)")
		sizes   = flag.String("sizes", "", "comma-separated graphlet sizes for one shared walk (e.g. 3,4,5; overrides -k)")
		d       = flag.Int("d", 2, "walk order d (1..k); paper recommends 1 for k=3, 2 for k=4,5")
		css     = flag.Bool("css", true, "corresponding state sampling")
		nb      = flag.Bool("nb", false, "non-backtracking walk")
		steps   = flag.Int("steps", 20000, "total random walk steps (split across walkers)")
		walkers = flag.Int("walkers", 1, "independent concurrent walkers the step budget is split across")
		seed    = flag.Int64("seed", 1, "random seed")
		exact   = flag.Bool("exact", false, "also enumerate the exact concentration")
		counts  = flag.Bool("counts", false, "also print unbiased count estimates (d <= 2)")
	)
	flag.Parse()
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}
	g, err := graphletrw.OpenGraph(*path, *format)
	if err != nil {
		fail(err)
	}
	lcc, _ := graphletrw.LargestComponent(g)
	fmt.Printf("graph: %d nodes, %d edges (LCC of input with %d nodes)\n",
		lcc.NumNodes(), lcc.NumEdges(), g.NumNodes())

	if *sizes != "" {
		runMulti(lcc, *sizes, *d, *css, *nb, *steps, *walkers, *seed, *exact)
		return
	}
	cfg := graphletrw.Config{K: *k, D: *d, CSS: *css, NB: *nb, Walkers: *walkers, Seed: *seed}
	start := time.Now()
	res, err := graphletrw.Estimate(graphletrw.NewClient(lcc), cfg, *steps)
	if err != nil {
		fail(err)
	}
	elapsed := time.Since(start)

	var exactConc []float64
	if *exact {
		exactConc = graphletrw.ExactConcentration(lcc, *k)
	}
	var countEst []float64
	if *counts {
		if *d > 2 {
			fail(fmt.Errorf("count estimation needs |R(d)|, available for d <= 2"))
		}
		countEst = res.Counts(graphletrw.TwoR(lcc, *d))
	}

	nw := *walkers
	if nw < 1 {
		nw = 1
	}
	fmt.Printf("method %s, %d steps, %d walker(s) (%d valid samples), %s\n\n",
		cfg.MethodName(), res.Steps, nw, res.ValidSamples, elapsed.Round(time.Millisecond))
	conc := res.Concentration()
	fmt.Printf("%-22s %12s", "graphlet", "estimate")
	if exactConc != nil {
		fmt.Printf(" %12s", "exact")
	}
	if countEst != nil {
		fmt.Printf(" %14s", "count est.")
	}
	fmt.Println()
	for i, gl := range graphletrw.Catalog(*k) {
		fmt.Printf("g%d_%-3d %-15s %12.6f", *k, gl.ID, gl.Name, conc[i])
		if exactConc != nil {
			fmt.Printf(" %12.6f", exactConc[i])
		}
		if countEst != nil {
			fmt.Printf(" %14.1f", countEst[i])
		}
		fmt.Println()
	}
}

// runMulti runs one shared walk covering every listed size and prints a
// concentration table per size.
func runMulti(lcc *graphletrw.Graph, sizesArg string, d int, css, nb bool, steps, walkers int, seed int64, exact bool) {
	var ks []int
	for _, f := range strings.Split(sizesArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fail(fmt.Errorf("bad -sizes entry %q: %v", f, err))
		}
		ks = append(ks, n)
	}
	cfg := graphletrw.MultiConfig{Sizes: ks, D: d, CSS: css, NB: nb, Walkers: walkers, Seed: seed}
	start := time.Now()
	res, err := graphletrw.EstimateAll(graphletrw.NewClient(lcc), cfg, steps)
	if err != nil {
		fail(err)
	}
	elapsed := time.Since(start)

	nw := walkers
	if nw < 1 {
		nw = 1
	}
	fmt.Printf("shared walk over sizes %v: %d steps, %d walker(s), %s\n",
		ks, res.Steps, nw, elapsed.Round(time.Millisecond))
	for _, k := range ks {
		r := res.Results[k]
		conc := r.Concentration()
		var exactConc []float64
		if exact {
			exactConc = graphletrw.ExactConcentration(lcc, k)
		}
		fmt.Printf("\nsize %d (%s, %d valid samples)\n", k, r.Config.MethodName(), r.ValidSamples)
		fmt.Printf("%-22s %12s", "graphlet", "estimate")
		if exactConc != nil {
			fmt.Printf(" %12s", "exact")
		}
		fmt.Println()
		for i, gl := range graphletrw.Catalog(k) {
			fmt.Printf("g%d_%-3d %-15s %12.6f", k, gl.ID, gl.Name, conc[i])
			if exactConc != nil {
				fmt.Printf(" %12.6f", exactConc[i])
			}
			fmt.Println()
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "graphlet-estimate:", err)
	os.Exit(1)
}
