package core

import (
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/exact"
)

func TestWalkerQuota(t *testing.T) {
	for _, tc := range []struct{ total, w int }{
		{0, 1}, {1, 1}, {10, 1}, {10, 3}, {7, 8}, {1000, 8}, {999, 7},
	} {
		sum := 0
		for i := 0; i < tc.w; i++ {
			q := walkerQuota(tc.total, tc.w, i)
			if q < 0 {
				t.Fatalf("negative quota(%d,%d,%d)", tc.total, tc.w, i)
			}
			sum += q
		}
		if sum != tc.total {
			t.Errorf("quotas for total=%d w=%d sum to %d", tc.total, tc.w, sum)
		}
		// Monotone in total: checkpointed runs advance by quota differences.
		for i := 0; i < tc.w; i++ {
			if walkerQuota(tc.total+1, tc.w, i) < walkerQuota(tc.total, tc.w, i) {
				t.Errorf("quota not monotone at total=%d w=%d i=%d", tc.total, tc.w, i)
			}
		}
	}
}

func TestWalkerSeedDerivation(t *testing.T) {
	if walkerSeed(42, 0) != 42 {
		t.Error("walker 0 must keep the configured seed (single-walker compatibility)")
	}
	seen := map[int64]bool{}
	for i := 0; i < 64; i++ {
		s := walkerSeed(42, i)
		if seen[s] {
			t.Fatalf("seed collision at walker %d", i)
		}
		seen[s] = true
	}
	if walkerSeed(42, 1) == walkerSeed(43, 1) {
		t.Error("adjacent base seeds must give distinct walker streams")
	}
}

// TestMergeMatchesIndependentRuns is the exactness proof of the merge layer:
// an ensemble run with W walkers must equal — bit for bit — W separate
// single-walker runs with the derived seeds and quota budgets, merged in
// walker-index order. The RecoverStars case checks the nonlinear clamp is
// applied to the merged sums, not per walker.
func TestMergeMatchesIndependentRuns(t *testing.T) {
	g := convGraph()
	client := access.NewGraphClient(g)
	const n, W = 6000, 4
	for _, cfg := range []Config{
		{K: 4, D: 2, CSS: true, Seed: 99, Walkers: W},
		{K: 4, D: 1, RecoverStars: true, Seed: 31, Walkers: W},
	} {
		est, err := NewEstimator(client, cfg)
		if err != nil {
			t.Fatal(err)
		}
		merged, err := est.Run(n)
		if err != nil {
			t.Fatal(err)
		}

		want := &Result{
			Config:     cfg,
			Weights:    make([]float64, len(merged.Weights)),
			TypeCounts: make([]int64, len(merged.TypeCounts)),
		}
		for i := 0; i < W; i++ {
			single := cfg
			single.Walkers = 1
			single.Seed = walkerSeed(cfg.Seed, i)
			se, err := NewEstimator(client, single)
			if err != nil {
				t.Fatal(err)
			}
			r, err := se.Run(walkerQuota(n, W, i))
			if err != nil {
				t.Fatal(err)
			}
			want.Merge(r)
		}
		if merged.Steps != n || want.Steps != n {
			t.Fatalf("%s: steps: merged %d, manual %d, want %d", cfg.MethodName(), merged.Steps, want.Steps, n)
		}
		if merged.ValidSamples != want.ValidSamples {
			t.Fatalf("%s: valid samples: merged %d, manual %d", cfg.MethodName(), merged.ValidSamples, want.ValidSamples)
		}
		if !reflect.DeepEqual(merged.Weights, want.Weights) {
			t.Errorf("%s: weights differ:\nmerged %v\nmanual %v", cfg.MethodName(), merged.Weights, want.Weights)
		}
		if !reflect.DeepEqual(merged.TypeCounts, want.TypeCounts) {
			t.Errorf("%s: type counts differ:\nmerged %v\nmanual %v", cfg.MethodName(), merged.TypeCounts, want.TypeCounts)
		}
	}
}

// TestParallelDeterminismAcrossGOMAXPROCS: same Config (including Walkers)
// and Seed must produce byte-identical merged Results no matter how the
// goroutines are scheduled.
func TestParallelDeterminismAcrossGOMAXPROCS(t *testing.T) {
	g := convGraph()
	client := access.NewGraphClient(g)
	cfg := Config{K: 4, D: 2, CSS: true, NB: true, Seed: 7, Walkers: 8}

	var ref *Result
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(procs)
		for rep := 0; rep < 2; rep++ {
			est, err := NewEstimator(client, cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := est.Run(4000)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if !reflect.DeepEqual(res, ref) {
				t.Fatalf("GOMAXPROCS=%d rep=%d: merged result differs from reference", procs, rep)
			}
		}
	}
}

// TestMultiParallelDeterminism covers the multi-size ensemble the same way.
func TestMultiParallelDeterminism(t *testing.T) {
	g := convGraph()
	client := access.NewGraphClient(g)
	cfg := MultiConfig{Sizes: []int{3, 4}, D: 2, CSS: true, Seed: 5, Walkers: 3}
	var ref *MultiResult
	for rep := 0; rep < 3; rep++ {
		me, err := NewMultiEstimator(client, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := me.Run(3000)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("rep %d: multi result differs", rep)
		}
	}
	if ref.Steps != 3000 {
		t.Errorf("merged multi steps %d, want 3000", ref.Steps)
	}
}

// TestParallelCheckpoints: merged snapshots fire at the global window counts
// and are themselves deterministic.
func TestParallelCheckpoints(t *testing.T) {
	g := convGraph()
	client := access.NewGraphClient(g)
	cfg := Config{K: 3, D: 1, Seed: 23, Walkers: 4}
	run := func() ([]int, [][]float64) {
		est, err := NewEstimator(client, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var steps []int
		var concs [][]float64
		if _, err := est.RunCheckpoints(1000, 250, func(step int, conc []float64) {
			steps = append(steps, step)
			concs = append(concs, conc)
		}); err != nil {
			t.Fatal(err)
		}
		return steps, concs
	}
	steps, concs := run()
	want := []int{250, 500, 750, 1000}
	if !reflect.DeepEqual(steps, want) {
		t.Fatalf("checkpoints at %v, want %v", steps, want)
	}
	steps2, concs2 := run()
	if !reflect.DeepEqual(steps2, steps) || !reflect.DeepEqual(concs2, concs) {
		t.Fatal("checkpoint snapshots are not deterministic")
	}
}

// TestParallelSharedCountingClient drives >= 4 walkers over one shared
// Counting client (run with -race): the atomic counters must be exact — the
// schedule-independent sum of each walker's deterministic call pattern.
func TestParallelSharedCountingClient(t *testing.T) {
	g := convGraph()
	counting := access.NewCounting(access.NewGraphClient(g), g.NumNodes())
	cfg := Config{K: 4, D: 2, CSS: true, Seed: 3, Walkers: 4}
	run := func() (access.Stats, *Result) {
		counting.Reset()
		est, err := NewEstimator(counting, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := est.Run(4000)
		if err != nil {
			t.Fatal(err)
		}
		return counting.Stats(), res
	}
	st1, res1 := run()
	st2, res2 := run()
	if st1 != st2 {
		t.Errorf("API counters not exact under 4 walkers:\nrun1 %+v\nrun2 %+v", st1, st2)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Error("merged results differ across identical runs")
	}
	if st1.NeighborCalls == 0 || st1.UniqueNodes == 0 {
		t.Errorf("no accounting recorded: %+v", st1)
	}
}

// TestParallelConvergence: a merged 8-walker estimate converges to the exact
// concentration like a single long walk does (the estimator stays unbiased
// under the split).
func TestParallelConvergence(t *testing.T) {
	g := convGraph()
	client := access.NewGraphClient(g)
	est, err := NewEstimator(client, Config{K: 4, D: 2, CSS: true, Seed: 11, Walkers: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := est.Run(400000)
	if err != nil {
		t.Fatal(err)
	}
	want := exact.Concentrations(exact.CountESU(g, 4))
	got := res.Concentration()
	if re := maxRelErr(got, want); re > 0.10 {
		t.Errorf("8-walker merged estimate: max rel err %.3f > 0.10\n got %v\nwant %v", re, got, want)
	}
}

// TestParallelSpeedupLatencyBound verifies the wall-clock payoff on the
// workload the paper actually targets — crawling an API where every call has
// latency. Walkers blocked on (simulated) I/O overlap even on one CPU, so a
// fixed total step budget must finish several times faster with 8 walkers
// than with 1. (CPU-bound scaling across cores is tracked separately by
// BenchmarkParallelWalkers at the repository root.)
func TestParallelSpeedupLatencyBound(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	g := convGraph()
	const latency = 100 * time.Microsecond
	const steps = 480
	elapsed := func(walkers int) time.Duration {
		client := access.NewDelayed(access.NewGraphClient(g), latency)
		est, err := NewEstimator(client, Config{K: 3, D: 1, Seed: 9, Walkers: walkers})
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if _, err := est.Run(steps); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	serial := elapsed(1)
	parallel := elapsed(8)
	ratio := float64(serial) / float64(parallel)
	t.Logf("latency-bound: 1 walker %v, 8 walkers %v (%.1fx)", serial, parallel, ratio)
	if ratio < 3 {
		t.Errorf("8 walkers only %.2fx faster than 1 on a latency-bound crawl (want >= 3x)", ratio)
	}
	if math.IsNaN(ratio) {
		t.Fatal("timing produced NaN")
	}
}
