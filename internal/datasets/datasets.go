// Package datasets provides deterministic synthetic stand-ins for the ten
// web-crawled networks of the paper's Table 5 (which are not available
// offline — see README.md for the substitution rationale). Each stand-in
// preserves the two properties the paper's conclusions hinge on: heavy-tailed
// degrees and the dataset's qualitative clustering level (cliques rare for
// the low-clustering graphs, common for the Facebook-like ones). Sizes are
// scaled so exact ground truth is computable on one machine; 5-node ground
// truth (needed for the c⁵₂₁ experiments) is computed only for the four
// smaller datasets, exactly as the paper does.
package datasets

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Dataset describes one stand-in network.
type Dataset struct {
	// Name is the lower-case stand-in name ("facebook", ...).
	Name string
	// PaperNodes/PaperEdges describe the original network's LCC for Table 5.
	PaperNodes, PaperEdges string
	// Exact5 marks the four small datasets with 5-node ground truth.
	Exact5 bool
	// Build generates the raw graph (before LCC extraction).
	Build func() *graph.Graph
}

var registry = []Dataset{
	{
		Name: "brightkite", PaperNodes: "57K", PaperEdges: "213K", Exact5: true,
		Build: func() *graph.Graph {
			return gen.PlantCliques(gen.HolmeKim(4000, 4, 0.70, 1001), 150, 6, 2001)
		},
	},
	{
		Name: "epinion", PaperNodes: "76K", PaperEdges: "406K", Exact5: true,
		Build: func() *graph.Graph {
			return gen.PlantCliques(gen.HolmeKim(5000, 4, 0.45, 1002), 40, 6, 2002)
		},
	},
	{
		Name: "slashdot", PaperNodes: "77K", PaperEdges: "469K", Exact5: true,
		Build: func() *graph.Graph {
			return gen.PlantCliques(gen.PowerLawConfiguration(6000, 2.4, 3, 150, 1003), 30, 6, 2003)
		},
	},
	{
		Name: "facebook", PaperNodes: "63K", PaperEdges: "817K", Exact5: true,
		Build: func() *graph.Graph {
			return gen.PlantCliques(gen.HolmeKim(3000, 6, 0.85, 1004), 200, 7, 2004)
		},
	},
	{
		Name: "gowalla", PaperNodes: "197K", PaperEdges: "950K",
		Build: func() *graph.Graph { return gen.HolmeKim(20000, 5, 0.28, 1005) },
	},
	{
		Name: "wikipedia", PaperNodes: "1.9M", PaperEdges: "36.5M",
		Build: func() *graph.Graph {
			return gen.PlantCliques(gen.ErdosRenyiGNM(40000, 760000, 1006), 15, 5, 2006)
		},
	},
	{
		Name: "pokec", PaperNodes: "1.6M", PaperEdges: "22.3M",
		Build: func() *graph.Graph { return gen.HolmeKim(50000, 14, 0.72, 1007) },
	},
	{
		Name: "flickr", PaperNodes: "2.2M", PaperEdges: "22.7M",
		Build: func() *graph.Graph { return gen.HolmeKim(50000, 10, 0.88, 1008) },
	},
	{
		Name: "twitter", PaperNodes: "21.3M", PaperEdges: "265M",
		Build: func() *graph.Graph { return gen.HolmeKim(100000, 12, 0.35, 1009) },
	},
	{
		Name: "sinaweibo", PaperNodes: "58.7M", PaperEdges: "261M",
		Build: func() *graph.Graph { return gen.HolmeKim(200000, 5, 0.015, 1010) },
	},
}

// All returns every dataset in paper order.
func All() []Dataset { return registry }

// Small returns the four datasets with 5-node ground truth.
func Small() []Dataset {
	var out []Dataset
	for _, d := range registry {
		if d.Exact5 {
			out = append(out, d)
		}
	}
	return out
}

// Get returns the dataset by name.
func Get(name string) (Dataset, error) {
	for _, d := range registry {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("datasets: unknown dataset %q", name)
}

var (
	mu     sync.Mutex
	graphs = map[string]*graph.Graph{}
	truths = map[string][]int64{}

	// graphCache gates the on-disk .gcsr cache of dataset LCCs. Disabled by
	// the REPRO_NO_GRAPH_CACHE environment variable or SetGraphCaching.
	graphCache = os.Getenv("REPRO_NO_GRAPH_CACHE") == ""
)

// SetGraphCaching toggles the on-disk .gcsr cache of dataset graphs.
func SetGraphCaching(enabled bool) {
	mu.Lock()
	graphCache = enabled
	mu.Unlock()
}

func graphCachingEnabled() bool {
	mu.Lock()
	defer mu.Unlock()
	return graphCache
}

// graphCacheGen versions the on-disk dataset graph cache. Like the
// ground-truth JSON cache, entries are keyed by dataset name and assume the
// registry's generator definitions are fixed: bump this constant whenever a
// Build closure changes (or delete $REPRO_CACHE_DIR) so stale topologies
// are never served.
const graphCacheGen = 1

// Graph returns the dataset's largest connected component, memoized in
// process and cached on disk in the .gcsr binary format: after the first
// build, a process opens the graph via the zero-copy mmap path in
// milliseconds instead of re-running the generator. The cache is
// best-effort, and a hit is byte-identical to a fresh build
// (Save/OpenMapped round trips preserve the graph exactly) as long as the
// generator definitions match the cache generation (graphCacheGen).
// REPRO_CACHE_FORMAT=v2 writes cache entries block-compressed; reads
// auto-detect either version.
func (d Dataset) Graph() *graph.Graph {
	mu.Lock()
	g, ok := graphs[d.Name]
	mu.Unlock()
	if ok {
		return g
	}
	caching := graphCachingEnabled()
	cachePath := filepath.Join(cacheDir(), fmt.Sprintf("%s-lcc.g%d.gcsr", d.Name, graphCacheGen))
	if caching {
		if cached, err := graph.OpenMapped(cachePath); err == nil {
			mu.Lock()
			graphs[d.Name] = cached
			mu.Unlock()
			return cached
		}
	}
	raw := d.Build()
	lcc, _ := graph.LargestComponent(raw)
	if caching {
		if err := os.MkdirAll(cacheDir(), 0o755); err == nil {
			_ = graph.SaveOpts(cachePath, lcc, graph.SaveOptions{Version: cacheFormatVersion()}) // best-effort, atomic
		}
	}
	mu.Lock()
	graphs[d.Name] = lcc
	mu.Unlock()
	return lcc
}

// GroundTruth returns exact k-node graphlet counts, memoized in process and
// cached on disk (key: dataset name + k). k = 5 is only available for the
// Exact5 datasets.
func (d Dataset) GroundTruth(k int) ([]int64, error) {
	if k < 3 || k > 5 {
		return nil, fmt.Errorf("datasets: k=%d out of range", k)
	}
	if k == 5 && !d.Exact5 {
		return nil, fmt.Errorf("datasets: no 5-node ground truth for %q (paper computes it only for the four small datasets)", d.Name)
	}
	key := fmt.Sprintf("%s-k%d", d.Name, k)
	mu.Lock()
	if c, ok := truths[key]; ok {
		mu.Unlock()
		return c, nil
	}
	mu.Unlock()
	if c, ok := loadCache(key); ok {
		mu.Lock()
		truths[key] = c
		mu.Unlock()
		return c, nil
	}
	g := d.Graph()
	var c []int64
	switch k {
	case 3:
		c = exact.ThreeNodeCounts(g)
	case 4:
		c = exact.FourNodeCounts(g)
	case 5:
		c = exact.CountESU(g, 5)
	}
	mu.Lock()
	truths[key] = c
	mu.Unlock()
	saveCache(key, c)
	return c, nil
}

// Concentration returns the exact concentration vector for size k.
func (d Dataset) Concentration(k int) ([]float64, error) {
	c, err := d.GroundTruth(k)
	if err != nil {
		return nil, err
	}
	return exact.Concentrations(c), nil
}

// cacheFormatVersion picks the .gcsr version for cache writes:
// REPRO_CACHE_FORMAT=v2 selects the block-compressed encoding (about half
// the bytes, served through the decode cache), anything else the raw v1
// arrays. Reads auto-detect, so flipping the variable never invalidates
// existing entries.
func cacheFormatVersion() int {
	if f := os.Getenv("REPRO_CACHE_FORMAT"); f == "v2" || f == "2" {
		return 2
	}
	return 1
}

// cacheDir resolves the on-disk cache location: $REPRO_CACHE_DIR or a
// subdirectory of the OS temp dir.
func cacheDir() string {
	if dir := os.Getenv("REPRO_CACHE_DIR"); dir != "" {
		return dir
	}
	return filepath.Join(os.TempDir(), "graphletrw-cache")
}

func loadCache(key string) ([]int64, bool) {
	b, err := os.ReadFile(filepath.Join(cacheDir(), key+".json"))
	if err != nil {
		return nil, false
	}
	var c []int64
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, false
	}
	return c, true
}

func saveCache(key string, c []int64) {
	dir := cacheDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return // cache is best-effort
	}
	b, err := json.Marshal(c)
	if err != nil {
		return
	}
	tmp := filepath.Join(dir, key+".tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, filepath.Join(dir, key+".json"))
}
