package core

import (
	"reflect"
	"testing"

	"repro/internal/access"
)

// partitionBounds splits W walkers into nParts contiguous ranges, the same
// even split the dist coordinator uses.
func partitionBounds(w, nParts int) [][2]int {
	if nParts > w {
		nParts = w
	}
	out := make([][2]int, nParts)
	for p := 0; p < nParts; p++ {
		out[p] = [2]int{p * w / nParts, (p + 1) * w / nParts}
	}
	return out
}

// TestPartitionByteIdentical is the distributed-execution correctness proof:
// running each partition [lo,hi) of the ensemble independently (in any
// split), combining the final partition snapshots, and merging per walker
// must reproduce the local full-ensemble Result bit for bit — for every
// accumulator variant.
func TestPartitionByteIdentical(t *testing.T) {
	g := convGraph()
	client := access.NewGraphClient(g)
	const n = 3000
	for _, cfg := range []Config{
		{K: 3, D: 1, Seed: 17, Walkers: 1},
		{K: 4, D: 2, CSS: true, Seed: 99, Walkers: 4},
		{K: 4, D: 2, CSS: true, NB: true, Seed: 7, Walkers: 5},
		{K: 4, D: 1, RecoverStars: true, Seed: 31, Walkers: 3},
		{K: 5, D: 3, CSS: true, Seed: 23, Walkers: 4},
	} {
		full, err := NewEstimator(client, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := full.Run(n)
		if err != nil {
			t.Fatal(err)
		}
		// The full local snapshot's merged result must equal the live one.
		if got, err := full.Snapshot().MergedResult(); err != nil {
			t.Fatalf("%s: merged result: %v", cfg.MethodName(), err)
		} else if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: snapshot merged result differs from live result", cfg.MethodName())
		}
		for _, nParts := range []int{1, 2, 3} {
			var parts []*EnsembleState
			for _, b := range partitionBounds(walkerCount(cfg.Walkers), nParts) {
				est, err := NewPartitionEstimator(client, cfg, b[0], b[1])
				if err != nil {
					t.Fatal(err)
				}
				if _, err := est.Run(n); err != nil {
					t.Fatal(err)
				}
				// Round-trip through the wire codec, as the worker API does.
				st, err := DecodeEnsembleState(est.Snapshot().Encode())
				if err != nil {
					t.Fatal(err)
				}
				parts = append(parts, st)
			}
			combined, err := CombinePartitionStates(parts)
			if err != nil {
				t.Fatalf("%s/%d parts: combine: %v", cfg.MethodName(), nParts, err)
			}
			got, err := combined.MergedResult()
			if err != nil {
				t.Fatalf("%s/%d parts: merge: %v", cfg.MethodName(), nParts, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%d parts: distributed result differs from local run:\n got %+v\nwant %+v",
					cfg.MethodName(), nParts, got, want)
			}
		}
	}
}

// TestPartitionResumeByteIdentical covers failover: a partition interrupted
// at a checkpoint restores from its own snapshot into a fresh partition
// estimator (possibly on another machine) and completes; the combined result
// must still match the local run exactly.
func TestPartitionResumeByteIdentical(t *testing.T) {
	g := convGraph()
	client := access.NewGraphClient(g)
	cfg := Config{K: 4, D: 2, CSS: true, Seed: 12, Walkers: 5}
	const n, every, interruptAt = 3000, 500, 1500

	full, err := NewEstimator(client, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Run(n)
	if err != nil {
		t.Fatal(err)
	}

	var parts []*EnsembleState
	for _, b := range partitionBounds(cfg.Walkers, 2) {
		est, err := NewPartitionEstimator(client, cfg, b[0], b[1])
		if err != nil {
			t.Fatal(err)
		}
		var blob []byte
		if _, err := est.RunCheckpoints(n, every, func(step int, _ []float64) {
			if step == interruptAt {
				blob = est.Snapshot().Encode()
			}
		}); err != nil {
			t.Fatal(err)
		}
		st, err := DecodeEnsembleState(blob)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := st.WindowsDone, interruptAt; got != want {
			t.Fatalf("snapshot at target %d, want %d", got, want)
		}
		// Fail over: a fresh partition estimator restores the snapshot and
		// finishes the remaining budget.
		resumed, err := NewPartitionEstimator(client, cfg, b[0], b[1])
		if err != nil {
			t.Fatal(err)
		}
		if err := resumed.Restore(st); err != nil {
			t.Fatal(err)
		}
		if _, err := resumed.Run(n); err != nil {
			t.Fatal(err)
		}
		parts = append(parts, resumed.Snapshot())
	}
	combined, err := CombinePartitionStates(parts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := combined.MergedResult()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("failover-resumed distributed result differs from local run:\n got %+v\nwant %+v", got, want)
	}
}

// TestMultiPartitionByteIdentical mirrors TestPartitionByteIdentical for the
// shared-walk multi-size engine, including a mid-run failover of one
// partition.
func TestMultiPartitionByteIdentical(t *testing.T) {
	g := convGraph()
	client := access.NewGraphClient(g)
	cfg := MultiConfig{Sizes: []int{3, 4, 5}, D: 2, CSS: true, Seed: 41, Walkers: 4}
	const n, every, interruptAt = 2000, 500, 1000

	full, err := NewMultiEstimator(client, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := full.Snapshot().MergedResult(); err != nil {
		t.Fatalf("merged result: %v", err)
	} else if !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot merged result differs from live result")
	}

	var parts []*MultiEnsembleState
	for pi, b := range partitionBounds(cfg.Walkers, 3) {
		est, err := NewPartitionMultiEstimator(client, cfg, b[0], b[1])
		if err != nil {
			t.Fatal(err)
		}
		var blob []byte
		if _, err := est.RunCheckpointsCtx(t.Context(), n, every, func(step int, _ map[int][]float64) {
			if step == interruptAt {
				blob = est.Snapshot().Encode()
			}
		}); err != nil {
			t.Fatal(err)
		}
		if pi == 1 {
			// Fail this partition over from its mid-run snapshot.
			st, err := DecodeMultiEnsembleState(blob)
			if err != nil {
				t.Fatal(err)
			}
			resumed, err := NewPartitionMultiEstimator(client, cfg, b[0], b[1])
			if err != nil {
				t.Fatal(err)
			}
			if err := resumed.Restore(st); err != nil {
				t.Fatal(err)
			}
			if _, err := resumed.Run(n); err != nil {
				t.Fatal(err)
			}
			est = resumed
		}
		st, err := DecodeMultiEnsembleState(est.Snapshot().Encode())
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, st)
	}
	combined, err := CombineMultiPartitionStates(parts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := combined.MergedResult()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("distributed multi result differs from local run:\n got %+v\nwant %+v", got, want)
	}
}

// TestSliceCombineRoundTrip pins the coordinator crash-recovery path: a full
// snapshot slices into per-partition resume blobs whose re-combination is
// the original state, and slicing a partial state is rejected.
func TestSliceCombineRoundTrip(t *testing.T) {
	g := convGraph()
	client := access.NewGraphClient(g)
	cfg := Config{K: 4, D: 2, CSS: true, Seed: 3, Walkers: 4}
	est, err := NewEstimator(client, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var blob []byte
	// 750 windows over 4 walkers is an uneven split (188,188,187,187), so the
	// misorder check below has quotas to disagree with.
	if _, err := est.RunCheckpoints(1000, 250, func(step int, _ []float64) {
		if step == 750 {
			blob = est.Snapshot().Encode()
		}
	}); err != nil {
		t.Fatal(err)
	}
	st, err := DecodeEnsembleState(blob)
	if err != nil {
		t.Fatal(err)
	}
	var parts []*EnsembleState
	for _, b := range partitionBounds(cfg.Walkers, 3) {
		p, err := st.Slice(b[0], b[1])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Slice(0, 1); err == nil {
			t.Fatal("slice of a partial state must be rejected")
		}
		parts = append(parts, p)
	}
	back, err := CombinePartitionStates(parts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, st) {
		t.Errorf("slice+combine is not the identity")
	}

	// Misordered partitions must be rejected (quota mismatch) whenever the
	// split is uneven enough to detect it.
	if _, err := CombinePartitionStates([]*EnsembleState{parts[2], parts[1], parts[0]}); err == nil {
		t.Errorf("combining misordered partitions succeeded")
	}
}
