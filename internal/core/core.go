// Package core implements the paper's primary contribution: the general
// random-walk framework for estimating k-node graphlet concentration from
// l = k-d+1 consecutive steps of a random walk on the d-node subgraph
// relationship graph G(d) (Algorithm 1), with the two optimizations of §4 —
// corresponding state sampling (CSS, Algorithm 3) and the non-backtracking
// random walk (NB-SRW) — and the Chernoff-Hoeffding sample-size bound of
// Theorem 3.
//
// Special cases recover the prior art the paper compares against:
// d = k-1 is PSRW [36], d = k is the SRW-on-G(k) method of [36], and
// (k=3, d=1) is the Hardiman-Katzir clustering-coefficient walk [11].
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/access"
	"repro/internal/graphlet"
	"repro/internal/walk"
)

// Config selects a method within the framework.
type Config struct {
	K int // graphlet size, 3..5
	D int // walk order, 1..K; l = K-D+1 consecutive steps form one sample

	// CSS enables corresponding state sampling (§4.1): the sample weight is
	// the summed stationary mass of all states corresponding to the sampled
	// subgraph rather than α·π̃e. For l <= 2 both weights coincide and the
	// plain path is used.
	CSS bool
	// NB replaces the simple random walk with the non-backtracking walk
	// (§4.2); stationary weights use nominal degrees max(deg-1, 1).
	NB bool

	// RecoverStars implements the paper's §3.2 footnote 3 for (K=4, D=1):
	// 3-stars have no Hamiltonian path (α = 0) and are invisible to the walk
	// on G, but their count satisfies the linear relation
	//   noninduced-stars = stars + tailed + 2·chordal + 4·clique,
	// and Σ_v C(d_v,3) (the non-induced star count) is estimable from the
	// same walk because E_π[C(d_v,3)/d_v] = Σ_v C(d_v,3) / 2|E| shares the
	// 2|R(1)| = 2|E| scale of all other weights. With this flag the 3-star
	// entry of the result is recovered instead of being zero.
	RecoverStars bool

	// BurnIn is the number of transitions discarded before sampling starts.
	// The paper uses none (bias decays by SLLN); experiments keep it at 0.
	BurnIn int

	// Seed seeds the walk's RNG. Two estimators with equal Config produce
	// identical runs.
	Seed int64
}

// MethodName renders the paper's naming scheme, e.g. "SRW2CSS" or
// "SRW1CSSNB".
func (c Config) MethodName() string {
	s := fmt.Sprintf("SRW%d", c.D)
	if c.CSS {
		s += "CSS"
	}
	if c.NB {
		s += "NB"
	}
	return s
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.K < 3 || c.K > graphlet.MaxK {
		return fmt.Errorf("core: K=%d out of range 3..%d", c.K, graphlet.MaxK)
	}
	if c.D < 1 || c.D > c.K {
		return fmt.Errorf("core: D=%d out of range 1..K=%d", c.D, c.K)
	}
	if c.BurnIn < 0 {
		return fmt.Errorf("core: negative BurnIn %d", c.BurnIn)
	}
	if c.RecoverStars && (c.K != 4 || c.D != 1) {
		return fmt.Errorf("core: RecoverStars applies only to K=4, D=1")
	}
	return nil
}

// Result holds the outcome of one estimation run.
type Result struct {
	Config Config
	// Steps is the number of windows processed (the paper's sample size n).
	Steps int
	// ValidSamples counts windows whose l states covered exactly k distinct
	// nodes (the "valid samples" of Figure 3).
	ValidSamples int
	// Weights[i] is the un-normalized accumulator Ĉ_i — the sum of
	// 1/(α_i·π̃e) (or 1/p̃ under CSS) over valid samples of type i+1.
	// Count estimates follow as 2|R(d)|·Weights[i]/Steps (Equation 4).
	Weights []float64
	// TypeCounts[i] is the raw number of valid samples classified as
	// graphlet type i+1 (diagnostic; not unbiased).
	TypeCounts []int64
}

// Concentration returns the estimated concentration vector ĉ^k (Equation 5
// or 8). If no valid sample was seen, all entries are zero.
func (r *Result) Concentration() []float64 {
	out := make([]float64, len(r.Weights))
	var sum float64
	for _, w := range r.Weights {
		sum += w
	}
	if sum == 0 {
		return out
	}
	for i, w := range r.Weights {
		out[i] = w / sum
	}
	return out
}

// Counts returns unbiased count estimates Ĉ^k_i given 2|R(d)| (Equation 4).
// For d = 1, 2|R| = 2|E|; for d = 2 use TwoR.
func (r *Result) Counts(twoR float64) []float64 {
	out := make([]float64, len(r.Weights))
	if r.Steps == 0 {
		return out
	}
	for i, w := range r.Weights {
		out[i] = twoR * w / float64(r.Steps)
	}
	return out
}

// Estimator runs the framework on a restricted-access graph.
type Estimator struct {
	cfg    Config
	client access.Client
	space  walk.Space
	w      *walk.Walk
	rng    *rand.Rand

	l     int
	alpha []int64 // α per type (paper order)

	// Sliding window of the last l states with their G(d) degrees.
	win    []walk.State
	degs   []int
	winLen int
	ring   int // index of the oldest window entry

	// Scratch buffers.
	unionNodes []int32
	chainNodes []int32

	// starAcc accumulates C(d_v,3)/d_v over visited nodes for RecoverStars.
	starAcc float64
}

// NewEstimator builds an estimator over the client.
func NewEstimator(client access.Client, cfg Config) (*Estimator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l := cfg.K - cfg.D + 1
	cat := graphlet.Catalog(cfg.K)
	alpha := make([]int64, len(cat))
	for i := range cat {
		alpha[i] = cat[i].Alpha[cfg.D]
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	space := walk.NewSpace(client, cfg.D)
	e := &Estimator{
		cfg:    cfg,
		client: client,
		space:  space,
		rng:    rng,
		l:      l,
		alpha:  alpha,
		win:    make([]walk.State, l),
		degs:   make([]int, l),
	}
	return e, nil
}

// Run processes n windows (Algorithm 1) and returns the estimates.
func (e *Estimator) Run(n int) (*Result, error) {
	return e.RunCheckpoints(n, 0, nil)
}

// RunCheckpoints is Run with a periodic callback: after every `every`
// windows (and at the end) it invokes fn with the number of windows
// processed so far and the current concentration estimate. Used to trace
// convergence (Figure 6) from a single walk.
func (e *Estimator) RunCheckpoints(n, every int, fn func(step int, conc []float64)) (*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: non-positive sample budget %d", n)
	}
	res := &Result{
		Config:     e.cfg,
		Steps:      n,
		Weights:    make([]float64, len(e.alpha)),
		TypeCounts: make([]int64, len(e.alpha)),
	}
	e.start()
	e.starAcc = 0
	for t := 0; t < n; t++ {
		if err := e.accumulate(res); err != nil {
			return nil, err
		}
		if e.cfg.RecoverStars {
			e.accumulateStars()
			e.applyStarRecovery(res)
		}
		e.advance()
		if fn != nil && every > 0 && (t+1)%every == 0 {
			fn(t+1, res.concentrationSnapshot())
		}
	}
	if fn != nil && (every == 0 || n%every != 0) {
		fn(n, res.concentrationSnapshot())
	}
	return res, nil
}

// accumulateStars adds the non-induced-star functional of the newest visited
// node (stationary probability ∝ degree): C(d_v, 3)/d_v.
func (e *Estimator) accumulateStars() {
	_, deg := e.windowAt(e.l - 1)
	d := float64(deg) // d = 1 walk: the state degree is the node degree
	// C(d,3)/d simplifies to (d-1)(d-2)/6.
	e.starAcc += (d - 1) * (d - 2) / 6
}

// applyStarRecovery rewrites the invisible 3-star weight from the linear
// relation noninduced = stars + tailed + 2·chordal + 4·clique; all terms
// share the 2|E| scale, so the concentration normalization stays valid.
func (e *Estimator) applyStarRecovery(res *Result) {
	w := e.starAcc - res.Weights[3] - 2*res.Weights[4] - 4*res.Weights[5]
	if w < 0 {
		w = 0
	}
	res.Weights[1] = w
}

func (r *Result) concentrationSnapshot() []float64 { return r.Concentration() }

// start initializes the walk, applies burn-in and fills the first window.
func (e *Estimator) start() {
	e.w = walk.New(e.space, e.cfg.NB, e.rng)
	e.w.Burn(e.cfg.BurnIn)
	e.winLen = 0
	e.ring = 0
	e.push(e.w.Current())
	for e.winLen < e.l {
		e.push(e.w.Step())
	}
}

// advance slides the window by one walk transition.
func (e *Estimator) advance() { e.push(e.w.Step()) }

func (e *Estimator) push(s walk.State) {
	if e.winLen < e.l {
		e.win[e.winLen] = s
		e.degs[e.winLen] = e.space.StateDegree(s)
		e.winLen++
		return
	}
	e.win[e.ring] = s
	e.degs[e.ring] = e.space.StateDegree(s)
	e.ring = (e.ring + 1) % e.l
}

// windowAt returns the i-th window entry in walk order (0 = oldest).
func (e *Estimator) windowAt(i int) (walk.State, int) {
	j := (e.ring + i) % e.l
	return e.win[j], e.degs[j]
}

// nominal maps a state degree to the NB-SRW nominal degree.
func nominal(d int) int {
	if d <= 1 {
		return 1
	}
	return d - 1
}

// accumulate processes the current window: if it covers exactly k distinct
// nodes, classify the induced subgraph and add its re-weighted contribution.
func (e *Estimator) accumulate(res *Result) error {
	k := e.cfg.K
	e.unionNodes = e.unionNodes[:0]
	for i := 0; i < e.l; i++ {
		s, _ := e.windowAt(i)
		for j := 0; j < s.Len(); j++ {
			x := s.Node(j)
			found := false
			for _, y := range e.unionNodes {
				if y == x {
					found = true
					break
				}
			}
			if !found {
				e.unionNodes = append(e.unionNodes, x)
				if len(e.unionNodes) > k {
					return nil // over-covering impossible; defensive
				}
			}
		}
	}
	if len(e.unionNodes) != k {
		return nil // invalid sample (Figure 3)
	}
	res.ValidSamples++

	nodes := e.unionNodes
	code := graphlet.CodeOf(k, func(i, j int) bool {
		return e.client.HasEdge(nodes[i], nodes[j])
	})
	typ := graphlet.ClassifyCode(k, code)
	if typ < 0 {
		return fmt.Errorf("core: window %v classified as disconnected", nodes)
	}
	res.TypeCounts[typ]++

	var weight float64
	if e.cfg.CSS && e.l > 2 {
		p := e.samplingProbability(nodes)
		if p <= 0 {
			return fmt.Errorf("core: zero sampling probability for type %d", typ+1)
		}
		weight = 1 / p
	} else {
		if e.alpha[typ] == 0 {
			return fmt.Errorf("core: walk produced type %d with alpha = 0 (d=%d)", typ+1, e.cfg.D)
		}
		weight = 1 / (float64(e.alpha[typ]) * e.pieTilde())
	}
	res.Weights[typ] += weight
	return nil
}

// pieTilde computes π̃e(X^(l)) = 2|R(d)|·πe for the current window
// (Equation 2): deg(X_1) for l = 1, 1 for l = 2, and the product of inverse
// degrees of the interior states for l > 2. Under NB, nominal degrees are
// used (§4.2).
func (e *Estimator) pieTilde() float64 {
	switch e.l {
	case 1:
		// Marginal state probability d_X/2|R|; NB-SRW preserves it, so the
		// actual degree is used even under NB.
		_, d := e.windowAt(0)
		return float64(d)
	case 2:
		return 1
	}
	p := 1.0
	for i := 1; i < e.l-1; i++ {
		_, d := e.windowAt(i)
		p *= 1 / e.adjDeg(d)
	}
	return p
}

func (e *Estimator) adjDeg(d int) float64 {
	if e.cfg.NB {
		return float64(nominal(d))
	}
	return float64(d)
}

// samplingProbability computes p̃(X^(l)) = 2|R(d)|·p(X^(l)) (Definition 4,
// Algorithm 3): the sum of π̃e over every state of M(l) corresponding to the
// sampled subgraph. Chain enumeration runs over the k sampled nodes; interior
// chain states need their G(d) degree, obtained from the space (O(1) for
// d <= 2).
func (e *Estimator) samplingProbability(nodes []int32) float64 {
	return samplingProbabilityWith(e.client, e.space, e.cfg.K, e.cfg.D, e.cfg.NB, nodes, &e.chainNodes)
}

// SamplingProbability computes the CSS weight p̃ = 2|R(d)|·p for the subgraph
// induced by the given k distinct nodes (Algorithm 3). It is exposed for the
// Table 4 reproduction and for external verification.
func SamplingProbability(client access.Client, k, d int, nb bool, nodes []int32) float64 {
	var scratch []int32
	return samplingProbabilityWith(client, walk.NewSpace(client, d), k, d, nb, nodes, &scratch)
}

func samplingProbabilityWith(client access.Client, space walk.Space, k, d int, nb bool, nodes []int32, scratch *[]int32) float64 {
	hasEdge := func(i, j int) bool { return client.HasEdge(nodes[i], nodes[j]) }
	total := 0.0
	graphlet.EnumerateChains(k, d, hasEdge, func(chain []uint8) bool {
		w := 1.0
		// Interior states only (indices 1..l-2); for l = 1 the weight is the
		// state's degree, but CSS is never used with l <= 2.
		for i := 1; i < len(chain)-1; i++ {
			st := maskToState(nodes, chain[i], scratch)
			deg := space.StateDegree(st)
			if nb {
				deg = nominal(deg)
			}
			w *= 1 / float64(deg)
		}
		total += w
		return true
	})
	return total
}

func maskToState(nodes []int32, mask uint8, scratch *[]int32) walk.State {
	buf := (*scratch)[:0]
	for b := 0; b < len(nodes); b++ {
		if mask&(1<<uint(b)) != 0 {
			buf = append(buf, nodes[b])
		}
	}
	*scratch = buf
	return walk.StateOf(buf...)
}
