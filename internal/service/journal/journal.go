// Package journal implements the durability layer of the estimation
// service: an append-only, CRC-checksummed, versioned record log in the
// log-structured style of LogBase — the on-disk journal is the single
// source of truth for job history, and all in-memory state (the job table,
// the warm result cache) is rebuilt by replaying it on open.
//
// The log is a directory of segment files:
//
//	<dir>/seg-00000001.wal
//	<dir>/seg-00000002.wal
//	...
//
// Appends go to the highest-numbered (active) segment; once it exceeds the
// rotation threshold a new segment is started. Each segment begins with an
// 8-byte header (magic "GJNL", little-endian uint32 format version) and
// holds a sequence of length-prefixed records:
//
//	offset  size  field
//	0       4     body length (little-endian uint32)
//	4       4     CRC-32C (Castagnoli) of the body bytes
//	8       ...   body
//
// with the body encoding one Record:
//
//	offset  size  field
//	0       1     record type
//	1       8     timestamp, unix nanoseconds (little-endian int64)
//	9       2     job-ID length (little-endian uint16)
//	11      ...   job ID bytes
//	...     ...   payload bytes (type-specific, owned by the caller)
//
// Crash tolerance: a torn append (the active segment ending mid-frame, or a
// zero-filled remainder — the signatures SIGKILL and power loss leave) is
// truncated away on Open, so the log always reopens to the longest prefix
// of intact records. Damage that is not a crash signature — a checksum or
// decode failure on a fully present frame, in any segment — fails Open or
// Replay loudly instead of silently dropping the history behind it.
//
// Compaction: Compact rewrites the log keeping only records the caller's
// filter retains, into a fresh segment numbered after all existing ones,
// then removes the old segments. If the process dies between the rename and
// the removals, replay sees the old records followed by the compacted
// copies — consumers must therefore apply records idempotently ("last
// record per job wins"), which the service's replay state machine does.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Type tags a record with its job-lifecycle meaning.
type Type uint8

const (
	// TypeSubmitted records a job's admission; the payload carries the spec.
	TypeSubmitted Type = 1
	// TypeStarted records a job leaving the queue for a worker.
	TypeStarted Type = 2
	// TypeCheckpoint records a progress snapshot of a running job.
	TypeCheckpoint Type = 3
	// TypeDone records successful completion; the payload carries the result.
	TypeDone Type = 4
	// TypeFailed records a failed run; the payload carries the error.
	TypeFailed Type = 5
	// TypeCanceled records a cancellation (queued or running).
	TypeCanceled Type = 6
)

// String renders the type for logs and errors.
func (t Type) String() string {
	switch t {
	case TypeSubmitted:
		return "submitted"
	case TypeStarted:
		return "started"
	case TypeCheckpoint:
		return "checkpoint"
	case TypeDone:
		return "done"
	case TypeFailed:
		return "failed"
	case TypeCanceled:
		return "canceled"
	}
	return fmt.Sprintf("journal.Type(%d)", uint8(t))
}

// Terminal reports whether the type ends a job's lifecycle.
func (t Type) Terminal() bool {
	return t == TypeDone || t == TypeFailed || t == TypeCanceled
}

func (t Type) valid() bool { return t >= TypeSubmitted && t <= TypeCanceled }

// Record is one journal entry. The payload is an opaque, type-specific blob
// owned by the caller (the service serializes specs, progress snapshots and
// results as JSON).
type Record struct {
	Type    Type
	Job     string
	Time    int64 // unix nanoseconds
	Payload []byte
}

const (
	segMagic      = "GJNL"
	segVersion    = 1
	segHeaderSize = 8
	frameOverhead = 8 // length + CRC prefix per record

	// maxBody guards replay against absurd allocations when a length prefix
	// is corrupted in a way the checksum cannot catch first.
	maxBody = 64 << 20

	// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
	// is zero.
	DefaultSegmentBytes = 4 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Metrics is the journal's optional instrumentation surface. All fields
// are individually optional (obs metrics no-op when nil), so a caller can
// wire any subset; a nil *Metrics disables everything.
type Metrics struct {
	// Appends counts records successfully written.
	Appends *obs.Counter
	// AppendSeconds is the per-append latency distribution, including any
	// rotation and fsync the append triggered.
	AppendSeconds *obs.Histogram
	// Fsyncs counts file syncs issued (per-append under Options.Fsync, plus
	// rotations, compactions and close).
	Fsyncs *obs.Counter
	// Compactions counts completed segment-rewrite compactions.
	Compactions *obs.Counter
	// Errors counts failed appends and compactions (degraded durability).
	Errors *obs.Counter
	// Segments gauges the current on-disk segment count.
	Segments *obs.Gauge
}

// Options tunes a Log. The zero value gets production defaults.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size.
	// 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// Fsync forces every append to disk before returning. Off by default:
	// appends then reach the page cache immediately (surviving a process
	// crash) but not necessarily the platter (power loss may drop the tail,
	// which reopen truncates cleanly).
	Fsync bool
	// Metrics receives the log's operational counters (nil disables).
	Metrics *Metrics
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.Metrics == nil {
		o.Metrics = &Metrics{}
	}
	return o
}

// Log is an open journal. All methods are safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	// segCount mirrors len(sealed)+1 outside the lock, so Segments never
	// blocks behind an in-flight append (which may be fsyncing a slow disk).
	segCount atomic.Int64

	mu         sync.Mutex
	active     *os.File
	activeIdx  int
	activeSize int64
	sealed     []int // sealed segment indices, ascending
	buf        []byte
}

// Open opens (creating if necessary) the journal in dir. The tail of the
// highest-numbered segment is scanned and any torn final record is truncated
// away, so the log is immediately appendable.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	idxs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts}
	if len(idxs) == 0 {
		if err := l.startSegment(1); err != nil {
			return nil, err
		}
		return l, nil
	}
	l.sealed = idxs[:len(idxs)-1]
	last := idxs[len(idxs)-1]
	size, err := repairTail(l.segPath(last))
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(l.segPath(last), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	l.active, l.activeIdx, l.activeSize = f, last, size
	l.setSegCountLocked()
	return l, nil
}

// segPath renders the file name of segment idx.
func (l *Log) segPath(idx int) string {
	return filepath.Join(l.dir, fmt.Sprintf("seg-%08d.wal", idx))
}

// listSegments returns the segment indices present in dir, ascending. The
// name match is exact (Sscanf alone would accept trailing junk like the
// ".tmp" suffix of an interrupted compaction and then point the log at a
// segment that does not exist); stray compaction temporaries are removed —
// they are mid-rewrite state whose source segments are all still present.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var idxs []int
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".wal.tmp") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		var idx int
		if n, _ := fmt.Sscanf(name, "seg-%d.wal", &idx); n != 1 || idx <= 0 {
			continue
		}
		if fmt.Sprintf("seg-%08d.wal", idx) != name {
			continue
		}
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	return idxs, nil
}

// startSegment creates and activates a fresh segment with the given index.
// Caller holds l.mu (or is constructing the Log).
func (l *Log) startSegment(idx int) error {
	f, err := os.OpenFile(l.segPath(idx), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	hdr := segHeader()
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	l.active, l.activeIdx, l.activeSize = f, idx, int64(len(hdr))
	l.setSegCountLocked()
	return nil
}

func segHeader() []byte {
	hdr := make([]byte, segHeaderSize)
	copy(hdr, segMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], segVersion)
	return hdr
}

// repairTail validates the frames of the segment at path and truncates a
// torn final record. Only crash signatures are repaired: the file ending
// mid-frame (partial append) or a zero-filled remainder (filesystems that
// extend before writing). A checksum or decode failure on a fully present
// frame is corruption of durable history and fails the open loudly instead
// of silently discarding every record behind it. It returns the resulting
// file size.
func repairTail(path string) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("journal: %w", err)
	}
	if err := checkSegHeader(path, data); err != nil {
		return 0, err
	}
	good := int64(segHeaderSize)
	off := good
	for off < int64(len(data)) {
		n, _, err := nextFrame(data, off)
		if err == nil {
			off += n
			good = off
			continue
		}
		if errors.Is(err, io.ErrUnexpectedEOF) || allZero(data[off:]) {
			break // torn append: truncate to the last intact frame
		}
		return 0, fmt.Errorf("journal: %s: corrupt record at offset %d: %w", path, off, err)
	}
	if good < int64(len(data)) {
		if err := os.Truncate(path, good); err != nil {
			return 0, fmt.Errorf("journal: %w", err)
		}
	}
	return good, nil
}

// allZero reports whether every byte of b is zero (crash-time zero fill).
func allZero(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}

func checkSegHeader(path string, data []byte) error {
	if len(data) < segHeaderSize {
		return fmt.Errorf("journal: %s: shorter than the %d-byte segment header", path, segHeaderSize)
	}
	if string(data[:4]) != segMagic {
		return fmt.Errorf("journal: %s: bad magic %q", path, data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != segVersion {
		return fmt.Errorf("journal: %s: unsupported format version %d (have %d)", path, v, segVersion)
	}
	return nil
}

// nextFrame decodes the frame starting at off, returning its total size and
// the record.
func nextFrame(data []byte, off int64) (int64, Record, error) {
	if off+frameOverhead > int64(len(data)) {
		return 0, Record{}, io.ErrUnexpectedEOF
	}
	bodyLen := int64(binary.LittleEndian.Uint32(data[off : off+4]))
	if bodyLen > maxBody || off+frameOverhead+bodyLen > int64(len(data)) {
		return 0, Record{}, io.ErrUnexpectedEOF
	}
	wantCRC := binary.LittleEndian.Uint32(data[off+4 : off+8])
	body := data[off+frameOverhead : off+frameOverhead+bodyLen]
	if crc32.Checksum(body, castagnoli) != wantCRC {
		return 0, Record{}, fmt.Errorf("journal: record checksum mismatch")
	}
	rec, err := decodeBody(body)
	if err != nil {
		return 0, Record{}, err
	}
	return frameOverhead + bodyLen, rec, nil
}

// decodeBody parses a record body.
func decodeBody(body []byte) (Record, error) {
	if len(body) < 11 {
		return Record{}, fmt.Errorf("journal: record body too short (%d bytes)", len(body))
	}
	typ := Type(body[0])
	if !typ.valid() {
		return Record{}, fmt.Errorf("journal: unknown record type %d", body[0])
	}
	t := int64(binary.LittleEndian.Uint64(body[1:9]))
	jobLen := int(binary.LittleEndian.Uint16(body[9:11]))
	if 11+jobLen > len(body) {
		return Record{}, fmt.Errorf("journal: job-ID length %d overruns record", jobLen)
	}
	rec := Record{
		Type: typ,
		Job:  string(body[11 : 11+jobLen]),
		Time: t,
	}
	if payload := body[11+jobLen:]; len(payload) > 0 {
		rec.Payload = append([]byte(nil), payload...)
	}
	return rec, nil
}

// encodeBody renders rec into l.buf (reused across appends) and returns the
// framed bytes. Caller holds l.mu.
func (l *Log) encodeBody(rec Record) ([]byte, error) {
	if len(rec.Job) > 1<<16-1 {
		return nil, fmt.Errorf("journal: job ID %d bytes long", len(rec.Job))
	}
	if !rec.Type.valid() {
		return nil, fmt.Errorf("journal: invalid record type %d", rec.Type)
	}
	bodyLen := 11 + len(rec.Job) + len(rec.Payload)
	if bodyLen > maxBody {
		return nil, fmt.Errorf("journal: record body %d bytes exceeds %d", bodyLen, maxBody)
	}
	need := frameOverhead + bodyLen
	if cap(l.buf) < need {
		l.buf = make([]byte, need)
	}
	buf := l.buf[:need]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(bodyLen))
	body := buf[frameOverhead:]
	body[0] = byte(rec.Type)
	binary.LittleEndian.PutUint64(body[1:9], uint64(rec.Time))
	binary.LittleEndian.PutUint16(body[9:11], uint16(len(rec.Job)))
	copy(body[11:], rec.Job)
	copy(body[11+len(rec.Job):], rec.Payload)
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(body, castagnoli))
	return buf, nil
}

// Append writes rec to the active segment, rotating first if the segment is
// over the size threshold. A zero Time is stamped with the current clock.
func (l *Log) Append(rec Record) error {
	start := time.Now()
	err := l.append(rec)
	if err != nil {
		l.opts.Metrics.Errors.Inc()
		return err
	}
	l.opts.Metrics.Appends.Inc()
	l.opts.Metrics.AppendSeconds.Observe(time.Since(start).Seconds())
	return nil
}

func (l *Log) append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return fmt.Errorf("journal: log closed")
	}
	if rec.Time == 0 {
		rec.Time = time.Now().UnixNano()
	}
	frame, err := l.encodeBody(rec)
	if err != nil {
		return err
	}
	if l.activeSize+int64(len(frame)) > l.opts.SegmentBytes && l.activeSize > segHeaderSize {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := l.active.Write(frame); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	l.activeSize += int64(len(frame))
	if l.opts.Fsync {
		if err := l.syncFile(l.active); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
	}
	return nil
}

// syncFile issues (and counts) one fsync.
func (l *Log) syncFile(f *os.File) error {
	l.opts.Metrics.Fsyncs.Inc()
	return f.Sync()
}

// rotateLocked seals the active segment and starts the next one. Caller
// holds l.mu.
func (l *Log) rotateLocked() error {
	if err := l.syncFile(l.active); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	l.sealed = append(l.sealed, l.activeIdx)
	return l.startSegment(l.activeIdx + 1)
}

// Replay invokes fn for every record in log order (oldest segment first).
// Records appended after Replay starts are not guaranteed to be visited.
// A non-nil error from fn aborts the replay.
func (l *Log) Replay(fn func(Record) error) error {
	l.mu.Lock()
	segs := append(append([]int(nil), l.sealed...), l.activeIdx)
	active := l.active
	l.mu.Unlock()
	if active == nil {
		return fmt.Errorf("journal: log closed")
	}
	for _, idx := range segs {
		if err := replaySegment(l.segPath(idx), fn); err != nil {
			return err
		}
	}
	return nil
}

// replaySegment streams one segment's records through fn.
func replaySegment(path string, fn func(Record) error) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := checkSegHeader(path, data); err != nil {
		return err
	}
	off := int64(segHeaderSize)
	for off < int64(len(data)) {
		n, rec, err := nextFrame(data, off)
		if err != nil {
			return fmt.Errorf("journal: %s: record at offset %d: %w", path, off, err)
		}
		if err := fn(rec); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// Segments returns how many segment files the log currently spans (sealed
// plus active). Compaction policy hooks on this. It reads a mirrored count
// without taking the log's lock, so callers holding their own locks are
// never stalled behind a slow in-flight append.
func (l *Log) Segments() int {
	return int(l.segCount.Load())
}

// setSegCountLocked refreshes the lock-free segment-count mirror. Caller
// holds l.mu (or is constructing the Log).
func (l *Log) setSegCountLocked() {
	n := len(l.sealed)
	if l.active != nil {
		n++
	}
	l.segCount.Store(int64(n))
	l.opts.Metrics.Segments.Set(int64(n))
}

// Size returns the total on-disk byte size of the log.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := l.activeSize
	for _, idx := range l.sealed {
		if st, err := os.Stat(l.segPath(idx)); err == nil {
			total += st.Size()
		}
	}
	return total
}

// Compact rewrites the log keeping only the records for which keep returns
// true. The kept records land in one fresh segment numbered after every
// existing one; the old segments are then removed. A crash mid-compaction
// leaves either the old segments (compaction not yet visible) or old and new
// both — replay then sees each kept record twice, which is safe for
// consumers that apply records idempotently.
func (l *Log) Compact(keep func(Record) bool) error {
	err := l.compact(keep)
	if err != nil {
		l.opts.Metrics.Errors.Inc()
		return err
	}
	l.opts.Metrics.Compactions.Inc()
	return nil
}

func (l *Log) compact(keep func(Record) bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return fmt.Errorf("journal: log closed")
	}
	if err := l.syncFile(l.active); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	old := append(append([]int(nil), l.sealed...), l.activeIdx)
	var kept []Record
	for _, idx := range old {
		if err := replaySegment(l.segPath(idx), func(rec Record) error {
			if keep(rec) {
				kept = append(kept, rec)
			}
			return nil
		}); err != nil {
			return err
		}
	}

	newIdx := l.activeIdx + 1
	tmp := l.segPath(newIdx) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	write := func() error {
		if _, err := f.Write(segHeader()); err != nil {
			return err
		}
		for _, rec := range kept {
			frame, err := l.encodeBody(rec)
			if err != nil {
				return err
			}
			if _, err := f.Write(frame); err != nil {
				return err
			}
		}
		return l.syncFile(f)
	}
	if err := write(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := os.Rename(tmp, l.segPath(newIdx)); err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	// The compacted segment is durable; retire the old ones and append to it
	// from here on.
	l.active.Close()
	for _, idx := range old {
		os.Remove(l.segPath(idx))
	}
	f, err = os.OpenFile(l.segPath(newIdx), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("journal: compact: %w", err)
	}
	l.active, l.activeIdx, l.activeSize, l.sealed = f, newIdx, st.Size(), nil
	l.setSegCountLocked()
	return nil
}

// Sync flushes the active segment to disk.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return nil
	}
	if err := l.syncFile(l.active); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Close syncs and closes the log. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return nil
	}
	err := l.syncFile(l.active)
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	l.active = nil
	l.setSegCountLocked()
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}
