// Command convergence traces how fast different methods of the framework
// approach the true 4-clique concentration as the walk-step budget grows —
// a miniature of the paper's Figure 6: SRW2CSS converges fastest, PSRW
// (= SRW3 for 4-node graphlets) slowest.
package main

import (
	"fmt"
	"math"

	graphletrw "repro"
	"repro/internal/gen"
	"repro/internal/stats"
)

func main() {
	g := gen.HolmeKim(4000, 5, 0.7, 11)
	lcc, _ := graphletrw.LargestComponent(g)
	client := graphletrw.NewClient(lcc)
	truth := graphletrw.ExactConcentration(lcc, 4)
	const cliqueIdx = 5 // g4_6

	const (
		steps      = 20000
		checkpoint = 2000
		trials     = 60
	)
	methods := []graphletrw.Config{
		{K: 4, D: 2},
		{K: 4, D: 2, CSS: true},
		{K: 4, D: 3}, // PSRW
	}

	fmt.Printf("4-clique concentration convergence on %d-node graph (truth %.5f, %d trials)\n\n",
		lcc.NumNodes(), truth[cliqueIdx], trials)
	fmt.Printf("%-10s", "steps")
	for _, m := range methods {
		fmt.Printf("%12s", m.MethodName())
	}
	fmt.Println()

	series := make([][][]float64, len(methods)) // [method][trial][checkpoint]
	for mi, m := range methods {
		m := m
		series[mi] = stats.RunTrials(trials, func(trial int) []float64 {
			cfg := m
			cfg.Seed = int64(1000*trial + mi)
			est, err := graphletrw.NewEstimator(client, cfg)
			if err != nil {
				panic(err)
			}
			var points []float64
			_, err = est.RunCheckpoints(steps, checkpoint, func(step int, conc []float64) {
				points = append(points, conc[cliqueIdx])
			})
			if err != nil {
				panic(err)
			}
			return points
		})
	}
	nCheck := steps / checkpoint
	for s := 0; s < nCheck; s++ {
		fmt.Printf("%-10d", (s+1)*checkpoint)
		for mi := range methods {
			nrmse := stats.ConvergenceSeries(series[mi], truth[cliqueIdx])[s]
			if math.IsNaN(nrmse) {
				fmt.Printf("%12s", "-")
			} else {
				fmt.Printf("%12.4f", nrmse)
			}
		}
		fmt.Println()
	}
	fmt.Println("\n(values are NRMSE; lower is better — CSS wins, PSRW trails)")
}
