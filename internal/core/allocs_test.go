package core

import (
	"context"
	"testing"

	"repro/internal/access"
	"repro/internal/gen"
)

// The walk kernel's steady state must be allocation-free: once a walker is
// warm — stateInfo cache map buckets sized, scratch slices at capacity — a
// full window slide (classify + accumulate + transition) performs zero heap
// allocations. This is the allocation half of ISSUE 6's acceptance criteria;
// the throughput half lives in the BA1M benchmarks (bench_ba_test.go).
func TestWalkStepZeroAllocs(t *testing.T) {
	g := gen.BarabasiAlbert(2000, 4, 21)
	client := access.NewGraphClient(g)
	// CSS configurations are excluded: a valid CSS window re-enumerates the
	// sampling-probability chains (graphlet.EnumerateChains), which builds
	// its connected-subset table per call — a re-weighting cost outside the
	// neighbor kernel's zero-alloc contract.
	for _, cfg := range []Config{
		{K: 4, D: 3},
		{K: 5, D: 3},
		{K: 5, D: 4, NB: true},
	} {
		t.Run(cfg.MethodName(), func(t *testing.T) {
			wk := newWalker(client, cfg, 1)
			wk.reset()
			// Warm: several cache-clear cycles (infoCacheCap) and every
			// scratch-growth path.
			if err := wk.run(context.Background(), 3000); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(200, func() {
				if err := wk.accumulate(wk.res); err != nil {
					t.Fatal(err)
				}
				wk.advance()
				wk.res.Steps++
			})
			if allocs != 0 {
				t.Errorf("%v allocs per warm step, want 0", allocs)
			}
		})
	}
}
