// Package graphlet provides the combinatorial machinery of the paper that is
// independent of any concrete input graph: the catalog of all connected
// non-isomorphic k-node graphlets for k = 3, 4, 5, O(1) isomorphism
// classification via precomputed code tables, the state-corresponding
// coefficients α (Algorithm 2), and the chain enumeration shared with the
// corresponding-state-sampling optimization (Algorithm 3).
//
// A k-node induced subgraph is encoded as a bitmask ("code") over the
// k(k-1)/2 unordered node pairs in lexicographic order. The canonical code of
// a graph is the minimum code over all k! relabelings; two subgraphs are
// isomorphic iff their canonical codes agree. For k ≤ 5 there are at most
// 2^10 = 1024 codes, so classification is a table lookup.
package graphlet

import (
	"fmt"
	"sort"
)

// MaxK is the largest graphlet size supported by the catalog.
const MaxK = 5

// Graphlet describes one connected non-isomorphic induced subgraph pattern.
type Graphlet struct {
	K      int    // number of nodes
	ID     int    // paper ID, 1-based within size class (g^k_ID)
	Name   string // human-readable name ("triangle", "4-path", ...)
	Code   uint16 // canonical code
	Edges  int    // number of edges
	DegSeq []int  // degree sequence, ascending
	Adj    [5][5]bool
	// Alpha[d] is the state-corresponding coefficient α^k_i for the random
	// walk on G(d), for d = 1..k (Alpha[0] is unused). Alpha[k] = 1 (l = 1).
	Alpha []int64
}

// HamiltonPaths returns the number of undirected Hamiltonian paths of the
// graphlet, which equals Alpha[1]/2 (§3.2 of the paper).
func (g *Graphlet) HamiltonPaths() int64 { return g.Alpha[1] / 2 }

type kinfo struct {
	k        int
	pairs    [][2]int // lexicographic pair order; bit i of a code is pairs[i]
	perms    [][]int
	catalog  []Graphlet
	classify []int16 // code -> catalog index (0-based) or -1 if disconnected
}

var infos [MaxK + 1]*kinfo

func init() {
	for k := 3; k <= MaxK; k++ {
		infos[k] = buildKInfo(k)
	}
}

func ki(k int) *kinfo {
	if k < 3 || k > MaxK {
		panic(fmt.Sprintf("graphlet: unsupported size k=%d (want 3..%d)", k, MaxK))
	}
	return infos[k]
}

// Count returns the number of distinct connected k-node graphlets
// (2 for k=3, 6 for k=4, 21 for k=5).
func Count(k int) int { return len(ki(k).catalog) }

// Catalog returns the graphlets of size k ordered by paper ID (index i holds
// g^k_{i+1}). The returned slice is shared; callers must not modify it.
func Catalog(k int) []Graphlet { return ki(k).catalog }

// Pairs returns the lexicographic unordered-pair order defining code bits for
// size k. The returned slice is shared and must not be modified.
func Pairs(k int) [][2]int { return ki(k).pairs }

// ClassifyCode maps a k-node adjacency code to its 0-based catalog index
// (paper ID minus one), or -1 if the code is disconnected.
func ClassifyCode(k int, code uint16) int { return int(ki(k).classify[code]) }

// ByID returns the graphlet g^k_id (1-based paper ID).
func ByID(k, id int) *Graphlet { return &ki(k).catalog[id-1] }

// Alpha returns α^k_id for the random walk on G(d); id is the 1-based paper
// ID and d ranges over 1..k.
func Alpha(k, d, id int) int64 {
	g := ByID(k, id)
	if d < 1 || d > k {
		panic(fmt.Sprintf("graphlet: Alpha: d=%d out of range 1..%d", d, k))
	}
	return g.Alpha[d]
}

// CodeOf builds the adjacency code of k concrete nodes under the given edge
// predicate over node indices 0..k-1.
func CodeOf(k int, hasEdge func(i, j int) bool) uint16 {
	var code uint16
	for bit, p := range ki(k).pairs {
		if hasEdge(p[0], p[1]) {
			code |= 1 << uint(bit)
		}
	}
	return code
}

// buildKInfo constructs the catalog and classification table for size k.
func buildKInfo(k int) *kinfo {
	info := &kinfo{k: k}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			info.pairs = append(info.pairs, [2]int{i, j})
		}
	}
	info.perms = permutations(k)

	nb := len(info.pairs)
	nCodes := 1 << uint(nb)
	info.classify = make([]int16, nCodes)

	canonIndex := make(map[uint16]int16) // canonical code -> catalog index (temp order)
	var canonical []uint16
	for code := 0; code < nCodes; code++ {
		c := uint16(code)
		if !codeConnected(info, c) {
			info.classify[code] = -1
			continue
		}
		cc := canonicalCode(info, c)
		idx, ok := canonIndex[cc]
		if !ok {
			idx = int16(len(canonical))
			canonIndex[cc] = idx
			canonical = append(canonical, cc)
		}
		info.classify[code] = idx
	}

	// Build graphlets in temporary order.
	tmp := make([]Graphlet, len(canonical))
	for i, cc := range canonical {
		tmp[i] = makeGraphlet(info, cc)
	}
	// Compute α for every graphlet and every d.
	for i := range tmp {
		g := &tmp[i]
		g.Alpha = make([]int64, k+1)
		for d := 1; d <= k; d++ {
			g.Alpha[d] = computeAlpha(g, d)
		}
	}
	// Reorder to paper IDs and remap the classification table.
	order := paperOrder(k, tmp) // order[paperIdx] = tmp index
	remap := make([]int16, len(tmp))
	info.catalog = make([]Graphlet, len(tmp))
	for paperIdx, ti := range order {
		info.catalog[paperIdx] = tmp[ti]
		info.catalog[paperIdx].ID = paperIdx + 1
		info.catalog[paperIdx].Name = graphletName(k, paperIdx+1, &info.catalog[paperIdx])
		remap[ti] = int16(paperIdx)
	}
	for code := range info.classify {
		if info.classify[code] >= 0 {
			info.classify[code] = remap[info.classify[code]]
		}
	}
	return info
}

func makeGraphlet(info *kinfo, code uint16) Graphlet {
	g := Graphlet{K: info.k, Code: code}
	for bit, p := range info.pairs {
		if code&(1<<uint(bit)) != 0 {
			g.Adj[p[0]][p[1]] = true
			g.Adj[p[1]][p[0]] = true
			g.Edges++
		}
	}
	g.DegSeq = make([]int, info.k)
	for i := 0; i < info.k; i++ {
		d := 0
		for j := 0; j < info.k; j++ {
			if g.Adj[i][j] {
				d++
			}
		}
		g.DegSeq[i] = d
	}
	sort.Ints(g.DegSeq)
	return g
}

// codeConnected reports whether the graph encoded by code is connected.
func codeConnected(info *kinfo, code uint16) bool {
	k := info.k
	var adjMask [5]uint8
	for bit, p := range info.pairs {
		if code&(1<<uint(bit)) != 0 {
			adjMask[p[0]] |= 1 << uint(p[1])
			adjMask[p[1]] |= 1 << uint(p[0])
		}
	}
	reach := uint8(1)
	for {
		next := reach
		for v := 0; v < k; v++ {
			if reach&(1<<uint(v)) != 0 {
				next |= adjMask[v]
			}
		}
		if next == reach {
			break
		}
		reach = next
	}
	return reach == uint8(1<<uint(k))-1
}

// canonicalCode returns the minimum code over all relabelings.
func canonicalCode(info *kinfo, code uint16) uint16 {
	var adj [5][5]bool
	for bit, p := range info.pairs {
		if code&(1<<uint(bit)) != 0 {
			adj[p[0]][p[1]] = true
			adj[p[1]][p[0]] = true
		}
	}
	best := uint16(1<<uint(len(info.pairs))) - 1 // all ones upper bound
	first := true
	for _, perm := range info.perms {
		var c uint16
		for bit, p := range info.pairs {
			if adj[perm[p[0]]][perm[p[1]]] {
				c |= 1 << uint(bit)
			}
		}
		if first || c < best {
			best = c
			first = false
		}
	}
	return best
}

func permutations(k int) [][]int {
	var out [][]int
	cur := make([]int, 0, k)
	used := make([]bool, k)
	var rec func()
	rec = func() {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := 0; i < k; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			cur = append(cur, i)
			rec()
			cur = cur[:len(cur)-1]
			used[i] = false
		}
	}
	rec()
	return out
}
