package graph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
)

// maxLineBytes is the longest edge-list line ReadEdgeList accepts. Anything
// longer is almost certainly not a plain "u v" edge list.
const maxLineBytes = 1 << 20

// ReadEdgeList parses a whitespace-separated edge list ("u v" per line).
// Lines starting with '#' or '%' are comments; fields beyond the first two
// are ignored. Node IDs may be arbitrary non-negative integers; they are
// compacted to a dense range.
//
// The per-line scanning is allocation-free (manual field splitting and
// integer parsing on the scanner's byte buffer), which is what keeps parsing
// multi-million-edge lists I/O-bound.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	g, _, err := readEdgeList(r, false)
	return g, err
}

// ReadEdgeListKeepIDs is ReadEdgeList, additionally returning the
// dense→source ID mapping the compaction built (ids[v] is the input ID that
// became dense node v). The mapping is not attached to the graph — callers
// compose it through whatever reindexing follows (LargestComponent) and
// attach the result with SetOriginalIDs.
func ReadEdgeListKeepIDs(r io.Reader) (*Graph, []int64, error) {
	return readEdgeList(r, true)
}

func readEdgeList(r io.Reader, keepIDs bool) (*Graph, []int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	remap := make(map[int64]int32)
	var ids []int64
	id := func(x int64) int32 {
		if v, ok := remap[x]; ok {
			return v
		}
		v := int32(len(remap))
		remap[x] = v
		if keepIDs {
			ids = append(ids, x)
		}
		return v
	}
	b := NewBuilder(0)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		i := skipSpace(line, 0)
		if i == len(line) || line[i] == '#' || line[i] == '%' {
			continue
		}
		u, i, err := scanInt(line, i, lineNo)
		if err != nil {
			return nil, nil, err
		}
		i = skipSpace(line, i)
		if i == len(line) {
			return nil, nil, fmt.Errorf("graph: line %d: expected two fields, got %q", lineNo, line)
		}
		v, _, err := scanInt(line, i, lineNo)
		if err != nil {
			return nil, nil, err
		}
		b.AddEdge(id(u), id(v))
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, nil, fmt.Errorf("graph: line %d: line exceeds the %d-byte limit (%v); input is not a plain edge list — binary graphs use the .gcsr format (see graph.Load)", lineNo+1, maxLineBytes, err)
		}
		return nil, nil, err
	}
	return b.Build(), ids, nil
}

// skipSpace returns the index of the first non-whitespace byte at or after i.
func skipSpace(b []byte, i int) int {
	for i < len(b) {
		switch b[i] {
		case ' ', '\t', '\r', '\v', '\f':
			i++
		default:
			return i
		}
	}
	return i
}

// scanInt parses a decimal int64 starting at b[i], stopping at whitespace or
// end of line. It mirrors strconv.ParseInt's base-10 semantics (optional
// sign, overflow detection) without allocating.
func scanInt(b []byte, i, lineNo int) (int64, int, error) {
	start := i
	neg := false
	if i < len(b) && (b[i] == '-' || b[i] == '+') {
		neg = b[i] == '-'
		i++
	}
	const cutoff = (1<<63 - 1) / 10
	var x int64
	digits := 0
	for ; i < len(b); i++ {
		c := b[i]
		if c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f' {
			break
		}
		if c < '0' || c > '9' {
			return 0, i, fmt.Errorf("graph: line %d: bad integer %q", lineNo, b[start:i+1])
		}
		if x > cutoff {
			return 0, i, fmt.Errorf("graph: line %d: integer %q overflows int64", lineNo, b[start:])
		}
		x = x*10 + int64(c-'0')
		if x < 0 {
			return 0, i, fmt.Errorf("graph: line %d: integer %q overflows int64", lineNo, b[start:])
		}
		digits++
	}
	if digits == 0 {
		return 0, i, fmt.Errorf("graph: line %d: bad integer %q", lineNo, b[start:i])
	}
	if neg {
		x = -x
	}
	return x, i, nil
}

// LoadEdgeList reads an edge-list file from disk.
func LoadEdgeList(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// LoadEdgeListKeepIDs reads an edge-list file from disk, keeping the
// dense→source ID mapping (see ReadEdgeListKeepIDs).
func LoadEdgeListKeepIDs(path string) (*Graph, []int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadEdgeListKeepIDs(f)
}

// WriteEdgeList writes the graph as "u v" lines (u < v).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	var werr error
	g.Edges(func(u, v int32) bool {
		if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// SaveEdgeList writes the graph to a file.
func SaveEdgeList(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
