package service

import (
	"sync"

	"repro/internal/service/journal"
)

// The asynchronous journal pipeline: state transitions enqueue their records
// under Manager.mu — which fixes the on-disk order to match the in-memory
// transition order — but the actual writes (and fsyncs, and compactions)
// happen on a single writer goroutine draining the queue FIFO. A slow disk
// under -fsync therefore stalls the writer, never the API surface: Submit,
// checkpoint callbacks and finishes release Manager.mu immediately after the
// (in-memory) enqueue.
//
// The trade-off is a bounded durability window: a record is on disk a queue
// drain after its transition, not before the submitter's HTTP response. A
// crash can lose the tail of the queue — the same tail a non-fsync
// synchronous journal could lose from the page cache — and recovery handles
// any prefix of the history by construction.

// jnlOp is one unit of the ordered append queue: a record append or a
// barrier (close the channel once everything ahead of it has reached the
// journal — tests use this to simulate crashes at known durability points).
type jnlOp struct {
	rec     journal.Record
	barrier chan struct{}
}

// appendQueue is an unbounded FIFO of journal operations. Unbounded is the
// point: a bounded queue would re-couple the API to disk speed the moment it
// filled, and queue memory is bounded in practice by job activity (records
// are a few KB; the writer drains at disk speed).
type appendQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ops    []jnlOp
	closed bool
}

func newAppendQueue() *appendQueue {
	q := &appendQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues op; it reports false once the queue is closed (the op is
// dropped — the manager is shutting down).
func (q *appendQueue) push(op jnlOp) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.ops = append(q.ops, op)
	q.cond.Signal()
	return true
}

// next blocks until operations are available and returns the whole batch in
// FIFO order. ok is false once the queue is closed and drained.
func (q *appendQueue) next() (ops []jnlOp, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.ops) == 0 && !q.closed {
		q.cond.Wait()
	}
	ops, q.ops = q.ops, nil
	return ops, !q.closed || len(ops) > 0
}

// close marks the queue closed; the writer drains what is already queued and
// exits.
func (q *appendQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// journalWriter is the single goroutine draining the append queue into the
// journal in order. It is also where compaction triggers: only here is the
// segment count authoritative (appends are asynchronous, so a check on the
// submitting side races the rotation it is looking for), and triggering at
// the rotation that crosses the bound bounds the rewrite rate to one
// compaction per segment of growth.
func (m *Manager) journalWriter() {
	defer m.jnlWg.Done()
	for {
		ops, ok := m.jq.next()
		for _, op := range ops {
			if op.barrier != nil {
				close(op.barrier)
				continue
			}
			// The journal counts its own append failures
			// (journal.Metrics.Errors); the daemon keeps serving from
			// memory either way.
			before := m.jnl.Segments()
			_ = m.jnl.Append(op.rec)
			if after := m.jnl.Segments(); after > before && after > m.opts.CompactSegments {
				m.compactJournalAsync()
			}
		}
		if !ok {
			return
		}
	}
}

// syncJournal blocks until every journal operation enqueued before the call
// has been written (and requested compactions have completed). Tests use it
// to pin the on-disk log to a known state before simulating a crash; it is
// not on any serving path.
func (m *Manager) syncJournal() {
	if m.jnl == nil {
		return
	}
	ch := make(chan struct{})
	if !m.jq.push(jnlOp{barrier: ch}) {
		return
	}
	<-ch
}

// compactJournalAsync runs one compaction on the writer goroutine. The keep
// decision needs the job table and cache-owner set, which Manager.mu guards:
// they are snapshotted under the lock, then the (slow) segment rewrite runs
// without it. Records enqueued before this operation are already on disk
// (FIFO queue); records enqueued after it land in the post-compaction
// segment — so a snapshot taken here is consistent with everything the
// compaction can see.
func (m *Manager) compactJournalAsync() {
	m.mu.Lock()
	terminal := make(map[string]bool, len(m.jobs))
	for id, j := range m.jobs {
		terminal[id] = j.state.terminal()
	}
	owners := m.cache.ownerSet()
	m.mu.Unlock()

	keep, err := m.newKeepFunc(terminal, owners)
	if err != nil {
		// The retention rule failed to build before the journal saw the
		// operation, so count the failure here; Compact itself counts its own.
		m.met.journal.Errors.Inc()
		return
	}
	_ = m.jnl.Compact(keep)
}

// newKeepFunc builds the compaction retention rule over a consistent
// snapshot of the job table: cache-owning jobs keep their submitted/done
// pair (so a restart re-warms the LRU even after the producing job was
// pruned); jobs still in the table keep their submitted records, terminal
// jobs their terminal record, and live jobs their started record plus their
// *latest* checkpoint — the one carrying the resume snapshot replay would
// pick anyway ("latest wins"); earlier checkpoints are superseded, and
// keeping them would grow the log with run length instead of the job table.
// Spotting the latest needs a pre-scan (the filter sees one record at a
// time), which is safe because appends and compactions are serialized on
// the journal writer goroutine — nothing lands between the scan and the
// rewrite. The returned filter is single-use: it counts the checkpoints it
// passes against the pre-scanned totals.
func (m *Manager) newKeepFunc(terminal, owners map[string]bool) (func(journal.Record) bool, error) {
	ckptTotal := make(map[string]int)
	if err := m.jnl.Replay(func(rec journal.Record) error {
		if rec.Type == journal.TypeCheckpoint {
			ckptTotal[rec.Job]++
		}
		return nil
	}); err != nil {
		return nil, err
	}
	ckptSeen := make(map[string]int)
	return func(rec journal.Record) bool {
		if rec.Type == journal.TypeCheckpoint {
			ckptSeen[rec.Job]++
		}
		if owners[rec.Job] {
			return rec.Type == journal.TypeSubmitted || rec.Type == journal.TypeDone
		}
		isTerminal, ok := terminal[rec.Job]
		if !ok {
			return false
		}
		switch rec.Type {
		case journal.TypeSubmitted:
			return true
		case journal.TypeDone, journal.TypeFailed, journal.TypeCanceled:
			return isTerminal
		case journal.TypeStarted:
			return !isTerminal
		case journal.TypeCheckpoint:
			return !isTerminal && ckptSeen[rec.Job] == ckptTotal[rec.Job]
		}
		return false
	}, nil
}
