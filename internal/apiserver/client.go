package apiserver

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"

	"repro/internal/access"
)

// Client implements access.Client over the crawl API. Fetched neighborhoods
// are cached, as a real crawler would do, so each node costs one request no
// matter how many walk steps revisit it; edge probes are answered from the
// cache when either endpoint was fetched.
//
// Client is not safe for concurrent use (one crawler per walk, as usual);
// wrap per-goroutine instances around the same base URL for parallel trials.
type Client struct {
	base string
	http *http.Client

	cache map[int32][]int32
	// Requests counts HTTP round trips actually issued.
	Requests int64
}

var _ access.Client = (*Client)(nil)

// NewClient crawls the API at base (e.g. "http://127.0.0.1:8080"). If hc is
// nil, http.DefaultClient is used.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: base, http: hc, cache: make(map[int32][]int32)}
}

func (c *Client) fetch(v int32) []int32 {
	if ns, ok := c.cache[v]; ok {
		return ns
	}
	var resp neighborsResponse
	c.get(fmt.Sprintf("%s/v1/nodes/%d/neighbors", c.base, v), &resp)
	c.cache[v] = resp.Neighbors
	return resp.Neighbors
}

func (c *Client) get(url string, out any) {
	c.Requests++
	r, err := c.http.Get(url)
	if err != nil {
		panic(fmt.Sprintf("apiserver client: %v", err))
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		panic(fmt.Sprintf("apiserver client: %s returned %s", url, r.Status))
	}
	if err := json.NewDecoder(r.Body).Decode(out); err != nil {
		panic(fmt.Sprintf("apiserver client: decode %s: %v", url, err))
	}
}

// Degree implements access.Client.
func (c *Client) Degree(v int32) int { return len(c.fetch(v)) }

// Neighbors implements access.Client.
func (c *Client) Neighbors(v int32) []int32 { return c.fetch(v) }

// Neighbor implements access.Client.
func (c *Client) Neighbor(v int32, i int) int32 { return c.fetch(v)[i] }

// HasEdge implements access.Client, answering from cached neighbor lists
// when possible and otherwise fetching the smaller-unknown endpoint — the
// strategy a polite crawler uses instead of a dedicated edge endpoint.
func (c *Client) HasEdge(u, v int32) bool {
	if ns, ok := c.cache[u]; ok {
		return containsSorted(ns, v)
	}
	if ns, ok := c.cache[v]; ok {
		return containsSorted(ns, u)
	}
	return containsSorted(c.fetch(u), v)
}

// RandomNode implements access.Client via the server's seed endpoint. The
// local rng parameter is unused: seed selection happens server-side, as with
// real crawl seeds obtained out of band.
func (c *Client) RandomNode(_ *rand.Rand) int32 {
	var resp randomNodeResponse
	c.get(c.base+"/v1/nodes/random", &resp)
	return resp.ID
}

func containsSorted(ns []int32, v int32) bool {
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}
