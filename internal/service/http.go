package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// Server is the HTTP front end of the estimation service.
//
// Endpoints (JSON):
//
//	GET    /v1/graphs            -> {"graphs":[{name,source,nodes,edges,max_degree}...]}
//	GET    /v1/graphs/{name}     -> one GraphInfo
//	POST   /v1/jobs              -> submit a Spec; 202 + JobView (200 when a
//	                                cache hit answers it instantly)
//	GET    /v1/jobs              -> all jobs in submission order
//	GET    /v1/jobs/{id}         -> one JobView with live progress
//	DELETE /v1/jobs/{id}         -> cancel; the walker ensemble stops at its
//	                                next checkpoint barrier
//	GET    /v1/stats             -> service counters (runs, cache hits, ...)
type Server struct {
	reg *Registry
	mgr *Manager
}

// NewServer wires the registry and job manager into an HTTP handler.
func NewServer(reg *Registry, mgr *Manager) *Server {
	return &Server{reg: reg, mgr: mgr}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimSuffix(r.URL.Path, "/")
	switch {
	case path == "/v1/graphs" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]any{"graphs": s.reg.List()})
	case strings.HasPrefix(path, "/v1/graphs/") && r.Method == http.MethodGet:
		name := strings.TrimPrefix(path, "/v1/graphs/")
		info, ok := s.reg.Info(name)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Sprintf("unknown graph %q", name))
			return
		}
		writeJSON(w, http.StatusOK, info)
	case path == "/v1/jobs" && r.Method == http.MethodPost:
		s.submit(w, r)
	case path == "/v1/jobs" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]any{"jobs": s.mgr.List()})
	case strings.HasPrefix(path, "/v1/jobs/"):
		s.job(w, r, strings.TrimPrefix(path, "/v1/jobs/"))
	case path == "/v1/stats" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, s.mgr.Stats())
	default:
		writeError(w, http.StatusNotFound, "not found")
	}
}

// submit decodes a Spec and admits it.
func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad spec: %v", err))
		return
	}
	view, err := s.mgr.Submit(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	status := http.StatusAccepted
	if view.State.terminal() { // cache hit: answered without queueing
		status = http.StatusOK
	}
	writeJSON(w, status, view)
}

// job dispatches GET (poll) and DELETE (cancel) for one job ID.
func (s *Server) job(w http.ResponseWriter, r *http.Request, id string) {
	switch r.Method {
	case http.MethodGet:
		view, ok := s.mgr.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
			return
		}
		writeJSON(w, http.StatusOK, view)
	case http.MethodDelete:
		view, err := s.mgr.Cancel(id)
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, view)
	default:
		writeError(w, http.StatusMethodNotAllowed, "method not allowed")
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
