package core

import (
	"fmt"
	"math/rand"

	"repro/internal/access"
	"repro/internal/graphlet"
	"repro/internal/walk"
)

// MultiEstimator estimates the concentrations of several graphlet sizes
// simultaneously from random walks on G(d) — the joint-estimation idea
// behind MSS [36], generalized to this framework: a window of l_k = k-d+1
// consecutive states is maintained per target size k, and each size
// re-weights its own samples exactly as the single-size estimator does. One
// walk's API cost therefore buys every size's estimate at once.
//
// Like Estimator, it is an ensemble: MultiConfig.Walkers independent
// multi-size walkers split the window budget and their per-size Results
// merge by summation in walker-index order.
type MultiEstimator struct {
	cfg     MultiConfig
	client  access.Client
	walkers []*multiWalker
}

// MultiConfig configures a MultiEstimator.
type MultiConfig struct {
	// Sizes lists the target graphlet sizes, each in 3..5 and >= D.
	Sizes []int
	// D is the shared walk order (>= 1, <= min(Sizes)).
	D int
	// CSS and NB enable the §4 optimizations for every size (CSS applies
	// where l > 2).
	CSS, NB bool
	// Walkers is the number of independent concurrent walks (0 and 1 both
	// mean one); semantics match Config.Walkers.
	Walkers int
	Seed    int64
}

// Validate checks the configuration.
func (c MultiConfig) Validate() error {
	if len(c.Sizes) == 0 {
		return fmt.Errorf("core: MultiConfig needs at least one size")
	}
	for _, k := range c.Sizes {
		if k < 3 || k > graphlet.MaxK {
			return fmt.Errorf("core: size %d out of range 3..%d", k, graphlet.MaxK)
		}
		if c.D > k {
			return fmt.Errorf("core: D=%d exceeds size %d", c.D, k)
		}
	}
	if c.D < 1 {
		return fmt.Errorf("core: D=%d out of range", c.D)
	}
	if c.Walkers < 0 {
		return fmt.Errorf("core: negative Walkers %d", c.Walkers)
	}
	return nil
}

// NewMultiEstimator builds the joint estimator.
func NewMultiEstimator(client access.Client, cfg MultiConfig) (*MultiEstimator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ws := make([]*multiWalker, walkerCount(cfg.Walkers))
	for i := range ws {
		ws[i] = newMultiWalker(client, cfg, walkerSeed(cfg.Seed, i))
	}
	return &MultiEstimator{cfg: cfg, client: client, walkers: ws}, nil
}

// MultiResult holds one Result per requested size, keyed by k.
type MultiResult struct {
	Steps   int
	Results map[int]*Result
}

// Merge folds o into m: Steps sum, and each size's Result merges
// (Result.Merge). Both MultiResults must come from the same MultiConfig.
func (m *MultiResult) Merge(o *MultiResult) {
	m.Steps += o.Steps
	for k, r := range o.Results {
		m.Results[k].Merge(r)
	}
}

// Run advances the walkers for n windows in total and returns the merged
// per-size estimates.
func (m *MultiEstimator) Run(n int) (*MultiResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: non-positive sample budget %d", n)
	}
	nw := len(m.walkers)
	for _, wk := range m.walkers {
		wk.reset()
	}
	// Sequential seed draws: see walker.ensureSeeded.
	for _, wk := range m.walkers {
		wk.ensureSeeded()
	}
	if err := runStage(nw, func(i int) error {
		return m.walkers[i].run(walkerQuota(n, nw, i))
	}); err != nil {
		return nil, err
	}
	out := m.walkers[0].emptyResult()
	for _, wk := range m.walkers {
		out.Merge(wk.res)
	}
	return out, nil
}

// multiWalker is the per-goroutine layer of the multi-size engine: one walk
// whose ring of the last max(l_k) states serves every target size's window.
type multiWalker struct {
	client access.Client
	space  walk.Space
	rng    *rand.Rand
	w      *walk.Walk
	d      int
	css    bool
	nb     bool

	sizes []int
	maxL  int

	// Ring of the last maxL states and their degrees.
	win    []walk.State
	degs   []int
	filled int
	ring   int

	scratchNodes []int32
	scratchChain []int32

	res    *MultiResult
	seeded bool
	primed bool
}

func newMultiWalker(client access.Client, cfg MultiConfig, seed int64) *multiWalker {
	maxL := 0
	for _, k := range cfg.Sizes {
		if l := k - cfg.D + 1; l > maxL {
			maxL = l
		}
	}
	return &multiWalker{
		client: client,
		space:  walk.NewSpace(client, cfg.D),
		rng:    rand.New(rand.NewSource(seed)),
		d:      cfg.D,
		css:    cfg.CSS,
		nb:     cfg.NB,
		sizes:  append([]int(nil), cfg.Sizes...),
		maxL:   maxL,
		win:    make([]walk.State, maxL),
		degs:   make([]int, maxL),
	}
}

// emptyResult allocates a zeroed MultiResult shaped for the walker's sizes.
func (m *multiWalker) emptyResult() *MultiResult {
	out := &MultiResult{Results: map[int]*Result{}}
	for _, k := range m.sizes {
		out.Results[k] = &Result{
			Config:     Config{K: k, D: m.d, CSS: m.css, NB: m.nb},
			Weights:    make([]float64, graphlet.Count(k)),
			TypeCounts: make([]int64, graphlet.Count(k)),
		}
	}
	return out
}

func (m *multiWalker) reset() {
	m.res = m.emptyResult()
	m.seeded = false
	m.primed = false
}

// ensureSeeded mirrors walker.ensureSeeded for the multi-size engine: only
// the start-state draw needs walker-index ordering.
func (m *multiWalker) ensureSeeded() {
	if !m.seeded {
		m.w = walk.New(m.space, m.nb, m.rng)
		m.seeded = true
	}
}

// start primes the walker: start state drawn, first window filled.
func (m *multiWalker) start() {
	m.ensureSeeded()
	if m.primed {
		return
	}
	m.filled = 0
	m.ring = 0
	m.push(m.w.Current())
	for m.filled < m.maxL {
		m.push(m.w.Step())
	}
	m.primed = true
}

// run processes `count` windows into the walker's private MultiResult.
func (m *multiWalker) run(count int) error {
	m.start()
	for t := 0; t < count; t++ {
		for _, k := range m.sizes {
			if err := m.accumulateSize(k, m.res.Results[k]); err != nil {
				return err
			}
			m.res.Results[k].Steps++
		}
		m.push(m.w.Step())
		m.res.Steps++
	}
	return nil
}

func (m *multiWalker) push(s walk.State) {
	if m.filled < m.maxL {
		m.win[m.filled] = s
		m.degs[m.filled] = m.space.StateDegree(s)
		m.filled++
		return
	}
	m.win[m.ring] = s
	m.degs[m.ring] = m.space.StateDegree(s)
	m.ring = (m.ring + 1) % m.maxL
}

// windowFor returns an accessor for the i-th state (0 = oldest) of the
// length-l window ending at the newest state.
func (m *multiWalker) windowFor(l int) func(i int) (walk.State, int) {
	offset := m.maxL - l
	return func(i int) (walk.State, int) {
		j := (m.ring + offset + i) % m.maxL
		return m.win[j], m.degs[j]
	}
}

func (m *multiWalker) accumulateSize(k int, res *Result) error {
	l := k - m.d + 1
	at := m.windowFor(l)
	nodes := m.scratchNodes[:0]
	for i := 0; i < l; i++ {
		s, _ := at(i)
		for j := 0; j < s.Len(); j++ {
			x := s.Node(j)
			seen := false
			for _, y := range nodes {
				if y == x {
					seen = true
					break
				}
			}
			if !seen {
				nodes = append(nodes, x)
			}
		}
	}
	m.scratchNodes = nodes
	if len(nodes) != k {
		return nil
	}
	res.ValidSamples++
	code := windowCode(m.client, m.space, k, l, nodes, at)
	typ := graphlet.ClassifyCode(k, code)
	if typ < 0 {
		return fmt.Errorf("core: multi window %v disconnected", nodes)
	}
	res.TypeCounts[typ]++

	var weight float64
	if m.css && l > 2 {
		p := samplingProbabilityWith(m.client, m.space, k, m.d, m.nb, nodes, &m.scratchChain)
		if p <= 0 {
			return fmt.Errorf("core: multi zero sampling probability")
		}
		weight = 1 / p
	} else {
		alpha := graphlet.Alpha(k, m.d, typ+1)
		if alpha == 0 {
			return fmt.Errorf("core: multi walk produced type g%d_%d with alpha=0", k, typ+1)
		}
		pie := 1.0
		switch {
		case l == 1:
			_, deg := at(0)
			pie = float64(deg)
		case l > 2:
			for i := 1; i < l-1; i++ {
				_, deg := at(i)
				if m.nb {
					deg = nominal(deg)
				}
				pie *= 1 / float64(deg)
			}
		}
		weight = 1 / (float64(alpha) * pie)
	}
	res.Weights[typ] += weight
	return nil
}
