package dist

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/access"
	"repro/internal/core"
)

// Options configures a coordinated distributed run.
type Options struct {
	// Peers are worker base URLs (e.g. "http://node2:8080"). Partition p's
	// attempt a goes to peer (p+a) mod len(Peers), so partitions spread
	// across the fleet and retries rotate away from a failing node.
	Peers []string

	// HTTPClient issues the partition POSTs. It must not set an overall
	// Timeout (partition streams run for the whole job); stalls are caught
	// by StallTimeout instead. Nil means a fresh client.
	HTTPClient *http.Client

	// Retries is how many remote attempts a partition gets before failing
	// over to local execution (default 3).
	Retries int

	// Backoff is the base delay between a partition's attempts, growing
	// exponentially and jittered by ±50% (default 250ms).
	Backoff time.Duration

	// StallTimeout aborts an attempt when the worker stream produces no
	// frame for this long (default 2m). It must comfortably exceed the
	// expected gap between checkpoint barriers.
	StallTimeout time.Duration

	// LocalClient, when set, supplies a crawl client for running a
	// partition on the coordinator itself after remote attempts are
	// exhausted — the last-resort failover that lets a job complete with
	// every peer dead. Nil disables local failover.
	LocalClient func() access.Client

	// Metrics instruments the run; nil disables instrumentation.
	Metrics *Metrics

	// OnSync fires — serialized, with strictly increasing targets — each
	// time every partition has reached a common checkpoint target, with the
	// combined full-ensemble state encoded: the coordinator's journal
	// checkpoint, from which a restarted coordinator (or a plain local run)
	// can resume.
	OnSync func(target int, combined []byte)

	// OnResume fires once per partition that completes after restoring a
	// snapshot, with the number of already-processed windows the restore
	// preserved (the partition's quota share of the snapshot's target).
	// Summing these over partitions gives the job's exact resumed-window
	// count, whether the snapshots came from assignment Resume blobs or
	// from mid-run failover.
	OnResume func(preserved int)
}

func (o *Options) retries() int {
	if o.Retries <= 0 {
		return 3
	}
	return o.Retries
}

func (o *Options) backoff() time.Duration {
	if o.Backoff <= 0 {
		return 250 * time.Millisecond
	}
	return o.Backoff
}

func (o *Options) stallTimeout() time.Duration {
	if o.StallTimeout <= 0 {
		return 2 * time.Minute
	}
	return o.StallTimeout
}

// Run executes one job's partitions across the fleet and returns the final
// encoded partition states in partition order. The assignments must cover
// disjoint contiguous walker ranges of the same job (same config, budget and
// checkpoint spacing), in ascending Lo order; Run validates none of this —
// the caller builds them with a splitter like PartitionAssignments, and
// core.CombinePartitionStates rejects inconsistent results downstream.
//
// On the first partition failure (after that partition's retries and local
// failover are exhausted) the remaining partitions are canceled and the
// first error in partition order is returned, alongside any finals that did
// complete (entries for failed partitions are nil).
func Run(ctx context.Context, opts Options, asns []*Assignment) ([][]byte, error) {
	if len(asns) == 0 {
		return nil, fmt.Errorf("dist: no partitions to run")
	}
	for _, asn := range asns {
		if err := asn.Validate(); err != nil {
			return nil, err
		}
	}
	c := &coordinator{
		opts:    opts,
		httpc:   opts.HTTPClient,
		asns:    asns,
		tracker: newSyncTracker(len(asns), asns[0].Multi != nil, opts.OnSync),
		finals:  make([][]byte, len(asns)),
	}
	if c.httpc == nil {
		c.httpc = &http.Client{}
	}
	if c.opts.Metrics == nil {
		c.opts.Metrics = &Metrics{}
	}
	// Seed each partition's resume state so retries restart from at least
	// the assignment's own blob.
	for p, asn := range asns {
		if len(asn.Resume) > 0 {
			t, err := stateTarget(asn, asn.Resume)
			if err != nil {
				return nil, fmt.Errorf("dist: partition %d resume blob: %w", p, err)
			}
			c.tracker.store(p, t, asn.Resume)
		}
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(asns))
	var wg sync.WaitGroup
	for p := range asns {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			if err := c.runOne(cctx, p); err != nil {
				errs[p] = err
				cancel() // first hard failure aborts the job
			}
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return c.finals, err
		}
	}
	return c.finals, nil
}

// PartitionAssignments splits a job into n contiguous walker-range
// assignments (fewer when the ensemble has fewer walkers), sharing the given
// base fields. The split matches core's quota rule: partition p covers
// global walkers [p*W/n, (p+1)*W/n).
func PartitionAssignments(base Assignment, n int) []*Assignment {
	w := base.Walkers()
	if n > w {
		n = w
	}
	if n < 1 {
		n = 1
	}
	out := make([]*Assignment, n)
	for p := 0; p < n; p++ {
		asn := base
		asn.Lo, asn.Hi = p*w/n, (p+1)*w/n
		out[p] = &asn
	}
	return out
}

type coordinator struct {
	opts    Options
	httpc   *http.Client
	asns    []*Assignment
	tracker *syncTracker
	finals  [][]byte
}

// runOne drives partition p to completion: remote attempts with rotating
// peers and jittered exponential backoff, then local failover. Each attempt
// resumes from the freshest snapshot the tracker has seen for p.
func (c *coordinator) runOne(ctx context.Context, p int) error {
	m := c.opts.Metrics
	asn := *c.asns[p] // private copy; Resume mutates per attempt
	var lastErr error
	for attempt := 0; attempt < c.opts.retries() && len(c.opts.Peers) > 0; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if attempt > 0 {
			m.Partitions.With("retried").Inc()
			if err := sleepJittered(ctx, c.opts.backoff(), attempt); err != nil {
				return err
			}
		}
		peer := c.opts.Peers[(p+attempt)%len(c.opts.Peers)]
		resumeTarget := c.refreshResume(p, &asn)
		m.Partitions.With("dispatched").Inc()
		err := c.runRemote(ctx, peer, &asn, p)
		if err == nil {
			m.Partitions.With("completed").Inc()
			c.onPartitionDone(p, resumeTarget)
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		lastErr = fmt.Errorf("peer %s: %w", peer, err)
	}
	if c.opts.LocalClient == nil {
		m.Partitions.With("failed").Inc()
		if lastErr == nil {
			lastErr = fmt.Errorf("no peers and no local failover")
		}
		return fmt.Errorf("dist: partition [%d,%d): %w", asn.Lo, asn.Hi, lastErr)
	}

	// Local failover: same execution path as the worker, frames fed
	// straight into the tracker.
	m.Partitions.With("failover_local").Inc()
	resumeTarget := c.refreshResume(p, &asn)
	err := c.runLocal(ctx, p, &asn)
	if errors.Is(err, ErrBadResume) {
		// The freshest snapshot is unusable; burn it and start over.
		asn.Resume = nil
		resumeTarget = 0
		err = c.runLocal(ctx, p, &asn)
	}
	if err != nil {
		m.Partitions.With("failed").Inc()
		if lastErr != nil {
			err = fmt.Errorf("%w (after remote attempts: %v)", err, lastErr)
		}
		return fmt.Errorf("dist: partition [%d,%d): %w", asn.Lo, asn.Hi, err)
	}
	m.Partitions.With("completed").Inc()
	c.onPartitionDone(p, resumeTarget)
	return nil
}

// refreshResume points the assignment at the freshest snapshot the tracker
// has for p and returns that snapshot's target (0 when starting fresh).
func (c *coordinator) refreshResume(p int, asn *Assignment) int {
	t, blob := c.tracker.latest(p)
	if t > 0 {
		asn.Resume = blob
	}
	return t
}

func (c *coordinator) onPartitionDone(p, resumeTarget int) {
	if resumeTarget > 0 && c.opts.OnResume != nil {
		asn := c.asns[p]
		c.opts.OnResume(core.PartitionWindows(resumeTarget, asn.Walkers(), asn.Lo, asn.Hi))
	}
}

func (c *coordinator) runLocal(ctx context.Context, p int, asn *Assignment) error {
	final, err := runPartitionTracked(ctx, c.opts.LocalClient(), asn, c.tracker, p)
	if err != nil {
		return err
	}
	c.finals[p] = final
	return nil
}

// runPartitionTracked runs a partition in-process, storing every frame in
// the tracker, and returns the final state blob.
func runPartitionTracked(ctx context.Context, client access.Client, asn *Assignment, tr *syncTracker, p int) ([]byte, error) {
	var final []byte
	err := RunPartition(ctx, client, asn, func(f *Frame) error {
		if err := tr.store(p, f.Target, f.State); err != nil {
			return err
		}
		if f.Kind == FrameFinal {
			final = f.State
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if final == nil {
		return nil, fmt.Errorf("dist: partition run produced no final state")
	}
	return final, nil
}

// runRemote posts the assignment to one peer and consumes its frame stream.
func (c *coordinator) runRemote(ctx context.Context, peer string, asn *Assignment, p int) error {
	m := c.opts.Metrics
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, peer+"/v1/partitions", bytes.NewReader(asn.Encode()))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	start := time.Now()
	resp, err := c.httpc.Do(req)
	if err != nil {
		m.PeerHealthy.With(peer).Set(0)
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		m.PeerHealthy.With(peer).Set(0)
		detail, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(detail))
	}

	// Stall watchdog: a worker that stops producing frames (dead process
	// behind a live TCP connection, wedged walk) gets its attempt canceled
	// so the retry loop can move on.
	watchdog := time.AfterFunc(c.opts.stallTimeout(), cancel)
	defer watchdog.Stop()

	br := bufio.NewReader(resp.Body)
	first := true
	for {
		f, err := ReadFrame(br)
		if err != nil {
			m.PeerHealthy.With(peer).Set(0)
			if err == io.EOF {
				return fmt.Errorf("stream ended before final frame")
			}
			if rctx.Err() != nil && ctx.Err() == nil {
				return fmt.Errorf("no frame for %s (stalled stream)", c.opts.stallTimeout())
			}
			return err
		}
		watchdog.Reset(c.opts.stallTimeout())
		if first {
			m.DispatchSeconds.Observe(time.Since(start).Seconds())
			first = false
		}
		switch f.Kind {
		case FrameSnapshot:
			if err := c.tracker.store(p, f.Target, f.State); err != nil {
				return err
			}
		case FrameFinal:
			if err := c.tracker.store(p, f.Target, f.State); err != nil {
				return err
			}
			c.finals[p] = f.State
			m.StreamSeconds.Observe(time.Since(start).Seconds())
			m.PeerHealthy.With(peer).Set(1)
			return nil
		case FrameError:
			m.PeerHealthy.With(peer).Set(0)
			return fmt.Errorf("worker: %s", f.Msg)
		}
	}
}

// stateTarget extracts the checkpoint target a resume blob was captured at.
func stateTarget(asn *Assignment, blob []byte) (int, error) {
	if asn.Multi != nil {
		st, err := core.DecodeMultiEnsembleState(blob)
		if err != nil {
			return 0, err
		}
		return st.WindowsDone, nil
	}
	st, err := core.DecodeEnsembleState(blob)
	if err != nil {
		return 0, err
	}
	return st.WindowsDone, nil
}

func sleepJittered(ctx context.Context, base time.Duration, attempt int) error {
	d := base << uint(attempt-1)
	if d > 10*time.Second {
		d = 10 * time.Second
	}
	// ±50% jitter decorrelates retry storms across partitions.
	d = time.Duration(float64(d) * (0.5 + rand.Float64()))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// syncTracker accumulates per-partition snapshots and detects the moments
// every partition has reached a common checkpoint target; at each such
// target it combines the partition states into one full-ensemble state and
// fires the OnSync callback. It also retains each partition's freshest
// snapshot indefinitely, as the retry/failover resume state.
type syncTracker struct {
	mu     sync.Mutex
	parts  []partTrack
	last   int // highest target already synced
	multi  bool
	onSync func(target int, combined []byte)
}

type partTrack struct {
	snaps   map[int][]byte
	latestT int
	latestB []byte
}

func newSyncTracker(n int, multi bool, onSync func(int, []byte)) *syncTracker {
	tr := &syncTracker{parts: make([]partTrack, n), multi: multi, onSync: onSync}
	for i := range tr.parts {
		tr.parts[i].snaps = make(map[int][]byte)
	}
	return tr
}

// latest returns partition p's freshest snapshot (0, nil when none).
func (tr *syncTracker) latest(p int) (int, []byte) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.parts[p].latestT, tr.parts[p].latestB
}

// store records a snapshot of partition p at the given target, firing the
// sync callback when the target is complete across partitions. Snapshots at
// already-synced targets (a retried partition re-running from scratch
// re-emits them — byte-identical, by determinism) are ignored for syncing
// but still refresh nothing, as latestT is monotone.
func (tr *syncTracker) store(p, target int, blob []byte) error {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	pt := &tr.parts[p]
	if target > pt.latestT || pt.latestB == nil {
		pt.latestT, pt.latestB = target, blob
	}
	if target <= tr.last {
		return nil
	}
	pt.snaps[target] = blob

	// The highest target every partition has reached; partitions emit on
	// the same global checkpoint grid, so the minimum of the per-partition
	// maxima is itself present everywhere once it exceeds the last sync.
	cand := tr.parts[0].latestT
	for i := range tr.parts {
		if tr.parts[i].latestT < cand {
			cand = tr.parts[i].latestT
		}
	}
	if cand <= tr.last {
		return nil
	}
	blobs := make([][]byte, len(tr.parts))
	for i := range tr.parts {
		b, ok := tr.parts[i].snaps[cand]
		if !ok {
			return nil // grid mismatch; wait for the exact target
		}
		blobs[i] = b
	}
	combined, err := combineBlobs(blobs, tr.multi)
	if err != nil {
		return fmt.Errorf("dist: combining partition snapshots at target %d: %w", cand, err)
	}
	tr.last = cand
	for i := range tr.parts {
		for t := range tr.parts[i].snaps {
			if t <= cand {
				delete(tr.parts[i].snaps, t)
			}
		}
	}
	if tr.onSync != nil {
		// Under the lock: syncs must reach the journal in target order.
		tr.onSync(cand, combined)
	}
	return nil
}

// combineBlobs decodes per-partition states (in partition order) and
// re-encodes their combination.
func combineBlobs(blobs [][]byte, multi bool) ([]byte, error) {
	if multi {
		parts := make([]*core.MultiEnsembleState, len(blobs))
		for i, b := range blobs {
			st, err := core.DecodeMultiEnsembleState(b)
			if err != nil {
				return nil, err
			}
			parts[i] = st
		}
		combined, err := core.CombineMultiPartitionStates(parts)
		if err != nil {
			return nil, err
		}
		return combined.Encode(), nil
	}
	parts := make([]*core.EnsembleState, len(blobs))
	for i, b := range blobs {
		st, err := core.DecodeEnsembleState(b)
		if err != nil {
			return nil, err
		}
		parts[i] = st
	}
	combined, err := core.CombinePartitionStates(parts)
	if err != nil {
		return nil, err
	}
	return combined.Encode(), nil
}
