package stats

import (
	"math"
	"runtime"
	"testing"
	"testing/quick"
)

func TestNRMSE(t *testing.T) {
	// All estimates exact: NRMSE 0.
	if n := NRMSE([]float64{2, 2, 2}, 2); n != 0 {
		t.Errorf("exact estimates NRMSE = %f", n)
	}
	// Pure bias: estimates all 3, truth 2 -> |3-2|/2 = 0.5.
	if n := NRMSE([]float64{3, 3}, 2); math.Abs(n-0.5) > 1e-12 {
		t.Errorf("bias NRMSE = %f, want 0.5", n)
	}
	// Pure variance: {1,3} around truth 2 -> sqrt(1)/2 = 0.5.
	if n := NRMSE([]float64{1, 3}, 2); math.Abs(n-0.5) > 1e-12 {
		t.Errorf("variance NRMSE = %f, want 0.5", n)
	}
	if !math.IsNaN(NRMSE([]float64{1}, 0)) {
		t.Error("zero truth should give NaN")
	}
	if !math.IsNaN(NRMSE(nil, 1)) {
		t.Error("no estimates should give NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose; Quantile must not mutate
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %f, want 1", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Errorf("q1 = %f, want 4", q)
	}
	if q := Quantile(xs, 0.5); math.Abs(q-2.5) > 1e-12 {
		t.Errorf("median = %f, want 2.5", q)
	}
	if q := Quantile([]float64{7}, 0.95); q != 7 {
		t.Errorf("singleton q95 = %f, want 7", q)
	}
	if xs[0] != 4 || xs[3] != 2 {
		t.Errorf("Quantile mutated its input: %v", xs)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty input should give NaN")
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %f", Mean(xs))
	}
	if v := Variance(xs); math.Abs(v-1.25) > 1e-12 {
		t.Errorf("Variance = %f", v)
	}
	if s := StdDev(xs); math.Abs(s-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("StdDev = %f", s)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty input should give 0")
	}
}

func TestRunTrialsOrderAndCompleteness(t *testing.T) {
	n := 100
	out := RunTrials(n, func(trial int) []float64 {
		return []float64{float64(trial)}
	})
	for i := 0; i < n; i++ {
		if out[i][0] != float64(i) {
			t.Fatalf("trial %d result misplaced: %v", i, out[i])
		}
	}
}

func TestNRMSEPerType(t *testing.T) {
	trials := [][]float64{{1, 4}, {3, 4}}
	truth := []float64{2, 4}
	got := NRMSEPerType(trials, truth)
	if math.Abs(got[0]-0.5) > 1e-12 {
		t.Errorf("component 0 NRMSE = %f, want 0.5", got[0])
	}
	if got[1] != 0 {
		t.Errorf("component 1 NRMSE = %f, want 0", got[1])
	}
	if g := NRMSEOfComponent(trials, truth, 0); math.Abs(g-0.5) > 1e-12 {
		t.Errorf("NRMSEOfComponent = %f", g)
	}
}

func TestConvergenceSeries(t *testing.T) {
	// Two trials, three checkpoints; errors shrink over checkpoints.
	points := [][]float64{
		{4, 3, 2.2},
		{0, 1, 1.8},
	}
	s := ConvergenceSeries(points, 2)
	if len(s) != 3 {
		t.Fatalf("series length %d", len(s))
	}
	if !(s[0] > s[1] && s[1] > s[2]) {
		t.Errorf("series should decrease: %v", s)
	}
	if ConvergenceSeries(nil, 1) != nil {
		t.Error("empty input should give nil")
	}
}

// Property: NRMSE is invariant under scaling both estimates and truth.
func TestNRMSEScaleInvariance(t *testing.T) {
	f := func(a, b, c float64) bool {
		bound := func(v float64) float64 {
			if v != v || v > 1e6 || v < -1e6 {
				return 1
			}
			return v
		}
		a, b, c = bound(a), bound(b), bound(c)
		truth := 1 + math.Abs(a)
		ests := []float64{b, c}
		scale := 7.5
		scaled := []float64{b * scale, c * scale}
		n1 := NRMSE(ests, truth)
		n2 := NRMSE(scaled, truth*scale)
		return math.Abs(n1-n2) < 1e-9*(1+n1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPoolWorkers(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	if got := PoolWorkers(0); got != max {
		t.Errorf("PoolWorkers(0) = %d, want GOMAXPROCS = %d", got, max)
	}
	if got := PoolWorkers(1); got != max {
		t.Errorf("PoolWorkers(1) = %d, want GOMAXPROCS = %d", got, max)
	}
	if got := PoolWorkers(2 * max); got != 1 {
		t.Errorf("PoolWorkers(%d) = %d, want 1", 2*max, got)
	}
	if max >= 2 {
		if got := PoolWorkers(2); got != max/2 {
			t.Errorf("PoolWorkers(2) = %d, want %d", got, max/2)
		}
	}
}
