// Command multisize demonstrates the joint estimator extension: one random
// walk on G(2) yields 3-, 4- and 5-node graphlet concentrations
// simultaneously — one crawl budget, three fingerprints. (The paper's MSS
// reference point estimates neighbouring sizes jointly; this generalizes it
// to the whole framework.)
package main

import (
	"fmt"

	graphletrw "repro"
	"repro/internal/gen"
)

func main() {
	g := gen.HolmeKim(3000, 4, 0.7, 123)
	lcc, _ := graphletrw.LargestComponent(g)
	counting := graphletrw.NewCountingClient(graphletrw.NewClient(lcc), lcc.NumNodes())

	res, err := graphletrw.EstimateAll(counting, graphletrw.MultiConfig{
		Sizes: []int{3, 4, 5},
		D:     2,
		CSS:   true,
		Seed:  7,
	}, 20000)
	if err != nil {
		panic(err)
	}

	for _, k := range []int{3, 4, 5} {
		exact := graphletrw.ExactConcentration(lcc, k)
		conc := res.Results[k].Concentration()
		fmt.Printf("\n%d-node graphlets (%d valid samples):\n", k, res.Results[k].ValidSamples)
		for i, gl := range graphletrw.Catalog(k) {
			if exact[i] < 1e-4 && conc[i] < 1e-4 {
				continue // skip negligible types for readability
			}
			fmt.Printf("  g%d_%-3d %-16s est %.5f   exact %.5f\n", k, gl.ID, gl.Name, conc[i], exact[i])
		}
	}
	st := counting.Stats()
	fmt.Printf("\none walk, %d unique nodes crawled (%.2f%% of graph), %d neighbor fetches\n",
		st.UniqueNodes, 100*float64(st.UniqueNodes)/float64(lcc.NumNodes()), st.NeighborCalls)
}
