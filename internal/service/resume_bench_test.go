package service

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/service/journal"
)

// benchSnapshot runs a real estimator to `at` of `budget` windows and
// returns the encoded ensemble snapshot a checkpoint would journal.
func benchSnapshot(b *testing.B, walkers, budget, at int) ([]byte, core.Config) {
	b.Helper()
	g := gen.HolmeKim(400, 3, 0.6, 11)
	cfg := core.Config{K: 4, D: 2, CSS: true, Seed: 42, Walkers: walkers}
	est, err := core.NewEstimator(access.NewGraphClient(g), cfg)
	if err != nil {
		b.Fatal(err)
	}
	var blob []byte
	if _, err := est.RunCheckpoints(at, at, func(step int, conc []float64) {
		if step == at {
			blob = est.Snapshot().Encode()
		}
	}); err != nil {
		b.Fatal(err)
	}
	if blob == nil {
		b.Fatal("no snapshot captured")
	}
	return blob, cfg
}

// BenchmarkCheckpointAppend measures the cost of one checkpoint journal
// append — the record the PR-4 engine wrote (progress only) vs the PR-5
// record carrying a resumable ensemble snapshot — marshal plus framed write.
// The delta is what resumability costs per checkpoint; the async append
// queue keeps even the fsync variant off the API path.
func BenchmarkCheckpointAppend(b *testing.B) {
	conc := []float64{0.21, 0.34, 0.05, 0.17, 0.13, 0.10}
	snap, _ := benchSnapshot(b, 4, 100_000, 100_000)
	for _, tc := range []struct {
		name string
		rec  recCheckpoint
	}{
		{"plain", recCheckpoint{Steps: 50_000, Concentration: conc}},
		{"snapshot", recCheckpoint{V: checkpointV2, Steps: 50_000, Concentration: conc, Snapshot: snap}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			jnl, err := journal.Open(filepath.Join(b.TempDir(), "journal"), journal.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer jnl.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				body := mustMarshal(b, tc.rec)
				if err := jnl.Append(journal.Record{Type: journal.TypeCheckpoint, Job: "j-1", Payload: body}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(mustMarshal(b, tc.rec))), "payload-bytes")
		})
	}
}

// BenchmarkResumeRestore measures what recovery pays to resume instead of
// re-running: decode the journaled snapshot and restore a fresh estimator
// (dominated by the RNG fast-forward, O(pre-crash steps)), for a job killed
// at 50% of its step budget. steps-saved is the crawl work the restore
// preserves — the work a PR-4 daemon would have thrown away.
func BenchmarkResumeRestore(b *testing.B) {
	for _, budget := range []int{100_000, 1_000_000} {
		b.Run(fmt.Sprintf("budget=%d", budget), func(b *testing.B) {
			blob, cfg := benchSnapshot(b, 4, budget, budget/2)
			client := access.NewGraphClient(gen.HolmeKim(400, 3, 0.6, 11))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := core.DecodeEnsembleState(blob)
				if err != nil {
					b.Fatal(err)
				}
				est, err := core.NewEstimator(client, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := est.Restore(st); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(budget/2), "steps-saved")
		})
	}
}

func mustMarshal(b *testing.B, v any) []byte {
	b.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		b.Fatal(err)
	}
	return body
}
