// Package access models the paper's restricted-access setting: the graph
// topology is not available in bulk and can only be explored through the kind
// of calls an OSN API exposes — fetch a node's neighbor list (and hence its
// degree) and test adjacency. All random-walk code in this repository goes
// through the Client interface, so estimators genuinely use only crawlable
// information; the accounting wrapper measures API cost, which Figure 8's
// Wedge-MHRW comparison depends on.
package access

import (
	"math/rand"
	"sync/atomic"

	"repro/internal/graph"
)

// Client is the crawl interface offered by a restricted-access graph.
// Implementations must be safe for concurrent use.
type Client interface {
	// Degree returns the degree of v (the length of its neighbor list).
	Degree(v int32) int
	// Neighbors returns the neighbor list of v, sorted strictly ascending.
	// The sorted order is a contract, not a convenience: the walk kernel's
	// merge-based candidate generation and every binary-search edge probe
	// depend on it (graph.Validate asserts it for in-memory graphs, and the
	// apiserver crawl client re-establishes it at the wire boundary).
	// Callers must not modify the returned slice.
	Neighbors(v int32) []int32
	// Neighbor returns the i-th neighbor of v, 0 <= i < Degree(v).
	Neighbor(v int32, i int) int32
	// HasEdge reports whether u and v are adjacent.
	HasEdge(u, v int32) bool
	// RandomNode returns a uniformly random node ID to seed a walk. (Real
	// crawls obtain seeds out of band; uniformity is not required by any
	// estimator, only reachability.)
	RandomNode(rng *rand.Rand) int32
}

// CommonCounter is an optional Client capability: the number of common
// neighbors of two nodes, computed without handing out the rows themselves.
// Only clients whose access is free implement it (the in-memory
// GraphClient, via the graph layer's galloping intersection); crawl-style
// clients deliberately do not, so the walk kernel falls back to merging
// fetched rows and the measured API cost stays faithful to what a real
// crawler would pay.
type CommonCounter interface {
	// CommonNeighborCount returns |N(u) ∩ N(v)|.
	CommonNeighborCount(u, v int32) int
}

// GraphClient adapts an in-memory graph.Graph to the Client interface.
type GraphClient struct {
	G *graph.Graph
}

// NewGraphClient wraps g.
func NewGraphClient(g *graph.Graph) *GraphClient { return &GraphClient{G: g} }

// Degree implements Client.
func (c *GraphClient) Degree(v int32) int { return c.G.Degree(v) }

// Neighbors implements Client.
func (c *GraphClient) Neighbors(v int32) []int32 { return c.G.Neighbors(v) }

// Neighbor implements Client.
func (c *GraphClient) Neighbor(v int32, i int) int32 { return c.G.Neighbor(v, i) }

// HasEdge implements Client.
func (c *GraphClient) HasEdge(u, v int32) bool { return c.G.HasEdge(u, v) }

// RandomNode implements Client.
func (c *GraphClient) RandomNode(rng *rand.Rand) int32 { return c.G.RandomNode(rng) }

// CommonNeighborCount implements CommonCounter via the graph layer's
// galloping intersection (O(min·log(max/min)) under degree skew).
func (c *GraphClient) CommonNeighborCount(u, v int32) int { return c.G.CommonNeighbors(u, v) }

// Stats aggregates API-call counters.
type Stats struct {
	DegreeCalls   int64
	NeighborCalls int64 // Neighbors + Neighbor fetches
	EdgeProbes    int64
	// UniqueNodes is the number of distinct nodes whose neighborhood was
	// fetched — the crawl footprint the paper reports (e.g. "we only exploit
	// 0.03% nodes of Sinaweibo").
	UniqueNodes int64
}

// Counting wraps a Client and counts API calls. It is safe for concurrent
// use; the unique-node set is maintained with a lock-free presence array.
type Counting struct {
	inner Client

	degree    atomic.Int64
	neighbors atomic.Int64
	probes    atomic.Int64
	unique    atomic.Int64
	seen      []atomic.Bool
}

// NewCounting wraps inner; numNodes sizes the unique-node tracking array.
func NewCounting(inner Client, numNodes int) *Counting {
	return &Counting{inner: inner, seen: make([]atomic.Bool, numNodes)}
}

func (c *Counting) touch(v int32) {
	if int(v) < len(c.seen) && !c.seen[v].Swap(true) {
		c.unique.Add(1)
	}
}

// Degree implements Client.
func (c *Counting) Degree(v int32) int {
	c.degree.Add(1)
	c.touch(v)
	return c.inner.Degree(v)
}

// Neighbors implements Client.
func (c *Counting) Neighbors(v int32) []int32 {
	c.neighbors.Add(1)
	c.touch(v)
	return c.inner.Neighbors(v)
}

// Neighbor implements Client.
func (c *Counting) Neighbor(v int32, i int) int32 {
	c.neighbors.Add(1)
	c.touch(v)
	return c.inner.Neighbor(v, i)
}

// HasEdge implements Client.
func (c *Counting) HasEdge(u, v int32) bool {
	c.probes.Add(1)
	return c.inner.HasEdge(u, v)
}

// RandomNode implements Client.
func (c *Counting) RandomNode(rng *rand.Rand) int32 { return c.inner.RandomNode(rng) }

// Stats returns a snapshot of the counters.
func (c *Counting) Stats() Stats {
	return Stats{
		DegreeCalls:   c.degree.Load(),
		NeighborCalls: c.neighbors.Load(),
		EdgeProbes:    c.probes.Load(),
		UniqueNodes:   c.unique.Load(),
	}
}

// Reset zeroes all counters.
func (c *Counting) Reset() {
	c.degree.Store(0)
	c.neighbors.Store(0)
	c.probes.Store(0)
	c.unique.Store(0)
	for i := range c.seen {
		c.seen[i].Store(false)
	}
}
