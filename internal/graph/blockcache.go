package graph

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// blockStore serves adjacency rows of a version-2 .gcsr image through a
// bounded decoded-block cache.
//
// The hot path (a warm hit) is lock-free and allocation-free: an atomic
// pointer load per block plus a conditional store of the clock reference
// bit. Misses decode outside the lock and publish under it. Eviction only
// drops the cache's reference to a decoded block — callers may still hold
// row slices into an evicted block's arrays, so buffers are never reused;
// the garbage collector reclaims them once the last row slice dies. This is
// the same second-chance (clock) policy as internal/walk's stateInfo cache,
// adapted to byte-weighted entries.
type blockStore struct {
	data       []byte       // whole file image (mmap'd or heap)
	n          int64        // node count, for decode validation
	metas      []blockMeta  // parsed block index
	firstNodes []int32      // metas[i].first, for binary search in blockOf
	slots      []atomic.Pointer[decodedBlock]
	ref        []atomic.Uint32 // clock reference bits, parallel to slots
	capBytes   int64

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	resBytes  atomic.Int64
	resBlocks atomic.Int64

	mu   sync.Mutex // guards slot stores and the clock hand
	hand int
}

// decodedBlock is one block's rows in ready-to-serve form. off and adj are
// local to the block: node v's row is adj[off[v-first]:off[v-first+1]].
type decodedBlock struct {
	first int32
	off   []int32
	adj   []int32
	bytes int64 // accounted cache weight
}

func newBlockStore(data []byte, lay v2Layout, capBytes int64) *blockStore {
	if capBytes <= 0 {
		capBytes = DefaultBlockCacheBytes
	}
	s := &blockStore{
		data:       data,
		n:          lay.h.n,
		metas:      lay.metas,
		firstNodes: make([]int32, len(lay.metas)),
		slots:      make([]atomic.Pointer[decodedBlock], len(lay.metas)),
		ref:        make([]atomic.Uint32, len(lay.metas)),
		capBytes:   capBytes,
	}
	for i, bm := range lay.metas {
		s.firstNodes[i] = bm.first
	}
	return s
}

// blockOf returns the index of the block holding node v's row.
func (s *blockStore) blockOf(v int32) int {
	// sort.Search-style binary search, inlined to keep the hot path free
	// of the closure allocation.
	lo, hi := 0, len(s.firstNodes)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.firstNodes[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// row returns node v's neighbor row. The returned slice stays valid for the
// caller's lifetime even across evictions (buffers are never reused), but
// as with Graph.Neighbors it must not be written to.
func (s *blockStore) row(v int32) []int32 {
	db := s.block(s.blockOf(v))
	i := v - db.first
	return db.adj[db.off[i]:db.off[i+1]]
}

// block returns block b's decoded form, decoding and caching on a miss.
func (s *blockStore) block(b int) *decodedBlock {
	if db := s.slots[b].Load(); db != nil {
		// Load-then-conditional-store keeps warm hits from ping-ponging
		// the cache line between cores the way an unconditional store
		// would.
		if s.ref[b].Load() == 0 {
			s.ref[b].Store(1)
		}
		s.hits.Add(1)
		return db
	}
	s.misses.Add(1)
	bm := s.metas[b]
	off, adj, err := decodeV2Block(s.data[bm.off:bm.off+int64(bm.encLen)], bm, s.n)
	if err != nil {
		// Every block decoded cleanly at open time, so this can only mean
		// the backing file changed underneath the mapping.
		panic(fmt.Sprintf("gcsr: block %d failed to decode after open-time validation (backing file modified?): %v", b, err))
	}
	db := &decodedBlock{
		first: bm.first,
		off:   off,
		adj:   adj,
		bytes: int64(len(off)+len(adj))*4 + 48,
	}
	s.mu.Lock()
	if cur := s.slots[b].Load(); cur != nil {
		// A racing miss published first; serve its copy and drop ours.
		s.mu.Unlock()
		return cur
	}
	s.slots[b].Store(db)
	s.ref[b].Store(1)
	s.resBytes.Add(db.bytes)
	s.resBlocks.Add(1)
	s.evict()
	s.mu.Unlock()
	return db
}

// evict runs the clock hand until the cache fits its byte budget, always
// leaving at least one resident block so a cache smaller than one block
// still makes progress. Caller holds s.mu.
func (s *blockStore) evict() {
	for s.resBytes.Load() > s.capBytes && s.resBlocks.Load() > 1 {
		b := s.hand
		s.hand++
		if s.hand == len(s.slots) {
			s.hand = 0
		}
		db := s.slots[b].Load()
		if db == nil {
			continue
		}
		if s.ref[b].Load() != 0 {
			s.ref[b].Store(0) // second chance
			continue
		}
		s.slots[b].Store(nil)
		s.resBytes.Add(-db.bytes)
		s.resBlocks.Add(-1)
		s.evictions.Add(1)
	}
}

// BlockCacheStats is a point-in-time snapshot of one graph's decoded-block
// cache, exported on /metrics by the service layer.
type BlockCacheStats struct {
	Blocks         int    // total blocks in the file
	ResidentBlocks int64  // blocks currently decoded and cached
	ResidentBytes  int64  // accounted size of resident blocks
	CapacityBytes  int64  // configured cache bound
	Hits           uint64 // row reads served from the cache
	Misses         uint64 // row reads that decoded a block
	Evictions      uint64 // blocks dropped by the clock hand
}

func (s *blockStore) stats() BlockCacheStats {
	return BlockCacheStats{
		Blocks:         len(s.metas),
		ResidentBlocks: s.resBlocks.Load(),
		ResidentBytes:  s.resBytes.Load(),
		CapacityBytes:  s.capBytes,
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Evictions:      s.evictions.Load(),
	}
}
