package graphlet

import "math/bits"

// This file implements Algorithm 2 of the paper: the state-corresponding
// coefficient α^k_i counts the ordered chains of l = k-d+1 connected d-node
// induced subgraphs of graphlet g^k_i such that consecutive chain elements
// are adjacent in the subgraph relationship graph G(d) (i.e. share exactly
// d-1 nodes; for d = 1 adjacency means an edge of the graphlet) and the chain
// covers all k nodes. Equivalently, α is the number of ways the random walk
// on G(d) can traverse the graphlet in l consecutive steps.

// subsetInfo describes one connected d-node induced subgraph of a graphlet,
// as a bitmask over the graphlet's node indices.
type subsetInfo struct {
	mask uint8
}

// connectedSubsets enumerates the bitmasks of all connected d-node induced
// subgraphs of the k-node graph given by the edge predicate.
func connectedSubsets(k, d int, hasEdge func(i, j int) bool) []subsetInfo {
	var adjMask [5]uint8
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i != j && hasEdge(i, j) {
				adjMask[i] |= 1 << uint(j)
			}
		}
	}
	var out []subsetInfo
	full := uint8(1<<uint(k)) - 1
	for mask := uint8(1); mask <= full; mask++ {
		if bits.OnesCount8(mask) != d {
			continue
		}
		if maskConnected(mask, adjMask[:k]) {
			out = append(out, subsetInfo{mask: mask})
		}
		if mask == full { // avoid uint8 wrap when k == 8 (not reachable, but safe)
			break
		}
	}
	return out
}

func maskConnected(mask uint8, adjMask []uint8) bool {
	if mask == 0 {
		return false
	}
	start := uint8(1) << uint(bits.TrailingZeros8(mask))
	reach := start
	for {
		next := reach
		for v := 0; v < len(adjMask); v++ {
			if reach&(1<<uint(v)) != 0 {
				next |= adjMask[v] & mask
			}
		}
		if next == reach {
			break
		}
		reach = next
	}
	return reach == mask
}

// subsetsAdjacent reports whether two distinct d-node states are adjacent in
// G(d): for d = 1 they must be joined by an edge; for d >= 2 they must share
// exactly d-1 nodes.
func subsetsAdjacent(d int, a, b subsetInfo, hasEdge func(i, j int) bool) bool {
	if a.mask == b.mask {
		return false
	}
	if d == 1 {
		return hasEdge(bits.TrailingZeros8(a.mask), bits.TrailingZeros8(b.mask))
	}
	return bits.OnesCount8(a.mask&b.mask) == d-1
}

// EnumerateChains calls fn once for every valid chain of l = k-d+1 connected
// d-node subgraphs of the k-node graph defined by hasEdge (over node indices
// 0..k-1) such that consecutive elements are G(d)-adjacent and the chain
// covers all k nodes. The chain is passed as a slice of node-index bitmasks;
// it is reused between calls and must not be retained. Enumeration stops
// early if fn returns false. For d = k the single chain is the full node set.
func EnumerateChains(k, d int, hasEdge func(i, j int) bool, fn func(chain []uint8) bool) {
	if d < 1 || d > k {
		panic("graphlet: EnumerateChains: d out of range")
	}
	full := uint8(1<<uint(k)) - 1
	if d == k {
		fn([]uint8{full})
		return
	}
	subsets := connectedSubsets(k, d, hasEdge)
	l := k - d + 1
	chain := make([]uint8, 0, l)
	used := make([]bool, len(subsets))
	stop := false
	var rec func(last int, union uint8)
	rec = func(last int, union uint8) {
		if stop {
			return
		}
		if len(chain) == l {
			if union == full {
				if !fn(chain) {
					stop = true
				}
			}
			return
		}
		// Prune: after the first element (which contributes d nodes), each
		// remaining step can add at most one new node.
		if len(chain) > 0 {
			missing := bits.OnesCount8(full &^ union)
			if missing > l-len(chain) {
				return
			}
		}
		for i := range subsets {
			if used[i] {
				continue
			}
			if last >= 0 && !subsetsAdjacent(d, subsets[last], subsets[i], hasEdge) {
				continue
			}
			used[i] = true
			chain = append(chain, subsets[i].mask)
			rec(i, union|subsets[i].mask)
			chain = chain[:len(chain)-1]
			used[i] = false
			if stop {
				return
			}
		}
	}
	rec(-1, 0)
}

// computeAlpha counts the chains of the graphlet under SRW(d) (Algorithm 2).
func computeAlpha(g *Graphlet, d int) int64 {
	hasEdge := func(i, j int) bool { return g.Adj[i][j] }
	var n int64
	EnumerateChains(g.K, d, hasEdge, func([]uint8) bool {
		n++
		return true
	})
	return n
}
