// Command graphletd is the multi-graph estimation daemon: it registers named
// graphs (stand-in datasets and/or edge-list files), then serves asynchronous
// graphlet-concentration estimation jobs over HTTP with live progress (poll
// or server-sent events), priority-class scheduling (interactive > batch >
// background under weighted deficit accounting), an LRU result cache,
// single-flight coalescing of identical requests, and a worker pool bounded
// so job parallelism × walkers stays at GOMAXPROCS.
//
//	graphletd -datasets brightkite,epinion -addr 127.0.0.1:9090
//	graphletd -graph social=edges.txt -workers 2 -max-walkers 4
//	graphletd -graph social=social.gcsr   # packed binary CSR, opened via mmap
//	graphletd -graph social=edges.txt -data-dir /var/lib/graphletd
//
// With -data-dir the daemon is durable: every job transition is appended to
// a CRC-checksummed journal under <data-dir>/journal (asynchronously, on an
// ordered writer goroutine, so -fsync on a slow disk never stalls the API),
// and a restart replays it — completed results are served from the warmed
// cache without re-running, and jobs that were queued or running at the
// crash re-queue and finish. Checkpoint records carry the engine's
// serialized walker state, so an interrupted job resumes from its last
// checkpoint instead of step 0: the scheduler charges only the remaining
// budget, and the job's resumed_steps (status, SSE, /v1/stats) reports how
// much crawl work the resume preserved. Without -data-dir the job table is
// in-memory only (the pre-journal behavior).
//
// The daemon is observable end to end: GET /metrics serves a Prometheus
// text exposition (job lifecycle, queue depth and wait histograms by
// priority class, cache hit/miss/eviction, journal append/fsync/compaction,
// walk-engine step counters), GET /healthz and /readyz answer liveness and
// readiness probes — /readyz stays 503 until graph registration and journal
// replay finish — and every request gets an X-Request-Id (client-supplied or
// generated) that is echoed on the response, stamped into submitted jobs
// (visible in job views and SSE events), and logged in the structured access
// log (-access-log). -qps/-burst put the JSON API behind a shared token
// bucket; /metrics and the probes are never throttled.
//
// -graph accepts text edge lists and .gcsr binary CSR files (see
// cmd/graphlet-pack); .gcsr files open zero-copy through mmap — one
// sequential checksum/validation pass over the raw bytes instead of an
// edge-list parse and rebuild (~40x faster at 1M edges) — and resident
// pages are shared with any other process mapping the same file.
// Block-compressed .gcsr v2 files (graphlet-pack -format v2, about half the
// bytes on disk) are served through a bounded decoded-block cache sized by
// -block-cache-mb; its hit/miss/eviction/residency counters are exposed as
// graphletd_blockcache_* gauges on /metrics. Graphs packed with -keep-ids
// report "original_ids": true in GET /v1/graphs. Dataset graphs are
// likewise cached as .gcsr under $REPRO_CACHE_DIR after first build
// (REPRO_CACHE_FORMAT=v2 selects the compressed encoding for the cache).
//
// Multi-size jobs: a spec with "sizes":[3,4,5] instead of "k" runs one
// shared random walk covering every listed size — the step budget (and the
// scheduler charge) is paid once, and on completion the result cache is
// fan-out-filled with one entry per size, so later single-size requests for
// any covered k answer instantly. -sizes sets the admission allowlist
// (default 3,4,5). Checkpoint snapshots, crash recovery, and mid-budget
// resume all work for multi-size jobs, with per-size results byte-identical
// to independent runs.
//
// Distributed execution: -worker makes this node accept partition work at
// POST /v1/partitions, and -peers gives a coordinator its fleet. A job
// submitted with "nodes": N > 1 has its walker ensemble split into
// contiguous partitions fanned across the peers; per-walker seeds and
// quotas are derived from global walker indices, so the merged result is
// byte-identical to a local run at any fleet size. Dead workers fail over
// (retry on a rotated peer from the last streamed snapshot, then locally),
// and with -data-dir the coordinator journals every fleet-wide checkpoint,
// so even a coordinator crash resumes mid-budget — with no peers at all if
// need be.
//
//	graphletd -datasets epinion -addr 127.0.0.1:9091 -worker   # worker node
//	graphletd -datasets epinion -peers http://127.0.0.1:9091,http://127.0.0.1:9092
//	curl -s -X POST localhost:9090/v1/jobs -d \
//	  '{"graph":"epinion","k":4,"d":2,"css":true,"steps":20000,"walkers":4,"seed":1,"nodes":2}'
//
// Submit and poll with curl:
//
//	curl -s -X POST localhost:9090/v1/jobs -d \
//	  '{"graph":"epinion","k":4,"d":2,"css":true,"steps":20000,"walkers":4,"seed":1,"priority":"interactive"}'
//	curl -s -X POST localhost:9090/v1/jobs -d \
//	  '{"graph":"epinion","sizes":[3,4,5],"d":2,"css":true,"steps":20000,"walkers":4,"seed":1}'
//	curl -s localhost:9090/v1/jobs/j-1
//	curl -sN localhost:9090/v1/jobs/j-1/events     # SSE progress stream
//	curl -s -X DELETE localhost:9090/v1/jobs/j-1   # cancel
//	curl -s -X DELETE localhost:9090/v1/graphs/epinion   # unregister + purge cache
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof side listener (http.DefaultServeMux only)
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/access"
	"repro/internal/apiserver"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	var graphFlags multiFlag
	var (
		addr       = flag.String("addr", "127.0.0.1:9090", "listen address")
		dsets      = flag.String("datasets", "", "comma-separated stand-in dataset names to register")
		workers    = flag.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS/max-walkers)")
		maxWalkers = flag.Int("max-walkers", 8, "per-job walker cap")
		cacheSize  = flag.Int("cache", 256, "result-cache capacity (negative disables)")
		snapshot   = flag.Int("snapshot-every", 0, "progress checkpoint spacing in windows (0 = auto)")
		sizesFlag  = flag.String("sizes", "3,4,5", "comma-separated sizes multi-size jobs may request (empty disables them)")
		latency    = flag.Duration("latency", 0, "simulated per-call API latency (crawl modeling)")
		dataDir    = flag.String("data-dir", "", "durability directory: journal job history here, replay it on start (empty = volatile)")
		fsync      = flag.Bool("fsync", false, "fsync every journal append (with -data-dir)")
		pprofAddr  = flag.String("pprof", "", "expose net/http/pprof on this side listener (e.g. 127.0.0.1:6060; empty = off)")
		qps        = flag.Float64("qps", 0, "rate-limit API requests to this sustained QPS (0 = unlimited; /metrics, health probes and partition streams are never throttled)")
		burst      = flag.Int("burst", 16, "rate-limit burst allowance (with -qps)")
		accessLog  = flag.Bool("access-log", true, "log one structured line per request to stderr")
		peersFlag  = flag.String("peers", "", "comma-separated worker base URLs for distributed jobs (e.g. http://10.0.0.2:9090)")
		worker     = flag.Bool("worker", false, "accept partition work from coordinators at POST /v1/partitions")
		blockCache = flag.Int64("block-cache-mb", 64, "per-graph decoded-block cache budget for .gcsr v2 files, in MiB")
	)
	flag.Var(&graphFlags, "graph", "name=path graph to register, edge list or .gcsr (repeatable)")
	flag.Parse()

	// Bind the listener and start serving before graph registration and
	// journal replay: probes get real answers the whole time (/healthz 200,
	// /readyz 503 "starting", anything else 503) instead of connection
	// refusals, so an orchestrator can tell "still replaying the journal"
	// from "dead".
	metrics := obs.NewRegistry()
	health := obs.NewHealth("starting: graph registration and journal replay in progress")
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	var logger *slog.Logger
	if *accessLog {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	swap := &handlerSwitch{}
	swap.Store(bootstrapHandler(health))
	srv := &http.Server{
		Handler: obs.Trace(swap, obs.TraceOptions{
			Logger:  logger,
			Metrics: obs.NewHTTPMetrics(metrics, "graphletd"),
			PathLabel: func(r *http.Request) string {
				return service.RoutePattern(r.URL.Path)
			},
		}),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	reg := service.NewRegistry()
	if *dsets != "" {
		for _, name := range strings.Split(*dsets, ",") {
			if err := reg.AddDataset(strings.TrimSpace(name)); err != nil {
				fail(err)
			}
		}
	}
	for _, spec := range graphFlags {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fail(fmt.Errorf("bad -graph %q, want name=path", spec))
		}
		if err := reg.AddFileOpts(name, path, graph.OpenOptions{BlockCacheBytes: *blockCache << 20}); err != nil {
			fail(err)
		}
	}
	if len(reg.List()) == 0 {
		fmt.Fprintln(os.Stderr, "graphletd: no graphs registered; pass -datasets and/or -graph")
		flag.Usage()
		os.Exit(2)
	}

	multiSizes := []int{} // non-nil: an empty -sizes disables multi-size jobs
	if *sizesFlag != "" {
		for _, f := range strings.Split(*sizesFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fail(fmt.Errorf("bad -sizes entry %q: %v", f, err))
			}
			multiSizes = append(multiSizes, n)
		}
	}
	var peers []string
	if *peersFlag != "" {
		for _, p := range strings.Split(*peersFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, strings.TrimSuffix(p, "/"))
			}
		}
	}
	opts := service.Options{
		Workers:       *workers,
		MaxWalkers:    *maxWalkers,
		CacheSize:     *cacheSize,
		SnapshotEvery: *snapshot,
		MultiSizes:    multiSizes,
		DataDir:       *dataDir,
		Fsync:         *fsync,
		Metrics:       metrics,
		Peers:         peers,
	}
	if *latency > 0 {
		opts.NewClient = func(g *graph.Graph) access.Client {
			return access.NewDelayed(access.NewGraphClient(g), *latency)
		}
	}
	mgr, err := service.NewManager(reg, opts)
	if err != nil {
		fail(err)
	}
	defer mgr.Close()

	if *pprofAddr != "" {
		// Side listener only: the pprof handlers register on
		// http.DefaultServeMux (imported for effect below), which the API
		// server never serves, so profiling endpoints are reachable solely on
		// this address.
		go func() {
			fmt.Printf("pprof on http://%s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "graphletd: pprof listener: %v\n", err)
			}
		}()
	}

	// Assemble the real handler: the API server (which also serves /metrics,
	// /healthz, /readyz), with the JSON API behind the optional token-bucket
	// limiter. Operational endpoints bypass the bucket — a saturated API must
	// not block the scrape or the probes that would diagnose it.
	api := service.NewServer(reg, mgr)
	api.Health = health
	if *worker {
		// Partition work resolves graphs through the same registry and access
		// stack (including -latency crawl modeling) local jobs use, so a
		// distributed run costs each walker exactly what a local run would.
		api.Partitions = &dist.Handler{
			Lookup: mgr.PartitionLookup(),
			Served: metrics.CounterVec("graphletd_partitions_served_total",
				"Partition requests served by this worker, by outcome.", "state"),
		}
	}
	var handler http.Handler = api
	if *qps > 0 {
		rejected := metrics.Counter("graphletd_ratelimit_rejected_total",
			"Requests that gave up waiting for a rate-limit token.")
		limited := apiserver.RateLimitObserved(api, *qps, *burst, rejected.Inc)
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			switch strings.TrimSuffix(r.URL.Path, "/") {
			// Partition streams are fleet-internal and hour-long-lived; the
			// public-API token bucket must not starve the fleet.
			case "/metrics", "/healthz", "/readyz", "/v1/partitions":
				api.ServeHTTP(w, r)
			default:
				limited.ServeHTTP(w, r)
			}
		})
	}
	swap.Store(handler)
	health.SetReady()

	st := mgr.Stats()
	fmt.Printf("graphletd: %d graph(s), %d worker(s), walker cap %d, cache %d results\n",
		st.GraphsCount, st.Workers, st.MaxWalkers, *cacheSize)
	if *dataDir != "" {
		fmt.Printf("  journal %s: %d segment(s), %d job(s) re-queued (%d resumable mid-budget), %d result(s) warmed\n",
			*dataDir, st.JournalSegments, st.RecoveredJobs, st.ResumableJobs, st.WarmedResults)
	}
	for _, info := range reg.List() {
		fmt.Printf("  graph %-12s %8d nodes %9d edges (max degree %d, %s)\n",
			info.Name, info.Nodes, info.Edges, info.MaxDegree, info.Source)
	}
	if *qps > 0 {
		fmt.Printf("  rate limit %.1f qps (burst %d); /metrics, probes and partition streams unthrottled\n", *qps, *burst)
	}
	if *worker {
		fmt.Println("  worker mode: accepting partition work at POST /v1/partitions")
	}
	if len(peers) > 0 {
		fmt.Printf("  fleet: %d peer(s) for distributed jobs (%s)\n", len(peers), strings.Join(peers, ", "))
	}
	fmt.Printf("listening on http://%s (metrics on /metrics, probes on /healthz /readyz)\n", *addr)

	if err := <-errCh; err != nil {
		fail(err)
	}
}

// handlerSwitch is an atomically swappable http.Handler: the daemon serves a
// bootstrap handler (probes only) while it registers graphs and replays the
// journal, then swaps in the real API without restarting the listener.
type handlerSwitch struct {
	h atomic.Value // http.Handler
}

func (s *handlerSwitch) Store(h http.Handler) { s.h.Store(&h) }

func (s *handlerSwitch) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*s.h.Load().(*http.Handler)).ServeHTTP(w, r)
}

// bootstrapHandler answers probes during startup: liveness 200, readiness
// 503 with the startup reason, everything else 503 Retry-After.
func bootstrapHandler(health *obs.Health) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch strings.TrimSuffix(r.URL.Path, "/") {
		case "/healthz":
			health.ServeLive(w, r)
		case "/readyz":
			health.ServeReady(w, r)
		default:
			w.Header().Set("Retry-After", "1")
			http.Error(w, "graphletd is starting", http.StatusServiceUnavailable)
		}
	})
}

// multiFlag collects repeated -graph flags.
type multiFlag []string

func (f *multiFlag) String() string { return strings.Join(*f, ",") }
func (f *multiFlag) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "graphletd:", err)
	os.Exit(1)
}
