package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphlet"
)

// Table2 reproduces the paper's Table 2: α^k_i/2 for 3- and 4-node graphlets
// under SRW(1..3), computed by Algorithm 2 (the values equal the published
// ones; see the graphlet package tests).
func Table2(w io.Writer) {
	header(w, "Table 2: coefficient alpha/2 for 3,4-node graphlets")
	fmt.Fprintf(w, "%-8s", "walk")
	for _, g := range graphlet.Catalog(3) {
		fmt.Fprintf(w, "%8s", fmt.Sprintf("g3_%d", g.ID))
	}
	for _, g := range graphlet.Catalog(4) {
		fmt.Fprintf(w, "%8s", fmt.Sprintf("g4_%d", g.ID))
	}
	fmt.Fprintln(w)
	for d := 1; d <= 3; d++ {
		fmt.Fprintf(w, "SRW(%d)  ", d)
		for _, g := range graphlet.Catalog(3) {
			a := graphlet.Alpha(3, d, g.ID)
			if a%2 == 0 {
				fmt.Fprintf(w, "%8d", a/2)
			} else {
				fmt.Fprintf(w, "%8s", fmt.Sprintf("%d/2", a))
			}
		}
		for _, g := range graphlet.Catalog(4) {
			fmt.Fprintf(w, "%8d", graphlet.Alpha(4, d, g.ID)/2)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\nall values match the published Table 2")
}

// Table3 reproduces the paper's Table 3: α^5_i/2 for the 21 5-node graphlets
// under SRW(1..4). The five SRW(4) entries where the published table
// contradicts the paper's own Appendix B closed form are flagged; this
// repository uses the computed values (validated by the estimator-
// unbiasedness tests in internal/core).
func Table3(w io.Writer) {
	header(w, "Table 3: coefficient alpha/2 for 5-node graphlets")
	errata := map[int]bool{}
	for _, id := range graphlet.Table3SRW4Errata {
		errata[id] = true
	}
	fmt.Fprintf(w, "%-24s", "graphlet")
	for d := 1; d <= 4; d++ {
		fmt.Fprintf(w, "%9s", fmt.Sprintf("SRW(%d)", d))
	}
	fmt.Fprintln(w, "  note")
	for _, g := range graphlet.Catalog(5) {
		fmt.Fprintf(w, "g5_%-4d %-16s", g.ID, g.Name)
		for d := 1; d <= 4; d++ {
			fmt.Fprintf(w, "%9d", g.Alpha[d]/2)
		}
		if errata[g.ID] {
			fmt.Fprintf(w, "  paper prints %d for SRW(4): suspected erratum (2x computed)",
				graphlet.PaperTable3Five[4][g.ID-1])
		}
		fmt.Fprintln(w)
	}
}

// Table4 reproduces the paper's Table 4: the closed-form CSS sampling
// probabilities p̃(X^(l)), verified against the generic Algorithm 3
// implementation on every 4-node occurrence of a test graph and on the
// paper's Figure 1 example for 3-node graphlets.
func Table4(w io.Writer) {
	header(w, "Table 4: CSS sampling probabilities p̃ (closed forms vs Algorithm 3)")
	fmt.Fprintf(w, "%-10s %-8s %-36s %s\n", "graphlet", "walk", "closed form for 2|R|·p/2", "verified")

	// 3-node closed forms on the Figure 1 graph.
	fig := gen.PaperFigure1()
	client := access.NewGraphClient(fig)
	tri := core.SamplingProbability(client, 3, 1, false, []int32{0, 1, 2})
	triWant := 2 * (1.0/3 + 1.0/2 + 1.0/3) // degrees 3,2,3
	fmt.Fprintf(w, "%-10s %-8s %-36s %v\n", "g3_2", "SRW(1)", "1/d1 + 1/d2 + 1/d3", approx(tri, triWant))
	wdg := core.SamplingProbability(client, 3, 1, false, []int32{1, 0, 3})
	fmt.Fprintf(w, "%-10s %-8s %-36s %v\n", "g3_1", "SRW(1)", "1/d_center", approx(wdg, 2.0/3))

	// 4-node closed forms under SRW(2): check every occurrence in a random
	// graph against the structural closed form.
	g := gen.HolmeKim(60, 3, 0.7, 5)
	counts, mismatches := verifyTable4FourNode(g)
	formulas := []string{
		"1/d_e2 (middle edge)",
		"sum_j 1/d_ej (3 edges)",
		"sum_j 1/d_ej (4 edges)",
		"2/d_e2 + 2/d_e3 + 1/d_e4",
		"2*sum_j 1/d_ej + 2/d_e5 (chord)",
		"4*sum_j 1/d_ej (6 edges)",
	}
	for i := 0; i < 6; i++ {
		status := fmt.Sprintf("true on %d occurrences", counts[i])
		if mismatches[i] > 0 {
			status = fmt.Sprintf("FAILED on %d/%d occurrences", mismatches[i], counts[i])
		}
		if counts[i] == 0 {
			status = "no occurrence in test graph"
		}
		fmt.Fprintf(w, "g4_%-7d %-8s %-36s %s\n", i+1, "SRW(2)", formulas[i], status)
	}
}

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(b)) }

// verifyTable4FourNode enumerates all connected 4-node subgraphs of g and
// compares the generic Algorithm 3 probability with the Table 4 closed form;
// it returns per-type occurrence and mismatch counts.
func verifyTable4FourNode(g *graph.Graph) (counts, mismatches [6]int64) {
	client := access.NewGraphClient(g)
	// Enumerate with a simple recursive expansion over node subsets
	// (adequate at test-graph scale).
	n := g.NumNodes()
	var nodes [4]int32
	var rec func(pos int, start int32)
	rec = func(pos int, start int32) {
		if pos == 4 {
			code := graphlet.CodeOf(4, func(i, j int) bool { return g.HasEdge(nodes[i], nodes[j]) })
			t := graphlet.ClassifyCode(4, code)
			if t < 0 {
				return
			}
			counts[t]++
			got := core.SamplingProbability(client, 4, 2, false, nodes[:])
			want := closedFormP4(g, nodes, t)
			if !approx(got, want) {
				mismatches[t]++
			}
			return
		}
		for v := start; v < int32(n); v++ {
			nodes[pos] = v
			rec(pos+1, v+1)
		}
	}
	rec(0, 0)
	return counts, mismatches
}

// closedFormP4 evaluates the Table 4 closed form for p̃ = 2|R(2)|·p of a
// 4-node occurrence, identifying the labeled edges structurally.
func closedFormP4(g *graph.Graph, nodes [4]int32, typ int) float64 {
	// Internal degrees and edge list.
	var internal [4]int
	type edge struct{ i, j int }
	var edges []edge
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if g.HasEdge(nodes[i], nodes[j]) {
				edges = append(edges, edge{i, j})
				internal[i]++
				internal[j]++
			}
		}
	}
	invDeg := func(e edge) float64 {
		return 1 / float64(g.Degree(nodes[e.i])+g.Degree(nodes[e.j])-2)
	}
	sumAll := 0.0
	for _, e := range edges {
		sumAll += invDeg(e)
	}
	switch typ {
	case 0: // 4-path: middle edge joins the two internal-degree-2 nodes.
		for _, e := range edges {
			if internal[e.i] == 2 && internal[e.j] == 2 {
				return 2 * invDeg(e)
			}
		}
	case 1: // 3-star
		return 2 * sumAll
	case 2: // 4-cycle
		return 2 * sumAll
	case 3: // tailed triangle: hub = internal degree 3; tail = hub-to-leaf.
		hub, leaf := -1, -1
		for i, d := range internal {
			if d == 3 {
				hub = i
			}
			if d == 1 {
				leaf = i
			}
		}
		p := 0.0
		for _, e := range edges {
			switch {
			case (e.i == hub && e.j == leaf) || (e.j == hub && e.i == leaf):
				p += 2 * invDeg(e) // tail edge e4: coefficient 1 (x2 halved)
			case e.i == hub || e.j == hub:
				p += 4 * invDeg(e) // triangle edges at the hub: coefficient 2
			}
		}
		return p
	case 4: // chordal cycle: chord joins the two internal-degree-3 nodes.
		var chord edge
		for _, e := range edges {
			if internal[e.i] == 3 && internal[e.j] == 3 {
				chord = e
			}
		}
		return 4*sumAll + 4*invDeg(chord)
	case 5: // clique
		return 8 * sumAll
	}
	return math.NaN()
}

// Table5 reproduces the paper's Table 5: the dataset inventory with exact
// clique concentrations c³₂, c⁴₆ and (for the small datasets) c⁵₂₁.
func Table5(w io.Writer) {
	header(w, "Table 5: datasets (synthetic stand-ins; see README.md)")
	fmt.Fprintf(w, "%-12s %-14s %8s %9s %10s %10s %10s\n",
		"stand-in", "paper LCC", "|V|", "|E|", "c32(e-2)", "c46(e-3)", "c521(e-5)")
	for _, d := range allDatasets() {
		g := d.Graph()
		c3, err := d.Concentration(3)
		if err != nil {
			panic(err)
		}
		c4, err := d.Concentration(4)
		if err != nil {
			panic(err)
		}
		c5s := "-"
		if d.Exact5 {
			c5, err := d.Concentration(5)
			if err != nil {
				panic(err)
			}
			c5s = fmt.Sprintf("%.3f", c5[20]*1e5)
		}
		fmt.Fprintf(w, "%-12s %-14s %8d %9d %10.2f %10.3f %10s\n",
			d.Name, d.PaperNodes+"/"+d.PaperEdges, g.NumNodes(), g.NumEdges(),
			c3[1]*1e2, c4[5]*1e3, c5s)
	}
	fmt.Fprintln(w, "\npaper values: BrightKite c32=3.98e-2, Epinion 2.29e-2, Slashdot 0.82e-2,")
	fmt.Fprintln(w, "Facebook 5.46e-2, Gowalla 0.80e-2, Wikipedia 0.10e-2, Pokec 1.6e-2,")
	fmt.Fprintln(w, "Flickr 3.87e-2, Twitter 0.86e-2, Sinaweibo 0.03e-2")
}
