package graph

import (
	"strings"
	"testing"
)

// The manual field scanner must accept everything the old
// TrimSpace+Fields+ParseInt path accepted.
func TestReadEdgeListWhitespaceForms(t *testing.T) {
	in := strings.Join([]string{
		"0 1",
		"\t1\t2",          // tabs
		"  2   0  ",       // leading/trailing runs of spaces
		"3 0 extra field", // trailing fields ignored
		"+4 0",            // explicit plus sign
		"",                // blank
		"   ",             // whitespace-only
		"# comment",
		"   % indented comment",
		"5 0\r", // CRLF line ending
	}, "\n")
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 6 || g.NumEdges() != 6 {
		t.Fatalf("parsed %v, want n=6 m=6", g)
	}
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestReadEdgeListBadInput(t *testing.T) {
	cases := map[string]string{
		"single field":   "7\n",
		"alpha field":    "a b\n",
		"alpha second":   "1 b\n",
		"trailing junk":  "1x 2\n",
		"bare sign":      "- 2\n",
		"int64 overflow": "99999999999999999999 1\n",
	}
	for name, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error for %q", name, in)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("%s: error %q does not name the line", name, err)
		}
	}
}

// A line exceeding the scanner buffer must fail with an actionable message,
// not a bare bufio.Scanner error.
func TestReadEdgeListLineTooLong(t *testing.T) {
	in := "0 1\n1 " + strings.Repeat("2", maxLineBytes+10) + "\n"
	_, err := ReadEdgeList(strings.NewReader(in))
	if err == nil {
		t.Fatal("expected error for over-long line")
	}
	msg := err.Error()
	for _, want := range []string{"line 2", "exceeds", "gcsr"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
}

func TestScanInt(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int64
		rest byte // byte at the returned index, 0 = end of line
	}{
		{"0", 0, 0},
		{"123 tail", 123, ' '},
		{"-42\t", -42, '\t'},
		{"+7", 7, 0},
		{"9223372036854775807", 1<<63 - 1, 0},
	} {
		got, i, err := scanInt([]byte(tc.in), 0, 1)
		if err != nil {
			t.Errorf("scanInt(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("scanInt(%q) = %d, want %d", tc.in, got, tc.want)
		}
		if tc.rest == 0 {
			if i != len(tc.in) {
				t.Errorf("scanInt(%q) stopped at %d, want end", tc.in, i)
			}
		} else if tc.in[i] != tc.rest {
			t.Errorf("scanInt(%q) stopped at %q, want %q", tc.in, tc.in[i], tc.rest)
		}
	}
	for _, bad := range []string{"", "-", "+", "12a", "9223372036854775808", "99999999999999999999"} {
		if _, _, err := scanInt([]byte(bad), 0, 1); err == nil {
			t.Errorf("scanInt(%q) accepted invalid input", bad)
		}
	}
}
