// Package gen provides deterministic synthetic graph generators. They stand
// in for the paper's web-crawled datasets (see README.md): Barabási–Albert
// and Holme–Kim produce the heavy-tailed degree distributions and tunable
// clustering that drive the paper's accuracy results; Erdős–Rényi and
// Watts–Strogatz cover the low- and high-clustering extremes; the
// configuration model gives direct control over the degree sequence.
//
// All generators are deterministic given the seed and return simple graphs.
package gen

import (
	"math"
	"math/rand"

	"repro/internal/graph"
)

// ErdosRenyiGNM generates a uniform random graph with n nodes and (up to) m
// distinct edges, sampled without replacement.
func ErdosRenyiGNM(n int, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	seen := make(map[int64]struct{}, m)
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(m) > maxEdges {
		m = int(maxEdges)
	}
	for len(seen) < m {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := int64(u)<<32 | int64(v)
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v)
	}
	return b.Build()
}

// ErdosRenyiGNP generates G(n, p) using geometric edge skipping, O(n + m).
func ErdosRenyiGNP(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	if p <= 0 {
		return b.Build()
	}
	if p >= 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				b.AddEdge(int32(u), int32(v))
			}
		}
		return b.Build()
	}
	lp := math.Log1p(-p)
	// Iterate over potential edges in row-major order, skipping geometrically.
	v, w := 1, -1
	for v < n {
		lr := math.Log1p(-rng.Float64())
		w += 1 + int(lr/lp)
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			b.AddEdge(int32(v), int32(w))
		}
	}
	return b.Build()
}

// BarabasiAlbert generates a preferential-attachment graph: start from a small
// clique of m0 = m+1 nodes, then each new node attaches m edges to existing
// nodes chosen proportionally to degree (without duplicate targets).
func BarabasiAlbert(n, m int, seed int64) *graph.Graph {
	if m < 1 {
		m = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	// repeated holds every edge endpoint twice; sampling a uniform element is
	// degree-proportional sampling.
	repeated := make([]int32, 0, 2*m*n)
	m0 := m + 1
	if m0 > n {
		m0 = n
	}
	for u := 0; u < m0; u++ {
		for v := u + 1; v < m0; v++ {
			b.AddEdge(int32(u), int32(v))
			repeated = append(repeated, int32(u), int32(v))
		}
	}
	targets := make([]int32, 0, m)
	for v := m0; v < n; v++ {
		targets = targets[:0]
		for len(targets) < m {
			t := repeated[rng.Intn(len(repeated))]
			dup := false
			for _, x := range targets {
				if x == t {
					dup = true
					break
				}
			}
			if !dup {
				targets = append(targets, t)
			}
		}
		for _, t := range targets {
			b.AddEdge(int32(v), t)
			repeated = append(repeated, int32(v), t)
		}
	}
	return b.Build()
}

// HolmeKim generates a power-law graph with tunable clustering: like
// Barabási–Albert, but after each preferential attachment step a triad is
// closed with probability pt (attach to a random neighbor of the previous
// target). High pt yields Facebook-like triangle density.
func HolmeKim(n, m int, pt float64, seed int64) *graph.Graph {
	if m < 1 {
		m = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	repeated := make([]int32, 0, 2*m*n)
	adj := make([][]int32, n) // insertion-ordered adjacency for determinism
	has := make(map[int64]struct{}, m*n)
	key := func(u, v int32) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)<<32 | int64(v)
	}
	addEdge := func(u, v int32) bool {
		if u == v {
			return false
		}
		if _, dup := has[key(u, v)]; dup {
			return false
		}
		has[key(u, v)] = struct{}{}
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
		b.AddEdge(u, v)
		repeated = append(repeated, u, v)
		return true
	}
	m0 := m + 1
	if m0 > n {
		m0 = n
	}
	for u := 0; u < m0; u++ {
		for v := u + 1; v < m0; v++ {
			addEdge(int32(u), int32(v))
		}
	}
	for v := m0; v < n; v++ {
		var last int32 = -1
		added := 0
		for added < m {
			var t int32
			if last >= 0 && rng.Float64() < pt && len(adj[last]) > 0 {
				// Triad formation: pick a random neighbor of the last target.
				t = adj[last][rng.Intn(len(adj[last]))]
			} else {
				t = repeated[rng.Intn(len(repeated))]
			}
			if addEdge(int32(v), t) {
				last = t
				added++
			} else if last < 0 || rng.Float64() < 0.5 {
				// Avoid livelock on tiny graphs: fall back to uniform node.
				t = int32(rng.Intn(v))
				if addEdge(int32(v), t) {
					last = t
					added++
				}
			}
		}
	}
	return b.Build()
}

// WattsStrogatz generates a small-world graph: a ring lattice where every node
// connects to its k nearest neighbors (k even), each edge rewired with
// probability beta.
func WattsStrogatz(n, k int, beta float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	has := make(map[int64]struct{}, n*k/2)
	key := func(u, v int32) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)<<32 | int64(v)
	}
	add := func(u, v int32) bool {
		if u == v {
			return false
		}
		if _, ok := has[key(u, v)]; ok {
			return false
		}
		has[key(u, v)] = struct{}{}
		return true
	}
	type e struct{ u, v int32 }
	var edges []e
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			v := (u + j) % n
			if add(int32(u), int32(v)) {
				edges = append(edges, e{int32(u), int32(v)})
			}
		}
	}
	for i := range edges {
		if rng.Float64() < beta {
			u := edges[i].u
			for try := 0; try < 32; try++ {
				w := int32(rng.Intn(n))
				if add(u, w) {
					delete(has, key(edges[i].u, edges[i].v))
					edges[i].v = w
					break
				}
			}
		}
	}
	for _, ed := range edges {
		b.AddEdge(ed.u, ed.v)
	}
	return b.Build()
}

// PowerLawConfiguration generates a graph from the configuration model with a
// power-law degree sequence of exponent gamma and minimum degree dmin
// (truncated at dmax); multi-edges and self-loops created by the stub matching
// are discarded, as is standard.
func PowerLawConfiguration(n int, gamma float64, dmin, dmax int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	if dmax >= n {
		dmax = n - 1
	}
	// Sample degrees via inverse transform on the discrete power law.
	degs := make([]int, n)
	var stubs int
	for i := range degs {
		d := samplePowerLaw(rng, gamma, dmin, dmax)
		degs[i] = d
		stubs += d
	}
	if stubs%2 == 1 {
		degs[0]++
	}
	var half []int32
	for v, d := range degs {
		for j := 0; j < d; j++ {
			half = append(half, int32(v))
		}
	}
	rng.Shuffle(len(half), func(i, j int) { half[i], half[j] = half[j], half[i] })
	b := graph.NewBuilder(n)
	for i := 0; i+1 < len(half); i += 2 {
		b.AddEdge(half[i], half[i+1]) // builder drops loops/duplicates
	}
	return b.Build()
}

func samplePowerLaw(rng *rand.Rand, gamma float64, dmin, dmax int) int {
	// Discrete inverse-CDF sampling via continuous approximation.
	u := rng.Float64()
	a := 1 - gamma
	lo, hi := float64(dmin), float64(dmax)+1
	x := math.Pow(math.Pow(lo, a)+u*(math.Pow(hi, a)-math.Pow(lo, a)), 1/a)
	d := int(x)
	if d < dmin {
		d = dmin
	}
	if d > dmax {
		d = dmax
	}
	return d
}

// PlantCliques returns a copy of g with `count` cliques of the given size
// planted on uniformly chosen node subsets. Planting models the dense
// community structure of real social networks, which the plain
// preferential-attachment generators lack; it gives the synthetic stand-ins
// realistic (small but non-zero) 4- and 5-clique concentrations.
func PlantCliques(g *graph.Graph, count, size int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumNodes()
	b := graph.NewBuilder(n)
	g.Edges(func(u, v int32) bool {
		b.AddEdge(u, v)
		return true
	})
	members := make([]int32, 0, size)
	for c := 0; c < count; c++ {
		members = members[:0]
		for len(members) < size {
			v := int32(rng.Intn(n))
			dup := false
			for _, x := range members {
				if x == v {
					dup = true
					break
				}
			}
			if !dup {
				members = append(members, v)
			}
		}
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				b.AddEdge(members[i], members[j])
			}
		}
	}
	return b.Build()
}

// RandomRegular generates an approximately d-regular graph via stub matching
// (loops/duplicates discarded, so some nodes may have degree d-1 or d-2).
func RandomRegular(n, d int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	if n*d%2 == 1 {
		d++
	}
	half := make([]int32, 0, n*d)
	for v := 0; v < n; v++ {
		for j := 0; j < d; j++ {
			half = append(half, int32(v))
		}
	}
	rng.Shuffle(len(half), func(i, j int) { half[i], half[j] = half[j], half[i] })
	b := graph.NewBuilder(n)
	for i := 0; i+1 < len(half); i += 2 {
		b.AddEdge(half[i], half[i+1])
	}
	return b.Build()
}
