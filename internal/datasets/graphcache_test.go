package datasets

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// The on-disk .gcsr dataset cache must hand back exactly the graph a fresh
// build produces — estimates may not depend on whether the cache was hit.
func TestGraphCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	old := os.Getenv("REPRO_CACHE_DIR")
	os.Setenv("REPRO_CACHE_DIR", dir)
	defer os.Setenv("REPRO_CACHE_DIR", old)

	d, err := Get("brightkite")
	if err != nil {
		t.Fatal(err)
	}
	// Reference build, bypassing both the memo and the disk cache.
	raw := d.Build()
	want, _ := graph.LargestComponent(raw)

	// Prime the disk cache (the memo may already hold the graph from other
	// tests, so write the cache file directly through the same pipeline).
	cachePath := filepath.Join(dir, fmt.Sprintf("%s-lcc.g%d.gcsr", d.Name, graphCacheGen))
	if err := graph.Save(cachePath, want); err != nil {
		t.Fatal(err)
	}
	got, err := graph.OpenMapped(cachePath)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() || got.MaxDegree() != want.MaxDegree() {
		t.Fatalf("cached graph %v (maxDeg %d) != built %v (maxDeg %d)",
			got, got.MaxDegree(), want, want.MaxDegree())
	}
	for v := int32(0); v < int32(want.NumNodes()); v++ {
		a, b := want.Neighbors(v), got.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("node %d: degree %d vs %d", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d: neighbor[%d] %d vs %d", v, i, a[i], b[i])
			}
		}
	}
	if err := graph.Validate(got); err != nil {
		t.Fatal(err)
	}
}
