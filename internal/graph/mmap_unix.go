//go:build unix

package graph

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"syscall"
	"unsafe"
)

// OpenMapped opens a .gcsr file (either format version) via a read-only
// shared mmap. For version 1 the off/adj arrays alias the page cache
// directly (zero copy), so no per-element decode or heap copy is made and
// resident memory is shared across processes mapping the same file. For
// version 2 the encoded blocks stay mapped (shared, compressed) and decoded
// rows are served from a bounded per-graph cache sized by
// OpenOptions.BlockCacheBytes (OpenMapped uses the default). Opening still
// makes one sequential checksum-and-validation pass over the raw bytes (see
// the format docs), so open time is linear in file size but a large
// constant factor cheaper than parsing an edge list — tens of milliseconds
// per hundred MB, served from the page cache on warm opens. Call Close on
// the returned graph to release the mapping; the graph must not be used
// afterwards.
//
// On big-endian hosts (where the little-endian arrays cannot be aliased)
// OpenMapped transparently falls back to the portable Load path, which
// returns an ordinary heap-backed graph.
func OpenMapped(path string) (*Graph, error) {
	return OpenMappedOpts(path, OpenOptions{})
}

// OpenMappedOpts is OpenMapped with read-path tuning.
func OpenMappedOpts(path string, o OpenOptions) (*Graph, error) {
	if !hostLittleEndian() {
		return Load(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < gcsrHeaderSize {
		return nil, fmt.Errorf("graph: %s: gcsr: file shorter than the %d-byte header", path, gcsrHeaderSize)
	}
	if int64(int(size)) != size {
		// File larger than the address space (32-bit platforms): the
		// portable path at least fails with a clear allocation error.
		return Load(path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("graph: mmap %s: %w", path, err)
	}
	g, hotEnd, err := mapBinaryAny(data, o)
	if err != nil {
		syscall.Munmap(data)
		return nil, fmt.Errorf("graph: %s: %w", path, err)
	}
	// Advise after validation: the open-time checksum pass is sequential
	// and benefits from default readahead; the accesses that follow are
	// random over the cold region (v1 adj / v2 blocks) and hot over the
	// prefix (v1 off array / v2 header+index+IDs).
	adviseMapped(data, hotEnd)
	g.unmap = func() error { return syscall.Munmap(data) }
	return g, nil
}

// mapBinaryAny dispatches on the format version and returns the graph plus
// the mapping offset one past the keep-resident prefix (for adviseMapped).
func mapBinaryAny(data []byte, o OpenOptions) (*Graph, int, error) {
	if len(data) >= 8 && string(data[0:4]) == gcsrMagic &&
		binary.LittleEndian.Uint32(data[4:8]) == gcsrVersion2 {
		h, err := parseV2Header(data)
		if err != nil {
			return nil, 0, err
		}
		g, err := buildV2Graph(data, o)
		if err != nil {
			return nil, 0, err
		}
		return g, int(h.blocksStart()), nil
	}
	g, err := mapBinary(data)
	if err != nil {
		return nil, 0, err
	}
	return g, gcsrHeaderSize + int((int64(g.NumNodes())+1)*8), nil
}

// mapBinary builds a Graph whose off/adj slices alias the mapped file bytes.
// The 40-byte header keeps both arrays naturally aligned within the
// page-aligned mapping.
func mapBinary(data []byte) (*Graph, error) {
	h, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	want := gcsrHeaderSize + h.offBytes() + h.adjBytes()
	if int64(len(data)) != want {
		return nil, fmt.Errorf("gcsr: file size %d != expected %d (n=%d, m=%d)", len(data), want, h.n, h.m)
	}
	payload := data[gcsrHeaderSize:]
	if got := crc32.Checksum(payload, castagnoli); got != h.crc {
		return nil, fmt.Errorf("gcsr: payload checksum %08x != stored %08x (file corrupted)", got, h.crc)
	}
	off := unsafe.Slice((*int64)(unsafe.Pointer(&payload[0])), h.n+1)
	if err := checkOffsets(off, h); err != nil {
		return nil, err
	}
	var adj []int32
	if h.m > 0 {
		adj = unsafe.Slice((*int32)(unsafe.Pointer(&payload[h.offBytes()])), 2*h.m)
	}
	if err := checkAdjacency(off, adj, h); err != nil {
		return nil, err
	}
	g := &Graph{off: off, adj: adj, m: h.m, maxDeg: int(h.maxDeg)}
	g.buildHubIndex()
	return g, nil
}
