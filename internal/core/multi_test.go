package core

import (
	"math"
	"testing"

	"repro/internal/access"
	"repro/internal/exact"
	"repro/internal/gen"
)

func TestMultiConfigValidate(t *testing.T) {
	bad := []MultiConfig{
		{},
		{Sizes: []int{2}, D: 1},
		{Sizes: []int{6}, D: 1},
		{Sizes: []int{3, 4}, D: 4},
		{Sizes: []int{3}, D: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
	if err := (MultiConfig{Sizes: []int{3, 4, 5}, D: 2}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestMultiEstimatorConvergence: one walk on G(2), three sizes at once, each
// converging to its exact concentration.
func TestMultiEstimatorConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("long convergence test")
	}
	g := gen.HolmeKim(35, 3, 0.7, 13)
	client := access.NewGraphClient(g)
	me, err := NewMultiEstimator(client, MultiConfig{Sizes: []int{3, 4, 5}, D: 2, CSS: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := me.Run(500000)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{3, 4, 5} {
		want := exact.Concentrations(exact.CountESU(g, k))
		got := res.Results[k].Concentration()
		for i := range want {
			if want[i] < 0.005 {
				continue
			}
			if math.Abs(got[i]-want[i])/want[i] > 0.15 {
				t.Errorf("k=%d type %d: got %.4f, want %.4f", k, i+1, got[i], want[i])
			}
		}
	}
}

// TestMultiMatchesSingle: the multi estimator's per-size windows must agree
// with a single-size estimator in expectation; verified statistically.
func TestMultiMatchesSingle(t *testing.T) {
	g := gen.HolmeKim(40, 3, 0.6, 17)
	client := access.NewGraphClient(g)
	me, err := NewMultiEstimator(client, MultiConfig{Sizes: []int{4}, D: 2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := me.Run(200000)
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewEstimator(client, Config{K: 4, D: 2, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	sres, err := single.Run(200000)
	if err != nil {
		t.Fatal(err)
	}
	a := multi.Results[4].Concentration()
	b := sres.Concentration()
	for i := range a {
		if b[i] < 0.01 {
			continue
		}
		if math.Abs(a[i]-b[i])/b[i] > 0.15 {
			t.Errorf("type %d: multi %.4f vs single %.4f", i+1, a[i], b[i])
		}
	}
}

// TestRecoverStars: SRW1 for k=4 with star recovery converges to the full
// 4-node concentration including the otherwise invisible 3-star.
func TestRecoverStars(t *testing.T) {
	g := gen.HolmeKim(40, 3, 0.6, 42)
	client := access.NewGraphClient(g)
	est, err := NewEstimator(client, Config{K: 4, D: 1, RecoverStars: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := est.Run(400000)
	if err != nil {
		t.Fatal(err)
	}
	want := exact.Concentrations(exact.CountESU(g, 4))
	got := res.Concentration()
	for i := range want {
		if want[i] < 0.01 {
			continue
		}
		if math.Abs(got[i]-want[i])/want[i] > 0.12 {
			t.Errorf("type %d: got %.4f, want %.4f", i+1, got[i], want[i])
		}
	}
	// The star is a dominant type on this graph; recovery must be non-zero.
	if got[1] < 0.1 {
		t.Errorf("recovered star concentration %.4f suspiciously low", got[1])
	}
}

func TestRecoverStarsValidation(t *testing.T) {
	bad := []Config{
		{K: 3, D: 1, RecoverStars: true},
		{K: 4, D: 2, RecoverStars: true},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
}

func TestMultiRunErrors(t *testing.T) {
	g := gen.Cycle(10)
	client := access.NewGraphClient(g)
	me, err := NewMultiEstimator(client, MultiConfig{Sizes: []int{3}, D: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := me.Run(0); err == nil {
		t.Error("Run(0) should fail")
	}
}
