package service

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// The registry must serve identical graphs — and identical estimates — no
// matter whether a dataset arrives as a text edge list or as a packed .gcsr
// file opened through the mmap path.
func TestRegistryGCSRFile(t *testing.T) {
	dir := t.TempDir()
	raw := gen.HolmeKim(600, 3, 0.5, 21)

	txtPath := filepath.Join(dir, "g.txt")
	if err := graph.SaveEdgeList(txtPath, raw); err != nil {
		t.Fatal(err)
	}
	// Pack what the text load path produces (parse, then LCC) — the same
	// pipeline cmd/graphlet-pack runs. ReadEdgeList compacts node IDs by
	// first appearance, so packing must start from the parsed graph.
	parsed, err := graph.LoadEdgeList(txtPath)
	if err != nil {
		t.Fatal(err)
	}
	lcc, _ := graph.LargestComponent(parsed)
	gcsrPath := filepath.Join(dir, "g.gcsr")
	if err := graph.Save(gcsrPath, lcc); err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry()
	if err := reg.AddFile("text", txtPath); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddFile("packed", gcsrPath); err != nil {
		t.Fatal(err)
	}

	ti, _ := reg.Info("text")
	pi, ok := reg.Info("packed")
	if !ok {
		t.Fatal("packed graph not registered")
	}
	if ti.Source != "file" || pi.Source != "gcsr" {
		t.Errorf("sources = %q, %q; want file, gcsr", ti.Source, pi.Source)
	}
	if ti.Nodes != pi.Nodes || ti.Edges != pi.Edges || ti.MaxDegree != pi.MaxDegree {
		t.Fatalf("graph shape differs between load paths: %+v vs %+v", ti, pi)
	}

	gt, _ := reg.Get("text")
	gp, _ := reg.Get("packed")
	cfg := core.Config{K: 4, D: 2, CSS: true, Seed: 31, Walkers: 2}
	results := make([]string, 2)
	for i, g := range []*graph.Graph{gt, gp} {
		est, err := core.NewEstimator(access.NewGraphClient(g), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := est.Run(4000)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = fmt.Sprintf("%v|%v|%v", res.Concentration(), res.Weights, res.TypeCounts)
	}
	if results[0] != results[1] {
		t.Errorf("estimates differ between text and gcsr load paths:\n%s\n%s", results[0], results[1])
	}
}

// A .gcsr file holding a disconnected graph still registers its LCC.
func TestRegistryGCSRDisconnected(t *testing.T) {
	b := graph.NewBuilder(0)
	for v := int32(1); v < 80; v++ {
		b.AddEdge(0, v) // star component
	}
	b.AddEdge(100, 101) // stray component
	g := b.Build()
	path := filepath.Join(t.TempDir(), "split.gcsr")
	if err := graph.Save(path, g); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.AddFile("split", path); err != nil {
		t.Fatal(err)
	}
	info, _ := reg.Info("split")
	if info.Nodes != 80 || info.Edges != 79 {
		t.Errorf("LCC not extracted: %+v", info)
	}
}
