// Package kernel implements the graphlet-kernel similarity of the paper's
// §6.4 (after Shervashidze et al. [33], restricted to one graphlet size):
// the cosine similarity of two graphs' graphlet-concentration vectors.
package kernel

import "math"

// Cosine returns c1·c2 / (‖c1‖·‖c2‖). Vectors must have equal length; zero
// vectors yield 0.
func Cosine(c1, c2 []float64) float64 {
	if len(c1) != len(c2) {
		panic("kernel: vector length mismatch")
	}
	var dot, n1, n2 float64
	for i := range c1 {
		dot += c1[i] * c2[i]
		n1 += c1[i] * c1[i]
		n2 += c2[i] * c2[i]
	}
	if n1 == 0 || n2 == 0 {
		return 0
	}
	return dot / math.Sqrt(n1*n2)
}

// Gram returns the pairwise cosine-similarity matrix of the given
// concentration vectors — the graphlet kernel's Gram matrix used for graph
// classification. Cosine similarity is symmetric, so only the upper triangle
// is computed and mirrored; the diagonal is 1 for nonzero vectors (0 for zero
// vectors, matching Cosine).
func Gram(vectors [][]float64) [][]float64 {
	n := len(vectors)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		if !isZero(vectors[i]) {
			out[i][i] = 1
		}
		for j := i + 1; j < n; j++ {
			s := Cosine(vectors[i], vectors[j])
			out[i][j] = s
			out[j][i] = s
		}
	}
	return out
}

func isZero(v []float64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}
