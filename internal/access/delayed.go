package access

import (
	"math/rand"
	"time"
)

// Delayed wraps a Client and sleeps before every neighborhood fetch,
// simulating the response latency of a real OSN API (the paper's timing
// experiments exclude API delay; this wrapper lets users model it when
// planning crawl budgets). Edge probes are charged too, since a real crawler
// answers them from fetched neighbor lists it had to pay for.
type Delayed struct {
	inner   Client
	latency time.Duration
}

// NewDelayed wraps inner with a fixed per-call latency.
func NewDelayed(inner Client, latency time.Duration) *Delayed {
	return &Delayed{inner: inner, latency: latency}
}

func (d *Delayed) pause() {
	if d.latency > 0 {
		time.Sleep(d.latency)
	}
}

// Degree implements Client.
func (d *Delayed) Degree(v int32) int { d.pause(); return d.inner.Degree(v) }

// Neighbors implements Client.
func (d *Delayed) Neighbors(v int32) []int32 { d.pause(); return d.inner.Neighbors(v) }

// Neighbor implements Client.
func (d *Delayed) Neighbor(v int32, i int) int32 { d.pause(); return d.inner.Neighbor(v, i) }

// HasEdge implements Client.
func (d *Delayed) HasEdge(u, v int32) bool { d.pause(); return d.inner.HasEdge(u, v) }

// RandomNode implements Client.
func (d *Delayed) RandomNode(rng *rand.Rand) int32 { return d.inner.RandomNode(rng) }
