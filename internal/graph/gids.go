package graph

// The .gids sidecar stores the dense→source node ID remap for graphs whose
// container cannot embed it — version-1 .gcsr files (whose layout is frozen)
// and any future format that wants the mapping out-of-line. Version-2 .gcsr
// files embed the mapping instead (SaveOptions.IDs); the sidecar exists so
// `graphlet-pack -keep-ids -format v1` has somewhere to put the IDs without
// breaking v1 readers.
//
// Layout (little-endian): magic "GIDS" (4), format version 1 (4), n (8),
// CRC-32C of the payload (4), reserved zero (4), then n int64 source IDs.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
)

const (
	gidsMagic      = "GIDS"
	gidsVersion    = 1
	gidsHeaderSize = 24

	// GIDSExt is the extension appended to a graph file's path to name its
	// original-IDs sidecar ("g.gcsr" → "g.gcsr.gids").
	GIDSExt = ".gids"
)

// IDsSidecarPath returns the sidecar path for a graph file.
func IDsSidecarPath(graphPath string) string { return graphPath + GIDSExt }

// SaveIDs writes a dense→source ID mapping as a .gids sidecar file.
func SaveIDs(path string, ids []int64) error {
	buf := make([]byte, gidsHeaderSize+8*len(ids))
	copy(buf[0:4], gidsMagic)
	binary.LittleEndian.PutUint32(buf[4:8], gidsVersion)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(len(ids)))
	for i, id := range ids {
		binary.LittleEndian.PutUint64(buf[gidsHeaderSize+8*i:], uint64(id))
	}
	binary.LittleEndian.PutUint32(buf[16:20], crc32.Checksum(buf[gidsHeaderSize:], castagnoli))
	// buf[20:24] reserved, zero.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadIDs reads a .gids sidecar file.
func LoadIDs(path string) ([]int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ids, err := parseIDs(data)
	if err != nil {
		return nil, fmt.Errorf("graph: %s: %w", path, err)
	}
	return ids, nil
}

func parseIDs(data []byte) ([]int64, error) {
	if len(data) < gidsHeaderSize {
		return nil, fmt.Errorf("gids: file shorter than the %d-byte header", gidsHeaderSize)
	}
	if string(data[0:4]) != gidsMagic {
		return nil, fmt.Errorf("gids: bad magic %q (not a .gids file)", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != gidsVersion {
		return nil, fmt.Errorf("gids: unsupported format version %d (want %d)", v, gidsVersion)
	}
	n := int64(binary.LittleEndian.Uint64(data[8:16]))
	if n < 0 || n > math.MaxInt32 {
		return nil, fmt.Errorf("gids: ID count %d out of range", n)
	}
	if int64(len(data)) != gidsHeaderSize+8*n {
		return nil, fmt.Errorf("gids: file is %d bytes, header promises %d (file truncated?)", len(data), gidsHeaderSize+8*n)
	}
	payload := data[gidsHeaderSize:]
	stored := binary.LittleEndian.Uint32(data[16:20])
	if got := crc32.Checksum(payload, castagnoli); got != stored {
		return nil, fmt.Errorf("gids: payload checksum %08x != stored %08x (file corrupted)", got, stored)
	}
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(binary.LittleEndian.Uint64(payload[i*8:]))
	}
	return ids, nil
}

// attachSidecarIDs loads path's .gids sidecar into g if one exists. A
// missing sidecar is fine (the mapping is optional); a present-but-invalid
// one is an error, because serving results in the wrong ID space is worse
// than failing the open.
func attachSidecarIDs(g *Graph, path string) error {
	side := IDsSidecarPath(path)
	if _, err := os.Stat(side); err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	ids, err := LoadIDs(side)
	if err != nil {
		return err
	}
	if err := g.SetOriginalIDs(ids); err != nil {
		return fmt.Errorf("graph: %s: sidecar does not match graph: %w", side, err)
	}
	return nil
}
