package core

import (
	"context"
	"fmt"

	"repro/internal/access"
	"repro/internal/graphlet"
	"repro/internal/walk"
)

// walker is the per-goroutine layer of the estimation engine: exactly one
// random walk on G(d), its sliding window of the last l states, and a private
// Result accumulator. A walker owns its walk.Space instance (spaceD keeps a
// mutable neighbor cache and scratch buffers) and its rand.Rand, so it never
// shares mutable state with sibling walkers — the only shared object is the
// access.Client, which is required to be safe for concurrent use.
//
// The ensemble layer (ensemble.go) spawns Config.Walkers of these and merges
// their Results in walker-index order; see Result.Merge for why summation is
// the exact combination rule.
type walker struct {
	cfg    Config
	client access.Client
	space  walk.Space
	w      *walk.Walk
	seed   int64      // walker-specific seed (walkerSeed); rebuilds rng on restore
	rng    *walk.Rand // position-counted so checkpoints can snapshot the stream

	l     int
	alpha []int64 // α per type (paper order)

	// Sliding window of the last l states with their G(d) degrees.
	win    []walk.State
	degs   []int
	winLen int
	ring   int // index of the oldest window entry

	// Scratch buffers.
	unionNodes []int32
	chainNodes []int32

	// res is the walker-private accumulator; merged by the ensemble.
	res    *Result
	seeded bool // start state drawn
	primed bool // burn-in done, window filled
}

// newWalker builds one walker with its own space and RNG. seed is the
// walker-specific seed derived by the ensemble (walkerSeed).
func newWalker(client access.Client, cfg Config, seed int64) *walker {
	l := cfg.K - cfg.D + 1
	cat := graphlet.Catalog(cfg.K)
	alpha := make([]int64, len(cat))
	for i := range cat {
		alpha[i] = cat[i].Alpha[cfg.D]
	}
	return &walker{
		cfg:    cfg,
		client: client,
		space:  walk.NewSpace(client, cfg.D),
		seed:   seed,
		rng:    walk.NewRand(seed),
		l:      l,
		alpha:  alpha,
		win:    make([]walk.State, l),
		degs:   make([]int, l),
	}
}

// reset prepares the walker for a fresh run: a new private Result and a
// restarted walk (the RNG stream continues, like repeated Run calls always
// did).
func (wk *walker) reset() {
	wk.res = &Result{
		Config:     wk.cfg,
		Weights:    make([]float64, len(wk.alpha)),
		TypeCounts: make([]int64, len(wk.alpha)),
	}
	wk.seeded = false
	wk.primed = false
}

// ensureSeeded draws the walk's start state exactly once per reset. This is
// the only client call whose order must be walker-index-deterministic
// (clients like the HTTP crawler draw seeds from shared server-side state),
// so the ensemble calls it sequentially before the concurrent stages;
// burn-in and window fill use only walker-private state and stay in the
// concurrent phase.
func (wk *walker) ensureSeeded() {
	if !wk.seeded {
		wk.w = walk.New(wk.space, wk.cfg.NB, wk.rng.Rand)
		wk.seeded = true
	}
}

// cancelCheckEvery is the step granularity of cooperative cancellation: a
// walker polls its context once per this many windows, so a cancel stops a
// run within a few hundred transitions even when the whole budget is one
// barrier-free stage (e.g. a very slow crawl with no snapshot callback).
// The poll touches no walker state — no RNG draw, no window mutation — so
// runs that are not cancelled stay byte-identical to the unpolled engine.
const cancelCheckEvery = 256

// run processes `count` windows into the walker's private Result, polling
// ctx every cancelCheckEvery windows. A nil-Done context (context.Background)
// is never polled, keeping the hot loop overhead-free for plain Run calls.
func (wk *walker) run(ctx context.Context, count int) error {
	wk.start()
	done := ctx.Done()
	for j := 0; j < count; j++ {
		if done != nil && j%cancelCheckEvery == 0 {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		if err := wk.accumulate(wk.res); err != nil {
			return err
		}
		if wk.cfg.RecoverStars {
			wk.accumulateStars()
			wk.res.applyStarRecovery()
		}
		wk.advance()
		wk.res.Steps++
	}
	return nil
}

// start brings the walker to a runnable state: start state drawn (if the
// ensemble has not already done so sequentially), burn-in applied, first
// window filled.
func (wk *walker) start() {
	wk.ensureSeeded()
	if wk.primed {
		return
	}
	wk.w.Burn(wk.cfg.BurnIn)
	wk.winLen = 0
	wk.ring = 0
	wk.push(wk.w.Current())
	for wk.winLen < wk.l {
		wk.push(wk.w.Step())
	}
	wk.primed = true
}

// advance slides the window by one walk transition.
func (wk *walker) advance() { wk.push(wk.w.Step()) }

func (wk *walker) push(s walk.State) {
	if wk.winLen < wk.l {
		wk.win[wk.winLen] = s
		wk.degs[wk.winLen] = wk.space.StateDegree(s)
		wk.winLen++
		return
	}
	wk.win[wk.ring] = s
	wk.degs[wk.ring] = wk.space.StateDegree(s)
	wk.ring = (wk.ring + 1) % wk.l
}

// windowAt returns the i-th window entry in walk order (0 = oldest).
func (wk *walker) windowAt(i int) (walk.State, int) {
	j := (wk.ring + i) % wk.l
	return wk.win[j], wk.degs[j]
}

// accumulateStars adds the non-induced-star functional of the newest visited
// node (stationary probability ∝ degree): C(d_v, 3)/d_v.
func (wk *walker) accumulateStars() {
	_, deg := wk.windowAt(wk.l - 1)
	d := float64(deg) // d = 1 walk: the state degree is the node degree
	// C(d,3)/d simplifies to (d-1)(d-2)/6.
	wk.res.StarAcc += (d - 1) * (d - 2) / 6
}

// accumulate processes the current window: if it covers exactly k distinct
// nodes, classify the induced subgraph and add its re-weighted contribution.
func (wk *walker) accumulate(res *Result) error {
	k := wk.cfg.K
	wk.unionNodes = wk.unionNodes[:0]
	for i := 0; i < wk.l; i++ {
		s, _ := wk.windowAt(i)
		for j := 0; j < s.Len(); j++ {
			x := s.Node(j)
			found := false
			for _, y := range wk.unionNodes {
				if y == x {
					found = true
					break
				}
			}
			if !found {
				wk.unionNodes = append(wk.unionNodes, x)
				if len(wk.unionNodes) > k {
					return nil // over-covering impossible; defensive
				}
			}
		}
	}
	if len(wk.unionNodes) != k {
		return nil // invalid sample (Figure 3)
	}
	res.ValidSamples++

	nodes := wk.unionNodes
	code := windowCode(wk.client, wk.space, k, wk.l, nodes, wk.windowAt)
	typ := graphlet.ClassifyCode(k, code)
	if typ < 0 {
		return fmt.Errorf("core: window %v classified as disconnected", nodes)
	}
	res.TypeCounts[typ]++

	var weight float64
	if wk.cfg.CSS && wk.l > 2 {
		p := wk.samplingProbability(nodes)
		if p <= 0 {
			return fmt.Errorf("core: zero sampling probability for type %d", typ+1)
		}
		weight = 1 / p
	} else {
		if wk.alpha[typ] == 0 {
			return fmt.Errorf("core: walk produced type %d with alpha = 0 (d=%d)", typ+1, wk.cfg.D)
		}
		weight = 1 / (float64(wk.alpha[typ]) * wk.pieTilde())
	}
	res.Weights[typ] += weight
	return nil
}

// pieTilde computes π̃e(X^(l)) = 2|R(d)|·πe for the current window
// (Equation 2): deg(X_1) for l = 1, 1 for l = 2, and the product of inverse
// degrees of the interior states for l > 2. Under NB, nominal degrees are
// used (§4.2).
func (wk *walker) pieTilde() float64 {
	switch wk.l {
	case 1:
		// Marginal state probability d_X/2|R|; NB-SRW preserves it, so the
		// actual degree is used even under NB.
		_, d := wk.windowAt(0)
		return float64(d)
	case 2:
		return 1
	}
	p := 1.0
	for i := 1; i < wk.l-1; i++ {
		_, d := wk.windowAt(i)
		p *= 1 / wk.adjDeg(d)
	}
	return p
}

func (wk *walker) adjDeg(d int) float64 {
	if wk.cfg.NB {
		return float64(nominal(d))
	}
	return float64(d)
}

// nominal maps a state degree to the NB-SRW nominal degree.
func nominal(d int) int {
	if d <= 1 {
		return 1
	}
	return d - 1
}

// samplingProbability computes p̃(X^(l)) = 2|R(d)|·p(X^(l)) (Definition 4,
// Algorithm 3) for the walker's configuration.
func (wk *walker) samplingProbability(nodes []int32) float64 {
	return samplingProbabilityWith(wk.client, wk.space, wk.cfg.K, wk.cfg.D, wk.cfg.NB, nodes, &wk.chainNodes)
}

// snapshot exports the walker's complete resumable state. Only safe while
// the walker is quiescent (between ensemble stages); read-only, so taking a
// snapshot never perturbs the run.
func (wk *walker) snapshot() WalkerState {
	st := WalkerState{
		RNGPos: wk.rng.Pos(),
		Seeded: wk.seeded,
		Primed: wk.primed,
	}
	if wk.res != nil {
		st.ResSteps = wk.res.Steps
		st.ValidSamples = wk.res.ValidSamples
		st.Weights = append([]float64(nil), wk.res.Weights...)
		st.TypeCounts = append([]int64(nil), wk.res.TypeCounts...)
		st.StarAcc = wk.res.StarAcc
	} else {
		st.Weights = make([]float64, len(wk.alpha))
		st.TypeCounts = make([]int64, len(wk.alpha))
	}
	if wk.seeded {
		ws := wk.w.State()
		st.Steps = ws.Steps
		st.HasPrev = ws.HasPrev
		st.Cur = ws.Cur.Nodes(nil)
		if ws.HasPrev {
			st.Prev = ws.Prev.Nodes(nil)
		}
	}
	if wk.primed {
		st.Win = make([][]int32, wk.l)
		st.Degs = make([]int, wk.l)
		for i := 0; i < wk.l; i++ {
			s, d := wk.windowAt(i)
			st.Win[i] = s.Nodes(nil)
			st.Degs[i] = d
		}
	}
	return st
}

// restore rebuilds the walker from an exported state: a fresh space (its
// caches are derived), the RNG fast-forwarded to the recorded stream
// position, the walk at its recorded position, the window in canonical ring
// order, and the private accumulator. On error the walker may be left
// partially mutated; callers discard the whole estimator then.
func (wk *walker) restore(st WalkerState) error {
	if len(st.Weights) != len(wk.alpha) || len(st.TypeCounts) != len(wk.alpha) {
		return fmt.Errorf("core: restore: accumulator has %d/%d types, want %d",
			len(st.Weights), len(st.TypeCounts), len(wk.alpha))
	}
	if st.ResSteps < 0 || st.ValidSamples < 0 || st.Steps < 0 {
		return fmt.Errorf("core: restore: negative counters")
	}
	if st.Primed && !st.Seeded {
		return fmt.Errorf("core: restore: primed walker without a start state")
	}
	wk.res = &Result{
		Config:       wk.cfg,
		Steps:        st.ResSteps,
		ValidSamples: st.ValidSamples,
		Weights:      append([]float64(nil), st.Weights...),
		TypeCounts:   append([]int64(nil), st.TypeCounts...),
		StarAcc:      st.StarAcc,
	}
	if wk.cfg.RecoverStars {
		wk.res.applyStarRecovery()
	}
	wk.rng = walk.NewRandAt(wk.seed, st.RNGPos)
	wk.space = walk.NewSpace(wk.client, wk.cfg.D)
	wk.seeded = st.Seeded
	wk.primed = st.Primed
	wk.winLen, wk.ring = 0, 0
	if !st.Seeded {
		wk.w = nil
		return nil
	}
	ws := walk.WalkState{Steps: st.Steps, HasPrev: st.HasPrev}
	var err error
	if ws.Cur, err = stateOf(st.Cur, wk.cfg.D); err != nil {
		return fmt.Errorf("core: restore current state: %w", err)
	}
	if st.HasPrev {
		if ws.Prev, err = stateOf(st.Prev, wk.cfg.D); err != nil {
			return fmt.Errorf("core: restore previous state: %w", err)
		}
	}
	wk.w = walk.Resume(wk.space, ws, wk.cfg.NB, wk.rng.Rand)
	if st.Primed {
		if len(st.Win) != wk.l || len(st.Degs) != wk.l {
			return fmt.Errorf("core: restore: window of %d states/%d degrees, want %d",
				len(st.Win), len(st.Degs), wk.l)
		}
		for i := 0; i < wk.l; i++ {
			s, err := stateOf(st.Win[i], wk.cfg.D)
			if err != nil {
				return fmt.Errorf("core: restore window[%d]: %w", i, err)
			}
			if st.Degs[i] < 0 {
				return fmt.Errorf("core: restore: negative degree %d", st.Degs[i])
			}
			wk.win[i] = s
			wk.degs[i] = st.Degs[i]
		}
		// Canonical ring orientation: windowAt(i) = win[(ring+i)%l], so
		// restoring oldest-first with ring = 0 reproduces the same window
		// sequence regardless of where the original ring index stood.
		wk.winLen, wk.ring = wk.l, 0
	}
	return nil
}
