// Package baseline implements the competing methods of the paper's §6.3:
// wedge sampling [32] and 3-path sampling [14] (full-access, independent
// samples) and the adapted Wedge-MHRW (Algorithm 4, restricted access).
// PSRW [36] and SRW-on-G(k) [36] need no separate code: they are the
// framework with d = k-1 and d = k respectively.
package baseline

import (
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// WedgeSampler implements Seshadhri-Pinar-Kolda wedge sampling: nodes are
// sampled with probability proportional to the number of wedges they center,
// C(d_v, 2), then a uniform pair of neighbors forms the wedge. Preprocessing
// is O(|V|); each sample costs O(log |V|) for the cumulative-weight search —
// matching the complexity the paper quotes.
type WedgeSampler struct {
	g   *graph.Graph
	cum []float64 // cumulative wedge weights per node
	// TotalWedges is Σ_v C(d_v, 2) — the count of non-induced wedges.
	TotalWedges float64
}

// NewWedgeSampler preprocesses g.
func NewWedgeSampler(g *graph.Graph) *WedgeSampler {
	n := g.NumNodes()
	cum := make([]float64, n)
	total := 0.0
	for v := 0; v < n; v++ {
		d := float64(g.Degree(int32(v)))
		total += d * (d - 1) / 2
		cum[v] = total
	}
	return &WedgeSampler{g: g, cum: cum, TotalWedges: total}
}

// WedgeResult aggregates a wedge-sampling run.
type WedgeResult struct {
	Samples int
	Closed  int // wedges whose endpoints are adjacent
	// TotalWedges echoes the sampler's denominator.
	TotalWedges float64
}

// TriangleCount estimates C³₂ = closedFraction · W / 3.
func (r WedgeResult) TriangleCount() float64 {
	if r.Samples == 0 {
		return 0
	}
	return float64(r.Closed) / float64(r.Samples) * r.TotalWedges / 3
}

// WedgeCount estimates the induced wedge count C³₁ = openFraction · W.
func (r WedgeResult) WedgeCount() float64 {
	if r.Samples == 0 {
		return 0
	}
	return float64(r.Samples-r.Closed) / float64(r.Samples) * r.TotalWedges
}

// Concentration returns [ĉ³₁, ĉ³₂].
func (r WedgeResult) Concentration() []float64 {
	w, t := r.WedgeCount(), r.TriangleCount()
	if w+t == 0 {
		return []float64{0, 0}
	}
	return []float64{w / (w + t), t / (w + t)}
}

// GlobalClustering estimates 3C₂/(C₁+3C₂) — simply the closed fraction.
func (r WedgeResult) GlobalClustering() float64 {
	if r.Samples == 0 {
		return 0
	}
	return float64(r.Closed) / float64(r.Samples)
}

// Sample draws n independent wedges.
func (s *WedgeSampler) Sample(n int, rng *rand.Rand) WedgeResult {
	res := WedgeResult{Samples: n, TotalWedges: s.TotalWedges}
	for i := 0; i < n; i++ {
		v := s.sampleCenter(rng)
		d := s.g.Degree(v)
		for d < 2 {
			// Zero-weight node hit on a cumulative-sum boundary; resample.
			v = s.sampleCenter(rng)
			d = s.g.Degree(v)
		}
		a := rng.Intn(d)
		b := rng.Intn(d - 1)
		if b >= a {
			b++
		}
		u, w := s.g.Neighbor(v, a), s.g.Neighbor(v, b)
		if s.g.HasEdge(u, w) {
			res.Closed++
		}
	}
	return res
}

func (s *WedgeSampler) sampleCenter(rng *rand.Rand) int32 {
	x := rng.Float64() * s.TotalWedges
	return int32(sort.SearchFloat64s(s.cum, x))
}
