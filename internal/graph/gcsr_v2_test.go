package graph

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// saveV2 writes g as a v2 file under dir and returns the path.
func saveV2(t *testing.T, dir, name string, g *Graph, o SaveOptions) string {
	t.Helper()
	o.Version = 2
	path := filepath.Join(dir, name+GCSRExt)
	if err := SaveOpts(path, g, o); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGCSRV2RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dir := t.TempDir()
	for _, tc := range []struct {
		name string
		g    *Graph
	}{
		{"empty", NewBuilder(0).Build()},
		{"edgeless", NewBuilder(5).Build()},
		{"k4", FromEdgeList(4, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})},
		{"random", randomTestGraph(rng, 300, 2000)},
		{"star", starGraph(200)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := saveV2(t, dir, tc.name, tc.g, SaveOptions{})
			for _, open := range []struct {
				name string
				fn   func() (*Graph, error)
			}{
				{"load", func() (*Graph, error) { return Load(path) }},
				{"mapped", func() (*Graph, error) { return OpenMapped(path) }},
				{"tinycache", func() (*Graph, error) {
					return OpenMappedOpts(path, OpenOptions{BlockCacheBytes: 1})
				}},
			} {
				t.Run(open.name, func(t *testing.T) {
					got, err := open.fn()
					if err != nil {
						t.Fatal(err)
					}
					defer got.Close()
					graphsEqual(t, tc.g, got)
					if err := Validate(got); err != nil {
						t.Fatal(err)
					}
				})
			}
		})
	}
}

// TestGCSRV2SmallBlocks forces multi-block files (tiny BlockBytes) and
// checks every row survives the block tiling, across both a cache large
// enough to hold everything and one that thrashes.
func TestGCSRV2SmallBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomTestGraph(rng, 500, 4000)
	dir := t.TempDir()
	path := saveV2(t, dir, "small", g, SaveOptions{BlockBytes: 128})
	for _, cacheBytes := range []int64{0, 1, 4 << 10} {
		got, err := OpenMappedOpts(path, OpenOptions{BlockCacheBytes: cacheBytes})
		if err != nil {
			t.Fatal(err)
		}
		graphsEqual(t, g, got)
		st, ok := got.BlockCacheStats()
		if !ok {
			t.Fatal("v2 graph reports no block cache")
		}
		if st.Blocks < 10 {
			t.Fatalf("BlockBytes=128 produced only %d blocks", st.Blocks)
		}
		if cacheBytes == 1 && st.Evictions == 0 {
			t.Fatalf("1-byte cache never evicted: %+v", st)
		}
		if cacheBytes == 1 && st.ResidentBlocks > 1 {
			t.Fatalf("1-byte cache holds %d blocks", st.ResidentBlocks)
		}
		got.Close()
	}
}

// TestGCSRV2StatsAndProbes exercises the probe family (HasEdge hubs and
// binary search, CommonNeighbors galloping, RandomEdge arc sampling) over
// the block-compressed backing against a star graph, which concentrates a
// hub row and skewed intersections.
func TestGCSRV2StatsAndProbes(t *testing.T) {
	g := starGraph(300)
	dir := t.TempDir()
	path := saveV2(t, dir, "star", g, SaveOptions{BlockBytes: 64})
	got, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if !got.BlockCompressed() {
		t.Fatal("v2 mapped graph not block-compressed")
	}
	if !got.IsHub(0) {
		t.Fatal("star center lost its hub row")
	}
	for v := int32(1); v < 300; v++ {
		if !got.HasEdge(0, v) || !got.HasEdge(v, 0) {
			t.Fatalf("missing star edge (0,%d)", v)
		}
		if got.HasEdge(v, v%299+1) && v != v%299+1 {
			t.Fatalf("phantom leaf edge (%d,%d)", v, v%299+1)
		}
	}
	if c := got.CommonNeighbors(1, 2); c != 1 {
		t.Fatalf("CommonNeighbors(1,2) = %d, want 1 (the center)", c)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		u, v := got.RandomEdge(rng)
		if u != 0 || v <= 0 || v >= 300 {
			t.Fatalf("RandomEdge returned non-star edge (%d,%d)", u, v)
		}
	}
}

// TestGCSRV2CacheConcurrent hammers one thrashing cache from many
// goroutines; run under -race this doubles as the publication-safety test,
// and the row checks verify evicted buffers are never recycled under
// readers' feet.
func TestGCSRV2CacheConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomTestGraph(rng, 400, 3000)
	dir := t.TempDir()
	path := saveV2(t, dir, "conc", g, SaveOptions{BlockBytes: 128})
	got, err := OpenMappedOpts(path, OpenOptions{BlockCacheBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				v := int32(rng.Intn(g.NumNodes()))
				want, row := g.Neighbors(v), got.Neighbors(v)
				if len(want) != len(row) {
					errs <- fmt.Errorf("node %d: degree %d vs %d", v, len(row), len(want))
					return
				}
				for j := range want {
					if want[j] != row[j] {
						errs <- fmt.Errorf("node %d: neighbor[%d] = %d, want %d", v, j, row[j], want[j])
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	st, _ := got.BlockCacheStats()
	if st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("degenerate cache traffic: %+v", st)
	}
	if st.ResidentBytes < 0 {
		t.Fatalf("negative resident bytes: %+v", st)
	}
}

// TestGCSRV2WarmProbesAllocationFree is the v2 counterpart of
// TestProbesAllocationFree: once every block is resident, row reads and
// probes must not allocate (the property that keeps warm walk steps free).
func TestGCSRV2WarmProbesAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomTestGraph(rng, 600, 6000)
	dir := t.TempDir()
	path := saveV2(t, dir, "warm", g, SaveOptions{BlockBytes: 1 << 10})
	got, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	for v := int32(0); v < int32(got.NumNodes()); v++ {
		got.Neighbors(v) // warm every block
	}
	var sink int
	if n := testing.AllocsPerRun(200, func() {
		row := got.Neighbors(17)
		sink += len(row)
		if got.HasEdge(17, 29) {
			sink++
		}
		sink += got.CommonNeighbors(17, 29)
	}); n != 0 {
		t.Fatalf("warm v2 probes allocate %.1f times per run", n)
	}
	_ = sink
}

// mutateV2 writes a valid v2 image, applies mutate, and returns the bytes.
func v2Image(t *testing.T, g *Graph, o SaveOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinaryV2(&buf, g, o); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGCSRV2Corruption(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomTestGraph(rng, 200, 1500)
	base := v2Image(t, g, SaveOptions{BlockBytes: 256})
	// Offsets into the fixed header.
	const (
		verOff   = 4
		nOff     = 8
		mOff     = 16
		degOff   = 24
		blksOff  = 32
		flagsOff = 40
		crcOff   = 44
	)
	fixMetaCRC := func(img []byte) {
		h, err := parseV2Header(img)
		if err != nil {
			return
		}
		end := h.blocksStart()
		if end > int64(len(img)) {
			end = int64(len(img))
		}
		binary.LittleEndian.PutUint32(img[crcOff:], crc32.Checksum(img[gcsrV2HeaderSize:end], castagnoli))
	}
	cases := []struct {
		name    string
		mutate  func(img []byte) []byte
		wantSub string
	}{
		{"bad magic", func(img []byte) []byte { img[0] = 'X'; return img }, "bad magic"},
		{"version 3", func(img []byte) []byte {
			binary.LittleEndian.PutUint32(img[verOff:], 3)
			return img
		}, "unsupported format version"},
		{"unknown flags", func(img []byte) []byte {
			binary.LittleEndian.PutUint32(img[flagsOff:], 0x80)
			return img
		}, "unknown flag bits"},
		{"meta checksum", func(img []byte) []byte {
			img[gcsrV2HeaderSize] ^= 0xff // first index byte
			return img
		}, "metadata checksum"},
		{"lying node count", func(img []byte) []byte {
			binary.LittleEndian.PutUint64(img[nOff:], uint64(g.NumNodes()+1))
			return img
		}, "blocks cover"},
		{"lying edge count", func(img []byte) []byte {
			binary.LittleEndian.PutUint64(img[mOff:], uint64(g.NumEdges()-1))
			return img
		}, "header promises"},
		{"lying max degree", func(img []byte) []byte {
			binary.LittleEndian.PutUint64(img[degOff:], uint64(g.MaxDegree()+1))
			return img
		}, "max degree"},
		{"zero blocks", func(img []byte) []byte {
			binary.LittleEndian.PutUint64(img[blksOff:], 0)
			return img
		}, "no blocks"},
		{"truncated", func(img []byte) []byte { return img[:len(img)-3] }, "does not tile the block region"},
		{"trailing bytes", func(img []byte) []byte { return append(img, 0xAA) }, "trailing bytes"},
		{"block bit flip", func(img []byte) []byte {
			img[len(img)-1] ^= 0x01 // inside the last block's payload
			return img
		}, "checksum"},
		{"row count lies", func(img []byte) []byte {
			// A consistent-looking single-block image whose one block
			// claims 1000 rows in 10 encoded bytes: the tiling checks all
			// pass, so only the rows-per-byte plausibility guard can stop
			// the outsized row allocation.
			img = make([]byte, gcsrV2HeaderSize+gcsrV2IndexEntry+10)
			copy(img[0:4], gcsrMagic)
			binary.LittleEndian.PutUint32(img[verOff:], 2)
			binary.LittleEndian.PutUint64(img[nOff:], 1000)
			binary.LittleEndian.PutUint64(img[mOff:], 0)
			binary.LittleEndian.PutUint64(img[degOff:], 0)
			binary.LittleEndian.PutUint64(img[blksOff:], 1)
			idx := img[gcsrV2HeaderSize:]
			binary.LittleEndian.PutUint32(idx[4:8], 1000) // count
			binary.LittleEndian.PutUint64(idx[16:24], uint64(gcsrV2HeaderSize+gcsrV2IndexEntry))
			binary.LittleEndian.PutUint32(idx[24:28], 10) // encLen
			fixMetaCRC(img)
			return img
		}, "encoded bytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			img := tc.mutate(append([]byte(nil), base...))
			if _, err := ReadBinary(bytes.NewReader(img)); err == nil {
				t.Fatal("portable read accepted a corrupt v2 image")
			} else if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("portable read error %q does not mention %q", err, tc.wantSub)
			}
			// The mmap path must reject the same image.
			path := filepath.Join(t.TempDir(), "corrupt.gcsr")
			if err := os.WriteFile(path, img, 0o644); err != nil {
				t.Fatal(err)
			}
			if got, err := OpenMapped(path); err == nil {
				got.Close()
				t.Fatal("mapped open accepted a corrupt v2 image")
			} else if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("mapped open error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestGCSRV2KeepIDsEmbedded(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := randomTestGraph(rng, 100, 400)
	ids := make([]int64, g.NumNodes())
	for i := range ids {
		ids[i] = int64(i)*1000 + 7
	}
	dir := t.TempDir()
	path := saveV2(t, dir, "ids", g, SaveOptions{IDs: ids, BlockBytes: 512})
	for _, open := range []struct {
		name string
		fn   func() (*Graph, error)
	}{
		{"load", func() (*Graph, error) { return Load(path) }},
		{"mapped", func() (*Graph, error) { return OpenMapped(path) }},
	} {
		t.Run(open.name, func(t *testing.T) {
			got, err := open.fn()
			if err != nil {
				t.Fatal(err)
			}
			defer got.Close()
			if !got.HasOriginalIDs() {
				t.Fatal("embedded IDs not surfaced")
			}
			for v := range ids {
				if got.OriginalID(int32(v)) != ids[v] {
					t.Fatalf("OriginalID(%d) = %d, want %d", v, got.OriginalID(int32(v)), ids[v])
				}
			}
		})
	}
	// Wrong-length IDs must be rejected at save time.
	if err := SaveOpts(filepath.Join(dir, "bad.gcsr"), g, SaveOptions{Version: 2, IDs: ids[:3]}); err == nil {
		t.Fatal("SaveOpts accepted a short ID mapping")
	}
	// Version 1 cannot embed IDs.
	if err := SaveOpts(filepath.Join(dir, "v1ids.gcsr"), g, SaveOptions{Version: 1, IDs: ids}); err == nil {
		t.Fatal("SaveOpts accepted embedded IDs for version 1")
	}
}

func TestGIDSSidecar(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	g := randomTestGraph(rng, 80, 300)
	ids := make([]int64, g.NumNodes())
	for i := range ids {
		ids[i] = int64(i) + 1_000_000
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "g.gcsr")
	if err := Save(path, g); err != nil {
		t.Fatal(err)
	}
	side := IDsSidecarPath(path)
	if err := SaveIDs(side, ids); err != nil {
		t.Fatal(err)
	}
	got, err := LoadIDs(side)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("LoadIDs[%d] = %d, want %d", i, got[i], ids[i])
		}
	}
	// OpenFile attaches the sidecar automatically.
	og, err := OpenFile(path, FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	if !og.HasOriginalIDs() || og.OriginalID(5) != ids[5] {
		t.Fatalf("OpenFile did not attach the sidecar (has=%v)", og.HasOriginalIDs())
	}
	og.Close()
	// A corrupt sidecar fails the open rather than serving wrong IDs.
	raw, err := os.ReadFile(side)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(side, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if og, err := OpenFile(path, FormatAuto); err == nil {
		og.Close()
		t.Fatal("OpenFile accepted a corrupt sidecar")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("sidecar error %q does not mention checksum", err)
	}
	// A sidecar for a different graph (wrong n) is rejected too.
	if err := SaveIDs(side, ids[:10]); err != nil {
		t.Fatal(err)
	}
	if og, err := OpenFile(path, FormatAuto); err == nil {
		og.Close()
		t.Fatal("OpenFile accepted a mismatched sidecar")
	}
}

func TestReadEdgeListKeepIDs(t *testing.T) {
	in := "1000 2000\n2000 3000\n1000 3000\n# comment\n3000 4000\n"
	g, ids, err := ReadEdgeListKeepIDs(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got %v", g)
	}
	want := []int64{1000, 2000, 3000, 4000}
	for i, w := range want {
		if ids[i] != w {
			t.Fatalf("ids[%d] = %d, want %d", i, ids[i], w)
		}
	}
	// The plain reader still returns no mapping.
	if _, err := ReadEdgeList(strings.NewReader(in)); err != nil {
		t.Fatal(err)
	}
}

// TestGCSRV2VersionDispatch checks v1 files keep opening (zero-copy) and v2
// files are auto-detected by the same entry points.
func TestGCSRV2VersionDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := randomTestGraph(rng, 150, 900)
	dir := t.TempDir()
	v1 := filepath.Join(dir, "g1.gcsr")
	if err := Save(v1, g); err != nil {
		t.Fatal(err)
	}
	v2 := saveV2(t, dir, "g2", g, SaveOptions{})
	for _, path := range []string{v1, v2} {
		if f := DetectFormat(path); f != FormatGCSR {
			t.Fatalf("DetectFormat(%s) = %v", path, f)
		}
		got, err := OpenFile(path, FormatAuto)
		if err != nil {
			t.Fatal(err)
		}
		graphsEqual(t, g, got)
		got.Close()
	}
	g1, err := OpenMapped(v1)
	if err != nil {
		t.Fatal(err)
	}
	defer g1.Close()
	if g1.BlockCompressed() {
		t.Fatal("v1 open took the block-compressed path")
	}
	if _, ok := g1.BlockCacheStats(); ok {
		t.Fatal("v1 graph reports block-cache stats")
	}
}

// FuzzGCSRV2Read feeds arbitrary images to the v2 portable reader: it must
// never panic, and anything it accepts must pass full structural validation
// (the same accept-implies-valid property the GEST/GDPA codec fuzzers pin).
func FuzzGCSRV2Read(f *testing.F) {
	rng := rand.New(rand.NewSource(51))
	g := randomTestGraph(rng, 60, 250)
	var buf bytes.Buffer
	if err := WriteBinaryV2(&buf, g, SaveOptions{BlockBytes: 128}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	ids := make([]int64, g.NumNodes())
	for i := range ids {
		ids[i] = int64(i) * 3
	}
	buf.Reset()
	if err := WriteBinaryV2(&buf, g, SaveOptions{BlockBytes: 64, IDs: ids}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	var empty bytes.Buffer
	if err := WriteBinaryV2(&empty, NewBuilder(0).Build(), SaveOptions{}); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := readBinaryV2(data)
		if err != nil {
			return
		}
		if err := Validate(g); err != nil {
			t.Fatalf("accepted image fails validation: %v", err)
		}
	})
}

// FuzzGCSRV2Block fuzzes the block decoder directly with adversarial index
// metadata: whatever the mutated count/arc claims, it must stay in bounds
// and reject inconsistencies instead of panicking.
func FuzzGCSRV2Block(f *testing.F) {
	row := appendEncodedRow(nil, []int32{1, 2, 9})
	row = appendEncodedRow(row, []int32{0, 2})
	f.Add(row, int32(0), int32(2), int32(5), int64(10))
	f.Add([]byte{}, int32(0), int32(1), int32(0), int64(1))
	f.Fuzz(func(t *testing.T, data []byte, first, count, arcs int32, n int64) {
		if count < 0 || count > int32(len(data)) || arcs < 0 || arcs > int32(len(data)) {
			return // parseV2 bounds these before any decode
		}
		if n < 0 || n > 1<<31-1 {
			return
		}
		bm := blockMeta{
			first:  first,
			count:  count,
			arcs:   arcs,
			crc:    crc32.Checksum(data, castagnoli),
			encLen: int32(len(data)),
		}
		off, adj, err := decodeV2Block(data, bm, n)
		if err != nil {
			return
		}
		if int32(len(adj)) != arcs || off[count] != arcs {
			t.Fatalf("accepted block decodes %d arcs, index says %d", len(adj), arcs)
		}
		for i := int32(0); i < count; i++ {
			row := adj[off[i]:off[i+1]]
			for j, u := range row {
				if int64(u) >= n || u < 0 || int64(u) == int64(first)+int64(i) {
					t.Fatalf("row %d: invalid neighbor %d", i, u)
				}
				if j > 0 && row[j-1] >= u {
					t.Fatalf("row %d: not strictly ascending", i)
				}
			}
		}
	})
}
