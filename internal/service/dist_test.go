package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
)

// startWorkerNodes brings up n graphletd-style worker nodes sharing the
// registry and returns their base URLs.
func startWorkerNodes(t *testing.T, reg *Registry, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		wmgr := newTestManager(t, reg, Options{})
		t.Cleanup(wmgr.Close)
		srv := NewServer(reg, wmgr)
		srv.Partitions = &dist.Handler{Lookup: wmgr.PartitionLookup()}
		hs := httptest.NewServer(srv)
		t.Cleanup(hs.Close)
		urls[i] = hs.URL
	}
	return urls
}

// runToResult submits a spec and waits for the terminal view.
func runToResult(t *testing.T, mgr *Manager, spec Spec) JobView {
	t.Helper()
	view, err := mgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	view, err = mgr.Wait(t.Context(), view.ID)
	if err != nil {
		t.Fatal(err)
	}
	return view
}

// TestDistributedJobByteIdentical runs the same spec locally and fanned over
// two worker nodes and asserts identical result bytes — and that, because
// Nodes is excluded from the cache key, the distributed run warms the cache
// for a later local ask of the same spec.
func TestDistributedJobByteIdentical(t *testing.T) {
	reg := testRegistry(t)
	spec := Spec{Graph: "hk", K: 4, D: 2, CSS: true, Steps: 2000, Walkers: 4, Seed: 99}

	localMgr := newTestManager(t, reg, Options{SnapshotEvery: 500})
	defer localMgr.Close()
	want := runToResult(t, localMgr, spec)
	if want.State != StateDone {
		t.Fatalf("local run: %s (%s)", want.State, want.Error)
	}

	peers := startWorkerNodes(t, reg, 2)
	mgr := newTestManager(t, reg, Options{
		SnapshotEvery: 500,
		Peers:         peers,
		DistBackoff:   time.Millisecond,
	})
	defer mgr.Close()

	distSpec := spec
	distSpec.Nodes = 3
	got := runToResult(t, mgr, distSpec)
	if got.State != StateDone {
		t.Fatalf("distributed run: %s (%s)", got.State, got.Error)
	}
	if !reflect.DeepEqual(got.Result, want.Result) {
		t.Errorf("distributed result differs from local run:\n got %+v\nwant %+v", got.Result, want.Result)
	}
	if got.Progress.ResumedSteps != 0 {
		t.Errorf("uninterrupted distributed run reports resumed_steps %d", got.Progress.ResumedSteps)
	}

	// Cache-key symmetry: a local re-ask of the distributed run's spec is a
	// warm hit, because the result bytes cannot depend on Nodes.
	again := runToResult(t, mgr, spec)
	if !again.Cached {
		t.Error("local re-ask of a distributed run's spec missed the cache")
	}
	if !reflect.DeepEqual(again.Result, want.Result) {
		t.Error("cached result differs from local run")
	}
}

// TestDistributedMultiJob runs a shared-walk multi-size job across the fleet
// and asserts per-size results identical to a local run, including the
// cache fan-out for later single-size asks.
func TestDistributedMultiJob(t *testing.T) {
	reg := testRegistry(t)
	spec := Spec{Graph: "hk", Sizes: []int{3, 4}, D: 2, CSS: true, Steps: 2000, Walkers: 4, Seed: 7}

	localMgr := newTestManager(t, reg, Options{SnapshotEvery: 500})
	defer localMgr.Close()
	want := runToResult(t, localMgr, spec)
	if want.State != StateDone {
		t.Fatalf("local run: %s (%s)", want.State, want.Error)
	}

	peers := startWorkerNodes(t, reg, 2)
	mgr := newTestManager(t, reg, Options{
		SnapshotEvery: 500,
		Peers:         peers,
		DistBackoff:   time.Millisecond,
	})
	defer mgr.Close()
	distSpec := spec
	distSpec.Nodes = 2
	got := runToResult(t, mgr, distSpec)
	if got.State != StateDone {
		t.Fatalf("distributed run: %s (%s)", got.State, got.Error)
	}
	if !reflect.DeepEqual(got.Results, want.Results) {
		t.Errorf("distributed multi results differ from local run:\n got %+v\nwant %+v", got.Results, want.Results)
	}

	// Fan-out fill: a single-size ask covered by the multi run is warm.
	single := Spec{Graph: "hk", K: 3, D: 2, CSS: true, Steps: 2000, Walkers: 4, Seed: 7}
	if view := runToResult(t, mgr, single); !view.Cached {
		t.Error("single-size ask after distributed multi run missed the cache")
	}
}

// killOnceWorker proxies the worker endpoint but aborts its first partition
// stream after two snapshot frames — a node dying mid-partition.
type killOnceWorker struct {
	mgr    *Manager
	killed bool
}

func (k *killOnceWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.killed {
		(&dist.Handler{Lookup: k.mgr.PartitionLookup()}).ServeHTTP(w, r)
		return
	}
	k.killed = true
	body, _ := io.ReadAll(r.Body)
	asn, err := dist.DecodeAssignment(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	client, _, _ := k.mgr.PartitionLookup()(asn.Graph)
	w.WriteHeader(http.StatusOK)
	frames := 0
	_ = dist.RunPartition(r.Context(), client, asn, func(f *dist.Frame) error {
		if frames >= 2 {
			panic(http.ErrAbortHandler)
		}
		frames++
		if err := dist.WriteFrame(w, f); err != nil {
			return err
		}
		w.(http.Flusher).Flush()
		return nil
	})
}

// TestDistributedJobFailover kills a worker mid-partition and asserts the
// job completes byte-identical to a local run with exact resumed-step
// accounting: the retried partition preserves precisely its quota share of
// the last streamed snapshot (target 1000 after two frames at spacing 500).
func TestDistributedJobFailover(t *testing.T) {
	reg := testRegistry(t)
	spec := Spec{Graph: "hk", K: 4, D: 2, CSS: true, Steps: 3000, Walkers: 4, Seed: 12}

	localMgr := newTestManager(t, reg, Options{SnapshotEvery: 500})
	defer localMgr.Close()
	want := runToResult(t, localMgr, spec)

	wmgr := newTestManager(t, reg, Options{})
	defer wmgr.Close()
	killSrv := httptest.NewServer(&killOnceWorker{mgr: wmgr})
	t.Cleanup(killSrv.Close)
	healthy := startWorkerNodes(t, reg, 1)

	mgr := newTestManager(t, reg, Options{
		SnapshotEvery: 500,
		Peers:         []string{killSrv.URL, healthy[0]},
		DistBackoff:   time.Millisecond,
	})
	defer mgr.Close()
	distSpec := spec
	distSpec.Nodes = 2
	got := runToResult(t, mgr, distSpec)
	if got.State != StateDone {
		t.Fatalf("failover run: %s (%s)", got.State, got.Error)
	}
	if !reflect.DeepEqual(got.Result, want.Result) {
		t.Errorf("failover result differs from local run:\n got %+v\nwant %+v", got.Result, want.Result)
	}
	// Partition 0 ([0,2) of 4 walkers) resumed from the target-1000
	// snapshot; its preserved share is exactly PartitionWindows(1000,4,0,2).
	wantResumed := core.PartitionWindows(1000, 4, 0, 2)
	if got.Progress.ResumedSteps != wantResumed {
		t.Errorf("resumed_steps %d, want %d", got.Progress.ResumedSteps, wantResumed)
	}
}

// abortClient freezes the walk once stall flips (the job looks SIGKILLed:
// no more frames reach the coordinator, no terminal record is journaled),
// then aborts it when the gate closes at cleanup: the panic hits the
// engine's per-walker guard and becomes an error frame, so stranded
// partition handlers drain instantly instead of walking out the budget.
type abortClient struct {
	access.Client
	stall *atomic.Bool
	gate  <-chan struct{}
}

func (c abortClient) Degree(v int32) int {
	if c.stall.Load() {
		<-c.gate
		panic("dist test: walk aborted at cleanup")
	}
	return c.Client.Degree(v)
}

// TestDistributedCoordinatorRecovery crashes the coordinator between fleet
// syncs (SIGKILL-style: the fleet freezes, the manager is abandoned without
// a Close) and restarts it with no peers at all: the journaled combined
// snapshot must resume through the ordinary local path and finish
// byte-identical.
func TestDistributedCoordinatorRecovery(t *testing.T) {
	reg := testRegistry(t)
	spec := Spec{Graph: "hk", K: 4, D: 2, CSS: true, Steps: 60000, Walkers: 4, Seed: 31, Nodes: 2}
	dir := t.TempDir()

	localMgr := newTestManager(t, reg, Options{SnapshotEvery: 2000})
	defer localMgr.Close()
	base := spec
	base.Nodes = 0
	want := runToResult(t, localMgr, base)

	// Worker nodes whose crawl clients freeze when stall flips; the gate is
	// closed at cleanup so their stranded partition handlers abort and drain
	// (cleanups run LIFO, so this happens before the servers shut down).
	var stall atomic.Bool
	gate := make(chan struct{})
	peers := make([]string, 2)
	for i := range peers {
		wmgr := newTestManager(t, reg, Options{
			NewClient: func(g *graph.Graph) access.Client {
				return abortClient{Client: access.NewGraphClient(g), stall: &stall, gate: gate}
			},
		})
		t.Cleanup(wmgr.Close)
		srv := NewServer(reg, wmgr)
		srv.Partitions = &dist.Handler{Lookup: wmgr.PartitionLookup()}
		hs := httptest.NewServer(srv)
		t.Cleanup(hs.Close)
		peers[i] = hs.URL
	}
	t.Cleanup(func() { close(gate) })

	mgr := newTestManager(t, reg, Options{
		SnapshotEvery: 2000,
		Peers:         peers,
		DistBackoff:   time.Millisecond,
		DataDir:       dir,
	})
	view, err := mgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Progress past a couple of fleet-wide syncs, then freeze the fleet and
	// abandon the coordinator (no Close → no terminal record).
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never reached a fleet sync")
		}
		jv, ok := mgr.Get(view.ID)
		if !ok {
			t.Fatal("job vanished")
		}
		if jv.State.terminal() {
			t.Fatalf("job finished before the crash: %+v", jv)
		}
		if jv.Progress.Steps >= 4000 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	stall.Store(true)
	mgr.syncJournal()

	// Restart with no fleet: the combined snapshot is a plain full-ensemble
	// state, so the job resumes locally through the existing machinery.
	mgr2 := newTestManager(t, reg, Options{SnapshotEvery: 2000, DataDir: dir})
	defer mgr2.Close()
	got, err := mgr2.Wait(t.Context(), view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone {
		t.Fatalf("recovered job: %s (%s)", got.State, got.Error)
	}
	if !reflect.DeepEqual(got.Result, want.Result) {
		t.Errorf("recovered result differs from local run:\n got %+v\nwant %+v", got.Result, want.Result)
	}
	if got.Progress.ResumedSteps < 4000 {
		t.Errorf("recovered job resumed %d steps, want >= 4000", got.Progress.ResumedSteps)
	}
}

// TestPartitionsRouteDisabled pins the 404 for nodes not started as workers.
func TestPartitionsRouteDisabled(t *testing.T) {
	reg := testRegistry(t)
	mgr := newTestManager(t, reg, Options{})
	defer mgr.Close()
	srv := httptest.NewServer(NewServer(reg, mgr))
	t.Cleanup(srv.Close)
	resp, err := http.Post(srv.URL+"/v1/partitions", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}
