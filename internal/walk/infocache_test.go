package walk

import (
	"math/rand"
	"testing"

	"repro/internal/access"
	"repro/internal/gen"
)

func testState(i int32) State {
	return StateOf(i, i+1_000_000, i+2_000_000)
}

func testInfo(i int32) stateInfo {
	return stateInfo{deg: i}
}

// Clock fundamentals: capacity is respected, and entries that keep getting
// hit survive an arbitrary amount of cold traffic (the property the old
// clear-on-overflow policy lacked).
func TestInfoCacheClockEviction(t *testing.T) {
	c := newInfoCache()
	for i := int32(0); i < infoCacheCap; i++ {
		c.put(testState(i), testInfo(i))
	}
	if c.len() != infoCacheCap {
		t.Fatalf("len = %d, want %d", c.len(), infoCacheCap)
	}
	const hot = 32
	// Stream 10 full capacities of cold states past the cache, re-touching
	// the hot set between every insertion (and, like the kernel, re-putting
	// on a miss). Second chance allows a bounded number of early hot
	// evictions — the first overflow mass-clears every ref bit — but once
	// the hand has lapped, constantly-touched entries are always spared.
	// Clear-on-overflow missed the whole hot set on every overflow (~320
	// misses in this trace).
	hotMisses := 0
	for i := int32(infoCacheCap); i < 11*infoCacheCap; i++ {
		for h := int32(0); h < hot; h++ {
			if _, ok := c.get(testState(h)); !ok {
				hotMisses++
				c.put(testState(h), testInfo(h))
			}
		}
		if _, ok := c.get(testState(i)); ok {
			t.Fatalf("cold state %d already present", i)
		}
		c.put(testState(i), testInfo(i))
	}
	if hotMisses > 2*hot {
		t.Errorf("hot set missed %d times across churn, want <= %d (hot states did not survive overflow)",
			hotMisses, 2*hot)
	}
	if c.len() != infoCacheCap {
		t.Fatalf("len after churn = %d, want %d", c.len(), infoCacheCap)
	}
	// Un-touched entries must actually have been evicted.
	evicted := 0
	for i := int32(hot); i < infoCacheCap; i++ {
		if _, ok := c.get(testState(i)); !ok {
			evicted++
		}
	}
	if evicted == 0 {
		t.Error("no cold entry was ever evicted")
	}
	hits, misses := c.stats()
	if hits == 0 || misses == 0 {
		t.Errorf("stats = %d hits / %d misses, want both nonzero", hits, misses)
	}
}

// A cached value round-trips, and re-putting after eviction re-caches it.
func TestInfoCacheRoundTrip(t *testing.T) {
	c := newInfoCache()
	c.put(testState(7), testInfo(7))
	fi, ok := c.get(testState(7))
	if !ok || fi.deg != 7 {
		t.Fatalf("get = %+v, %v", fi, ok)
	}
	if _, ok := c.get(testState(8)); ok {
		t.Fatal("phantom entry")
	}
}

// The steady-state churn path — lookups plus evicting inserts at capacity —
// allocates nothing, preserving the walk kernel's zero-alloc warm step even
// when more than infoCacheCap states are live.
func TestInfoCacheChurnZeroAllocs(t *testing.T) {
	c := newInfoCache()
	for i := int32(0); i < infoCacheCap; i++ {
		c.put(testState(i), testInfo(i))
	}
	next := int32(infoCacheCap)
	allocs := testing.AllocsPerRun(20000, func() {
		for h := int32(0); h < 8; h++ {
			c.get(testState(h))
		}
		if _, ok := c.get(testState(next)); !ok {
			c.put(testState(next), testInfo(next))
		}
		next++
	})
	if allocs != 0 {
		t.Errorf("churn allocates %.2f objects per op, want 0", allocs)
	}
}

// skewedTrace builds the access pattern of a walk with >infoCacheCap live
// states: a small hot set (the sliding window and its surroundings, touched
// constantly) interleaved with a long cold tail of drive-by states.
func skewedTrace(sp *spaceD, nLive int) (hot, cold []State) {
	rng := rand.New(rand.NewSource(99))
	seen := map[State]bool{}
	var states []State
	for len(states) < nLive {
		st := sp.RandomState(rng)
		if !seen[st] {
			seen[st] = true
			states = append(states, st)
		}
	}
	return states[:32], states[32:]
}

// With more live states than the cache holds, the hot set must still hit:
// this is the regression test for clear-on-overflow, under which every
// overflow wiped the hot set and its hit rate cratered.
func TestHotStatesSurviveOverflow(t *testing.T) {
	g := gen.BarabasiAlbert(3000, 5, 42)
	client := access.NewGraphClient(g)
	sp := NewSpace(client, 3).(*spaceD)
	hot, cold := skewedTrace(sp, 32+2*infoCacheCap) // 544 live states, cap 256

	// Warm every state once, hot set last.
	for _, st := range cold {
		sp.StateDegree(st)
	}
	for _, st := range hot {
		sp.StateDegree(st)
	}

	// Walk-like skew: each round touches the whole hot set, then a few cold
	// states. The cold tail alone overflows the cache several times per
	// sweep.
	startHits, _ := sp.info.stats()
	hotLookups := 0
	ci := 0
	for round := 0; round < 40; round++ {
		for _, st := range hot {
			sp.StateDegree(st)
			hotLookups++
		}
		for j := 0; j < 16; j++ {
			sp.StateDegree(cold[ci%len(cold)])
			ci++
		}
	}
	hits, _ := sp.info.stats()
	// Hot lookups alone must account for nearly all hits; cold lookups churn.
	hotRate := float64(hits-startHits) / float64(hotLookups)
	if hotRate < 0.95 {
		t.Errorf("hot-set hit coverage %.3f, want >= 0.95 (hot states did not survive overflow)", hotRate)
	}
}

// BenchmarkStateDegreeSkewedOverflow measures the warm-step path under a
// skewed access pattern with ~2x more live states than the cache holds. The
// reported hit/op is the cache hit rate of the mixed trace: with clock
// eviction the hot set stays resident (rate ≈ hot fraction of accesses);
// under the old clear-on-overflow it collapsed toward zero. Allocations per
// op must stay 0 (run with -benchmem).
func BenchmarkStateDegreeSkewedOverflow(b *testing.B) {
	g := gen.BarabasiAlbert(3000, 5, 42)
	client := access.NewGraphClient(g)
	sp := NewSpace(client, 3).(*spaceD)
	hot, cold := skewedTrace(sp, 32+2*infoCacheCap)

	// One trace element is one StateDegree call; 2 hot per 1 cold.
	trace := make([]State, 0, 3*len(cold))
	ci := 0
	for len(trace) < cap(trace) {
		trace = append(trace, hot[ci%len(hot)], hot[(ci+7)%len(hot)], cold[ci%len(cold)])
		ci++
	}
	for _, st := range trace {
		sp.StateDegree(st) // warm
	}
	h0, m0 := sp.info.stats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.StateDegree(trace[i%len(trace)])
	}
	b.StopTimer()
	h1, m1 := sp.info.stats()
	if total := float64((h1 - h0) + (m1 - m0)); total > 0 {
		b.ReportMetric(float64(h1-h0)/total, "hit/op")
	}
}
