package service

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/service/journal"
)

// This file is the Manager's durability layer: every job-lifecycle
// transition is appended to an append-only journal (internal/service/journal)
// as it happens — asynchronously, through the ordered append queue of
// asyncjournal.go — and on startup the journal is replayed to rebuild the
// job table, warm the result cache with every completed run, and re-queue
// the jobs that were queued or running when the previous process died. The
// journal is the single source of truth; the in-memory job table is a
// replayable view of it (the LogBase pattern).
//
// Checkpoint records carry the engine's serialized ensemble snapshot
// (core.EnsembleState), so an interrupted job does not restart from step 0:
// replay re-queues it with the latest snapshot and the worker restores the
// walkers mid-budget, preserving every step up to the last checkpoint.
//
// Record payloads are JSON. encoding/json round-trips float64 exactly
// (shortest-representation encoding), so a result warmed from the journal
// is byte-identical to the run that produced it — the same property that
// makes the in-memory result cache sound. The ensemble snapshot inside a
// checkpoint record is an opaque versioned binary blob (base64 in the JSON),
// validated again by core.DecodeEnsembleState before any resume.

// recSubmitted is the payload of a TypeSubmitted record.
type recSubmitted struct {
	Spec Spec `json:"spec"`
	// Cached marks a submission answered from the result cache without a
	// run; its terminal record carries no result payload (the cache entry of
	// the originating run, replayed earlier in the log, already holds it).
	Cached bool `json:"cached,omitempty"`
	// GraphMeta fingerprints the topology the spec was admitted against.
	// Within one process a registered name is never re-bound, but across a
	// restart the operator may point the same -graph name at a different
	// file; recovery compares this fingerprint against the freshly
	// registered graph and refuses to warm the cache (or re-run the job)
	// from results that belong to different topology.
	GraphMeta *GraphInfo `json:"graph_meta,omitempty"`
	// RequestID is the trace ID of the HTTP request that admitted the job, so
	// a recovered job still answers "which request asked for this" after a
	// restart.
	RequestID string `json:"request_id,omitempty"`
}

// recStarted is the payload of a TypeStarted record. PR-4 records had no
// payload; replay treats an empty body as a fresh (non-resuming) start.
type recStarted struct {
	// ResumedSteps is the checkpointed step count the dispatch intends to
	// resume from (0 = fresh start). Informational: the authoritative resume
	// point of a later crash is still the latest checkpoint record.
	ResumedSteps int `json:"resumed_steps,omitempty"`
}

// recCheckpoint is the payload of a TypeCheckpoint record.
type recCheckpoint struct {
	// V is the payload version: 0 (PR-4 records, progress only) or
	// checkpointV2 (adds the ensemble snapshot). Old records replay fine —
	// they simply carry no resumable state.
	V             int       `json:"v,omitempty"`
	Steps         int       `json:"steps"`
	Concentration []float64 `json:"concentration,omitempty"`
	// Concentrations is the multi-size counterpart of Concentration: one
	// vector per requested size, keyed by k.
	Concentrations map[int][]float64 `json:"concentrations,omitempty"`
	// Snapshot is core.EnsembleState.Encode() at this checkpoint barrier —
	// or core.MultiEnsembleState.Encode() for a multi-size job (the codecs
	// carry distinct magics, and the resume path decodes with the codec the
	// job's spec calls for).
	Snapshot []byte `json:"snapshot,omitempty"`
}

// checkpointV2 marks checkpoint payloads that carry a resume snapshot.
const checkpointV2 = 2

// recDone is the payload of a TypeDone record. Exactly one of the two
// fields is set: Result for single-size jobs, Results (keyed by size) for
// multi-size jobs.
type recDone struct {
	Result  *core.Result         `json:"result,omitempty"`
	Results map[int]*core.Result `json:"results,omitempty"`
}

// recFailed is the payload of TypeFailed and TypeCanceled records.
type recFailed struct {
	Error string `json:"error,omitempty"`
}

// journalAppendLocked hands one record to the ordered append queue, best
// effort: a failed write is reported by counter rather than failing the job
// — the daemon keeps serving from memory if the disk fills. Caller holds
// m.mu, which is what fixes the on-disk record order to the in-memory
// transition order; the write itself (and any fsync) happens on the writer
// goroutine, off the lock. No-op while replaying (replay must not
// re-journal what it reads) or when the manager runs without a data dir.
func (m *Manager) journalAppendLocked(typ journal.Type, jobID string, payload any) {
	if m.jnl == nil || m.replaying {
		return
	}
	var body []byte
	if payload != nil {
		var err error
		if body, err = json.Marshal(payload); err != nil {
			// Marshal failures never reach the journal, so the journal cannot
			// count them itself.
			m.met.journal.Errors.Inc()
			return
		}
	}
	// Stamp the time at enqueue: the record's logical time is the state
	// transition, not the (later) asynchronous write.
	m.jq.push(jnlOp{rec: journal.Record{
		Type: typ, Job: jobID, Time: time.Now().UnixNano(), Payload: body,
	}})
}

// journalTerminalLocked records a job reaching its final state. Caller
// holds m.mu.
func (m *Manager) journalTerminalLocked(j *job) {
	switch j.state {
	case StateDone:
		p := recDone{}
		if !j.cached { // cache hits replay their result via the original run
			p.Result = j.result
			if j.multiResult != nil {
				p.Results = j.multiResult.Results
			}
		}
		m.journalAppendLocked(journal.TypeDone, j.id, p)
	case StateFailed:
		m.journalAppendLocked(journal.TypeFailed, j.id, recFailed{Error: j.errMsg})
	case StateCanceled:
		m.journalAppendLocked(journal.TypeCanceled, j.id, recFailed{Error: j.errMsg})
	}
}

// recover rebuilds the manager's state from the journal: the job table in
// submission order, the warm result cache, and the re-queued remainder.
// Called from NewManager before the workers start, so no locking is needed;
// m.replaying suppresses re-journaling.
func (m *Manager) recover() error {
	m.replaying = true
	defer func() { m.replaying = false }()

	metas := make(map[string]*GraphInfo) // job ID -> admitted-against fingerprint
	err := m.jnl.Replay(func(rec journal.Record) error {
		j := m.jobs[rec.Job]
		if rec.Type != journal.TypeSubmitted && j == nil {
			// The job's submitted record was compacted away or its segment
			// lost; without a spec the record cannot be applied. Skip rather
			// than fail the whole recovery.
			return nil
		}
		switch rec.Type {
		case journal.TypeSubmitted:
			var p recSubmitted
			if err := json.Unmarshal(rec.Payload, &p); err != nil {
				return fmt.Errorf("service: replay %s %s: %w", rec.Type, rec.Job, err)
			}
			if j == nil {
				j = &job{id: rec.Job, done: make(chan struct{})}
				m.jobs[rec.Job] = j
				m.order = append(m.order, rec.Job)
			}
			j.spec = p.Spec
			j.state = StateQueued
			j.cached = p.Cached
			j.coalesced = 1
			j.created = time.Unix(0, rec.Time)
			j.progress = Progress{Total: p.Spec.Steps}
			j.traceID = p.RequestID
			metas[j.id] = p.GraphMeta
		case journal.TypeStarted:
			j.state = StateRunning
			j.started = time.Unix(0, rec.Time)
		case journal.TypeCheckpoint:
			var p recCheckpoint
			if err := json.Unmarshal(rec.Payload, &p); err != nil {
				return fmt.Errorf("service: replay %s %s: %w", rec.Type, rec.Job, err)
			}
			j.progress.Steps = p.Steps
			j.progress.Concentration = p.Concentration
			j.progress.Concentrations = p.Concentrations
			// The latest snapshot wins: if this job turns out interrupted,
			// the requeue below resumes it from here instead of step 0.
			if len(p.Snapshot) > 0 {
				j.resumeSnap = p.Snapshot
				j.resumeSteps = p.Steps
			}
		case journal.TypeDone:
			var p recDone
			if err := json.Unmarshal(rec.Payload, &p); err != nil {
				return fmt.Errorf("service: replay %s %s: %w", rec.Type, rec.Job, err)
			}
			j.state = StateDone
			j.finished = time.Unix(0, rec.Time)
			j.result = p.Result
			if len(p.Results) > 0 {
				steps := 0
				for _, r := range p.Results {
					steps = r.Steps // every size covers the same window count
				}
				j.multiResult = &core.MultiResult{Steps: steps, Results: p.Results}
			}
		case journal.TypeFailed, journal.TypeCanceled:
			var p recFailed
			if err := json.Unmarshal(rec.Payload, &p); err != nil {
				return fmt.Errorf("service: replay %s %s: %w", rec.Type, rec.Job, err)
			}
			if rec.Type == journal.TypeFailed {
				j.state = StateFailed
			} else {
				j.state = StateCanceled
			}
			j.finished = time.Unix(0, rec.Time)
			j.errMsg = p.Error
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Second pass in submission order: warm the cache from completed runs,
	// close terminal jobs' done channels, and re-queue whatever the crash
	// interrupted. Both actions require the job's recorded graph
	// fingerprint to match the currently registered graph — a name re-bound
	// to different topology across the restart must neither serve the old
	// results nor silently run old specs against the new graph.
	sameBind := func(id string, graphName string) bool {
		meta := metas[id]
		if meta == nil {
			return false
		}
		info, ok := m.reg.Info(graphName)
		return ok && info.Nodes == meta.Nodes && info.Edges == meta.Edges &&
			info.MaxDegree == meta.MaxDegree
	}
	for _, id := range m.order {
		j := m.jobs[id]
		if n := jobIDNumber(id); n > m.nextID {
			m.nextID = n
		}
		if j.state.terminal() {
			j.resumeSnap, j.resumeSteps = nil, 0 // snapshots die with the run
		}
		switch {
		case j.state == StateDone:
			switch {
			case j.multiResult != nil:
				// A completed multi-size run re-warms its per-size fan-out
				// entries, all owned by this job.
				if sameBind(id, j.spec.Graph) {
					for _, k := range j.spec.Sizes {
						if r := j.multiResult.Results[k]; r != nil {
							m.cache.put(j.spec.sizeSpec(k).key(), r, j.id)
						}
					}
					m.met.warmed.Inc()
				}
				j.progress.Steps = j.multiResult.Steps
				j.progress.Concentrations = j.multiResult.Concentrations()
			case j.result != nil:
				if sameBind(id, j.spec.Graph) {
					m.cache.put(j.spec.key(), j.result, j.id)
					m.met.warmed.Inc()
				}
				j.progress.Steps = j.result.Steps
				j.progress.Concentration = j.result.Concentration()
			case j.cached:
				// A cache-hit job: its result lives with the originating run,
				// replayed (and cached) earlier in the log — unless the LRU
				// has since evicted it, in which case the view simply omits
				// the result body. A multi-size hit reassembles from the
				// per-size entries, as at submit time.
				if res, multiRes, ok := m.cacheGetLocked(j.spec, j.spec.key()); ok {
					j.result, j.multiResult = res, multiRes
				}
			}
			close(j.done)
		case j.state.terminal():
			close(j.done)
		default:
			// Queued or running at crash: re-queue with a fresh slot at the
			// original priority — but only onto the same topology it was
			// admitted against. A job whose replay carried a checkpoint
			// snapshot resumes mid-budget: its progress survives, the
			// scheduler will charge only the remaining steps, and the worker
			// restores the walkers from the snapshot at dispatch.
			if !sameBind(id, j.spec.Graph) {
				j.state = StateFailed
				j.errMsg = fmt.Sprintf("service: graph %q is not registered with the same topology it was submitted against; job not re-run", j.spec.Graph)
				close(j.done)
				continue
			}
			j.state = StateQueued
			j.started = time.Time{}
			if len(j.resumeSnap) > 0 {
				j.progress.Total = j.spec.Steps
				j.progress.ResumedSteps = j.resumeSteps
				m.met.resumable.Inc()
			} else {
				j.progress = Progress{Total: j.spec.Steps}
			}
			if err := m.sched.enqueue(j); err != nil {
				j.state = StateFailed
				j.errMsg = fmt.Sprintf("recovery: %v", err)
				close(j.done)
				continue
			}
			m.inflight[j.spec.key()] = j
			m.met.recovered.Inc()
		}
	}
	m.pruneLocked()
	if m.jnl.Segments() > m.opts.CompactSegments {
		return m.compactJournalNow()
	}
	return nil
}

// jobIDNumber parses the numeric suffix of a "j-N" job ID (0 if malformed).
func jobIDNumber(id string) int {
	rest, ok := strings.CutPrefix(id, "j-")
	if !ok {
		return 0
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// compactJournalNow compacts synchronously under the retention rule of
// newKeepFunc (asyncjournal.go).
// Only called from recover, before the writer goroutine and worker pool
// exist, so reading the job table and cache without m.mu is safe.
func (m *Manager) compactJournalNow() error {
	terminal := make(map[string]bool, len(m.jobs))
	for id, j := range m.jobs {
		terminal[id] = j.state.terminal()
	}
	keep, err := m.newKeepFunc(terminal, m.cache.ownerSet())
	if err != nil {
		return err
	}
	return m.jnl.Compact(keep)
}
