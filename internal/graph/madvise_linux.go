//go:build linux

package graph

import "syscall"

// adviseMapped tunes kernel paging for a freshly validated .gcsr mapping.
// The walk workload probes the adj array at random row offsets (neighbor
// lookups follow the walk, not the file order), so default sequential
// readahead on it wastes memory bandwidth pulling pages the walk never
// touches — MADV_RANDOM disables it. The off array, by contrast, is tiny
// relative to adj, consulted on every single probe (row bounds), and worth
// having resident up front — MADV_WILLNEED prefetches it.
//
// offEnd is the mapping offset one past the off array (header + off bytes).
// madvise requires page-aligned starts: the WILLNEED region starts at the
// mapping base (page-aligned by mmap), and the RANDOM region starts at
// offEnd rounded up, leaving the boundary page under WILLNEED — the right
// call for a page holding the hot off array's tail. Advice is best-effort;
// errors are ignored (the mapping works identically without it).
func adviseMapped(data []byte, offEnd int) {
	page := syscall.Getpagesize()
	if offEnd > len(data) {
		offEnd = len(data)
	}
	_ = syscall.Madvise(data[:offEnd], syscall.MADV_WILLNEED)
	adjStart := (offEnd + page - 1) &^ (page - 1)
	if adjStart < len(data) {
		_ = syscall.Madvise(data[adjStart:], syscall.MADV_RANDOM)
	}
}
