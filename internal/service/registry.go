// Package service turns the estimation engine into a long-running,
// multi-graph daemon — the front door the ROADMAP's production north star
// needs on top of the parallel walker ensemble:
//
//   - a graph Registry of named graphs (edge-list files or stand-in
//     datasets), listed, introspected and removable over HTTP;
//   - an async job Manager: POST an estimation Spec, get a job ID, poll
//     live progress snapshots or stream them as server-sent events, cancel
//     via context cancellation plumbed down to step granularity inside the
//     walker ensemble;
//   - a weighted-fair priority scheduler (scheduler.go): interactive >
//     batch > background classes under per-class deficit accounting, so
//     short jobs overtake long crawls without starving them;
//   - a durable journal (store.go + the journal subpackage): with a data
//     dir, every lifecycle transition is logged append-only and replayed on
//     restart — the job table rebuilds, the result cache warms, and
//     interrupted jobs re-queue;
//   - a result cache with request coalescing: identical specs are answered
//     from an LRU cache, and identical in-flight specs are deduplicated
//     single-flight, so a thundering herd of N clients costs one estimation
//     (sound because equal Config+Seed runs are byte-identical);
//   - a bounded worker pool sized with the shared trial-pool rule
//     (stats.PoolWorkers), so job parallelism × walkers stays at
//     GOMAXPROCS.
//
// cmd/graphletd wires the package to a TCP listener.
package service

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/obs"
)

// GraphInfo is the introspection record served for one registered graph.
type GraphInfo struct {
	Name      string `json:"name"`
	Source    string `json:"source"` // "dataset", "file", or "inline"
	Nodes     int    `json:"nodes"`
	Edges     int64  `json:"edges"`
	MaxDegree int    `json:"max_degree"`
	// OriginalIDs reports that the graph carries a dense→source node ID
	// mapping (packed with -keep-ids), so results can be translated back
	// into the caller's ID space.
	OriginalIDs bool `json:"original_ids,omitempty"`
}

// Registry holds the named graphs the daemon serves estimations over.
// A registered name cannot be re-bound in place — the result cache is keyed
// by graph name, so silently swapping topology under a live name would
// serve stale results. Remove unregisters a name (its cached results must
// be purged alongside, see Manager.DropGraph), after which the name may be
// registered afresh. It is safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	graphs map[string]*graph.Graph
	infos  map[string]GraphInfo
	gauge  *obs.GaugeVec // graphs by source; nil-safe obs no-ops when unwired
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		graphs: make(map[string]*graph.Graph),
		infos:  make(map[string]GraphInfo),
	}
}

// Add registers g under name. Registering an existing name is an error.
func (r *Registry) Add(name, source string, g *graph.Graph) error {
	if name == "" {
		return fmt.Errorf("service: empty graph name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.graphs[name]; ok {
		return fmt.Errorf("service: graph %q already registered", name)
	}
	r.graphs[name] = g
	r.infos[name] = GraphInfo{
		Name:        name,
		Source:      source,
		Nodes:       g.NumNodes(),
		Edges:       g.NumEdges(),
		MaxDegree:   g.MaxDegree(),
		OriginalIDs: g.HasOriginalIDs(),
	}
	r.gauge.With(source).Inc()
	return nil
}

// AddDataset registers the stand-in dataset's largest connected component
// under its own name.
func (r *Registry) AddDataset(name string) error {
	d, err := datasets.Get(name)
	if err != nil {
		return err
	}
	return r.Add(name, "dataset", d.Graph())
}

// AddFile loads a graph file from path, extracts its largest connected
// component (the paper's preprocessing), and registers it under name. The
// format is detected automatically: .gcsr binary CSR files (produced by
// graphlet-pack) are opened via the mmap path — zero-copy for v1, the
// bounded block-decode cache for v2 — so daemon start is near-instant and
// resident pages are shared with other processes mapping the same file;
// anything else is parsed as a text edge list. A pre-packed connected graph
// (graphlet-pack's default -lcc output) is served directly from the
// mapping; a disconnected one is rebuilt on the heap by the LCC extraction.
func (r *Registry) AddFile(name, path string) error {
	return r.AddFileOpts(name, path, graph.OpenOptions{})
}

// AddFileOpts is AddFile with graph open tuning (v2 block-cache size).
func (r *Registry) AddFileOpts(name, path string, o graph.OpenOptions) error {
	format := graph.DetectFormat(path)
	loaded, err := graph.OpenFileOpts(path, format, o)
	if err != nil {
		return fmt.Errorf("service: graph %q: %w", name, err)
	}
	lcc, toOld := graph.LargestComponent(loaded)
	source := "file"
	if format == graph.FormatGCSR {
		source = "gcsr"
	}
	if lcc != loaded {
		// The LCC extraction renumbered nodes; compose the original-IDs
		// mapping through it so the rebuilt graph still reports source IDs.
		if ids := loaded.OriginalIDs(); ids != nil {
			lccIDs := make([]int64, len(toOld))
			for v, old := range toOld {
				lccIDs[v] = ids[old]
			}
			if err := lcc.SetOriginalIDs(lccIDs); err != nil {
				loaded.Close()
				return fmt.Errorf("service: graph %q: %w", name, err)
			}
		}
		if format == graph.FormatGCSR {
			// The mapping holds the full graph but only the rebuilt heap
			// LCC is served; release the mapped pages.
			defer loaded.Close()
		}
	}
	return r.Add(name, source, lcc)
}

// Remove unregisters name, reporting whether it was present. In-flight
// jobs against the graph keep their *graph.Graph reference and finish
// normally; jobs still queued fail cleanly at dispatch when their lookup
// misses. Callers must also purge the graph's cached results
// (Manager.DropGraph) before re-binding the name.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.graphs[name]; !ok {
		return false
	}
	r.gauge.With(r.infos[name].Source).Dec()
	delete(r.graphs, name)
	delete(r.infos, name)
	return true
}

// instrument wires the per-source graph-count gauge, seeding it from the
// graphs already registered (graphletd registers graphs before building the
// Manager whose metrics own the gauge).
func (r *Registry) instrument(g *obs.GaugeVec) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauge = g
	counts := make(map[string]int64)
	for _, info := range r.infos {
		counts[info.Source]++
	}
	for source, n := range counts {
		g.With(source).Set(n)
	}
}

// BlockCacheStats aggregates the decoded-block cache counters of every
// registered block-compressed (.gcsr v2) graph; raw-CSR graphs contribute
// nothing. The metrics collector exposes the aggregate at scrape time.
func (r *Registry) BlockCacheStats() graph.BlockCacheStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var agg graph.BlockCacheStats
	for _, g := range r.graphs {
		st, ok := g.BlockCacheStats()
		if !ok {
			continue
		}
		agg.Blocks += st.Blocks
		agg.ResidentBlocks += st.ResidentBlocks
		agg.ResidentBytes += st.ResidentBytes
		agg.CapacityBytes += st.CapacityBytes
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Evictions += st.Evictions
	}
	return agg
}

// Get returns the graph registered under name.
func (r *Registry) Get(name string) (*graph.Graph, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	g, ok := r.graphs[name]
	return g, ok
}

// Info returns the introspection record for name.
func (r *Registry) Info(name string) (GraphInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	info, ok := r.infos[name]
	return info, ok
}

// List returns all registered graphs sorted by name.
func (r *Registry) List() []GraphInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]GraphInfo, 0, len(r.infos))
	for _, info := range r.infos {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
