package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/access"
	"repro/internal/graphlet"
	"repro/internal/walk"
)

// MultiEstimator estimates the concentrations of several graphlet sizes
// simultaneously from random walks on G(d) — the joint-estimation idea
// behind MSS [36], generalized to this framework: a window of l_k = k-d+1
// consecutive states is maintained per target size k, and each size
// re-weights its own samples exactly as the single-size estimator does. One
// walk's API cost therefore buys every size's estimate at once.
//
// Window scheduling is step-aligned: size k's t-th window covers walk states
// [t, t+l_k-1], exactly the windows a single-size run over the same RNG
// stream would process. Because the walk trajectory is a pure function of the
// seed and accumulation draws no randomness, each size's merged Result is
// byte-identical to the Result of a MultiEstimator configured with that size
// alone — which is what lets a multi-size run satisfy later single-size
// requests for any covered k.
//
// Like Estimator, it is an ensemble: MultiConfig.Walkers independent
// multi-size walkers split the window budget and their per-size Results
// merge by summation in walker-index order. And like Estimator, a run is a
// serializable state machine: Snapshot/Restore round-trip the complete
// position (RNG stream, walk, state ring, per-size accumulators) through
// MultiEnsembleState, so interrupted runs resume byte-identically.
type MultiEstimator struct {
	cfg     MultiConfig
	client  access.Client
	walkers []*multiWalker

	// lo is the global index of walkers[0] (see Estimator.lo): 0 for a full
	// ensemble, the partition's first walker index otherwise.
	lo int

	// done is the checkpoint target reached so far (windows processed per
	// size, summed across walkers); Snapshot records it and Restore seeds it.
	done int
	// restored marks that the next run should continue from the restored
	// state instead of resetting the walkers.
	restored bool
}

// MultiConfig configures a MultiEstimator.
type MultiConfig struct {
	// Sizes lists the target graphlet sizes, each in 3..5 and >= D, without
	// duplicates.
	Sizes []int
	// D is the shared walk order (>= 1, <= min(Sizes)).
	D int
	// CSS and NB enable the §4 optimizations for every size (CSS applies
	// where l > 2).
	CSS, NB bool
	// Walkers is the number of independent concurrent walks (0 and 1 both
	// mean one); semantics match Config.Walkers.
	Walkers int
	Seed    int64
}

// Validate checks the configuration.
func (c MultiConfig) Validate() error {
	if len(c.Sizes) == 0 {
		return fmt.Errorf("core: MultiConfig needs at least one size")
	}
	for i, k := range c.Sizes {
		if k < 3 || k > graphlet.MaxK {
			return fmt.Errorf("core: size %d out of range 3..%d", k, graphlet.MaxK)
		}
		if c.D > k {
			return fmt.Errorf("core: D=%d exceeds size %d", c.D, k)
		}
		for _, prev := range c.Sizes[:i] {
			if prev == k {
				return fmt.Errorf("core: duplicate size %d", k)
			}
		}
	}
	if c.D < 1 {
		return fmt.Errorf("core: D=%d out of range", c.D)
	}
	if c.Walkers < 0 {
		return fmt.Errorf("core: negative Walkers %d", c.Walkers)
	}
	return nil
}

// equal reports deep equality (MultiConfig holds a slice, so == is
// unavailable); Sizes order is significant.
func (c MultiConfig) equal(o MultiConfig) bool {
	if len(c.Sizes) != len(o.Sizes) || c.D != o.D || c.CSS != o.CSS ||
		c.NB != o.NB || c.Walkers != o.Walkers || c.Seed != o.Seed {
		return false
	}
	for i := range c.Sizes {
		if c.Sizes[i] != o.Sizes[i] {
			return false
		}
	}
	return true
}

// NewMultiEstimator builds the joint estimator.
func NewMultiEstimator(client access.Client, cfg MultiConfig) (*MultiEstimator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ws := make([]*multiWalker, walkerCount(cfg.Walkers))
	for i := range ws {
		ws[i] = newMultiWalker(client, cfg, walkerSeed(cfg.Seed, i))
	}
	return &MultiEstimator{cfg: cfg, client: client, walkers: ws}, nil
}

// NewPartitionMultiEstimator is NewPartitionEstimator for the multi-size
// engine: an estimator owning walkers [lo, hi) of the cfg.Walkers-walker
// ensemble, with global seeds and window quotas, so partitioned runs combine
// byte-identically to a local NewMultiEstimator run.
func NewPartitionMultiEstimator(client access.Client, cfg MultiConfig, lo, hi int) (*MultiEstimator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := walkerCount(cfg.Walkers)
	if lo < 0 || hi > w || lo >= hi {
		return nil, fmt.Errorf("core: partition [%d,%d) out of range for %d walkers", lo, hi, w)
	}
	ws := make([]*multiWalker, hi-lo)
	for i := range ws {
		ws[i] = newMultiWalker(client, cfg, walkerSeed(cfg.Seed, lo+i))
	}
	return &MultiEstimator{cfg: cfg, client: client, walkers: ws, lo: lo}, nil
}

// MultiResult holds one Result per requested size, keyed by k.
type MultiResult struct {
	// Steps is the number of windows processed per size (every size covers
	// the same window count), summed over walkers.
	Steps   int
	Results map[int]*Result
}

// Merge folds o into m: Steps sum, and each size's Result merges
// (Result.Merge). Both MultiResults must come from the same MultiConfig.
func (m *MultiResult) Merge(o *MultiResult) {
	m.Steps += o.Steps
	for k, r := range o.Results {
		m.Results[k].Merge(r)
	}
}

// Concentrations returns the per-size concentration vectors, keyed by k.
func (m *MultiResult) Concentrations() map[int][]float64 {
	out := make(map[int][]float64, len(m.Results))
	for k, r := range m.Results {
		out[k] = r.Concentration()
	}
	return out
}

// Run advances the walkers for n windows per size in total and returns the
// merged per-size estimates. After Restore it continues the restored run.
func (m *MultiEstimator) Run(n int) (*MultiResult, error) {
	return m.RunCheckpointsCtx(context.Background(), n, 0, nil)
}

// RunCheckpointsCtx mirrors Estimator.RunCheckpointsCtx for the multi-size
// engine: the window budget n (per size, split across walkers) runs in
// checkpoint stages of `every` windows; at each barrier fn receives the
// windows processed so far and the merged per-size concentration snapshot.
// Cancellation is cooperative and step-granular; on cancel the merged
// partial MultiResult is returned alongside ctx.Err(). Runs that complete
// are byte-identical at any GOMAXPROCS.
func (m *MultiEstimator) RunCheckpointsCtx(ctx context.Context, n, every int, fn func(step int, conc map[int][]float64)) (*MultiResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: non-positive sample budget %d", n)
	}
	nw := len(m.walkers)
	// Global-index quotas, as in Estimator.RunCheckpointsCtx.
	tw := walkerCount(m.cfg.Walkers)
	resumed := m.restored
	m.restored = false
	if resumed {
		if m.done > n {
			return nil, fmt.Errorf("core: restored state at %d windows exceeds budget %d", m.done, n)
		}
	} else {
		for _, wk := range m.walkers {
			wk.reset()
		}
		// Sequential seed draws: see walker.ensureSeeded.
		for _, wk := range m.walkers {
			wk.ensureSeeded()
		}
		m.done = 0
	}
	prev := m.done
	for _, target := range checkpointTargets(n, every, fn != nil) {
		if target <= prev {
			continue // already covered by the restored state
		}
		if err := ctx.Err(); err != nil {
			return m.merged(), err
		}
		lo, hi := prev, target
		if err := runStage(nw, func(i int) error {
			return m.walkers[i].run(ctx, walkerQuota(hi, tw, m.lo+i)-walkerQuota(lo, tw, m.lo+i))
		}); err != nil {
			if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
				// A mid-stage cancel: the partial accumulators are intact and
				// their merge reports the windows actually processed.
				return m.merged(), err
			}
			return nil, err
		}
		prev = target
		m.done = target
		if fn != nil {
			fn(target, m.merged().Concentrations())
		}
	}
	return m.merged(), nil
}

// Snapshot exports the run's complete resumable state. Like
// Estimator.Snapshot it is only valid while the walkers are quiescent (from
// inside a checkpoint callback or after a run returned) and is read-only.
func (m *MultiEstimator) Snapshot() *MultiEnsembleState {
	st := &MultiEnsembleState{
		Config:      m.cfg,
		WindowsDone: m.done,
		Walkers:     make([]MultiWalkerState, len(m.walkers)),
	}
	for i, wk := range m.walkers {
		st.Walkers[i] = wk.snapshot()
	}
	return st
}

// Restore loads an exported state: the next Run call continues the
// interrupted run from st.WindowsDone windows per size and completes with
// per-size Results byte-identical to the uninterrupted run's, at any
// GOMAXPROCS. The state must have been captured under an equal MultiConfig.
// On error the estimator may be partially mutated and must be discarded.
func (m *MultiEstimator) Restore(st *MultiEnsembleState) error {
	if st == nil {
		return fmt.Errorf("core: nil multi ensemble state")
	}
	if !st.Config.equal(m.cfg) {
		return fmt.Errorf("core: multi ensemble state was captured under config %+v, estimator has %+v", st.Config, m.cfg)
	}
	if len(st.Walkers) != len(m.walkers) {
		return fmt.Errorf("core: multi ensemble state has %d walkers, estimator has %d", len(st.Walkers), len(m.walkers))
	}
	tw := walkerCount(m.cfg.Walkers)
	for i, wk := range m.walkers {
		// Every size advances in lockstep across stage barriers, so each
		// size's window count must equal the pure-function quota split (at
		// the walker's global index).
		want := walkerQuota(st.WindowsDone, tw, m.lo+i)
		for j, acc := range st.Walkers[i].Accs {
			if acc.Done != want {
				return fmt.Errorf("core: walker %d size[%d] processed %d windows, want %d at ensemble target %d",
					m.lo+i, j, acc.Done, want, st.WindowsDone)
			}
		}
		if err := wk.restore(st.Walkers[i]); err != nil {
			return err
		}
	}
	m.done = st.WindowsDone
	m.restored = true
	return nil
}

// merged combines the walkers' private MultiResults in walker-index order.
// Each merged per-size Result carries the full equivalent single-size Config
// (including Walkers and Seed), so it is structurally identical to what an
// Estimator configured for that size alone would return.
func (m *MultiEstimator) merged() *MultiResult {
	out := m.walkers[0].emptyResult()
	for _, wk := range m.walkers {
		out.Merge(wk.res)
	}
	for _, r := range out.Results {
		r.Config.Walkers = m.cfg.Walkers
		r.Config.Seed = m.cfg.Seed
	}
	return out
}

// multiWalker is the per-goroutine layer of the multi-size engine: one walk
// whose ring of the last max(l_k) states serves every target size's window.
//
// The scheduling invariant is index-based: pushed counts the walk states
// seen so far (state 0 is the start state, so pushed == walk steps + 1 once
// primed), state j lives in ring slot j % maxL, and done[i] counts the
// windows size i has accumulated — size i's next window covers states
// [done[i], done[i]+l_i-1] and is ready as soon as pushed >= done[i]+l_i.
// The greedy run loop accumulates every ready window before taking a step,
// so no size ever falls more than maxL-1 states behind and the ring always
// retains every state a pending window needs.
type multiWalker struct {
	client access.Client
	space  walk.Space
	seed   int64      // walker-specific seed (walkerSeed); rebuilds rng on restore
	rng    *walk.Rand // position-counted so checkpoints can snapshot the stream
	w      *walk.Walk
	d      int
	css    bool
	nb     bool

	sizes []int
	ls    []int // l_k = k-d+1 per size
	maxL  int

	// Ring of the last maxL states and their degrees; state j at slot j%maxL.
	win    []walk.State
	degs   []int
	pushed int   // states pushed since reset/restore
	done   []int // windows accumulated per size

	// curStart parameterizes windowAt for the window being accumulated.
	curStart int

	scratchNodes []int32
	scratchChain []int32

	res    *MultiResult
	seeded bool
	primed bool
}

func newMultiWalker(client access.Client, cfg MultiConfig, seed int64) *multiWalker {
	maxL := 0
	ls := make([]int, len(cfg.Sizes))
	for i, k := range cfg.Sizes {
		ls[i] = k - cfg.D + 1
		if ls[i] > maxL {
			maxL = ls[i]
		}
	}
	return &multiWalker{
		client: client,
		space:  walk.NewSpace(client, cfg.D),
		seed:   seed,
		rng:    walk.NewRand(seed),
		d:      cfg.D,
		css:    cfg.CSS,
		nb:     cfg.NB,
		sizes:  append([]int(nil), cfg.Sizes...),
		ls:     ls,
		maxL:   maxL,
		win:    make([]walk.State, maxL),
		degs:   make([]int, maxL),
		done:   make([]int, len(cfg.Sizes)),
	}
}

// emptyResult allocates a zeroed MultiResult shaped for the walker's sizes.
func (m *multiWalker) emptyResult() *MultiResult {
	out := &MultiResult{Results: map[int]*Result{}}
	for _, k := range m.sizes {
		out.Results[k] = &Result{
			Config:     Config{K: k, D: m.d, CSS: m.css, NB: m.nb},
			Weights:    make([]float64, graphlet.Count(k)),
			TypeCounts: make([]int64, graphlet.Count(k)),
		}
	}
	return out
}

func (m *multiWalker) reset() {
	m.res = m.emptyResult()
	m.seeded = false
	m.primed = false
	m.pushed = 0
	for i := range m.done {
		m.done[i] = 0
	}
}

// ensureSeeded mirrors walker.ensureSeeded for the multi-size engine: only
// the start-state draw needs walker-index ordering.
func (m *multiWalker) ensureSeeded() {
	if !m.seeded {
		m.w = walk.New(m.space, m.nb, m.rng.Rand)
		m.seeded = true
	}
}

// start primes the walker: start state drawn and pushed as state 0. Further
// states are pushed lazily by the run loop, only when a window needs them.
func (m *multiWalker) start() {
	m.ensureSeeded()
	if m.primed {
		return
	}
	m.pushed = 0
	m.push(m.w.Current())
	m.primed = true
}

// minDone returns the slowest size's window count — the walker's overall
// progress (every size reaches the stage target before run returns).
func (m *multiWalker) minDone() int {
	min := m.done[0]
	for _, d := range m.done[1:] {
		if d < min {
			min = d
		}
	}
	return min
}

// run advances every size by `count` windows (all sizes stand at the same
// window count when a stage starts), polling ctx every cancelCheckEvery walk
// transitions. Windows are accumulated greedily the moment their states
// exist, so the walk only steps when some size still needs a new state.
func (m *multiWalker) run(ctx context.Context, count int) error {
	m.start()
	target := m.done[0] + count
	done := ctx.Done()
	steps := 0
	for m.minDone() < target {
		advanced := false
		for i := range m.sizes {
			if m.done[i] < target && m.done[i]+m.ls[i] <= m.pushed {
				if err := m.accumulateSize(i); err != nil {
					return err
				}
				m.done[i]++
				m.res.Results[m.sizes[i]].Steps++
				advanced = true
			}
		}
		if advanced {
			m.res.Steps = m.minDone()
			continue
		}
		// Every ready window is consumed; the slowest size needs one more
		// state.
		if done != nil && steps%cancelCheckEvery == 0 {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		steps++
		m.push(m.w.Step())
	}
	return nil
}

func (m *multiWalker) push(s walk.State) {
	slot := m.pushed % m.maxL
	m.win[slot] = s
	m.degs[slot] = m.space.StateDegree(s)
	m.pushed++
}

// windowAt returns the i-th state (0 = oldest) of the window starting at
// curStart; the signature matches windowCode's accessor.
func (m *multiWalker) windowAt(i int) (walk.State, int) {
	j := (m.curStart + i) % m.maxL
	return m.win[j], m.degs[j]
}

// accumulateSize processes size index i's next window (states
// [done[i], done[i]+l_i-1]) into its private Result — the same math as
// walker.accumulate, so a size's accumulator trajectory is identical to a
// single-size run over the same walk.
func (m *multiWalker) accumulateSize(i int) error {
	k := m.sizes[i]
	l := m.ls[i]
	m.curStart = m.done[i]
	res := m.res.Results[k]
	nodes := m.scratchNodes[:0]
	for i := 0; i < l; i++ {
		s, _ := m.windowAt(i)
		for j := 0; j < s.Len(); j++ {
			x := s.Node(j)
			seen := false
			for _, y := range nodes {
				if y == x {
					seen = true
					break
				}
			}
			if !seen {
				nodes = append(nodes, x)
			}
		}
	}
	m.scratchNodes = nodes
	if len(nodes) != k {
		return nil
	}
	res.ValidSamples++
	code := windowCode(m.client, m.space, k, l, nodes, m.windowAt)
	typ := graphlet.ClassifyCode(k, code)
	if typ < 0 {
		return fmt.Errorf("core: multi window %v disconnected", nodes)
	}
	res.TypeCounts[typ]++

	var weight float64
	if m.css && l > 2 {
		p := samplingProbabilityWith(m.client, m.space, k, m.d, m.nb, nodes, &m.scratchChain)
		if p <= 0 {
			return fmt.Errorf("core: multi zero sampling probability")
		}
		weight = 1 / p
	} else {
		alpha := graphlet.Alpha(k, m.d, typ+1)
		if alpha == 0 {
			return fmt.Errorf("core: multi walk produced type g%d_%d with alpha=0", k, typ+1)
		}
		pie := 1.0
		switch {
		case l == 1:
			_, deg := m.windowAt(0)
			pie = float64(deg)
		case l > 2:
			for i := 1; i < l-1; i++ {
				_, deg := m.windowAt(i)
				if m.nb {
					deg = nominal(deg)
				}
				pie *= 1 / float64(deg)
			}
		}
		weight = 1 / (float64(alpha) * pie)
	}
	res.Weights[typ] += weight
	return nil
}

// snapshot exports the walker's complete resumable state; only safe while
// the walker is quiescent (between ensemble stages), and read-only.
func (m *multiWalker) snapshot() MultiWalkerState {
	st := MultiWalkerState{
		RNGPos: m.rng.Pos(),
		Seeded: m.seeded,
		Primed: m.primed,
	}
	st.Accs = make([]MultiSizeAcc, len(m.sizes))
	for i, k := range m.sizes {
		acc := MultiSizeAcc{Done: m.done[i]}
		if m.res != nil {
			r := m.res.Results[k]
			acc.ValidSamples = r.ValidSamples
			acc.Weights = append([]float64(nil), r.Weights...)
			acc.TypeCounts = append([]int64(nil), r.TypeCounts...)
		} else {
			acc.Weights = make([]float64, graphlet.Count(k))
			acc.TypeCounts = make([]int64, graphlet.Count(k))
		}
		st.Accs[i] = acc
	}
	if m.seeded {
		ws := m.w.State()
		st.Steps = ws.Steps
		st.HasPrev = ws.HasPrev
		st.Cur = ws.Cur.Nodes(nil)
		if ws.HasPrev {
			st.Prev = ws.Prev.Nodes(nil)
		}
	}
	if m.primed {
		// The ring holds the last min(pushed, maxL) states; export them
		// oldest-first so restore can re-place state j at slot j % maxL.
		n := m.pushed
		if n > m.maxL {
			n = m.maxL
		}
		st.Win = make([][]int32, n)
		st.Degs = make([]int, n)
		for i := 0; i < n; i++ {
			j := m.pushed - n + i
			slot := j % m.maxL
			st.Win[i] = m.win[slot].Nodes(nil)
			st.Degs[i] = m.degs[slot]
		}
	}
	return st
}

// restore rebuilds the walker from an exported state: a fresh space, the RNG
// fast-forwarded to the recorded position, the walk at its recorded
// position, the state ring re-placed at canonical slots, and the per-size
// accumulators. On error the walker may be left partially mutated; callers
// discard the whole estimator then.
func (m *multiWalker) restore(st MultiWalkerState) error {
	if len(st.Accs) != len(m.sizes) {
		return fmt.Errorf("core: multi restore: %d size accumulators, want %d", len(st.Accs), len(m.sizes))
	}
	if st.Primed && !st.Seeded {
		return fmt.Errorf("core: multi restore: primed walker without a start state")
	}
	if st.Steps < 0 {
		return fmt.Errorf("core: multi restore: negative walk steps")
	}
	m.res = &MultiResult{Results: map[int]*Result{}}
	for i, k := range m.sizes {
		acc := st.Accs[i]
		nt := graphlet.Count(k)
		if len(acc.Weights) != nt || len(acc.TypeCounts) != nt {
			return fmt.Errorf("core: multi restore: size %d accumulator has %d/%d types, want %d",
				k, len(acc.Weights), len(acc.TypeCounts), nt)
		}
		if acc.Done < 0 || acc.ValidSamples < 0 {
			return fmt.Errorf("core: multi restore: negative counters for size %d", k)
		}
		m.done[i] = acc.Done
		m.res.Results[k] = &Result{
			Config:       Config{K: k, D: m.d, CSS: m.css, NB: m.nb},
			Steps:        acc.Done,
			ValidSamples: acc.ValidSamples,
			Weights:      append([]float64(nil), acc.Weights...),
			TypeCounts:   append([]int64(nil), acc.TypeCounts...),
		}
	}
	m.res.Steps = m.minDone()
	m.rng = walk.NewRandAt(m.seed, st.RNGPos)
	m.space = walk.NewSpace(m.client, m.d)
	m.seeded = st.Seeded
	m.primed = st.Primed
	m.pushed = 0
	if !st.Seeded {
		m.w = nil
		return nil
	}
	ws := walk.WalkState{Steps: st.Steps, HasPrev: st.HasPrev}
	var err error
	if ws.Cur, err = stateOf(st.Cur, m.d); err != nil {
		return fmt.Errorf("core: multi restore current state: %w", err)
	}
	if st.HasPrev {
		if ws.Prev, err = stateOf(st.Prev, m.d); err != nil {
			return fmt.Errorf("core: multi restore previous state: %w", err)
		}
	}
	m.w = walk.Resume(m.space, ws, m.nb, m.rng.Rand)
	if st.Primed {
		m.pushed = int(st.Steps) + 1
		n := m.pushed
		if n > m.maxL {
			n = m.maxL
		}
		if len(st.Win) != n || len(st.Degs) != n {
			return fmt.Errorf("core: multi restore: ring of %d states/%d degrees, want %d",
				len(st.Win), len(st.Degs), n)
		}
		for i := 0; i < n; i++ {
			s, err := stateOf(st.Win[i], m.d)
			if err != nil {
				return fmt.Errorf("core: multi restore ring[%d]: %w", i, err)
			}
			if st.Degs[i] < 0 {
				return fmt.Errorf("core: multi restore: negative degree %d", st.Degs[i])
			}
			j := m.pushed - n + i
			slot := j % m.maxL
			m.win[slot] = s
			m.degs[slot] = st.Degs[i]
		}
		// Every pending window must still be coverable by the ring: size i
		// resumes at window done[i], whose oldest state index must not
		// precede pushed - n (the oldest retained state).
		for i := range m.sizes {
			if m.done[i] < m.pushed-n {
				return fmt.Errorf("core: multi restore: size %d window %d precedes retained ring (oldest state %d)",
					m.sizes[i], m.done[i], m.pushed-n)
			}
		}
	}
	return nil
}
