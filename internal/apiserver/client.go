package apiserver

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/access"
)

// Client implements access.Client over the crawl API. Fetched neighborhoods
// are cached, as a real crawler would do, so each node costs one request no
// matter how many walk steps revisit it; edge probes are answered from the
// cache when either endpoint was fetched.
//
// Client is safe for concurrent use: a parallel walker ensemble
// (core.Config.Walkers > 1) can share one Client, and concurrent fetches of
// the same node are coalesced into a single HTTP round trip (per-node single
// flight), so Requests counts exactly one request per distinct node fetched
// plus the /nodes/random seeds. Read Requests only after the crawl
// quiesces, or via RequestCount.
type Client struct {
	base string
	http *http.Client
	ctx  context.Context // applied to every request; nil means Background

	s *crawlState
}

// crawlState is the crawl session shared by a Client and every WithContext
// derivation of it: one cache, one single-flight table, one request counter.
type crawlState struct {
	mu       sync.RWMutex
	cache    map[int32][]int32
	inflight map[int32]*fetchCall

	// requests counts HTTP round trips actually issued.
	requests atomic.Int64
}

// fetchCall is an in-flight neighbor fetch other goroutines can wait on.
// ok records whether the fetch succeeded; waiters must not mistake a failed
// fetch's nil slice for a degree-0 node.
type fetchCall struct {
	wg sync.WaitGroup
	ns []int32
	ok bool
}

var _ access.Client = (*Client)(nil)

// DefaultTimeout bounds each HTTP round trip when NewClient is handed no
// http.Client of its own. A remote graph API that stops answering must
// surface as a walker error within this window, never as an indefinite hang
// (a distributed worker stuck here would stall its coordinator until the
// partition watchdog gives up on the whole node).
const DefaultTimeout = 30 * time.Second

// NewClient crawls the API at base (e.g. "http://127.0.0.1:8080"). If hc is
// nil, a client with DefaultTimeout per request is used — never
// http.DefaultClient, which waits forever.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: DefaultTimeout}
	}
	return &Client{
		base: base,
		http: hc,
		s: &crawlState{
			cache:    make(map[int32][]int32),
			inflight: make(map[int32]*fetchCall),
		},
	}
}

// WithContext returns a client that issues every request under ctx: when
// ctx is canceled or its deadline passes, in-flight and future calls abort
// with the client's panic convention instead of waiting out the transport.
// The derived client shares the crawl session — cache, single-flight table
// and request counter — with the original, so scoping a walk to a deadline
// costs no refetches.
func (c *Client) WithContext(ctx context.Context) *Client {
	return &Client{base: c.base, http: c.http, ctx: ctx, s: c.s}
}

// RequestCount returns the number of HTTP round trips issued so far.
func (c *Client) RequestCount() int64 { return c.s.requests.Load() }

func (c *Client) fetch(v int32) []int32 {
	s := c.s
	s.mu.RLock()
	ns, ok := s.cache[v]
	s.mu.RUnlock()
	if ok {
		return ns
	}
	s.mu.Lock()
	if ns, ok := s.cache[v]; ok {
		s.mu.Unlock()
		return ns
	}
	if call, ok := s.inflight[v]; ok {
		s.mu.Unlock()
		call.wg.Wait()
		if !call.ok {
			// Propagate the failure with this client's panic convention; the
			// inflight entry is already cleared, so a retry starts fresh.
			panic(fmt.Sprintf("apiserver client: fetch of node %d failed in another goroutine", v))
		}
		return call.ns
	}
	call := &fetchCall{}
	call.wg.Add(1)
	s.inflight[v] = call
	s.mu.Unlock()

	// c.get panics on transport errors; release waiters and clear the
	// inflight entry even then, or a recovered panic higher up (runStage
	// converts walker panics to errors) would leave them blocked forever.
	ok = false
	defer func() {
		s.mu.Lock()
		if ok {
			s.cache[v] = call.ns
		}
		call.ok = ok
		delete(s.inflight, v)
		s.mu.Unlock()
		call.wg.Done()
	}()

	var resp neighborsResponse
	c.get(fmt.Sprintf("%s/v1/nodes/%d/neighbors", c.base, v), &resp)
	call.ns = canonicalRow(resp.Neighbors)
	ok = true
	return call.ns
}

// canonicalRow re-establishes the access.Client row contract — strictly
// ascending, no duplicates — at the wire boundary. The walk kernel's merge
// iteration and this client's own binary-search HasEdge both depend on it.
// Rows from this package's server are already canonical, so the common case
// is one verification scan; a nonconforming third-party server costs a
// sort+compact once per node (rows are cached).
func canonicalRow(ns []int32) []int32 {
	strict := true
	for i := 1; i < len(ns); i++ {
		if ns[i] <= ns[i-1] {
			strict = false
			break
		}
	}
	if strict {
		return ns
	}
	slices.Sort(ns)
	return slices.Compact(ns)
}

func (c *Client) get(url string, out any) {
	c.s.requests.Add(1)
	ctx := c.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		panic(fmt.Sprintf("apiserver client: %v", err))
	}
	r, err := c.http.Do(req)
	if err != nil {
		panic(fmt.Sprintf("apiserver client: %v", err))
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		panic(fmt.Sprintf("apiserver client: %s returned %s", url, r.Status))
	}
	if err := json.NewDecoder(r.Body).Decode(out); err != nil {
		panic(fmt.Sprintf("apiserver client: decode %s: %v", url, err))
	}
}

// Degree implements access.Client.
func (c *Client) Degree(v int32) int { return len(c.fetch(v)) }

// Neighbors implements access.Client.
func (c *Client) Neighbors(v int32) []int32 { return c.fetch(v) }

// Neighbor implements access.Client.
func (c *Client) Neighbor(v int32, i int) int32 { return c.fetch(v)[i] }

// HasEdge implements access.Client, answering from cached neighbor lists
// when possible and otherwise fetching the smaller-unknown endpoint — the
// strategy a polite crawler uses instead of a dedicated edge endpoint.
func (c *Client) HasEdge(u, v int32) bool {
	s := c.s
	s.mu.RLock()
	nsU, okU := s.cache[u]
	var nsV []int32
	var okV bool
	if !okU {
		nsV, okV = s.cache[v]
	}
	s.mu.RUnlock()
	if okU {
		return containsSorted(nsU, v)
	}
	if okV {
		return containsSorted(nsV, u)
	}
	return containsSorted(c.fetch(u), v)
}

// RandomNode implements access.Client via the server's seed endpoint. The
// local rng parameter is unused: seed selection happens server-side, as with
// real crawl seeds obtained out of band.
func (c *Client) RandomNode(_ *rand.Rand) int32 {
	var resp randomNodeResponse
	c.get(c.base+"/v1/nodes/random", &resp)
	return resp.ID
}

func containsSorted(ns []int32, v int32) bool {
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}
