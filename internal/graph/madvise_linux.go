//go:build linux

package graph

import "syscall"

// adviseMapped tunes kernel paging for a freshly validated .gcsr mapping.
// Both format versions split the same way: a small hot prefix consulted
// constantly, and a large cold region accessed at random offsets. For v1
// the prefix is the header + off array (row bounds on every probe) and the
// cold region is the raw adj array; for v2 the prefix is the header + block
// index + original-IDs section (block lookups on every decode miss) and the
// cold region is the encoded blocks, touched in whatever order the walk
// misses the decode cache. Default sequential readahead on the cold region
// wastes memory bandwidth pulling pages the walk never touches —
// MADV_RANDOM disables it; MADV_WILLNEED prefetches the prefix.
//
// hotEnd is the mapping offset one past the hot prefix. madvise requires
// page-aligned starts: the WILLNEED region starts at the mapping base
// (page-aligned by mmap), and the RANDOM region starts at hotEnd rounded
// up, leaving the boundary page under WILLNEED — the right call for a page
// holding the hot prefix's tail. Advice is best-effort; errors are ignored
// (the mapping works identically without it).
func adviseMapped(data []byte, hotEnd int) {
	page := syscall.Getpagesize()
	if hotEnd > len(data) {
		hotEnd = len(data)
	}
	_ = syscall.Madvise(data[:hotEnd], syscall.MADV_WILLNEED)
	coldStart := (hotEnd + page - 1) &^ (page - 1)
	if coldStart < len(data) {
		_ = syscall.Madvise(data[coldStart:], syscall.MADV_RANDOM)
	}
}
