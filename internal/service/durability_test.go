package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/gen"
	"repro/internal/graph"
)

// waitState polls the manager until the job reaches the wanted state.
func waitState(t *testing.T, mgr *Manager, id string, want State) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := mgr.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if v.State == want {
			return v
		}
		if v.State.terminal() {
			t.Fatalf("job %s reached %s (err %q), want %s", id, v.State, v.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobView{}
}

// Restart recovery end to end (the crash is simulated in-process through the
// journal API): a daemon dies with one job done, one running and one queued;
// the reopened manager serves the completed result from the warmed cache
// without re-running it, and the interrupted jobs re-queue under their
// original IDs and finish.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	reg := testRegistry(t)
	plc, _ := reg.Get("plc")
	gate := make(chan struct{}) // never closed: the "crash" strands these jobs

	mgr1 := newTestManager(t, reg, Options{
		Workers: 1, MaxWalkers: 2, DataDir: dir,
		NewClient: func(g *graph.Graph) access.Client {
			c := access.NewGraphClient(g)
			if g == plc {
				return gatedClient{Client: c, gate: gate}
			}
			return c
		},
	})
	specA := Spec{Graph: "hk", K: 3, D: 1, Steps: 2000, Walkers: 1, Seed: 41}
	a, err := mgr1.Submit(specA)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	aDone, err := mgr1.Wait(ctx, a.ID)
	if err != nil || aDone.State != StateDone {
		t.Fatalf("job A: %+v, %v", aDone, err)
	}
	b, err := mgr1.Submit(Spec{Graph: "plc", K: 3, D: 1, Steps: 2500, Walkers: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, mgr1, b.ID, StateRunning) // blocked on the gate mid-run
	c, err := mgr1.Submit(Spec{Graph: "plc", K: 3, D: 1, Steps: 2600, Walkers: 1, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := mgr1.Get(c.ID); v.State != StateQueued {
		t.Fatalf("job C state %s, want queued behind the single worker", v.State)
	}
	// Crash: mgr1 is abandoned without Close, so no terminal records reach
	// the journal for B or C — exactly the state a SIGKILL leaves behind.
	// The barrier pins the async append queue to disk first: it stands in
	// for the OS page cache, which survives a real SIGKILL.
	mgr1.syncJournal()

	mgr2 := newTestManager(t, reg, Options{Workers: 2, MaxWalkers: 2, DataDir: dir})
	defer mgr2.Close()
	st := mgr2.Stats()
	if st.RecoveredJobs != 2 {
		t.Fatalf("recovered %d jobs, want 2 (the running and the queued one)", st.RecoveredJobs)
	}
	if st.WarmedResults != 1 {
		t.Fatalf("warmed %d results, want 1", st.WarmedResults)
	}

	// The completed job answers from the warmed cache: no re-run, identical
	// bytes.
	v, err := mgr2.Submit(specA)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Cached || v.State != StateDone || v.Result == nil {
		t.Fatalf("resubmit after restart missed the warmed cache: %+v", v)
	}
	for i := range v.Result.Concentration {
		if v.Result.Concentration[i] != aDone.Result.Concentration[i] {
			t.Fatalf("warmed result diverges from the original at %d: %v vs %v",
				i, v.Result.Concentration[i], aDone.Result.Concentration[i])
		}
	}

	// The interrupted jobs kept their IDs, re-queued, and finish for real.
	for _, id := range []string{b.ID, c.ID} {
		final, err := mgr2.Wait(ctx, id)
		if err != nil || final.State != StateDone {
			t.Fatalf("recovered job %s: %+v, %v", id, final, err)
		}
		if final.Result == nil || final.Result.Steps == 0 {
			t.Fatalf("recovered job %s finished without a result: %+v", id, final)
		}
	}
	if runs := mgr2.Stats().Runs; runs != 2 {
		t.Fatalf("runs after recovery = %d, want 2 (B and C re-ran, A did not)", runs)
	}

	// Fresh IDs continue past the replayed ones instead of colliding.
	d, err := mgr2.Submit(Spec{Graph: "hk", K: 3, D: 1, Steps: 1500, Walkers: 1, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{a.ID, b.ID, c.ID} {
		if d.ID == id {
			t.Fatalf("fresh job reused replayed ID %s", id)
		}
	}
}

// A clean Close/reopen cycle also restores history: terminal states, error
// messages and the warm cache survive, and nothing is re-queued.
func TestCleanRestartKeepsHistory(t *testing.T) {
	dir := t.TempDir()
	reg := testRegistry(t)
	mgr1 := newTestManager(t, reg, Options{Workers: 2, MaxWalkers: 2, DataDir: dir})
	spec := Spec{Graph: "hk", K: 3, D: 1, Steps: 1800, Walkers: 1, Seed: 51}
	v, err := mgr1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if v, err = mgr1.Wait(ctx, v.ID); err != nil || v.State != StateDone {
		t.Fatalf("run: %+v, %v", v, err)
	}
	mgr1.Close()

	mgr2 := newTestManager(t, reg, Options{Workers: 2, MaxWalkers: 2, DataDir: dir})
	defer mgr2.Close()
	got, ok := mgr2.Get(v.ID)
	if !ok || got.State != StateDone || got.Result == nil {
		t.Fatalf("history lost across clean restart: %+v (ok=%v)", got, ok)
	}
	if st := mgr2.Stats(); st.RecoveredJobs != 0 || st.WarmedResults != 1 {
		t.Fatalf("clean restart stats: %+v, want 0 re-queued / 1 warmed", st)
	}
	if hit, err := mgr2.Submit(spec); err != nil || !hit.Cached {
		t.Fatalf("cache not warm after clean restart: %+v, %v", hit, err)
	}
}

// Re-binding a graph name to different topology across a restart must not
// serve the old topology's results from the warmed cache, and interrupted
// jobs admitted against the old binding fail cleanly instead of silently
// running on the new graph.
func TestRestartRefusesRemappedGraph(t *testing.T) {
	dir := t.TempDir()
	regA := NewRegistry()
	if err := regA.Add("g", "inline", gen.HolmeKim(400, 3, 0.6, 11)); err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	gated := false
	mgr1 := newTestManager(t, regA, Options{
		Workers: 1, MaxWalkers: 2, DataDir: dir,
		NewClient: func(g *graph.Graph) access.Client {
			c := access.NewGraphClient(g)
			if gated {
				return gatedClient{Client: c, gate: gate}
			}
			return c
		},
	})
	spec := Spec{Graph: "g", K: 3, D: 1, Steps: 1600, Walkers: 1, Seed: 111}
	v, err := mgr1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if v, err = mgr1.Wait(ctx, v.ID); err != nil || v.State != StateDone {
		t.Fatalf("run: %+v, %v", v, err)
	}
	gated = true
	interrupted, err := mgr1.Submit(Spec{Graph: "g", K: 3, D: 1, Steps: 1700, Walkers: 1, Seed: 112})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, mgr1, interrupted.ID, StateRunning)
	mgr1.syncJournal() // flush the async queue, as the page cache would survive a SIGKILL
	// Crash without Close, then restart with "g" bound to different topology.
	regB := NewRegistry()
	if err := regB.Add("g", "inline", gen.PowerLawConfiguration(500, 2.5, 2, 60, 12)); err != nil {
		t.Fatal(err)
	}
	mgr2 := newTestManager(t, regB, Options{Workers: 1, MaxWalkers: 2, DataDir: dir})
	defer mgr2.Close()
	if st := mgr2.Stats(); st.WarmedResults != 0 {
		t.Fatalf("warmed %d results from a re-bound graph, want 0", st.WarmedResults)
	}
	if hit, err := mgr2.Submit(spec); err != nil || hit.Cached {
		t.Fatalf("submit on re-bound graph served a stale cached result: %+v, %v", hit, err)
	}
	got, ok := mgr2.Get(interrupted.ID)
	if !ok || got.State != StateFailed || !strings.Contains(got.Error, "not registered with the same topology") {
		t.Fatalf("interrupted job on re-bound graph: %+v (ok=%v), want clean failed", got, ok)
	}
}

// Sustained cache-hit traffic with a tiny segment size stays disk-bounded:
// compaction keeps the journal to a handful of segments, tracking the
// pruned job table instead of total request history.
func TestJournalCompactionBoundsDisk(t *testing.T) {
	dir := t.TempDir()
	reg := testRegistry(t)
	mgr := newTestManager(t, reg, Options{
		Workers: 1, MaxWalkers: 2, MaxJobs: 4, DataDir: dir,
		SegmentBytes: 2048, CompactSegments: 2,
	})
	spec := Spec{Graph: "hk", K: 3, D: 1, Steps: 1500, Walkers: 1, Seed: 61}
	v, err := mgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if v, err = mgr.Wait(ctx, v.ID); err != nil || v.State != StateDone {
		t.Fatalf("seed run: %+v, %v", v, err)
	}
	for i := 0; i < 60; i++ {
		if _, err := mgr.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	st := mgr.Stats()
	if st.JournalSegments > 3 {
		t.Fatalf("journal grew to %d segments under cache-hit traffic, want compaction to bound it", st.JournalSegments)
	}
	if st.Jobs > 4 {
		t.Fatalf("job table holds %d records, want <= 4", st.Jobs)
	}
	if st.JournalErrors != 0 {
		t.Fatalf("journal errors: %d", st.JournalErrors)
	}
	mgr.Close()

	// The compacted log still recovers the warm cache.
	mgr2 := newTestManager(t, reg, Options{Workers: 1, MaxWalkers: 2, DataDir: dir})
	defer mgr2.Close()
	if hit, err := mgr2.Submit(spec); err != nil || !hit.Cached {
		t.Fatalf("cache not warm after compaction: %+v, %v", hit, err)
	}
}

// A graph removed between submit and dispatch fails the queued job with a
// clean terminal state and an actionable message, purges the graph's cached
// results, and rejects new submissions.
func TestRemovedGraphFailsQueuedJobCleanly(t *testing.T) {
	reg := testRegistry(t)
	hk, _ := reg.Get("hk")
	gate := make(chan struct{})
	mgr := newTestManager(t, reg, Options{
		Workers: 1, MaxWalkers: 2,
		NewClient: func(g *graph.Graph) access.Client {
			c := access.NewGraphClient(g)
			if g == hk {
				return gatedClient{Client: c, gate: gate}
			}
			return c
		},
	})
	defer mgr.Close()
	srv := httptest.NewServer(NewServer(reg, mgr))
	defer srv.Close()

	// Seed the cache with a completed plc run.
	plcSpec := Spec{Graph: "plc", K: 3, D: 1, Steps: 1500, Walkers: 1, Seed: 71}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	v, err := mgr.Submit(plcSpec)
	if err != nil {
		t.Fatal(err)
	}
	if v, err = mgr.Wait(ctx, v.ID); err != nil || v.State != StateDone {
		t.Fatalf("seed run: %+v, %v", v, err)
	}

	// Block the single worker on an hk job, queue a plc job behind it.
	blocker, err := mgr.Submit(Spec{Graph: "hk", K: 3, D: 1, Steps: 1000, Walkers: 1, Seed: 72})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, mgr, blocker.ID, StateRunning)
	queued, err := mgr.Submit(Spec{Graph: "plc", K: 3, D: 1, Steps: 1700, Walkers: 1, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}

	// Remove the graph over HTTP while the job is still queued.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/graphs/plc", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var removed struct {
		Removed string `json:"removed"`
		Purged  int    `json:"purged_results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&removed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || removed.Purged != 1 {
		t.Fatalf("DELETE graph: status %d, %+v (want 1 purged cache entry)", resp.StatusCode, removed)
	}

	close(gate) // let the blocker finish; the queued plc job dispatches next
	final, err := mgr.Wait(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateFailed {
		t.Fatalf("job after graph removal: state %s (err %q), want a clean failed", final.State, final.Error)
	}
	if !strings.Contains(final.Error, "removed after this job was submitted") {
		t.Fatalf("unactionable error %q", final.Error)
	}

	// New submissions (even of the previously cached spec) are rejected up
	// front — validation runs before the cache, so no stale answer leaks.
	if _, err := mgr.Submit(plcSpec); err == nil || !strings.Contains(err.Error(), "unknown graph") {
		t.Fatalf("submit on removed graph: %v, want unknown-graph error", err)
	}
}

// Under a single worker, one long background job and later-submitted
// interactive/batch jobs dispatch in class order — interactive first — and
// the scheduling class never leaks into the cache key.
func TestPriorityClassesEndToEnd(t *testing.T) {
	reg := testRegistry(t)
	gate := make(chan struct{})
	mgr := newTestManager(t, reg, Options{
		Workers: 1, MaxWalkers: 2,
		NewClient: func(g *graph.Graph) access.Client {
			return gatedClient{Client: access.NewGraphClient(g), gate: gate}
		},
	})
	defer mgr.Close()

	blocker, err := mgr.Submit(Spec{Graph: "hk", K: 3, D: 1, Steps: 1000, Walkers: 1, Seed: 81})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the blocker to occupy the worker before queueing the
	// contenders: if one of them were already backlogged when the blocker
	// dispatched, the weighted-deficit accounting would (correctly) charge
	// the blocker's class for that head start and the strict class order
	// below would no longer be the guaranteed outcome.
	waitState(t, mgr, blocker.ID, StateRunning)
	// Queue order is deliberately worst-case: background first.
	bg, err := mgr.Submit(Spec{Graph: "hk", K: 3, D: 1, Steps: 60000, Walkers: 1, Seed: 82, Priority: PriorityBackground})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := mgr.Submit(Spec{Graph: "hk", K: 3, D: 1, Steps: 2000, Walkers: 1, Seed: 83, Priority: PriorityBatch})
	if err != nil {
		t.Fatal(err)
	}
	inter, err := mgr.Submit(Spec{Graph: "hk", K: 3, D: 1, Steps: 1000, Walkers: 1, Seed: 84, Priority: PriorityInteractive})
	if err != nil {
		t.Fatal(err)
	}
	close(gate)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	views := make(map[string]JobView)
	for _, id := range []string{blocker.ID, bg.ID, batch.ID, inter.ID} {
		v, err := mgr.Wait(ctx, id)
		if err != nil || v.State != StateDone {
			t.Fatalf("job %s: %+v, %v", id, v, err)
		}
		views[id] = v
	}
	if !views[inter.ID].StartedAt.Before(views[batch.ID].StartedAt) {
		t.Errorf("interactive started %v, after batch %v", views[inter.ID].StartedAt, views[batch.ID].StartedAt)
	}
	if !views[batch.ID].StartedAt.Before(views[bg.ID].StartedAt) {
		t.Errorf("batch started %v, after background %v", views[batch.ID].StartedAt, views[bg.ID].StartedAt)
	}

	// Priority is scheduling-only: an interactive re-ask of the background
	// spec hits the background run's cache entry.
	reask := Spec{Graph: "hk", K: 3, D: 1, Steps: 60000, Walkers: 1, Seed: 82, Priority: PriorityInteractive}
	if hit, err := mgr.Submit(reask); err != nil || !hit.Cached {
		t.Fatalf("cross-priority re-ask missed the cache: %+v, %v", hit, err)
	}

	// Unknown classes are rejected at admission.
	if _, err := mgr.Submit(Spec{Graph: "hk", K: 3, D: 1, Steps: 1000, Seed: 85, Priority: "urgent"}); err == nil ||
		!strings.Contains(err.Error(), "unknown priority") {
		t.Fatalf("bad priority: %v, want validation error", err)
	}
}

// A coalesced higher-priority submitter promotes the shared queued job.
func TestCoalescedSubmitterPromotes(t *testing.T) {
	reg := testRegistry(t)
	gate := make(chan struct{})
	mgr := newTestManager(t, reg, Options{
		Workers: 1, MaxWalkers: 2,
		NewClient: func(g *graph.Graph) access.Client {
			return gatedClient{Client: access.NewGraphClient(g), gate: gate}
		},
	})
	defer mgr.Close()

	blocker, err := mgr.Submit(Spec{Graph: "hk", K: 3, D: 1, Steps: 1000, Walkers: 1, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, mgr, blocker.ID, StateRunning)
	other, err := mgr.Submit(Spec{Graph: "hk", K: 3, D: 1, Steps: 1000, Walkers: 1, Seed: 92, Priority: PriorityBatch})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := mgr.Submit(Spec{Graph: "hk", K: 3, D: 1, Steps: 1000, Walkers: 1, Seed: 93, Priority: PriorityBackground})
	if err != nil {
		t.Fatal(err)
	}
	// Same spec at interactive priority: coalesces and promotes.
	boost := Spec{Graph: "hk", K: 3, D: 1, Steps: 1000, Walkers: 1, Seed: 93, Priority: PriorityInteractive}
	bv, err := mgr.Submit(boost)
	if err != nil {
		t.Fatal(err)
	}
	if bv.ID != shared.ID || bv.Coalesced != 2 {
		t.Fatalf("boost submission: %+v, want coalesced onto %s", bv, shared.ID)
	}
	if bv.Spec.Priority != PriorityInteractive {
		t.Fatalf("shared job priority %q after boost, want interactive", bv.Spec.Priority)
	}
	close(gate)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sharedV, err := mgr.Wait(ctx, shared.ID)
	if err != nil || sharedV.State != StateDone {
		t.Fatalf("shared job: %+v, %v", sharedV, err)
	}
	otherV, err := mgr.Wait(ctx, other.ID)
	if err != nil || otherV.State != StateDone {
		t.Fatalf("other job: %+v, %v", otherV, err)
	}
	if _, err := mgr.Wait(ctx, blocker.ID); err != nil {
		t.Fatal(err)
	}
	if !sharedV.StartedAt.Before(otherV.StartedAt) {
		t.Errorf("promoted job started %v, after the batch job %v", sharedV.StartedAt, otherV.StartedAt)
	}
}

// The SSE endpoint streams a snapshot, live checkpoints, and the terminal
// event for a running job, and 404s for unknown jobs.
func TestSSEEvents(t *testing.T) {
	reg := testRegistry(t)
	gate := make(chan struct{})
	mgr := newTestManager(t, reg, Options{
		Workers: 2, MaxWalkers: 2, SnapshotEvery: 250,
		NewClient: func(g *graph.Graph) access.Client {
			return gatedClient{Client: access.NewGraphClient(g), gate: gate}
		},
	})
	defer mgr.Close()
	srv := httptest.NewServer(NewServer(reg, mgr))
	defer srv.Close()

	view, status := postJob(t, srv.URL, Spec{Graph: "hk", K: 3, D: 1, Steps: 20000, Walkers: 1, Seed: 95})
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d", status)
	}
	// Connect the stream while the run is still gated, so the subscription
	// is in place before the first checkpoint fires.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	close(gate)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events: content type %q", ct)
	}

	var types []string
	var lastView JobView
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	current := ""
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			current = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			types = append(types, current)
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &lastView); err != nil {
				t.Fatalf("bad event payload: %v", err)
			}
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if len(types) < 2 || types[0] != "snapshot" {
		t.Fatalf("event types %v, want snapshot first and a terminal event", types)
	}
	if last := types[len(types)-1]; last != "done" {
		t.Fatalf("last event %q, want done", last)
	}
	checkpoints := 0
	for _, typ := range types {
		if typ == "checkpoint" {
			checkpoints++
		}
	}
	if checkpoints == 0 {
		t.Fatalf("no checkpoint events in %v", types)
	}
	if lastView.Result == nil || lastView.Result.Steps != 20000 {
		t.Fatalf("terminal event payload: %+v", lastView)
	}

	if resp, err := http.Get(srv.URL + "/v1/jobs/nope/events"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown job events: status %d, want 404", resp.StatusCode)
		}
	}
}

// Journaled job histories replay across many jobs without ID collisions and
// with the full terminal mix intact (done, failed, canceled).
func TestRecoveryTerminalMix(t *testing.T) {
	dir := t.TempDir()
	reg := testRegistry(t)
	mgr1 := newTestManager(t, reg, Options{Workers: 2, MaxWalkers: 2, DataDir: dir})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	done, err := mgr1.Submit(Spec{Graph: "hk", K: 3, D: 1, Steps: 1500, Walkers: 1, Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := mgr1.Wait(ctx, done.ID); err != nil || v.State != StateDone {
		t.Fatalf("done job: %+v, %v", v, err)
	}
	// A spec that fails mid-run: walkers > graph size is fine, so use an
	// unregistered-graph trick via removal instead — simpler: cancel one.
	canceled, err := mgr1.Submit(Spec{Graph: "plc", K: 4, D: 2, Steps: 5_000_000, Walkers: 1, Seed: 102})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, mgr1, canceled.ID, StateRunning)
	if _, err := mgr1.Cancel(canceled.ID); err != nil {
		t.Fatal(err)
	}
	if v, err := mgr1.Wait(ctx, canceled.ID); err != nil || v.State != StateCanceled {
		t.Fatalf("canceled job: %+v, %v", v, err)
	}
	mgr1.Close()

	mgr2 := newTestManager(t, reg, Options{Workers: 2, MaxWalkers: 2, DataDir: dir})
	defer mgr2.Close()
	if v, ok := mgr2.Get(done.ID); !ok || v.State != StateDone {
		t.Fatalf("done job after restart: %+v (ok=%v)", v, ok)
	}
	if v, ok := mgr2.Get(canceled.ID); !ok || v.State != StateCanceled {
		t.Fatalf("canceled job after restart: %+v (ok=%v)", v, ok)
	}
	if st := mgr2.Stats(); st.RecoveredJobs != 0 {
		t.Fatalf("recovered %d jobs after a clean shutdown, want 0", st.RecoveredJobs)
	}
}
