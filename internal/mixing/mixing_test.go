package mixing

import (
	"math"
	"testing"

	"repro/internal/gen"
)

func TestCompleteGraphGap(t *testing.T) {
	// K_n: non-lazy SRW eigenvalues are 1 and -1/(n-1); the lazy chain's
	// second eigenvalue is (1 - 1/(n-1))/2... for K5: orig λ2 = -1/4, all
	// non-top eigenvalues equal -1/4, lazy: (1-1/4)/2 = 0.375.
	r := Estimate(gen.Complete(5), 500, 1e-10)
	if math.Abs(r.Lambda2-0.375) > 1e-6 {
		t.Errorf("K5 lazy lambda2 = %f, want 0.375", r.Lambda2)
	}
	if math.Abs(r.PiMin-0.2) > 1e-12 {
		t.Errorf("K5 piMin = %f, want 0.2", r.PiMin)
	}
}

func TestCycleGapFormula(t *testing.T) {
	// C_n: SRW eigenvalues cos(2πk/n); λ2 = cos(2π/n); lazy (1+cos)/2.
	n := 16
	r := Estimate(gen.Cycle(n), 5000, 1e-12)
	want := (1 + math.Cos(2*math.Pi/float64(n))) / 2
	if math.Abs(r.Lambda2-want) > 1e-6 {
		t.Errorf("C%d lazy lambda2 = %f, want %f", n, r.Lambda2, want)
	}
}

func TestExpanderMixesFasterThanPath(t *testing.T) {
	expander := gen.RandomRegular(200, 6, 1)
	path := gen.Path(200)
	re := Estimate(expander, 2000, 1e-9)
	rp := Estimate(path, 2000, 1e-9)
	if re.MixingTime(1.0/8) >= rp.MixingTime(1.0/8) {
		t.Errorf("expander mixing %f >= path mixing %f", re.MixingTime(1.0/8), rp.MixingTime(1.0/8))
	}
}

func TestLollipopSlow(t *testing.T) {
	// The lollipop is a classic slow mixer; its relaxation time should beat
	// a comparable-size ER graph by a wide margin.
	lol := Estimate(gen.Lollipop(15, 30), 5000, 1e-9)
	er := Estimate(gen.ErdosRenyiGNM(45, 200, 3), 5000, 1e-9)
	if lol.RelaxationTime < 3*er.RelaxationTime {
		t.Errorf("lollipop t_rel %f not much larger than ER %f", lol.RelaxationTime, er.RelaxationTime)
	}
}

func TestDegenerateInputs(t *testing.T) {
	empty := Estimate(gen.Path(1), 100, 1e-9)
	if empty.RelaxationTime != 0 && !math.IsInf(empty.RelaxationTime, 1) {
		// A single node has no edges; Estimate returns the zero Result.
		t.Errorf("single-node result = %+v", empty)
	}
	var zero Result
	if !math.IsInf(zero.MixingTime(0.125), 1) {
		t.Error("zero result should give infinite mixing time")
	}
}

func TestMixingTimeMonotoneInEps(t *testing.T) {
	r := Estimate(gen.BarabasiAlbert(300, 3, 9), 2000, 1e-9)
	if !(r.MixingTime(1.0/8) < r.MixingTime(1.0/16)) {
		t.Error("smaller eps must need more steps")
	}
	if r.SpectralGap <= 0 || r.SpectralGap >= 1 {
		t.Errorf("gap = %f out of (0,1)", r.SpectralGap)
	}
}
