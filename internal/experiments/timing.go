package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/exact"
)

// Table6 reproduces the paper's Table 6: the wall-clock time of performing
// the walk-step budget with each method when estimating 5-node graphlet
// concentration, against exact enumeration. The absolute numbers are
// machine-specific; the reproduced shape is the ordering
// SRW2 << SRW2CSS < SRW3 << SRW4 << Exact (SRW3CSS is omitted like in the
// paper: its state-degree oracle is prohibitively slow).
func Table6(w io.Writer, p Params) {
	p = p.withDefaults()
	header(w, fmt.Sprintf("Table 6: running time of %d random walk steps (k=5)", p.Steps))
	methods := []core.Config{
		{K: 5, D: 2},
		{K: 5, D: 2, CSS: true},
		{K: 5, D: 3},
		{K: 5, D: 4},
	}
	fmt.Fprintf(w, "%-12s", "dataset")
	for _, m := range methods {
		fmt.Fprintf(w, "%14s", m.MethodName())
	}
	fmt.Fprintf(w, "%14s\n", "Exact")
	for _, d := range smallDatasets() {
		g := d.Graph()
		client := access.NewGraphClient(g)
		fmt.Fprintf(w, "%-12s", d.Name)
		for _, m := range methods {
			cfg := p.apply(m)
			cfg.Seed = 12345
			est, err := core.NewEstimator(client, cfg)
			if err != nil {
				panic(err)
			}
			start := time.Now()
			if _, err := est.Run(p.Steps); err != nil {
				panic(err)
			}
			fmt.Fprintf(w, "%14s", time.Since(start).Round(time.Microsecond*100).String())
		}
		start := time.Now()
		exact.CountESU(g, 5)
		fmt.Fprintf(w, "%14s\n", time.Since(start).Round(time.Millisecond).String())
	}
	fmt.Fprintln(w, "\npaper shape: SRW2 ~20ms, SRW2CSS ~3-6x SRW2, SRW3 ~10-25x SRW2,")
	fmt.Fprintln(w, "SRW4 ~1000x SRW2, Exact orders of magnitude beyond")
}
