// Command graphlet-api serves a graph through the restricted-access crawl
// API (see internal/apiserver), so estimation can be demonstrated across a
// real network boundary:
//
//	graphlet-api -dataset facebook -addr :8080
//	graphlet-api -graph g.txt -addr :8080
//
// then, from another process, crawl it:
//
//	est, _ := core.NewEstimator(apiserver.NewClient("http://127.0.0.1:8080", nil), cfg)
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"repro/internal/apiserver"
	"repro/internal/datasets"
	"repro/internal/graph"
)

func main() {
	var (
		path    = flag.String("graph", "", "edge list file")
		dataset = flag.String("dataset", "", "stand-in dataset name")
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address")
		seed    = flag.Int64("seed", 1, "seed for /v1/nodes/random")
	)
	flag.Parse()

	var g *graph.Graph
	switch {
	case *path != "":
		loaded, err := graph.LoadEdgeList(*path)
		if err != nil {
			fail(err)
		}
		g, _ = graph.LargestComponent(loaded)
	case *dataset != "":
		d, err := datasets.Get(*dataset)
		if err != nil {
			fail(err)
		}
		g = d.Graph()
	default:
		flag.Usage()
		os.Exit(2)
	}

	fmt.Printf("serving %d nodes, %d edges on http://%s\n", g.NumNodes(), g.NumEdges(), *addr)
	if err := http.ListenAndServe(*addr, apiserver.NewHandler(g, *seed)); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "graphlet-api:", err)
	os.Exit(1)
}
