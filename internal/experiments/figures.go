package experiments

import (
	"fmt"
	"io"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/graphlet"
	"repro/internal/stats"
)

// fig4Methods lists the method sets of Figure 4 per graphlet size.
var (
	fig4MethodsK3 = []core.Config{
		{K: 3, D: 1},
		{K: 3, D: 1, CSS: true},
		{K: 3, D: 1, CSS: true, NB: true},
		{K: 3, D: 2},
		{K: 3, D: 2, NB: true},
	}
	fig4MethodsK4 = []core.Config{
		{K: 4, D: 2},
		{K: 4, D: 2, CSS: true},
		{K: 4, D: 3},
	}
	fig4MethodsK5 = []core.Config{
		{K: 5, D: 2},
		{K: 5, D: 2, CSS: true},
		{K: 5, D: 3},
		{K: 5, D: 4},
	}
)

// Fig4 reproduces Figure 4: the NRMSE of the clique concentration estimates
// (triangle, 4-clique, 5-clique — the rarest and hardest types) for every
// method in the framework, at the paper's 20K-step budget.
func Fig4(w io.Writer, p Params) {
	p = p.withDefaults()
	header(w, fmt.Sprintf("Figure 4: NRMSE of concentration estimates (steps=%d, trials=%d)", p.Steps, p.Trials))

	fmt.Fprintln(w, "\n(a) triangle concentration c32 — all datasets")
	fig4Block(w, p, allDatasets(), fig4MethodsK3, 3, 1)

	fmt.Fprintln(w, "\n(b) 4-clique concentration c46 — all datasets")
	fig4Block(w, p, allDatasets(), fig4MethodsK4, 4, 5)

	fmt.Fprintln(w, "\n(c) 5-clique concentration c521 — small datasets (exact 5-node ground truth)")
	fig4Block(w, p, smallDatasets(), fig4MethodsK5, 5, 20)
}

func fig4Block(w io.Writer, p Params, ds []datasets.Dataset, methods []core.Config, k, idx int) {
	fmt.Fprintf(w, "%-12s", "dataset")
	for _, m := range methods {
		fmt.Fprintf(w, "%12s", m.MethodName())
	}
	fmt.Fprintln(w)
	for _, d := range ds {
		g := d.Graph()
		truth, err := d.Concentration(k)
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(w, "%-12s", d.Name)
		for _, m := range methods {
			trials := p.Trials
			if m.D >= 4 {
				// The paper also reduces SRW4 repetitions (100 vs 1000).
				trials = max(3, p.Trials/10)
			}
			nrmse := methodNRMSE(g, p.apply(m), p.Steps, trials, truth, idx)
			fmt.Fprintf(w, "%12s", fmtF(nrmse))
		}
		fmt.Fprintln(w)
	}
}

// Fig5 reproduces Figure 5 on the Epinion stand-in: the weighted
// concentration α_i·C_i/Σ_j α_j·C_j of each 4-node graphlet under SRW2 and
// SRW3 versus the original concentration, and the per-type NRMSE that it
// explains (rare types with low weighted concentration estimate poorly).
func Fig5(w io.Writer, p Params) {
	p = p.withDefaults()
	d, err := datasets.Get("epinion")
	if err != nil {
		panic(err)
	}
	g := d.Graph()
	counts, err := d.GroundTruth(4)
	if err != nil {
		panic(err)
	}
	fcounts := make([]float64, len(counts))
	for i, c := range counts {
		fcounts[i] = float64(c)
	}
	truth, _ := d.Concentration(4)

	header(w, fmt.Sprintf("Figure 5: weighted concentration vs accuracy (epinion stand-in, steps=%d, trials=%d)", p.Steps, p.Trials))
	w2 := core.WeightedConcentration(4, 2, fcounts)
	w3 := core.WeightedConcentration(4, 3, fcounts)
	fmt.Fprintf(w, "\n(a) weighted concentration\n%-20s %12s %12s %12s\n", "graphlet", "original", "SRW2", "SRW3")
	for i, gl := range graphlet.Catalog(4) {
		fmt.Fprintf(w, "g4_%d %-15s %12s %12s %12s\n", gl.ID, gl.Name, fmtF(truth[i]), fmtF(w2[i]), fmtF(w3[i]))
	}

	fmt.Fprintf(w, "\n(b) NRMSE per graphlet type\n%-20s %12s %12s %12s\n", "graphlet", "SRW3", "SRW2", "SRW2CSS")
	methods := []core.Config{{K: 4, D: 3}, {K: 4, D: 2}, {K: 4, D: 2, CSS: true}}
	results := make([][]float64, len(methods))
	for mi, m := range methods {
		tr := methodTrials(g, p.apply(m), p.Steps, p.Trials)
		results[mi] = stats.NRMSEPerType(tr, truth)
	}
	for i, gl := range graphlet.Catalog(4) {
		fmt.Fprintf(w, "g4_%d %-15s %12s %12s %12s\n", gl.ID, gl.Name,
			fmtF(results[0][i]), fmtF(results[1][i]), fmtF(results[2][i]))
	}
}

// Fig6 reproduces Figure 6: convergence of the clique-concentration NRMSE as
// the sample size grows from Steps/10 to Steps, on the paper's representative
// dataset pairs.
func Fig6(w io.Writer, p Params) {
	p = p.withDefaults()
	header(w, fmt.Sprintf("Figure 6: convergence of the estimates (up to %d steps, trials=%d)", p.Steps, p.Trials))

	fmt.Fprintln(w, "\n(a) triangle — twitter & sinaweibo stand-ins")
	for _, name := range []string{"twitter", "sinaweibo"} {
		fig6Block(w, p, name, fig4MethodsK3, 3, 1)
	}
	fmt.Fprintln(w, "\n(b) 4-clique — pokec & flickr stand-ins")
	for _, name := range []string{"pokec", "flickr"} {
		fig6Block(w, p, name, fig4MethodsK4, 4, 5)
	}
	fmt.Fprintln(w, "\n(c) 5-clique — epinion & slashdot stand-ins")
	for _, name := range []string{"epinion", "slashdot"} {
		fig6Block(w, p, name, fig4MethodsK5, 5, 20)
	}
}

func fig6Block(w io.Writer, p Params, name string, methods []core.Config, k, idx int) {
	d, err := datasets.Get(name)
	if err != nil {
		panic(err)
	}
	g := d.Graph()
	truth, err := d.Concentration(k)
	if err != nil {
		panic(err)
	}
	every := p.Steps / 10
	if every == 0 {
		every = 1
	}
	client := access.NewGraphClient(g)

	fmt.Fprintf(w, "\n%s (truth %s)\n%-10s", name, fmtF(truth[idx]), "steps")
	for _, m := range methods {
		fmt.Fprintf(w, "%12s", m.MethodName())
	}
	fmt.Fprintln(w)
	series := make([][]float64, len(methods)) // [method][checkpoint] = NRMSE
	for mi, m := range methods {
		m := m
		trials := p.Trials
		if m.D >= 4 {
			trials = max(3, p.Trials/10)
		}
		points := stats.RunTrialsWorkers(trials, trialWorkers(p.Walkers), func(trial int) []float64 {
			cfg := p.apply(m)
			cfg.Seed = int64(7919*trial + 31*mi + 1)
			est, err := core.NewEstimator(client, cfg)
			if err != nil {
				panic(err)
			}
			var pts []float64
			if _, err := est.RunCheckpoints(p.Steps, every, func(step int, conc []float64) {
				pts = append(pts, conc[idx])
			}); err != nil {
				panic(err)
			}
			return pts
		})
		series[mi] = stats.ConvergenceSeries(points, truth[idx])
	}
	for s := 0; s < p.Steps/every; s++ {
		fmt.Fprintf(w, "%-10d", (s+1)*every)
		for mi := range methods {
			fmt.Fprintf(w, "%12s", fmtF(series[mi][s]))
		}
		fmt.Fprintln(w)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
