package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/access"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/stats"
)

// Fig7 reproduces Figure 7: count-estimation accuracy against the
// full-access state of the art at equal running time — (a) triangle counts:
// SRW1CSSNB vs wedge sampling [32] with 200K wedges; (b) 4-clique counts:
// SRW2CSS vs 3-path sampling [14] with 200K paths. The walk's step budget is
// calibrated so one walk trial costs the same wall time as one baseline
// trial (including the baseline's preprocessing, which is what sinks it on
// large graphs).
func Fig7(w io.Writer, p Params) {
	p = p.withDefaults()
	baselineSamples := p.Steps * 10 // paper: 200K samples vs 20K steps
	header(w, fmt.Sprintf("Figure 7: count estimation at equal running time (baseline samples=%d, trials=%d)", baselineSamples, p.Trials))

	fmt.Fprintln(w, "\n(a) triangle count: SRW1CSSNB vs wedge sampling")
	fmt.Fprintf(w, "%-12s %12s %12s %14s %10s\n", "dataset", "SRW1CSSNB", "Wedge", "walk steps", "c32")
	for _, d := range allDatasets() {
		g := d.Graph()
		truth, err := d.GroundTruth(3)
		if err != nil {
			panic(err)
		}
		truthTri := float64(truth[1])

		// Baseline: time one trial (preprocess + samples).
		start := time.Now()
		ws := baseline.NewWedgeSampler(g)
		ws.Sample(baselineSamples, rand.New(rand.NewSource(1)))
		perTrial := time.Since(start)

		wedgeEst := stats.RunTrials(p.Trials, func(trial int) []float64 {
			rng := rand.New(rand.NewSource(int64(31 * (trial + 1))))
			return []float64{baseline.NewWedgeSampler(g).Sample(baselineSamples, rng).TriangleCount()}
		})
		wedgeNRMSE := stats.NRMSEOfComponent(wedgeEst, []float64{truthTri}, 0)

		// Walk: calibrate steps to the same wall time. The calibration probe
		// runs with the configured walker ensemble, so parallel walkers buy a
		// proportionally larger step budget at equal wall time.
		cfg := p.apply(core.Config{K: 3, D: 1, CSS: true, NB: true})
		steps := calibrateSteps(g, cfg, perTrial)
		twoR := core.TwoR(g, 1)
		walkEst := runCountTrials(g, cfg, steps, p.Trials, twoR, 1)
		walkNRMSE := stats.NRMSEOfComponent(walkEst, []float64{truthTri}, 0)

		fmt.Fprintf(w, "%-12s %12s %12s %14d %10s\n",
			d.Name, fmtF(walkNRMSE), fmtF(wedgeNRMSE), steps, fmtF(mustConc(d, 3)[1]))
	}
	fmt.Fprintln(w, "paper shape: Wedge wins only on the highest-c32 graphs; the walk wins elsewhere")

	fmt.Fprintln(w, "\n(b) 4-clique count: SRW2CSS vs 3-path sampling")
	fmt.Fprintf(w, "%-12s %12s %12s %14s\n", "dataset", "SRW2CSS", "3-path", "walk steps")
	for _, d := range allDatasets() {
		g := d.Graph()
		truth, err := d.GroundTruth(4)
		if err != nil {
			panic(err)
		}
		truthK4 := float64(truth[5])
		if truthK4 == 0 {
			continue
		}
		start := time.Now()
		ps := baseline.NewPathSampler(g)
		ps.Sample(baselineSamples, rand.New(rand.NewSource(1)))
		perTrial := time.Since(start)

		pathEst := stats.RunTrials(p.Trials, func(trial int) []float64 {
			rng := rand.New(rand.NewSource(int64(37 * (trial + 1))))
			return []float64{baseline.NewPathSampler(g).Sample(baselineSamples, rng).Counts()[5]}
		})
		pathNRMSE := stats.NRMSEOfComponent(pathEst, []float64{truthK4}, 0)

		cfg := p.apply(core.Config{K: 4, D: 2, CSS: true})
		steps := calibrateSteps(g, cfg, perTrial)
		twoR := core.TwoR(g, 2)
		walkEst := runCountTrials(g, cfg, steps, p.Trials, twoR, 5)
		walkNRMSE := stats.NRMSEOfComponent(walkEst, []float64{truthK4}, 0)

		fmt.Fprintf(w, "%-12s %12s %12s %14d\n", d.Name, fmtF(walkNRMSE), fmtF(pathNRMSE), steps)
	}
	fmt.Fprintln(w, "paper shape: 3-path competitive on small graphs, the walk wins on the largest")
}

func mustConc(d datasets.Dataset, k int) []float64 {
	c, err := d.Concentration(k)
	if err != nil {
		panic(err)
	}
	return c
}

// calibrateSteps measures the walk's per-step cost with a short probe and
// returns the step count fitting the time budget (bounded to a sane range).
func calibrateSteps(g *graph.Graph, cfg core.Config, budget time.Duration) int {
	client := access.NewGraphClient(g)
	probe := 4000
	c := cfg
	c.Seed = 42
	est, err := core.NewEstimator(client, c)
	if err != nil {
		panic(err)
	}
	start := time.Now()
	if _, err := est.Run(probe); err != nil {
		panic(err)
	}
	perStep := time.Since(start) / time.Duration(probe)
	if perStep <= 0 {
		perStep = time.Nanosecond
	}
	steps := int(budget / perStep)
	if steps < 1000 {
		steps = 1000
	}
	if steps > 2_000_000 {
		steps = 2_000_000
	}
	return steps
}

// runCountTrials runs count-estimation trials (Equation 4) and returns the
// per-trial estimate of component idx.
func runCountTrials(g *graph.Graph, cfg core.Config, steps, trials int, twoR float64, idx int) [][]float64 {
	client := access.NewGraphClient(g)
	return stats.RunTrialsWorkers(trials, trialWorkers(cfg.Walkers), func(trial int) []float64 {
		c := cfg
		c.Seed = int64(104729*trial + 7)
		est, err := core.NewEstimator(client, c)
		if err != nil {
			panic(err)
		}
		res, err := est.Run(steps)
		if err != nil {
			panic(err)
		}
		return []float64{res.Counts(twoR)[idx]}
	})
}

// Fig8 reproduces Figure 8: the triangle-concentration accuracy of
// SRW1CSSNB against the adapted wedge sampling Wedge-MHRW (Algorithm 4) at
// the same number of random-walk steps, plus convergence on the two largest
// stand-ins. Wedge-MHRW additionally pays ~3x the API cost per step.
func Fig8(w io.Writer, p Params) {
	p = p.withDefaults()
	header(w, fmt.Sprintf("Figure 8: SRW1CSSNB vs Wedge-MHRW (steps=%d, trials=%d)", p.Steps, p.Trials))
	fmt.Fprintf(w, "\n(a) accuracy\n%-12s %14s %14s\n", "dataset", "SRW1CSSNB", "Wedge-MHRW")
	for _, d := range allDatasets() {
		g := d.Graph()
		truth := mustConc(d, 3)
		cfg := p.apply(core.Config{K: 3, D: 1, CSS: true, NB: true})
		walkNRMSE := methodNRMSE(g, cfg, p.Steps, p.Trials, truth, 1)
		mhrwTrials := mhrwTrials(g, p.Steps, p.Trials)
		mhrwNRMSE := stats.NRMSEOfComponent(mhrwTrials, truth, 1)
		fmt.Fprintf(w, "%-12s %14s %14s\n", d.Name, fmtF(walkNRMSE), fmtF(mhrwNRMSE))
	}

	fmt.Fprintln(w, "\n(b) convergence on the two largest stand-ins")
	for _, name := range []string{"twitter", "sinaweibo"} {
		d, err := datasets.Get(name)
		if err != nil {
			panic(err)
		}
		g := d.Graph()
		truth := mustConc(d, 3)
		every := p.Steps / 10
		if every == 0 {
			every = 1
		}
		fmt.Fprintf(w, "\n%s\n%-10s %14s %14s\n", name, "steps", "SRW1CSSNB", "Wedge-MHRW")
		client := access.NewGraphClient(g)
		walkPts := stats.RunTrialsWorkers(p.Trials, trialWorkers(p.Walkers), func(trial int) []float64 {
			cfg := p.apply(core.Config{K: 3, D: 1, CSS: true, NB: true, Seed: int64(7907*trial + 3)})
			est, err := core.NewEstimator(client, cfg)
			if err != nil {
				panic(err)
			}
			var pts []float64
			if _, err := est.RunCheckpoints(p.Steps, every, func(step int, conc []float64) {
				pts = append(pts, conc[1])
			}); err != nil {
				panic(err)
			}
			return pts
		})
		mhrwPts := stats.RunTrials(p.Trials, func(trial int) []float64 {
			rng := rand.New(rand.NewSource(int64(7919*trial + 5)))
			mh := baseline.NewWedgeMHRW(client, rng)
			var pts []float64
			var agg baseline.MHRWResult
			for s := 0; s < p.Steps; s += every {
				r := mh.Run(every)
				agg.Open += r.Open
				agg.Closed += r.Closed
				pts = append(pts, agg.Concentration()[1])
			}
			return pts
		})
		walkSeries := stats.ConvergenceSeries(walkPts, truth[1])
		mhrwSeries := stats.ConvergenceSeries(mhrwPts, truth[1])
		for s := range walkSeries {
			fmt.Fprintf(w, "%-10d %14s %14s\n", (s+1)*every, fmtF(walkSeries[s]), fmtF(mhrwSeries[s]))
		}
	}
}

func mhrwTrials(g *graph.Graph, steps, trials int) [][]float64 {
	client := access.NewGraphClient(g)
	return stats.RunTrials(trials, func(trial int) []float64 {
		rng := rand.New(rand.NewSource(int64(6007*trial + 11)))
		return baseline.NewWedgeMHRW(client, rng).Run(steps).Concentration()
	})
}

// Table7 reproduces the paper's Table 7: the 4-node graphlet-kernel
// similarity of the Sinaweibo stand-in to the Facebook (social network) and
// Twitter (news medium) stand-ins, estimated by SRW2CSS and PSRW (= SRW3)
// against the exact value.
func Table7(w io.Writer, p Params) {
	p = p.withDefaults()
	trials := p.Trials / 2
	if trials < 4 {
		trials = 4
	}
	header(w, fmt.Sprintf("Table 7: similarity of sinaweibo to facebook / twitter (steps=%d, sims=%d)", p.Steps, trials))

	names := []string{"facebook", "twitter", "sinaweibo"}
	methods := []core.Config{{K: 4, D: 2, CSS: true}, {K: 4, D: 3}}
	est := map[string][][]float64{} // name -> method -> trials of concentration
	for _, name := range names {
		d, err := datasets.Get(name)
		if err != nil {
			panic(err)
		}
		g := d.Graph()
		for mi, m := range methods {
			key := fmt.Sprintf("%s-%d", name, mi)
			est[key] = methodTrials(g, p.apply(m), p.Steps, trials)
		}
	}
	exactConc := map[string][]float64{}
	for _, name := range names {
		d, _ := datasets.Get(name)
		exactConc[name] = mustConc(d, 4)
	}

	fmt.Fprintf(w, "%-10s %18s %18s %10s\n", "graph", "SRW2CSS", "PSRW(SRW3)", "Exact")
	for _, other := range []string{"facebook", "twitter"} {
		fmt.Fprintf(w, "%-10s", other)
		for mi := range methods {
			sims := make([]float64, trials)
			for t := 0; t < trials; t++ {
				sims[t] = kernel.Cosine(
					est[fmt.Sprintf("sinaweibo-%d", mi)][t],
					est[fmt.Sprintf("%s-%d", other, mi)][t],
				)
			}
			fmt.Fprintf(w, "   %.4f±%.4f", stats.Mean(sims), stats.StdDev(sims))
		}
		fmt.Fprintf(w, "%10.4f\n", kernel.Cosine(exactConc["sinaweibo"], exactConc[other]))
	}
	fmt.Fprintln(w, "\npaper shape: sinaweibo ~0.99 similar to twitter, ~0.58 to facebook")
}
