// Package exact computes exact graphlet counts, serving as the ground truth
// for every NRMSE in the evaluation and as the "Exact" column of Table 6.
//
// The reference algorithm is ESU (Wernicke's FANMOD enumeration), which
// visits every connected induced k-node subgraph exactly once; it is
// parallelized over root nodes and allocation-free per subgraph. Independent
// fast paths — triangle/wedge counting and the formula-based 4-node counter —
// cross-check it and scale to the larger stand-in datasets.
package exact

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/graphlet"
)

// CountESU enumerates all connected induced k-node subgraphs of g with the
// ESU algorithm and returns the count of each graphlet type in paper order.
// It runs on all CPUs. Nodes are first relabeled by ascending degree so that
// hub-centered subgraphs root at their low-degree members: without this, a
// single root owns the ~C(deg_hub, k-1) subgraphs around each hub and the
// parallel speedup collapses.
func CountESU(g *graph.Graph, k int) []int64 {
	return countESUWorkers(byDegree(g), k, runtime.GOMAXPROCS(0))
}

// CountESUSerial is the single-threaded variant (tests, determinism checks).
func CountESUSerial(g *graph.Graph, k int) []int64 {
	return countESUWorkers(byDegree(g), k, 1)
}

// byDegree relabels nodes in ascending-degree order (stable on ties).
func byDegree(g *graph.Graph) *graph.Graph {
	n := g.NumNodes()
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sortByDegree(order, g)
	newID := make([]int32, n)
	for rank, v := range order {
		newID[v] = int32(rank)
	}
	b := graph.NewBuilder(n)
	g.Edges(func(u, v int32) bool {
		b.AddEdge(newID[u], newID[v])
		return true
	})
	return b.Build()
}

func sortByDegree(order []int32, g *graph.Graph) {
	// Counting sort by degree: O(n + maxDeg), deterministic.
	maxd := g.MaxDegree()
	buckets := make([][]int32, maxd+1)
	for _, v := range order {
		d := g.Degree(v)
		buckets[d] = append(buckets[d], v)
	}
	i := 0
	for d := 0; d <= maxd; d++ {
		for _, v := range buckets[d] {
			order[i] = v
			i++
		}
	}
}

func countESUWorkers(g *graph.Graph, k int, workers int) []int64 {
	n := g.NumNodes()
	types := graphlet.Count(k)
	if workers < 1 {
		workers = 1
	}
	results := make([][]int64, workers)
	var next int64
	var wg sync.WaitGroup
	const chunk = 64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e := newEnumerator(g, k, types)
			for {
				lo := atomic.AddInt64(&next, chunk) - chunk
				if lo >= int64(n) {
					break
				}
				hi := lo + chunk
				if hi > int64(n) {
					hi = int64(n)
				}
				for v := lo; v < hi; v++ {
					e.enumerateRoot(int32(v))
				}
			}
			results[w] = e.counts
		}(w)
	}
	wg.Wait()
	total := make([]int64, types)
	for _, r := range results {
		for i, c := range r {
			total[i] += c
		}
	}
	return total
}

// enumerator holds per-worker ESU state. All buffers are preallocated; the
// hot path performs no heap allocation.
type enumerator struct {
	g      *graph.Graph
	k      int
	counts []int64

	sub     [5]int32 // current subgraph nodes, sub[0] = root
	adjBits [5]uint8 // adjBits[t] bit j: sub[t] adjacent to sub[j], j < t
	// The candidate set at each depth is a rope of segments: the surviving
	// prefixes of ancestor candidate lists plus this depth's exclusive
	// neighbors. Segments are never copied, only re-sliced, so hub nodes do
	// not pay quadratic candidate-copy costs.
	added   [6][]int32 // exclusive neighbors discovered at each depth
	segs    [6][]seg   // candidate rope per depth
	visited []bool     // root ∪ subgraph ∪ seen extension candidates

	// pairPos maps a node-index pair to its code bit, mirroring
	// graphlet.Pairs(k).
	pairPos [5][5]uint
}

func newEnumerator(g *graph.Graph, k, types int) *enumerator {
	e := &enumerator{
		g:       g,
		k:       k,
		counts:  make([]int64, types),
		visited: make([]bool, g.NumNodes()),
	}
	for bit, p := range graphlet.Pairs(k) {
		e.pairPos[p[0]][p[1]] = uint(bit)
		e.pairPos[p[1]][p[0]] = uint(bit)
	}
	return e
}

// seg is one contiguous run of candidate nodes.
type seg struct{ s []int32 }

// enumerateRoot runs ESU from root v: all enumerated subgraphs have v as
// their minimum node, guaranteeing each subgraph is visited exactly once.
func (e *enumerator) enumerateRoot(v int32) {
	add := e.added[0][:0]
	e.visited[v] = true
	for _, u := range e.g.Neighbors(v) {
		if u > v {
			add = append(add, u)
			e.visited[u] = true
		}
	}
	e.added[0] = add
	e.sub[0] = v
	e.adjBits[0] = 0
	segs := e.segs[0][:0]
	if len(add) > 0 {
		segs = append(segs, seg{add})
	}
	e.segs[0] = segs
	e.extend(1, segs)
	e.visited[v] = false
	for _, u := range add {
		e.visited[u] = false
	}
}

// extend grows the subgraph from depth nodes using the candidate rope.
// Each candidate w (taken from the back of the rope) branches with the
// candidates before it plus the exclusive neighbors of w (unvisited nodes
// > root). Prefixes are expressed by re-slicing segments — never copying.
func (e *enumerator) extend(depth int, rope []seg) {
	root := e.sub[0]
	last := depth == e.k-1
	for si := len(rope) - 1; si >= 0; si-- {
		cands := rope[si].s
		for i := len(cands) - 1; i >= 0; i-- {
			w := cands[i]
			// Incremental adjacency of w to the current subgraph.
			var bits uint8
			for t := 0; t < depth; t++ {
				if e.g.HasEdge(w, e.sub[t]) {
					bits |= 1 << uint(t)
				}
			}
			e.sub[depth] = w
			e.adjBits[depth] = bits
			if last {
				e.classify()
				continue
			}
			// Exclusive neighbors of w.
			add := e.added[depth][:0]
			for _, u := range e.g.Neighbors(w) {
				if u > root && !e.visited[u] {
					add = append(add, u)
					e.visited[u] = true
				}
			}
			e.added[depth] = add
			// Branch rope: segments before si, the prefix of cands, and add.
			branch := e.segs[depth][:0]
			branch = append(branch, rope[:si]...)
			if i > 0 {
				branch = append(branch, seg{cands[:i]})
			}
			if len(add) > 0 {
				branch = append(branch, seg{add})
			}
			e.segs[depth] = branch[:0] // retain capacity
			e.extend(depth+1, branch)
			for _, u := range add {
				e.visited[u] = false
			}
		}
	}
}

// classify assembles the subgraph code from the incremental adjacency bits.
func (e *enumerator) classify() {
	var code uint16
	for t := 1; t < e.k; t++ {
		bits := e.adjBits[t]
		for j := 0; j < t; j++ {
			if bits&(1<<uint(j)) != 0 {
				code |= 1 << e.pairPos[t][j]
			}
		}
	}
	e.counts[graphlet.ClassifyCode(e.k, code)]++
}

// Concentrations converts counts to the concentration vector c^k.
func Concentrations(counts []int64) []float64 {
	var sum int64
	for _, c := range counts {
		sum += c
	}
	out := make([]float64, len(counts))
	if sum == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(sum)
	}
	return out
}
