// Command graphlet-pack converts a graph into the .gcsr binary CSR format,
// the store behind graphletd's instant daemon starts and the zero-copy mmap
// load path: pack once, then every open is milliseconds instead of an
// edge-list re-parse.
//
// Usage:
//
//	graphlet-pack -in graph.txt -out graph.gcsr [-lcc=false] [-verify]
//	graphlet-pack -dataset epinion -out epinion.gcsr
//
// By default the largest connected component is extracted before packing
// (the paper's preprocessing, and what lets the daemon serve the file
// straight from the mapping); -lcc=false packs the input as-is. -verify
// re-opens the written file through the mmap path and validates every
// structural invariant.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/datasets"
	"repro/internal/graph"
)

func main() {
	var (
		in      = flag.String("in", "", "input graph file (edge list or .gcsr)")
		format  = flag.String("format", "auto", "input format: auto|edgelist|gcsr")
		dataset = flag.String("dataset", "", "pack a stand-in dataset instead of a file")
		out     = flag.String("out", "", "output .gcsr file (required)")
		lcc     = flag.Bool("lcc", true, "extract the largest connected component before packing")
		verify  = flag.Bool("verify", false, "re-open the output via mmap and validate it")
	)
	flag.Parse()
	if *out == "" || (*in == "") == (*dataset == "") {
		fmt.Fprintln(os.Stderr, "graphlet-pack: need -out and exactly one of -in / -dataset")
		flag.Usage()
		os.Exit(2)
	}

	start := time.Now()
	var g *graph.Graph
	switch {
	case *dataset != "":
		d, err := datasets.Get(*dataset)
		if err != nil {
			fail(err)
		}
		g = d.Graph() // already the LCC
	default:
		f, err := graph.ParseFormat(*format)
		if err != nil {
			fail(err)
		}
		loaded, err := graph.OpenFile(*in, f)
		if err != nil {
			fail(err)
		}
		g = loaded
		if *lcc {
			g, _ = graph.LargestComponent(loaded)
		}
	}
	loadTime := time.Since(start)

	start = time.Now()
	if err := graph.Save(*out, g); err != nil {
		fail(err)
	}
	saveTime := time.Since(start)

	st, err := os.Stat(*out)
	if err != nil {
		fail(err)
	}
	fmt.Printf("packed %d nodes, %d edges (max degree %d) -> %s (%d bytes)\n",
		g.NumNodes(), g.NumEdges(), g.MaxDegree(), *out, st.Size())
	fmt.Printf("load %s, pack %s\n", loadTime.Round(time.Millisecond), saveTime.Round(time.Millisecond))

	if *verify {
		start = time.Now()
		m, err := graph.OpenMapped(*out)
		if err != nil {
			fail(fmt.Errorf("verify: %w", err))
		}
		if err := graph.Validate(m); err != nil {
			fail(fmt.Errorf("verify: %w", err))
		}
		if m.NumNodes() != g.NumNodes() || m.NumEdges() != g.NumEdges() || m.MaxDegree() != g.MaxDegree() {
			fail(fmt.Errorf("verify: reopened graph %v differs from packed %v", m, g))
		}
		m.Close()
		fmt.Printf("verified via mmap in %s\n", time.Since(start).Round(time.Millisecond))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "graphlet-pack:", err)
	os.Exit(1)
}
