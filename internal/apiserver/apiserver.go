// Package apiserver makes the paper's restricted-access scenario literal: it
// serves a graph through the kind of HTTP API an OSN exposes (fetch a user's
// friend list, test a friendship) and provides an access.Client that crawls
// through that API — so the estimators demonstrably work over a network
// boundary with no bulk access to the topology.
//
// Endpoints (JSON):
//
//	GET /v1/nodes/{id}/neighbors  -> {"id":7,"degree":3,"neighbors":[1,5,9]}
//	GET /v1/nodes/random          -> {"id":42}
//	GET /v1/edge?u=1&v=5          -> {"exists":true}
//
// The handler deliberately does NOT expose node or edge counts in bulk,
// matching the paper's assumption that only local information is crawlable.
package apiserver

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/graph"
)

// Handler serves the crawl API for one graph.
type Handler struct {
	g *graph.Graph

	mu  sync.Mutex
	rng *rand.Rand
}

// NewHandler builds the API handler; seed drives /nodes/random.
func NewHandler(g *graph.Graph, seed int64) *Handler {
	return &Handler{g: g, rng: rand.New(rand.NewSource(seed))}
}

type neighborsResponse struct {
	ID        int32   `json:"id"`
	Degree    int     `json:"degree"`
	Neighbors []int32 `json:"neighbors"`
}

type randomNodeResponse struct {
	ID int32 `json:"id"`
}

type edgeResponse struct {
	Exists bool `json:"exists"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/v1/nodes/random":
		h.mu.Lock()
		id := h.g.RandomNode(h.rng)
		h.mu.Unlock()
		writeJSON(w, http.StatusOK, randomNodeResponse{ID: id})
	case strings.HasPrefix(r.URL.Path, "/v1/nodes/") && strings.HasSuffix(r.URL.Path, "/neighbors"):
		idStr := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/v1/nodes/"), "/neighbors")
		id, err := strconv.ParseInt(idStr, 10, 32)
		if err != nil || id < 0 || int(id) >= h.g.NumNodes() {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown node %q", idStr)})
			return
		}
		v := int32(id)
		writeJSON(w, http.StatusOK, neighborsResponse{
			ID:        v,
			Degree:    h.g.Degree(v),
			Neighbors: h.g.Neighbors(v),
		})
	case r.URL.Path == "/v1/edge":
		u, err1 := strconv.ParseInt(r.URL.Query().Get("u"), 10, 32)
		v, err2 := strconv.ParseInt(r.URL.Query().Get("v"), 10, 32)
		if err1 != nil || err2 != nil ||
			u < 0 || int(u) >= h.g.NumNodes() || v < 0 || int(v) >= h.g.NumNodes() {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad u/v"})
			return
		}
		writeJSON(w, http.StatusOK, edgeResponse{Exists: h.g.HasEdge(int32(u), int32(v))})
	default:
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "not found"})
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}
