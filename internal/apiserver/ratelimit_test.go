package apiserver

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
)

// The bucket enforces the steady rate: after the burst is spent, n waits at
// qps tokens/sec take at least (n-burst)/qps seconds.
func TestTokenBucketRate(t *testing.T) {
	const qps, burst, n = 500.0, 1, 26
	tb := NewTokenBucket(qps, burst)
	start := time.Now()
	for i := 0; i < n; i++ {
		tb.Wait()
	}
	elapsed := time.Since(start)
	// n waits consume burst free tokens and n-burst refills. Allow 20% slack
	// for timer coarseness in the lower bound.
	minWant := time.Duration(float64(n-burst) / qps * float64(time.Second) * 8 / 10)
	if elapsed < minWant {
		t.Errorf("%d waits at %v qps took %v, want >= %v", n, qps, elapsed, minWant)
	}
}

// Concurrent waiters each get a token; total elapsed time still respects the
// rate (run under -race this also exercises bucket thread safety).
func TestTokenBucketConcurrent(t *testing.T) {
	const qps, burst, n = 1000.0, 1, 30
	tb := NewTokenBucket(qps, burst)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tb.Wait()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	minWant := time.Duration(float64(n-burst) / qps * float64(time.Second) * 8 / 10)
	if elapsed < minWant {
		t.Errorf("%d concurrent waits took %v, want >= %v", n, elapsed, minWant)
	}
}

// The middleware throttles a burst of HTTP requests without rejecting any.
func TestRateLimitMiddleware(t *testing.T) {
	g := gen.Complete(5)
	h := RateLimit(NewHandler(g, 1), 400, 1)
	srv := httptest.NewServer(h)
	defer srv.Close()

	const n = 12
	start := time.Now()
	for i := 0; i < n; i++ {
		resp, err := http.Get(srv.URL + "/v1/nodes/0/neighbors")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200 (limiter must delay, not reject)", i, resp.StatusCode)
		}
	}
	elapsed := time.Since(start)
	minWant := time.Duration(float64(n-1) / 400 * float64(time.Second) * 8 / 10)
	if elapsed < minWant {
		t.Errorf("%d limited requests took %v, want >= %v", n, elapsed, minWant)
	}
}

// qps <= 0 must be a passthrough (no bucket allocated, no delay).
func TestRateLimitDisabled(t *testing.T) {
	base := NewHandler(gen.Complete(3), 1)
	if h := RateLimit(base, 0, 1); h != http.Handler(base) {
		t.Error("RateLimit(h, 0, _) should return h unchanged")
	}
}

// A cancelled context aborts a throttled wait immediately and refunds the
// reservation to the bucket.
func TestTokenBucketWaitContext(t *testing.T) {
	tb := NewTokenBucket(0.5, 1) // one token, then 2s per refill
	tb.Wait()                    // drain the burst
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if tb.WaitContext(ctx) {
		t.Fatal("WaitContext succeeded on a cancelled context")
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("cancelled wait blocked for %v", elapsed)
	}
	// The abandoned reservation was refunded: a fresh wait needs at most one
	// refill interval, not two.
	done := make(chan struct{})
	go func() { tb.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("refunded token not honored within one refill interval")
	}
}
