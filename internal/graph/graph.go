// Package graph provides the undirected simple-graph substrate used by the
// whole repository: a compact adjacency representation with sorted neighbor
// lists, fast edge probes (O(1) bitset rows for hub nodes, O(log d) binary
// search otherwise), largest-connected-component extraction, edge-list I/O
// and a binary CSR on-disk format (.gcsr) with a zero-copy mmap open path.
//
// Nodes are dense int32 identifiers in [0, N). Graphs are immutable once
// built; construction goes through Builder, Load or OpenMapped.
package graph

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Graph is an immutable undirected simple graph. Neighbor lists are sorted
// ascending, enabling binary-search edge probes and linear-merge set
// intersection.
type Graph struct {
	// CSR layout: neighbors of v are adj[off[v]:off[v+1]]. For graphs opened
	// with OpenMapped both slices alias the mapped file.
	off []int64
	adj []int32
	m   int64 // number of undirected edges
	// maxDeg is computed once at Build time; MaxDegree sits on estimator
	// setup paths (walk-space sizing, ESU scratch allocation) and must not
	// rescan all nodes per call.
	maxDeg int

	// Hub acceleration: the highest-degree nodes (within a memory budget,
	// see buildHubIndex) get a dense adjacency bitset row, turning HasEdge
	// probes against them into one bit test instead of a binary search.
	// hubIdx[v] is the row of v, or -1; rows are hubStride words wide.
	hubIdx    []int32
	hubRows   []uint64
	hubStride int

	// arcSrc caches the arc→source-node lookup behind RandomEdge; it is
	// built lazily on first use (pay-for-use: only edge-sampling workloads
	// need the extra 4 bytes/arc).
	arcOnce sync.Once
	arcSrc  []int32

	// blocks serves neighbor rows of a block-compressed (.gcsr v2) graph
	// through the bounded decode cache; nil for raw-CSR graphs, whose rows
	// come straight from adj. When blocks is non-nil, adj is nil and off is
	// a heap-synthesized prefix-sum array (Degree stays O(1) either way).
	blocks *blockStore

	// origIDs maps dense node IDs back to the source IDs they were packed
	// from (nil when the mapping was not kept).
	origIDs []int64

	// unmap releases the mmap backing of a graph opened with OpenMapped.
	unmap func() error
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.off) - 1 }

// NumEdges returns the number of undirected edges |E|.
func (g *Graph) NumEdges() int64 { return g.m }

// Degree returns the degree of node v.
func (g *Graph) Degree(v int32) int {
	return int(g.off[v+1] - g.off[v])
}

// Neighbors returns the sorted neighbor list of v. The returned slice aliases
// internal storage and must not be modified. For block-compressed graphs the
// row is served from the decode cache; a warm row costs one atomic load more
// than the raw-CSR slice expression and allocates nothing.
func (g *Graph) Neighbors(v int32) []int32 {
	if g.blocks != nil {
		return g.blocks.row(v)
	}
	return g.adj[g.off[v]:g.off[v+1]]
}

// Neighbor returns the i-th neighbor of v (0-based, sorted order).
func (g *Graph) Neighbor(v int32, i int) int32 {
	if g.blocks != nil {
		return g.blocks.row(v)[i]
	}
	return g.adj[g.off[v]+int64(i)]
}

// HasEdge reports whether the undirected edge (u, v) exists. Self loops never
// exist in a simple graph. The probe is one bit test when either endpoint is
// a hub, and a binary search of the smaller adjacency list otherwise.
func (g *Graph) HasEdge(u, v int32) bool {
	if u == v {
		return false
	}
	// Probe the smaller adjacency list; v ends up as the higher-degree
	// endpoint, the one that can own a hub bitset row.
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	if g.hubIdx != nil {
		if r := g.hubIdx[v]; r >= 0 {
			w := g.hubRows[int(r)*g.hubStride+int(u>>6)]
			return w>>(uint(u)&63)&1 == 1
		}
	}
	n := g.Neighbors(u)
	i := sort.Search(len(n), func(i int) bool { return n[i] >= v })
	return i < len(n) && n[i] == v
}

// hubDegreeFloor is the minimum degree for a hub bitset row: below it the
// binary search is only a handful of steps and a row would waste memory.
const hubDegreeFloor = 64

// buildHubIndex assigns dense adjacency bitset rows to the highest-degree
// nodes, spending at most as many bytes on rows as the adj array itself
// occupies (with a 1 MiB floor so small graphs index their hubs too). The
// threshold is chosen from the degree histogram: the smallest degree t >=
// hubDegreeFloor whose nodes all fit in the budget. Called once from every
// construction path (Builder.Build, ReadBinary, OpenMapped); the index is a
// derived in-memory structure, never persisted.
func (g *Graph) buildHubIndex() {
	n := g.NumNodes()
	if n == 0 || g.maxDeg < hubDegreeFloor {
		return
	}
	stride := (n + 63) >> 6
	rowBytes := stride * 8
	// Budget rows against the raw adjacency size (4 bytes/arc) whether the
	// arcs are stored raw (v1) or block-compressed (v2) — the bitset value
	// is the same either way.
	budget := int(2*g.m) * 4
	if budget < 1<<20 {
		budget = 1 << 20
	}
	maxRows := budget / rowBytes
	if maxRows == 0 {
		return
	}
	hist := make([]int32, g.maxDeg+1)
	for v := 0; v < n; v++ {
		if d := g.Degree(int32(v)); d >= hubDegreeFloor {
			hist[d]++
		}
	}
	rows, threshold := 0, -1
	for d := g.maxDeg; d >= hubDegreeFloor; d-- {
		if rows+int(hist[d]) > maxRows {
			break
		}
		rows += int(hist[d])
		threshold = d
	}
	if threshold < 0 || rows == 0 {
		return
	}
	g.hubStride = stride
	g.hubRows = make([]uint64, rows*stride)
	g.hubIdx = make([]int32, n)
	next := int32(0)
	for v := 0; v < n; v++ {
		if g.Degree(int32(v)) < threshold {
			g.hubIdx[v] = -1
			continue
		}
		g.hubIdx[v] = next
		row := g.hubRows[int(next)*stride : (int(next)+1)*stride]
		for _, u := range g.Neighbors(int32(v)) {
			row[u>>6] |= 1 << (uint(u) & 63)
		}
		next++
	}
}

// IsHub reports whether v owns an adjacency bitset row (O(1) HasEdge
// probes). Exposed for tests and benchmarks.
func (g *Graph) IsHub(v int32) bool {
	return g.hubIdx != nil && g.hubIdx[v] >= 0
}

// Mapped reports whether the graph's storage aliases an mmap'd file.
func (g *Graph) Mapped() bool { return g.unmap != nil }

// Close releases the mmap backing of a graph opened with OpenMapped and is a
// no-op for heap-backed graphs. A mapped graph must not be used after Close;
// the internal slices are nilled so use-after-close fails fast instead of
// faulting on unmapped pages.
func (g *Graph) Close() error {
	if g.unmap == nil {
		return nil
	}
	unmap := g.unmap
	g.unmap = nil
	g.off, g.adj = nil, nil
	g.hubIdx, g.hubRows = nil, nil
	g.blocks, g.origIDs = nil, nil
	return unmap()
}

// RandomNode returns a uniformly random node. It panics on an empty graph.
func (g *Graph) RandomNode(rng *rand.Rand) int32 {
	return int32(rng.Intn(g.NumNodes()))
}

// RandomNeighbor returns a uniformly random neighbor of v, or (-1, false) if v
// is isolated.
func (g *Graph) RandomNeighbor(v int32, rng *rand.Rand) (int32, bool) {
	d := g.Degree(v)
	if d == 0 {
		return -1, false
	}
	return g.Neighbor(v, rng.Intn(d)), true
}

// RandomEdge returns a uniformly random undirected edge (u < v). It uses the
// flattened directed-arc array, so each undirected edge is equally likely.
// The arc→source lookup table is built on first call, making every
// subsequent draw O(1) instead of an O(log n) binary search over off.
func (g *Graph) RandomEdge(rng *rand.Rand) (int32, int32) {
	if g.m == 0 {
		panic("graph: RandomEdge on edgeless graph")
	}
	// Pick a random directed arc; its (source, target) is a uniform edge
	// because each undirected edge contributes exactly two arcs.
	a := rng.Int63n(2 * g.m)
	u := g.arcSource(a)
	v := g.Neighbor(u, int(a-g.off[u]))
	if u > v {
		u, v = v, u
	}
	return u, v
}

// arcSource returns the source node of directed arc index a.
func (g *Graph) arcSource(a int64) int32 {
	g.arcOnce.Do(g.buildArcIndex)
	return g.arcSrc[a]
}

// buildArcIndex materializes the arc→source table (4 bytes per arc).
func (g *Graph) buildArcIndex() {
	src := make([]int32, 2*g.m)
	for v := 0; v < g.NumNodes(); v++ {
		lo, hi := g.off[v], g.off[v+1]
		for a := lo; a < hi; a++ {
			src[a] = int32(v)
		}
	}
	g.arcSrc = src
}

// Edges calls fn for every undirected edge (u < v). Iteration stops early if
// fn returns false.
func (g *Graph) Edges(fn func(u, v int32) bool) {
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		for _, v := range g.Neighbors(u) {
			if v <= u {
				continue
			}
			if !fn(u, v) {
				return
			}
		}
	}
}

// MaxDegree returns the maximum degree in the graph (0 for an empty graph).
// The value is cached at Build time, so the call is O(1).
func (g *Graph) MaxDegree() int { return g.maxDeg }

// BlockCompressed reports whether neighbor rows are served from a
// block-compressed (.gcsr v2) backing through the decode cache.
func (g *Graph) BlockCompressed() bool { return g.blocks != nil }

// BlockCacheStats returns a snapshot of the decoded-block cache. ok is
// false for graphs without a block-compressed backing.
func (g *Graph) BlockCacheStats() (stats BlockCacheStats, ok bool) {
	if g.blocks == nil {
		return BlockCacheStats{}, false
	}
	return g.blocks.stats(), true
}

// HasOriginalIDs reports whether the dense→source node ID mapping was kept
// when the graph was packed.
func (g *Graph) HasOriginalIDs() bool { return g.origIDs != nil }

// OriginalID returns the source ID node v was packed from, or v itself when
// no mapping was kept (dense IDs are then the caller's IDs).
func (g *Graph) OriginalID(v int32) int64 {
	if g.origIDs == nil {
		return int64(v)
	}
	return g.origIDs[v]
}

// OriginalIDs returns the dense→source ID mapping, or nil when none was
// kept. The slice aliases internal storage and must not be modified.
func (g *Graph) OriginalIDs() []int64 { return g.origIDs }

// SetOriginalIDs attaches a dense→source ID mapping (len must equal
// NumNodes). Used by packers and by sidecar loading; pass nil to detach.
func (g *Graph) SetOriginalIDs(ids []int64) error {
	if ids != nil && len(ids) != g.NumNodes() {
		return fmt.Errorf("graph: %d original IDs for %d nodes", len(ids), g.NumNodes())
	}
	g.origIDs = ids
	return nil
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.NumNodes(), g.m)
}

// gallopSkew is the length ratio beyond which CommonNeighbors switches from
// the linear merge to galloping search: with |b| >> |a| the merge is
// O(|a|+|b|) while galloping is O(|a| log(|b|/|a|)).
const gallopSkew = 16

// CommonNeighbors returns the number of common neighbors of u and v: a
// linear merge of the two sorted lists, or galloping search of the longer
// list when the lengths are skewed.
func (g *Graph) CommonNeighbors(u, v int32) int {
	a, b := g.Neighbors(u), g.Neighbors(v)
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b) >= gallopSkew*len(a) {
		c := 0
		lo := 0
		for _, x := range a {
			lo += gallopSearch(b[lo:], x)
			if lo >= len(b) {
				break
			}
			if b[lo] == x {
				c++
				lo++
			}
		}
		return c
	}
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// CommonNeighborsInto appends the common neighbors of u and v to dst (in
// ascending order) and returns the extended slice.
func (g *Graph) CommonNeighborsInto(dst []int32, u, v int32) []int32 {
	a, b := g.Neighbors(u), g.Neighbors(v)
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b) >= gallopSkew*len(a) {
		lo := 0
		for _, x := range a {
			lo += gallopSearch(b[lo:], x)
			if lo >= len(b) {
				break
			}
			if b[lo] == x {
				dst = append(dst, x)
				lo++
			}
		}
		return dst
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// gallopSearch returns the index of the first element of b >= x, probing
// exponentially from the front and binary-searching the final window — O(log
// k) where k is the returned index, which is what makes skewed intersections
// cheap when consecutive probes land close together.
func gallopSearch(b []int32, x int32) int {
	if len(b) == 0 || b[0] >= x {
		return 0
	}
	hi := 1
	for hi < len(b) && b[hi] < x {
		hi <<= 1
	}
	lo := hi >> 1
	if hi > len(b) {
		hi = len(b)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// DegreeHistogram returns a map from degree to the number of nodes with that
// degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for v := 0; v < g.NumNodes(); v++ {
		h[g.Degree(int32(v))]++
	}
	return h
}
