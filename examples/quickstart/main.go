// Command quickstart demonstrates the library's core loop in one page:
// generate a graph, estimate 3- and 4-node graphlet concentrations with a
// 20K-step random walk, and compare against the exact values.
package main

import (
	"fmt"

	graphletrw "repro"
	"repro/internal/gen"
)

func main() {
	// A Facebook-like synthetic network: power-law degrees, high clustering.
	g := gen.HolmeKim(5000, 4, 0.7, 42)
	lcc, _ := graphletrw.LargestComponent(g)
	fmt.Printf("graph: %d nodes, %d edges\n\n", lcc.NumNodes(), lcc.NumEdges())

	client := graphletrw.NewClient(lcc)

	// 3-node graphlets: the paper's best method is SRW1CSSNB — a walk on G
	// itself with corresponding-state sampling and no backtracking.
	res, err := graphletrw.Estimate(client, graphletrw.Config{
		K: 3, D: 1, CSS: true, NB: true, Seed: 1,
	}, 20000)
	if err != nil {
		panic(err)
	}
	exact3 := graphletrw.ExactConcentration(lcc, 3)
	fmt.Println("3-node graphlet concentration (20K walk steps, SRW1CSSNB):")
	printComparison(3, res.Concentration(), exact3)

	// 4-node graphlets: the paper recommends SRW2CSS (walk on the line
	// graph G(2) with CSS). Walkers: 8 splits the budget across eight
	// concurrent walks whose merged estimate is exact and reproducible.
	res4, err := graphletrw.Estimate(client, graphletrw.Config{
		K: 4, D: 2, CSS: true, Seed: 1, Walkers: 8,
	}, 20000)
	if err != nil {
		panic(err)
	}
	exact4 := graphletrw.ExactConcentration(lcc, 4)
	fmt.Println("\n4-node graphlet concentration (20K walk steps, SRW2CSS):")
	printComparison(4, res4.Concentration(), exact4)

	fmt.Printf("\nvalid samples: %d of %d windows\n", res4.ValidSamples, res4.Steps)
}

func printComparison(k int, est, exact []float64) {
	fmt.Printf("  %-16s %12s %12s\n", "graphlet", "estimated", "exact")
	for i, g := range graphletrw.Catalog(k) {
		fmt.Printf("  g%d_%-2d %-10s %12.5f %12.5f\n", k, g.ID, g.Name, est[i], exact[i])
	}
}
