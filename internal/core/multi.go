package core

import (
	"fmt"
	"math/rand"

	"repro/internal/access"
	"repro/internal/graphlet"
	"repro/internal/walk"
)

// MultiEstimator estimates the concentrations of several graphlet sizes
// simultaneously from a single random walk on G(d) — the joint-estimation
// idea behind MSS [36], generalized to this framework: a window of
// l_k = k-d+1 consecutive states is maintained per target size k, and each
// size re-weights its own samples exactly as the single-size estimator does.
// One walk's API cost therefore buys every size's estimate at once.
type MultiEstimator struct {
	client access.Client
	space  walk.Space
	rng    *rand.Rand
	d      int
	css    bool
	nb     bool

	sizes []int
	maxL  int

	// Ring of the last maxL states and their degrees.
	win    []walk.State
	degs   []int
	filled int
	ring   int

	scratchNodes []int32
	scratchChain []int32
}

// MultiConfig configures a MultiEstimator.
type MultiConfig struct {
	// Sizes lists the target graphlet sizes, each in 3..5 and >= D.
	Sizes []int
	// D is the shared walk order (>= 1, <= min(Sizes)).
	D int
	// CSS and NB enable the §4 optimizations for every size (CSS applies
	// where l > 2).
	CSS, NB bool
	Seed    int64
}

// Validate checks the configuration.
func (c MultiConfig) Validate() error {
	if len(c.Sizes) == 0 {
		return fmt.Errorf("core: MultiConfig needs at least one size")
	}
	for _, k := range c.Sizes {
		if k < 3 || k > graphlet.MaxK {
			return fmt.Errorf("core: size %d out of range 3..%d", k, graphlet.MaxK)
		}
		if c.D > k {
			return fmt.Errorf("core: D=%d exceeds size %d", c.D, k)
		}
	}
	if c.D < 1 {
		return fmt.Errorf("core: D=%d out of range", c.D)
	}
	return nil
}

// NewMultiEstimator builds the joint estimator.
func NewMultiEstimator(client access.Client, cfg MultiConfig) (*MultiEstimator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	maxL := 0
	for _, k := range cfg.Sizes {
		if l := k - cfg.D + 1; l > maxL {
			maxL = l
		}
	}
	return &MultiEstimator{
		client: client,
		space:  walk.NewSpace(client, cfg.D),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		d:      cfg.D,
		css:    cfg.CSS,
		nb:     cfg.NB,
		sizes:  append([]int(nil), cfg.Sizes...),
		maxL:   maxL,
		win:    make([]walk.State, maxL),
		degs:   make([]int, maxL),
	}, nil
}

// MultiResult holds one Result per requested size, keyed by k.
type MultiResult struct {
	Steps   int
	Results map[int]*Result
}

// Run advances the walk for n steps and accumulates every size's estimate.
func (m *MultiEstimator) Run(n int) (*MultiResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: non-positive sample budget %d", n)
	}
	out := &MultiResult{Steps: n, Results: map[int]*Result{}}
	for _, k := range m.sizes {
		out.Results[k] = &Result{
			Config:     Config{K: k, D: m.d, CSS: m.css, NB: m.nb},
			Steps:      n,
			Weights:    make([]float64, graphlet.Count(k)),
			TypeCounts: make([]int64, graphlet.Count(k)),
		}
	}
	w := walk.New(m.space, m.nb, m.rng)
	m.filled = 0
	m.ring = 0
	m.push(w.Current())
	for m.filled < m.maxL {
		m.push(w.Step())
	}
	for t := 0; t < n; t++ {
		for _, k := range m.sizes {
			if err := m.accumulateSize(k, out.Results[k]); err != nil {
				return nil, err
			}
		}
		m.push(w.Step())
	}
	return out, nil
}

func (m *MultiEstimator) push(s walk.State) {
	if m.filled < m.maxL {
		m.win[m.filled] = s
		m.degs[m.filled] = m.space.StateDegree(s)
		m.filled++
		return
	}
	m.win[m.ring] = s
	m.degs[m.ring] = m.space.StateDegree(s)
	m.ring = (m.ring + 1) % m.maxL
}

// windowAt returns the i-th most recent state (i = 0 oldest within a window
// of length l ending at the newest state).
func (m *MultiEstimator) windowFor(l int) func(i int) (walk.State, int) {
	offset := m.maxL - l
	return func(i int) (walk.State, int) {
		j := (m.ring + offset + i) % m.maxL
		return m.win[j], m.degs[j]
	}
}

func (m *MultiEstimator) accumulateSize(k int, res *Result) error {
	l := k - m.d + 1
	at := m.windowFor(l)
	nodes := m.scratchNodes[:0]
	for i := 0; i < l; i++ {
		s, _ := at(i)
		for j := 0; j < s.Len(); j++ {
			x := s.Node(j)
			seen := false
			for _, y := range nodes {
				if y == x {
					seen = true
					break
				}
			}
			if !seen {
				nodes = append(nodes, x)
			}
		}
	}
	m.scratchNodes = nodes
	if len(nodes) != k {
		return nil
	}
	res.ValidSamples++
	code := graphlet.CodeOf(k, func(i, j int) bool {
		return m.client.HasEdge(nodes[i], nodes[j])
	})
	typ := graphlet.ClassifyCode(k, code)
	if typ < 0 {
		return fmt.Errorf("core: multi window %v disconnected", nodes)
	}
	res.TypeCounts[typ]++

	var weight float64
	if m.css && l > 2 {
		p := samplingProbabilityWith(m.client, m.space, k, m.d, m.nb, nodes, &m.scratchChain)
		if p <= 0 {
			return fmt.Errorf("core: multi zero sampling probability")
		}
		weight = 1 / p
	} else {
		alpha := graphlet.Alpha(k, m.d, typ+1)
		if alpha == 0 {
			return fmt.Errorf("core: multi walk produced type g%d_%d with alpha=0", k, typ+1)
		}
		pie := 1.0
		switch {
		case l == 1:
			_, deg := at(0)
			pie = float64(deg)
		case l > 2:
			for i := 1; i < l-1; i++ {
				_, deg := at(i)
				if m.nb {
					deg = nominal(deg)
				}
				pie *= 1 / float64(deg)
			}
		}
		weight = 1 / (float64(alpha) * pie)
	}
	res.Weights[typ] += weight
	return nil
}
