package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// newObservedServer wires a manager and HTTP server the way cmd/graphletd
// does: shared obs registry, Trace front door with the RoutePattern label,
// and a Health that is already ready.
func newObservedServer(t *testing.T, opts Options) (*Manager, *obs.Registry, *httptest.Server) {
	t.Helper()
	metrics := obs.NewRegistry()
	opts.Metrics = metrics
	reg := testRegistry(t)
	mgr := newTestManager(t, reg, opts)
	t.Cleanup(mgr.Close)
	api := NewServer(reg, mgr)
	health := obs.NewHealth("starting")
	health.SetReady()
	api.Health = health
	handler := obs.Trace(api, obs.TraceOptions{
		Metrics: obs.NewHTTPMetrics(metrics, "graphletd"),
		PathLabel: func(r *http.Request) string {
			return RoutePattern(r.URL.Path)
		},
	})
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	return mgr, metrics, srv
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("GET /metrics Content-Type = %q; want %q", ct, obs.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts one sample value from an exposition (series must be
// present exactly as prefixed, e.g. `graphletd_runs_total` or
// `graphletd_jobs_total{state="done"}`).
func metricValue(t *testing.T, text, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			var v float64
			if _, err := fmtSscan(rest, &v); err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in exposition:\n%s", series, text)
	return 0
}

func fmtSscan(s string, v *float64) (int, error) {
	var err error
	*v, err = parseFloatForTest(s)
	if err != nil {
		return 0, err
	}
	return 1, nil
}

func parseFloatForTest(s string) (float64, error) {
	var v float64
	err := json.Unmarshal([]byte(strings.TrimSpace(s)), &v)
	return v, err
}

// TestMetricsEndToEnd drives a job through the daemon's full front door and
// checks that every layer reported: HTTP metrics, job lifecycle, scheduler
// wait histograms, cache counters, walk-engine counters, and the /v1/stats
// view derived from the same registry.
func TestMetricsEndToEnd(t *testing.T) {
	_, _, srv := newObservedServer(t, Options{Workers: 2, MaxWalkers: 2})

	spec := Spec{Graph: "hk", K: 4, D: 2, CSS: true, Steps: 6000, Walkers: 2, Seed: 7}
	view, status := postJob(t, srv.URL, spec)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d", status)
	}
	done := pollDone(t, srv.URL, view.ID)
	if done.State != StateDone {
		t.Fatalf("job finished %s: %s", done.State, done.Error)
	}

	// Same spec again: a cache hit, answered 200 without a second run.
	if _, status := postJob(t, srv.URL, spec); status != http.StatusOK {
		t.Fatalf("cache-hit submit: status %d", status)
	}

	text := scrape(t, srv.URL)
	checks := map[string]float64{
		`graphletd_jobs_total{state="submitted"}`: 2,
		`graphletd_jobs_total{state="done"}`:      2,
		`graphletd_runs_total`:                    1,
		`graphletd_cache_hits_total`:              1,
		`graphletd_cache_misses_total`:            1,
		`graphletd_cache_entries`:                 1,
		`graphletd_jobs_active`:                   0,
		`graphletd_graphs{source="inline"}`:       2,
	}
	for series, want := range checks {
		if got := metricValue(t, text, series); got != want {
			t.Errorf("%s = %v; want %v", series, got, want)
		}
	}
	// Histograms observed the run: one dispatch in the batch class.
	if got := metricValue(t, text, `graphletd_queue_wait_seconds_count{class="batch"}`); got != 1 {
		t.Errorf("queue_wait count = %v; want 1", got)
	}
	if !strings.Contains(text, `graphletd_queue_wait_seconds_bucket{class="batch",le="+Inf"} 1`) {
		t.Error("queue_wait +Inf bucket missing or wrong")
	}
	if got := metricValue(t, text, `graphletd_run_duration_seconds_count{class="batch"}`); got != 1 {
		t.Errorf("run_duration count = %v; want 1", got)
	}
	// The walk engine accumulated the full step budget at checkpoint barriers.
	if got := metricValue(t, text, `graphletd_walk_steps_total`); got != float64(spec.Steps) {
		t.Errorf("walk_steps_total = %v; want %v", got, spec.Steps)
	}
	if got := metricValue(t, text, `graphletd_walk_checkpoints_total`); got < 1 {
		t.Errorf("walk_checkpoints_total = %v; want >= 1", got)
	}
	// HTTP layer: the submit requests were counted under the route template.
	if got := metricValue(t, text, `graphletd_http_requests_total{method="POST",path="/v1/jobs",code="202"}`); got != 1 {
		t.Errorf("POST 202 count = %v; want 1", got)
	}
	if got := metricValue(t, text, `graphletd_http_requests_total{method="POST",path="/v1/jobs",code="200"}`); got != 1 {
		t.Errorf("POST 200 (cache hit) count = %v; want 1", got)
	}

	// /v1/stats is derived from the same registry: the numbers must agree.
	st := getStats(t, srv.URL)
	if st.Runs != 1 || st.CacheHits != 1 || st.CacheSize != 1 {
		t.Errorf("stats runs/hits/size = %d/%d/%d; want 1/1/1", st.Runs, st.CacheHits, st.CacheSize)
	}
	qw, ok := st.QueueWait["batch"]
	if !ok {
		t.Fatalf("stats queue_wait_seconds missing batch class: %+v", st.QueueWait)
	}
	if qw.Count != 1 || qw.P50 < 0 || qw.P99 < qw.P50 {
		t.Errorf("queue-wait summary incoherent: %+v", qw)
	}
}

// TestRequestIDEndToEnd follows one X-Request-Id from submission through
// job views and the SSE stream.
func TestRequestIDEndToEnd(t *testing.T) {
	_, _, srv := newObservedServer(t, Options{Workers: 1, MaxWalkers: 1})

	const rid = "trace-me-42"
	body, _ := json.Marshal(Spec{Graph: "hk", K: 4, D: 2, CSS: true, Steps: 4000, Walkers: 1, Seed: 3})
	req, _ := http.NewRequest("POST", srv.URL+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set(obs.RequestIDHeader, rid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get(obs.RequestIDHeader); got != rid {
		t.Errorf("response echoed request ID %q; want %q", got, rid)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if view.RequestID != rid {
		t.Errorf("submit response RequestID = %q; want %q", view.RequestID, rid)
	}

	// Polls (different requests, different IDs) still report the submitting
	// request's ID on the job.
	if got := getJob(t, srv.URL, view.ID); got.RequestID != rid {
		t.Errorf("polled RequestID = %q; want %q", got.RequestID, rid)
	}

	// The SSE stream works through the Trace wrapper (Flusher preserved) and
	// every event's JobView carries the ID.
	sseResp, err := http.Get(srv.URL + "/v1/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	if got := sseResp.Header.Get("Content-Type"); got != "text/event-stream" {
		t.Fatalf("SSE Content-Type = %q", got)
	}
	sc := bufio.NewScanner(sseResp.Body)
	events := 0
	deadline := time.After(60 * time.Second)
	lines := make(chan string)
	go func() {
		defer close(lines)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
scan:
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				break scan
			}
			data, isData := strings.CutPrefix(line, "data: ")
			if !isData {
				continue
			}
			var ev JobView
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("bad SSE data %q: %v", data, err)
			}
			if ev.RequestID != rid {
				t.Errorf("SSE event RequestID = %q; want %q", ev.RequestID, rid)
			}
			events++
			if ev.State.terminal() {
				break scan
			}
		case <-deadline:
			t.Fatal("SSE stream did not reach a terminal event")
		}
	}
	if events == 0 {
		t.Fatal("no SSE events received")
	}

	// A request with no client ID gets a generated one.
	resp2, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get(obs.RequestIDHeader); !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(got) {
		t.Errorf("generated request ID %q is not 16 hex chars", got)
	}
}

// TestHealthEndpoints exercises /healthz and /readyz through the server.
func TestHealthEndpoints(t *testing.T) {
	metrics := obs.NewRegistry()
	reg := testRegistry(t)
	mgr := newTestManager(t, reg, Options{Workers: 1, MaxWalkers: 1, Metrics: metrics})
	defer mgr.Close()
	api := NewServer(reg, mgr)
	health := obs.NewHealth("replaying journal")
	api.Health = health
	srv := httptest.NewServer(api)
	defer srv.Close()

	get := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d; want 200", code)
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz before ready = %d; want 503", code)
	}
	health.SetReady()
	if code := get("/readyz"); code != http.StatusOK {
		t.Errorf("/readyz after ready = %d; want 200", code)
	}
	// A server with no Health wired (tests, embedded use) is always ready.
	api.Health = nil
	if code := get("/readyz"); code != http.StatusOK {
		t.Errorf("/readyz with nil Health = %d; want 200", code)
	}
}

// TestMetricsWithoutSharedRegistry: a manager built with no Options.Metrics
// still keeps correct stats via its private registry.
func TestPrivateRegistryStats(t *testing.T) {
	reg := testRegistry(t)
	mgr := newTestManager(t, reg, Options{Workers: 1, MaxWalkers: 1})
	defer mgr.Close()
	view, err := mgr.Submit(Spec{Graph: "hk", K: 4, D: 2, CSS: true, Steps: 2000, Walkers: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok := mgr.Get(view.ID); ok && v.State.terminal() {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := mgr.Stats()
	if st.Runs != 1 || st.Jobs != 1 {
		t.Errorf("private-registry stats runs/jobs = %d/%d; want 1/1", st.Runs, st.Jobs)
	}
}

// TestRoutePattern pins the route templates metrics labels use.
func TestRoutePattern(t *testing.T) {
	cases := map[string]string{
		"/v1/jobs":             "/v1/jobs",
		"/v1/jobs/":            "/v1/jobs",
		"/v1/jobs/j-17":        "/v1/jobs/{id}",
		"/v1/jobs/j-17/events": "/v1/jobs/{id}/events",
		"/v1/graphs":           "/v1/graphs",
		"/v1/graphs/hk":        "/v1/graphs/{name}",
		"/v1/stats":            "/v1/stats",
		"/metrics":             "/metrics",
		"/healthz":             "/healthz",
		"/readyz":              "/readyz",
		"/random/probe":        "other",
		"/":                    "other",
	}
	for path, want := range cases {
		if got := RoutePattern(path); got != want {
			t.Errorf("RoutePattern(%q) = %q; want %q", path, got, want)
		}
	}
}
