// Package dist fans one estimation job's walker ensemble across a fleet of
// graphletd workers and merges the streamed-back accumulators into a result
// byte-identical to a local run.
//
// The unit of work is a partition: a contiguous global walker range [Lo, Hi)
// of the job's ensemble, with seeds and window quotas derived at their
// global indices (core.NewPartitionEstimator), so where a walker runs never
// changes what it computes. A coordinator (coordinator.go) posts one
// Assignment per partition to a worker's POST /v1/partitions endpoint
// (worker.go); the worker streams Frames back — a snapshot of the
// partition's EnsembleState/MultiEnsembleState at every checkpoint barrier,
// then a final frame with the terminal state. The coordinator re-combines
// partition states in walker-index order (core.CombinePartitionStates), so
// the merged result keeps the exact float addition sequence of a local run.
// Snapshots double as failover state: a dead worker's partition resumes on a
// peer (or locally) from its last streamed frame, costing only the
// un-checkpointed tail.
//
// This file defines the two wire formats, in the same style as the core
// state codecs: versioned magic, varints (zigzag for signed), packed flag
// bytes whose unknown high bits are rejected, and bounds-checked decoding —
// truncated, corrupt or adversarial input produces an error, never a panic
// or an absurd allocation. (The embedded resume/state blobs are core codecs,
// which additionally reject NaN/Inf accumulator values.)
package dist

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
)

// GraphMeta fingerprints the topology an assignment is meant to run on: the
// worker refuses an assignment whose fingerprint disagrees with its local
// binding of the graph name, so a fleet with divergent registrations fails
// loudly instead of merging walks over different graphs.
type GraphMeta struct {
	Nodes     int
	Edges     int64
	MaxDegree int
}

// Assignment is the coordinator-to-worker order for one partition.
type Assignment struct {
	// Graph names the registered graph to walk; Meta is the coordinator's
	// fingerprint of it.
	Graph string
	Meta  GraphMeta

	// Exactly one of Single/Multi is set: the job's full engine
	// configuration (including the global walker count and seed).
	Single *core.Config
	Multi  *core.MultiConfig

	// Budget is the job's global window budget n; Every the checkpoint
	// spacing (a snapshot frame streams at every multiple). The partition
	// runs its walkers' share of each global target.
	Budget int
	Every  int

	// Lo, Hi delimit the partition's walker range [Lo, Hi) in global
	// indices.
	Lo, Hi int

	// Resume optionally carries an encoded partition state
	// (EnsembleState/MultiEnsembleState restricted to [Lo, Hi)) to restore
	// before running — the failover and coordinator-crash-recovery path.
	Resume []byte
}

const (
	asnMagic   = "GDPA"
	asnVersion = 1

	frameMagic   = "GDPF"
	frameVersion = 1

	// Decode-side sanity caps.
	maxGraphName = 4096
	maxBlobBytes = 1 << 26 // resume / state payloads
	maxMsgBytes  = 4096
	maxSizes     = 16
)

// Walkers returns the global walker count of the assignment's ensemble.
func (a *Assignment) Walkers() int {
	w := 1
	switch {
	case a.Single != nil:
		w = a.Single.Walkers
	case a.Multi != nil:
		w = a.Multi.Walkers
	}
	if w <= 1 {
		return 1
	}
	return w
}

// Validate checks the assignment's structural invariants (the engine configs
// validate themselves when the estimator is built).
func (a *Assignment) Validate() error {
	if a.Graph == "" {
		return fmt.Errorf("dist: assignment names no graph")
	}
	if (a.Single == nil) == (a.Multi == nil) {
		return fmt.Errorf("dist: assignment must set exactly one of single/multi config")
	}
	if a.Budget <= 0 {
		return fmt.Errorf("dist: non-positive budget %d", a.Budget)
	}
	if a.Every < 0 {
		return fmt.Errorf("dist: negative checkpoint spacing %d", a.Every)
	}
	if w := a.Walkers(); a.Lo < 0 || a.Hi > w || a.Lo >= a.Hi {
		return fmt.Errorf("dist: partition [%d,%d) out of range for %d walkers", a.Lo, a.Hi, w)
	}
	return nil
}

// Encode renders the assignment as a versioned binary blob — the request
// body of POST /v1/partitions.
func (a *Assignment) Encode() []byte {
	buf := make([]byte, 0, 128+len(a.Resume))
	buf = append(buf, asnMagic...)
	buf = binary.AppendUvarint(buf, asnVersion)
	buf = binary.AppendUvarint(buf, uint64(len(a.Graph)))
	buf = append(buf, a.Graph...)
	buf = binary.AppendVarint(buf, int64(a.Meta.Nodes))
	buf = binary.AppendVarint(buf, a.Meta.Edges)
	buf = binary.AppendVarint(buf, int64(a.Meta.MaxDegree))
	buf = append(buf, packBools(a.Multi != nil, len(a.Resume) > 0))
	if a.Single != nil {
		c := a.Single
		buf = binary.AppendVarint(buf, int64(c.K))
		buf = binary.AppendVarint(buf, int64(c.D))
		buf = append(buf, packBools(c.CSS, c.NB, c.RecoverStars))
		buf = binary.AppendVarint(buf, int64(c.BurnIn))
		buf = binary.AppendVarint(buf, int64(c.Walkers))
		buf = binary.AppendVarint(buf, c.Seed)
	} else {
		c := a.Multi
		buf = binary.AppendUvarint(buf, uint64(len(c.Sizes)))
		for _, k := range c.Sizes {
			buf = binary.AppendVarint(buf, int64(k))
		}
		buf = binary.AppendVarint(buf, int64(c.D))
		buf = append(buf, packBools(c.CSS, c.NB))
		buf = binary.AppendVarint(buf, int64(c.Walkers))
		buf = binary.AppendVarint(buf, c.Seed)
	}
	buf = binary.AppendVarint(buf, int64(a.Budget))
	buf = binary.AppendVarint(buf, int64(a.Every))
	buf = binary.AppendVarint(buf, int64(a.Lo))
	buf = binary.AppendVarint(buf, int64(a.Hi))
	if len(a.Resume) > 0 {
		buf = binary.AppendUvarint(buf, uint64(len(a.Resume)))
		buf = append(buf, a.Resume...)
	}
	return buf
}

// DecodeAssignment parses a blob produced by Assignment.Encode.
func DecodeAssignment(data []byte) (*Assignment, error) {
	d := &decoder{data: data}
	if string(d.bytes(len(asnMagic))) != asnMagic {
		return nil, fmt.Errorf("dist: assignment: bad magic")
	}
	if v := d.uvarint(); d.err == nil && v != asnVersion {
		return nil, fmt.Errorf("dist: assignment: unsupported format version %d (have %d)", v, asnVersion)
	}
	a := &Assignment{}
	a.Graph = d.str(maxGraphName)
	a.Meta.Nodes = int(d.varint())
	a.Meta.Edges = d.varint()
	a.Meta.MaxDegree = int(d.varint())
	multi, hasResume := d.bools2()
	if multi {
		c := &core.MultiConfig{}
		n := d.uvarint()
		if d.err == nil && (n == 0 || n > maxSizes) {
			return nil, fmt.Errorf("dist: assignment: %d sizes out of range", n)
		}
		if d.err == nil {
			c.Sizes = make([]int, n)
			for i := range c.Sizes {
				c.Sizes[i] = int(d.varint())
			}
		}
		c.D = int(d.varint())
		c.CSS, c.NB = d.bools2()
		c.Walkers = int(d.varint())
		c.Seed = d.varint()
		a.Multi = c
	} else {
		c := &core.Config{}
		c.K = int(d.varint())
		c.D = int(d.varint())
		c.CSS, c.NB, c.RecoverStars = d.bools3()
		c.BurnIn = int(d.varint())
		c.Walkers = int(d.varint())
		c.Seed = d.varint()
		a.Single = c
	}
	a.Budget = int(d.varint())
	a.Every = int(d.varint())
	a.Lo = int(d.varint())
	a.Hi = int(d.varint())
	if hasResume {
		a.Resume = d.blob(maxBlobBytes)
		if d.err == nil && len(a.Resume) == 0 {
			return nil, fmt.Errorf("dist: assignment: resume flag set without payload")
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("dist: assignment: %w", d.err)
	}
	if d.off != len(d.data) {
		return nil, fmt.Errorf("dist: assignment: %d trailing bytes", len(d.data)-d.off)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// FrameKind tags a streamed frame.
type FrameKind uint8

const (
	// FrameSnapshot carries the partition's state at an intermediate
	// checkpoint target — failover and coordinator-journal fuel.
	FrameSnapshot FrameKind = 1
	// FrameFinal carries the partition's terminal state at the full budget;
	// it ends a successful stream.
	FrameFinal FrameKind = 2
	// FrameError reports a worker-side failure (Msg); it ends the stream.
	FrameError FrameKind = 3
)

// Frame is one element of the worker-to-coordinator response stream.
type Frame struct {
	Kind   FrameKind
	Target int    // global checkpoint target the state was captured at
	State  []byte // encoded partition Ensemble/MultiEnsembleState
	Msg    string // error detail (FrameError only)
}

// Encode renders the frame as a standalone versioned blob.
func (f *Frame) Encode() []byte {
	buf := make([]byte, 0, 32+len(f.State)+len(f.Msg))
	buf = append(buf, frameMagic...)
	buf = binary.AppendUvarint(buf, frameVersion)
	buf = append(buf, byte(f.Kind))
	buf = binary.AppendVarint(buf, int64(f.Target))
	buf = binary.AppendUvarint(buf, uint64(len(f.State)))
	buf = append(buf, f.State...)
	buf = binary.AppendUvarint(buf, uint64(len(f.Msg)))
	buf = append(buf, f.Msg...)
	return buf
}

// DecodeFrame parses a blob produced by Frame.Encode.
func DecodeFrame(data []byte) (*Frame, error) {
	d := &decoder{data: data}
	if string(d.bytes(len(frameMagic))) != frameMagic {
		return nil, fmt.Errorf("dist: frame: bad magic")
	}
	if v := d.uvarint(); d.err == nil && v != frameVersion {
		return nil, fmt.Errorf("dist: frame: unsupported format version %d (have %d)", v, frameVersion)
	}
	f := &Frame{}
	f.Kind = FrameKind(d.byte())
	f.Target = int(d.varint())
	f.State = d.blob(maxBlobBytes)
	f.Msg = d.str(maxMsgBytes)
	if d.err != nil {
		return nil, fmt.Errorf("dist: frame: %w", d.err)
	}
	if d.off != len(d.data) {
		return nil, fmt.Errorf("dist: frame: %d trailing bytes", len(d.data)-d.off)
	}
	switch f.Kind {
	case FrameSnapshot, FrameFinal:
		if len(f.State) == 0 {
			return nil, fmt.Errorf("dist: frame: %d carries no state", f.Kind)
		}
		if f.Target < 0 {
			return nil, fmt.Errorf("dist: frame: negative target %d", f.Target)
		}
	case FrameError:
		if f.Msg == "" {
			return nil, fmt.Errorf("dist: error frame carries no message")
		}
	default:
		return nil, fmt.Errorf("dist: frame: unknown kind %d", f.Kind)
	}
	return f, nil
}

// packBools mirrors the core state codec's flag byte.
func packBools(bs ...bool) byte {
	var b byte
	for i, v := range bs {
		if v {
			b |= 1 << uint(i)
		}
	}
	return b
}

// decoder is a bounds-checked cursor over an encoded blob; the first failure
// sticks and every later read returns zero values.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil || n < 0 || d.off+n > len(d.data) {
		d.fail("truncated at offset %d", d.off)
		return make([]byte, max(n, 0))
	}
	out := d.data[d.off : d.off+n]
	d.off += n
	return out
}

func (d *decoder) byte() byte { return d.bytes(1)[0] }

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail("bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail("bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// blob reads a length-prefixed byte string, copying out of the input so the
// result outlives the request buffer.
func (d *decoder) blob(cap int) []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(cap) {
		d.fail("payload of %d bytes exceeds cap", n)
		return nil
	}
	if n == 0 {
		return nil
	}
	return append([]byte(nil), d.bytes(int(n))...)
}

func (d *decoder) str(cap int) string { return string(d.blob(cap)) }

// bools2/bools3 read a flag byte, rejecting unknown high bits (they would
// belong to a format this decoder does not understand).
func (d *decoder) bools2() (bool, bool) {
	b := d.byte()
	if b&^byte(3) != 0 {
		d.fail("unknown flag bits 0x%02x", b)
	}
	return b&1 != 0, b&2 != 0
}

func (d *decoder) bools3() (bool, bool, bool) {
	b := d.byte()
	if b&^byte(7) != 0 {
		d.fail("unknown flag bits 0x%02x", b)
	}
	return b&1 != 0, b&2 != 0, b&4 != 0
}
