package graph

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func k4() *Graph {
	return FromEdgeList(4, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(2, 2) // self loop, dropped
	b.AddEdge(1, 2)
	g := b.Build()
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", g.NumNodes())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestDegreesAndNeighbors(t *testing.T) {
	g := FromEdgeList(5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {3, 4}})
	wantDeg := []int{3, 1, 1, 2, 1}
	for v, w := range wantDeg {
		if got := g.Degree(int32(v)); got != w {
			t.Errorf("Degree(%d) = %d, want %d", v, got, w)
		}
	}
	n := g.Neighbors(0)
	want := []int32{1, 2, 3}
	if len(n) != len(want) {
		t.Fatalf("Neighbors(0) = %v", n)
	}
	for i := range want {
		if n[i] != want[i] {
			t.Fatalf("Neighbors(0) = %v, want %v", n, want)
		}
	}
}

func TestHasEdge(t *testing.T) {
	g := k4()
	for u := int32(0); u < 4; u++ {
		for v := int32(0); v < 4; v++ {
			want := u != v
			if got := g.HasEdge(u, v); got != want {
				t.Errorf("HasEdge(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
}

func TestCommonNeighbors(t *testing.T) {
	g := FromEdgeList(5, [][2]int32{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4}})
	cases := []struct {
		u, v int32
		want int
	}{
		{0, 3, 2}, // 1 and 2
		{1, 2, 2}, // 0 and 3
		{0, 4, 0},
		{1, 4, 1}, // 3
	}
	for _, c := range cases {
		if got := g.CommonNeighbors(c.u, c.v); got != c.want {
			t.Errorf("CommonNeighbors(%d,%d) = %d, want %d", c.u, c.v, got, c.want)
		}
		var buf []int32
		buf = g.CommonNeighborsInto(buf[:0], c.u, c.v)
		if len(buf) != c.want {
			t.Errorf("CommonNeighborsInto(%d,%d) returned %d items, want %d", c.u, c.v, len(buf), c.want)
		}
	}
}

func TestRandomEdgeUniform(t *testing.T) {
	// Star with 3 leaves: each of the 3 edges should appear ~1/3 of the time.
	g := FromEdgeList(4, [][2]int32{{0, 1}, {0, 2}, {0, 3}})
	rng := rand.New(rand.NewSource(1))
	counts := map[[2]int32]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		u, v := g.RandomEdge(rng)
		counts[[2]int32{u, v}]++
	}
	if len(counts) != 3 {
		t.Fatalf("saw %d distinct edges, want 3", len(counts))
	}
	for e, c := range counts {
		frac := float64(c) / n
		if frac < 0.30 || frac > 0.37 {
			t.Errorf("edge %v frequency %.3f, want ~0.333", e, frac)
		}
	}
}

func TestRandomNeighbor(t *testing.T) {
	g := FromEdgeList(3, [][2]int32{{0, 1}})
	rng := rand.New(rand.NewSource(1))
	if _, ok := g.RandomNeighbor(2, rng); ok {
		t.Error("isolated node returned a neighbor")
	}
	v, ok := g.RandomNeighbor(0, rng)
	if !ok || v != 1 {
		t.Errorf("RandomNeighbor(0) = %d,%v", v, ok)
	}
}

func TestEdgesIteration(t *testing.T) {
	g := k4()
	var got [][2]int32
	g.Edges(func(u, v int32) bool {
		got = append(got, [2]int32{u, v})
		return true
	})
	if len(got) != 6 {
		t.Fatalf("iterated %d edges, want 6", len(got))
	}
	for _, e := range got {
		if e[0] >= e[1] {
			t.Errorf("edge %v not ordered", e)
		}
	}
	// Early stop.
	n := 0
	g.Edges(func(u, v int32) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("early stop iterated %d", n)
	}
}

func TestLargestComponent(t *testing.T) {
	// Two components: triangle {0,1,2} and edge {3,4}; plus isolated 5.
	g := FromEdgeList(6, [][2]int32{{0, 1}, {1, 2}, {0, 2}, {3, 4}})
	lcc, toOld := LargestComponent(g)
	if lcc.NumNodes() != 3 || lcc.NumEdges() != 3 {
		t.Fatalf("LCC = %v", lcc)
	}
	if len(toOld) != 3 {
		t.Fatalf("toOld = %v", toOld)
	}
	old := []int{int(toOld[0]), int(toOld[1]), int(toOld[2])}
	sort.Ints(old)
	for i, v := range []int{0, 1, 2} {
		if old[i] != v {
			t.Fatalf("toOld maps to %v", old)
		}
	}
	if !IsConnected(lcc) {
		t.Error("LCC not connected")
	}
	if NumComponents(g) != 3 {
		t.Errorf("NumComponents = %d, want 3", NumComponents(g))
	}
}

func TestIsConnectedEdgeCases(t *testing.T) {
	if !IsConnected(NewBuilder(0).Build()) {
		t.Error("empty graph should be connected")
	}
	if !IsConnected(NewBuilder(1).Build()) {
		t.Error("single node should be connected")
	}
	if IsConnected(NewBuilder(2).Build()) {
		t.Error("two isolated nodes should not be connected")
	}
}

func TestReadWriteEdgeList(t *testing.T) {
	in := "# comment\n% other comment\n0 1\n1 2\n\n2 0\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("parsed %v", g)
	}
	var sb strings.Builder
	if err := WriteEdgeList(&sb, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip mismatch: %v vs %v", g, g2)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("0\n")); err == nil {
		t.Error("expected error for single-field line")
	}
	if _, err := ReadEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Error("expected error for non-numeric fields")
	}
}

func TestArcSource(t *testing.T) {
	g := FromEdgeList(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	for a := int64(0); a < 2*g.NumEdges(); a++ {
		u := g.arcSource(a)
		v := g.adj[a]
		if !g.HasEdge(u, v) {
			t.Fatalf("arc %d maps to non-edge (%d,%d)", a, u, v)
		}
	}
}

// Property: a graph built from any random edge list validates and has
// symmetric HasEdge consistent with the deduplicated input.
func TestBuildProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		b := NewBuilder(0)
		want := map[[2]int32]bool{}
		for i := 0; i+1 < len(raw); i += 2 {
			u := int32(raw[i] % 64)
			v := int32(raw[i+1] % 64)
			b.AddEdge(u, v)
			if u != v {
				if u > v {
					u, v = v, u
				}
				want[[2]int32{u, v}] = true
			}
		}
		g := b.Build()
		if err := Validate(g); err != nil {
			return false
		}
		if int(g.NumEdges()) != len(want) {
			return false
		}
		for e := range want {
			if !g.HasEdge(e[0], e[1]) || !g.HasEdge(e[1], e[0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: LargestComponent always returns a connected graph whose size is
// at least the size of any other component.
func TestLCCProperty(t *testing.T) {
	f := func(raw []uint16, seed int64) bool {
		b := NewBuilder(1)
		for i := 0; i+1 < len(raw); i += 2 {
			b.AddEdge(int32(raw[i]%50), int32(raw[i+1]%50))
		}
		g := b.Build()
		lcc, _ := LargestComponent(g)
		return IsConnected(lcc) && lcc.NumNodes() >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMaxDegreeAndHistogram(t *testing.T) {
	g := FromEdgeList(5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	if g.MaxDegree() != 4 {
		t.Errorf("MaxDegree = %d", g.MaxDegree())
	}
	h := g.DegreeHistogram()
	if h[1] != 4 || h[4] != 1 {
		t.Errorf("histogram = %v", h)
	}
	// Empty graph and isolated nodes: cached value stays consistent.
	if g := NewBuilder(0).Build(); g.MaxDegree() != 0 {
		t.Errorf("empty graph MaxDegree = %d", g.MaxDegree())
	}
	if g := NewBuilder(3).Build(); g.MaxDegree() != 0 {
		t.Errorf("edgeless graph MaxDegree = %d", g.MaxDegree())
	}
	// The cache survives deduplication and LCC extraction (both rebuild
	// through Builder.Build; Validate cross-checks cached vs scanned).
	b := NewBuilder(0)
	for _, e := range [][2]int32{{0, 1}, {1, 0}, {1, 2}, {2, 3}, {1, 3}, {5, 6}} {
		b.AddEdge(e[0], e[1])
	}
	dup := b.Build()
	if err := Validate(dup); err != nil {
		t.Fatal(err)
	}
	lcc, _ := LargestComponent(dup)
	if err := Validate(lcc); err != nil {
		t.Fatal(err)
	}
	if lcc.MaxDegree() != 3 {
		t.Errorf("LCC MaxDegree = %d, want 3", lcc.MaxDegree())
	}
}
