package graph

// Binary CSR on-disk format (".gcsr"): the compact, load-instantly graph
// store behind graphlet-pack, the service registry and the dataset cache.
// An edge list is parsed once (pack time); afterwards the graph opens in
// milliseconds — via a portable decoding read path (Load) everywhere, or
// zero-copy mmap (OpenMapped) on unix little-endian hosts, where the off/adj
// arrays alias the page cache and are shared across processes.
//
// Layout (all integers little-endian):
//
//	offset  size       field
//	0       4          magic "GCSR"
//	4       4          format version (currently 1)
//	8       8          n, number of nodes
//	16      8          m, number of undirected edges
//	24      8          max degree
//	32      4          CRC-32C (Castagnoli) of the payload bytes
//	36      4          reserved, zero (keeps the off array 8-byte aligned)
//	40      (n+1)*8    off array, int64
//	...     2m*4       adj array, int32
//
// The header is 40 bytes, so both arrays stay naturally aligned in a
// page-aligned mapping. Both read paths verify, at open time: the header
// invariants, the payload checksum (so truncation or corruption fails
// loudly instead of skewing estimates), the off prefix-sum/max-degree
// invariants, and per-row neighbor validity (in-range, strictly ascending,
// no self loops). Adjacency symmetry is the one invariant not checked at
// open — a per-arc reverse probe would cost more than the open itself; a
// file written by graph.Save is symmetric by construction, and
// Validate (run by graphlet-pack -verify) audits it for files of unknown
// provenance.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
)

const (
	gcsrMagic      = "GCSR"
	gcsrVersion    = 1
	gcsrHeaderSize = 40

	// GCSRExt is the conventional file extension of the binary format.
	GCSRExt = ".gcsr"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// gcsrHeader is the decoded fixed-size header.
type gcsrHeader struct {
	n      int64
	m      int64
	maxDeg int64
	crc    uint32
}

func (h gcsrHeader) offBytes() int64 { return (h.n + 1) * 8 }
func (h gcsrHeader) adjBytes() int64 { return 2 * h.m * 4 }

// WriteBinary writes g in the .gcsr format. The payload is streamed twice
// (checksum pass, then write pass), so no full in-memory copy is made.
func WriteBinary(w io.Writer, g *Graph) error {
	crc := crc32.New(castagnoli)
	if err := writePayload(crc, g); err != nil {
		return err
	}
	var hdr [gcsrHeaderSize]byte
	copy(hdr[0:4], gcsrMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], gcsrVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(g.NumNodes()))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(g.m))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(g.maxDeg))
	binary.LittleEndian.PutUint32(hdr[32:36], crc.Sum32())
	// hdr[36:40] reserved, zero.
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if err := writePayload(bw, g); err != nil {
		return err
	}
	return bw.Flush()
}

// writePayload streams the off and adj arrays as little-endian bytes.
func writePayload(w io.Writer, g *Graph) error {
	var buf [8]byte
	for _, o := range g.off {
		binary.LittleEndian.PutUint64(buf[:8], uint64(o))
		if _, err := w.Write(buf[:8]); err != nil {
			return err
		}
	}
	for _, a := range g.adj {
		binary.LittleEndian.PutUint32(buf[:4], uint32(a))
		if _, err := w.Write(buf[:4]); err != nil {
			return err
		}
	}
	return nil
}

// Save writes g to path in the version-1 .gcsr format, atomically. See
// SaveOpts for version selection.
func Save(path string, g *Graph) error {
	return SaveOpts(path, g, SaveOptions{})
}

// SaveOpts writes g to path in the .gcsr format selected by o, atomically:
// the bytes go to a uniquely named temporary file in the same directory,
// then rename into place. Concurrent savers of the same path (e.g. two
// processes both missing the dataset cache) each write their own temp file,
// and the last rename wins with a complete file either way.
func SaveOpts(path string, g *Graph, o SaveOptions) error {
	var write func(w io.Writer) error
	switch o.Version {
	case 0, gcsrVersion:
		if o.IDs != nil {
			return fmt.Errorf("gcsr: version 1 cannot embed original IDs (write a %s sidecar with SaveIDs)", GIDSExt)
		}
		write = func(w io.Writer) error { return WriteBinary(w, g) }
	case gcsrVersion2:
		write = func(w io.Writer) error { return WriteBinaryV2(w, g, o) }
	default:
		return fmt.Errorf("gcsr: unsupported format version %d (want 1 or 2)", o.Version)
	}
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	// Both writers buffer the payload themselves; no extra layer needed.
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	// os.CreateTemp makes the file 0600; restore normal create permissions
	// so other users (a daemon under a service account, sibling processes
	// sharing a cache dir) can open the packed graph.
	if err := f.Chmod(0o644); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// parseHeader decodes and sanity-checks the fixed-size header.
func parseHeader(hdr []byte) (gcsrHeader, error) {
	var h gcsrHeader
	if len(hdr) < gcsrHeaderSize {
		return h, fmt.Errorf("gcsr: file shorter than the %d-byte header", gcsrHeaderSize)
	}
	if string(hdr[0:4]) != gcsrMagic {
		return h, fmt.Errorf("gcsr: bad magic %q (not a .gcsr file)", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != gcsrVersion {
		return h, fmt.Errorf("gcsr: unsupported format version %d (want %d)", v, gcsrVersion)
	}
	h.n = int64(binary.LittleEndian.Uint64(hdr[8:16]))
	h.m = int64(binary.LittleEndian.Uint64(hdr[16:24]))
	h.maxDeg = int64(binary.LittleEndian.Uint64(hdr[24:32]))
	h.crc = binary.LittleEndian.Uint32(hdr[32:36])
	switch {
	case h.n < 0 || h.n > math.MaxInt32:
		return h, fmt.Errorf("gcsr: node count %d out of range", h.n)
	// Bound m so offBytes()+adjBytes()+header cannot overflow int64 — a
	// lying header must produce an error, not a wrapped-negative or
	// astronomically large allocation size.
	case h.m < 0 || h.m > (math.MaxInt64-gcsrHeaderSize-h.offBytes())/8:
		return h, fmt.Errorf("gcsr: edge count %d out of range", h.m)
	case h.maxDeg < 0 || h.maxDeg > h.n:
		return h, fmt.Errorf("gcsr: max degree %d out of range for %d nodes", h.maxDeg, h.n)
	}
	return h, nil
}

// checkAdjacency verifies each neighbor row is strictly ascending, in
// range, and self-loop free — the invariants HasEdge's binary search and the
// hub bitset build depend on. O(m), shared by the portable and mmap read
// paths (both already touch every payload byte for the checksum), so a
// structurally invalid file from any writer fails loudly at open time
// instead of skewing estimates or panicking later.
func checkAdjacency(off []int64, adj []int32, h gcsrHeader) error {
	for v := int64(0); v < h.n; v++ {
		row := adj[off[v]:off[v+1]]
		for i, u := range row {
			if u < 0 || int64(u) >= h.n {
				return fmt.Errorf("gcsr: node %d: neighbor %d out of range [0,%d)", v, u, h.n)
			}
			if int64(u) == v {
				return fmt.Errorf("gcsr: node %d: self loop", v)
			}
			if i > 0 && row[i-1] >= u {
				return fmt.Errorf("gcsr: node %d: neighbor row not strictly ascending at index %d", v, i)
			}
		}
	}
	return nil
}

// checkOffsets verifies the off array is a monotone prefix-sum array ending
// at 2m and that the stored max degree matches. It is O(n) and shared by the
// portable and mmap read paths.
func checkOffsets(off []int64, h gcsrHeader) error {
	if off[0] != 0 {
		return fmt.Errorf("gcsr: off[0] = %d, want 0", off[0])
	}
	if off[h.n] != 2*h.m {
		return fmt.Errorf("gcsr: off[n] = %d, want 2m = %d", off[h.n], 2*h.m)
	}
	maxDeg := int64(0)
	for v := int64(0); v < h.n; v++ {
		d := off[v+1] - off[v]
		if d < 0 {
			return fmt.Errorf("gcsr: off array not monotone at node %d", v)
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg != h.maxDeg {
		return fmt.Errorf("gcsr: stored max degree %d != scanned %d", h.maxDeg, maxDeg)
	}
	return nil
}

// ReadBinary decodes a .gcsr stream (either format version) with the
// portable (endianness-agnostic, allocating) read path and verifies the
// checksums and structural invariants.
func ReadBinary(r io.Reader) (*Graph, error) {
	var pre [8]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, fmt.Errorf("gcsr: reading header: %w", err)
	}
	if string(pre[0:4]) != gcsrMagic {
		return nil, fmt.Errorf("gcsr: bad magic %q (not a .gcsr file)", pre[0:4])
	}
	switch v := binary.LittleEndian.Uint32(pre[4:8]); v {
	case gcsrVersion:
		return readBinaryV1(r, pre)
	case gcsrVersion2:
		// The v2 parser works on a whole-file image; block extents are
		// validated against the actual image size, so a lying header
		// cannot trigger an outsized allocation.
		rest, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("gcsr: reading payload: %w", err)
		}
		return readBinaryV2(append(pre[:], rest...))
	default:
		return nil, fmt.Errorf("gcsr: unsupported format version %d (want 1 or 2)", v)
	}
}

// readBinaryV1 decodes the version-1 raw-array stream; pre holds the 8
// already-consumed magic/version bytes.
func readBinaryV1(r io.Reader, pre [8]byte) (*Graph, error) {
	var hdr [gcsrHeaderSize]byte
	copy(hdr[:], pre[:])
	if _, err := io.ReadFull(r, hdr[8:]); err != nil {
		return nil, fmt.Errorf("gcsr: reading header: %w", err)
	}
	h, err := parseHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	// Read through an incrementally growing buffer instead of one up-front
	// make(): a corrupt header claiming an exabyte payload then fails with a
	// truncation error after the actual bytes run out, rather than panicking
	// on an impossible allocation.
	want := h.offBytes() + h.adjBytes()
	payload, err := io.ReadAll(io.LimitReader(r, want))
	if err != nil {
		return nil, fmt.Errorf("gcsr: reading payload: %w", err)
	}
	if int64(len(payload)) != want {
		return nil, fmt.Errorf("gcsr: payload is %d bytes, header promises %d (file truncated?)", len(payload), want)
	}
	if got := crc32.Checksum(payload, castagnoli); got != h.crc {
		return nil, fmt.Errorf("gcsr: payload checksum %08x != stored %08x (file corrupted)", got, h.crc)
	}
	off := make([]int64, h.n+1)
	for i := range off {
		off[i] = int64(binary.LittleEndian.Uint64(payload[i*8:]))
	}
	if err := checkOffsets(off, h); err != nil {
		return nil, err
	}
	adjPayload := payload[h.offBytes():]
	adj := make([]int32, 2*h.m)
	for i := range adj {
		adj[i] = int32(binary.LittleEndian.Uint32(adjPayload[i*4:]))
	}
	if err := checkAdjacency(off, adj, h); err != nil {
		return nil, err
	}
	g := &Graph{off: off, adj: adj, m: h.m, maxDeg: int(h.maxDeg)}
	g.buildHubIndex()
	return g, nil
}

// Load reads a .gcsr file from disk with the portable read path.
func Load(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := ReadBinary(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("graph: %s: %w", path, err)
	}
	return g, nil
}

// hostLittleEndian reports whether the host stores integers little-endian,
// the precondition for the zero-copy mmap path.
func hostLittleEndian() bool {
	return binary.NativeEndian.Uint16([]byte{0x01, 0x00}) == 1
}

// Format identifies an on-disk graph encoding.
type Format int

const (
	// FormatAuto selects the format by file extension, falling back to
	// sniffing the magic bytes.
	FormatAuto Format = iota
	// FormatEdgeList is the whitespace-separated "u v" text format.
	FormatEdgeList
	// FormatGCSR is the binary CSR format of this file.
	FormatGCSR
)

// String returns the flag-style name of the format.
func (f Format) String() string {
	switch f {
	case FormatAuto:
		return "auto"
	case FormatEdgeList:
		return "edgelist"
	case FormatGCSR:
		return "gcsr"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// ParseFormat parses a -format flag value ("auto", "edgelist", "gcsr").
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "", "auto":
		return FormatAuto, nil
	case "edgelist", "txt", "text":
		return FormatEdgeList, nil
	case "gcsr", "binary":
		return FormatGCSR, nil
	}
	return FormatAuto, fmt.Errorf("graph: unknown format %q (want auto, edgelist or gcsr)", s)
}

// DetectFormat resolves FormatAuto for path: the .gcsr extension wins, then
// the magic bytes are sniffed, and anything else is treated as an edge list.
func DetectFormat(path string) Format {
	if strings.HasSuffix(strings.ToLower(path), GCSRExt) {
		return FormatGCSR
	}
	f, err := os.Open(path)
	if err != nil {
		return FormatEdgeList
	}
	defer f.Close()
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err == nil && string(magic[:]) == gcsrMagic {
		return FormatGCSR
	}
	return FormatEdgeList
}

// OpenFile opens a graph file in the given format (FormatAuto detects it).
// .gcsr files are opened with the mmap path where available (zero-copy for
// v1, block-cached for v2); call Close on the returned graph when done with
// a mapped graph.
func OpenFile(path string, format Format) (*Graph, error) {
	return OpenFileOpts(path, format, OpenOptions{})
}

// OpenFileOpts is OpenFile with read-path tuning. For .gcsr graphs without
// an embedded original-IDs section it also attaches the .gids sidecar when
// one sits next to the file.
func OpenFileOpts(path string, format Format, o OpenOptions) (*Graph, error) {
	if format == FormatAuto {
		format = DetectFormat(path)
	}
	switch format {
	case FormatGCSR:
		g, err := OpenMappedOpts(path, o)
		if err != nil {
			return nil, err
		}
		if !g.HasOriginalIDs() {
			if err := attachSidecarIDs(g, path); err != nil {
				g.Close()
				return nil, err
			}
		}
		return g, nil
	case FormatEdgeList:
		return LoadEdgeList(path)
	}
	return nil, fmt.Errorf("graph: cannot open %s with format %v", path, format)
}
