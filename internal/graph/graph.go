// Package graph provides the undirected simple-graph substrate used by the
// whole repository: a compact adjacency representation with sorted neighbor
// lists, O(log d) edge probes, largest-connected-component extraction and
// edge-list I/O.
//
// Nodes are dense int32 identifiers in [0, N). Graphs are immutable once
// built; construction goes through Builder.
package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is an immutable undirected simple graph. Neighbor lists are sorted
// ascending, enabling binary-search edge probes and linear-merge set
// intersection.
type Graph struct {
	// CSR layout: neighbors of v are adj[off[v]:off[v+1]].
	off []int64
	adj []int32
	m   int64 // number of undirected edges
	// maxDeg is computed once at Build time; MaxDegree sits on estimator
	// setup paths (walk-space sizing, ESU scratch allocation) and must not
	// rescan all nodes per call.
	maxDeg int
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.off) - 1 }

// NumEdges returns the number of undirected edges |E|.
func (g *Graph) NumEdges() int64 { return g.m }

// Degree returns the degree of node v.
func (g *Graph) Degree(v int32) int {
	return int(g.off[v+1] - g.off[v])
}

// Neighbors returns the sorted neighbor list of v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.adj[g.off[v]:g.off[v+1]]
}

// Neighbor returns the i-th neighbor of v (0-based, sorted order).
func (g *Graph) Neighbor(v int32, i int) int32 {
	return g.adj[g.off[v]+int64(i)]
}

// HasEdge reports whether the undirected edge (u, v) exists. Self loops never
// exist in a simple graph.
func (g *Graph) HasEdge(u, v int32) bool {
	if u == v {
		return false
	}
	// Probe the smaller adjacency list.
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	n := g.Neighbors(u)
	i := sort.Search(len(n), func(i int) bool { return n[i] >= v })
	return i < len(n) && n[i] == v
}

// RandomNode returns a uniformly random node. It panics on an empty graph.
func (g *Graph) RandomNode(rng *rand.Rand) int32 {
	return int32(rng.Intn(g.NumNodes()))
}

// RandomNeighbor returns a uniformly random neighbor of v, or (-1, false) if v
// is isolated.
func (g *Graph) RandomNeighbor(v int32, rng *rand.Rand) (int32, bool) {
	d := g.Degree(v)
	if d == 0 {
		return -1, false
	}
	return g.Neighbor(v, rng.Intn(d)), true
}

// RandomEdge returns a uniformly random undirected edge (u < v). It uses the
// flattened directed-arc array, so each undirected edge is equally likely.
func (g *Graph) RandomEdge(rng *rand.Rand) (int32, int32) {
	if g.m == 0 {
		panic("graph: RandomEdge on edgeless graph")
	}
	// Pick a random directed arc; its (source, target) is a uniform edge
	// because each undirected edge contributes exactly two arcs.
	a := rng.Int63n(int64(len(g.adj)))
	u := g.arcSource(a)
	v := g.adj[a]
	if u > v {
		u, v = v, u
	}
	return u, v
}

// arcSource returns the source node of directed arc index a.
func (g *Graph) arcSource(a int64) int32 {
	i := sort.Search(len(g.off)-1, func(i int) bool { return g.off[i+1] > a })
	return int32(i)
}

// Edges calls fn for every undirected edge (u < v). Iteration stops early if
// fn returns false.
func (g *Graph) Edges(fn func(u, v int32) bool) {
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		for _, v := range g.Neighbors(u) {
			if v <= u {
				continue
			}
			if !fn(u, v) {
				return
			}
		}
	}
}

// MaxDegree returns the maximum degree in the graph (0 for an empty graph).
// The value is cached at Build time, so the call is O(1).
func (g *Graph) MaxDegree() int { return g.maxDeg }

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.NumNodes(), g.m)
}

// CommonNeighbors returns the number of common neighbors of u and v using a
// linear merge of the two sorted lists.
func (g *Graph) CommonNeighbors(u, v int32) int {
	a, b := g.Neighbors(u), g.Neighbors(v)
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// CommonNeighborsInto appends the common neighbors of u and v to dst and
// returns the extended slice.
func (g *Graph) CommonNeighborsInto(dst []int32, u, v int32) []int32 {
	a, b := g.Neighbors(u), g.Neighbors(v)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// DegreeHistogram returns a map from degree to the number of nodes with that
// degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for v := 0; v < g.NumNodes(); v++ {
		h[g.Degree(int32(v))]++
	}
	return h
}
