package graphletrw

// Shared-walk multi-size benchmarks — the BENCH_pr8.json fixture. They
// compare one MultiEstimator walk covering sizes {3,4,5} against the three
// independent single-size runs it replaces, on the same 1M-edge BA graph as
// the walk-kernel benchmarks (ba1mGraph).
//
// Two access regimes:
//
//   - Free: a direct in-memory GraphClient. Measures the pure compute
//     amortization (the walk itself is run once instead of three times; the
//     per-size window classification still happens per size).
//   - Crawl: Memo(Counting(Delayed(graph))) — the service's own client
//     stack for remote graphs. Every independent run gets a FRESH memo,
//     exactly as three separate service jobs would: each re-crawls the
//     walk's neighborhood from scratch, so the shared walk saves both
//     wall-clock and API calls (reported as the "apicalls" metric).
//
// The per-size estimates of the shared walk are byte-identical to the
// independent runs' (TestMultiMatchesSingle and the service-level fan-out
// tests pin this), so the comparison is like for like: same answers, one
// walk.

import (
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/core"
)

const (
	multiBenchSteps   = 20_000
	multiBenchLatency = 25 * time.Microsecond // per uncached API call
	multiBenchSeed    = 7
)

var multiBenchSizes = []int{3, 4, 5}

func multiBenchConfig() core.MultiConfig {
	return core.MultiConfig{Sizes: multiBenchSizes, D: 2, CSS: true, Seed: multiBenchSeed}
}

func singleBenchConfig(k int) core.Config {
	return core.Config{K: k, D: 2, CSS: true, Seed: multiBenchSeed}
}

// crawlClient builds the service-style crawl stack over the BA fixture:
// the Counting layer sits under the memo, so it counts actual crawl fetches
// (memo hits are free), and Delayed charges latency to exactly those.
func crawlClient() (access.Client, *access.Counting) {
	g := ba1mGraph()
	counting := access.NewCounting(access.NewDelayed(access.NewGraphClient(g), multiBenchLatency), g.NumNodes())
	return access.NewMemo(counting), counting
}

func apiCalls(c *access.Counting) float64 {
	st := c.Stats()
	return float64(st.DegreeCalls + st.NeighborCalls + st.EdgeProbes)
}

func BenchmarkMultiSharedFree(b *testing.B) {
	client := access.NewGraphClient(ba1mGraph())
	cfg := multiBenchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, err := core.NewMultiEstimator(client, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := est.Run(multiBenchSteps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiIndependentFree(b *testing.B) {
	client := access.NewGraphClient(ba1mGraph())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range multiBenchSizes {
			est, err := core.NewEstimator(client, singleBenchConfig(k))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := est.Run(multiBenchSteps); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkMultiSharedCrawl(b *testing.B) {
	cfg := multiBenchConfig()
	var calls float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client, counting := crawlClient() // fresh memo per run, like a service job
		est, err := core.NewMultiEstimator(client, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := est.Run(multiBenchSteps); err != nil {
			b.Fatal(err)
		}
		calls += apiCalls(counting)
	}
	b.ReportMetric(calls/float64(b.N), "apicalls")
}

func BenchmarkMultiIndependentCrawl(b *testing.B) {
	var calls float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range multiBenchSizes {
			client, counting := crawlClient() // each independent job re-crawls
			est, err := core.NewEstimator(client, singleBenchConfig(k))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := est.Run(multiBenchSteps); err != nil {
				b.Fatal(err)
			}
			calls += apiCalls(counting)
		}
	}
	b.ReportMetric(calls/float64(b.N), "apicalls")
}
