package service

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/graph"
)

// waitDone submits nothing; it waits for id to finish Done or fails the test.
func waitDone(t *testing.T, mgr *Manager, id string) JobView {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	v, err := mgr.Wait(ctx, id)
	if err != nil || v.State != StateDone {
		t.Fatalf("job %s: %+v, %v", id, v, err)
	}
	return v
}

// sameJobResult compares two rendered results field by field (byte identity:
// float64 == is exact).
func sameJobResult(t *testing.T, label string, got, want *JobResult) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: missing result: got %+v, want %+v", label, got, want)
	}
	if got.Steps != want.Steps || got.ValidSamples != want.ValidSamples {
		t.Fatalf("%s: result shape differs: %+v vs %+v", label, got, want)
	}
	for i := range want.Weights {
		if got.Weights[i] != want.Weights[i] {
			t.Fatalf("%s: weight %d differs: %v vs %v", label, i, got.Weights[i], want.Weights[i])
		}
	}
	for i := range want.Concentration {
		if got.Concentration[i] != want.Concentration[i] {
			t.Fatalf("%s: concentration %d differs: %v vs %v", label, i, got.Concentration[i], want.Concentration[i])
		}
	}
}

// The multi-size tentpole end to end: one shared-walk job covers sizes 3..5
// paying the step budget once, its per-size results are byte-identical to
// independent single-size runs of the same (Config, Seed), and the fan-out
// leaves every covered single-size spec a warm cache hit.
func TestMultiJobFanOut(t *testing.T) {
	multi := Spec{Graph: "hk", Sizes: []int{3, 4, 5}, D: 2, CSS: true, Steps: 4000, Walkers: 2, Seed: 99}

	reg := testRegistry(t)
	mgr := newTestManager(t, reg, Options{Workers: 1, MaxWalkers: 2})
	defer mgr.Close()
	v, err := mgr.Submit(multi)
	if err != nil {
		t.Fatal(err)
	}
	v = waitDone(t, mgr, v.ID)
	if v.Result != nil {
		t.Errorf("multi job rendered a single Result: %+v", v.Result)
	}
	if len(v.Results) != 3 {
		t.Fatalf("multi job results: %+v, want one per size", v.Results)
	}
	if len(v.Progress.Concentrations) != 3 {
		t.Errorf("multi job progress concentrations: %+v, want one per size", v.Progress.Concentrations)
	}
	if st := mgr.Stats(); st.MultiRuns != 1 || st.Runs != 1 || st.CacheSize != 3 {
		t.Fatalf("stats after multi run: %+v, want 1 run fanned out into 3 cache entries", st)
	}

	// Per-size byte identity against independent single-size runs (on a
	// fresh manager, so nothing is answered from this manager's cache).
	refMgr := newTestManager(t, testRegistry(t), Options{Workers: 1, MaxWalkers: 2})
	defer refMgr.Close()
	for _, k := range multi.Sizes {
		single := multi
		single.Sizes, single.K = nil, k
		rv, err := refMgr.Submit(single)
		if err != nil {
			t.Fatal(err)
		}
		rv = waitDone(t, refMgr, rv.ID)
		sameJobResult(t, "independent run", v.Results[k], rv.Result)

		// The same single-size spec against the multi manager is a warm hit
		// served by the fan-out entry.
		hv, err := mgr.Submit(single)
		if err != nil {
			t.Fatal(err)
		}
		if !hv.Cached || hv.State != StateDone {
			t.Fatalf("single-size re-ask of covered k=%d: %+v, want instant cache hit", k, hv)
		}
		sameJobResult(t, "fan-out entry", hv.Result, rv.Result)
	}

	// An identical multi-size re-ask reassembles from the same entries —
	// order-insensitively — without a second run.
	again, err := mgr.Submit(Spec{Graph: "hk", Sizes: []int{5, 4, 3}, D: 2, CSS: true, Steps: 4000, Walkers: 2, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.State != StateDone || len(again.Results) != 3 {
		t.Fatalf("multi re-ask: %+v, want reassembled cache hit", again)
	}
	if st := mgr.Stats(); st.Runs != 1 {
		t.Fatalf("stats after re-asks: %+v, want still exactly 1 run", st)
	}
}

// Admission: k and sizes are mutually exclusive, sizes obey the server
// allowlist, the size list is normalized (sorted, deduplicated), and a
// one-size multi spec collapses to the plain single-size job.
func TestMultiSpecAdmission(t *testing.T) {
	reg := testRegistry(t)
	mgr := newTestManager(t, reg, Options{Workers: 1, MaxWalkers: 2})
	defer mgr.Close()

	if _, err := mgr.Submit(Spec{Graph: "hk", K: 3, Sizes: []int{4}, D: 2, Steps: 100, Seed: 1}); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("k+sizes spec admitted: %v", err)
	}
	if _, err := mgr.Submit(Spec{Graph: "hk", Sizes: []int{3, 6}, D: 2, Steps: 100, Seed: 1}); err == nil {
		t.Error("out-of-range size admitted")
	}
	if _, err := mgr.Submit(Spec{Graph: "hk", Sizes: []int{4, 3}, D: 5, Steps: 100, Seed: 1}); err == nil {
		t.Error("d above min size admitted")
	}

	// One-size multi collapses to the single-size spec: both submissions
	// share one run (the second coalesces or hits the cache).
	a, err := mgr.Submit(Spec{Graph: "hk", Sizes: []int{4}, D: 2, Steps: 2000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Spec.K != 4 || a.Spec.Sizes != nil {
		t.Fatalf("one-size multi did not collapse: %+v", a.Spec)
	}
	b, err := mgr.Submit(Spec{Graph: "hk", K: 4, D: 2, Steps: 2000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Cached && b.ID != a.ID {
		t.Fatalf("collapsed spec did not share the run: %+v vs %+v", b, a)
	}

	// Normalization: duplicates collapse and order is canonical, so the
	// shuffled duplicate submission coalesces onto the first job.
	c1, err := mgr.Submit(Spec{Graph: "hk", Sizes: []int{5, 3, 5, 4}, D: 2, Steps: 3000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := c1.Spec.Sizes; len(got) != 3 || got[0] != 3 || got[1] != 4 || got[2] != 5 {
		t.Fatalf("sizes not normalized: %v", got)
	}
	c2, err := mgr.Submit(Spec{Graph: "hk", Sizes: []int{4, 5, 3}, D: 2, Steps: 3000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c2.ID != c1.ID && !c2.Cached {
		t.Fatalf("equivalent multi specs did not coalesce: %+v vs %+v", c2, c1)
	}

	// The allowlist gates admission.
	narrow := newTestManager(t, testRegistry(t), Options{Workers: 1, MaxWalkers: 2, MultiSizes: []int{3, 4}})
	defer narrow.Close()
	if _, err := narrow.Submit(Spec{Graph: "hk", Sizes: []int{3, 5}, D: 2, Steps: 100, Seed: 1}); err == nil ||
		!strings.Contains(err.Error(), "allowed sizes") {
		t.Errorf("allowlisted size admitted: %v", err)
	}
	if _, err := narrow.Submit(Spec{Graph: "hk", Sizes: []int{3, 4}, D: 2, Steps: 500, Seed: 1}); err != nil {
		t.Errorf("allowlisted spec rejected: %v", err)
	}
}

// A multi-size submission whose per-size entries were all produced by
// earlier *single-size* runs is answered from the cache by reassembly — the
// two entry populations are interchangeable because the engine's shared-walk
// per-size results are byte-identical to independent runs.
func TestMultiAssembledFromSingleRuns(t *testing.T) {
	reg := testRegistry(t)
	mgr := newTestManager(t, reg, Options{Workers: 1, MaxWalkers: 2})
	defer mgr.Close()
	base := Spec{Graph: "hk", D: 2, CSS: true, Steps: 2500, Walkers: 1, Seed: 55}
	for _, k := range []int{3, 4} {
		s := base
		s.K = k
		v, err := mgr.Submit(s)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, mgr, v.ID)
	}
	m := base
	m.Sizes = []int{3, 4}
	v, err := mgr.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Cached || v.State != StateDone || len(v.Results) != 2 {
		t.Fatalf("multi ask over warm singles: %+v, want reassembled hit", v)
	}
	if st := mgr.Stats(); st.Runs != 2 || st.MultiRuns != 0 {
		t.Fatalf("stats: %+v, want no multi run executed", st)
	}
}

// The multi-size resume acceptance test, mirroring
// TestResumeAfterCrashByteIdentical: a multi-size job killed past 50% of its
// shared budget re-queues from its journaled multi-ensemble snapshot and
// completes with every per-size result byte-identical to an uninterrupted
// run — and to independent single-size runs, transitively, via the engine's
// byte-identity guarantee.
func TestMultiResumeAfterCrashByteIdentical(t *testing.T) {
	spec := Spec{Graph: "hk", Sizes: []int{3, 4, 5}, D: 2, CSS: true, Steps: 20000, Walkers: 2, Seed: 4321}

	// Reference: the uninterrupted run.
	refMgr := newTestManager(t, testRegistry(t), Options{Workers: 1, MaxWalkers: 2, SnapshotEvery: 1000})
	ref, err := refMgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ref = waitDone(t, refMgr, ref.ID)
	refMgr.Close()

	// The crashing daemon: progress past 50%, then freeze the walkers and
	// abandon the manager (no Close → no terminal record), SIGKILL-style.
	dir := t.TempDir()
	var stall atomic.Bool
	gate := make(chan struct{}) // never closed: the frozen walkers never finish
	mgr1 := newTestManager(t, testRegistry(t), Options{
		Workers: 1, MaxWalkers: 2, SnapshotEvery: 1000, DataDir: dir,
		NewClient: func(g *graph.Graph) access.Client {
			return stallClient{Client: access.NewGraphClient(g), stall: &stall, gate: gate}
		},
	})
	v, err := mgr1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never reached 50% of its budget")
		}
		jv, ok := mgr1.Get(v.ID)
		if !ok {
			t.Fatal("job vanished")
		}
		if jv.State.terminal() {
			t.Fatalf("job finished before the crash: %+v", jv)
		}
		if jv.Progress.Steps >= spec.Steps/2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	stall.Store(true)
	mgr1.syncJournal() // the page cache survives a SIGKILL; the barrier stands in for it

	// Restart on the same data dir with an ungated client; the job resumes
	// mid-budget and completes.
	mgr2 := newTestManager(t, testRegistry(t), Options{Workers: 1, MaxWalkers: 2, SnapshotEvery: 1000, DataDir: dir})
	defer mgr2.Close()
	if st := mgr2.Stats(); st.RecoveredJobs != 1 || st.ResumableJobs != 1 {
		t.Fatalf("stats after restart: %+v, want 1 recovered / 1 resumable", st)
	}
	final := waitDone(t, mgr2, v.ID)
	if final.Progress.ResumedSteps < spec.Steps/2 {
		t.Errorf("resumed %d steps, want >= %d", final.Progress.ResumedSteps, spec.Steps/2)
	}
	if len(final.Results) != len(ref.Results) {
		t.Fatalf("resumed results: %+v vs reference %+v", final.Results, ref.Results)
	}
	for _, k := range spec.Sizes {
		sameJobResult(t, "resumed size", final.Results[k], ref.Results[k])
	}

	// The resumed completion re-warms the fan-out: a restart of the restarted
	// daemon answers every covered single-size spec from the journal-warmed
	// cache without a run.
	mgr2.syncJournal()
	mgr3 := newTestManager(t, testRegistry(t), Options{Workers: 1, MaxWalkers: 2, DataDir: dir})
	defer mgr3.Close()
	for _, k := range spec.Sizes {
		s := spec
		s.Sizes, s.K = nil, k
		hv, err := mgr3.Submit(s)
		if err != nil {
			t.Fatal(err)
		}
		if !hv.Cached || hv.State != StateDone {
			t.Fatalf("k=%d after double restart: %+v, want warm hit", k, hv)
		}
		sameJobResult(t, "journal-warmed entry", hv.Result, ref.Results[k])
	}
}
