package core

import (
	"reflect"
	"testing"

	"repro/internal/access"
)

// TestMultiByteIdenticalPerSize is the work-sharing soundness proof: a
// shared-walk multi-size run produces, for every target size k, a Result
// byte-identical to (a) a MultiEstimator configured with that size alone and
// (b) a single-size Estimator for K=k — same seed, same walker split. This
// is what lets the service fan a finished multi-size job out into the result
// cache as one entry per size: the cached entries are bit-for-bit what the
// single-size jobs would have computed.
func TestMultiByteIdenticalPerSize(t *testing.T) {
	g := convGraph()
	client := access.NewGraphClient(g)
	const n = 3000
	for _, cfg := range []MultiConfig{
		{Sizes: []int{3, 4, 5}, D: 2, Seed: 11, Walkers: 1},
		{Sizes: []int{3, 4, 5}, D: 2, CSS: true, Seed: 42, Walkers: 4},
		{Sizes: []int{4, 5}, D: 3, CSS: true, NB: true, Seed: 7, Walkers: 3},
		{Sizes: []int{5, 3, 4}, D: 2, Seed: 23, Walkers: 2}, // order must not matter
		{Sizes: []int{3, 4}, D: 2, NB: true, Seed: 99, Walkers: 8},
	} {
		multi, err := NewMultiEstimator(client, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := multi.Run(n)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Sizes, err)
		}
		if got.Steps != n {
			t.Errorf("%v: merged Steps = %d, want %d", cfg.Sizes, got.Steps, n)
		}
		for _, k := range cfg.Sizes {
			// (a) Solo multi-size run for k alone.
			soloCfg := cfg
			soloCfg.Sizes = []int{k}
			solo, err := NewMultiEstimator(client, soloCfg)
			if err != nil {
				t.Fatal(err)
			}
			soloRes, err := solo.Run(n)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Results[k], soloRes.Results[k]) {
				t.Errorf("sizes=%v d=%d k=%d: shared-walk result differs from solo multi run:\n got %+v\nwant %+v",
					cfg.Sizes, cfg.D, k, got.Results[k], soloRes.Results[k])
			}
			// (b) The single-size Estimator.
			est, err := NewEstimator(client, Config{
				K: k, D: cfg.D, CSS: cfg.CSS, NB: cfg.NB,
				Walkers: cfg.Walkers, Seed: cfg.Seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			single, err := est.Run(n)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Results[k], single) {
				t.Errorf("sizes=%v d=%d k=%d: shared-walk result differs from single-size Estimator:\n got %+v\nwant %+v",
					cfg.Sizes, cfg.D, k, got.Results[k], single)
			}
		}
	}
}

// TestMultiResumeByteIdentical mirrors TestResumeByteIdentical for the
// multi-size engine: snapshot at a mid-run checkpoint barrier, encode,
// decode, restore into a fresh MultiEstimator, run to completion — every
// size's Result must be byte-identical to the uninterrupted run's.
func TestMultiResumeByteIdentical(t *testing.T) {
	g := convGraph()
	client := access.NewGraphClient(g)
	const n, every, interruptAt = 4000, 500, 2000
	for _, cfg := range []MultiConfig{
		{Sizes: []int{3, 4, 5}, D: 2, Seed: 17, Walkers: 1},
		{Sizes: []int{3, 4, 5}, D: 2, CSS: true, Seed: 99, Walkers: 4},
		{Sizes: []int{4, 5}, D: 3, CSS: true, NB: true, Seed: 7, Walkers: 8},
		{Sizes: []int{3, 5}, D: 2, Seed: 31, Walkers: 3},
	} {
		full, err := NewMultiEstimator(client, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var blob []byte
		want, err := full.RunCheckpointsCtx(t.Context(), n, every, func(step int, conc map[int][]float64) {
			if step == interruptAt {
				blob = full.Snapshot().Encode()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if blob == nil {
			t.Fatalf("sizes=%v: no snapshot captured", cfg.Sizes)
		}

		st, err := DecodeMultiEnsembleState(blob)
		if err != nil {
			t.Fatalf("sizes=%v: decode: %v", cfg.Sizes, err)
		}
		if st.WindowsDone != interruptAt {
			t.Fatalf("sizes=%v: snapshot at %d windows, want %d", cfg.Sizes, st.WindowsDone, interruptAt)
		}
		resumed, err := NewMultiEstimator(client, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := resumed.Restore(st); err != nil {
			t.Fatalf("sizes=%v: restore: %v", cfg.Sizes, err)
		}
		got, err := resumed.RunCheckpointsCtx(t.Context(), n, every, func(int, map[int][]float64) {})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("sizes=%v: resumed result differs from uninterrupted run:\n got %+v\nwant %+v",
				cfg.Sizes, got, want)
		}
	}
}

// A multi-size snapshot taken at the final barrier resumes to an immediately
// complete run.
func TestMultiResumeAtFullBudget(t *testing.T) {
	client := access.NewGraphClient(convGraph())
	cfg := MultiConfig{Sizes: []int{3, 4}, D: 2, Seed: 5, Walkers: 2}
	est, err := NewMultiEstimator(client, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := est.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	st := est.Snapshot()
	re, err := NewMultiEstimator(client, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Restore(st); err != nil {
		t.Fatal(err)
	}
	got, err := re.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("zero-remaining resume diverged:\n got %+v\nwant %+v", got, want)
	}
}

// Multi restore validation: config mismatches and structurally impossible
// states are rejected with errors, never panics.
func TestMultiRestoreValidation(t *testing.T) {
	client := access.NewGraphClient(convGraph())
	cfg := MultiConfig{Sizes: []int{3, 4}, D: 2, Seed: 9, Walkers: 2}
	est, err := NewMultiEstimator(client, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Run(600); err != nil {
		t.Fatal(err)
	}
	good := est.Snapshot()

	fresh := func() *MultiEstimator {
		e, err := NewMultiEstimator(client, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	if err := fresh().Restore(nil); err == nil {
		t.Error("nil state accepted")
	}
	other := *good
	other.Config.Seed++
	if err := fresh().Restore(&other); err == nil {
		t.Error("seed mismatch accepted")
	}
	other = *good
	other.Config.Sizes = []int{3, 5}
	if err := fresh().Restore(&other); err == nil {
		t.Error("sizes mismatch accepted")
	}
	short := *good
	short.Walkers = good.Walkers[:1]
	if err := fresh().Restore(&short); err == nil {
		t.Error("walker-count mismatch accepted")
	}
	skew := *good
	skew.Walkers = append([]MultiWalkerState(nil), good.Walkers...)
	skew.Walkers[0].Accs = append([]MultiSizeAcc(nil), good.Walkers[0].Accs...)
	skew.Walkers[0].Accs[0].Done++
	if err := fresh().Restore(&skew); err == nil {
		t.Error("quota-inconsistent state accepted")
	}
	e := fresh()
	if err := e.Restore(good); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(100); err == nil {
		t.Error("restored state beyond the budget accepted")
	}
}

// Decoding truncated and bit-flipped multi snapshots errors instead of
// panicking, and a valid blob round-trips exactly.
func TestMultiStateDecodeRobust(t *testing.T) {
	client := access.NewGraphClient(convGraph())
	est, err := NewMultiEstimator(client, MultiConfig{Sizes: []int{3, 4, 5}, D: 2, CSS: true, Seed: 3, Walkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Run(800); err != nil {
		t.Fatal(err)
	}
	blob := est.Snapshot().Encode()

	st, err := DecodeMultiEnsembleState(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Encode(), blob) {
		t.Error("encode/decode/encode is not a fixed point")
	}
	for cut := 0; cut < len(blob); cut += 7 {
		if _, err := DecodeMultiEnsembleState(blob[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", cut)
		}
	}
	if _, err := DecodeMultiEnsembleState(append(append([]byte(nil), blob...), 0xFF)); err == nil {
		t.Error("trailing garbage decoded cleanly")
	}
	// A single-size EnsembleState blob is a different format, not a subset.
	single, err := NewEstimator(client, Config{K: 4, D: 2, Seed: 3, Walkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := single.Run(200); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMultiEnsembleState(single.Snapshot().Encode()); err == nil {
		t.Error("single-size snapshot decoded as a multi snapshot")
	}
}

// FuzzDecodeMultiEnsembleState hammers the multi decoder (and Restore on
// whatever decodes) with arbitrary bytes: the only acceptable failure mode
// is an error return.
func FuzzDecodeMultiEnsembleState(f *testing.F) {
	client := access.NewGraphClient(convGraph())
	cfg := MultiConfig{Sizes: []int{3, 4, 5}, D: 2, CSS: true, Seed: 3, Walkers: 2}
	est, err := NewMultiEstimator(client, cfg)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := est.Run(600); err != nil {
		f.Fatal(err)
	}
	blob := est.Snapshot().Encode()
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add([]byte("GMST"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeMultiEnsembleState(data)
		if err != nil {
			return
		}
		// Canonical round trip: whatever decodes must re-encode to a blob
		// that decodes back to the same structure (byte equality with the
		// input is not required — varints have non-canonical encodings).
		st2, err := DecodeMultiEnsembleState(st.Encode())
		if err != nil {
			t.Fatalf("re-encoding a decoded state does not decode: %v", err)
		}
		if !reflect.DeepEqual(st, st2) {
			t.Fatal("decode/encode/decode is not stable")
		}
		e, err := NewMultiEstimator(client, cfg)
		if err != nil {
			t.Fatal(err)
		}
		_ = e.Restore(st) // must not panic; errors are fine
	})
}
