package walk

import (
	"fmt"
	"math/rand"
	"slices"

	"repro/internal/access"
)

// Space exposes the operations a random walk and the estimator need from the
// subgraph relationship graph G(d): initial states, uniform neighbor
// sampling, and state degrees (used in the stationary-weight π̃e).
type Space interface {
	// D returns the walk order d.
	D() int
	// RandomState returns a valid starting state (a connected d-node
	// subgraph). Start-state bias vanishes by the SLLN; only validity
	// matters.
	RandomState(rng *rand.Rand) State
	// StateDegree returns the degree of s in G(d). For d >= 3 this is a
	// counting scan over the merge kernel — no neighbor states are built.
	StateDegree(s State) int
	// RandomNeighbor returns a uniformly random G(d)-neighbor of s. If s has
	// no neighbor (an isolated component smaller than d+1 nodes), s itself is
	// returned.
	RandomNeighbor(s State, rng *rand.Rand) State
	// RandomNeighborAvoiding returns a uniformly random neighbor of s other
	// than prev (non-backtracking step). If prev is s's only neighbor it is
	// returned, matching the NB-SRW transition rule for degree-1 states.
	RandomNeighborAvoiding(s, prev State, rng *rand.Rand) State
	// StateAdj returns the internal adjacency of s's nodes (bit j of entry i
	// set iff Node(i) ~ Node(j)). For d >= 3 the kernel computed the masks
	// anyway for incremental connectivity; for d <= 2 they follow from the
	// state shape. Classification layers use this to avoid re-probing
	// HasEdge for pairs the walk already resolved.
	StateAdj(s State) AdjMask
}

// NewSpace builds the G(d) state space over the client for d in 1..MaxD.
func NewSpace(c access.Client, d int) Space {
	switch {
	case d == 1:
		return &space1{c: c}
	case d == 2:
		return &space2{c: c}
	case d >= 3 && d <= MaxD:
		return newSpaceD(c, d)
	}
	panic(fmt.Sprintf("walk: unsupported d=%d", d))
}

// space1 is G(1) = G: states are single nodes.
type space1 struct {
	c access.Client
}

func (s *space1) D() int { return 1 }

func (s *space1) RandomState(rng *rand.Rand) State {
	for {
		v := s.c.RandomNode(rng)
		if s.c.Degree(v) > 0 {
			return StateOf(v)
		}
	}
}

func (s *space1) StateDegree(st State) int { return s.c.Degree(st.Node(0)) }

func (s *space1) StateAdj(State) AdjMask { return AdjMask{} }

func (s *space1) RandomNeighbor(st State, rng *rand.Rand) State {
	v := st.Node(0)
	d := s.c.Degree(v)
	if d == 0 {
		return st
	}
	return StateOf(s.c.Neighbor(v, rng.Intn(d)))
}

func (s *space1) RandomNeighborAvoiding(st, prev State, rng *rand.Rand) State {
	v := st.Node(0)
	d := s.c.Degree(v)
	switch d {
	case 0:
		return st
	case 1:
		return StateOf(s.c.Neighbor(v, 0))
	}
	p := prev.Node(0)
	for {
		w := s.c.Neighbor(v, rng.Intn(d))
		if w != p {
			return StateOf(w)
		}
	}
}

// space2 is G(2): states are edges; neighbor selection follows the paper's
// §5 two-stage procedure, O(1) expected time.
type space2 struct {
	c access.Client
}

func (s *space2) D() int { return 2 }

func (s *space2) RandomState(rng *rand.Rand) State {
	for {
		v := s.c.RandomNode(rng)
		d := s.c.Degree(v)
		if d == 0 {
			continue
		}
		return StateOf(v, s.c.Neighbor(v, rng.Intn(d)))
	}
}

// StateDegree of edge (u,v) in G(2) is du + dv - 2 (paper §4.1 example).
func (s *space2) StateDegree(st State) int {
	return s.c.Degree(st.Node(0)) + s.c.Degree(st.Node(1)) - 2
}

// StateAdj: a G(2) state is an edge, so its two nodes are always adjacent.
func (s *space2) StateAdj(State) AdjMask { return AdjMask{1 << 1, 1 << 0} }

func (s *space2) RandomNeighbor(st State, rng *rand.Rand) State {
	u, v := st.Node(0), st.Node(1)
	du, dv := s.c.Degree(u), s.c.Degree(v)
	if du+dv-2 <= 0 {
		return st // isolated edge component; hold in place
	}
	for {
		// Pick an endpoint proportionally to its degree, then one of its
		// neighbors uniformly; reject the partner endpoint. Each of the
		// du+dv-2 neighboring edges is uniform.
		base, other := u, v
		if rng.Intn(du+dv) >= du {
			base, other = v, u
		}
		w := s.c.Neighbor(base, rng.Intn(s.c.Degree(base)))
		if w != other {
			return StateOf(base, w)
		}
	}
}

func (s *space2) RandomNeighborAvoiding(st, prev State, rng *rand.Rand) State {
	if s.StateDegree(st) <= 1 {
		return prev
	}
	for {
		next := s.RandomNeighbor(st, rng)
		if next != prev {
			return next
		}
	}
}

// spaceD is G(d) for d >= 3, served by the merge-based kernel (kernel.go):
// candidates come from a (d-1)-way sorted merge of adjacency rows,
// connectivity of rem ∪ {y} is decided from precomputed component masks plus
// the merge's membership bitmask, and transitions never materialize neighbor
// lists — a counting scan yields the degree and a partial scan of one
// dropped-node group yields the uniformly drawn neighbor. The per-state
// kernel records are cached in a bounded clock-evicting cache (see
// infoCacheCap and infoCache).
type spaceD struct {
	c    access.Client
	cc   access.CommonCounter // non-nil iff c's access is free (see access.CommonCounter)
	d    int
	info infoCache
}

func newSpaceD(c access.Client, d int) *spaceD {
	cc, _ := c.(access.CommonCounter)
	return &spaceD{c: c, cc: cc, d: d, info: newInfoCache()}
}

func (s *spaceD) D() int { return s.d }

func (s *spaceD) RandomState(rng *rand.Rand) State {
	for {
		v := s.c.RandomNode(rng)
		if s.c.Degree(v) == 0 {
			continue
		}
		nodes := []int32{v}
		ok := true
		for len(nodes) < s.d {
			// Add a random neighbor of a random already-chosen node.
			base := nodes[rng.Intn(len(nodes))]
			db := s.c.Degree(base)
			w := s.c.Neighbor(base, rng.Intn(db))
			dup := false
			for _, x := range nodes {
				if x == w {
					dup = true
					break
				}
			}
			if dup {
				// Retry a bounded number of times via outer restart to avoid
				// livelock in tiny components.
				if rng.Intn(4) == 0 {
					ok = false
					break
				}
				continue
			}
			nodes = append(nodes, w)
		}
		if ok {
			return StateOf(nodes...)
		}
	}
}

func (s *spaceD) StateDegree(st State) int { return int(s.infoOf(st).deg) }

func (s *spaceD) StateAdj(st State) AdjMask { return s.infoOf(st).adj }

func (s *spaceD) RandomNeighbor(st State, rng *rand.Rand) State {
	fi := s.infoOf(st)
	if fi.deg == 0 {
		return st
	}
	return s.nthNeighbor(st, fi, int32(rng.Intn(int(fi.deg))))
}

func (s *spaceD) RandomNeighborAvoiding(st, prev State, rng *rand.Rand) State {
	fi := s.infoOf(st)
	switch fi.deg {
	case 0:
		return st
	case 1:
		return s.nthNeighbor(st, fi, 0)
	}
	for {
		next := s.nthNeighbor(st, fi, int32(rng.Intn(int(fi.deg))))
		if next != prev {
			return next
		}
	}
}

// neighbors materializes the full G(d) neighbor list of st in canonical
// order through the production group scans. Only tests and verification
// tooling call it; the walk paths go through infoOf/nthNeighbor.
func (s *spaceD) neighbors(st State) []State {
	fi := s.infoOf(st)
	out := make([]State, 0, fi.deg)
	var g groupScan
	for xi := 0; xi < st.Len(); xi++ {
		g.prepare(s.c, st, xi, fi.adj)
		out = g.appendGroup(out)
	}
	return out
}

// referenceNeighbors is the retained naive §5 materialization — gather every
// neighbor of the d-1 retained nodes, sort, dedup, then re-derive
// connectivity per candidate with HasEdge probes. It defines the canonical
// neighbor order the merge kernel must reproduce exactly (same elements,
// same positions: RNG draw sequences depend on it) and serves as the
// equivalence oracle in tests. Never called on walk paths.
func referenceNeighbors(c access.Client, st State) []State {
	var out []State
	d := st.Len()
	var rem [MaxD]int32
	var cand []int32
	for xi := 0; xi < d; xi++ {
		// rem = st minus node xi.
		n := 0
		for i := 0; i < d; i++ {
			if i != xi {
				rem[n] = st.Node(i)
				n++
			}
		}
		// Candidate incoming nodes: neighbors of rem, excluding st's nodes.
		cand = cand[:0]
		for i := 0; i < n; i++ {
			for _, y := range c.Neighbors(rem[i]) {
				if !st.Contains(y) {
					cand = append(cand, y)
				}
			}
		}
		slices.Sort(cand)
		var prev int32 = -1
		for _, y := range cand {
			if y == prev {
				continue
			}
			prev = y
			if referenceConnectedWith(c, rem[:n], y) {
				out = append(out, StateOf(append(rem[:n:n], y)...))
			}
		}
	}
	return out
}

// referenceConnectedWith reports whether rem ∪ {y} induces a connected
// subgraph, probing every pair — the per-candidate cost the merge kernel's
// incremental connectivity eliminates.
func referenceConnectedWith(c access.Client, rem []int32, y int32) bool {
	var nodes [MaxD]int32
	copy(nodes[:], rem)
	nodes[len(rem)] = y
	n := len(rem) + 1
	var adj [MaxD]uint8
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if c.HasEdge(nodes[i], nodes[j]) {
				adj[i] |= 1 << uint(j)
				adj[j] |= 1 << uint(i)
			}
		}
	}
	reach := uint8(1)
	for {
		next := reach
		for v := 0; v < n; v++ {
			if reach&(1<<uint(v)) != 0 {
				next |= adj[v]
			}
		}
		if next == reach {
			break
		}
		reach = next
	}
	return reach == uint8(1<<uint(n))-1
}
