package walk

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/access"
)

// Space exposes the operations a random walk and the estimator need from the
// subgraph relationship graph G(d): initial states, uniform neighbor
// sampling, and state degrees (used in the stationary-weight π̃e).
type Space interface {
	// D returns the walk order d.
	D() int
	// RandomState returns a valid starting state (a connected d-node
	// subgraph). Start-state bias vanishes by the SLLN; only validity
	// matters.
	RandomState(rng *rand.Rand) State
	// StateDegree returns the degree of s in G(d).
	StateDegree(s State) int
	// RandomNeighbor returns a uniformly random G(d)-neighbor of s. If s has
	// no neighbor (an isolated component smaller than d+1 nodes), s itself is
	// returned.
	RandomNeighbor(s State, rng *rand.Rand) State
	// RandomNeighborAvoiding returns a uniformly random neighbor of s other
	// than prev (non-backtracking step). If prev is s's only neighbor it is
	// returned, matching the NB-SRW transition rule for degree-1 states.
	RandomNeighborAvoiding(s, prev State, rng *rand.Rand) State
}

// NewSpace builds the G(d) state space over the client for d in 1..MaxD.
func NewSpace(c access.Client, d int) Space {
	switch {
	case d == 1:
		return &space1{c: c}
	case d == 2:
		return &space2{c: c}
	case d >= 3 && d <= MaxD:
		return newSpaceD(c, d)
	}
	panic(fmt.Sprintf("walk: unsupported d=%d", d))
}

// space1 is G(1) = G: states are single nodes.
type space1 struct {
	c access.Client
}

func (s *space1) D() int { return 1 }

func (s *space1) RandomState(rng *rand.Rand) State {
	for {
		v := s.c.RandomNode(rng)
		if s.c.Degree(v) > 0 {
			return StateOf(v)
		}
	}
}

func (s *space1) StateDegree(st State) int { return s.c.Degree(st.Node(0)) }

func (s *space1) RandomNeighbor(st State, rng *rand.Rand) State {
	v := st.Node(0)
	d := s.c.Degree(v)
	if d == 0 {
		return st
	}
	return StateOf(s.c.Neighbor(v, rng.Intn(d)))
}

func (s *space1) RandomNeighborAvoiding(st, prev State, rng *rand.Rand) State {
	v := st.Node(0)
	d := s.c.Degree(v)
	switch d {
	case 0:
		return st
	case 1:
		return StateOf(s.c.Neighbor(v, 0))
	}
	p := prev.Node(0)
	for {
		w := s.c.Neighbor(v, rng.Intn(d))
		if w != p {
			return StateOf(w)
		}
	}
}

// space2 is G(2): states are edges; neighbor selection follows the paper's
// §5 two-stage procedure, O(1) expected time.
type space2 struct {
	c access.Client
}

func (s *space2) D() int { return 2 }

func (s *space2) RandomState(rng *rand.Rand) State {
	for {
		v := s.c.RandomNode(rng)
		d := s.c.Degree(v)
		if d == 0 {
			continue
		}
		return StateOf(v, s.c.Neighbor(v, rng.Intn(d)))
	}
}

// StateDegree of edge (u,v) in G(2) is du + dv - 2 (paper §4.1 example).
func (s *space2) StateDegree(st State) int {
	return s.c.Degree(st.Node(0)) + s.c.Degree(st.Node(1)) - 2
}

func (s *space2) RandomNeighbor(st State, rng *rand.Rand) State {
	u, v := st.Node(0), st.Node(1)
	du, dv := s.c.Degree(u), s.c.Degree(v)
	if du+dv-2 <= 0 {
		return st // isolated edge component; hold in place
	}
	for {
		// Pick an endpoint proportionally to its degree, then one of its
		// neighbors uniformly; reject the partner endpoint. Each of the
		// du+dv-2 neighboring edges is uniform.
		base, other := u, v
		if rng.Intn(du+dv) >= du {
			base, other = v, u
		}
		w := s.c.Neighbor(base, rng.Intn(s.c.Degree(base)))
		if w != other {
			return StateOf(base, w)
		}
	}
}

func (s *space2) RandomNeighborAvoiding(st, prev State, rng *rand.Rand) State {
	if s.StateDegree(st) <= 1 {
		return prev
	}
	for {
		next := s.RandomNeighbor(st, rng)
		if next != prev {
			return next
		}
	}
}

// spaceD is G(d) for d >= 3: the neighbor list of a state is materialized by
// swapping each node out and pulling in every neighbor of the remainder that
// keeps the induced subgraph connected (paper §5, O(d^2 |E|/|V|) per state).
// A tiny cache keyed by state avoids recomputing lists for the window states
// the estimator re-queries.
type spaceD struct {
	c access.Client
	d int

	cache map[State][]State
	cand  []int32 // scratch: candidate incoming nodes
}

func newSpaceD(c access.Client, d int) *spaceD {
	return &spaceD{c: c, d: d, cache: make(map[State][]State, 16)}
}

func (s *spaceD) D() int { return s.d }

func (s *spaceD) RandomState(rng *rand.Rand) State {
	for {
		v := s.c.RandomNode(rng)
		if s.c.Degree(v) == 0 {
			continue
		}
		nodes := []int32{v}
		ok := true
		for len(nodes) < s.d {
			// Add a random neighbor of a random already-chosen node.
			base := nodes[rng.Intn(len(nodes))]
			db := s.c.Degree(base)
			w := s.c.Neighbor(base, rng.Intn(db))
			dup := false
			for _, x := range nodes {
				if x == w {
					dup = true
					break
				}
			}
			if dup {
				// Retry a bounded number of times via outer restart to avoid
				// livelock in tiny components.
				if rng.Intn(4) == 0 {
					ok = false
					break
				}
				continue
			}
			nodes = append(nodes, w)
		}
		if ok {
			return StateOf(nodes...)
		}
	}
}

func (s *spaceD) StateDegree(st State) int { return len(s.neighbors(st)) }

func (s *spaceD) RandomNeighbor(st State, rng *rand.Rand) State {
	ns := s.neighbors(st)
	if len(ns) == 0 {
		return st
	}
	return ns[rng.Intn(len(ns))]
}

func (s *spaceD) RandomNeighborAvoiding(st, prev State, rng *rand.Rand) State {
	ns := s.neighbors(st)
	switch len(ns) {
	case 0:
		return st
	case 1:
		return ns[0]
	}
	for {
		next := ns[rng.Intn(len(ns))]
		if next != prev {
			return next
		}
	}
}

// neighbors materializes (and caches) the full G(d) neighbor list of st.
func (s *spaceD) neighbors(st State) []State {
	if ns, ok := s.cache[st]; ok {
		return ns
	}
	var out []State
	d := st.Len()
	var rem [MaxD]int32
	for xi := 0; xi < d; xi++ {
		// rem = st minus node xi.
		n := 0
		for i := 0; i < d; i++ {
			if i != xi {
				rem[n] = st.Node(i)
				n++
			}
		}
		// Candidate incoming nodes: neighbors of rem, excluding st's nodes.
		// Gather then sort-dedup — allocation-free after warm-up.
		cand := s.cand[:0]
		for i := 0; i < n; i++ {
			for _, y := range s.c.Neighbors(rem[i]) {
				if !st.Contains(y) {
					cand = append(cand, y)
				}
			}
		}
		sortInt32(cand)
		s.cand = cand
		var prev int32 = -1
		for _, y := range cand {
			if y == prev {
				continue
			}
			prev = y
			if s.connectedWith(rem[:n], y) {
				out = append(out, newStateReplacing(rem[:n], y))
			}
		}
	}
	// Bound the cache: the walk only revisits states inside the current
	// window, so a small cache suffices.
	if len(s.cache) >= 32 {
		for k := range s.cache {
			delete(s.cache, k)
		}
	}
	s.cache[st] = out
	return out
}

// connectedWith reports whether rem ∪ {y} induces a connected subgraph.
func (s *spaceD) connectedWith(rem []int32, y int32) bool {
	var nodes [MaxD]int32
	copy(nodes[:], rem)
	nodes[len(rem)] = y
	n := len(rem) + 1
	var adj [MaxD]uint8
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if s.c.HasEdge(nodes[i], nodes[j]) {
				adj[i] |= 1 << uint(j)
				adj[j] |= 1 << uint(i)
			}
		}
	}
	reach := uint8(1)
	for {
		next := reach
		for v := 0; v < n; v++ {
			if reach&(1<<uint(v)) != 0 {
				next |= adj[v]
			}
		}
		if next == reach {
			break
		}
		reach = next
	}
	return reach == uint8(1<<uint(n))-1
}

// sortInt32 sorts in place (small inputs dominate: insertion sort below a
// threshold, stdlib sort above).
func sortInt32(xs []int32) {
	if len(xs) < 24 {
		for i := 1; i < len(xs); i++ {
			for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
				xs[j], xs[j-1] = xs[j-1], xs[j]
			}
		}
		return
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

func newStateReplacing(rem []int32, y int32) State {
	nodes := make([]int32, 0, MaxD)
	nodes = append(nodes, rem...)
	nodes = append(nodes, y)
	return StateOf(nodes...)
}
