package apiserver

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
)

// canonicalRow must pass conforming rows through untouched (same backing
// array — no copy on the hot path) and repair unsorted or duplicated rows
// from a nonconforming server into the strict access.Client contract.
func TestCanonicalRow(t *testing.T) {
	sorted := []int32{1, 3, 7}
	if got := canonicalRow(sorted); &got[0] != &sorted[0] {
		t.Error("conforming row was copied")
	}
	for _, tc := range [][2][]int32{
		{{7, 1, 3}, {1, 3, 7}},
		{{1, 1, 3, 7, 7}, {1, 3, 7}},
		{{5, 2, 5, 2}, {2, 5}},
		{{4}, {4}},
	} {
		got := canonicalRow(append([]int32(nil), tc[0]...))
		if !reflect.DeepEqual(got, tc[1]) {
			t.Errorf("canonicalRow(%v) = %v, want %v", tc[0], got, tc[1])
		}
	}
}

func newTestServer(t *testing.T) (*httptest.Server, *Handler) {
	t.Helper()
	g := gen.HolmeKim(300, 3, 0.6, 7)
	h := NewHandler(g, 1)
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, h
}

func TestNeighborsEndpoint(t *testing.T) {
	srv, h := newTestServer(t)
	resp, err := http.Get(srv.URL + "/v1/nodes/0/neighbors")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	var body neighborsResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.ID != 0 || body.Degree != len(body.Neighbors) {
		t.Errorf("bad body %+v", body)
	}
	if body.Degree != h.g.Degree(0) {
		t.Errorf("degree %d, want %d", body.Degree, h.g.Degree(0))
	}
}

func TestNotFoundAndBadRequests(t *testing.T) {
	srv, _ := newTestServer(t)
	for path, want := range map[string]int{
		"/v1/nodes/99999/neighbors": http.StatusNotFound,
		"/v1/nodes/xx/neighbors":    http.StatusNotFound,
		"/v1/edge?u=a&v=1":          http.StatusBadRequest,
		"/v1/edge?u=1&v=99999":      http.StatusBadRequest,
		"/nope":                     http.StatusNotFound,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func TestEdgeEndpoint(t *testing.T) {
	srv, h := newTestServer(t)
	u := int32(0)
	v := h.g.Neighbors(u)[0]
	var body edgeResponse
	resp, err := http.Get(srv.URL + "/v1/edge?u=0&v=" + itoa(v))
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if !body.Exists {
		t.Error("existing edge reported missing")
	}
}

func itoa(v int32) string {
	b, _ := json.Marshal(v)
	return string(b)
}

func TestClientImplementsAccess(t *testing.T) {
	srv, h := newTestServer(t)
	c := NewClient(srv.URL, srv.Client())
	if c.Degree(0) != h.g.Degree(0) {
		t.Errorf("Degree mismatch")
	}
	ns := c.Neighbors(5)
	want := h.g.Neighbors(5)
	if len(ns) != len(want) {
		t.Fatalf("Neighbors(5) = %v, want %v", ns, want)
	}
	for i := range ns {
		if ns[i] != want[i] {
			t.Fatalf("Neighbors(5) = %v, want %v", ns, want)
		}
	}
	if c.Neighbor(5, 0) != want[0] {
		t.Error("Neighbor mismatch")
	}
	if c.HasEdge(5, want[0]) != true {
		t.Error("HasEdge false for existing edge")
	}
	v := c.RandomNode(nil)
	if v < 0 || int(v) >= h.g.NumNodes() {
		t.Errorf("RandomNode = %d", v)
	}
}

// TestClientCaching: revisiting a node must not issue another request.
func TestClientCaching(t *testing.T) {
	srv, _ := newTestServer(t)
	c := NewClient(srv.URL, srv.Client())
	c.Neighbors(3)
	n := c.RequestCount()
	c.Neighbors(3)
	c.Degree(3)
	c.Neighbor(3, 0)
	if c.RequestCount() != n {
		t.Errorf("cache miss on revisit: %d -> %d requests", n, c.RequestCount())
	}
}

// TestClientDefaultTimeout: a nil http.Client must not silently become
// http.DefaultClient, whose zero timeout hangs forever on a dead server.
func TestClientDefaultTimeout(t *testing.T) {
	c := NewClient("http://example.invalid", nil)
	if c.http == http.DefaultClient {
		t.Fatal("nil http.Client fell back to http.DefaultClient")
	}
	if c.http.Timeout != DefaultTimeout {
		t.Errorf("default client timeout = %v, want %v", c.http.Timeout, DefaultTimeout)
	}
}

// TestClientContextDeadline: a WithContext client must abandon a hung server
// when its deadline passes (surfaced via the client's panic convention), and
// the derived client must share the original's crawl session.
func TestClientContextDeadline(t *testing.T) {
	srv, _ := newTestServer(t)
	c := NewClient(srv.URL, srv.Client())
	c.Neighbors(3) // warm one row through the base client
	n := c.RequestCount()

	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	t.Cleanup(hung.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	hc := NewClient(hung.URL, hung.Client()).WithContext(ctx)

	done := make(chan string, 1)
	go func() {
		defer func() { done <- fmt.Sprint(recover()) }()
		hc.Neighbors(0)
	}()
	select {
	case msg := <-done:
		if !strings.Contains(msg, "context deadline exceeded") {
			t.Errorf("hung fetch panicked with %q, want a deadline error", msg)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("deadline-scoped fetch still blocked after 10s")
	}

	// Session sharing: the derivation reads the base client's cache without
	// another round trip, and both count requests on the same counter.
	scoped := c.WithContext(context.Background())
	scoped.Neighbors(3)
	if got := scoped.RequestCount(); got != n {
		t.Errorf("derived client refetched a cached row: %d -> %d requests", n, got)
	}
}

// TestEstimateOverHTTP runs the full framework over the HTTP boundary and
// checks it converges to the exact triangle concentration — the end-to-end
// proof of the restricted-access design.
func TestEstimateOverHTTP(t *testing.T) {
	srv, h := newTestServer(t)
	c := NewClient(srv.URL, srv.Client())
	est, err := core.NewEstimator(c, core.Config{K: 3, D: 1, CSS: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	res, err := est.Run(30000)
	if err != nil {
		t.Fatal(err)
	}
	want := exact.Concentrations(exact.ThreeNodeCounts(h.g))
	got := res.Concentration()
	if math.Abs(got[1]-want[1]) > 0.2*want[1] {
		t.Errorf("triangle concentration over HTTP: got %.4f, want %.4f", got[1], want[1])
	}
	if c.RequestCount() >= 30000 {
		t.Errorf("caching ineffective: %d requests for 30000 steps on a 300-node graph", c.RequestCount())
	}
}

// TestClientConcurrentSingleFlight hammers one node from many goroutines
// (run with -race): the per-node single flight must collapse them into one
// HTTP round trip.
func TestClientConcurrentSingleFlight(t *testing.T) {
	srv, h := newTestServer(t)
	c := NewClient(srv.URL, srv.Client())
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				for v := int32(0); v < 10; v++ {
					c.Neighbors(v)
				}
			}
		}()
	}
	wg.Wait()
	if got := c.RequestCount(); got != 10 {
		t.Errorf("%d HTTP requests for 10 distinct nodes, want 10", got)
	}
	want := h.g.Neighbors(4)
	got := c.Neighbors(4)
	if len(got) != len(want) {
		t.Fatalf("Neighbors(4) corrupted under concurrency: %v", got)
	}
}

// TestParallelEstimateOverHTTP drives a 4-walker ensemble over the httptest
// boundary through one shared client (run with -race): the merged result and
// the request counter must be exact — identical across repeated runs against
// identically-seeded servers — because walker starts draw the server-side
// seeds in walker-index order and the shared cache deduplicates every
// neighbor fetch. Each run gets a fresh server so /v1/nodes/random replays
// the same stream.
func TestParallelEstimateOverHTTP(t *testing.T) {
	var h *Handler
	cfg := core.Config{K: 3, D: 1, CSS: true, Seed: 11, Walkers: 4}
	run := func() (*core.Result, int64) {
		var srv *httptest.Server
		srv, h = newTestServer(t)
		c := NewClient(srv.URL, srv.Client())
		est, err := core.NewEstimator(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := est.Run(20000)
		if err != nil {
			t.Fatal(err)
		}
		return res, c.RequestCount()
	}
	res1, req1 := run()
	res2, req2 := run()
	if !reflect.DeepEqual(res1, res2) {
		t.Error("merged results differ across identical runs over HTTP")
	}
	if req1 != req2 {
		t.Errorf("request counts differ across identical runs: %d vs %d", req1, req2)
	}
	// The walkers never re-fetch: requests stay bounded by the node count
	// plus the per-walker /nodes/random seeds.
	if req1 >= int64(h.g.NumNodes())+int64(cfg.Walkers)+1 {
		t.Errorf("caching ineffective: %d requests for a %d-node graph", req1, h.g.NumNodes())
	}
	want := exact.Concentrations(exact.ThreeNodeCounts(h.g))
	got := res1.Concentration()
	if math.Abs(got[1]-want[1]) > 0.2*want[1] {
		t.Errorf("4-walker triangle concentration over HTTP: got %.4f, want %.4f", got[1], want[1])
	}
}
