package core

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/gen"
)

// A cancelled context stops a checkpointed run at the next barrier: the
// partial Result is returned with ctx.Err(), and fewer windows than the
// budget were processed.
func TestRunCheckpointsCtxCancellation(t *testing.T) {
	g := gen.HolmeKim(300, 3, 0.5, 42)
	client := access.NewGraphClient(g)
	est, err := NewEstimator(client, Config{K: 4, D: 2, CSS: true, Seed: 9, Walkers: 2})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	const budget = 100000
	var snapshots int
	res, err := est.RunCheckpointsCtx(ctx, budget, 1000, func(step int, conc []float64) {
		snapshots++
		if step >= 2000 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned no partial result")
	}
	if res.Steps == 0 || res.Steps >= budget {
		t.Fatalf("partial Steps = %d, want in (0, %d)", res.Steps, budget)
	}
	if snapshots == 0 {
		t.Fatal("no snapshots before cancellation")
	}
}

// An already-cancelled context stops the run before any window is processed,
// even with no snapshot callback.
func TestRunCheckpointsCtxPreCancelled(t *testing.T) {
	g := gen.HolmeKim(300, 3, 0.5, 42)
	est, err := NewEstimator(access.NewGraphClient(g), Config{K: 3, D: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := est.RunCheckpointsCtx(ctx, 5000, 0, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Steps != 0 {
		t.Fatalf("pre-cancelled run processed %v steps", res)
	}
}

// Step-granular cancellation: with no snapshot callback the whole budget is
// one barrier-free stage, yet the walkers' in-stage context polls stop the
// run well before the budget is consumed — previously a mid-stage cancel was
// only observed at the next checkpoint barrier, which for a barrier-free run
// meant the very end.
func TestStepGranularCancellation(t *testing.T) {
	g := gen.HolmeKim(300, 3, 0.5, 42)
	// Slow the crawl so the budget takes far longer than the test: without
	// step-granular stops this run would take minutes.
	client := access.NewDelayed(access.NewGraphClient(g), 20*time.Microsecond)
	est, err := NewEstimator(client, Config{K: 4, D: 2, Seed: 11, Walkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	const budget = 10_000_000
	start := time.Now()
	res, err := est.RunCheckpointsCtx(ctx, budget, 0, nil) // no barriers at all
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Steps == 0 || res.Steps >= budget {
		t.Fatalf("partial result %+v, want Steps in (0, %d)", res, budget)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancel took %v to stop a barrier-free stage", elapsed)
	}
}

// A background context keeps RunCheckpointsCtx byte-identical to
// RunCheckpoints (no extra barriers are introduced for a non-cancellable
// context).
func TestRunCheckpointsCtxBackgroundEquivalence(t *testing.T) {
	g := gen.HolmeKim(300, 3, 0.5, 42)
	cfg := Config{K: 4, D: 2, CSS: true, Seed: 5, Walkers: 3}

	est1, err := NewEstimator(access.NewGraphClient(g), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := est1.Run(4000)
	if err != nil {
		t.Fatal(err)
	}
	est2, err := NewEstimator(access.NewGraphClient(g), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := est2.RunCheckpointsCtx(context.Background(), 4000, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Steps != r2.Steps || r1.ValidSamples != r2.ValidSamples {
		t.Fatalf("diverged: %+v vs %+v", r1, r2)
	}
	for i := range r1.Weights {
		if r1.Weights[i] != r2.Weights[i] {
			t.Fatalf("weight %d diverged: %v vs %v", i, r1.Weights[i], r2.Weights[i])
		}
	}
}

// explodingClient panics on neighbor access once its call budget is spent,
// imitating a crawl client losing its transport mid-run.
type explodingClient struct {
	access.Client
	calls atomic.Int64
	limit int64
}

func (c *explodingClient) Neighbors(v int32) []int32 {
	if c.calls.Add(1) > c.limit {
		panic("transport down")
	}
	return c.Client.Neighbors(v)
}

func (c *explodingClient) Neighbor(v int32, i int) int32 {
	if c.calls.Add(1) > c.limit {
		panic("transport down")
	}
	return c.Client.Neighbor(v, i)
}

// A client panic inside a walker surfaces as an error for single- and
// multi-walker ensembles alike (no walker-count-dependent crash).
func TestWalkerPanicBecomesError(t *testing.T) {
	g := gen.HolmeKim(300, 3, 0.5, 42)
	for _, walkers := range []int{1, 3} {
		client := &explodingClient{Client: access.NewGraphClient(g), limit: 50}
		est, err := NewEstimator(client, Config{K: 3, D: 1, Seed: 2, Walkers: walkers})
		if err != nil {
			t.Fatal(err)
		}
		_, err = est.Run(100000)
		if err == nil || !strings.Contains(err.Error(), "transport down") {
			t.Fatalf("walkers=%d: err = %v, want walker panic converted to error", walkers, err)
		}
	}
}
