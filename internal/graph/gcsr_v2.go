package graph

// Binary CSR on-disk format, version 2: block-compressed adjacency.
//
// Version 1 (gcsr.go) stores the off/adj arrays raw so the mmap path can
// alias them zero-copy — at ~4 bytes per arc plus 8 bytes per node, the
// dominant disk and page-cache cost once a node hosts many registered
// graphs. Version 2 halves that: sorted neighbor rows are delta+varint
// encoded into fixed-target-size blocks (DefaultBlockBytes of encoded rows),
// each carrying its own CRC-32C, with a block index mapping contiguous node
// ranges to block extents. Reads go through a bounded decoded-block cache
// (blockcache.go) so warm walk steps stay allocation-free; the degree/off
// array is reconstructed on the heap at open time so Degree stays O(1).
//
// Layout (all integers little-endian):
//
//	offset  size            field
//	0       4               magic "GCSR"
//	4       4               format version (2)
//	8       8               n, number of nodes
//	16      8               m, number of undirected edges
//	24      8               max degree
//	32      8               number of blocks
//	40      4               flags (bit 0: original-IDs section present)
//	44      4               CRC-32C of the metadata tail (index + IDs sections)
//	48      numBlocks*32    block index (see below)
//	...     n*8             original IDs, int64 (only with flag bit 0)
//	...     ...             block region: concatenated encoded blocks
//
// Block index entry (32 bytes): firstNode u32, nodeCount u32, arcCount u32,
// blockCRC u32, fileOffset u64, encodedLen u32, reserved u32 (zero). Blocks
// cover contiguous node ranges starting at node 0 and their extents tile the
// block region exactly (no gaps, no trailing bytes), which parseV2 enforces.
//
// Row encoding, per node v of a block, in node order:
//
//	uvarint(degree)
//	uvarint(first neighbor)            — absolute value
//	uvarint(gap-1) per later neighbor  — rows are strictly ascending, so
//	                                     every gap is >= 1
//
// The metadata tail CRC is verified at open; each block's CRC is verified
// when the block is decoded (including once per block during the open-time
// validation sweep, so a corrupt file fails loudly at open, not mid-walk).
// decodeV2Block bounds-checks every varint and rejects out-of-range,
// unsorted or self-loop neighbors and trailing bytes, mirroring the repo's
// other binary codecs (GEST/GDPA).

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unsafe"
)

const (
	gcsrVersion2     = 2
	gcsrV2HeaderSize = 48
	gcsrV2IndexEntry = 32

	gcsrV2FlagIDs    = 1 << 0
	gcsrV2KnownFlags = gcsrV2FlagIDs

	// DefaultBlockBytes is the target encoded size of one adjacency block:
	// large enough to amortize per-block index and CRC overhead, small
	// enough that one decode miss stays cheap and the cache can hold a
	// working set at fine granularity.
	DefaultBlockBytes = 64 << 10

	// DefaultBlockCacheBytes bounds the decoded-block cache of one opened
	// v2 graph when OpenOptions.BlockCacheBytes is zero.
	DefaultBlockCacheBytes = 64 << 20
)

// SaveOptions selects the on-disk encoding written by SaveOpts.
type SaveOptions struct {
	// Version is the .gcsr format version: 0 or 1 write version 1 (raw
	// arrays, zero-copy mmap), 2 writes the block-compressed version 2.
	Version int
	// BlockBytes is the target encoded block size for version 2 (0 means
	// DefaultBlockBytes). A single row larger than the target becomes its
	// own oversized block; rows never split across blocks.
	BlockBytes int
	// IDs, when non-nil, is the dense→original node ID mapping embedded as
	// the version-2 original-IDs section. len(IDs) must equal NumNodes.
	// Version 1 cannot embed IDs — write a sidecar with SaveIDs instead.
	IDs []int64
}

// OpenOptions tunes OpenMappedOpts.
type OpenOptions struct {
	// BlockCacheBytes bounds the decoded-block cache of a version-2 graph
	// (0 means DefaultBlockCacheBytes). Ignored for version-1 files, whose
	// mmap path needs no decode cache.
	BlockCacheBytes int64
}

// gcsrV2Header is the decoded fixed-size version-2 header.
type gcsrV2Header struct {
	n         int64
	m         int64
	maxDeg    int64
	numBlocks int64
	flags     uint32
	metaCRC   uint32
}

func (h gcsrV2Header) indexBytes() int64 { return h.numBlocks * gcsrV2IndexEntry }
func (h gcsrV2Header) idsBytes() int64 {
	if h.flags&gcsrV2FlagIDs != 0 {
		return h.n * 8
	}
	return 0
}
func (h gcsrV2Header) idsStart() int64    { return gcsrV2HeaderSize + h.indexBytes() }
func (h gcsrV2Header) blocksStart() int64 { return h.idsStart() + h.idsBytes() }

// blockMeta is one decoded block-index entry.
type blockMeta struct {
	first  int32
	count  int32
	arcs   int32
	crc    uint32
	off    int64 // absolute file offset of the encoded block
	encLen int32
}

// v2Layout is the parsed and validated skeleton of a version-2 file:
// everything except the block payloads themselves.
type v2Layout struct {
	h     gcsrV2Header
	metas []blockMeta
}

// WriteBinaryV2 writes g in the version-2 block-compressed format.
func WriteBinaryV2(w io.Writer, g *Graph, o SaveOptions) error {
	blockBytes := o.BlockBytes
	if blockBytes <= 0 {
		blockBytes = DefaultBlockBytes
	}
	n := g.NumNodes()
	if o.IDs != nil && len(o.IDs) != n {
		return fmt.Errorf("gcsr: %d original IDs for %d nodes", len(o.IDs), n)
	}

	// Encode every row, cutting a block boundary before the row that would
	// push a non-empty block past the target size.
	type openBlock struct {
		first int32
		count int32
		arcs  int32
		start int // byte offset into enc
	}
	var (
		enc   []byte
		metas []blockMeta
		cur   openBlock
	)
	closeBlock := func(end int) {
		metas = append(metas, blockMeta{
			first:  cur.first,
			count:  cur.count,
			arcs:   cur.arcs,
			crc:    crc32.Checksum(enc[cur.start:end], castagnoli),
			off:    int64(cur.start), // rebased below
			encLen: int32(end - cur.start),
		})
	}
	for v := 0; v < n; v++ {
		row := g.Neighbors(int32(v))
		rowStart := len(enc)
		enc = appendEncodedRow(enc, row)
		if cur.count > 0 && len(enc)-cur.start > blockBytes {
			closeBlock(rowStart)
			cur = openBlock{first: int32(v), start: rowStart}
		}
		cur.count++
		cur.arcs += int32(len(row))
	}
	if cur.count > 0 {
		closeBlock(len(enc))
	}

	// Assemble the metadata tail (index + IDs) to checksum it.
	h := gcsrV2Header{
		n:         int64(n),
		m:         g.m,
		maxDeg:    int64(g.maxDeg),
		numBlocks: int64(len(metas)),
		flags:     0,
	}
	if o.IDs != nil {
		h.flags |= gcsrV2FlagIDs
	}
	meta := make([]byte, 0, h.indexBytes()+h.idsBytes())
	blocksStart := h.blocksStart()
	for _, bm := range metas {
		var e [gcsrV2IndexEntry]byte
		binary.LittleEndian.PutUint32(e[0:4], uint32(bm.first))
		binary.LittleEndian.PutUint32(e[4:8], uint32(bm.count))
		binary.LittleEndian.PutUint32(e[8:12], uint32(bm.arcs))
		binary.LittleEndian.PutUint32(e[12:16], bm.crc)
		binary.LittleEndian.PutUint64(e[16:24], uint64(blocksStart+bm.off))
		binary.LittleEndian.PutUint32(e[24:28], uint32(bm.encLen))
		// e[28:32] reserved, zero.
		meta = append(meta, e[:]...)
	}
	for _, id := range o.IDs {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(id))
		meta = append(meta, b[:]...)
	}

	var hdr [gcsrV2HeaderSize]byte
	copy(hdr[0:4], gcsrMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], gcsrVersion2)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(h.n))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(h.m))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(h.maxDeg))
	binary.LittleEndian.PutUint64(hdr[32:40], uint64(h.numBlocks))
	binary.LittleEndian.PutUint32(hdr[40:44], h.flags)
	binary.LittleEndian.PutUint32(hdr[44:48], crc32.Checksum(meta, castagnoli))

	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.Write(meta); err != nil {
		return err
	}
	if _, err := bw.Write(enc); err != nil {
		return err
	}
	return bw.Flush()
}

// appendEncodedRow appends one node's delta+varint row encoding to dst.
func appendEncodedRow(dst []byte, row []int32) []byte {
	dst = appendUvarint(dst, uint64(len(row)))
	if len(row) == 0 {
		return dst
	}
	dst = appendUvarint(dst, uint64(uint32(row[0])))
	for i := 1; i < len(row); i++ {
		dst = appendUvarint(dst, uint64(uint32(row[i]-row[i-1]-1)))
	}
	return dst
}

// appendUvarint is binary.AppendUvarint without the interface indirection.
func appendUvarint(dst []byte, x uint64) []byte {
	for x >= 0x80 {
		dst = append(dst, byte(x)|0x80)
		x >>= 7
	}
	return append(dst, byte(x))
}

// parseV2Header decodes and sanity-checks the 48-byte version-2 header.
func parseV2Header(hdr []byte) (gcsrV2Header, error) {
	var h gcsrV2Header
	if len(hdr) < gcsrV2HeaderSize {
		return h, fmt.Errorf("gcsr: file shorter than the %d-byte v2 header", gcsrV2HeaderSize)
	}
	if string(hdr[0:4]) != gcsrMagic {
		return h, fmt.Errorf("gcsr: bad magic %q (not a .gcsr file)", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != gcsrVersion2 {
		return h, fmt.Errorf("gcsr: version %d is not 2", v)
	}
	h.n = int64(binary.LittleEndian.Uint64(hdr[8:16]))
	h.m = int64(binary.LittleEndian.Uint64(hdr[16:24]))
	h.maxDeg = int64(binary.LittleEndian.Uint64(hdr[24:32]))
	h.numBlocks = int64(binary.LittleEndian.Uint64(hdr[32:40]))
	h.flags = binary.LittleEndian.Uint32(hdr[40:44])
	h.metaCRC = binary.LittleEndian.Uint32(hdr[44:48])
	switch {
	case h.n < 0 || h.n > math.MaxInt32:
		return h, fmt.Errorf("gcsr: node count %d out of range", h.n)
	// Same overflow discipline as v1: every derived size must stay in
	// int64 so a lying header produces an error, not a wrapped offset.
	case h.m < 0 || h.m > (math.MaxInt64/8-gcsrV2HeaderSize-h.n)/2:
		return h, fmt.Errorf("gcsr: edge count %d out of range", h.m)
	case h.maxDeg < 0 || h.maxDeg > h.n:
		return h, fmt.Errorf("gcsr: max degree %d out of range for %d nodes", h.maxDeg, h.n)
	case h.numBlocks < 0 || h.numBlocks > h.n:
		return h, fmt.Errorf("gcsr: %d blocks out of range for %d nodes", h.numBlocks, h.n)
	case h.n > 0 && h.numBlocks == 0:
		return h, fmt.Errorf("gcsr: %d nodes but no blocks", h.n)
	case h.flags&^uint32(gcsrV2KnownFlags) != 0:
		return h, fmt.Errorf("gcsr: unknown flag bits %#x", h.flags&^uint32(gcsrV2KnownFlags))
	}
	return h, nil
}

// parseV2 parses a whole version-2 file image: header, metadata-tail CRC,
// and the block index with its tiling invariants. Block payloads are not
// decoded here — their CRCs are checked per block at decode time.
func parseV2(data []byte) (v2Layout, error) {
	var lay v2Layout
	h, err := parseV2Header(data)
	if err != nil {
		return lay, err
	}
	blocksStart := h.blocksStart()
	if int64(len(data)) < blocksStart {
		return lay, fmt.Errorf("gcsr: file is %d bytes, metadata needs %d (file truncated?)", len(data), blocksStart)
	}
	meta := data[gcsrV2HeaderSize:blocksStart]
	if got := crc32.Checksum(meta, castagnoli); got != h.metaCRC {
		return lay, fmt.Errorf("gcsr: metadata checksum %08x != stored %08x (file corrupted)", got, h.metaCRC)
	}
	metas := make([]blockMeta, h.numBlocks)
	nextFirst := int64(0)
	nextOff := blocksStart
	arcs := int64(0)
	for i := range metas {
		e := meta[i*gcsrV2IndexEntry:]
		bm := blockMeta{
			first:  int32(binary.LittleEndian.Uint32(e[0:4])),
			count:  int32(binary.LittleEndian.Uint32(e[4:8])),
			arcs:   int32(binary.LittleEndian.Uint32(e[8:12])),
			crc:    binary.LittleEndian.Uint32(e[12:16]),
			off:    int64(binary.LittleEndian.Uint64(e[16:24])),
			encLen: int32(binary.LittleEndian.Uint32(e[24:28])),
		}
		switch {
		case int64(bm.first) != nextFirst || bm.count <= 0 || int64(bm.first)+int64(bm.count) > h.n:
			return lay, fmt.Errorf("gcsr: block %d node range [%d,%d) does not tile [0,%d)", i, bm.first, int64(bm.first)+int64(bm.count), h.n)
		case bm.arcs < 0:
			return lay, fmt.Errorf("gcsr: block %d arc count %d negative", i, bm.arcs)
		case bm.off != nextOff || bm.encLen < 0 || bm.off+int64(bm.encLen) > int64(len(data)):
			return lay, fmt.Errorf("gcsr: block %d extent [%d,%d) does not tile the block region", i, bm.off, bm.off+int64(bm.encLen))
		// Every row costs at least one encoded byte (its degree varint)
		// and so does every arc, so counts beyond encLen are lies. This
		// bounds decode-time allocations by the actual file size before
		// any buffer is made.
		case bm.count > bm.encLen || bm.arcs > bm.encLen:
			return lay, fmt.Errorf("gcsr: block %d claims %d rows / %d arcs in %d encoded bytes", i, bm.count, bm.arcs, bm.encLen)
		}
		nextFirst += int64(bm.count)
		nextOff += int64(bm.encLen)
		arcs += int64(bm.arcs)
		metas[i] = bm
	}
	if nextFirst != h.n {
		return lay, fmt.Errorf("gcsr: blocks cover %d of %d nodes", nextFirst, h.n)
	}
	if nextOff != int64(len(data)) {
		return lay, fmt.Errorf("gcsr: %d trailing bytes after the block region", int64(len(data))-nextOff)
	}
	if arcs != 2*h.m {
		return lay, fmt.Errorf("gcsr: blocks hold %d arcs, header promises %d", arcs, 2*h.m)
	}
	lay.h = h
	lay.metas = metas
	return lay, nil
}

// decodeV2Block decodes one block's rows into freshly allocated local
// off/adj arrays, verifying the CRC and every structural invariant the walk
// depends on (degrees summing to the indexed arc count, neighbors in range,
// strictly ascending, no self loops, no trailing bytes).
func decodeV2Block(data []byte, bm blockMeta, n int64) (off, adj []int32, err error) {
	if got := crc32.Checksum(data, castagnoli); got != bm.crc {
		return nil, nil, fmt.Errorf("gcsr: block at node %d: checksum %08x != stored %08x (file corrupted)", bm.first, got, bm.crc)
	}
	off = make([]int32, bm.count+1)
	adj = make([]int32, bm.arcs)
	pos := 0
	total := int32(0)
	for i := int32(0); i < bm.count; i++ {
		v := int64(bm.first) + int64(i)
		d, p, ok := readUvarint(data, pos)
		if !ok || d > uint64(n) {
			return nil, nil, fmt.Errorf("gcsr: node %d: bad degree varint", v)
		}
		pos = p
		if int64(total)+int64(d) > int64(bm.arcs) {
			return nil, nil, fmt.Errorf("gcsr: block at node %d: degrees exceed indexed arc count %d", bm.first, bm.arcs)
		}
		prev := int64(-1)
		for j := uint64(0); j < d; j++ {
			g, p, ok := readUvarint(data, pos)
			if !ok {
				return nil, nil, fmt.Errorf("gcsr: node %d: bad neighbor varint", v)
			}
			pos = p
			var u int64
			if j == 0 {
				u = int64(g)
			} else {
				u = prev + 1 + int64(g)
			}
			if u >= n {
				return nil, nil, fmt.Errorf("gcsr: node %d: neighbor %d out of range [0,%d)", v, u, n)
			}
			if u == v {
				return nil, nil, fmt.Errorf("gcsr: node %d: self loop", v)
			}
			adj[total] = int32(u)
			total++
			prev = u
		}
		off[i+1] = total
	}
	if total != bm.arcs {
		return nil, nil, fmt.Errorf("gcsr: block at node %d: %d arcs decoded, index promises %d", bm.first, total, bm.arcs)
	}
	if pos != len(data) {
		return nil, nil, fmt.Errorf("gcsr: block at node %d: %d trailing bytes", bm.first, len(data)-pos)
	}
	return off, adj, nil
}

// readUvarint decodes a uvarint at data[pos:], bounding the value below
// 2^35 (node IDs and gaps fit in 32 bits; the slack admits non-minimal
// encodings of small values without admitting overflow).
func readUvarint(data []byte, pos int) (uint64, int, bool) {
	var x uint64
	var s uint
	for ; pos < len(data); pos++ {
		b := data[pos]
		if b < 0x80 {
			if s >= 35 {
				return 0, pos, false
			}
			return x | uint64(b)<<s, pos + 1, true
		}
		x |= uint64(b&0x7f) << s
		s += 7
		if s >= 42 {
			return 0, pos, false
		}
	}
	return 0, pos, false
}

// readBinaryV2 is the portable version-2 read path: every block is decoded
// into one heap off/adj pair, so the returned graph behaves exactly like a
// version-1 Load (no block cache, no mmap). data is the whole file image.
func readBinaryV2(data []byte) (*Graph, error) {
	lay, err := parseV2(data)
	if err != nil {
		return nil, err
	}
	h := lay.h
	off := make([]int64, h.n+1)
	adj := make([]int32, 2*h.m)
	pos := int64(0)
	for _, bm := range lay.metas {
		boff, badj, err := decodeV2Block(data[bm.off:bm.off+int64(bm.encLen)], bm, h.n)
		if err != nil {
			return nil, err
		}
		copy(adj[pos:], badj)
		for i := int32(0); i < bm.count; i++ {
			off[int64(bm.first)+int64(i)+1] = pos + int64(boff[i+1])
		}
		pos += int64(bm.arcs)
	}
	if err := checkOffsets(off, gcsrHeader{n: h.n, m: h.m, maxDeg: h.maxDeg}); err != nil {
		return nil, err
	}
	g := &Graph{off: off, adj: adj, m: h.m, maxDeg: int(h.maxDeg)}
	if h.flags&gcsrV2FlagIDs != 0 {
		g.origIDs = decodeIDs(data[h.idsStart():h.blocksStart()])
	}
	g.buildHubIndex()
	return g, nil
}

// decodeIDs copy-decodes an original-IDs section (endian-agnostic).
func decodeIDs(raw []byte) []int64 {
	ids := make([]int64, len(raw)/8)
	for i := range ids {
		ids[i] = int64(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return ids
}

// aliasInt64 reinterprets little-endian bytes as an int64 slice in place.
// Caller guarantees a little-endian host and 8-byte alignment (the IDs
// section starts at 48+32k bytes into a page-aligned mapping).
func aliasInt64(raw []byte) []int64 {
	if len(raw) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&raw[0])), len(raw)/8)
}

// buildV2Graph builds the block-cached read path over a version-2 file
// image: the layout is parsed, every block is decoded once (validating CRCs
// and row invariants and reconstructing the heap off array so Degree stays
// O(1)), and subsequent row reads go through the bounded decode cache. The
// caller owns data's lifetime (an mmap for OpenMapped); ids, when present,
// alias it.
func buildV2Graph(data []byte, o OpenOptions) (*Graph, error) {
	lay, err := parseV2(data)
	if err != nil {
		return nil, err
	}
	h := lay.h
	off := make([]int64, h.n+1)
	maxDeg := int64(0)
	for _, bm := range lay.metas {
		boff, _, err := decodeV2Block(data[bm.off:bm.off+int64(bm.encLen)], bm, h.n)
		if err != nil {
			return nil, err
		}
		base := off[bm.first]
		for i := int32(0); i < bm.count; i++ {
			d := int64(boff[i+1] - boff[i])
			if d > maxDeg {
				maxDeg = d
			}
			off[int64(bm.first)+int64(i)+1] = base + int64(boff[i+1])
		}
	}
	if maxDeg != h.maxDeg {
		return nil, fmt.Errorf("gcsr: stored max degree %d != scanned %d", h.maxDeg, maxDeg)
	}
	store := newBlockStore(data, lay, o.BlockCacheBytes)
	g := &Graph{off: off, m: h.m, maxDeg: int(h.maxDeg), blocks: store}
	if h.flags&gcsrV2FlagIDs != 0 {
		raw := data[h.idsStart():h.blocksStart()]
		if hostLittleEndian() {
			g.origIDs = aliasInt64(raw)
		} else {
			g.origIDs = decodeIDs(raw)
		}
	}
	g.buildHubIndex()
	return g, nil
}
