// Package obs is the daemon's observability kit: a dependency-free metrics
// registry (atomic counters, gauges, and fixed-bucket histograms, with
// optional label dimensions) rendered in Prometheus text exposition format
// v0.0.4, plus request-tracing middleware (request IDs, structured slog
// access logs, HTTP metrics) and liveness/readiness handlers.
//
// Design constraints, in order:
//
//   - Zero dependencies: stdlib only, so every layer of the repo (including
//     the journal) can record metrics without pulling a client library in.
//   - Cheap recording: counters and gauges are single atomic adds; a
//     histogram observation is a binary search plus two atomics. Nothing
//     allocates after registration, so instrumentation can sit on warm
//     paths (though never inside the walk step loop — the service records
//     walk metrics only at checkpoint barriers).
//   - Nil-safety: every method no-ops on a nil receiver, so optional
//     instrumentation (journal.Options.Metrics and friends) needs no guards
//     at the call sites.
//
// All registry and metric methods are safe for concurrent use.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// LatencyBuckets is the default histogram layout for request-scale
// latencies: 500µs to 2 minutes, roughly logarithmic. Queue waits, run
// durations and HTTP request times all use it, so PromQL across them can
// aggregate on identical `le` labels.
var LatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// MicroLatencyBuckets is the layout for syscall-scale operations (journal
// appends): 1µs to half a second.
var MicroLatencyBuckets = []float64{
	1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.025, 0.1, 0.5,
}

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by d. Negative or zero deltas are ignored —
// counters only go up.
func (c *Counter) Add(d int64) {
	if c == nil || d <= 0 {
		return
	}
	c.v.Add(d)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add shifts the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Buckets are cumulative in the
// exposition ("le" upper bounds); an implicit +Inf bucket catches the
// overflow, so _count always equals the +Inf bucket by construction.
type Histogram struct {
	bounds  []float64      // sorted upper bounds, +Inf excluded
	counts  []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	sumBits atomic.Uint64  // float64 bits of the observation sum
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound covers v ("le" semantics: v <= bound).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time view of a histogram.
type HistogramSnapshot struct {
	Bounds     []float64 // upper bounds, +Inf excluded
	Cumulative []int64   // cumulative counts per bound, then the +Inf total
	Count      int64     // total observations (== Cumulative[len-1])
	Sum        float64
}

// Snapshot captures the histogram's current state. The cumulative counts
// are internally consistent (the +Inf entry equals Count); Sum is read
// separately and may trail by in-flight observations.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	cum := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		total += h.counts[i].Load()
		cum[i] = total
	}
	return HistogramSnapshot{
		Bounds:     h.bounds,
		Cumulative: cum,
		Count:      total,
		Sum:        math.Float64frombits(h.sumBits.Load()),
	}
}

// metric family types.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// child is one labeled instance of a family; exactly one of c/g/h is set.
type child struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is all instances of one metric name.
type family struct {
	name    string
	help    string
	typ     string
	labels  []string
	buckets []float64 // histogram families only

	mu       sync.Mutex
	children map[string]*child
}

// labelKey joins label values into a map key. \xff cannot appear in valid
// UTF-8 label positions that would collide.
func labelKey(values []string) string {
	return strings.Join(values, "\xff")
}

// get returns (creating if needed) the child for the given label values.
func (f *family) get(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s expects %d label value(s), got %d",
			f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	ch, ok := f.children[key]
	if !ok {
		ch = &child{values: append([]string(nil), values...)}
		switch f.typ {
		case typeCounter:
			ch.c = &Counter{}
		case typeGauge:
			ch.g = &Gauge{}
		case typeHistogram:
			ch.h = &Histogram{
				bounds: f.buckets,
				counts: make([]atomic.Int64, len(f.buckets)+1),
			}
		}
		f.children[key] = ch
	}
	return ch
}

// snapshot copies the current child set for rendering.
func (f *family) snapshot() []*child {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*child, 0, len(f.children))
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, f.children[k])
	}
	return out
}

// CounterVec is a counter family with label dimensions.
type CounterVec struct{ fam *family }

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.fam.get(values).c
}

// GaugeVec is a gauge family with label dimensions.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.fam.get(values).g
}

// Zero resets every existing child to 0 (collect-time refreshers call it
// before re-setting current values, so label sets that vanished read 0
// instead of their stale last value).
func (v *GaugeVec) Zero() {
	if v == nil {
		return
	}
	v.fam.mu.Lock()
	children := make([]*child, 0, len(v.fam.children))
	for _, ch := range v.fam.children {
		children = append(children, ch)
	}
	v.fam.mu.Unlock()
	for _, ch := range children {
		ch.g.Set(0)
	}
}

// HistogramVec is a histogram family with label dimensions.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.fam.get(values).h
}

// Registry holds metric families and renders them as Prometheus text
// exposition. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu         sync.Mutex
	fams       map[string]*family
	collectors []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// OnCollect registers fn to run at the start of every exposition render.
// Collect-time refreshers keep pull-style gauges (queue depth, cache size,
// segment counts) current without instrumenting every mutation site.
func (r *Registry) OnCollect(fn func()) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// register returns the family for name, creating it with the given shape or
// validating that an existing registration matches (re-registering an
// identical metric is idempotent and returns the same family; a shape
// mismatch is a programming error and panics).
func (r *Registry) register(name, help, typ string, labels []string, buckets []float64) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different type or label set", name))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   append([]string(nil), labels...),
		children: make(map[string]*child),
	}
	if typ == typeHistogram {
		f.buckets = normalizeBuckets(buckets)
	}
	r.fams[name] = f
	return f
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, typeCounter, nil, nil).get(nil).c
}

// CounterVec registers (or finds) a counter family with label dimensions.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{fam: r.register(name, help, typeCounter, labels, nil)}
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, typeGauge, nil, nil).get(nil).g
}

// GaugeVec registers (or finds) a gauge family with label dimensions.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{fam: r.register(name, help, typeGauge, labels, nil)}
}

// Histogram registers (or finds) an unlabeled histogram over the given
// bucket upper bounds (+Inf is implicit; nil buckets mean LatencyBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, typeHistogram, nil, buckets).get(nil).h
}

// HistogramVec registers (or finds) a histogram family with label
// dimensions.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{fam: r.register(name, help, typeHistogram, labels, buckets)}
}

// normalizeBuckets sorts, dedups and strips +Inf (implicit) from a bucket
// layout, defaulting to LatencyBuckets.
func normalizeBuckets(buckets []float64) []float64 {
	if len(buckets) == 0 {
		buckets = LatencyBuckets
	}
	out := make([]float64, 0, len(buckets))
	for _, b := range buckets {
		if !math.IsInf(b, +1) && !math.IsNaN(b) {
			out = append(out, b)
		}
	}
	sort.Float64s(out)
	dedup := out[:0]
	for i, b := range out {
		if i == 0 || b != out[i-1] {
			dedup = append(dedup, b)
		}
	}
	return dedup
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		alpha := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}
