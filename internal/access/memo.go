package access

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// Memo wraps a Client with a concurrency-safe memoizing neighbor cache: the
// first fetch of a node's neighbor list goes to the inner client, every later
// call — from any goroutine — is answered from the cache. Concurrent fetches
// of the same node are coalesced (per-node single flight), so an ensemble of
// parallel walkers crawling over an expensive boundary (the HTTP apiserver
// client, a Delayed client modeling API latency) pays for each neighborhood
// exactly once no matter how many walkers touch it.
//
// Edge probes are answered from whichever endpoint's list is already cached,
// and otherwise charge a fetch of u's list — the strategy a polite crawler
// uses instead of a dedicated edge endpoint. This changes the inner call mix
// (HasEdge on the inner client is never used); wrap a Counting client
// *inside* the Memo to measure the de-duplicated crawl cost, or outside to
// measure the walkers' raw demand.
type Memo struct {
	inner  Client
	shards [memoShards]memoShard

	lookups atomic.Int64
	fetches atomic.Int64

	// Hub bitset accounting: hubBudget is the bytes still available for
	// dense adjacency rows, hubRows/hubBytes count what was built.
	hubBudget atomic.Int64
	hubRows   atomic.Int64
	hubBytes  atomic.Int64
}

const memoShards = 64

// memoHubDegreeFloor mirrors graph.Graph's hub threshold: below it a binary
// search is only a handful of steps and a bitset row would waste memory.
const memoHubDegreeFloor = 64

// memoHubBudgetFloor is the baseline byte budget for hub rows; each crawled
// neighbor list adds 4 bytes per entry on top (the same all-rows-cost-what-
// the-adjacency-costs rule graph.Graph.buildHubIndex uses, adapted to a
// cache whose "adjacency array" grows as the crawl proceeds).
const memoHubBudgetFloor = 1 << 20

type memoShard struct {
	mu sync.Mutex
	m  map[int32]*memoEntry
}

type memoEntry struct {
	once sync.Once
	done atomic.Bool
	ns   []int32
	// bits is a dense adjacency row covering node ids up to the largest
	// neighbor (nil for non-hubs or when over budget): bit v set iff v is a
	// neighbor. Built before done is published, so any reader that observed
	// done also observes the row.
	bits []uint64
}

// NewMemo wraps inner. The inner client must be safe for concurrent use if
// the Memo is shared across goroutines (all clients in this package and in
// internal/apiserver are).
func NewMemo(inner Client) *Memo {
	c := &Memo{inner: inner}
	for i := range c.shards {
		c.shards[i].m = make(map[int32]*memoEntry)
	}
	c.hubBudget.Store(memoHubBudgetFloor)
	return c
}

// MemoStats reports cache effectiveness.
type MemoStats struct {
	// Lookups counts neighbor-list resolutions requested by callers.
	Lookups int64
	// InnerFetches counts neighbor lists actually fetched from the inner
	// client — the de-duplicated crawl footprint.
	InnerFetches int64
	// HubRows/HubBytes count the dense adjacency bitset rows built for hot
	// crawled hubs (O(1) HasEdge) and the memory they occupy.
	HubRows  int64
	HubBytes int64
}

// Stats returns a snapshot of the cache counters.
func (c *Memo) Stats() MemoStats {
	return MemoStats{
		Lookups:      c.lookups.Load(),
		InnerFetches: c.fetches.Load(),
		HubRows:      c.hubRows.Load(),
		HubBytes:     c.hubBytes.Load(),
	}
}

func (c *Memo) shard(v int32) *memoShard { return &c.shards[uint32(v)%memoShards] }

// neighbors resolves v's neighbor list, fetching it from the inner client at
// most once across all goroutines. A panicking inner fetch (crawl clients
// report transport failures that way) must not poison the cache: the failed
// entry is dropped so a later caller retries, and goroutines that were
// coalesced onto the failed fetch panic too instead of mistaking the nil
// slice for a degree-0 node.
func (c *Memo) neighbors(v int32) []int32 {
	c.lookups.Add(1)
	sh := c.shard(v)
	sh.mu.Lock()
	e, ok := sh.m[v]
	if !ok {
		e = &memoEntry{}
		sh.m[v] = e
	}
	sh.mu.Unlock()
	e.once.Do(func() {
		defer func() {
			if !e.done.Load() { // fetch panicked: un-cache the poisoned entry
				sh.mu.Lock()
				if sh.m[v] == e {
					delete(sh.m, v)
				}
				sh.mu.Unlock()
			}
		}()
		c.fetches.Add(1)
		e.ns = c.inner.Neighbors(v)
		// Every crawled list funds the hub-row budget, then high-degree
		// nodes claim a dense bitset from it (graph.Graph's rule).
		c.hubBudget.Add(int64(4 * len(e.ns)))
		e.bits = c.buildHubRow(e.ns)
		e.done.Store(true)
	})
	if !e.done.Load() {
		panic(fmt.Sprintf("access: memoized fetch of node %d failed in another goroutine", v))
	}
	return e.ns
}

// cachedEntry returns v's cache entry only if it is already fully fetched.
func (c *Memo) cachedEntry(v int32) (*memoEntry, bool) {
	sh := c.shard(v)
	sh.mu.Lock()
	e, ok := sh.m[v]
	sh.mu.Unlock()
	if ok && e.done.Load() {
		return e, true
	}
	return nil, false
}

// buildHubRow constructs the dense adjacency row for a fetched neighbor
// list, when the list qualifies as a hub and the byte budget allows. The row
// spans ids up to the largest neighbor only — any id past the row's end is
// by construction not a neighbor.
func (c *Memo) buildHubRow(ns []int32) []uint64 {
	if len(ns) < memoHubDegreeFloor {
		return nil
	}
	stride := int(ns[len(ns)-1]>>6) + 1
	need := int64(stride) * 8
	if c.hubBudget.Add(-need) < 0 {
		c.hubBudget.Add(need) // return the credit; this node stays rowless
		return nil
	}
	row := make([]uint64, stride)
	for _, u := range ns {
		row[u>>6] |= 1 << (uint(u) & 63)
	}
	c.hubRows.Add(1)
	c.hubBytes.Add(need)
	return row
}

// contains answers a membership probe against a fetched entry: O(1) off the
// hub row when one was built, binary search otherwise.
func (e *memoEntry) contains(v int32) bool {
	if e.bits != nil {
		idx := int(uint32(v) >> 6)
		if idx >= len(e.bits) {
			return false
		}
		return e.bits[idx]&(1<<(uint(v)&63)) != 0
	}
	return containsSorted(e.ns, v)
}

// Degree implements Client.
func (c *Memo) Degree(v int32) int { return len(c.neighbors(v)) }

// Neighbors implements Client.
func (c *Memo) Neighbors(v int32) []int32 { return c.neighbors(v) }

// Neighbor implements Client.
func (c *Memo) Neighbor(v int32, i int) int32 { return c.neighbors(v)[i] }

// HasEdge implements Client, answering from cached neighbor lists when
// either endpoint is present — O(1) against hot crawled hubs via their
// bitset rows — and otherwise fetching u's list.
func (c *Memo) HasEdge(u, v int32) bool {
	if e, ok := c.cachedEntry(u); ok {
		return e.contains(v)
	}
	if e, ok := c.cachedEntry(v); ok {
		return e.contains(u)
	}
	c.neighbors(u)
	e, ok := c.cachedEntry(u)
	if !ok {
		// Unreachable after a successful fetch; kept as a plain fallback.
		return containsSorted(c.neighbors(u), v)
	}
	return e.contains(v)
}

// RandomNode implements Client.
func (c *Memo) RandomNode(rng *rand.Rand) int32 { return c.inner.RandomNode(rng) }

// containsSorted reports whether the sorted list ns contains v.
func containsSorted(ns []int32, v int32) bool {
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}
