package obs

import (
	"bytes"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

func TestTraceAssignsAndEchoesRequestID(t *testing.T) {
	var seen string
	h := Trace(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDFrom(r.Context())
	}), TraceOptions{})

	// No client ID: one is generated, echoed, and visible downstream.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	got := rec.Header().Get(RequestIDHeader)
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(got) {
		t.Errorf("generated request ID %q is not 16 hex chars", got)
	}
	if seen != got {
		t.Errorf("context ID %q != echoed header %q", seen, got)
	}

	// A valid client ID is preserved end to end.
	rec = httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/v1/stats", nil)
	req.Header.Set(RequestIDHeader, "client-id.42:a")
	h.ServeHTTP(rec, req)
	if seen != "client-id.42:a" || rec.Header().Get(RequestIDHeader) != "client-id.42:a" {
		t.Errorf("client ID not propagated: ctx=%q header=%q", seen, rec.Header().Get(RequestIDHeader))
	}

	// A hostile client ID (header injection) is replaced.
	rec = httptest.NewRecorder()
	req = httptest.NewRequest("GET", "/v1/stats", nil)
	req.Header.Set(RequestIDHeader, "bad id\x01"+strings.Repeat("x", 100))
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); got == req.Header.Get(RequestIDHeader) || got == "" {
		t.Errorf("invalid client ID was echoed verbatim: %q", got)
	}
}

func TestTraceMetricsAndAccessLog(t *testing.T) {
	reg := NewRegistry()
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	h := Trace(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/missing" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "ok")
	}), TraceOptions{
		Logger:  logger,
		Metrics: NewHTTPMetrics(reg, "testd"),
		PathLabel: func(r *http.Request) string {
			if strings.HasPrefix(r.URL.Path, "/v1/jobs/") {
				return "/v1/jobs/{id}"
			}
			return r.URL.Path
		},
	})

	for _, path := range []string{"/v1/jobs/j-1", "/v1/jobs/j-2", "/missing"} {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", path, nil))
	}

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`testd_http_requests_total{method="GET",path="/v1/jobs/{id}",code="200"} 2`,
		`testd_http_requests_total{method="GET",path="/missing",code="404"} 1`,
		`testd_http_request_seconds_bucket{path="/v1/jobs/{id}",le="+Inf"} 2`,
		`testd_http_inflight 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	logs := logBuf.String()
	if !strings.Contains(logs, "request_id=") || !strings.Contains(logs, "route=/v1/jobs/{id}") ||
		!strings.Contains(logs, "status=404") {
		t.Errorf("access log missing fields:\n%s", logs)
	}
}

// TestTracePreservesFlusher matters because the SSE endpoint type-asserts
// its ResponseWriter to http.Flusher; a wrapper that hides it would silently
// break streaming.
func TestTracePreservesFlusher(t *testing.T) {
	flushed := false
	h := Trace(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Fatal("Trace-wrapped writer lost http.Flusher")
		}
		f.Flush()
	}), TraceOptions{})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	flushed = rec.Flushed
	if !flushed {
		t.Error("Flush did not reach the underlying writer")
	}
}

func TestHealthReadiness(t *testing.T) {
	h := NewHealth("replaying journal")

	get := func(serve func(http.ResponseWriter, *http.Request)) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		serve(rec, httptest.NewRequest("GET", "/", nil))
		return rec
	}
	if rec := get(h.ServeLive); rec.Code != http.StatusOK {
		t.Errorf("liveness = %d before ready; want 200", rec.Code)
	}
	if rec := get(h.ServeReady); rec.Code != http.StatusServiceUnavailable ||
		!strings.Contains(rec.Body.String(), "replaying journal") {
		t.Errorf("readiness before ready = %d %q; want 503 with reason", rec.Code, rec.Body.String())
	}
	h.SetReady()
	if rec := get(h.ServeReady); rec.Code != http.StatusOK {
		t.Errorf("readiness after SetReady = %d; want 200", rec.Code)
	}
	h.SetNotReady("draining")
	if rec := get(h.ServeReady); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readiness after SetNotReady = %d; want 503", rec.Code)
	}

	// Nil Health (no startup phase wired) always reports ready.
	var none *Health
	if ok, _ := none.Ready(); !ok {
		t.Error("nil Health not ready")
	}
	if rec := get(none.ServeReady); rec.Code != http.StatusOK {
		t.Errorf("nil Health readiness = %d; want 200", rec.Code)
	}
}

func TestNewRequestIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if !validRequestID(id) {
			t.Fatalf("generated ID %q fails its own validator", id)
		}
		if seen[id] {
			t.Fatalf("duplicate generated ID %q", id)
		}
		seen[id] = true
	}
}
