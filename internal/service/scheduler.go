package service

import (
	"fmt"
	"sync"

	"repro/internal/obs"
)

// Priority is a job's scheduling class. Interactive jobs overtake batch
// jobs, which overtake background jobs, under the weighted-deficit rule
// implemented by scheduler — a long background crawl can no longer starve
// short interactive requests the way the old FIFO queue did.
type Priority string

const (
	// PriorityInteractive is for latency-sensitive requests (dashboards,
	// ad-hoc queries): highest weight, dispatched ahead of everything else
	// whenever its class has queued work.
	PriorityInteractive Priority = "interactive"
	// PriorityBatch is the default class for ordinary submissions.
	PriorityBatch Priority = "batch"
	// PriorityBackground is for long crawls and bulk re-computation: it
	// yields to both other classes but is never starved outright.
	PriorityBackground Priority = "background"
)

// priorityRank orders classes for coalescing upgrades (higher = more
// urgent). Unknown classes rank lowest.
func priorityRank(p Priority) int {
	switch p {
	case PriorityInteractive:
		return 2
	case PriorityBatch:
		return 1
	case PriorityBackground:
		return 0
	}
	return -1
}

// priorityWeight is each class's share of the step-budget virtual clock.
// The ratios are deliberately steep: a queued interactive job is dispatched
// ahead of ~64 background step-budget units per unit of its own, so bursts
// of short jobs overtake long crawls almost immediately, while a saturated
// interactive class still lets background work trickle through (weighted
// fairness, not strict priority — no starvation).
func priorityWeight(p Priority) float64 {
	switch p {
	case PriorityInteractive:
		return 64
	case PriorityBatch:
		return 8
	}
	return 1
}

// ParsePriority validates a spec's priority string; empty means batch.
func ParsePriority(s string) (Priority, error) {
	switch Priority(s) {
	case "":
		return PriorityBatch, nil
	case PriorityInteractive, PriorityBatch, PriorityBackground:
		return Priority(s), nil
	}
	return "", fmt.Errorf("service: unknown priority %q (want interactive, batch or background)", s)
}

// scheduler replaces the old FIFO admission channel with per-class queues
// under weighted deficit accounting (stride scheduling over step budgets):
// every class carries a virtual-time pass; dispatching a job advances its
// class's pass by the job's step budget divided by the class weight, and
// the next dispatch always goes to the backlogged class with the smallest
// pass. Classes therefore share the workers in weight proportion —
// interactive overtakes batch overtakes background — and an idle class
// re-enters at the current virtual time instead of cashing in banked
// credit. FIFO order is preserved within a class.
//
// scheduler has its own lock, acquired after Manager.mu in every shared
// call path (enqueue/remove/promote under Manager.mu; next from bare worker
// goroutines), so the ordering is acyclic.
type scheduler struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[Priority][]*job
	pass   map[Priority]float64
	vtime  float64 // monotone virtual clock; see next()
	size   int
	cap    int
	closed bool

	// depthGauge mirrors per-class backlog into the metrics registry at
	// every queue mutation (nil-safe obs no-ops when unwired).
	depthGauge *obs.GaugeVec
}

func newScheduler(queueCap int, depthGauge *obs.GaugeVec) *scheduler {
	s := &scheduler{
		queues:     make(map[Priority][]*job),
		pass:       make(map[Priority]float64),
		cap:        queueCap,
		depthGauge: depthGauge,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// noteDepthLocked refreshes class p's queue-depth gauge. Caller holds s.mu.
func (s *scheduler) noteDepthLocked(p Priority) {
	s.depthGauge.With(string(p)).Set(int64(len(s.queues[p])))
}

// jobCost is the deficit a dispatch charges: the job's step budget, the
// best prior proxy for how long it will hold a worker. A recovery-re-queued
// job that resumes from a checkpoint snapshot is charged only its
// *remaining* steps: the pre-crash process already charged its class for
// the steps the snapshot preserves, and re-charging them would make a class
// with interrupted jobs pay double for one budget of work (the recovery
// double-charge). A multi-size job is charged the same single budget: its
// shared walk pays Spec.Steps once no matter how many sizes it covers —
// that under-charge relative to the equivalent independent runs is exactly
// the efficiency the shared walk buys.
func jobCost(j *job) float64 {
	cost := j.spec.Steps - j.resumeSteps
	if cost <= 0 {
		return 1
	}
	return float64(cost)
}

// enqueue admits j into its class queue. It fails when the scheduler is
// closed or the total backlog is at capacity.
func (s *scheduler) enqueue(j *job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("service: scheduler closed")
	}
	if s.size >= s.cap {
		return fmt.Errorf("service: admission queue full (%d jobs)", s.cap)
	}
	p := j.spec.Priority
	if len(s.queues[p]) == 0 && s.pass[p] < s.vtime {
		// A class that went idle re-enters at the current virtual time: it
		// must not bank credit while empty and then monopolize the workers.
		s.pass[p] = s.vtime
	}
	s.queues[p] = append(s.queues[p], j)
	s.size++
	s.noteDepthLocked(p)
	s.cond.Signal()
	return nil
}

// next blocks until a job is available and returns it, or returns false
// once the scheduler is closed.
func (s *scheduler) next() (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.size == 0 && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		return nil, false
	}
	var best Priority
	found := false
	for p, q := range s.queues {
		if len(q) == 0 {
			continue
		}
		if !found || s.pass[p] < s.pass[best] ||
			(s.pass[p] == s.pass[best] && priorityRank(p) > priorityRank(best)) {
			best, found = p, true
		}
	}
	q := s.queues[best]
	j := q[0]
	q[0] = nil
	s.queues[best] = q[1:]
	s.size--
	s.noteDepthLocked(best)
	s.pass[best] += jobCost(j) / priorityWeight(best)
	// Advance the virtual clock to the smallest pass still backlogged (or to
	// the dispatched class's new pass when the backlog drained). Classes
	// (re-)entering later start at this clock, so an idle period neither
	// banks credit (a returning class cannot monopolize the workers) nor
	// banks debt (work done while a class had no backlog cannot penalize its
	// later arrivals).
	min := s.pass[best]
	for p, q := range s.queues {
		if len(q) > 0 && s.pass[p] < min {
			min = s.pass[p]
		}
	}
	if min > s.vtime {
		s.vtime = min
	}
	return j, true
}

// remove unlinks a still-queued job (cancellation); it reports whether the
// job was found (false means a worker already claimed it).
func (s *scheduler) remove(j *job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.removeLocked(j)
}

func (s *scheduler) removeLocked(j *job) bool {
	q := s.queues[j.spec.Priority]
	for i, queued := range q {
		if queued == j {
			s.queues[j.spec.Priority] = append(q[:i], q[i+1:]...)
			s.size--
			s.noteDepthLocked(j.spec.Priority)
			return true
		}
	}
	return false
}

// promote moves a queued job to a more urgent class (a coalesced submitter
// asked for it at higher priority). The caller updates j.spec.Priority —
// under Manager.mu — only when promote reports the move happened.
func (s *scheduler) promote(j *job, to Priority) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.removeLocked(j) {
		return false
	}
	if len(s.queues[to]) == 0 && s.pass[to] < s.vtime {
		s.pass[to] = s.vtime
	}
	s.queues[to] = append(s.queues[to], j)
	s.size++
	s.noteDepthLocked(to)
	s.cond.Signal()
	return true
}

// drain closes the scheduler and returns every still-queued job, newest
// class first order unspecified. Blocked next callers wake and exit.
func (s *scheduler) drain() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	var out []*job
	for p, q := range s.queues {
		out = append(out, q...)
		s.queues[p] = nil
		s.noteDepthLocked(p)
	}
	s.size = 0
	s.cond.Broadcast()
	return out
}

// depth returns the total backlog.
func (s *scheduler) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// depthByClass snapshots the per-class backlog for stats.
func (s *scheduler) depthByClass() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.queues))
	for p, q := range s.queues {
		if len(q) > 0 {
			out[string(p)] = len(q)
		}
	}
	return out
}
