package walk

// infoCache is the bounded stateInfo cache behind spaceD, with second-chance
// (clock) eviction. The previous policy cleared the whole map on overflow,
// which was allocation-free but indiscriminate: the moment more than
// infoCacheCap states were live — a long CSS chain, a wide window, or a walk
// revisiting a dense neighborhood — the hot window states were wiped along
// with the cold drive-by ones and every warm step degraded to a full kernel
// recomputation. The clock keeps one ref bit per slot: a lookup sets it, the
// eviction hand clears it as it sweeps, and only entries that went a full
// lap without a hit are replaced — so states the walk keeps touching survive
// overflow indefinitely while one-shot states recycle.
//
// The structure stays allocation-free in steady state: the slot array is
// allocated once at capacity, and the index map only ever holds up to
// infoCacheCap entries, so a delete-then-insert pair reuses map cells.
type infoCache struct {
	idx   map[State]int32
	slots []infoSlot
	hand  int32
	// hits/misses count lookups (diagnostics; read by tests and benches).
	hits   uint64
	misses uint64
}

type infoSlot struct {
	st  State
	fi  stateInfo
	ref bool
}

func newInfoCache() infoCache {
	return infoCache{
		idx:   make(map[State]int32, infoCacheCap),
		slots: make([]infoSlot, 0, infoCacheCap),
	}
}

// get looks st up, marking the entry recently used.
func (c *infoCache) get(st State) (stateInfo, bool) {
	if i, ok := c.idx[st]; ok {
		c.slots[i].ref = true
		c.hits++
		return c.slots[i].fi, true
	}
	c.misses++
	return stateInfo{}, false
}

// put inserts a record computed after a get miss. Below capacity it fills
// the next free slot; at capacity the clock hand sweeps to the first slot
// whose ref bit is clear (clearing set bits as it passes — each survivor
// pays one bit per lap) and replaces it. The sweep is bounded: after one
// full lap every bit is clear, so the second visit of the starting slot
// always evicts.
func (c *infoCache) put(st State, fi stateInfo) {
	if len(c.slots) < cap(c.slots) {
		c.idx[st] = int32(len(c.slots))
		c.slots = append(c.slots, infoSlot{st: st, fi: fi, ref: true})
		return
	}
	for {
		s := &c.slots[c.hand]
		if s.ref {
			s.ref = false
			c.hand = (c.hand + 1) % int32(len(c.slots))
			continue
		}
		delete(c.idx, s.st)
		s.st, s.fi, s.ref = st, fi, true
		c.idx[st] = c.hand
		c.hand = (c.hand + 1) % int32(len(c.slots))
		return
	}
}

// len reports the number of cached entries.
func (c *infoCache) len() int { return len(c.slots) }

// stats returns the lookup hit/miss counters.
func (c *infoCache) stats() (hits, misses uint64) { return c.hits, c.misses }
