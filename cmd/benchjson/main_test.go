package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: repro
cpu: Test CPU @ 2.0GHz
BenchmarkStepSRW1-16   	 1000000	      1234 ns/op
BenchmarkParallelWalkers/walkers=4-16         	     100	    123456 ns/op	        45.6 ns/step	  2.19e+07 steps/sec
ok  	repro	1.234s
`
	report, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if report.Meta["goos"] != "linux" || report.Meta["cpu"] != "Test CPU @ 2.0GHz" {
		t.Errorf("meta = %v", report.Meta)
	}
	if len(report.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(report.Benchmarks))
	}
	b0 := report.Benchmarks[0]
	if b0.Name != "StepSRW1" || b0.Procs != 16 || b0.Iterations != 1000000 || b0.Metrics["ns/op"] != 1234 {
		t.Errorf("b0 = %+v", b0)
	}
	b1 := report.Benchmarks[1]
	if b1.Name != "ParallelWalkers/walkers=4" || b1.Metrics["ns/step"] != 45.6 || b1.Metrics["steps/sec"] != 2.19e7 {
		t.Errorf("b1 = %+v", b1)
	}
}

func TestParseIgnoresMalformed(t *testing.T) {
	input := `BenchmarkBroken-8 notanumber 12 ns/op
Benchmark	short
PASS
`
	report, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 0 {
		t.Errorf("parsed %d benchmarks from malformed input", len(report.Benchmarks))
	}
}
