package graphletrw

// Walk-kernel benchmarks on a 1M-edge Barabási–Albert graph — the
// BENCH_pr6.json fixture. The epinion StepSRW* benchmarks above track the
// historical trajectory; these isolate the G(d) neighbor kernel at the scale
// the ROADMAP's walk-kernel item targets (hub-heavy degree distribution,
// ~10 average degree, rows far larger than the d<=2 fast paths ever see).
//
// The fixture matches internal/graph's gcsr benchmark graph (same
// model/size/seed) so per-step and load-path numbers in the BENCH_*.json
// trajectory refer to one graph.

import (
	"sync"
	"testing"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

const (
	ba1mNodes  = 200_000
	ba1mAttach = 5 // ~1M edges
	ba1mSeed   = 1337
)

var ba1m struct {
	once sync.Once
	g    *graph.Graph
}

func ba1mGraph() *graph.Graph {
	ba1m.once.Do(func() { ba1m.g = gen.BarabasiAlbert(ba1mNodes, ba1mAttach, ba1mSeed) })
	return ba1m.g
}

func benchmarkWalkStepsBA(b *testing.B, cfg core.Config) {
	g := ba1mGraph()
	client := access.NewGraphClient(g)
	cfg.Seed = 7
	est, err := core.NewEstimator(client, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := est.Run(b.N); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkStepSRW3K4BA1M(b *testing.B) { benchmarkWalkStepsBA(b, core.Config{K: 4, D: 3}) }
func BenchmarkStepSRW3K5BA1M(b *testing.B) { benchmarkWalkStepsBA(b, core.Config{K: 5, D: 3}) }
func BenchmarkStepSRW4K5BA1M(b *testing.B) { benchmarkWalkStepsBA(b, core.Config{K: 5, D: 4}) }
func BenchmarkStepNBSRW3K4BA1M(b *testing.B) {
	benchmarkWalkStepsBA(b, core.Config{K: 4, D: 3, NB: true})
}
