package access

import (
	"sync"
	"testing"

	"repro/internal/gen"
)

func TestMemoAnswersMatchInner(t *testing.T) {
	g := gen.HolmeKim(120, 3, 0.5, 11)
	inner := NewGraphClient(g)
	memo := NewMemo(inner)
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if memo.Degree(v) != inner.Degree(v) {
			t.Fatalf("Degree(%d) mismatch", v)
		}
		ns := memo.Neighbors(v)
		want := inner.Neighbors(v)
		if len(ns) != len(want) {
			t.Fatalf("Neighbors(%d) = %v, want %v", v, ns, want)
		}
		for i := range ns {
			if ns[i] != want[i] {
				t.Fatalf("Neighbors(%d)[%d] mismatch", v, i)
			}
			if memo.Neighbor(v, i) != want[i] {
				t.Fatalf("Neighbor(%d,%d) mismatch", v, i)
			}
		}
	}
	for u := int32(0); u < 40; u++ {
		for v := int32(0); v < 40; v++ {
			if u != v && memo.HasEdge(u, v) != inner.HasEdge(u, v) {
				t.Fatalf("HasEdge(%d,%d) mismatch", u, v)
			}
		}
	}
}

// TestMemoSingleFlight hammers the same nodes from many goroutines (run with
// -race): every distinct node must be fetched from the inner client exactly
// once, which a Counting client inside the Memo observes directly.
func TestMemoSingleFlight(t *testing.T) {
	g := gen.HolmeKim(50, 3, 0.5, 3)
	counting := NewCounting(NewGraphClient(g), g.NumNodes())
	memo := NewMemo(counting)

	const goroutines = 16
	const nodes = 20
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for v := int32(0); v < nodes; v++ {
					memo.Neighbors(v)
					memo.Degree(v)
				}
			}
		}()
	}
	wg.Wait()

	st := counting.Stats()
	if st.NeighborCalls != nodes {
		t.Errorf("inner fetched %d times, want exactly %d (one per node)", st.NeighborCalls, nodes)
	}
	ms := memo.Stats()
	if ms.InnerFetches != nodes {
		t.Errorf("memo reports %d inner fetches, want %d", ms.InnerFetches, nodes)
	}
	if want := int64(goroutines * 50 * nodes * 2); ms.Lookups != want {
		t.Errorf("memo reports %d lookups, want %d", ms.Lookups, want)
	}
}

// TestMemoHasEdgeUsesCachedEndpoint: once v's list is cached, HasEdge(u, v)
// must not trigger a fetch of u.
func TestMemoHasEdgeUsesCachedEndpoint(t *testing.T) {
	g := gen.HolmeKim(30, 3, 0.5, 7)
	counting := NewCounting(NewGraphClient(g), g.NumNodes())
	memo := NewMemo(counting)

	memo.Neighbors(3)
	before := counting.Stats().NeighborCalls
	memo.HasEdge(7, 3) // 3 cached -> answered from its list
	if got := counting.Stats().NeighborCalls; got != before {
		t.Errorf("HasEdge fetched a list (%d -> %d) despite a cached endpoint", before, got)
	}
	memo.HasEdge(7, 8) // neither cached -> exactly one fetch (of node 7)
	if got := counting.Stats().NeighborCalls; got != before+1 {
		t.Errorf("HasEdge on uncached pair issued %d fetches, want 1", got-before)
	}
}

// flakyClient panics on the first neighbor fetch, then recovers.
type flakyClient struct {
	Client
	failed bool
}

func (c *flakyClient) Neighbors(v int32) []int32 {
	if !c.failed {
		c.failed = true
		panic("transport down")
	}
	return c.Client.Neighbors(v)
}

// A panicking inner fetch must not poison the memo cache: the panic
// propagates to the caller, and a retry fetches fresh instead of silently
// returning a nil neighbor list.
func TestMemoFetchPanicNotCached(t *testing.T) {
	g := gen.Complete(4)
	m := NewMemo(&flakyClient{Client: NewGraphClient(g)})

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("first fetch should have panicked")
			}
		}()
		m.Neighbors(0)
	}()

	ns := m.Neighbors(0) // retry must reach the (now healthy) inner client
	if len(ns) != 3 {
		t.Fatalf("post-panic retry returned %v, want 3 neighbors", ns)
	}
	if st := m.Stats(); st.InnerFetches != 2 {
		t.Errorf("inner fetches = %d, want 2 (failed + retry)", st.InnerFetches)
	}
}

// Hub bitsets: crawling a high-degree node builds a dense adjacency row, and
// HasEdge answers against it agree exactly with the inner client — including
// probes beyond the row's end (ids larger than the hub's largest neighbor).
func TestMemoHubBitsetCorrect(t *testing.T) {
	g := gen.BarabasiAlbert(800, 6, 5)
	inner := NewGraphClient(g)
	memo := NewMemo(inner)

	// Find a hub (BA graphs always have one) and crawl it.
	var hub int32 = -1
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if inner.Degree(v) >= memoHubDegreeFloor {
			hub = v
			break
		}
	}
	if hub < 0 {
		t.Fatal("fixture has no hub")
	}
	memo.Neighbors(hub)
	st := memo.Stats()
	if st.HubRows != 1 || st.HubBytes == 0 {
		t.Fatalf("stats after crawling one hub: %+v", st)
	}
	e, ok := memo.cachedEntry(hub)
	if !ok || e.bits == nil {
		t.Fatal("hub entry has no bitset row")
	}
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if v == hub {
			continue
		}
		if got, want := memo.HasEdge(hub, v), inner.HasEdge(hub, v); got != want {
			t.Fatalf("HasEdge(hub, %d) = %v, want %v", v, got, want)
		}
	}
	// Ids past the row's end are decisively non-adjacent, not out-of-range.
	if memo.HasEdge(hub, int32(g.NumNodes())+1000) {
		t.Error("HasEdge beyond row end returned true")
	}
}

// Low-degree nodes never get a row, and an exhausted budget degrades
// gracefully to binary search (answers stay correct).
func TestMemoHubBudget(t *testing.T) {
	g := gen.BarabasiAlbert(800, 6, 5)
	inner := NewGraphClient(g)
	memo := NewMemo(inner)
	memo.hubBudget.Store(8) // too small for any row, and fetches barely fund it

	var hub, leaf int32 = -1, -1
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if hub < 0 && inner.Degree(v) >= memoHubDegreeFloor {
			hub = v
		}
		if leaf < 0 && inner.Degree(v) < memoHubDegreeFloor {
			leaf = v
		}
	}
	memo.Neighbors(leaf)
	if e, _ := memo.cachedEntry(leaf); e.bits != nil {
		t.Error("low-degree node got a bitset row")
	}
	memo.Neighbors(hub)
	for v := int32(0); v < 100; v++ {
		if v != hub && memo.HasEdge(hub, v) != inner.HasEdge(hub, v) {
			t.Fatalf("HasEdge(hub, %d) mismatch under exhausted budget", v)
		}
	}
}

// Concurrent crawls of hubs race the row build against probes (run with
// -race): any goroutine that sees the entry done must also see its row.
func TestMemoHubBitsetConcurrent(t *testing.T) {
	g := gen.BarabasiAlbert(400, 8, 9)
	inner := NewGraphClient(g)
	memo := NewMemo(inner)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int32) {
			defer wg.Done()
			for v := int32(0); v < int32(g.NumNodes()); v++ {
				u := (v + seed) % int32(g.NumNodes())
				w := (u + 1) % int32(g.NumNodes())
				if memo.HasEdge(u, w) != inner.HasEdge(u, w) {
					t.Errorf("HasEdge(%d,%d) mismatch", u, w)
					return
				}
			}
		}(int32(w * 37))
	}
	wg.Wait()
}
