package service

import (
	"sort"

	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/service/journal"
	"repro/internal/stats"
)

// This file binds the service to the obs metrics registry. The registry is
// the single source of truth for every counter the daemon keeps: the
// Prometheus exposition (/metrics) renders it directly and /v1/stats is
// derived from the same metric handles (Manager.Stats reads them back), so
// the two views can never disagree.
//
// Recording sites are chosen off the walk hot path: job-lifecycle counters
// fire on state transitions under Manager.mu, queue-wait and run-duration
// histograms at dispatch/settle, journal metrics on the async writer
// goroutine, and walk-engine counters only at checkpoint barriers — never
// inside StepSRW (TestWalkStepZeroAllocs guards that).

// serviceMetrics holds the Manager's metric handles on a shared
// obs.Registry.
type serviceMetrics struct {
	reg *obs.Registry

	// Job lifecycle.
	jobs        *obs.CounterVec // graphletd_jobs_total{state}
	jobsActive  *obs.Gauge
	runs        *obs.Counter
	queueDepth  *obs.GaugeVec     // {class}, maintained by the scheduler
	queueWait   *obs.HistogramVec // {class}, observed at dispatch
	runDuration *obs.HistogramVec // {class}, observed at settle

	// Result cache.
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter
	coalesced      *obs.Counter
	cacheEntries   *obs.Gauge

	// Recovery (set once at startup replay).
	recovered *obs.Gauge
	resumable *obs.Gauge
	warmed    *obs.Gauge

	// Walk engine, recorded at checkpoint barriers only.
	walkSteps       *obs.Counter
	walkCheckpoints *obs.Counter
	walkResumed     *obs.Counter

	// Multi-size jobs: runs dispatched, and per-size sample windows and
	// results credited at settle (each size of a shared walk covers the full
	// window budget while the walk steps are paid once).
	multiRuns    *obs.Counter
	multiSteps   *obs.CounterVec // graphletd_multi_walk_steps_total{k}
	multiResults *obs.CounterVec // graphletd_multi_results_total{k}

	// Distributed execution (coordinator side; the worker endpoint's served
	// counter lives on the dist.Handler cmd/graphletd mounts).
	dist *dist.Metrics

	// Graph registry.
	graphs *obs.GaugeVec // {source}

	// Block-decode cache of .gcsr v2 graphs, aggregated across registered
	// graphs at scrape time (gauges, not counters: removing a graph drops
	// its contribution, so the aggregate may go down).
	blockHits      *obs.Gauge
	blockMisses    *obs.Gauge
	blockEvictions *obs.Gauge
	blockResBytes  *obs.Gauge
	blockResBlocks *obs.Gauge

	// Journal (shared handles with journal.Metrics; the journal increments
	// them internally, the manager adds marshal failures to errors).
	journal *journal.Metrics
}

// newServiceMetrics registers every service metric on reg (creating a
// private registry when nil — volatile test managers still derive their
// Stats from metric handles) and wires the graph registry's per-source
// gauge.
func newServiceMetrics(reg *obs.Registry, graphs *Registry) *serviceMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &serviceMetrics{
		reg: reg,
		jobs: reg.CounterVec("graphletd_jobs_total",
			"Job lifecycle transitions: submitted on admission, then one terminal state.",
			"state"),
		jobsActive: reg.Gauge("graphletd_jobs_active",
			"Jobs currently holding a worker."),
		runs: reg.Counter("graphletd_runs_total",
			"Estimations actually executed (cache hits and coalesced submissions excluded)."),
		queueDepth: reg.GaugeVec("graphletd_queue_depth",
			"Jobs waiting for a worker, by priority class.", "class"),
		queueWait: reg.HistogramVec("graphletd_queue_wait_seconds",
			"Time from admission to dispatch, by priority class.",
			obs.LatencyBuckets, "class"),
		runDuration: reg.HistogramVec("graphletd_run_duration_seconds",
			"Time from dispatch to terminal state, by priority class.",
			obs.LatencyBuckets, "class"),
		cacheHits: reg.Counter("graphletd_cache_hits_total",
			"Submissions answered instantly from the result cache."),
		cacheMisses: reg.Counter("graphletd_cache_misses_total",
			"Submissions not answered by the result cache (coalesced or run)."),
		cacheEvictions: reg.Counter("graphletd_cache_evictions_total",
			"Results evicted by the LRU capacity bound."),
		coalesced: reg.Counter("graphletd_coalesced_total",
			"Submissions merged into an identical in-flight run."),
		cacheEntries: reg.Gauge("graphletd_cache_entries",
			"Results currently cached."),
		recovered: reg.Gauge("graphletd_recovered_jobs",
			"Jobs re-queued by journal replay at startup."),
		resumable: reg.Gauge("graphletd_resumable_jobs",
			"Recovered jobs that resumed mid-budget from a checkpoint snapshot."),
		warmed: reg.Gauge("graphletd_warmed_results",
			"Cache entries restored from the journal at startup."),
		walkSteps: reg.Counter("graphletd_walk_steps_total",
			"Walk transitions executed, accumulated at checkpoint barriers."),
		walkCheckpoints: reg.Counter("graphletd_walk_checkpoints_total",
			"Checkpoint barriers reached across all runs."),
		walkResumed: reg.Counter("graphletd_walk_resumed_steps_total",
			"Walk steps preserved by restoring checkpoint snapshots instead of re-running."),
		multiRuns: reg.Counter("graphletd_multi_runs_total",
			"Shared-walk multi-size ensembles executed (one step budget covering several sizes)."),
		multiSteps: reg.CounterVec("graphletd_multi_walk_steps_total",
			"Sample windows credited per size by completed multi-size runs.", "k"),
		multiResults: reg.CounterVec("graphletd_multi_results_total",
			"Per-size results produced by completed multi-size runs (cache fan-out entries).", "k"),
		graphs: reg.GaugeVec("graphletd_graphs",
			"Registered graphs by source (dataset, file, gcsr, inline).", "source"),
		blockHits: reg.Gauge("graphletd_blockcache_hits",
			"Neighbor-row reads served from decoded-block caches, across registered v2 graphs."),
		blockMisses: reg.Gauge("graphletd_blockcache_misses",
			"Neighbor-row reads that decoded a block, across registered v2 graphs."),
		blockEvictions: reg.Gauge("graphletd_blockcache_evictions",
			"Decoded blocks dropped by the clock hand, across registered v2 graphs."),
		blockResBytes: reg.Gauge("graphletd_blockcache_resident_bytes",
			"Bytes of decoded blocks currently cached, across registered v2 graphs."),
		blockResBlocks: reg.Gauge("graphletd_blockcache_resident_blocks",
			"Decoded blocks currently cached, across registered v2 graphs."),
		dist: dist.NewMetrics(reg),
	}
	m.journal = &journal.Metrics{
		Appends: reg.Counter("graphletd_journal_appends_total",
			"Journal records written."),
		AppendSeconds: reg.Histogram("graphletd_journal_append_seconds",
			"Journal append latency in seconds, including rotation and fsync.",
			obs.MicroLatencyBuckets),
		Fsyncs: reg.Counter("graphletd_journal_fsyncs_total",
			"File syncs issued by the journal."),
		Compactions: reg.Counter("graphletd_journal_compactions_total",
			"Completed journal compactions."),
		Errors: reg.Counter("graphletd_journal_errors_total",
			"Failed journal operations (the daemon keeps serving from memory)."),
		Segments: reg.Gauge("graphletd_journal_segments",
			"Journal segment files currently on disk."),
	}
	graphs.instrument(m.graphs)
	return m
}

// installCollector registers the pull-style refreshers that keep gauges
// with no natural mutation hook current at scrape time.
func (m *Manager) installCollector() {
	m.met.reg.OnCollect(func() {
		m.mu.Lock()
		m.met.cacheEntries.Set(int64(m.cache.len()))
		m.mu.Unlock()
		if m.reg != nil {
			st := m.reg.BlockCacheStats()
			m.met.blockHits.Set(int64(st.Hits))
			m.met.blockMisses.Set(int64(st.Misses))
			m.met.blockEvictions.Set(int64(st.Evictions))
			m.met.blockResBytes.Set(st.ResidentBytes)
			m.met.blockResBlocks.Set(st.ResidentBlocks)
		}
	})
}

// waitReservoir is a bounded ring of recent queue-wait samples for one
// priority class; /v1/stats derives p50/p95/p99 from it with the shared
// stats.Quantile helper. Histograms answer the same question for PromQL;
// the reservoir answers it exactly for the JSON surface (and for tests)
// without bucket-interpolation error.
type waitReservoir struct {
	samples []float64
	next    int
	full    bool
}

const waitReservoirCap = 512

// add records one wait sample, overwriting the oldest once full.
func (r *waitReservoir) add(v float64) {
	if len(r.samples) < waitReservoirCap {
		r.samples = append(r.samples, v)
		return
	}
	r.samples[r.next] = v
	r.next = (r.next + 1) % waitReservoirCap
	r.full = true
}

// QuantileSummary reports a latency distribution over recent samples.
type QuantileSummary struct {
	// Count is how many samples back the quantiles (bounded; under
	// sustained load it reflects the most recent window).
	Count int     `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// summarize computes the quantile summary of the reservoir.
func (r *waitReservoir) summarize() QuantileSummary {
	if len(r.samples) == 0 {
		return QuantileSummary{}
	}
	return QuantileSummary{
		Count: len(r.samples),
		P50:   stats.Quantile(r.samples, 0.50),
		P95:   stats.Quantile(r.samples, 0.95),
		P99:   stats.Quantile(r.samples, 0.99),
	}
}

// recordDispatchLocked observes a job's queue wait (admission to dispatch)
// in both the per-class histogram and the quantile reservoir. Caller holds
// Manager.mu.
func (m *Manager) recordDispatchLocked(j *job) {
	wait := j.started.Sub(j.created).Seconds()
	class := string(j.spec.Priority)
	m.met.queueWait.With(class).Observe(wait)
	r := m.waits[j.spec.Priority]
	if r == nil {
		r = &waitReservoir{}
		m.waits[j.spec.Priority] = r
	}
	r.add(wait)
}

// waitQuantilesLocked summarizes the per-class queue-wait reservoirs for
// /v1/stats. Caller holds Manager.mu.
func (m *Manager) waitQuantilesLocked() map[string]QuantileSummary {
	if len(m.waits) == 0 {
		return nil
	}
	out := make(map[string]QuantileSummary, len(m.waits))
	classes := make([]string, 0, len(m.waits))
	for p := range m.waits {
		classes = append(classes, string(p))
	}
	sort.Strings(classes)
	for _, c := range classes {
		out[c] = m.waits[Priority(c)].summarize()
	}
	return out
}

// MetricsRegistry exposes the manager's metrics registry (the HTTP layer
// serves it at GET /metrics).
func (m *Manager) MetricsRegistry() *obs.Registry {
	return m.met.reg
}
