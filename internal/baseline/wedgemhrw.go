package baseline

import (
	"math/rand"

	"repro/internal/access"
)

// WedgeMHRW implements the paper's Algorithm 4 (Appendix F): wedge sampling
// adapted to restricted access via a Metropolis-Hastings random walk whose
// stationary distribution over nodes is proportional to C(d_v, 2). At every
// step a uniform pair of the current node's neighbors is tested for
// adjacency. Each step explores three nodes' neighborhoods, so its API cost
// is ~3x a simple-random-walk step — the point of the §6.3.3 comparison.
type WedgeMHRW struct {
	c   access.Client
	rng *rand.Rand
	cur int32
}

// NewWedgeMHRW seeds the walker at a random node with degree >= 2.
func NewWedgeMHRW(c access.Client, rng *rand.Rand) *WedgeMHRW {
	w := &WedgeMHRW{c: c, rng: rng}
	for {
		v := c.RandomNode(rng)
		if c.Degree(v) >= 2 {
			w.cur = v
			break
		}
	}
	return w
}

// MHRWResult aggregates a run.
type MHRWResult struct {
	Steps  int
	Open   int64 // Ĉ³₁ accumulator: sampled open wedges
	Closed int64 // Ĉ³₂ accumulator: sampled closed wedges
}

// Concentration returns [ĉ³₁, ĉ³₂] per Algorithm 4 line 17: every triangle
// holds three closed wedges, hence the factor 3 on the open accumulator.
func (r MHRWResult) Concentration() []float64 {
	den := 3*float64(r.Open) + float64(r.Closed)
	if den == 0 {
		return []float64{0, 0}
	}
	return []float64{3 * float64(r.Open) / den, float64(r.Closed) / den}
}

// Run advances n Metropolis-Hastings steps, sampling one wedge per step.
func (w *WedgeMHRW) Run(n int) MHRWResult {
	var res MHRWResult
	res.Steps = n
	for t := 0; t < n; t++ {
		v := w.cur
		dv := w.c.Degree(v)
		// Sample a uniform pair of neighbors of v.
		a := w.rng.Intn(dv)
		b := w.rng.Intn(dv - 1)
		if b >= a {
			b++
		}
		x, y := w.c.Neighbor(v, a), w.c.Neighbor(v, b)
		if w.c.HasEdge(x, y) {
			res.Closed++
		} else {
			res.Open++
		}
		// Metropolis-Hastings proposal: uniform neighbor; accept with
		// min{1, (d_w - 1)/(d_v - 1)} (stationary ∝ C(d, 2)).
		prop := w.c.Neighbor(v, w.rng.Intn(dv))
		dw := w.c.Degree(prop)
		if dw >= 2 {
			if p := float64(dw-1) / float64(dv-1); w.rng.Float64() <= p {
				w.cur = prop
			}
		}
	}
	return res
}
