// Command samplesize makes the paper's Theorem 3 concrete: it estimates the
// mixing time of the random walk on a graph from its spectral gap, plugs it
// into the Chernoff-Hoeffding sample-size bound together with the exact
// quantities W and Λ, and compares the bound's *ordering* across graphs with
// the empirically observed error at a fixed budget — fast-mixing graphs need
// fewer steps, exactly as the theorem predicts.
package main

import (
	"fmt"

	graphletrw "repro"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mixing"
	"repro/internal/stats"
)

func main() {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"expander (random regular)", gen.RandomRegular(2000, 8, 1)},
		{"holme-kim (power law)", gen.HolmeKim(2000, 4, 0.6, 2)},
		{"lollipop (slow mixing)", gen.Lollipop(60, 600)},
	}

	fmt.Printf("%-28s %10s %12s %14s %12s\n", "graph", "gap", "tau(1/8)", "bound (xi=1)", "NRMSE@20K")
	for _, item := range graphs {
		lcc, _ := graphletrw.LargestComponent(item.g)
		mix := mixing.Estimate(lcc, 4000, 1e-9)
		tau := mix.MixingTime(1.0 / 8)

		// Theorem 3 inputs for the triangle estimate under SRW(1):
		// W = max 1/πe over 3-step windows; Λ = min{α·C_tri, α_min·C³}.
		counts := exact.ThreeNodeCounts(lcc)
		twoE := 2 * float64(lcc.NumEdges())
		maxDeg := float64(lcc.MaxDegree())
		W := twoE * maxDeg                           // 1/πe = 2|E|·d(X2) at most
		alphaW := float64(graphletrw.Alpha(3, 1, 1)) // wedge: 2
		alphaT := float64(graphletrw.Alpha(3, 1, 2)) // triangle: 6
		total := float64(counts[0] + counts[1])
		lambda := min64(alphaT*float64(counts[1]), min64(alphaW, alphaT)*total)
		bound := core.SampleSizeBound(core.BoundInput{
			Eps: 0.5, Delta: 0.1, W: W, Lambda: lambda, Tau: tau,
		})

		// Empirical check at a fixed 20K budget.
		truth := exact.Concentrations(counts)
		client := graphletrw.NewClient(lcc)
		trials := stats.RunTrials(40, func(trial int) []float64 {
			est, err := graphletrw.NewEstimator(client, graphletrw.Config{
				K: 3, D: 1, Seed: int64(trial + 1),
			})
			if err != nil {
				panic(err)
			}
			res, err := est.Run(20000)
			if err != nil {
				panic(err)
			}
			return res.Concentration()
		})
		nrmse := stats.NRMSEOfComponent(trials, truth, 1)

		fmt.Printf("%-28s %10.5f %12.0f %14.3g %12.4f\n",
			item.name, mix.SpectralGap, tau, bound, nrmse)
	}
	fmt.Println("\nthe bound combines mixing (tau) with graphlet rarity (W/Lambda); its")
	fmt.Println("ordering across graphs matches the observed NRMSE ordering, as Theorem 3")
	fmt.Println("predicts (the universal constant xi is not computed by the paper, so")
	fmt.Println("absolute values are indicative only)")
}

func min64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
