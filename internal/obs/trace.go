package obs

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Request tracing: every request entering the daemon gets a request ID at
// the front door — taken from an X-Request-Id header a proxy or client
// already assigned, or freshly generated — which is echoed on the response,
// stored in the request context for downstream layers (the job manager
// stamps it into the job record, so SSE events and /v1/jobs views carry the
// submitting request's ID), and logged in the structured access log.

// RequestIDHeader is the header carrying the request ID in both directions.
const RequestIDHeader = "X-Request-Id"

type ctxKey int

const requestIDKey ctxKey = 0

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFrom extracts the request ID from a context ("" if untraced).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

var ridFallback atomic.Uint64

// NewRequestID generates a 16-hex-char request ID. IDs are random, not
// sequential, so they can be correlated across restarts and daemons without
// collisions.
func NewRequestID() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// Entropy exhaustion should be impossible; degrade to unique-in-process.
		binary.LittleEndian.PutUint64(b[:], uint64(time.Now().UnixNano())^ridFallback.Add(1)<<48)
	}
	return hex.EncodeToString(b[:])
}

// validRequestID accepts client-provided IDs that are short and printable
// (no header-injection or log-forgery characters); anything else is
// replaced by a generated ID.
func validRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '.' || c == ':'
		if !ok {
			return false
		}
	}
	return true
}

// HTTPMetrics is the per-request metric set the Trace middleware records.
type HTTPMetrics struct {
	// Requests counts finished requests by method, route pattern and
	// status code.
	Requests *CounterVec
	// Latency is the request-duration histogram by route pattern.
	Latency *HistogramVec
	// InFlight gauges requests currently being served.
	InFlight *Gauge
}

// NewHTTPMetrics registers the HTTP request metrics under the given
// namespace prefix (e.g. "graphletd" -> graphletd_http_requests_total).
func NewHTTPMetrics(r *Registry, namespace string) *HTTPMetrics {
	return &HTTPMetrics{
		Requests: r.CounterVec(namespace+"_http_requests_total",
			"Finished HTTP requests by method, route and status code.",
			"method", "path", "code"),
		Latency: r.HistogramVec(namespace+"_http_request_seconds",
			"HTTP request duration in seconds by route.",
			LatencyBuckets, "path"),
		InFlight: r.Gauge(namespace+"_http_inflight",
			"HTTP requests currently being served."),
	}
}

// TraceOptions configures the Trace middleware. All fields are optional.
type TraceOptions struct {
	// Logger receives one structured access-log line per finished request
	// (nil disables access logging; request IDs and metrics still work).
	Logger *slog.Logger
	// Metrics receives request counts and latencies (nil disables).
	Metrics *HTTPMetrics
	// PathLabel maps a request to a bounded-cardinality route label for
	// metrics and logs (nil uses the raw URL path — only safe when the
	// route space is finite).
	PathLabel func(*http.Request) string
}

// Trace wraps next with the request-tracing front door: request-ID
// assignment and echo, in-flight/request/latency metrics, and a structured
// access log. It preserves http.Flusher so SSE streaming keeps working
// through the wrapper.
func Trace(next http.Handler, opts TraceOptions) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if !validRequestID(id) {
			id = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		r = r.WithContext(WithRequestID(r.Context(), id))

		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		if opts.Metrics != nil {
			opts.Metrics.InFlight.Inc()
		}
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)

		path := r.URL.Path
		if opts.PathLabel != nil {
			path = opts.PathLabel(r)
		}
		if opts.Metrics != nil {
			opts.Metrics.InFlight.Dec()
			opts.Metrics.Requests.With(r.Method, path, itoa3(rec.status)).Inc()
			opts.Metrics.Latency.With(path).Observe(elapsed.Seconds())
		}
		if opts.Logger != nil {
			opts.Logger.Info("request",
				"request_id", id,
				"method", r.Method,
				"path", r.URL.Path,
				"route", path,
				"status", rec.status,
				"bytes", rec.bytes,
				"duration_ms", float64(elapsed.Microseconds())/1000,
				"remote", r.RemoteAddr,
			)
		}
	})
}

// statusRecorder captures the response status and size. It implements
// http.Flusher by delegation because the SSE endpoint type-asserts its
// writer to a Flusher.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (w *statusRecorder) WriteHeader(code int) {
	if !w.wrote {
		w.status, w.wrote = code, true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	w.wrote = true
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// itoa3 renders a status code without allocating for the common range.
func itoa3(code int) string {
	if code >= 100 && code < 600 {
		var b [3]byte
		b[0] = byte('0' + code/100)
		b[1] = byte('0' + code/10%10)
		b[2] = byte('0' + code%10)
		return string(b[:])
	}
	return "000"
}

// Health tracks daemon liveness and readiness for load-balancer probes.
// Liveness is unconditional (the process answers); readiness flips on once
// startup — graph registration, journal replay — completes, and can flip
// back off during shutdown so a balancer drains the instance first.
type Health struct {
	mu     sync.Mutex
	ready  bool
	reason string
}

// NewHealth returns a Health that is not yet ready.
func NewHealth(reason string) *Health {
	return &Health{reason: reason}
}

// SetReady marks the daemon ready to serve.
func (h *Health) SetReady() {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.ready, h.reason = true, ""
	h.mu.Unlock()
}

// SetNotReady marks the daemon unready with a reason.
func (h *Health) SetNotReady(reason string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.ready, h.reason = false, reason
	h.mu.Unlock()
}

// Ready reports the current readiness and, when unready, the reason.
func (h *Health) Ready() (bool, string) {
	if h == nil {
		// A handler with no Health wired is serving traffic already.
		return true, ""
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ready, h.reason
}

// ServeLive answers a liveness probe: 200 whenever the process can run a
// handler at all.
func (h *Health) ServeLive(w http.ResponseWriter, r *http.Request) {
	writeHealth(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ServeReady answers a readiness probe: 200 once startup completed, 503
// (with the reason) before that or during drain.
func (h *Health) ServeReady(w http.ResponseWriter, r *http.Request) {
	if ok, reason := h.Ready(); !ok {
		writeHealth(w, http.StatusServiceUnavailable,
			map[string]string{"status": "unavailable", "reason": reason})
		return
	}
	writeHealth(w, http.StatusOK, map[string]string{"status": "ok"})
}

func writeHealth(w http.ResponseWriter, status int, body map[string]string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}
