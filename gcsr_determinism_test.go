package graphletrw

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// The acceptance property of the binary CSR store: an estimation over a
// builder-loaded graph must be byte-identical to the same estimation over
// the .gcsr portable-load and mmap'd graphs — and over the block-compressed
// v2 store, whether its decode cache holds everything or thrashes. The walk
// consumes only
// adjacency and the seeded RNG, so equal graphs must give equal bytes — any
// divergence means the store (or the hub-bitset probe path) changed the
// topology it serves.
func TestEstimateByteIdenticalAcrossLoadPaths(t *testing.T) {
	raw := gen.HolmeKim(1200, 4, 0.6, 77)
	built, _ := LargestComponent(raw)

	dir := t.TempDir()
	path := filepath.Join(dir, "g.gcsr")
	if err := SaveGraph(path, built); err != nil {
		t.Fatal(err)
	}
	loaded, err := graph.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := graph.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	if !mapped.Mapped() {
		t.Log("OpenMapped fell back to the portable load path on this platform")
	}

	// The block-compressed v2 store must serve the identical topology: once
	// through a cache big enough to hold every decoded block, and once
	// through a cache small enough to thrash (evictions mid-walk must never
	// change what a row contains).
	pathV2 := filepath.Join(dir, "g2.gcsr")
	if err := graph.SaveOpts(pathV2, built, graph.SaveOptions{Version: 2, BlockBytes: 4 << 10}); err != nil {
		t.Fatal(err)
	}
	cached, err := graph.OpenMappedOpts(pathV2, graph.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cached.Close()
	thrashed, err := graph.OpenMappedOpts(pathV2, graph.OpenOptions{BlockCacheBytes: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	defer thrashed.Close()

	for _, cfg := range []Config{
		{K: 3, D: 1, CSS: true, NB: true, Seed: 5},
		{K: 4, D: 2, CSS: true, Seed: 5, Walkers: 4},
		{K: 5, D: 2, CSS: true, Seed: 9},
		// d >= 3: the merge-based G(d) kernel path (counting scans +
		// nth-neighbor partial scans instead of materialized lists).
		{K: 4, D: 3, Seed: 5},
		{K: 5, D: 3, CSS: true, Seed: 7, Walkers: 2},
		{K: 5, D: 4, NB: true, Seed: 7},
	} {
		cfg := cfg
		t.Run(cfg.MethodName(), func(t *testing.T) {
			render := func(g *Graph) string {
				res, err := Estimate(NewClient(g), cfg, 6000)
				if err != nil {
					t.Fatal(err)
				}
				// Exact float formatting: byte-identical, not almost-equal.
				return fmt.Sprintf("%x|%x|%v|%d|%d",
					res.Concentration(), res.Weights, res.TypeCounts, res.Steps, res.ValidSamples)
			}
			want := render(built)
			if got := render(loaded); got != want {
				t.Errorf("Load path diverged:\nbuilt:  %s\nloaded: %s", want, got)
			}
			if got := render(mapped); got != want {
				t.Errorf("OpenMapped path diverged:\nbuilt:  %s\nmapped: %s", want, got)
			}
			if got := render(cached); got != want {
				t.Errorf("v2 cached path diverged:\nbuilt:  %s\ncached: %s", want, got)
			}
			if got := render(thrashed); got != want {
				t.Errorf("v2 thrashing-cache path diverged:\nbuilt:    %s\nthrashed: %s", want, got)
			}
		})
	}
}
