// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the synthetic stand-in datasets. Each experiment is a
// function writing a plain-text table to an io.Writer; cmd/experiments
// dispatches them, and the root bench_test.go wraps them as benchmarks.
//
// Absolute values differ from the paper (different graphs, scaled sizes, Go
// instead of C++), but each driver reproduces the experiment's *shape*: which
// method wins, by roughly what factor, and where crossovers happen.
// README.md indexes the experiments and how to run them.
package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/stats"
)

// Params tunes experiment cost. The zero value gets defaults.
type Params struct {
	Steps  int // random-walk steps per run (paper: 20K)
	Trials int // independent simulations (paper: 1000, 100 for SRW4)
	// Walkers is the per-run walker ensemble size (core.Config.Walkers):
	// each trial's step budget is split across this many concurrent walks.
	// 0 keeps the single-walker behavior. Trials themselves always run on
	// the stats.RunTrials worker pool.
	Walkers int
}

// apply stamps the ensemble size onto a method configuration.
func (p Params) apply(cfg core.Config) core.Config {
	cfg.Walkers = p.Walkers
	return cfg
}

// trialWorkers sizes the trial pool so trials × walkers stays at the
// machine's parallelism: each trial spawns cfg.Walkers goroutines, and
// oversubscribing would make a trial's wall time incomparable to the same
// config run alone (which Fig7's time calibration depends on). The sizing
// rule is shared with the estimation service's job pool (stats.PoolWorkers).
func trialWorkers(walkers int) int {
	return stats.PoolWorkers(walkers)
}

func (p Params) withDefaults() Params {
	if p.Steps == 0 {
		p.Steps = 20000
	}
	if p.Trials == 0 {
		p.Trials = 200
	}
	return p
}

// Quick returns parameters small enough for smoke tests and benchmarks.
func Quick() Params { return Params{Steps: 2000, Trials: 8} }

// methodTrials runs `trials` independent walks of cfg on g and returns the
// per-trial concentration vectors.
func methodTrials(g *graph.Graph, cfg core.Config, steps, trials int) [][]float64 {
	client := access.NewGraphClient(g)
	return stats.RunTrialsWorkers(trials, trialWorkers(cfg.Walkers), func(trial int) []float64 {
		c := cfg
		c.Seed = int64(100003*trial + 17)
		est, err := core.NewEstimator(client, c)
		if err != nil {
			panic(err)
		}
		res, err := est.Run(steps)
		if err != nil {
			panic(err)
		}
		return res.Concentration()
	})
}

// methodNRMSE runs trials and returns the NRMSE of component idx against
// truth.
func methodNRMSE(g *graph.Graph, cfg core.Config, steps, trials int, truth []float64, idx int) float64 {
	tr := methodTrials(g, cfg, steps, trials)
	return stats.NRMSEOfComponent(tr, truth, idx)
}

// fmtF renders a float compactly for tables.
func fmtF(x float64) string {
	switch {
	case math.IsNaN(x):
		return "-"
	case x == 0:
		return "0"
	case math.Abs(x) >= 1000 || math.Abs(x) < 0.001:
		return fmt.Sprintf("%.3e", x)
	default:
		return fmt.Sprintf("%.4f", x)
	}
}

// header prints a section title.
func header(w io.Writer, title string) {
	fmt.Fprintln(w)
	fmt.Fprintln(w, title)
	for range title {
		fmt.Fprint(w, "=")
	}
	fmt.Fprintln(w)
}

// smallDatasets returns the Exact5 datasets; allDatasets all ten.
func smallDatasets() []datasets.Dataset { return datasets.Small() }
func allDatasets() []datasets.Dataset   { return datasets.All() }
