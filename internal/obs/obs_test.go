package obs

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// buildRegistry populates a registry with one of everything, including a
// label value that needs every escape rule.
func buildRegistry() *Registry {
	r := NewRegistry()
	r.Counter("test_ops_total", "Operations.").Add(7)
	r.Gauge("test_depth", "Depth.").Set(-3)
	cv := r.CounterVec("test_requests_total", "Requests by code.", "code", "path")
	cv.With("200", "/v1/jobs").Add(5)
	cv.With("404", `a\b"c`+"\nd").Inc()
	h := r.Histogram("test_latency_seconds", "Latency with a \\ and\nnewline in help.",
		[]float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0005, 0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	hv := r.HistogramVec("test_wait_seconds", "Wait.", []float64{0.01, 0.1}, "class")
	hv.With("batch").Observe(0.02)
	return r
}

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return buf.String()
}

// sample is one parsed exposition line.
type sample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseExposition is a strict parser for the v0.0.4 text format: it fails
// the test on any malformed line, HELP/TYPE ordering violation, or sample
// whose base name has no TYPE.
func parseExposition(t *testing.T, text string) (samples []sample, types map[string]string) {
	t.Helper()
	types = make(map[string]string)
	helped := make(map[string]bool)
	lastMeta := "" // family name of the preceding HELP, to enforce HELP-then-TYPE
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			if helped[name] {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
			}
			helped[name] = true
			lastMeta = name
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, typ := fields[0], fields[1]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("line %d: unknown type %q", ln+1, typ)
			}
			if _, dup := types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			if lastMeta != name {
				t.Fatalf("line %d: TYPE %s not preceded by its HELP", ln+1, name)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}
		s := parseSample(t, ln+1, line)
		base := s.name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(s.name, suffix); ok {
				if types[b] == "histogram" {
					base = b
				}
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("line %d: sample %s has no TYPE", ln+1, s.name)
		}
		samples = append(samples, s)
	}
	return samples, types
}

// parseSample parses `name{k="v",...} value`, undoing label escaping.
func parseSample(t *testing.T, ln int, line string) sample {
	t.Helper()
	s := sample{labels: make(map[string]string)}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("line %d: no value separator: %q", ln, line)
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		rest = rest[1:]
		for !strings.HasPrefix(rest, "}") {
			eq := strings.Index(rest, `="`)
			if eq < 0 {
				t.Fatalf("line %d: malformed label in %q", ln, line)
			}
			key := rest[:eq]
			rest = rest[eq+2:]
			// Find the closing quote, honoring backslash escapes.
			var val strings.Builder
			for {
				if rest == "" {
					t.Fatalf("line %d: unterminated label value in %q", ln, line)
				}
				c := rest[0]
				if c == '"' {
					rest = rest[1:]
					break
				}
				if c == '\\' {
					if len(rest) < 2 {
						t.Fatalf("line %d: dangling escape in %q", ln, line)
					}
					switch rest[1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						t.Fatalf("line %d: bad escape \\%c in %q", ln, rest[1], line)
					}
					rest = rest[2:]
					continue
				}
				val.WriteByte(c)
				rest = rest[1:]
			}
			s.labels[key] = val.String()
			rest = strings.TrimPrefix(rest, ",")
		}
		rest = strings.TrimPrefix(rest, "}")
	}
	rest = strings.TrimPrefix(rest, " ")
	var err error
	if rest == "+Inf" {
		s.value = math.Inf(+1)
	} else if s.value, err = strconv.ParseFloat(rest, 64); err != nil {
		t.Fatalf("line %d: bad value %q: %v", ln, rest, err)
	}
	return s
}

func TestExpositionWellFormed(t *testing.T) {
	r := buildRegistry()
	text := render(t, r)
	samples, types := parseExposition(t, text)

	if types["test_ops_total"] != "counter" ||
		types["test_depth"] != "gauge" ||
		types["test_latency_seconds"] != "histogram" {
		t.Fatalf("missing or mistyped families: %v", types)
	}
	find := func(name string, labels map[string]string) (sample, bool) {
		for _, s := range samples {
			if s.name != name || len(s.labels) != len(labels) {
				continue
			}
			match := true
			for k, v := range labels {
				if s.labels[k] != v {
					match = false
				}
			}
			if match {
				return s, true
			}
		}
		return sample{}, false
	}

	if s, ok := find("test_ops_total", nil); !ok || s.value != 7 {
		t.Errorf("test_ops_total = %v, %v; want 7", s.value, ok)
	}
	if s, ok := find("test_depth", nil); !ok || s.value != -3 {
		t.Errorf("test_depth = %v, %v; want -3", s.value, ok)
	}
	// The escaped label value round-trips through render + parse.
	want := map[string]string{"code": "404", "path": `a\b"c` + "\nd"}
	if s, ok := find("test_requests_total", want); !ok || s.value != 1 {
		t.Errorf("escaped-label counter = %+v, %v; want value 1", s, ok)
	}
	if !strings.Contains(text, `path="a\\b\"c\nd"`) {
		t.Errorf("exposition does not contain the escaped label value:\n%s", text)
	}
}

func TestExpositionHistogramInvariants(t *testing.T) {
	r := buildRegistry()
	samples, _ := parseExposition(t, render(t, r))

	// Gather the test_latency_seconds bucket series in output order.
	var bounds, counts []float64
	var sum, count float64
	haveSum, haveCount := false, false
	for _, s := range samples {
		switch s.name {
		case "test_latency_seconds_bucket":
			le, err := strconv.ParseFloat(s.labels["le"], 64)
			if s.labels["le"] == "+Inf" {
				le, err = math.Inf(+1), nil
			}
			if err != nil {
				t.Fatalf("bad le %q", s.labels["le"])
			}
			bounds = append(bounds, le)
			counts = append(counts, s.value)
		case "test_latency_seconds_sum":
			sum, haveSum = s.value, true
		case "test_latency_seconds_count":
			count, haveCount = s.value, true
		}
	}
	if !haveSum || !haveCount {
		t.Fatal("histogram missing _sum or _count")
	}
	if len(bounds) != 5 || !math.IsInf(bounds[len(bounds)-1], +1) {
		t.Fatalf("bucket bounds = %v; want 4 finite then +Inf", bounds)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Errorf("le bounds not increasing: %v", bounds)
		}
		if counts[i] < counts[i-1] {
			t.Errorf("cumulative counts decrease: %v", counts)
		}
	}
	if got := counts[len(counts)-1]; got != count {
		t.Errorf("+Inf bucket %v != _count %v", got, count)
	}
	if count != 6 {
		t.Errorf("_count = %v; want 6", count)
	}
	// Observed 0.0005+0.005+0.005+0.05+0.5+5.
	if wantSum := 5.5605; math.Abs(sum-wantSum) > 1e-9 {
		t.Errorf("_sum = %v; want %v", sum, wantSum)
	}
	// Bucket contents: le=0.001 -> 1, le=0.01 -> 3, le=0.1 -> 4, le=1 -> 5.
	for i, want := range []float64{1, 3, 4, 5, 6} {
		if counts[i] != want {
			t.Errorf("bucket %d (le=%v) = %v; want %v", i, bounds[i], counts[i], want)
		}
	}
}

func TestExpositionDeterministic(t *testing.T) {
	r := buildRegistry()
	a, b := render(t, r), render(t, r)
	if a != b {
		t.Errorf("consecutive renders differ:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

func TestHistogramObserveLeSemantics(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_edges", "Edge semantics.", []float64{1, 2})
	h.Observe(1) // exactly on a bound: le="1" must include it
	snap := h.Snapshot()
	if snap.Cumulative[0] != 1 {
		t.Errorf("observation on bucket bound not counted le-inclusive: %+v", snap)
	}
}

func TestRegistryIdempotentAndInvalid(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_twice_total", "Once.")
	b := r.Counter("test_twice_total", "Twice.")
	if a != b {
		t.Error("re-registering an identical counter returned a different handle")
	}
	mustPanic(t, "type mismatch", func() { r.Gauge("test_twice_total", "x") })
	mustPanic(t, "label mismatch", func() { r.CounterVec("test_twice_total", "x", "l") })
	mustPanic(t, "invalid name", func() { r.Counter("9bad", "x") })
	mustPanic(t, "invalid label", func() { r.CounterVec("test_l_total", "x", "__reserved") })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

func TestNilReceiversNoOp(t *testing.T) {
	var (
		c  *Counter
		g  *Gauge
		h  *Histogram
		cv *CounterVec
		gv *GaugeVec
		hv *HistogramVec
		r  *Registry
	)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Dec()
	h.Observe(1)
	cv.With("x").Inc()
	gv.With("x").Set(2)
	gv.Zero()
	hv.With("x").Observe(1)
	r.OnCollect(func() {})
	r.Counter("x_total", "x").Inc()
	if err := r.WriteText(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil registry WriteText: %v", err)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Error("nil metrics reported non-zero values")
	}
}

// TestConcurrentHammer drives every metric type from many goroutines while
// scraping concurrently; run under -race this is the registry's data-race
// proof, and the final counts prove no increment was lost.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_hammer_total", "h")
	g := r.Gauge("test_hammer_gauge", "h")
	cv := r.CounterVec("test_hammer_vec_total", "h", "worker")
	h := r.Histogram("test_hammer_seconds", "h", []float64{0.25, 0.5, 0.75})

	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := fmt.Sprintf("w%d", w%4) // contend on shared children too
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				cv.With(label).Inc()
				h.Observe(float64(i%perWorker) / perWorker)
			}
		}(w)
	}
	// Concurrent scrapes while the writers run.
	var scrapeWG sync.WaitGroup
	for s := 0; s < 4; s++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for i := 0; i < 50; i++ {
				var buf bytes.Buffer
				if err := r.WriteText(&buf); err != nil {
					t.Errorf("concurrent WriteText: %v", err)
					return
				}
				// Snapshot consistency: the histogram's +Inf bucket must equal
				// its _count even mid-hammer.
				samples, _ := parseExposition(t, buf.String())
				var inf, count float64
				for _, s := range samples {
					if s.name == "test_hammer_seconds_bucket" && s.labels["le"] == "+Inf" {
						inf = s.value
					}
					if s.name == "test_hammer_seconds_count" {
						count = s.value
					}
				}
				if inf != count {
					t.Errorf("mid-scrape +Inf bucket %v != _count %v", inf, count)
					return
				}
			}
		}()
	}
	wg.Wait()
	scrapeWG.Wait()

	const total = workers * perWorker
	if c.Value() != total {
		t.Errorf("counter = %d; want %d", c.Value(), total)
	}
	if g.Value() != total {
		t.Errorf("gauge = %d; want %d", g.Value(), total)
	}
	var vecSum int64
	for w := 0; w < 4; w++ {
		vecSum += cv.With(fmt.Sprintf("w%d", w)).Value()
	}
	if vecSum != total {
		t.Errorf("vec sum = %d; want %d", vecSum, total)
	}
	if snap := h.Snapshot(); snap.Count != total {
		t.Errorf("histogram count = %d; want %d", snap.Count, total)
	}
}
