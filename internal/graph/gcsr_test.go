package graph

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

// graphsEqual compares two graphs structurally (CSR arrays and cached
// metadata).
func graphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() || a.MaxDegree() != b.MaxDegree() {
		t.Fatalf("shape mismatch: %v maxDeg=%d vs %v maxDeg=%d", a, a.MaxDegree(), b, b.MaxDegree())
	}
	for v := int32(0); v < int32(a.NumNodes()); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			t.Fatalf("node %d: degree %d vs %d", v, len(na), len(nb))
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("node %d: neighbor[%d] = %d vs %d", v, i, na[i], nb[i])
			}
		}
	}
}

func randomTestGraph(rng *rand.Rand, n, edges int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < edges; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.Build()
}

func TestGCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dir := t.TempDir()
	for _, tc := range []struct {
		name string
		g    *Graph
	}{
		{"empty", NewBuilder(0).Build()},
		{"edgeless", NewBuilder(5).Build()},
		{"k4", FromEdgeList(4, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})},
		{"random", randomTestGraph(rng, 300, 2000)},
		{"star", starGraph(200)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+GCSRExt)
			if err := Save(path, tc.g); err != nil {
				t.Fatal(err)
			}
			loaded, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			graphsEqual(t, tc.g, loaded)
			if err := Validate(loaded); err != nil {
				t.Errorf("Load: %v", err)
			}
			mapped, err := OpenMapped(path)
			if err != nil {
				t.Fatal(err)
			}
			graphsEqual(t, tc.g, mapped)
			if err := Validate(mapped); err != nil {
				t.Errorf("OpenMapped: %v", err)
			}
			if err := mapped.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
			if err := loaded.Close(); err != nil {
				t.Errorf("Close on heap-backed graph: %v", err)
			}
		})
	}
}

// starGraph returns a star with center 0 and n-1 leaves — above the hub
// degree floor the center gets a bitset row.
func starGraph(n int) *Graph {
	b := NewBuilder(n)
	for v := int32(1); v < int32(n); v++ {
		b.AddEdge(0, v)
	}
	return b.Build()
}

// Property: any built graph survives a Save → Load and Save → OpenMapped
// round trip with equality, a passing Validate, and the max degree intact.
func TestGCSRRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(raw []uint16) bool {
		b := NewBuilder(1)
		for j := 0; j+1 < len(raw); j += 2 {
			b.AddEdge(int32(raw[j]%97), int32(raw[j+1]%97))
		}
		g := b.Build()
		i++
		path := filepath.Join(dir, "prop.gcsr")
		if err := Save(path, g); err != nil {
			t.Logf("save: %v", err)
			return false
		}
		for _, open := range []func(string) (*Graph, error){Load, OpenMapped} {
			got, err := open(path)
			if err != nil {
				t.Logf("open: %v", err)
				return false
			}
			ok := got.NumNodes() == g.NumNodes() &&
				got.NumEdges() == g.NumEdges() &&
				got.MaxDegree() == g.MaxDegree() &&
				Validate(got) == nil
			if ok {
				for v := int32(0); v < int32(g.NumNodes()); v++ {
					a, b := g.Neighbors(v), got.Neighbors(v)
					if len(a) != len(b) {
						ok = false
						break
					}
					for k := range a {
						if a[k] != b[k] {
							ok = false
							break
						}
					}
				}
			}
			got.Close()
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGCSRWriteReadBinaryStream(t *testing.T) {
	g := randomTestGraph(rand.New(rand.NewSource(3)), 100, 400)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, got)
}

func TestGCSRCorruption(t *testing.T) {
	g := randomTestGraph(rand.New(rand.NewSource(4)), 64, 256)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	dir := t.TempDir()
	write := func(b []byte) string {
		path := filepath.Join(dir, "bad.gcsr")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	mutate := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mut(b)
		return b
	}
	cases := []struct {
		name    string
		data    []byte
		wantSub string
	}{
		{"bad magic", mutate(func(b []byte) { b[0] = 'X' }), "magic"},
		{"bad version", mutate(func(b []byte) { b[4] = 99 }), "version"},
		{"short header", good[:10], "header"},
		{"truncated payload", good[:len(good)-5], ""},
		{"flipped payload byte", mutate(func(b []byte) { b[gcsrHeaderSize+9] ^= 0xff }), "checksum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := write(tc.data)
			for _, open := range []struct {
				name string
				fn   func(string) (*Graph, error)
			}{{"Load", Load}, {"OpenMapped", OpenMapped}} {
				_, err := open.fn(path)
				if err == nil {
					t.Fatalf("%s accepted corrupted file (%s)", open.name, tc.name)
				}
				if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
					t.Errorf("%s error %q does not mention %q", open.name, err, tc.wantSub)
				}
			}
		})
	}
}

// A structurally invalid file whose checksum is internally consistent (any
// writer other than Save could produce one) must be rejected by both load
// paths, not crash or silently skew probes.
func TestGCSRRejectsInvalidAdjacency(t *testing.T) {
	g := FromEdgeList(5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {3, 4}})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	dir := t.TempDir()
	// adj entry i lives at headerSize + (n+1)*8 + 4*i.
	adjOffset := func(i int) int { return gcsrHeaderSize + (g.NumNodes()+1)*8 + 4*i }
	cases := []struct {
		name    string
		mut     func(b []byte)
		wantSub string
	}{
		{"out of range", func(b []byte) {
			binary.LittleEndian.PutUint32(b[adjOffset(0):], 99)
		}, "out of range"},
		{"self loop", func(b []byte) {
			// First entry is neighbor row of node 0; point it at 0 itself.
			binary.LittleEndian.PutUint32(b[adjOffset(0):], 0)
		}, "self loop"},
		{"unsorted row", func(b []byte) {
			// Swap node 0's first two neighbors (1 and 2).
			binary.LittleEndian.PutUint32(b[adjOffset(0):], 2)
			binary.LittleEndian.PutUint32(b[adjOffset(1):], 1)
		}, "ascending"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := append([]byte(nil), good...)
			tc.mut(b)
			// Recompute the checksum so only the structural check can fail.
			crc := crc32.Checksum(b[gcsrHeaderSize:], castagnoli)
			binary.LittleEndian.PutUint32(b[32:36], crc)
			path := filepath.Join(dir, "bad.gcsr")
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
			for _, open := range []struct {
				name string
				fn   func(string) (*Graph, error)
			}{{"Load", Load}, {"OpenMapped", OpenMapped}} {
				_, err := open.fn(path)
				if err == nil {
					t.Fatalf("%s accepted structurally invalid file", open.name)
				}
				if !strings.Contains(err.Error(), tc.wantSub) {
					t.Errorf("%s error %q does not mention %q", open.name, err, tc.wantSub)
				}
			}
		})
	}
}

// Validate must catch an asymmetric edge even when the listed endpoint is a
// hub: the bitset fast path in HasEdge answers from the hub's own row, so
// the check has to probe the counterpart's list directly.
func TestValidateCatchesAsymmetricHubEdge(t *testing.T) {
	// Hand-built broken CSR: node 0 lists 1..100 as neighbors, but every
	// other node has an empty row. Arc count is 100 = 2m for m=50, so only
	// the symmetry check can reject it.
	n := 101
	off := make([]int64, n+1)
	adj := make([]int32, 100)
	for i := 0; i < 100; i++ {
		adj[i] = int32(i + 1)
	}
	off[1] = 100
	for v := 2; v <= n; v++ {
		off[v] = 100
	}
	g := &Graph{off: off, adj: adj, m: 50, maxDeg: 100}
	g.buildHubIndex()
	if !g.IsHub(0) {
		t.Fatal("node 0 should be a hub")
	}
	if err := Validate(g); err == nil {
		t.Fatal("Validate accepted an asymmetric graph with a hub endpoint")
	} else if !strings.Contains(err.Error(), "asymmetric") {
		t.Fatalf("Validate error %q is not the asymmetry check", err)
	}
}

// A header lying about the payload size must produce an error, not a panic
// or an impossible allocation.
func TestGCSRLyingHeader(t *testing.T) {
	g := FromEdgeList(3, [][2]int32{{0, 1}, {1, 2}})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for name, m := range map[string]uint64{
		"huge m":     1 << 60,
		"max m":      1<<63 - 1,
		"moderate m": 1 << 40, // plausible-looking but far beyond the data
	} {
		b := append([]byte(nil), good...)
		binary.LittleEndian.PutUint64(b[16:24], m)
		if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: ReadBinary accepted a lying header", name)
		}
	}
}

func TestDetectAndParseFormat(t *testing.T) {
	dir := t.TempDir()
	g := starGraph(10)
	gcsrPath := filepath.Join(dir, "g.gcsr")
	if err := Save(gcsrPath, g); err != nil {
		t.Fatal(err)
	}
	// A .gcsr payload under a neutral extension is still sniffed by magic.
	sniffPath := filepath.Join(dir, "g.bin")
	b, _ := os.ReadFile(gcsrPath)
	if err := os.WriteFile(sniffPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	txtPath := filepath.Join(dir, "g.txt")
	if err := SaveEdgeList(txtPath, g); err != nil {
		t.Fatal(err)
	}
	for path, want := range map[string]Format{
		gcsrPath:  FormatGCSR,
		sniffPath: FormatGCSR,
		txtPath:   FormatEdgeList,
	} {
		if got := DetectFormat(path); got != want {
			t.Errorf("DetectFormat(%s) = %v, want %v", path, got, want)
		}
		opened, err := OpenFile(path, FormatAuto)
		if err != nil {
			t.Fatalf("OpenFile(%s): %v", path, err)
		}
		graphsEqual(t, g, opened)
		opened.Close()
	}
	for s, want := range map[string]Format{
		"auto": FormatAuto, "edgelist": FormatEdgeList, "gcsr": FormatGCSR, "GCSR": FormatGCSR,
	} {
		got, err := ParseFormat(s)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseFormat("protobuf"); err == nil {
		t.Error("ParseFormat accepted an unknown format")
	}
}

func TestHubIndex(t *testing.T) {
	// Star with 200 leaves: center degree 199 >= hubDegreeFloor, so the
	// center owns a bitset row and probes against it answer in O(1).
	g := starGraph(200)
	if !g.IsHub(0) {
		t.Fatal("star center is not a hub")
	}
	for v := int32(1); v < 200; v++ {
		if g.IsHub(v) {
			t.Fatalf("leaf %d is a hub", v)
		}
		if !g.HasEdge(0, v) || !g.HasEdge(v, 0) {
			t.Fatalf("missing star edge (0,%d)", v)
		}
	}
	if g.HasEdge(1, 2) || g.HasEdge(199, 2) {
		t.Error("leaves are not adjacent")
	}
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
	// A graph below the floor must not build the index.
	small := FromEdgeList(4, [][2]int32{{0, 1}, {1, 2}})
	if small.IsHub(1) {
		t.Error("low-degree node became a hub")
	}
}

// HasEdge over hubs must agree with the binary-search answer on a denser
// random graph where several nodes clear the hub threshold.
func TestHubHasEdgeAgreesWithSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := NewBuilder(150)
	// A few heavy nodes plus random background edges.
	for c := int32(0); c < 3; c++ {
		for v := int32(0); v < 150; v++ {
			if rng.Intn(10) < 7 {
				b.AddEdge(c, v)
			}
		}
	}
	for i := 0; i < 600; i++ {
		b.AddEdge(int32(rng.Intn(150)), int32(rng.Intn(150)))
	}
	g := b.Build()
	hubs := 0
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if g.IsHub(v) {
			hubs++
		}
	}
	if hubs == 0 {
		t.Fatal("expected at least one hub")
	}
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		ns := g.Neighbors(u)
		for v := int32(0); v < int32(g.NumNodes()); v++ {
			want := false
			for _, x := range ns {
				if x == v {
					want = true
					break
				}
			}
			if got := g.HasEdge(u, v); got != want {
				t.Fatalf("HasEdge(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
}

func TestGallopingCommonNeighbors(t *testing.T) {
	// Node 0 adjacent to everything (long list), node 1 adjacent to a few
	// scattered nodes (short list) — the skew triggers galloping.
	n := 2000
	b := NewBuilder(n)
	for v := int32(1); v < int32(n); v++ {
		b.AddEdge(0, v)
	}
	sparse := []int32{0, 3, 77, 500, 501, 1500, 1999}
	for _, v := range sparse {
		b.AddEdge(1, v)
	}
	g := b.Build()
	// Common neighbors of 0 and 1: the sparse list minus 0 itself (0 is not
	// its own neighbor) — {3, 77, 500, 501, 1500, 1999}.
	want := []int32{3, 77, 500, 501, 1500, 1999}
	if got := g.CommonNeighbors(0, 1); got != len(want) {
		t.Fatalf("CommonNeighbors = %d, want %d", got, len(want))
	}
	got := g.CommonNeighborsInto(nil, 0, 1)
	if len(got) != len(want) {
		t.Fatalf("CommonNeighborsInto = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CommonNeighborsInto = %v, want %v", got, want)
		}
	}
	// Symmetric argument order must agree.
	if g.CommonNeighbors(1, 0) != len(want) {
		t.Error("CommonNeighbors not symmetric")
	}
}

// Property: galloping and linear-merge intersection agree on random sorted
// lists of skewed lengths.
func TestGallopIntersectionProperty(t *testing.T) {
	f := func(rawA []uint16, rawB []uint16, extra uint8) bool {
		n := 4096
		b := NewBuilder(n)
		for _, x := range rawA {
			b.AddEdge(0, int32(x%uint16(n-2))+2)
		}
		for _, x := range rawB {
			b.AddEdge(1, int32(x%uint16(n-2))+2)
		}
		// Widen the skew with a block of consecutive neighbors of node 0.
		for v := int32(0); v < int32(extra); v++ {
			b.AddEdge(0, 2+v)
		}
		g := b.Build()
		a, bb := g.Neighbors(0), g.Neighbors(1)
		want := 0
		i, j := 0, 0
		for i < len(a) && j < len(bb) {
			switch {
			case a[i] < bb[j]:
				i++
			case a[i] > bb[j]:
				j++
			default:
				want++
				i++
				j++
			}
		}
		return g.CommonNeighbors(0, 1) == want && g.CommonNeighbors(1, 0) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// The arc→source cache must reproduce the binary-search answer for every arc.
func TestArcIndexMatchesSearch(t *testing.T) {
	g := randomTestGraph(rand.New(rand.NewSource(8)), 120, 700)
	for a := int64(0); a < 2*g.NumEdges(); a++ {
		// Reference: the search the lookup table replaced.
		want := int32(0)
		for int64(g.off[want+1]) <= a {
			want++
		}
		if got := g.arcSource(a); got != want {
			t.Fatalf("arcSource(%d) = %d, want %d", a, got, want)
		}
	}
}

// HasEdge and Neighbors must stay allocation-free on both construction
// paths — they sit on the walker's window-classification hot loop.
func TestProbesAllocationFree(t *testing.T) {
	built := starGraph(300)
	path := filepath.Join(t.TempDir(), "g.gcsr")
	if err := Save(path, built); err != nil {
		t.Fatal(err)
	}
	mapped, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	for name, g := range map[string]*Graph{"built": built, "mapped": mapped} {
		g := g
		if n := testing.AllocsPerRun(100, func() {
			g.HasEdge(0, 7)    // hub path
			g.HasEdge(7, 9)    // search path
			_ = g.Neighbors(3) //
		}); n != 0 {
			t.Errorf("%s: HasEdge/Neighbors allocate %.1f allocs/op", name, n)
		}
		if n := testing.AllocsPerRun(100, func() {
			g.CommonNeighbors(0, 7)
		}); n != 0 {
			t.Errorf("%s: CommonNeighbors allocates %.1f allocs/op", name, n)
		}
	}
}

func TestLargestComponentConnectedFastPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.gcsr")
	if err := Save(path, starGraph(50)); err != nil {
		t.Fatal(err)
	}
	mapped, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	lcc, toOld := LargestComponent(mapped)
	if lcc != mapped {
		t.Error("connected graph was rebuilt instead of returned as-is")
	}
	if len(toOld) != 50 {
		t.Fatalf("identity mapping has %d entries", len(toOld))
	}
	for v, old := range toOld {
		if int32(v) != old {
			t.Fatalf("toOld[%d] = %d, want identity", v, old)
		}
	}
}
