package core

import (
	"math"
	"testing"

	"repro/internal/exact"
	"repro/internal/gen"
)

func TestSampleSizeBound(t *testing.T) {
	in := BoundInput{Eps: 0.1, Delta: 0.05, W: 1000, Lambda: 10, Tau: 50}
	n := SampleSizeBound(in)
	want := (1000.0 / 10.0) * 50 / 0.01 * math.Log(1/0.05)
	if math.Abs(n-want) > 1e-6*want {
		t.Errorf("bound = %f, want %f", n, want)
	}
	// Scaling: halving eps quadruples the bound.
	in2 := in
	in2.Eps = 0.05
	if r := SampleSizeBound(in2) / n; math.Abs(r-4) > 1e-9 {
		t.Errorf("eps scaling ratio %f, want 4", r)
	}
	// Larger Lambda (more common graphlet) shrinks the bound.
	in3 := in
	in3.Lambda = 100
	if SampleSizeBound(in3) >= n {
		t.Error("larger Lambda should shrink the bound")
	}
	// Explicit xi and phi.
	in4 := in
	in4.Xi = 2
	in4.PhiPi = math.E * 0.05 // log(phi/delta) = 1
	got := SampleSizeBound(in4)
	want4 := 2 * (1000.0 / 10.0) * 50 / 0.01 * 1
	if math.Abs(got-want4) > 1e-6*want4 {
		t.Errorf("bound with xi/phi = %f, want %f", got, want4)
	}
}

func TestWeightedConcentration(t *testing.T) {
	g := gen.HolmeKim(60, 3, 0.7, 3)
	counts := exact.CountESU(g, 4)
	f := make([]float64, len(counts))
	for i, c := range counts {
		f[i] = float64(c)
	}
	plain := exact.Concentrations(counts)
	for _, d := range []int{2, 3} {
		w := WeightedConcentration(4, d, f)
		sum := 0.0
		for _, x := range w {
			if x < 0 {
				t.Fatalf("d=%d: negative weighted concentration %v", d, w)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("d=%d: weighted concentration sums to %f", d, sum)
		}
		// The paper's point: rare dense graphlets (clique) gain weight
		// relative to their plain concentration.
		if counts[5] > 0 && w[5] <= plain[5] {
			t.Errorf("d=%d: clique weighted %.6f not lifted above plain %.6f", d, w[5], plain[5])
		}
	}
	// d=1 zeroes the star (alpha=0).
	w1 := WeightedConcentration(4, 1, f)
	if w1[1] != 0 {
		t.Errorf("d=1 star weighted concentration = %f, want 0", w1[1])
	}
}

func TestWeightedConcentrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	WeightedConcentration(4, 2, []float64{1, 2})
}

func TestTwoRPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for d=3")
		}
	}()
	TwoR(gen.Cycle(5), 3)
}
