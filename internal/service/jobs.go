package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/service/journal"
	"repro/internal/stats"
)

// Spec is a complete description of one estimation request. Projected onto
// its comparable key (see key), it doubles as the result-cache and
// coalescing key: two submissions with equal keys are answered by one run,
// which is exact (not approximate) because the engine is deterministic in
// (Config, Seed).
type Spec struct {
	Graph string `json:"graph"`
	K     int    `json:"k"`
	// Sizes requests a multi-size job: one shared walk whose step budget is
	// paid once, yielding one estimate per listed size (each in the server's
	// allowlist, sorted and deduplicated at admission). Mutually exclusive
	// with K. On completion the result cache is fan-out-filled with one
	// entry per size, so later single-size requests for any covered k are
	// warm hits.
	Sizes   []int `json:"sizes,omitempty"`
	D       int   `json:"d"`
	CSS     bool  `json:"css"`
	NB      bool  `json:"nb"`
	Steps   int   `json:"steps"`
	Walkers int   `json:"walkers"`
	Seed    int64 `json:"seed"`
	// Priority selects the scheduling class ("interactive", "batch" or
	// "background"; empty means batch). It deliberately does not affect the
	// result — only when it is computed — so it is excluded from the cache
	// and coalescing key.
	Priority Priority `json:"priority,omitempty"`
	// Nodes requests distributed execution: the job's walkers fan out over
	// up to Nodes machines of the configured fleet (Options.Peers). 0 or 1
	// runs locally. Like Priority it cannot affect the result bytes — a
	// distributed run is byte-identical to a local one — so it is excluded
	// from the cache and coalescing key: a 3-node run warms the cache for
	// local re-asks and vice versa.
	Nodes int `json:"nodes,omitempty"`
}

// specKey is the comparable projection of a Spec: the scheduling class is
// stripped and the size list is canonicalized to a string, leaving exactly
// the fields that determine the result bytes. All cache and single-flight
// lookups go through it, so an interactive re-ask of a background job's
// spec is a cache hit, not a second run.
type specKey struct {
	graph   string
	k       int
	sizes   string // canonical "3,4,5" for multi-size specs, "" otherwise
	d       int
	css     bool
	nb      bool
	steps   int
	walkers int
	seed    int64
}

// key projects the spec onto its comparable cache/coalescing key.
func (s Spec) key() specKey {
	return specKey{
		graph: s.Graph, k: s.K, sizes: sizesKey(s.Sizes),
		d: s.D, css: s.CSS, nb: s.NB,
		steps: s.Steps, walkers: s.Walkers, seed: s.Seed,
	}
}

// sizesKey canonicalizes a (already sorted, deduplicated) size list.
func sizesKey(sizes []int) string {
	if len(sizes) == 0 {
		return ""
	}
	var b strings.Builder
	for i, k := range sizes {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(k))
	}
	return b.String()
}

// multi reports whether the spec requests a shared-walk multi-size job.
func (s Spec) multi() bool { return len(s.Sizes) > 0 }

// config maps a single-size spec onto the engine configuration.
func (s Spec) config() core.Config {
	return core.Config{
		K: s.K, D: s.D, CSS: s.CSS, NB: s.NB,
		Walkers: s.Walkers, Seed: s.Seed,
	}
}

// multiConfig maps a multi-size spec onto the joint-estimator configuration.
func (s Spec) multiConfig() core.MultiConfig {
	return core.MultiConfig{
		Sizes: s.Sizes, D: s.D, CSS: s.CSS, NB: s.NB,
		Walkers: s.Walkers, Seed: s.Seed,
	}
}

// sizeSpec is the single-size spec this multi-size spec covers for size k —
// the cache key its fan-out entry lives under. Sound because the engine's
// shared-walk per-size results are byte-identical to independent
// single-size runs of the same (Config, Seed).
func (s Spec) sizeSpec(k int) Spec {
	s.K, s.Sizes = k, nil
	return s
}

// State is a job's lifecycle phase.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// terminal reports whether the state is final.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Progress is a live snapshot of a running job, updated at the ensemble's
// checkpoint barriers.
type Progress struct {
	Steps         int       `json:"steps"`
	Total         int       `json:"total"`
	Concentration []float64 `json:"concentration,omitempty"`
	// Concentrations is the multi-size counterpart of Concentration: one
	// live concentration vector per requested size, keyed by k.
	Concentrations map[int][]float64 `json:"concentrations,omitempty"`
	// ResumedSteps is the number of pre-crash steps this job kept by
	// restoring a journaled checkpoint snapshot instead of restarting from
	// step 0 (0 for jobs that never crashed — or whose snapshot could not be
	// restored, in which case they restart from scratch).
	ResumedSteps int `json:"resumed_steps,omitempty"`
}

// job is the Manager-internal mutable record; all fields are guarded by
// Manager.mu. Clients see JobView snapshots.
type job struct {
	id        string
	spec      Spec
	traceID   string // request ID of the submission that created the job
	state     State
	progress  Progress
	result    *core.Result
	// multiResult holds a multi-size job's per-size results (result stays
	// nil); exactly one of the two is set on a completed job.
	multiResult *core.MultiResult
	errMsg      string
	cached    bool
	coalesced int // number of submissions answered by this run
	created   time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc
	done      chan struct{}   // closed on reaching a terminal state
	subs      []chan JobEvent // live event streams (SSE); closed on finish

	// resumeSnap/resumeSteps carry the latest journaled checkpoint snapshot
	// of a recovery-re-queued job: the worker restores the engine from it at
	// dispatch, and the scheduler charges only the remaining budget.
	resumeSnap  []byte
	resumeSteps int
}

// JobView is the immutable client-facing snapshot of a job.
type JobView struct {
	ID   string `json:"id"`
	Spec Spec   `json:"spec"`
	// RequestID traces the job back to the HTTP request that created it
	// (the X-Request-Id the front door assigned or accepted). It rides
	// every poll response and SSE event for the job, so one grep over the
	// access logs follows a request end to end.
	RequestID string     `json:"request_id,omitempty"`
	State    State      `json:"state"`
	Progress Progress   `json:"progress"`
	Result   *JobResult `json:"result,omitempty"`
	// Results renders a completed multi-size job: one JobResult per
	// requested size, keyed by k (Result stays empty for those jobs).
	Results map[int]*JobResult `json:"results,omitempty"`
	Error   string             `json:"error,omitempty"`
	// Cached marks a job answered from the result cache without a run.
	Cached bool `json:"cached"`
	// Coalesced counts submissions sharing this run (1 = no sharing).
	Coalesced int `json:"coalesced"`
	// CreatedAt/StartedAt/FinishedAt trace the job through the queue; the
	// gap between the first two is its queue wait (the scheduler's
	// fairness metric).
	CreatedAt  time.Time `json:"created_at,omitzero"`
	StartedAt  time.Time `json:"started_at,omitzero"`
	FinishedAt time.Time `json:"finished_at,omitzero"`
}

// JobEvent is one element of a job's event stream (the SSE endpoint and
// any in-process subscriber): a full snapshot tagged with why it was
// emitted.
type JobEvent struct {
	// Type is "snapshot" (subscription opening), "checkpoint" (progress
	// update), or the terminal state ("done", "failed", "canceled").
	Type string  `json:"type"`
	Job  JobView `json:"job"`
}

// JobResult renders a completed estimation.
type JobResult struct {
	Method        string    `json:"method"`
	Steps         int       `json:"steps"`
	ValidSamples  int       `json:"valid_samples"`
	Concentration []float64 `json:"concentration"`
	Weights       []float64 `json:"weights"`
}

// Stats aggregates service counters for observability and tests. Every
// count is read back from the obs metrics registry also served at
// GET /metrics, so the JSON and Prometheus views can never disagree.
type Stats struct {
	Jobs        int `json:"jobs"`
	Runs        int `json:"runs"` // estimations actually executed
	// MultiRuns counts the subset of Runs that were shared-walk multi-size
	// ensembles (each paying one step budget for several sizes).
	MultiRuns   int `json:"multi_runs,omitempty"`
	CacheHits   int `json:"cache_hits"`   // submissions answered from the LRU
	CacheSize   int `json:"cache_size"`   // entries currently cached
	Coalesced   int `json:"coalesced"`    // submissions merged into an in-flight run
	Workers     int `json:"workers"`      // worker-pool size
	MaxWalkers  int `json:"max_walkers"`  // per-job walker cap
	QueueDepth  int `json:"queue_depth"`  // jobs waiting for a worker
	ActiveJobs  int `json:"active_jobs"`  // jobs currently running
	GraphsCount int `json:"graphs_count"` // registered graphs

	// QueueByClass breaks the backlog down by priority class.
	QueueByClass map[string]int `json:"queue_by_class,omitempty"`
	// QueueWait reports p50/p95/p99 queue wait in seconds per priority
	// class over a bounded window of recent dispatches (raw samples through
	// stats.Quantile; the /metrics histograms carry the full distribution).
	QueueWait map[string]QuantileSummary `json:"queue_wait_seconds,omitempty"`
	// RecoveredJobs counts jobs re-queued by journal replay at startup.
	RecoveredJobs int `json:"recovered_jobs"`
	// ResumableJobs counts recovered jobs that carried a checkpoint snapshot
	// (re-queued mid-budget rather than from step 0).
	ResumableJobs int `json:"resumable_jobs,omitempty"`
	// ResumedSteps is the cumulative number of walk steps saved by restoring
	// checkpoint snapshots instead of restarting interrupted jobs.
	ResumedSteps int64 `json:"resumed_steps"`
	// WarmedResults counts cache entries restored from the journal.
	WarmedResults int `json:"warmed_results"`
	// JournalSegments is the on-disk segment count (0 without -data-dir).
	JournalSegments int `json:"journal_segments,omitempty"`
	// JournalErrors counts append/compact failures (the daemon keeps
	// serving from memory; nonzero here means durability is degraded).
	JournalErrors int `json:"journal_errors,omitempty"`
}

// Options tunes the Manager. The zero value gets production defaults.
type Options struct {
	// Workers bounds concurrent jobs. 0 sizes the pool with the shared
	// trial-pool rule: stats.PoolWorkers(MaxWalkers), so job parallelism ×
	// walkers stays at GOMAXPROCS.
	Workers int
	// MaxWalkers caps Spec.Walkers (and feeds the default pool sizing).
	// 0 means 8.
	MaxWalkers int
	// MultiSizes is the admission allowlist for multi-size jobs: every entry
	// of Spec.Sizes must appear in it. nil means 3, 4, 5 (every size the
	// engine supports); an explicit empty-but-non-nil slice disables
	// multi-size submissions entirely.
	MultiSizes []int
	// CacheSize is the LRU capacity in results. 0 means 256; negative
	// disables caching.
	CacheSize int
	// SnapshotEvery is the checkpoint spacing in windows for progress
	// snapshots and journal checkpoint records. 0 derives ~64 checkpoints
	// per job (min 250 windows apart).
	SnapshotEvery int
	// QueueCap bounds the admission backlog across all priority classes;
	// Submit fails once it is full. 0 means 1024.
	QueueCap int
	// MaxJobs bounds retained job records: beyond it, the oldest terminal
	// jobs (completed runs, instant cache hits) are evicted from the table,
	// so a long-running daemon's memory does not grow with request count.
	// Evicted job IDs answer 404 on later polls. 0 means 4096.
	MaxJobs int
	// DataDir enables durability: the job journal lives under
	// DataDir/journal, is replayed on startup (rebuilding the job table,
	// warming the result cache, re-queuing interrupted jobs), and records
	// every lifecycle transition from then on. Empty keeps the pre-PR-4
	// volatile behavior.
	DataDir string
	// SegmentBytes is the journal's segment-rotation threshold (0 = 4 MiB).
	SegmentBytes int64
	// Fsync forces every journal append to disk. Off by default: appends
	// survive a process crash either way; only power loss can drop a tail,
	// which reopen truncates cleanly.
	Fsync bool
	// CompactSegments triggers journal compaction once the log spans more
	// than this many segments. 0 means 8.
	CompactSegments int
	// NewClient builds the access client for a job's graph. nil means the
	// in-memory access.NewGraphClient. Tests and latency modeling inject
	// wrappers (access.NewDelayed, access.NewCounting) here.
	NewClient func(g *graph.Graph) access.Client
	// Peers lists worker base URLs for distributed execution. Jobs whose
	// spec sets Nodes > 1 fan their walker ensemble over the fleet
	// (internal/dist); empty disables distribution and such jobs run
	// locally. The scheduler charges the coordinator one worker slot for
	// the whole job regardless of fan-out.
	Peers []string
	// DistHTTPClient issues the partition dispatches (must not set an
	// overall Timeout; streams last the whole job). Nil means a fresh
	// client. Tests inject httptest clients here.
	DistHTTPClient *http.Client
	// DistRetries / DistBackoff / DistStallTimeout tune per-partition
	// failover (zero values take the dist package defaults: 3 retries,
	// 250ms base backoff, 2m stall timeout).
	DistRetries      int
	DistBackoff      time.Duration
	DistStallTimeout time.Duration
	// Metrics is the observability registry the manager records into (and
	// GET /metrics renders). nil creates a private registry — Stats is
	// derived from the metric handles either way.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	// Non-positive knobs take the default rather than producing a pool with
	// zero workers (which would strand every job in "queued" forever) or a
	// panic on a negative channel capacity.
	if o.MaxWalkers <= 0 {
		o.MaxWalkers = 8
	}
	if o.Workers <= 0 {
		o.Workers = stats.PoolWorkers(o.MaxWalkers)
	}
	if o.MultiSizes == nil {
		o.MultiSizes = []int{3, 4, 5}
	}
	if o.CacheSize == 0 {
		o.CacheSize = 256
	}
	if o.CacheSize < 0 {
		o.CacheSize = 0
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 1024
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 4096
	}
	if o.CompactSegments <= 0 {
		o.CompactSegments = 8
	}
	if o.NewClient == nil {
		o.NewClient = func(g *graph.Graph) access.Client { return access.NewGraphClient(g) }
	}
	return o
}

// Manager owns the job lifecycle: admission, coalescing, caching, the
// priority scheduler and its bounded worker pool, progress snapshots and
// event streams, journaling, and cancellation. All methods are safe for
// concurrent use.
type Manager struct {
	reg  *Registry
	opts Options

	// met holds every counter the manager keeps; /v1/stats and /metrics
	// are both views of it (metrics.go).
	met *serviceMetrics

	mu        sync.Mutex
	jobs      map[string]*job
	order     []string      // submission order, for List
	inflight  map[specKey]*job // non-terminal job per spec key (single flight)
	cache     *resultCache
	jnl       *journal.Log
	sched     *scheduler
	waits     map[Priority]*waitReservoir // recent queue waits per class
	nextID    int
	replaying bool
	closed    bool

	// jq is the ordered append queue between state transitions (enqueued
	// under mu) and the journal writer goroutine (asyncjournal.go).
	jq    *appendQueue
	jnlWg sync.WaitGroup

	wg sync.WaitGroup
}

// NewManager opens the journal (when Options.DataDir is set), replays it to
// recover pre-crash state, starts the worker pool, and returns the manager.
// Call Close to stop it.
func NewManager(reg *Registry, opts Options) (*Manager, error) {
	opts = opts.withDefaults()
	met := newServiceMetrics(opts.Metrics, reg)
	m := &Manager{
		reg:      reg,
		opts:     opts,
		met:      met,
		jobs:     make(map[string]*job),
		inflight: make(map[specKey]*job),
		cache:    newResultCache(opts.CacheSize, met.cacheEvictions),
		sched:    newScheduler(opts.QueueCap, met.queueDepth),
		waits:    make(map[Priority]*waitReservoir),
		jq:       newAppendQueue(),
	}
	m.installCollector()
	if opts.DataDir != "" {
		jnl, err := journal.Open(filepath.Join(opts.DataDir, "journal"), journal.Options{
			SegmentBytes: opts.SegmentBytes,
			Fsync:        opts.Fsync,
			Metrics:      met.journal,
		})
		if err != nil {
			return nil, err
		}
		m.jnl = jnl
		if err := m.recover(); err != nil {
			jnl.Close()
			return nil, err
		}
		m.jnlWg.Add(1)
		go m.journalWriter()
	}
	for i := 0; i < opts.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// Close drains the pool: running jobs are cancelled, queued jobs are marked
// canceled, workers exit, and the journal is synced shut.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	for _, j := range m.sched.drain() {
		delete(m.inflight, j.spec.key())
		m.finishLocked(j, StateCanceled, nil, context.Canceled)
	}
	for _, j := range m.jobs {
		if j.state == StateRunning && j.cancel != nil {
			j.cancel()
		}
	}
	m.mu.Unlock()
	m.wg.Wait()
	if m.jnl != nil {
		// Workers are gone; drain whatever they enqueued, then close shop.
		m.jq.close()
		m.jnlWg.Wait()
		m.jnl.Close()
	}
}

// validate admission-checks a spec (priority already normalized).
func (m *Manager) validate(spec Spec) error {
	if _, ok := m.reg.Get(spec.Graph); !ok {
		return fmt.Errorf("service: unknown graph %q", spec.Graph)
	}
	if spec.Steps <= 0 {
		return fmt.Errorf("service: non-positive step budget %d", spec.Steps)
	}
	if spec.Walkers > m.opts.MaxWalkers {
		return fmt.Errorf("service: walkers %d exceeds server cap %d", spec.Walkers, m.opts.MaxWalkers)
	}
	if spec.Nodes < 0 || spec.Nodes > maxFanout {
		return fmt.Errorf("service: nodes %d out of range 0..%d", spec.Nodes, maxFanout)
	}
	if spec.multi() {
		if spec.K != 0 {
			return fmt.Errorf("service: spec sets both k and sizes; they are mutually exclusive")
		}
		for _, k := range spec.Sizes {
			if !slices.Contains(m.opts.MultiSizes, k) {
				return fmt.Errorf("service: size %d is not in the server's allowed sizes %v", k, m.opts.MultiSizes)
			}
		}
		return spec.multiConfig().Validate()
	}
	return spec.config().Validate()
}

// Submit admits a spec and returns the job answering it. The returned view
// may be a terminal cache hit (state "done", Cached), an in-flight job other
// submitters already share (Coalesced > 1), or a fresh queued job awaiting
// dispatch in its priority class.
func (m *Manager) Submit(spec Spec) (JobView, error) {
	return m.SubmitCtx(context.Background(), spec)
}

// SubmitCtx is Submit carrying the request context: the front door's
// request ID (obs.WithRequestID) is stamped into the job it creates, so
// poll responses and SSE events trace back to the submitting request.
func (m *Manager) SubmitCtx(ctx context.Context, spec Spec) (JobView, error) {
	// Normalize before keying: the engine treats Walkers 0 and 1 identically
	// (one walker, unchanged seed stream), so they must hit the same cache
	// and single-flight entries; likewise the empty priority is batch. The
	// size list is order-insensitive and a one-size multi job is the same
	// run as the plain single-size job (the shared-walk per-size results are
	// byte-identical to independent runs), so both collapse to canonical
	// forms that share cache and coalescing entries.
	if spec.Walkers == 0 {
		spec.Walkers = 1
	}
	if spec.multi() {
		spec.Sizes = slices.Compact(slices.Sorted(slices.Values(spec.Sizes)))
		// The collapse is gated on K == 0 so a spec illegally setting both
		// fields still reaches validate intact and is rejected there.
		if len(spec.Sizes) == 1 && spec.K == 0 {
			spec.K, spec.Sizes = spec.Sizes[0], nil
		}
	}
	p, err := ParsePriority(string(spec.Priority))
	if err != nil {
		return JobView{}, err
	}
	spec.Priority = p
	if err := m.validate(spec); err != nil {
		return JobView{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return JobView{}, fmt.Errorf("service: manager closed")
	}
	key := spec.key()
	m.met.jobs.With("submitted").Inc()
	// Cache hit: a completed identical run answers instantly via a fresh
	// (already terminal) job record. A multi-size submission hits when every
	// one of its per-size entries is warm — its own earlier fan-out, or any
	// equivalent single-size runs — and is reassembled from them.
	if res, multiRes, ok := m.cacheGetLocked(spec, key); ok {
		m.met.cacheHits.Inc()
		j := m.newJobLocked(spec)
		j.traceID = obs.RequestIDFrom(ctx)
		j.cached = true
		j.coalesced = 1
		j.multiResult = multiRes
		m.journalAppendLocked(journal.TypeSubmitted, j.id,
			recSubmitted{Spec: spec, Cached: true, GraphMeta: m.graphMeta(spec.Graph), RequestID: j.traceID})
		m.finishLocked(j, StateDone, res, nil)
		return j.view(), nil
	}
	m.met.cacheMisses.Inc()
	// Single flight: an identical spec already queued or running absorbs
	// this submission. A more urgent submitter promotes a still-queued job
	// to its class — everyone coalesced onto it benefits.
	if j, ok := m.inflight[key]; ok {
		j.coalesced++
		m.met.coalesced.Inc()
		if j.state == StateQueued && priorityRank(spec.Priority) > priorityRank(j.spec.Priority) {
			if m.sched.promote(j, spec.Priority) {
				j.spec.Priority = spec.Priority
				// Re-journal the admission with the effective class: replay
				// applies submitted records last-wins, so a crash after the
				// promotion re-queues the job at its promoted priority
				// instead of silently demoting it.
				m.journalAppendLocked(journal.TypeSubmitted, j.id,
					recSubmitted{Spec: j.spec, GraphMeta: m.graphMeta(j.spec.Graph), RequestID: j.traceID})
			}
		}
		return j.view(), nil
	}
	j := m.newJobLocked(spec)
	j.traceID = obs.RequestIDFrom(ctx)
	j.coalesced = 1
	if err := m.sched.enqueue(j); err != nil {
		delete(m.jobs, j.id)
		m.order = m.order[:len(m.order)-1]
		return JobView{}, err
	}
	m.inflight[key] = j
	m.journalAppendLocked(journal.TypeSubmitted, j.id,
		recSubmitted{Spec: spec, GraphMeta: m.graphMeta(spec.Graph), RequestID: j.traceID})
	return j.view(), nil
}

// cacheGetLocked answers a submission from the result cache: a single-size
// spec by direct lookup, a multi-size spec by reassembling all of its
// per-size entries (every size must be warm; entries left by single-size
// runs are interchangeable with fan-out entries because the shared-walk
// per-size results are byte-identical to independent runs). Caller holds
// m.mu.
func (m *Manager) cacheGetLocked(spec Spec, key specKey) (*core.Result, *core.MultiResult, bool) {
	if !spec.multi() {
		res, ok := m.cache.get(key)
		return res, nil, ok
	}
	results := make(map[int]*core.Result, len(spec.Sizes))
	for _, k := range spec.Sizes {
		res, ok := m.cache.get(spec.sizeSpec(k).key())
		if !ok {
			return nil, nil, false
		}
		results[k] = res
	}
	return nil, &core.MultiResult{Steps: results[spec.Sizes[0]].Steps, Results: results}, true
}

// graphMeta fingerprints the currently registered graph for the journal
// (nil when the name is gone, which recovery treats as unverifiable).
func (m *Manager) graphMeta(name string) *GraphInfo {
	info, ok := m.reg.Info(name)
	if !ok {
		return nil
	}
	return &info
}

// newJobLocked allocates and indexes a queued job. Caller holds m.mu.
func (m *Manager) newJobLocked(spec Spec) *job {
	m.nextID++
	j := &job{
		id:       fmt.Sprintf("j-%d", m.nextID),
		spec:     spec,
		state:    StateQueued,
		progress: Progress{Total: spec.Steps},
		created:  time.Now(),
		done:     make(chan struct{}),
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	return j
}

// finishLocked moves a job to a terminal state, journals the transition,
// notifies its event streams, and prunes old history. Caller holds m.mu.
func (m *Manager) finishLocked(j *job, state State, res *core.Result, err error) {
	j.state = state
	j.finished = time.Now()
	m.met.jobs.With(string(state)).Inc()
	if !j.started.IsZero() {
		m.met.runDuration.With(string(j.spec.Priority)).
			Observe(j.finished.Sub(j.started).Seconds())
	}
	if res != nil {
		j.result = res
		j.progress.Steps = res.Steps
		j.progress.Concentration = res.Concentration()
	}
	if j.multiResult != nil {
		// Multi-size outcomes (including a cancelled run's partial result,
		// which settleMulti stashed before calling here) report per-size
		// concentrations.
		j.progress.Steps = j.multiResult.Steps
		j.progress.Concentrations = j.multiResult.Concentrations()
	}
	if err != nil {
		j.errMsg = err.Error()
	}
	j.resumeSnap, j.resumeSteps = nil, 0 // snapshots die with the run
	m.journalTerminalLocked(j)
	// Terminal delivery is guaranteed even to slow subscribers: if a
	// buffer is full, the oldest checkpoint is dropped to make room — all
	// sends happen under m.mu, so the freed slot cannot be stolen. (The
	// job may be pruned from the table right below, so the handler's
	// fetch-final-state fallback cannot be relied on here.)
	if len(j.subs) > 0 {
		ev := JobEvent{Type: string(state), Job: j.view()}
		for _, ch := range j.subs {
			select {
			case ch <- ev:
			default:
				select {
				case <-ch:
				default:
				}
				select {
				case ch <- ev:
				default:
				}
			}
		}
	}
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	close(j.done)
	m.pruneLocked()
}

// notifySubsLocked pushes an event to every subscriber of j, dropping it
// for subscribers whose buffers are full (a slow SSE client misses
// intermediate checkpoints; terminal state delivery is guaranteed by the
// channel close plus a final Get). Caller holds m.mu.
func (m *Manager) notifySubsLocked(j *job, typ string) {
	if len(j.subs) == 0 {
		return
	}
	ev := JobEvent{Type: typ, Job: j.view()}
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// Subscribe opens an event stream for a job: the returned channel yields an
// initial "snapshot" event, then "checkpoint" events as the run progresses,
// and closes after the terminal event. The unsubscribe function detaches a
// no-longer-interested consumer (safe to call after the channel closed).
func (m *Manager) Subscribe(id string) (<-chan JobEvent, func(), error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, nil, fmt.Errorf("service: unknown job %q", id)
	}
	ch := make(chan JobEvent, 16)
	ch <- JobEvent{Type: "snapshot", Job: j.view()}
	if j.state.terminal() {
		close(ch)
		return ch, func() {}, nil
	}
	j.subs = append(j.subs, ch)
	unsub := func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		for i, sub := range j.subs {
			if sub == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				return
			}
		}
	}
	return ch, unsub, nil
}

// pruneLocked evicts the oldest terminal jobs while the table exceeds
// MaxJobs, bounding daemon memory under sustained traffic (every
// submission — including instant cache hits — allocates a record). Live
// jobs are never evicted. Caller holds m.mu.
func (m *Manager) pruneLocked() {
	for i := 0; i < len(m.order) && len(m.jobs) > m.opts.MaxJobs; {
		id := m.order[i]
		if !m.jobs[id].state.terminal() {
			i++
			continue
		}
		delete(m.jobs, id)
		m.order = append(m.order[:i], m.order[i+1:]...)
	}
}

// worker pulls dispatched jobs from the scheduler until Close.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		j, ok := m.sched.next()
		if !ok {
			return
		}
		m.runJob(j)
	}
}

// snapshotEvery derives the checkpoint spacing for a budget.
func (m *Manager) snapshotEvery(steps int) int {
	if m.opts.SnapshotEvery > 0 {
		return m.opts.SnapshotEvery
	}
	every := steps / 64
	if every < 250 {
		every = 250
	}
	return every
}

// runJob executes one dispatched job end to end.
func (m *Manager) runJob(j *job) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	m.mu.Lock()
	if j.state != StateQueued { // cancelled between dispatch and here
		m.mu.Unlock()
		return
	}
	if m.closed { // dispatched during shutdown
		delete(m.inflight, j.spec.key())
		m.finishLocked(j, StateCanceled, nil, context.Canceled)
		m.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	m.met.jobsActive.Inc()
	m.met.runs.Inc()
	m.recordDispatchLocked(j)
	resumeSnap, resumeSteps := j.resumeSnap, j.resumeSteps
	var started any
	if resumeSteps > 0 {
		started = recStarted{ResumedSteps: resumeSteps}
	}
	m.journalAppendLocked(journal.TypeStarted, j.id, started)
	m.mu.Unlock()

	g, ok := m.reg.Get(j.spec.Graph)
	if !ok {
		// The graph was removed between submit and dispatch: fail cleanly
		// (a terminal "failed" state with an actionable message) instead of
		// surfacing whatever a nil graph would have produced mid-run.
		m.settle(j, nil, fmt.Errorf("service: graph %q was removed after this job was submitted", j.spec.Graph))
		return
	}
	if j.spec.Nodes > 1 && len(m.opts.Peers) > 0 {
		// Distributed fan-out: the coordinator occupies this worker slot for
		// the job's duration; the walk itself runs on the fleet (dist.go).
		m.runDistributed(ctx, j, g, resumeSnap)
		return
	}
	if j.spec.multi() {
		m.runMulti(ctx, j, g, resumeSnap)
		return
	}
	est, err := core.NewEstimator(m.opts.NewClient(g), j.spec.config())
	if err != nil {
		m.settle(j, nil, err)
		return
	}
	// Restore a recovered checkpoint snapshot, outside m.mu: the RNG
	// fast-forward is O(pre-crash steps). Any failure — a corrupt or
	// version-incompatible snapshot, a config mismatch — degrades to the
	// PR-4 behavior: discard the (possibly half-restored) estimator and run
	// the whole budget from scratch. Resume is an optimization; it must
	// never be able to fail a job.
	resumed := 0
	if len(resumeSnap) > 0 {
		if st, derr := core.DecodeEnsembleState(resumeSnap); derr == nil {
			if rerr := est.Restore(st); rerr == nil {
				resumed = st.WindowsDone
			} else {
				est, err = core.NewEstimator(m.opts.NewClient(g), j.spec.config())
				if err != nil {
					m.settle(j, nil, err)
					return
				}
			}
		}
	}
	m.mu.Lock()
	j.progress.ResumedSteps = resumed
	if resumed > 0 {
		j.progress.Steps = resumed
		m.met.walkResumed.Add(int64(resumed))
	} else if len(resumeSnap) > 0 {
		// Restore failed: the replayed pre-crash progress no longer
		// describes this (from-scratch) run.
		j.progress = Progress{Total: j.spec.Steps}
	}
	m.mu.Unlock()
	// Walk-engine metrics are recorded only here at the checkpoint barriers
	// (the walkers are parked; a counter add is one atomic) — never inside
	// the per-step path, which stays allocation- and atomic-free.
	lastSteps := resumed
	// The seed draw runs outside the engine's per-walker panic guard, and
	// crawl clients report transport failures by panicking — a panic here
	// must fail this job, not kill the daemon and its other jobs.
	res, err := func() (res *core.Result, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("service: job %s: %v", j.id, r)
			}
		}()
		return est.RunCheckpointsCtx(ctx, j.spec.Steps, m.snapshotEvery(j.spec.Steps),
			func(step int, conc []float64) {
				m.met.walkCheckpoints.Inc()
				m.met.walkSteps.Add(int64(step - lastSteps))
				lastSteps = step
				// Snapshot while the walkers park at the barrier, before
				// taking the manager lock: encoding is pure CPU over
				// walker-private state. Skipped entirely for volatile
				// managers — without a journal the blob would be discarded.
				var snap []byte
				if m.jnl != nil {
					snap = est.Snapshot().Encode()
				}
				m.mu.Lock()
				j.progress.Steps = step
				j.progress.Concentration = conc
				// One checkpoint, three consumers: restart-safe progress,
				// the resume snapshot, and any live event streams. The
				// journal write itself happens on the writer goroutine.
				m.journalAppendLocked(journal.TypeCheckpoint, j.id,
					recCheckpoint{V: checkpointV2, Steps: step, Concentration: conc, Snapshot: snap})
				m.notifySubsLocked(j, "checkpoint")
				m.mu.Unlock()
			})
	}()
	if res != nil {
		// Steps past the last checkpoint barrier (a cancelled partial stage).
		m.met.walkSteps.Add(int64(res.Steps - lastSteps))
	}
	m.settle(j, res, err)
}

// runMulti executes a dispatched multi-size job: one shared-walk ensemble
// whose step budget is paid once covers every requested size. Resume,
// checkpointing and metrics mirror the single-size path, with the multi
// codec (core.MultiEnsembleState) in place of the single one.
func (m *Manager) runMulti(ctx context.Context, j *job, g *graph.Graph, resumeSnap []byte) {
	m.met.multiRuns.Inc()
	est, err := core.NewMultiEstimator(m.opts.NewClient(g), j.spec.multiConfig())
	if err != nil {
		m.settleMulti(j, nil, err)
		return
	}
	// Restore a recovered checkpoint snapshot; any failure degrades to a
	// from-scratch run, exactly like the single-size path — resume is an
	// optimization and must never be able to fail a job.
	resumed := 0
	if len(resumeSnap) > 0 {
		if st, derr := core.DecodeMultiEnsembleState(resumeSnap); derr == nil {
			if rerr := est.Restore(st); rerr == nil {
				resumed = st.WindowsDone
			} else {
				est, err = core.NewMultiEstimator(m.opts.NewClient(g), j.spec.multiConfig())
				if err != nil {
					m.settleMulti(j, nil, err)
					return
				}
			}
		}
	}
	m.mu.Lock()
	j.progress.ResumedSteps = resumed
	if resumed > 0 {
		j.progress.Steps = resumed
		m.met.walkResumed.Add(int64(resumed))
	} else if len(resumeSnap) > 0 {
		j.progress = Progress{Total: j.spec.Steps}
	}
	m.mu.Unlock()
	lastSteps := resumed
	res, err := func() (res *core.MultiResult, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("service: job %s: %v", j.id, r)
			}
		}()
		return est.RunCheckpointsCtx(ctx, j.spec.Steps, m.snapshotEvery(j.spec.Steps),
			func(step int, conc map[int][]float64) {
				m.met.walkCheckpoints.Inc()
				m.met.walkSteps.Add(int64(step - lastSteps))
				lastSteps = step
				var snap []byte
				if m.jnl != nil {
					snap = est.Snapshot().Encode()
				}
				m.mu.Lock()
				j.progress.Steps = step
				j.progress.Concentrations = conc
				m.journalAppendLocked(journal.TypeCheckpoint, j.id,
					recCheckpoint{V: checkpointV2, Steps: step, Concentrations: conc, Snapshot: snap})
				m.notifySubsLocked(j, "checkpoint")
				m.mu.Unlock()
			})
	}()
	if res != nil {
		m.met.walkSteps.Add(int64(res.Steps - lastSteps))
	}
	m.settleMulti(j, res, err)
}

// settleMulti records a multi-size run's outcome. A completed run fan-out
// fills the result cache with one entry per size, keyed as the equivalent
// single-size spec, so later single-size requests for any covered k — and
// later identical multi-size requests, reassembled from the same entries —
// are warm hits. A cancelled run keeps its partial per-size results but is
// not cached.
func (m *Manager) settleMulti(j *job, res *core.MultiResult, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.met.jobsActive.Dec()
	delete(m.inflight, j.spec.key())
	if res != nil {
		j.multiResult = res
	}
	switch {
	case err == nil:
		for _, k := range j.spec.Sizes {
			r := res.Results[k]
			m.cache.put(j.spec.sizeSpec(k).key(), r, j.id)
			label := strconv.Itoa(k)
			m.met.multiResults.With(label).Inc()
			m.met.multiSteps.With(label).Add(int64(r.Steps))
		}
		m.finishLocked(j, StateDone, nil, nil)
	case errors.Is(err, context.Canceled):
		m.finishLocked(j, StateCanceled, nil, err)
	default:
		m.finishLocked(j, StateFailed, nil, err)
	}
}

// settle records a run's outcome: Done results populate the cache; a
// cancelled run keeps its partial result (progress made) but is not cached.
func (m *Manager) settle(j *job, res *core.Result, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.met.jobsActive.Dec()
	delete(m.inflight, j.spec.key())
	switch {
	case err == nil:
		m.cache.put(j.spec.key(), res, j.id)
		m.finishLocked(j, StateDone, res, nil)
	case errors.Is(err, context.Canceled):
		m.finishLocked(j, StateCanceled, res, err)
	default:
		m.finishLocked(j, StateFailed, res, err)
	}
}

// Cancel stops a queued or running job. Cancelling a terminal job is a
// no-op that reports its final state. Note that a coalesced job is shared:
// cancelling it cancels it for every submitter. Running jobs stop within a
// few hundred walk transitions (the walkers' in-stage context polls).
func (m *Manager) Cancel(id string) (JobView, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, fmt.Errorf("service: unknown job %q", id)
	}
	switch j.state {
	case StateQueued:
		m.sched.remove(j)
		delete(m.inflight, j.spec.key())
		m.finishLocked(j, StateCanceled, nil, context.Canceled)
	case StateRunning:
		j.cancel() // observed at the walkers' next context poll; settle finishes the job
	}
	return j.view(), nil
}

// DropGraph purges every cached result for the named graph. The HTTP layer
// calls it when a graph is removed from the registry, so a later re-bind of
// the name to different topology cannot serve stale results. Queued jobs
// referencing the graph are left to fail cleanly at dispatch.
func (m *Manager) DropGraph(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cache.dropGraph(name)
}

// Get returns a snapshot of the job.
func (m *Manager) Get(id string) (JobView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// Wait blocks until the job reaches a terminal state or the context is
// done, and returns the final snapshot.
func (m *Manager) Wait(ctx context.Context, id string) (JobView, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobView{}, fmt.Errorf("service: unknown job %q", id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return JobView{}, ctx.Err()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return j.view(), nil
}

// List returns snapshots of all jobs in submission order.
func (m *Manager) List() []JobView {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobView, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id].view())
	}
	return out
}

// Stats returns a snapshot of the service counters, read back from the
// same obs registry that backs GET /metrics.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{
		Jobs:          len(m.jobs),
		Runs:          int(m.met.runs.Value()),
		MultiRuns:     int(m.met.multiRuns.Value()),
		CacheHits:     int(m.met.cacheHits.Value()),
		CacheSize:     m.cache.len(),
		Coalesced:     int(m.met.coalesced.Value()),
		Workers:       m.opts.Workers,
		MaxWalkers:    m.opts.MaxWalkers,
		QueueDepth:    m.sched.depth(),
		ActiveJobs:    int(m.met.jobsActive.Value()),
		GraphsCount:   len(m.reg.List()),
		QueueByClass:  m.sched.depthByClass(),
		QueueWait:     m.waitQuantilesLocked(),
		RecoveredJobs: int(m.met.recovered.Value()),
		ResumableJobs: int(m.met.resumable.Value()),
		ResumedSteps:  m.met.walkResumed.Value(),
		WarmedResults: int(m.met.warmed.Value()),
		JournalErrors: int(m.met.journal.Errors.Value()),
	}
	if m.jnl != nil {
		st.JournalSegments = m.jnl.Segments()
	}
	return st
}

// view renders the client-facing snapshot. Caller holds Manager.mu.
func (j *job) view() JobView {
	v := JobView{
		ID:         j.id,
		Spec:       j.spec,
		RequestID:  j.traceID,
		State:      j.state,
		Progress:   j.progress,
		Error:      j.errMsg,
		Cached:     j.cached,
		Coalesced:  j.coalesced,
		CreatedAt:  j.created,
		StartedAt:  j.started,
		FinishedAt: j.finished,
	}
	if conc := j.progress.Concentration; conc != nil {
		v.Progress.Concentration = append([]float64(nil), conc...)
	}
	if concs := j.progress.Concentrations; concs != nil {
		cp := make(map[int][]float64, len(concs))
		for k, c := range concs {
			cp[k] = append([]float64(nil), c...)
		}
		v.Progress.Concentrations = cp
	}
	if j.state == StateDone && j.result != nil {
		v.Result = renderResult(j.result)
	}
	if j.state == StateDone && j.multiResult != nil {
		v.Results = make(map[int]*JobResult, len(j.multiResult.Results))
		for k, r := range j.multiResult.Results {
			v.Results[k] = renderResult(r)
		}
	}
	return v
}

// renderResult maps an engine result onto the client-facing form.
func renderResult(r *core.Result) *JobResult {
	return &JobResult{
		Method:        r.Config.MethodName(),
		Steps:         r.Steps,
		ValidSamples:  r.ValidSamples,
		Concentration: r.Concentration(),
		Weights:       append([]float64(nil), r.Weights...),
	}
}
