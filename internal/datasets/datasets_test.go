package datasets

import (
	"os"
	"testing"

	"repro/internal/graph"
)

func TestRegistryComplete(t *testing.T) {
	if len(All()) != 10 {
		t.Fatalf("registry has %d datasets, want 10", len(All()))
	}
	if len(Small()) != 4 {
		t.Fatalf("Small() has %d datasets, want 4", len(Small()))
	}
	names := map[string]bool{}
	for _, d := range All() {
		if names[d.Name] {
			t.Errorf("duplicate dataset %q", d.Name)
		}
		names[d.Name] = true
	}
	for _, want := range []string{"brightkite", "epinion", "slashdot", "facebook", "gowalla", "wikipedia", "pokec", "flickr", "twitter", "sinaweibo"} {
		if !names[want] {
			t.Errorf("missing dataset %q", want)
		}
	}
}

func TestGetErrors(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Error("unknown dataset should error")
	}
	d, err := Get("brightkite")
	if err != nil || d.Name != "brightkite" {
		t.Errorf("Get(brightkite) = %v, %v", d, err)
	}
}

func TestSmallGraphsConnectedAndDeterministic(t *testing.T) {
	for _, d := range Small() {
		g := d.Graph()
		if !graph.IsConnected(g) {
			t.Errorf("%s LCC not connected", d.Name)
		}
		if g.NumNodes() < 1000 {
			t.Errorf("%s suspiciously small: %v", d.Name, g)
		}
		// Memoized: same pointer.
		if d.Graph() != g {
			t.Errorf("%s graph not memoized", d.Name)
		}
		// Deterministic rebuild.
		raw1, raw2 := d.Build(), d.Build()
		if raw1.NumEdges() != raw2.NumEdges() {
			t.Errorf("%s build not deterministic", d.Name)
		}
	}
}

func TestGroundTruth3(t *testing.T) {
	d, _ := Get("brightkite")
	c, err := d.GroundTruth(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 2 || c[0] <= 0 || c[1] <= 0 {
		t.Fatalf("3-node counts = %v", c)
	}
	conc, err := d.Concentration(3)
	if err != nil {
		t.Fatal(err)
	}
	if conc[0]+conc[1] < 0.999 || conc[0]+conc[1] > 1.001 {
		t.Errorf("concentration sums to %f", conc[0]+conc[1])
	}
}

func TestGroundTruthErrors(t *testing.T) {
	d, _ := Get("twitter")
	if _, err := d.GroundTruth(5); err == nil {
		t.Error("5-node ground truth for large dataset should error")
	}
	if _, err := d.GroundTruth(2); err == nil {
		t.Error("k=2 should error")
	}
}

func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	old := os.Getenv("REPRO_CACHE_DIR")
	os.Setenv("REPRO_CACHE_DIR", dir)
	defer os.Setenv("REPRO_CACHE_DIR", old)

	saveCache("unit-test", []int64{1, 2, 3})
	got, ok := loadCache("unit-test")
	if !ok || len(got) != 3 || got[2] != 3 {
		t.Fatalf("cache round trip failed: %v %v", got, ok)
	}
	if _, ok := loadCache("missing"); ok {
		t.Error("missing key should not load")
	}
}
