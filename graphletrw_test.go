package graphletrw

import (
	"math"
	"strings"
	"testing"

	"repro/internal/gen"
)

func TestFacadeEstimateAgainstExact(t *testing.T) {
	g := gen.HolmeKim(2000, 4, 0.6, 5)
	lcc, _ := LargestComponent(g)
	client := NewClient(lcc)
	res, err := Estimate(client, Config{K: 3, D: 1, CSS: true, NB: true, Seed: 9}, 40000)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Concentration()
	want := ExactConcentration(lcc, 3)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.02 {
			t.Errorf("type %d: got %.4f, want %.4f", i+1, got[i], want[i])
		}
	}
}

func TestFacadeCatalogAndAlpha(t *testing.T) {
	if len(Catalog(5)) != 21 {
		t.Errorf("Catalog(5) has %d entries", len(Catalog(5)))
	}
	if Alpha(3, 1, 2) != 6 {
		t.Errorf("Alpha(3,1,triangle) = %d, want 6", Alpha(3, 1, 2))
	}
}

func TestFacadeGraphIO(t *testing.T) {
	g, err := ReadGraph(strings.NewReader("0 1\n1 2\n2 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("parsed %v", g)
	}
	if cc := ClusteringCoefficient(g); math.Abs(cc-1) > 1e-12 {
		t.Errorf("triangle clustering = %f", cc)
	}
}

func TestFacadeCountingClient(t *testing.T) {
	g := gen.Cycle(50)
	c := NewCountingClient(NewClient(g), g.NumNodes())
	if _, err := Estimate(c, Config{K: 3, D: 1, Seed: 1}, 500); err != nil {
		t.Fatal(err)
	}
	if c.Stats().NeighborCalls == 0 {
		t.Error("no API accounting")
	}
}

func TestFacadeSimilarity(t *testing.T) {
	if s := Similarity([]float64{1, 0}, []float64{1, 0}); math.Abs(s-1) > 1e-12 {
		t.Errorf("Similarity = %f", s)
	}
}

func TestFacadeBaselines(t *testing.T) {
	g := gen.HolmeKim(500, 3, 0.6, 3)
	ws := NewWedgeSampler(g)
	if ws.TotalWedges <= 0 {
		t.Error("wedge sampler has no wedges")
	}
	ps := NewPathSampler(g)
	if ps.TotalPaths <= 0 {
		t.Error("path sampler has no paths")
	}
	if TwoR(g, 1) != 2*float64(g.NumEdges()) {
		t.Error("TwoR(1) wrong")
	}
}

func TestFacadeBuilder(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("built %v", g)
	}
	counts := ExactCounts(g, 3)
	if counts[0] != 1 || counts[1] != 0 {
		t.Errorf("counts = %v", counts)
	}
}
