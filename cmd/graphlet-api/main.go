// Command graphlet-api serves a graph through the restricted-access crawl
// API (see internal/apiserver), so estimation can be demonstrated across a
// real network boundary:
//
//	graphlet-api -dataset facebook -addr :8080
//	graphlet-api -graph g.txt -addr :8080 -qps 50   # politeness-limited API
//
// and, in a second process, crawls it with a parallel walker ensemble that
// shares one memoizing neighbor cache (no neighbor list is fetched twice):
//
//	graphlet-api -crawl http://127.0.0.1:8080 -k 4 -d 2 -css -walkers 8 -steps 20000
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	graphletrw "repro"
	"repro/internal/apiserver"
	"repro/internal/datasets"
	"repro/internal/graph"
)

func main() {
	var (
		path    = flag.String("graph", "", "graph file, edge list or .gcsr (serve mode)")
		dataset = flag.String("dataset", "", "stand-in dataset name (serve mode)")
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address (serve mode)")
		seed    = flag.Int64("seed", 1, "seed: /v1/nodes/random (serve) or the walk RNG (crawl)")
		qps     = flag.Float64("qps", 0, "serve: politeness rate limit in requests/sec (0 = unlimited)")
		burst   = flag.Int("burst", 1, "serve: rate-limit burst allowance")

		crawl   = flag.String("crawl", "", "crawl mode: base URL of a running graphlet-api server")
		k       = flag.Int("k", 4, "crawl: graphlet size (3..5)")
		d       = flag.Int("d", 2, "crawl: walk order d (1..k)")
		css     = flag.Bool("css", true, "crawl: corresponding state sampling")
		nb      = flag.Bool("nb", false, "crawl: non-backtracking walk")
		steps   = flag.Int("steps", 20000, "crawl: total walk steps (split across walkers)")
		walkers = flag.Int("walkers", 1, "crawl: independent concurrent walkers")
	)
	flag.Parse()

	if *crawl != "" {
		runCrawl(*crawl, graphletrw.Config{K: *k, D: *d, CSS: *css, NB: *nb, Walkers: *walkers, Seed: *seed}, *steps)
		return
	}

	var g *graph.Graph
	switch {
	case *path != "":
		loaded, err := graph.OpenFile(*path, graph.FormatAuto)
		if err != nil {
			fail(err)
		}
		g, _ = graph.LargestComponent(loaded)
	case *dataset != "":
		d, err := datasets.Get(*dataset)
		if err != nil {
			fail(err)
		}
		g = d.Graph()
	default:
		flag.Usage()
		os.Exit(2)
	}

	handler := apiserver.RateLimit(apiserver.NewHandler(g, *seed), *qps, *burst)
	limit := "unlimited"
	if *qps > 0 {
		limit = fmt.Sprintf("%.1f qps (burst %d)", *qps, *burst)
	}
	fmt.Printf("serving %d nodes, %d edges on http://%s, rate limit %s\n",
		g.NumNodes(), g.NumEdges(), *addr, limit)
	if err := http.ListenAndServe(*addr, handler); err != nil {
		fail(err)
	}
}

// runCrawl estimates over the HTTP boundary: the walker ensemble shares one
// HTTP client, which is concurrency-safe and fetches each neighborhood at
// most once (per-node single flight). Wrapping it in NewMemoClient would
// only duplicate its cache; the decorator is for inner clients that do not
// memoize themselves.
func runCrawl(base string, cfg graphletrw.Config, steps int) {
	// The crawl client reports transport failures by panicking; surface them
	// as a clean CLI error instead of a stack trace.
	defer func() {
		if r := recover(); r != nil {
			fail(fmt.Errorf("%v", r))
		}
	}()
	api := apiserver.NewClient(base, nil)

	start := time.Now()
	res, err := graphletrw.Estimate(api, cfg, steps)
	if err != nil {
		fail(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("method %s over %s: %d steps, %d walker(s), %s\n",
		cfg.MethodName(), base, res.Steps, cfg.Walkers, elapsed.Round(time.Millisecond))
	fmt.Printf("crawl cost: %d HTTP requests for the whole ensemble (%d valid samples)\n\n",
		api.RequestCount(), res.ValidSamples)
	conc := res.Concentration()
	fmt.Printf("%-22s %12s\n", "graphlet", "estimate")
	for i, gl := range graphletrw.Catalog(cfg.K) {
		fmt.Printf("g%d_%-3d %-15s %12.6f\n", cfg.K, gl.ID, gl.Name, conc[i])
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "graphlet-api:", err)
	os.Exit(1)
}
