//go:build !unix

package graph

// OpenMapped falls back to the portable Load path on platforms without
// syscall.Mmap; the returned graph is heap-backed and Close is a no-op.
func OpenMapped(path string) (*Graph, error) {
	return Load(path)
}
