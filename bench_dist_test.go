package graphletrw

// Distributed-execution benchmark on the 1M-edge Barabási–Albert fixture
// (ba1mGraph, shared with bench_ba_test.go) under simulated crawl latency:
// the regime the dist package exists for. Each worker node models one crawl
// connection — a serialized client that charges a fixed latency per API
// call, the way a polite crawler pays one round trip at a time — so a
// single node's wall clock is latency-bound no matter how many walkers it
// runs. Fanning the same job over three nodes buys three crawl connections;
// the BENCH_pr9.json acceptance bar is >= 2x wall-clock at nodes=3.
//
// The full dispatch stack is exercised: binary Assignment over HTTP to
// httptest worker nodes, Frame streams back, coordinator merge. calls/op
// reports the fleet-wide API-call count per job — identical across node
// counts, because partitioning changes where a walker runs, never what it
// fetches.

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/dist"
)

// crawlConn serializes all access through one simulated crawl connection
// sustaining 1/latency calls per second — the per-node crawl capacity a
// rate-limited API grants. The budget is enforced in coarse ticks (sleep
// once, admit tick/latency calls) because µs-scale sleeps round up to the
// scheduler's timer granularity (~1ms on this class of kernel), which would
// silently inflate the modeled RTT; paced this way the aggregate rate is
// faithful and sleeping connections overlap across nodes even on one CPU.
type crawlConn struct {
	inner   access.Client
	latency time.Duration
	mu      sync.Mutex
	tokens  int
	calls   atomic.Int64
}

const crawlTick = time.Millisecond

func (c *crawlConn) call() {
	c.calls.Add(1)
	c.mu.Lock()
	if c.tokens == 0 {
		time.Sleep(crawlTick)
		c.tokens = int(crawlTick / c.latency)
	}
	c.tokens--
	c.mu.Unlock()
}

func (c *crawlConn) Degree(v int32) int            { c.call(); return c.inner.Degree(v) }
func (c *crawlConn) Neighbors(v int32) []int32     { c.call(); return c.inner.Neighbors(v) }
func (c *crawlConn) Neighbor(v int32, i int) int32 { c.call(); return c.inner.Neighbor(v, i) }
func (c *crawlConn) HasEdge(u, v int32) bool       { c.call(); return c.inner.HasEdge(u, v) }
func (c *crawlConn) RandomNode(r *rand.Rand) int32 { c.call(); return c.inner.RandomNode(r) }

func benchmarkDistributedCrawl(b *testing.B, nodes int) {
	g := ba1mGraph()
	const (
		distSteps   = 6000
		crawlRTT    = 25 * time.Microsecond
		distWalkers = 6
	)
	cfg := core.Config{K: 4, D: 2, CSS: true, Walkers: distWalkers, Seed: 7}
	meta := dist.GraphMeta{Nodes: g.NumNodes(), Edges: g.NumEdges(), MaxDegree: g.MaxDegree()}

	conns := make([]*crawlConn, nodes)
	peers := make([]string, nodes)
	for i := range peers {
		conn := &crawlConn{inner: access.NewGraphClient(g), latency: crawlRTT}
		conns[i] = conn
		srv := httptest.NewServer(&dist.Handler{
			Lookup: func(name string) (access.Client, dist.GraphMeta, bool) {
				if name != "ba1m" {
					return nil, dist.GraphMeta{}, false
				}
				return conn, meta, true
			},
		})
		b.Cleanup(srv.Close)
		peers[i] = srv.URL
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := dist.Assignment{Graph: "ba1m", Meta: meta, Single: &cfg, Budget: distSteps}
		asns := dist.PartitionAssignments(base, nodes)
		if _, err := dist.Run(context.Background(), dist.Options{Peers: peers}, asns); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var calls int64
	for _, c := range conns {
		calls += c.calls.Load()
	}
	b.ReportMetric(float64(calls)/float64(b.N), "calls/op")
	b.ReportMetric(float64(distSteps)*float64(b.N)/b.Elapsed().Seconds(), "steps/sec")
}

func BenchmarkDistributedCrawl(b *testing.B) {
	for _, nodes := range []int{1, 3} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			benchmarkDistributedCrawl(b, nodes)
		})
	}
}
