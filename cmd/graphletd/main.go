// Command graphletd is the multi-graph estimation daemon: it registers named
// graphs (stand-in datasets and/or edge-list files), then serves asynchronous
// graphlet-concentration estimation jobs over HTTP with live progress (poll
// or server-sent events), priority-class scheduling (interactive > batch >
// background under weighted deficit accounting), an LRU result cache,
// single-flight coalescing of identical requests, and a worker pool bounded
// so job parallelism × walkers stays at GOMAXPROCS.
//
//	graphletd -datasets brightkite,epinion -addr 127.0.0.1:9090
//	graphletd -graph social=edges.txt -workers 2 -max-walkers 4
//	graphletd -graph social=social.gcsr   # packed binary CSR, opened via mmap
//	graphletd -graph social=edges.txt -data-dir /var/lib/graphletd
//
// With -data-dir the daemon is durable: every job transition is appended to
// a CRC-checksummed journal under <data-dir>/journal (asynchronously, on an
// ordered writer goroutine, so -fsync on a slow disk never stalls the API),
// and a restart replays it — completed results are served from the warmed
// cache without re-running, and jobs that were queued or running at the
// crash re-queue and finish. Checkpoint records carry the engine's
// serialized walker state, so an interrupted job resumes from its last
// checkpoint instead of step 0: the scheduler charges only the remaining
// budget, and the job's resumed_steps (status, SSE, /v1/stats) reports how
// much crawl work the resume preserved. Without -data-dir the job table is
// in-memory only (the pre-journal behavior).
//
// -graph accepts text edge lists and .gcsr binary CSR files (see
// cmd/graphlet-pack); .gcsr files open zero-copy through mmap — one
// sequential checksum/validation pass over the raw bytes instead of an
// edge-list parse and rebuild (~40x faster at 1M edges) — and resident
// pages are shared with any other process mapping the same file. Dataset
// graphs are likewise cached as .gcsr under $REPRO_CACHE_DIR after first
// build.
//
// Submit and poll with curl:
//
//	curl -s -X POST localhost:9090/v1/jobs -d \
//	  '{"graph":"epinion","k":4,"d":2,"css":true,"steps":20000,"walkers":4,"seed":1,"priority":"interactive"}'
//	curl -s localhost:9090/v1/jobs/j-1
//	curl -sN localhost:9090/v1/jobs/j-1/events     # SSE progress stream
//	curl -s -X DELETE localhost:9090/v1/jobs/j-1   # cancel
//	curl -s -X DELETE localhost:9090/v1/graphs/epinion   # unregister + purge cache
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // -pprof side listener (http.DefaultServeMux only)
	"os"
	"strings"
	"time"

	"repro/internal/access"
	"repro/internal/graph"
	"repro/internal/service"
)

func main() {
	var graphFlags multiFlag
	var (
		addr       = flag.String("addr", "127.0.0.1:9090", "listen address")
		dsets      = flag.String("datasets", "", "comma-separated stand-in dataset names to register")
		workers    = flag.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS/max-walkers)")
		maxWalkers = flag.Int("max-walkers", 8, "per-job walker cap")
		cacheSize  = flag.Int("cache", 256, "result-cache capacity (negative disables)")
		snapshot   = flag.Int("snapshot-every", 0, "progress checkpoint spacing in windows (0 = auto)")
		latency    = flag.Duration("latency", 0, "simulated per-call API latency (crawl modeling)")
		dataDir    = flag.String("data-dir", "", "durability directory: journal job history here, replay it on start (empty = volatile)")
		fsync      = flag.Bool("fsync", false, "fsync every journal append (with -data-dir)")
		pprofAddr  = flag.String("pprof", "", "expose net/http/pprof on this side listener (e.g. 127.0.0.1:6060; empty = off)")
	)
	flag.Var(&graphFlags, "graph", "name=path graph to register, edge list or .gcsr (repeatable)")
	flag.Parse()

	reg := service.NewRegistry()
	if *dsets != "" {
		for _, name := range strings.Split(*dsets, ",") {
			if err := reg.AddDataset(strings.TrimSpace(name)); err != nil {
				fail(err)
			}
		}
	}
	for _, spec := range graphFlags {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fail(fmt.Errorf("bad -graph %q, want name=path", spec))
		}
		if err := reg.AddFile(name, path); err != nil {
			fail(err)
		}
	}
	if len(reg.List()) == 0 {
		fmt.Fprintln(os.Stderr, "graphletd: no graphs registered; pass -datasets and/or -graph")
		flag.Usage()
		os.Exit(2)
	}

	opts := service.Options{
		Workers:       *workers,
		MaxWalkers:    *maxWalkers,
		CacheSize:     *cacheSize,
		SnapshotEvery: *snapshot,
		DataDir:       *dataDir,
		Fsync:         *fsync,
	}
	if *latency > 0 {
		opts.NewClient = func(g *graph.Graph) access.Client {
			return access.NewDelayed(access.NewGraphClient(g), *latency)
		}
	}
	mgr, err := service.NewManager(reg, opts)
	if err != nil {
		fail(err)
	}
	defer mgr.Close()

	if *pprofAddr != "" {
		// Side listener only: the pprof handlers register on
		// http.DefaultServeMux (imported for effect below), which the API
		// server never serves, so profiling endpoints are reachable solely on
		// this address.
		go func() {
			fmt.Printf("pprof on http://%s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "graphletd: pprof listener: %v\n", err)
			}
		}()
	}

	st := mgr.Stats()
	fmt.Printf("graphletd: %d graph(s), %d worker(s), walker cap %d, cache %d results\n",
		st.GraphsCount, st.Workers, st.MaxWalkers, *cacheSize)
	if *dataDir != "" {
		fmt.Printf("  journal %s: %d segment(s), %d job(s) re-queued (%d resumable mid-budget), %d result(s) warmed\n",
			*dataDir, st.JournalSegments, st.RecoveredJobs, st.ResumableJobs, st.WarmedResults)
	}
	for _, info := range reg.List() {
		fmt.Printf("  graph %-12s %8d nodes %9d edges (max degree %d, %s)\n",
			info.Name, info.Nodes, info.Edges, info.MaxDegree, info.Source)
	}
	fmt.Printf("listening on http://%s\n", *addr)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewServer(reg, mgr),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := srv.ListenAndServe(); err != nil {
		fail(err)
	}
}

// multiFlag collects repeated -graph flags.
type multiFlag []string

func (f *multiFlag) String() string { return strings.Join(*f, ",") }
func (f *multiFlag) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "graphletd:", err)
	os.Exit(1)
}
