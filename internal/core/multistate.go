// Serializable multi-size run state: the MultiEstimator counterpart of
// state.go. A multi-size run's complete position — per-walker RNG stream
// position, walk position, shared state ring, and one accumulator per target
// size — exports at any checkpoint barrier (MultiEstimator.Snapshot),
// encodes to a compact versioned binary blob, and restores into a fresh
// MultiEstimator (MultiEstimator.Restore) to continue the run with per-size
// results byte-identical to an uninterrupted one, at any GOMAXPROCS.

package core

import (
	"encoding/binary"
	"fmt"
	"math"
)

// MultiSizeAcc is one target size's private accumulator share within a
// multi-size walker (the walker's slice of the merged per-size Result).
type MultiSizeAcc struct {
	// Done is the number of windows this size has accumulated (== its
	// Result.Steps); at a checkpoint barrier every size's Done is equal.
	Done         int
	ValidSamples int
	Weights      []float64
	TypeCounts   []int64
}

// MultiWalkerState is the complete resumable state of one multi-size walker,
// captured while the ensemble is quiescent at a checkpoint barrier.
type MultiWalkerState struct {
	// RNGPos is the walker's RNG stream position (walk.Rand.Pos); the seed is
	// derived from (MultiConfig.Seed, walker index), so it is not stored.
	RNGPos uint64
	Seeded bool
	Primed bool

	// Walk position (meaningful when Seeded).
	Steps   int64
	HasPrev bool
	Cur     []int32
	Prev    []int32

	// State ring in walk order, oldest first — the last min(steps+1, maxL)
	// states (meaningful when Primed).
	Win  [][]int32
	Degs []int

	// Accs holds one accumulator per target size, in MultiConfig.Sizes order.
	Accs []MultiSizeAcc
}

// MultiEnsembleState is the serializable state of a whole multi-size run.
type MultiEnsembleState struct {
	// Config is the configuration the state was captured under; Restore
	// refuses a mismatch (a resumed run must re-create the same trajectory).
	Config MultiConfig
	// WindowsDone is the ensemble-wide checkpoint target reached: windows
	// processed per size, summed over walkers, when the snapshot was taken.
	WindowsDone int
	Walkers     []MultiWalkerState
}

// Binary layout mirrors EnsembleState's (state.go): magic, format version,
// MultiConfig, WindowsDone, then each walker. Integers are varints (zigzag
// for signed), float64s fixed 8-byte IEEE-754 bits, booleans packed into
// flag bytes. Version-gated: a future format fails loudly.
const (
	multiStateMagic   = "GMST"
	multiStateVersion = 1

	// maxStateSizes caps the decoded size list; graphlet sizes live in 3..5,
	// so anything past a small constant is corruption.
	maxStateSizes = 16
)

// Encode renders the state as a versioned binary blob.
func (st *MultiEnsembleState) Encode() []byte {
	buf := make([]byte, 0, 256+len(st.Walkers)*512)
	buf = append(buf, multiStateMagic...)
	buf = binary.AppendUvarint(buf, multiStateVersion)

	c := st.Config
	buf = binary.AppendUvarint(buf, uint64(len(c.Sizes)))
	for _, k := range c.Sizes {
		buf = binary.AppendVarint(buf, int64(k))
	}
	buf = binary.AppendVarint(buf, int64(c.D))
	buf = append(buf, packBools(c.CSS, c.NB))
	buf = binary.AppendVarint(buf, int64(c.Walkers))
	buf = binary.AppendVarint(buf, c.Seed)

	buf = binary.AppendVarint(buf, int64(st.WindowsDone))
	buf = binary.AppendUvarint(buf, uint64(len(st.Walkers)))
	for i := range st.Walkers {
		buf = st.Walkers[i].encode(buf)
	}
	return buf
}

func (w *MultiWalkerState) encode(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, w.RNGPos)
	buf = append(buf, packBools(w.Seeded, w.Primed, w.HasPrev))
	buf = binary.AppendVarint(buf, w.Steps)
	buf = appendNodes(buf, w.Cur)
	buf = appendNodes(buf, w.Prev)
	buf = binary.AppendUvarint(buf, uint64(len(w.Win)))
	for _, s := range w.Win {
		buf = appendNodes(buf, s)
	}
	buf = binary.AppendUvarint(buf, uint64(len(w.Degs)))
	for _, d := range w.Degs {
		buf = binary.AppendVarint(buf, int64(d))
	}
	buf = binary.AppendUvarint(buf, uint64(len(w.Accs)))
	for i := range w.Accs {
		a := &w.Accs[i]
		buf = binary.AppendVarint(buf, int64(a.Done))
		buf = binary.AppendVarint(buf, int64(a.ValidSamples))
		buf = binary.AppendUvarint(buf, uint64(len(a.Weights)))
		for _, f := range a.Weights {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		}
		buf = binary.AppendUvarint(buf, uint64(len(a.TypeCounts)))
		for _, n := range a.TypeCounts {
			buf = binary.AppendVarint(buf, n)
		}
	}
	return buf
}

// DecodeMultiEnsembleState parses a blob produced by Encode. Every length
// and range is validated, so arbitrary (truncated, corrupt, adversarial)
// input produces an error, never a panic or an absurd allocation.
func DecodeMultiEnsembleState(data []byte) (*MultiEnsembleState, error) {
	d := &stateDecoder{data: data}
	if string(d.bytes(len(multiStateMagic))) != multiStateMagic {
		return nil, fmt.Errorf("core: multi ensemble state: bad magic")
	}
	if v := d.uvarint(); d.err == nil && v != multiStateVersion {
		return nil, fmt.Errorf("core: multi ensemble state: unsupported format version %d (have %d)", v, multiStateVersion)
	}

	st := &MultiEnsembleState{}
	nSizes := d.uvarint()
	if d.err == nil && (nSizes == 0 || nSizes > maxStateSizes) {
		return nil, fmt.Errorf("core: multi ensemble state: %d sizes out of range", nSizes)
	}
	if d.err == nil {
		st.Config.Sizes = make([]int, nSizes)
		for i := range st.Config.Sizes {
			st.Config.Sizes[i] = int(d.varint())
		}
	}
	st.Config.D = int(d.varint())
	var pad bool
	st.Config.CSS, st.Config.NB, pad = d.unpackBools()
	if d.err == nil && pad {
		return nil, fmt.Errorf("core: multi ensemble state: unknown config flag")
	}
	st.Config.Walkers = int(d.varint())
	st.Config.Seed = d.varint()

	st.WindowsDone = int(d.varint())
	n := d.uvarint()
	if d.err == nil && n > maxStateWalkers {
		return nil, fmt.Errorf("core: multi ensemble state: %d walkers exceeds cap", n)
	}
	if d.err == nil {
		st.Walkers = make([]MultiWalkerState, n)
		for i := range st.Walkers {
			st.Walkers[i].decode(d)
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("core: multi ensemble state: %w", d.err)
	}
	if d.off != len(d.data) {
		return nil, fmt.Errorf("core: multi ensemble state: %d trailing bytes", len(d.data)-d.off)
	}
	if st.WindowsDone < 0 {
		return nil, fmt.Errorf("core: multi ensemble state: negative windows done %d", st.WindowsDone)
	}
	return st, nil
}

func (w *MultiWalkerState) decode(d *stateDecoder) {
	w.RNGPos = d.uvarint()
	w.Seeded, w.Primed, w.HasPrev = d.unpackBools()
	w.Steps = d.varint()
	w.Cur = d.nodes()
	w.Prev = d.nodes()
	nWin := d.uvarint()
	if d.err == nil && nWin > maxStateWindow {
		d.fail("ring length %d exceeds cap", nWin)
	}
	if d.err == nil && nWin > 0 {
		w.Win = make([][]int32, nWin)
		for i := range w.Win {
			w.Win[i] = d.nodes()
		}
	}
	nDeg := d.uvarint()
	if d.err == nil && nDeg > maxStateWindow {
		d.fail("degree list length %d exceeds cap", nDeg)
	}
	if d.err == nil && nDeg > 0 {
		w.Degs = make([]int, nDeg)
		for i := range w.Degs {
			w.Degs[i] = int(d.varint())
		}
	}
	nAcc := d.uvarint()
	if d.err == nil && nAcc > maxStateSizes {
		d.fail("accumulator count %d exceeds cap", nAcc)
	}
	if d.err == nil && nAcc > 0 {
		w.Accs = make([]MultiSizeAcc, nAcc)
		for i := range w.Accs {
			a := &w.Accs[i]
			a.Done = int(d.varint())
			a.ValidSamples = int(d.varint())
			nW := d.uvarint()
			if d.err == nil && nW > maxStateTypes {
				d.fail("weights length %d exceeds cap", nW)
			}
			if d.err == nil && nW > 0 {
				a.Weights = make([]float64, nW)
				for j := range a.Weights {
					a.Weights[j] = d.float64()
				}
			}
			nT := d.uvarint()
			if d.err == nil && nT > maxStateTypes {
				d.fail("type counts length %d exceeds cap", nT)
			}
			if d.err == nil && nT > 0 {
				a.TypeCounts = make([]int64, nT)
				for j := range a.TypeCounts {
					a.TypeCounts[j] = d.varint()
				}
			}
		}
	}
}
