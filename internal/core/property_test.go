package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/access"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphlet"
	"repro/internal/walk"
)

// randomConnectedGraph builds a small random connected graph from quick's
// raw bytes: a random spanning tree plus extra random edges.
func randomConnectedGraph(raw []byte, n int) *graph.Graph {
	if n < 6 {
		n = 6
	}
	rng := rand.New(rand.NewSource(int64(len(raw)) + 12345))
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(int32(v), int32(rng.Intn(v)))
	}
	for _, x := range raw {
		u := int32(x) % int32(n)
		v := int32(x>>3) % int32(n)
		b.AddEdge(u, v)
	}
	return b.Build()
}

// Property: for any small connected graph and any method configuration, the
// estimator runs without error, produces a concentration vector that is
// non-negative and sums to 1 (when any valid sample was seen), and counts
// every window as either valid or skipped.
func TestEstimatorInvariantsQuick(t *testing.T) {
	f := func(raw []byte, kSel, dSel uint8, css, nb bool) bool {
		g := randomConnectedGraph(raw, 10+int(kSel)%20)
		k := 3 + int(kSel)%3
		d := 1 + int(dSel)%k
		if k >= 4 && d == 1 {
			// Stars are invisible under d=1 (alpha=0); the invariants below
			// still hold, but keep the property focused on full-rank methods.
			d = 2
		}
		cfg := Config{K: k, D: d, CSS: css, NB: nb, Seed: int64(kSel)*7 + int64(dSel)}
		client := access.NewGraphClient(g)
		est, err := NewEstimator(client, cfg)
		if err != nil {
			return false
		}
		res, err := est.Run(400)
		if err != nil {
			return false
		}
		if res.Steps != 400 {
			return false
		}
		if res.ValidSamples < 0 || res.ValidSamples > res.Steps {
			return false
		}
		conc := res.Concentration()
		sum := 0.0
		for _, c := range conc {
			if c < 0 || math.IsNaN(c) {
				return false
			}
			sum += c
		}
		if res.ValidSamples > 0 && math.Abs(sum-1) > 1e-9 {
			return false
		}
		if res.ValidSamples == 0 && sum != 0 {
			return false
		}
		// Raw type counts must sum to the number of valid samples.
		var tc int64
		for _, c := range res.TypeCounts {
			tc += c
		}
		return tc == int64(res.ValidSamples)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: CSS sampling probability is strictly positive and no larger than
// α·(max interior weight) for any connected k-subgraph the walk can emit,
// and invariant under node-order permutations of the same subgraph.
func TestSamplingProbabilityPermutationInvariant(t *testing.T) {
	g := gen.HolmeKim(50, 3, 0.7, 9)
	client := access.NewGraphClient(g)
	rng := rand.New(rand.NewSource(4))
	sp := walk.NewSpace(client, 2)
	// Draw connected 4-node samples by short walks on G(2).
	for trial := 0; trial < 50; trial++ {
		w := walk.New(sp, false, rng)
		s1 := w.Current()
		s2 := w.Step()
		s3 := w.Step()
		set := map[int32]bool{}
		for _, s := range []walk.State{s1, s2, s3} {
			for i := 0; i < s.Len(); i++ {
				set[s.Node(i)] = true
			}
		}
		if len(set) != 4 {
			continue
		}
		nodes := make([]int32, 0, 4)
		for v := range set {
			nodes = append(nodes, v)
		}
		base := SamplingProbability(client, 4, 2, false, nodes)
		if base <= 0 {
			t.Fatalf("non-positive p̃ for %v", nodes)
		}
		// Permute the node order: p̃ must not change.
		perm := []int32{nodes[3], nodes[1], nodes[0], nodes[2]}
		if got := SamplingProbability(client, 4, 2, false, perm); math.Abs(got-base) > 1e-12*base {
			t.Fatalf("p̃ depends on node order: %g vs %g", got, base)
		}
	}
}

// Property: the CSS estimator and the plain estimator have the same
// expectation (Lemma 4); over a long run on a fixed graph their estimates
// agree within statistical noise.
func TestCSSMatchesPlainExpectation(t *testing.T) {
	g := gen.HolmeKim(60, 3, 0.6, 21)
	client := access.NewGraphClient(g)
	run := func(css bool) []float64 {
		est, err := NewEstimator(client, Config{K: 4, D: 2, CSS: css, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		res, err := est.Run(150000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Concentration()
	}
	plain, css := run(false), run(true)
	for i := range plain {
		if plain[i] < 0.01 {
			continue
		}
		if math.Abs(plain[i]-css[i])/plain[i] > 0.15 {
			t.Errorf("type %d: plain %.4f vs css %.4f", i+1, plain[i], css[i])
		}
	}
}

// Property: Lemma 5 — on identical samples the CSS weights have no larger
// spread than the plain weights. We check the variance of per-sample weights
// for the triangle type gathered from one walk.
func TestCSSVarianceReduction(t *testing.T) {
	g := gen.HolmeKim(200, 3, 0.7, 31)
	client := access.NewGraphClient(g)
	sp := walk.NewSpace(client, 1)
	rng := rand.New(rand.NewSource(8))
	w := walk.New(sp, false, rng)
	var prev2, prev1 walk.State
	prev2 = w.Current()
	prev1 = w.Step()
	var plain, css []float64
	alphaTri := float64(graphlet.Alpha(3, 1, 2))
	for i := 0; i < 60000; i++ {
		cur := w.Step()
		a, b, c := prev2.Node(0), prev1.Node(0), cur.Node(0)
		prev2, prev1 = prev1, cur
		if a == c || a == b || b == c {
			continue
		}
		if !(client.HasEdge(a, b) && client.HasEdge(b, c) && client.HasEdge(a, c)) {
			continue
		}
		// Triangle sample: plain weight 1/(α·π̃e) with π̃e = 1/deg(b);
		// CSS weight 1/p̃.
		plain = append(plain, float64(client.Degree(b))/alphaTri)
		p := SamplingProbability(client, 3, 1, false, []int32{a, b, c})
		css = append(css, 1/p)
	}
	if len(plain) < 100 {
		t.Skip("too few triangle samples")
	}
	if v1, v2 := variance(css), variance(plain); v1 > v2 {
		t.Errorf("CSS weight variance %.4f > plain %.4f (Lemma 5 violated)", v1, v2)
	}
}

func variance(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return v / float64(len(xs))
}

// TestTinyGraphs: the estimator must behave on degenerate inputs — the
// smallest graphs where windows can never cover k nodes.
func TestTinyGraphs(t *testing.T) {
	// A single edge: k=3 samples can never exist; all windows invalid.
	g := graph.FromEdgeList(2, [][2]int32{{0, 1}})
	client := access.NewGraphClient(g)
	est, err := NewEstimator(client, Config{K: 3, D: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := est.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if res.ValidSamples != 0 {
		t.Errorf("valid samples on a single edge: %d", res.ValidSamples)
	}
	conc := res.Concentration()
	if conc[0] != 0 || conc[1] != 0 {
		t.Errorf("concentration on a single edge: %v", conc)
	}

	// A triangle: every k=3 window that covers 3 nodes is the triangle.
	tri := gen.Complete(3)
	est2, _ := NewEstimator(access.NewGraphClient(tri), Config{K: 3, D: 1, Seed: 2})
	res2, err := est2.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	c := res2.Concentration()
	if c[1] < 0.999 {
		t.Errorf("triangle graph concentration: %v", c)
	}
}
