package gen

import "repro/internal/graph"

// Deterministic small fixtures used across tests and examples.

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(int32(u), int32(v))
		}
	}
	return b.Build()
}

// Cycle returns the cycle graph C_n.
func Cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		b.AddEdge(int32(u), int32((u+1)%n))
	}
	return b.Build()
}

// Path returns the path graph P_n (n nodes, n-1 edges).
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u+1 < n; u++ {
		b.AddEdge(int32(u), int32(u+1))
	}
	return b.Build()
}

// Star returns the star graph with one center (node 0) and n-1 leaves.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, int32(v))
	}
	return b.Build()
}

// PaperFigure1 returns the 4-node, 5-edge example graph of the paper's
// Figure 1: nodes 1..4 remapped to 0..3, edges
// {1-2, 1-3, 1-4, 2-3, 3-4} -> {0-1, 0-2, 0-3, 1-2, 2-3}.
// It has two triangles ({0,1,2} and {0,2,3}) and two wedges, so the wedge and
// triangle concentrations are both 0.5.
func PaperFigure1() *graph.Graph {
	return graph.FromEdgeList(4, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 3}})
}

// Lollipop returns a clique K_c with a pendant path of p extra nodes attached
// to clique node 0 — a classic slow-mixing shape, useful for stress tests.
func Lollipop(c, p int) *graph.Graph {
	b := graph.NewBuilder(c + p)
	for u := 0; u < c; u++ {
		for v := u + 1; v < c; v++ {
			b.AddEdge(int32(u), int32(v))
		}
	}
	prev := int32(0)
	for i := 0; i < p; i++ {
		next := int32(c + i)
		b.AddEdge(prev, next)
		prev = next
	}
	return b.Build()
}

// TwoTriangles returns two triangles joined by a single bridge edge.
func TwoTriangles() *graph.Graph {
	return graph.FromEdgeList(6, [][2]int32{
		{0, 1}, {1, 2}, {0, 2},
		{3, 4}, {4, 5}, {3, 5},
		{2, 3},
	})
}
