// Command gengraph writes a synthetic graph (or one of the stand-in
// datasets) as an edge list, for feeding the other tools.
//
// Usage:
//
//	gengraph -model ba -n 10000 -m 5 [-p 0.5] [-seed 1] -out graph.txt
//	gengraph -dataset facebook -out fb.txt
//
// Models: er (n, m), ba (n, m), hk (n, m, p), ws (n, m=k, p), plc (n, p as
// exponent, m as min degree).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datasets"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	var (
		model   = flag.String("model", "", "er | ba | hk | ws | plc")
		dataset = flag.String("dataset", "", "stand-in dataset name (alternative to -model)")
		n       = flag.Int("n", 10000, "nodes")
		m       = flag.Int("m", 5, "edges per node / total edges (er) / min degree (plc)")
		p       = flag.Float64("p", 0.5, "model parameter (triad prob / rewire prob / exponent)")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var g *graph.Graph
	switch {
	case *dataset != "":
		d, err := datasets.Get(*dataset)
		if err != nil {
			fail(err)
		}
		g = d.Graph()
	case *model == "er":
		g = gen.ErdosRenyiGNM(*n, *m, *seed)
	case *model == "ba":
		g = gen.BarabasiAlbert(*n, *m, *seed)
	case *model == "hk":
		g = gen.HolmeKim(*n, *m, *p, *seed)
	case *model == "ws":
		g = gen.WattsStrogatz(*n, *m, *p, *seed)
	case *model == "plc":
		g = gen.PowerLawConfiguration(*n, *p, *m, *n/10, *seed)
	default:
		flag.Usage()
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteEdgeList(w, g); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gengraph:", err)
	os.Exit(1)
}
