// Command experiments regenerates the paper's tables and figures on the
// synthetic stand-in datasets (see the repository README.md for the
// per-experiment index).
//
// Usage:
//
//	experiments [-steps N] [-trials N] [-walkers W] [-graph-cache=false] [table2|table3|table4|table5|fig4|fig5|fig6|table6|fig7|fig8|table7|all]
//
// Defaults follow the paper where practical: 20K walk steps; 200 independent
// simulations (the paper uses 1,000, and 100 for the slow SRW4 — this harness
// scales SRW4 down by 10x the same way).
//
// Stand-in dataset graphs are cached on disk in the .gcsr binary CSR format
// (under $REPRO_CACHE_DIR, like the ground-truth cache) and opened zero-copy
// via mmap on later runs, so repeated invocations skip the generators
// entirely; -graph-cache=false rebuilds from scratch.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/datasets"
	"repro/internal/experiments"
)

func main() {
	steps := flag.Int("steps", 20000, "random walk steps per run")
	trials := flag.Int("trials", 200, "independent simulations per method")
	walkers := flag.Int("walkers", 0, "concurrent walkers per run (0 = single walker)")
	graphCache := flag.Bool("graph-cache", os.Getenv("REPRO_NO_GRAPH_CACHE") == "",
		"cache dataset graphs as .gcsr files and mmap them on later runs")
	flag.Usage = usage
	flag.Parse()
	datasets.SetGraphCaching(*graphCache)

	p := experiments.Params{Steps: *steps, Trials: *trials, Walkers: *walkers}
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}

	runners := map[string]func(){
		"table2": func() { experiments.Table2(os.Stdout) },
		"table3": func() { experiments.Table3(os.Stdout) },
		"table4": func() { experiments.Table4(os.Stdout) },
		"table5": func() { experiments.Table5(os.Stdout) },
		"fig4":   func() { experiments.Fig4(os.Stdout, p) },
		"fig5":   func() { experiments.Fig5(os.Stdout, p) },
		"fig6":   func() { experiments.Fig6(os.Stdout, p) },
		"table6": func() { experiments.Table6(os.Stdout, p) },
		"fig7":   func() { experiments.Fig7(os.Stdout, p) },
		"fig8":   func() { experiments.Fig8(os.Stdout, p) },
		"table7": func() { experiments.Table7(os.Stdout, p) },
	}
	order := []string{"table2", "table3", "table4", "table5", "fig4", "fig5", "fig6", "table6", "fig7", "fig8", "table7"}

	for _, a := range args {
		if a == "all" {
			for _, name := range order {
				timed(name, runners[name])
			}
			continue
		}
		run, ok := runners[a]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", a)
			usage()
			os.Exit(2)
		}
		timed(a, run)
	}
}

func timed(name string, fn func()) {
	start := time.Now()
	fn()
	fmt.Printf("\n[%s completed in %s]\n", name, time.Since(start).Round(time.Millisecond))
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: experiments [-steps N] [-trials N] [-walkers W] <experiment>...

experiments:
  table2   alpha coefficients for 3,4-node graphlets
  table3   alpha coefficients for 5-node graphlets (with errata notes)
  table4   CSS sampling-probability closed forms
  table5   dataset inventory with exact clique concentrations
  fig4     NRMSE of concentration estimates, all methods
  fig5     weighted concentration vs accuracy (epinion)
  fig6     convergence of the estimates
  table6   running time of 20K steps vs exact enumeration
  fig7     count estimation vs wedge/path sampling at equal time
  fig8     SRW1CSSNB vs adapted wedge sampling (Wedge-MHRW)
  table7   graphlet-kernel similarity application
  all      everything above in order`)
	os.Exit(2)
}
