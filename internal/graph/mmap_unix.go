//go:build unix

package graph

import (
	"fmt"
	"hash/crc32"
	"os"
	"syscall"
	"unsafe"
)

// OpenMapped opens a .gcsr file via a read-only shared mmap: the off/adj
// arrays alias the page cache directly (zero copy), so no per-element
// decode or heap copy is made and resident memory is shared across
// processes mapping the same file. Opening still makes one sequential
// checksum-and-validation pass over the raw bytes (see the format doc), so
// open time is linear in file size but a large constant factor cheaper
// than parsing an edge list — tens of milliseconds per hundred MB, served
// from the page cache on warm opens. Call Close on the returned graph to
// release the mapping; the graph must not be used afterwards.
//
// On big-endian hosts (where the little-endian arrays cannot be aliased)
// OpenMapped transparently falls back to the portable Load path, which
// returns an ordinary heap-backed graph.
func OpenMapped(path string) (*Graph, error) {
	if !hostLittleEndian() {
		return Load(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < gcsrHeaderSize {
		return nil, fmt.Errorf("graph: %s: gcsr: file shorter than the %d-byte header", path, gcsrHeaderSize)
	}
	if int64(int(size)) != size {
		// File larger than the address space (32-bit platforms): the
		// portable path at least fails with a clear allocation error.
		return Load(path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("graph: mmap %s: %w", path, err)
	}
	g, err := mapBinary(data)
	if err != nil {
		syscall.Munmap(data)
		return nil, fmt.Errorf("graph: %s: %w", path, err)
	}
	// Advise after validation: the open-time checksum pass is sequential and
	// benefits from default readahead; the walk accesses that follow are
	// random over adj and hot over off.
	adviseMapped(data, gcsrHeaderSize+int((int64(g.NumNodes())+1)*8))
	g.unmap = func() error { return syscall.Munmap(data) }
	return g, nil
}

// mapBinary builds a Graph whose off/adj slices alias the mapped file bytes.
// The 40-byte header keeps both arrays naturally aligned within the
// page-aligned mapping.
func mapBinary(data []byte) (*Graph, error) {
	h, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	want := gcsrHeaderSize + h.offBytes() + h.adjBytes()
	if int64(len(data)) != want {
		return nil, fmt.Errorf("gcsr: file size %d != expected %d (n=%d, m=%d)", len(data), want, h.n, h.m)
	}
	payload := data[gcsrHeaderSize:]
	if got := crc32.Checksum(payload, castagnoli); got != h.crc {
		return nil, fmt.Errorf("gcsr: payload checksum %08x != stored %08x (file corrupted)", got, h.crc)
	}
	off := unsafe.Slice((*int64)(unsafe.Pointer(&payload[0])), h.n+1)
	if err := checkOffsets(off, h); err != nil {
		return nil, err
	}
	var adj []int32
	if h.m > 0 {
		adj = unsafe.Slice((*int32)(unsafe.Pointer(&payload[h.offBytes()])), 2*h.m)
	}
	if err := checkAdjacency(off, adj, h); err != nil {
		return nil, err
	}
	g := &Graph{off: off, adj: adj, m: h.m, maxDeg: int(h.maxDeg)}
	g.buildHubIndex()
	return g, nil
}
