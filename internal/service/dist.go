package service

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/service/journal"
)

// maxFanout bounds Spec.Nodes; a fleet larger than this is outside the
// design envelope (and the walker cap keeps the useful fan-out far lower).
const maxFanout = 64

// PartitionLookup adapts the manager's registry and client factory to the
// worker endpoint's graph resolution, so a graphletd running with -worker
// serves partitions over exactly the graphs (and through exactly the access
// stack, including any crawl-latency wrapper) its local jobs use.
func (m *Manager) PartitionLookup() func(name string) (access.Client, dist.GraphMeta, bool) {
	return func(name string) (access.Client, dist.GraphMeta, bool) {
		g, ok := m.reg.Get(name)
		if !ok {
			return nil, dist.GraphMeta{}, false
		}
		return m.opts.NewClient(g), distMeta(g), true
	}
}

func distMeta(g *graph.Graph) dist.GraphMeta {
	return dist.GraphMeta{Nodes: g.NumNodes(), Edges: g.NumEdges(), MaxDegree: g.MaxDegree()}
}

// runDistributed executes a dispatched job by fanning its walker ensemble
// across the peer fleet. The coordinator holds this worker slot; the walk
// steps happen remotely (with local failover as the last resort). Every
// fleet-wide checkpoint — the moment all partitions reach a common target —
// becomes one ordinary journal checkpoint whose snapshot is the combined
// full-ensemble state, so a coordinator crash recovers through the existing
// resume machinery and can even finish the job locally with no peers.
func (m *Manager) runDistributed(ctx context.Context, j *job, g *graph.Graph, resumeSnap []byte) {
	spec := j.spec
	multi := spec.multi()
	if multi {
		m.met.multiRuns.Inc()
	}
	base := dist.Assignment{
		Graph:  spec.Graph,
		Meta:   distMeta(g),
		Budget: spec.Steps,
		Every:  m.snapshotEvery(spec.Steps),
	}
	if multi {
		cfg := spec.multiConfig()
		base.Multi = &cfg
	} else {
		cfg := spec.config()
		base.Single = &cfg
	}
	asns := dist.PartitionAssignments(base, spec.Nodes)

	// Coordinator crash recovery: slice the journaled full snapshot into
	// per-partition resume blobs. Like local resume, failure degrades to a
	// from-scratch run — it must never be able to fail the job.
	resumeTarget := 0
	if len(resumeSnap) > 0 {
		if t, ok := sliceResume(asns, resumeSnap, multi); ok {
			resumeTarget = t
		} else {
			m.mu.Lock()
			j.progress = Progress{Total: spec.Steps}
			m.mu.Unlock()
		}
	}

	// lastSteps and lastCombined are only touched from OnSync, which the
	// coordinator serializes; the mutex covers the final read after Run.
	var lastMu sync.Mutex
	lastSteps := resumeTarget
	var lastCombined []byte

	opts := dist.Options{
		Peers:        m.opts.Peers,
		HTTPClient:   m.opts.DistHTTPClient,
		Retries:      m.opts.DistRetries,
		Backoff:      m.opts.DistBackoff,
		StallTimeout: m.opts.DistStallTimeout,
		LocalClient:  func() access.Client { return m.opts.NewClient(g) },
		Metrics:      m.met.dist,
		OnSync: func(target int, combined []byte) {
			res, multiRes, err := decodeMerged(combined, multi)
			if err != nil {
				return // combined states are coordinator-built; never expected
			}
			lastMu.Lock()
			delta := target - lastSteps
			lastSteps = target
			lastCombined = combined
			lastMu.Unlock()
			var snap []byte
			if m.jnl != nil {
				snap = combined
			}
			m.mu.Lock()
			m.met.walkCheckpoints.Inc()
			m.met.walkSteps.Add(int64(delta))
			j.progress.Steps = target
			rec := recCheckpoint{V: checkpointV2, Steps: target, Snapshot: snap}
			if multi {
				j.progress.Concentrations = multiRes.Concentrations()
				rec.Concentrations = j.progress.Concentrations
			} else {
				j.progress.Concentration = res.Concentration()
				rec.Concentration = j.progress.Concentration
			}
			m.journalAppendLocked(journal.TypeCheckpoint, j.id, rec)
			m.notifySubsLocked(j, "checkpoint")
			m.mu.Unlock()
		},
		// Exact resumed-step accounting: each partition reports the windows
		// its final successful attempt restored rather than re-ran — whether
		// from the crash-recovery blob above or a mid-run failover snapshot.
		OnResume: func(preserved int) {
			m.met.walkResumed.Add(int64(preserved))
			m.mu.Lock()
			j.progress.ResumedSteps += preserved
			m.notifySubsLocked(j, "checkpoint")
			m.mu.Unlock()
		},
	}

	finals, err := func() (finals [][]byte, err error) {
		// The local-failover path draws walker seeds outside the engine's
		// per-walker panic guard; a panicking crawl client must fail this
		// job, not the daemon.
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("service: job %s: %v", j.id, r)
			}
		}()
		return dist.Run(ctx, opts, asns)
	}()

	if err != nil {
		// Salvage the fleet's last synchronized progress as the partial
		// result (a canceled local run keeps its partial merge the same way).
		lastMu.Lock()
		lc := lastCombined
		lastMu.Unlock()
		var res *core.Result
		var multiRes *core.MultiResult
		if lc != nil {
			res, multiRes, _ = decodeMerged(lc, multi)
		}
		if multi {
			m.settleMulti(j, multiRes, err)
		} else {
			m.settle(j, res, err)
		}
		return
	}
	res, multiRes, err := mergeFinals(finals, multi)
	if multi {
		m.settleMulti(j, multiRes, err)
	} else {
		m.settle(j, res, err)
	}
}

// sliceResume splits a journaled full-ensemble snapshot into per-partition
// resume blobs, reporting the snapshot's checkpoint target. On any failure
// the assignments are left with no resume state.
func sliceResume(asns []*dist.Assignment, snap []byte, multi bool) (int, bool) {
	clear := func() {
		for _, asn := range asns {
			asn.Resume = nil
		}
	}
	if multi {
		st, err := core.DecodeMultiEnsembleState(snap)
		if err != nil {
			return 0, false
		}
		for _, asn := range asns {
			sl, err := st.Slice(asn.Lo, asn.Hi)
			if err != nil {
				clear()
				return 0, false
			}
			asn.Resume = sl.Encode()
		}
		return st.WindowsDone, true
	}
	st, err := core.DecodeEnsembleState(snap)
	if err != nil {
		return 0, false
	}
	for _, asn := range asns {
		sl, err := st.Slice(asn.Lo, asn.Hi)
		if err != nil {
			clear()
			return 0, false
		}
		asn.Resume = sl.Encode()
	}
	return st.WindowsDone, true
}

// decodeMerged decodes a combined full-ensemble state and computes its
// merged result (one of the two returns is set, per multi).
func decodeMerged(blob []byte, multi bool) (*core.Result, *core.MultiResult, error) {
	if multi {
		st, err := core.DecodeMultiEnsembleState(blob)
		if err != nil {
			return nil, nil, err
		}
		res, err := st.MergedResult()
		return nil, res, err
	}
	st, err := core.DecodeEnsembleState(blob)
	if err != nil {
		return nil, nil, err
	}
	res, err := st.MergedResult()
	return res, nil, err
}

// mergeFinals combines the per-partition terminal states into the job's
// result — the same bytes a local run of the full ensemble produces.
func mergeFinals(finals [][]byte, multi bool) (*core.Result, *core.MultiResult, error) {
	if multi {
		parts := make([]*core.MultiEnsembleState, len(finals))
		for i, b := range finals {
			st, err := core.DecodeMultiEnsembleState(b)
			if err != nil {
				return nil, nil, fmt.Errorf("service: partition %d final state: %w", i, err)
			}
			parts[i] = st
		}
		combined, err := core.CombineMultiPartitionStates(parts)
		if err != nil {
			return nil, nil, err
		}
		res, err := combined.MergedResult()
		return nil, res, err
	}
	parts := make([]*core.EnsembleState, len(finals))
	for i, b := range finals {
		st, err := core.DecodeEnsembleState(b)
		if err != nil {
			return nil, nil, fmt.Errorf("service: partition %d final state: %w", i, err)
		}
		parts[i] = st
	}
	combined, err := core.CombinePartitionStates(parts)
	if err != nil {
		return nil, nil, err
	}
	res, err := combined.MergedResult()
	return res, nil, err
}
