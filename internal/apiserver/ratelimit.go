package apiserver

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// TokenBucket is a concurrency-safe token bucket: it holds up to `burst`
// tokens and refills at `qps` tokens per second. Wait blocks until a token
// is available, so a bucket-fronted server delays requests instead of
// rejecting them — the behavior of a politeness-limited OSN API, which is
// what crawl experiments want to model (the crawl client treats non-200
// responses as fatal, and a real crawler throttles rather than drops).
type TokenBucket struct {
	mu     sync.Mutex
	qps    float64
	burst  float64
	tokens float64
	last   time.Time
}

// NewTokenBucket creates a bucket refilling at qps tokens/second with the
// given burst capacity (values < 1 are clamped to 1). The bucket starts
// full. qps must be positive.
func NewTokenBucket(qps float64, burst int) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{
		qps:    qps,
		burst:  float64(burst),
		tokens: float64(burst),
		last:   time.Now(),
	}
}

// Wait blocks until one token is available and consumes it.
func (tb *TokenBucket) Wait() { tb.WaitContext(context.Background()) }

// WaitContext is Wait with an escape hatch: it reports whether a token was
// obtained, returning false as soon as ctx is done. An abandoned wait
// refunds its reservation, so disconnected clients do not eat into the
// throughput of live ones.
func (tb *TokenBucket) WaitContext(ctx context.Context) bool {
	d := tb.reserve()
	if d <= 0 {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		tb.refund()
		return false
	}
}

// refund returns one reserved token to the bucket (capped at burst).
func (tb *TokenBucket) refund() {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.tokens++
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
}

// reserve consumes one token and returns how long the caller must sleep
// before acting on it. The token balance may go negative: each waiter under
// the lock reserves the next future token, so concurrent waiters are serviced
// at the steady qps rate rather than stampeding on every refill.
func (tb *TokenBucket) reserve() time.Duration {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := time.Now()
	tb.tokens += now.Sub(tb.last).Seconds() * tb.qps
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	tb.last = now
	tb.tokens--
	if tb.tokens >= 0 {
		return 0
	}
	return time.Duration(-tb.tokens / tb.qps * float64(time.Second))
}

// RateLimit wraps a handler with a shared token bucket: each request waits
// for a token before being served, capping sustained throughput at qps with
// the given burst allowance. qps <= 0 disables limiting and returns next
// unchanged. The bucket is shared across all clients, modeling a per-API
// (not per-client) politeness limit.
func RateLimit(next http.Handler, qps float64, burst int) http.Handler {
	return RateLimitObserved(next, qps, burst, nil)
}

// RateLimitObserved is RateLimit with a rejection hook: rejected is invoked
// (when non-nil) each time a throttled client gives up before obtaining a
// token — graphletd counts these into its metrics registry.
func RateLimitObserved(next http.Handler, qps float64, burst int, rejected func()) http.Handler {
	if qps <= 0 {
		return next
	}
	tb := NewTokenBucket(qps, burst)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// A client that disconnects while throttled stops waiting and gets
		// its reservation back instead of holding a goroutine asleep.
		if !tb.WaitContext(r.Context()) {
			if rejected != nil {
				rejected()
			}
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		next.ServeHTTP(w, r)
	})
}
