package access

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
)

func testGraph() *graph.Graph {
	return graph.FromEdgeList(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
}

func TestGraphClient(t *testing.T) {
	c := NewGraphClient(testGraph())
	if c.Degree(0) != 2 {
		t.Errorf("Degree(0) = %d", c.Degree(0))
	}
	if !c.HasEdge(0, 1) || c.HasEdge(0, 2) {
		t.Error("HasEdge wrong")
	}
	ns := c.Neighbors(1)
	if len(ns) != 2 || ns[0] != 0 || ns[1] != 2 {
		t.Errorf("Neighbors(1) = %v", ns)
	}
	if c.Neighbor(1, 1) != 2 {
		t.Errorf("Neighbor(1,1) = %d", c.Neighbor(1, 1))
	}
	rng := rand.New(rand.NewSource(1))
	v := c.RandomNode(rng)
	if v < 0 || v > 3 {
		t.Errorf("RandomNode = %d", v)
	}
}

func TestCountingStats(t *testing.T) {
	c := NewCounting(NewGraphClient(testGraph()), 4)
	c.Degree(0)
	c.Degree(0)
	c.Neighbors(1)
	c.Neighbor(2, 0)
	c.HasEdge(0, 1)
	st := c.Stats()
	if st.DegreeCalls != 2 || st.NeighborCalls != 2 || st.EdgeProbes != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.UniqueNodes != 3 { // nodes 0, 1, 2 touched
		t.Errorf("unique = %d, want 3", st.UniqueNodes)
	}
	c.Reset()
	if s := c.Stats(); s != (Stats{}) {
		t.Errorf("after reset: %+v", s)
	}
}

// TestCountingConcurrent hammers the counter from many goroutines; the
// counts must be exact (atomics) and the race detector must stay quiet.
func TestCountingConcurrent(t *testing.T) {
	c := NewCounting(NewGraphClient(testGraph()), 4)
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Degree(int32(j % 4))
			}
		}(i)
	}
	wg.Wait()
	st := c.Stats()
	if st.DegreeCalls != goroutines*per {
		t.Errorf("degree calls = %d, want %d", st.DegreeCalls, goroutines*per)
	}
	if st.UniqueNodes != 4 {
		t.Errorf("unique = %d, want 4", st.UniqueNodes)
	}
}

func TestDelayedAddsLatency(t *testing.T) {
	const lat = 2 * time.Millisecond
	c := NewDelayed(NewGraphClient(testGraph()), lat)
	start := time.Now()
	const calls = 10
	for i := 0; i < calls; i++ {
		c.Degree(0)
	}
	if elapsed := time.Since(start); elapsed < calls*lat {
		t.Errorf("elapsed %v, want >= %v", elapsed, calls*lat)
	}
	// Results must pass through unchanged.
	if c.Degree(0) != 2 || !c.HasEdge(0, 1) || c.Neighbor(0, 0) != 1 {
		t.Error("delayed client corrupted results")
	}
	if len(c.Neighbors(0)) != 2 {
		t.Error("delayed Neighbors wrong")
	}
	rng := rand.New(rand.NewSource(1))
	if v := c.RandomNode(rng); v < 0 || v > 3 {
		t.Errorf("RandomNode = %d", v)
	}
}

func TestDelayedZeroLatency(t *testing.T) {
	c := NewDelayed(NewGraphClient(testGraph()), 0)
	start := time.Now()
	for i := 0; i < 1000; i++ {
		c.Degree(0)
	}
	if time.Since(start) > time.Second {
		t.Error("zero latency client too slow")
	}
}
