// Command graphlet-exact enumerates exact graphlet counts of an edge-list
// graph with the parallel ESU algorithm (ground-truth tool).
//
// Usage:
//
//	graphlet-exact -graph graph.txt [-format auto] [-k 4]
//
// The input is a text edge list or a .gcsr binary CSR file (see
// cmd/graphlet-pack), detected automatically.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	graphletrw "repro"
)

func main() {
	path := flag.String("graph", "", "graph file, edge list or .gcsr (required)")
	format := flag.String("format", "auto", "input format: auto|edgelist|gcsr")
	k := flag.Int("k", 4, "graphlet size (3..5)")
	flag.Parse()
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}
	g, err := graphletrw.OpenGraph(*path, *format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphlet-exact:", err)
		os.Exit(1)
	}
	lcc, _ := graphletrw.LargestComponent(g)
	fmt.Printf("graph: %d nodes, %d edges\n", lcc.NumNodes(), lcc.NumEdges())

	start := time.Now()
	counts := graphletrw.ExactCounts(lcc, *k)
	elapsed := time.Since(start)

	var total int64
	for _, c := range counts {
		total += c
	}
	fmt.Printf("enumerated %d connected %d-node subgraphs in %s\n\n", total, *k, elapsed.Round(time.Millisecond))
	fmt.Printf("%-22s %16s %14s\n", "graphlet", "count", "concentration")
	for i, gl := range graphletrw.Catalog(*k) {
		conc := 0.0
		if total > 0 {
			conc = float64(counts[i]) / float64(total)
		}
		fmt.Printf("g%d_%-3d %-15s %16d %14.8f\n", *k, gl.ID, gl.Name, counts[i], conc)
	}
	if *k == 3 {
		fmt.Printf("\nglobal clustering coefficient: %.6f\n", graphletrw.ClusteringCoefficient(lcc))
	}
}
