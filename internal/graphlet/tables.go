package graphlet

import (
	"fmt"
	"sort"
)

// Paper tables of α/2 values, used both to order the catalog by paper ID and
// as the ground truth for the reproduction tests of Tables 2 and 3.

// PaperTable2Three holds α^3_i/2 for the 3-node graphlets (wedge, triangle)
// under SRW(1), SRW(2), SRW(3); indexed [d][i], d = 1..3, i = paper ID - 1.
var PaperTable2Three = map[int][]int64{
	1: {1, 3},
	2: {1, 3},
	// For d = k = 3 the walk is on G(3) and l = 1: each graphlet is its own
	// single state, so α = 1 (the paper prints α/2 = 1/2).
}

// PaperTable2ThreeAlpha holds the full α (not halved), covering the d = 3
// fractional row of Table 2.
var PaperTable2ThreeAlpha = map[int][]int64{
	1: {2, 6},
	2: {2, 6},
	3: {1, 1},
}

// PaperTable2Four holds α^4_i/2 for the 4-node graphlets in paper order
// (4-path, 3-star, cycle, tailed-triangle, chordal-cycle, clique) under
// SRW(1), SRW(2), SRW(3).
var PaperTable2Four = map[int][]int64{
	1: {1, 0, 4, 2, 6, 12},
	2: {1, 3, 4, 5, 12, 24},
	3: {1, 3, 6, 3, 6, 6},
}

// PaperTable3Five holds α^5_i/2 for the 21 5-node graphlets in paper order
// under SRW(1)..SRW(4), exactly as printed in Table 3 of the paper.
//
// NOTE (suspected erratum in the paper): the SRW(4) row disagrees with the
// paper's own Appendix B closed form α = |S|·(|S|−1) (S = set of connected
// 4-node induced subgraphs of the graphlet) for exactly the five graphlets in
// Table3SRW4Errata, where the printed value is twice the combinatorially
// correct one (e.g. the banner has |S| = 4, so α/2 = 6, but the table prints
// 12). This repository uses the correct values (ComputedTable3) in the
// estimator — verified empirically by the estimator-unbiasedness tests — and
// flags the discrepancy when reproducing Table 3.
var PaperTable3Five = map[int][]int64{
	1: {1, 0, 0, 1, 2, 0, 5, 2, 2, 4, 4, 6, 7, 6, 6, 10, 14, 18, 24, 36, 60},
	2: {1, 2, 12, 5, 4, 16, 5, 6, 24, 24, 12, 18, 15, 54, 36, 42, 34, 82, 76, 144, 240},
	3: {1, 5, 24, 8, 5, 24, 5, 16, 30, 24, 16, 63, 26, 63, 30, 43, 63, 63, 90, 90, 90},
	4: {1, 3, 6, 3, 3, 6, 10, 12, 12, 12, 12, 10, 10, 10, 12, 10, 10, 10, 10, 10, 10},
}

// Table3SRW4Errata lists the paper IDs whose printed SRW(4) α/2 in Table 3 is
// exactly twice the value implied by the paper's own Appendix B formula.
var Table3SRW4Errata = []int{8, 9, 10, 11, 15}

// paperOrder returns a permutation order such that tmp[order[i]] is the
// graphlet with paper ID i+1.
func paperOrder(k int, tmp []Graphlet) []int {
	switch k {
	case 3:
		return orderByDescriptors(tmp, [][2]interface{}{
			{2, []int{1, 1, 2}}, // wedge
			{3, []int{2, 2, 2}}, // triangle
		})
	case 4:
		return orderByDescriptors(tmp, [][2]interface{}{
			{3, []int{1, 1, 2, 2}}, // 4-path
			{3, []int{1, 1, 1, 3}}, // 3-star
			{4, []int{2, 2, 2, 2}}, // 4-cycle
			{4, []int{1, 2, 2, 3}}, // tailed triangle
			{5, []int{2, 2, 3, 3}}, // chordal cycle (diamond)
			{6, []int{3, 3, 3, 3}}, // 4-clique
		})
	case 5:
		return orderByAlphaTuples(tmp)
	}
	panic("graphlet: paperOrder: bad k")
}

func orderByDescriptors(tmp []Graphlet, descs [][2]interface{}) []int {
	if len(tmp) != len(descs) {
		panic(fmt.Sprintf("graphlet: catalog size %d != descriptor count %d", len(tmp), len(descs)))
	}
	order := make([]int, len(descs))
	for pi, d := range descs {
		edges := d[0].(int)
		seq := d[1].([]int)
		found := -1
		for ti := range tmp {
			if tmp[ti].Edges == edges && equalInts(tmp[ti].DegSeq, seq) {
				found = ti
				break
			}
		}
		if found < 0 {
			panic(fmt.Sprintf("graphlet: no catalog entry with %d edges and degrees %v", edges, seq))
		}
		order[pi] = found
	}
	return order
}

// orderByAlphaTuples matches each 5-node graphlet's (α_SRW1, α_SRW2, α_SRW3)
// tuple to the corresponding column of the paper's Table 3. All 21 columns
// are distinct already on those three rows, so the matching is a bijection;
// any failure indicates a bug in the α computation and panics at init time.
// The SRW(4) row is not used for matching because of the suspected errata
// documented at PaperTable3Five.
func orderByAlphaTuples(tmp []Graphlet) []int {
	if len(tmp) != 21 {
		panic(fmt.Sprintf("graphlet: expected 21 five-node graphlets, got %d", len(tmp)))
	}
	order := make([]int, 21)
	usedT := make([]bool, 21)
	for pi := 0; pi < 21; pi++ {
		found := -1
		for ti := range tmp {
			if usedT[ti] {
				continue
			}
			match := true
			for d := 1; d <= 3; d++ {
				if tmp[ti].Alpha[d] != 2*PaperTable3Five[d][pi] {
					match = false
					break
				}
			}
			if match {
				found = ti
				break
			}
		}
		if found < 0 {
			panic(fmt.Sprintf("graphlet: no 5-node graphlet matches Table 3 column %d", pi+1))
		}
		usedT[found] = true
		order[pi] = found
	}
	return order
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// graphletName returns the conventional name for g^k_id, falling back to a
// generic label keyed by size, edge count and degree sequence.
func graphletName(k, id int, g *Graphlet) string {
	switch k {
	case 3:
		return [...]string{"wedge", "triangle"}[id-1]
	case 4:
		return [...]string{"4-path", "3-star", "4-cycle", "tailed-triangle", "chordal-cycle", "4-clique"}[id-1]
	case 5:
		if n, ok := fiveNames[nameKey(g)]; ok {
			return n
		}
		return fmt.Sprintf("g5-%d(e=%d,deg=%v)", id, g.Edges, g.DegSeq)
	}
	return fmt.Sprintf("g%d-%d", k, id)
}

// nameKey distinguishes 5-node graphlets by edge count, degree sequence and
// triangle count (the only pair sharing edges+degrees — tadpole vs banner —
// differs in triangles).
func nameKey(g *Graphlet) string {
	tri := 0
	for i := 0; i < g.K; i++ {
		for j := i + 1; j < g.K; j++ {
			for l := j + 1; l < g.K; l++ {
				if g.Adj[i][j] && g.Adj[j][l] && g.Adj[i][l] {
					tri++
				}
			}
		}
	}
	seq := make([]int, len(g.DegSeq))
	copy(seq, g.DegSeq)
	sort.Ints(seq)
	return fmt.Sprintf("e%d-d%v-t%d", g.Edges, seq, tri)
}

// fiveNames holds the conventional names for 5-node graphlets that have one;
// the rest fall back to generic descriptor labels.
var fiveNames = map[string]string{
	"e4-d[1 1 2 2 2]-t0":   "5-path",
	"e4-d[1 1 1 1 4]-t0":   "4-star",
	"e4-d[1 1 1 2 3]-t0":   "fork",
	"e5-d[1 1 2 3 3]-t1":   "bull",
	"e5-d[1 2 2 2 3]-t1":   "tadpole",
	"e5-d[1 2 2 2 3]-t0":   "banner",
	"e5-d[1 1 2 2 4]-t1":   "cricket",
	"e5-d[2 2 2 2 2]-t0":   "5-cycle",
	"e6-d[2 2 2 2 4]-t2":   "bowtie",
	"e6-d[2 2 2 3 3]-t1":   "house",
	"e6-d[1 2 2 3 4]-t2":   "dart",
	"e6-d[1 2 2 3 3]-t1":   "cross",
	"e7-d[1 3 3 3 4]-t4":   "kite",
	"e7-d[2 2 3 3 4]-t3":   "gem",
	"e8-d[3 3 3 3 4]-t4":   "wheel",
	"e9-d[3 3 4 4 4]-t7":   "k5-minus-edge",
	"e10-d[4 4 4 4 4]-t10": "5-clique",
}
