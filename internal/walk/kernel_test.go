package walk

import (
	"math/rand"
	"testing"

	"repro/internal/access"
	"repro/internal/gen"
	"repro/internal/graph"
)

// The kernel's correctness contract: for every state, the merge-based kernel
// must reproduce the naive §5 materialization (referenceNeighbors) exactly —
// same elements in the same positions, because RNG draws index into the
// canonical order and estimates are required to stay byte-identical. The test
// sweeps random graphs of three models and d ∈ {3, 4, 5}, exercising all
// three kernel paths: the counting scan (StateDegree), the materializing scan
// (neighbors), and the per-index partial scan (nthNeighbor, which also covers
// the d=3 closed-form group counts and the two-pointer nth2 select).
func TestKernelMatchesReferenceOrder(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"ba":       gen.BarabasiAlbert(40, 2, 101),
		"hk":       gen.HolmeKim(40, 3, 0.5, 102),
		"lollipop": gen.Lollipop(7, 5),
	}
	rng := rand.New(rand.NewSource(103))
	for name, g := range graphs {
		c := access.NewGraphClient(g)
		for d := 3; d <= MaxD; d++ {
			sp := newSpaceD(c, d)
			// Attempt-bounded: small graphs may not have 60 distinct
			// reachable states for large d.
			states := map[State]bool{}
			for i := 0; i < 500 && len(states) < 60; i++ {
				states[sp.RandomState(rng)] = true
			}
			for st := range states {
				want := referenceNeighbors(c, st)
				if got := sp.StateDegree(st); got != len(want) {
					t.Fatalf("%s d=%d %v: StateDegree %d, want %d", name, d, st, got, len(want))
				}
				got := sp.neighbors(st)
				if len(got) != len(want) {
					t.Fatalf("%s d=%d %v: %d neighbors, want %d", name, d, st, len(got), len(want))
				}
				fi := sp.infoOf(st)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s d=%d %v: neighbors()[%d] = %v, want %v (order must match)",
							name, d, st, i, got[i], want[i])
					}
					if nth := sp.nthNeighbor(st, fi, int32(i)); nth != want[i] {
						t.Fatalf("%s d=%d %v: nthNeighbor(%d) = %v, want %v",
							name, d, st, i, nth, want[i])
					}
				}
			}
		}
	}
}

// The kernel's adjacency masks must agree with the client's HasEdge — the
// core classification layer substitutes them for edge probes.
func TestStateAdjMatchesHasEdge(t *testing.T) {
	g := gen.BarabasiAlbert(40, 2, 104)
	c := access.NewGraphClient(g)
	rng := rand.New(rand.NewSource(105))
	for d := 2; d <= MaxD; d++ {
		sp := NewSpace(c, d)
		for n := 0; n < 40; n++ {
			st := sp.RandomState(rng)
			adj := sp.StateAdj(st)
			for i := 0; i < st.Len(); i++ {
				for j := 0; j < st.Len(); j++ {
					want := i != j && c.HasEdge(st.Node(i), st.Node(j))
					if got := adj[i]&(1<<uint(j)) != 0; got != want {
						t.Fatalf("d=%d %v: adj[%d][%d] = %v, want %v", d, st, i, j, got, want)
					}
				}
			}
		}
	}
}

// A crawl-style client without the CommonCounter capability must take the
// generic merge for d=3 group counts and still agree with the closed form.
func TestKernelWithoutCommonCounter(t *testing.T) {
	g := gen.BarabasiAlbert(40, 2, 106)
	free := access.NewGraphClient(g)
	counted := access.NewCounting(free, g.NumNodes()) // does not implement CommonCounter
	if _, ok := interface{}(counted).(access.CommonCounter); ok {
		t.Fatal("Counting unexpectedly implements CommonCounter; test premise broken")
	}
	rng := rand.New(rand.NewSource(107))
	spFree := newSpaceD(free, 3)
	spCrawl := newSpaceD(counted, 3)
	if spFree.cc == nil {
		t.Fatal("GraphClient should provide CommonCounter")
	}
	if spCrawl.cc != nil {
		t.Fatal("Counting client must not provide CommonCounter")
	}
	for n := 0; n < 60; n++ {
		st := spFree.RandomState(rng)
		if got, want := spCrawl.StateDegree(st), spFree.StateDegree(st); got != want {
			t.Fatalf("%v: merge count %d != closed-form count %d", st, got, want)
		}
	}
}
