package kernel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCosineBasics(t *testing.T) {
	if c := Cosine([]float64{1, 0}, []float64{1, 0}); math.Abs(c-1) > 1e-12 {
		t.Errorf("identical vectors: %f", c)
	}
	if c := Cosine([]float64{1, 0}, []float64{0, 1}); c != 0 {
		t.Errorf("orthogonal vectors: %f", c)
	}
	if c := Cosine([]float64{0, 0}, []float64{1, 1}); c != 0 {
		t.Errorf("zero vector: %f", c)
	}
	// Scale invariance.
	a := []float64{0.2, 0.5, 0.3}
	b := []float64{0.4, 1.0, 0.6}
	if c := Cosine(a, b); math.Abs(c-1) > 1e-12 {
		t.Errorf("proportional vectors: %f", c)
	}
}

func TestCosinePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Cosine([]float64{1}, []float64{1, 2})
}

// Property: cosine is symmetric and within [-1, 1].
func TestCosineProperty(t *testing.T) {
	f := func(a, b [4]float64) bool {
		x, y := a[:], b[:]
		for i := range x {
			x[i] = clamp(x[i])
			y[i] = clamp(y[i])
		}
		c1, c2 := Cosine(x, y), Cosine(y, x)
		return c1 == c2 && c1 >= -1.0000001 && c1 <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func clamp(v float64) float64 {
	// Bound quick-generated magnitudes to avoid float overflow in dot
	// products; concentration vectors are in [0,1] anyway.
	if v != v || v > 1e6 || v < -1e6 {
		return 1
	}
	return v
}

func TestGram(t *testing.T) {
	vs := [][]float64{{1, 0}, {0, 1}, {1, 1}}
	g := Gram(vs)
	if g[0][0] != 1 || g[1][1] != 1 || g[2][2] != 1 {
		t.Error("diagonal should be 1")
	}
	if g[0][1] != 0 {
		t.Error("orthogonal entry should be 0")
	}
	if math.Abs(g[0][2]-1/math.Sqrt2) > 1e-12 {
		t.Errorf("g[0][2] = %f", g[0][2])
	}
	if g[0][2] != g[2][0] {
		t.Error("Gram not symmetric")
	}
}

// The mirrored Gram must match the brute-force full matrix exactly (same
// Cosine calls, so equality is bitwise), with an exact-1 diagonal for nonzero
// vectors and 0 rows/cols for zero vectors.
func TestGramMatchesBruteForce(t *testing.T) {
	vs := [][]float64{{1, 0, 2}, {0, 0, 0}, {0.3, 0.7, 0.1}, {1, 1, 1}, {2, 0, 4}}
	g := Gram(vs)
	for i := range vs {
		for j := range vs {
			want := Cosine(vs[i], vs[j])
			if i == j && !isZero(vs[i]) {
				want = 1 // exact, where Cosine(v,v) may round to 1±ulp
			}
			if g[i][j] != want {
				t.Errorf("g[%d][%d] = %v, want %v", i, j, g[i][j], want)
			}
			if g[i][j] != g[j][i] {
				t.Errorf("asymmetry at (%d,%d)", i, j)
			}
		}
	}
	if g[1][1] != 0 {
		t.Errorf("zero-vector diagonal = %v, want 0", g[1][1])
	}
}
