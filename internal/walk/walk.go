package walk

import "math/rand"

// Walk is a running random walk on a Space — either the simple random walk
// (uniform neighbor each step) or the non-backtracking variant of paper §4.2
// (never return to the immediately previous state unless it is the only
// neighbor).
type Walk struct {
	space Space
	rng   *rand.Rand
	nb    bool

	cur     State
	prev    State
	hasPrev bool
	steps   int64
}

// New starts a walk at a random valid state.
func New(space Space, nb bool, rng *rand.Rand) *Walk {
	return NewAt(space, space.RandomState(rng), nb, rng)
}

// NewAt starts a walk at the given state.
func NewAt(space Space, start State, nb bool, rng *rand.Rand) *Walk {
	return &Walk{space: space, rng: rng, nb: nb, cur: start}
}

// Space returns the walk's state space.
func (w *Walk) Space() Space { return w.space }

// NonBacktracking reports whether the walk avoids its previous state.
func (w *Walk) NonBacktracking() bool { return w.nb }

// Current returns the state the walker is at.
func (w *Walk) Current() State { return w.cur }

// Steps returns the number of transitions taken so far.
func (w *Walk) Steps() int64 { return w.steps }

// Step advances one transition and returns the new state.
func (w *Walk) Step() State {
	var next State
	if w.nb && w.hasPrev {
		next = w.space.RandomNeighborAvoiding(w.cur, w.prev, w.rng)
	} else {
		next = w.space.RandomNeighbor(w.cur, w.rng)
	}
	w.prev = w.cur
	w.hasPrev = true
	w.cur = next
	w.steps++
	return next
}

// Burn advances n transitions without returning intermediate states (burn-in
// toward stationarity).
func (w *Walk) Burn(n int) {
	for i := 0; i < n; i++ {
		w.Step()
	}
}

// WalkState is the exportable position of a Walk: everything the transition
// rule reads besides the Space and the RNG. Together with the RNG stream
// position (walk.Rand), it makes a walk fully serializable — Resume
// reconstructs a walk that continues the original trajectory exactly.
type WalkState struct {
	Cur     State
	Prev    State
	HasPrev bool
	Steps   int64
}

// State exports the walk's current position.
func (w *Walk) State() WalkState {
	return WalkState{Cur: w.cur, Prev: w.prev, HasPrev: w.hasPrev, Steps: w.steps}
}

// Resume reconstructs a walk at the given exported state. The caller is
// responsible for supplying an rng positioned where the original walk's
// stream was (NewRandAt); the space may be a fresh instance — its caches are
// derived state.
func Resume(space Space, st WalkState, nb bool, rng *rand.Rand) *Walk {
	return &Walk{
		space: space, rng: rng, nb: nb,
		cur: st.Cur, prev: st.Prev, hasPrev: st.HasPrev, steps: st.Steps,
	}
}
