package graph

// LargestComponent extracts the largest connected component of g as a new
// graph with densely renumbered nodes, mirroring the paper's preprocessing
// ("we only retain the largest connected component"). It returns the new
// graph and the mapping from new node IDs to original node IDs.
//
// A connected graph is returned as-is with the identity mapping: rebuilding
// it through Builder would produce a byte-identical copy (renumbering
// preserves node order), so skipping the rebuild keeps results unchanged
// while preserving zero-copy storage for graphs opened with OpenMapped.
func LargestComponent(g *Graph) (*Graph, []int32) {
	n := g.NumNodes()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var (
		bestID   int32 = -1
		bestSize       = 0
		queue    []int32
		next     int32
	)
	for s := int32(0); s < int32(n); s++ {
		if comp[s] >= 0 {
			continue
		}
		id := next
		next++
		size := 0
		queue = append(queue[:0], s)
		comp[s] = id
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			size++
			for _, u := range g.Neighbors(v) {
				if comp[u] < 0 {
					comp[u] = id
					queue = append(queue, u)
				}
			}
		}
		if size > bestSize {
			bestSize = size
			bestID = id
		}
	}
	// Connected (or empty) graph: hand it back unchanged with the identity
	// mapping — the single labeling pass doubles as the connectivity check.
	if next <= 1 {
		toOld := make([]int32, n)
		for v := range toOld {
			toOld[v] = int32(v)
		}
		return g, toOld
	}
	// Renumber nodes of the best component.
	newID := make([]int32, n)
	toOld := make([]int32, 0, bestSize)
	for v := 0; v < n; v++ {
		if comp[v] == bestID {
			newID[v] = int32(len(toOld))
			toOld = append(toOld, int32(v))
		} else {
			newID[v] = -1
		}
	}
	b := NewBuilder(bestSize)
	g.Edges(func(u, v int32) bool {
		if comp[u] == bestID && comp[v] == bestID {
			b.AddEdge(newID[u], newID[v])
		}
		return true
	})
	return b.Build(), toOld
}

// IsConnected reports whether g is connected (an empty graph counts as
// connected; a single node does too).
func IsConnected(g *Graph) bool {
	n := g.NumNodes()
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	queue := []int32{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, u := range g.Neighbors(v) {
			if !seen[u] {
				seen[u] = true
				count++
				queue = append(queue, u)
			}
		}
	}
	return count == n
}

// NumComponents returns the number of connected components.
func NumComponents(g *Graph) int {
	n := g.NumNodes()
	seen := make([]bool, n)
	var queue []int32
	comps := 0
	for s := int32(0); s < int32(n); s++ {
		if seen[s] {
			continue
		}
		comps++
		seen[s] = true
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range g.Neighbors(v) {
				if !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	return comps
}
