package core

import (
	"math"
	"testing"

	"repro/internal/access"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphlet"
	"repro/internal/walk"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{K: 2, D: 1},
		{K: 6, D: 1},
		{K: 4, D: 0},
		{K: 4, D: 5},
		{K: 3, D: 1, BurnIn: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
	good := []Config{{K: 3, D: 1}, {K: 5, D: 2, CSS: true, NB: true}, {K: 4, D: 4}}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("config %+v: %v", c, err)
		}
	}
}

func TestMethodName(t *testing.T) {
	cases := map[string]Config{
		"SRW1":      {K: 3, D: 1},
		"SRW2CSS":   {K: 4, D: 2, CSS: true},
		"SRW1CSSNB": {K: 3, D: 1, CSS: true, NB: true},
		"SRW2NB":    {K: 3, D: 2, NB: true},
	}
	for want, cfg := range cases {
		if got := cfg.MethodName(); got != want {
			t.Errorf("MethodName(%+v) = %q, want %q", cfg, got, want)
		}
	}
}

// maxRelErr returns the max relative error over types with non-trivial
// concentration.
func maxRelErr(got, want []float64) float64 {
	worst := 0.0
	for i := range want {
		if want[i] < 1e-9 {
			continue
		}
		re := math.Abs(got[i]-want[i]) / want[i]
		if re > worst {
			worst = re
		}
	}
	return worst
}

// testConvergence runs one long walk and checks the concentration estimate
// approaches the exact value. Long-run convergence is the SLLN guarantee
// (Theorem 1) and validates the full weighting pipeline, including the α
// values where the paper's Table 3 SRW(4) row has errata.
func testConvergence(t *testing.T, g *graph.Graph, k, d int, css, nb bool, steps int, tol float64) {
	t.Helper()
	client := access.NewGraphClient(g)
	cfg := Config{K: k, D: d, CSS: css, NB: nb, Seed: int64(k*100 + d*10 + 1)}
	est, err := NewEstimator(client, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := est.Run(steps)
	if err != nil {
		t.Fatal(err)
	}
	exactCounts := exact.CountESU(g, k)
	want := exact.Concentrations(exactCounts)
	got := res.Concentration()
	if re := maxRelErr(got, want); re > tol {
		t.Errorf("%s k=%d on %v: max rel err %.3f > %.3f\n got %v\nwant %v",
			cfg.MethodName(), k, g, re, tol, got, want)
	}
}

// The convergence test graph: small, connected, non-bipartite, containing
// every 3- and 4-node graphlet type and most 5-node types.
func convGraph() *graph.Graph {
	return gen.HolmeKim(40, 3, 0.6, 42)
}

func TestConvergenceK3(t *testing.T) {
	g := convGraph()
	for d := 1; d <= 3; d++ {
		for _, css := range []bool{false, true} {
			for _, nb := range []bool{false, true} {
				testConvergence(t, g, 3, d, css, nb, 400000, 0.05)
			}
		}
	}
}

func TestConvergenceK4(t *testing.T) {
	g := convGraph()
	// d=1 cannot see 3-stars (alpha=0): skip; tested separately.
	for d := 2; d <= 4; d++ {
		testConvergence(t, g, 4, d, false, false, 400000, 0.10)
	}
	testConvergence(t, g, 4, 2, true, false, 400000, 0.10)
	testConvergence(t, g, 4, 2, false, true, 400000, 0.10)
	testConvergence(t, g, 4, 2, true, true, 400000, 0.10)
	// d=3 with CSS exercises the expensive state-degree oracle.
	testConvergence(t, g, 4, 3, true, false, 200000, 0.15)
}

// TestConvergenceK5 includes d=4 (PSRW for 5-node graphlets), which uses the
// α values where this repository deviates from the published Table 3 (see
// graphlet.Table3SRW4Errata): convergence here is the empirical proof that
// the computed values are the correct ones.
func TestConvergenceK5(t *testing.T) {
	if testing.Short() {
		t.Skip("long convergence test")
	}
	g := gen.HolmeKim(25, 3, 0.7, 7)
	testConvergence(t, g, 5, 2, false, false, 600000, 0.20)
	testConvergence(t, g, 5, 2, true, false, 600000, 0.20)
	testConvergence(t, g, 5, 3, false, false, 600000, 0.25)
	testConvergence(t, g, 5, 4, false, false, 600000, 0.25)
	testConvergence(t, g, 5, 5, false, false, 600000, 0.25)
}

// TestErrataAdjudication runs SRW4 for k=5 on a graph rich in the five
// erratum graphlets and verifies that using the published (doubled) α for
// them would push estimates away from the truth while the computed α
// converges.
func TestErrataAdjudication(t *testing.T) {
	if testing.Short() {
		t.Skip("long convergence test")
	}
	g := gen.HolmeKim(25, 3, 0.7, 7)
	client := access.NewGraphClient(g)
	cfg := Config{K: 5, D: 4, Seed: 99}
	est, err := NewEstimator(client, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := est.Run(600000)
	if err != nil {
		t.Fatal(err)
	}
	want := exact.Concentrations(exact.CountESU(g, 5))
	got := res.Concentration()

	// Rebuild the estimate as if the published α had been used: divide each
	// erratum type's weight by 2 (weight ∝ 1/α).
	published := make([]float64, len(res.Weights))
	copy(published, res.Weights)
	for _, id := range graphlet.Table3SRW4Errata {
		published[id-1] /= 2
	}
	var sum float64
	for _, w := range published {
		sum += w
	}
	for i := range published {
		published[i] /= sum
	}
	for _, id := range graphlet.Table3SRW4Errata {
		i := id - 1
		if want[i] < 1e-6 {
			continue
		}
		eComputed := math.Abs(got[i]-want[i]) / want[i]
		ePublished := math.Abs(published[i]-want[i]) / want[i]
		if ePublished < eComputed {
			t.Errorf("g5_%d (%s): published alpha closer to truth (%.3f vs %.3f) — errata hypothesis wrong?",
				id, graphlet.ByID(5, id).Name, ePublished, eComputed)
		}
		// Published alpha should be off by roughly a factor-2 underestimate.
		if ePublished < 0.25 {
			t.Errorf("g5_%d: published alpha error only %.3f; expected large bias", id, ePublished)
		}
	}
}

// TestStarBlindnessD1: with d=1 and k=4, 3-stars are invisible (α=0); the
// estimator must not crash and must estimate the relative concentration of
// the remaining types (paper §3.2 footnote 3).
func TestStarBlindnessD1(t *testing.T) {
	g := convGraph()
	client := access.NewGraphClient(g)
	est, err := NewEstimator(client, Config{K: 4, D: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := est.Run(400000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weights[1] != 0 {
		t.Fatalf("3-star weight %f, want 0 under SRW1", res.Weights[1])
	}
	// Relative concentrations among visible types should converge.
	counts := exact.CountESU(g, 4)
	var visSum float64
	for i, c := range counts {
		if i != 1 {
			visSum += float64(c)
		}
	}
	got := res.Concentration()
	for i, c := range counts {
		if i == 1 {
			continue
		}
		want := float64(c) / visSum
		if want < 0.001 {
			continue
		}
		if math.Abs(got[i]-want)/want > 0.12 {
			t.Errorf("visible type %d: got %.4f, want %.4f", i+1, got[i], want)
		}
	}
}

// TestCountEstimation verifies Equation 4: with the known 2|R(d)|, count
// estimates converge to exact counts for d = 1 and 2.
func TestCountEstimation(t *testing.T) {
	g := convGraph()
	client := access.NewGraphClient(g)
	for _, d := range []int{1, 2} {
		est, err := NewEstimator(client, Config{K: 3, D: d, Seed: 17})
		if err != nil {
			t.Fatal(err)
		}
		res, err := est.Run(400000)
		if err != nil {
			t.Fatal(err)
		}
		counts := res.Counts(TwoR(g, d))
		want := exact.CountESU(g, 3)
		for i := range want {
			re := math.Abs(counts[i]-float64(want[i])) / float64(want[i])
			if re > 0.08 {
				t.Errorf("d=%d count type %d: got %.1f, want %d (rel err %.3f)",
					d, i+1, counts[i], want[i], re)
			}
		}
	}
}

// TestTwoR verifies the closed forms against the brute-force G(d) size.
func TestTwoR(t *testing.T) {
	for _, g := range []*graph.Graph{gen.PaperFigure1(), gen.BarabasiAlbert(30, 2, 5), gen.Cycle(9)} {
		if got, want := TwoR(g, 1), 2*float64(g.NumEdges()); got != want {
			t.Errorf("TwoR d=1: %f, want %f", got, want)
		}
		// Brute: count adjacent pairs of edges = Σ over nodes C(d,2)... each
		// pair of incident edges is one G(2) edge.
		var want2 float64
		for v := 0; v < g.NumNodes(); v++ {
			d := float64(g.Degree(int32(v)))
			want2 += d * (d - 1) // ordered pairs of incident edges = 2|R2| contribution
		}
		if got := TwoR(g, 2); math.Abs(got-want2) > 1e-9 {
			t.Errorf("TwoR d=2: %f, want %f", got, want2)
		}
	}
	// The paper's Figure 1 example: |R(2)| = 8.
	if got := TwoR(gen.PaperFigure1(), 2); got != 16 {
		t.Errorf("figure-1 2|R(2)| = %f, want 16", got)
	}
}

// TestPaperExampleStationary reproduces the §3.2 worked example: on the
// Figure 1 graph, walking G(2) through states (1,2),(1,3),(3,4) yields
// πe = 1/64 — i.e. π̃e = 2|R(2)|·πe = 16/64 = 1/4 (the inverse-degree
// product of the interior state (1,3), whose degree is 4).
func TestPaperExampleStationary(t *testing.T) {
	g := gen.PaperFigure1()
	client := access.NewGraphClient(g)
	est, err := NewEstimator(client, Config{K: 4, D: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Manually set the window to the example's three states. Node labels in
	// the paper are 1..4, here 0..3. The window lives in the walker layer.
	wk := est.walkers[0]
	wk.reset()
	wk.start()
	wk.win[0] = stateOf2(0, 1)
	wk.win[1] = stateOf2(0, 2)
	wk.win[2] = stateOf2(2, 3)
	wk.degs[0] = wk.space.StateDegree(wk.win[0])
	wk.degs[1] = wk.space.StateDegree(wk.win[1])
	wk.degs[2] = wk.space.StateDegree(wk.win[2])
	wk.ring = 0
	if got := wk.pieTilde(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("pieTilde = %f, want 0.25", got)
	}
}

func TestRunErrors(t *testing.T) {
	g := gen.PaperFigure1()
	client := access.NewGraphClient(g)
	est, _ := NewEstimator(client, Config{K: 3, D: 1, Seed: 1})
	if _, err := est.Run(0); err == nil {
		t.Error("Run(0) should fail")
	}
	if _, err := NewEstimator(client, Config{K: 9, D: 1}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestCheckpoints(t *testing.T) {
	g := convGraph()
	client := access.NewGraphClient(g)
	est, _ := NewEstimator(client, Config{K: 3, D: 1, Seed: 23})
	var steps []int
	_, err := est.RunCheckpoints(1000, 250, func(step int, conc []float64) {
		steps = append(steps, step)
		if len(conc) != 2 {
			t.Fatalf("conc len %d", len(conc))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{250, 500, 750, 1000}
	if len(steps) != len(want) {
		t.Fatalf("checkpoints at %v, want %v", steps, want)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("checkpoints at %v, want %v", steps, want)
		}
	}
}

// TestDeterminism: same seed, same run.
func TestDeterminism(t *testing.T) {
	g := convGraph()
	client := access.NewGraphClient(g)
	run := func() []float64 {
		est, _ := NewEstimator(client, Config{K: 4, D: 2, CSS: true, Seed: 77})
		res, err := est.Run(5000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Concentration()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic: %v vs %v", a, b)
		}
	}
}

// TestCSSEqualsPlainExpectation: on the same seed the CSS and plain
// estimators see the same samples; their estimates differ but both converge.
// Here we check the CSS weight p̃ matches the Table 4 closed forms for
// (k=3, d=1): wedge p̃/2 = 1/d₂ (center), triangle p̃/2 = Σ 1/dᵢ.
func TestCSSMatchesTable4K3(t *testing.T) {
	g := gen.PaperFigure1()
	client := access.NewGraphClient(g)
	est, err := NewEstimator(client, Config{K: 3, D: 1, CSS: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wk := est.walkers[0]
	wk.reset()
	wk.start()

	// Triangle {0,1,2}: degrees 3,2,3 -> p̃ = 2(1/3+1/2+1/3).
	nodes := []int32{0, 1, 2}
	want := 2 * (1.0/3 + 1.0/2 + 1.0/3)
	if got := wk.samplingProbability(nodes); math.Abs(got-want) > 1e-12 {
		t.Errorf("triangle p̃ = %f, want %f", got, want)
	}
	// Wedge {1,0,3}: center 0 (degree 3): only Hamilton path is 1-0-3, both
	// directions -> p̃ = 2·(1/d₀) = 2/3.
	nodes = []int32{0, 1, 3}
	want = 2.0 / 3
	if got := wk.samplingProbability(nodes); math.Abs(got-want) > 1e-12 {
		t.Errorf("wedge p̃ = %f, want %f", got, want)
	}
}

func stateOf2(u, v int32) walk.State { return walk.StateOf(u, v) }
