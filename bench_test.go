package graphletrw

// Root benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (see README.md for the experiment index). The
// benchmarks run the corresponding experiment driver at a reduced budget so
// that `go test -bench=. -benchmem` regenerates every artifact in minutes;
// cmd/experiments runs the same drivers at paper-scale budgets.
//
// Per-method micro-benchmarks (cost of one walk step for each method) follow
// the experiment benchmarks; they quantify the per-step costs behind
// Table 6. BenchmarkParallelWalkers tracks the walker-ensemble scaling
// (ns/step and steps/sec at 1, 2, 4, 8 walkers) across PRs.

import (
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/exact"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/graph"
)

func BenchmarkTable2Alpha(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table2(io.Discard)
	}
}

func BenchmarkTable3Alpha(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table3(io.Discard)
	}
}

func BenchmarkTable4CSS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table4(io.Discard)
	}
}

func BenchmarkTable5Exact(b *testing.B) {
	// Ground truth is disk-cached after the first run; the benchmark
	// measures the (cached) table generation. Delete the cache (or set
	// REPRO_CACHE_DIR) to measure full enumeration.
	for i := 0; i < b.N; i++ {
		experiments.Table5(io.Discard)
	}
}

func BenchmarkFig4(b *testing.B) {
	p := experiments.Quick()
	for i := 0; i < b.N; i++ {
		experiments.Fig4(io.Discard, p)
	}
}

func BenchmarkFig5(b *testing.B) {
	p := experiments.Quick()
	for i := 0; i < b.N; i++ {
		experiments.Fig5(io.Discard, p)
	}
}

func BenchmarkFig6(b *testing.B) {
	p := experiments.Quick()
	for i := 0; i < b.N; i++ {
		experiments.Fig6(io.Discard, p)
	}
}

func BenchmarkTable6Timing(b *testing.B) {
	p := experiments.Quick()
	for i := 0; i < b.N; i++ {
		experiments.Table6(io.Discard, p)
	}
}

func BenchmarkFig7(b *testing.B) {
	p := experiments.Quick()
	for i := 0; i < b.N; i++ {
		experiments.Fig7(io.Discard, p)
	}
}

func BenchmarkFig8(b *testing.B) {
	p := experiments.Quick()
	for i := 0; i < b.N; i++ {
		experiments.Fig8(io.Discard, p)
	}
}

func BenchmarkTable7(b *testing.B) {
	p := experiments.Quick()
	for i := 0; i < b.N; i++ {
		experiments.Table7(io.Discard, p)
	}
}

// --- per-step micro-benchmarks (the costs behind Table 6) ---

func benchGraph() *graph.Graph {
	d, err := datasets.Get("epinion")
	if err != nil {
		panic(err)
	}
	return d.Graph()
}

func benchmarkWalkSteps(b *testing.B, cfg core.Config) {
	g := benchGraph()
	client := access.NewGraphClient(g)
	cfg.Seed = 7
	est, err := core.NewEstimator(client, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := est.Run(b.N); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkStepSRW1(b *testing.B) { benchmarkWalkSteps(b, core.Config{K: 3, D: 1}) }
func BenchmarkStepSRW1CSSNB(b *testing.B) {
	benchmarkWalkSteps(b, core.Config{K: 3, D: 1, CSS: true, NB: true})
}
func BenchmarkStepSRW2K4(b *testing.B)    { benchmarkWalkSteps(b, core.Config{K: 4, D: 2}) }
func BenchmarkStepSRW2CSSK4(b *testing.B) { benchmarkWalkSteps(b, core.Config{K: 4, D: 2, CSS: true}) }
func BenchmarkStepSRW2K5(b *testing.B)    { benchmarkWalkSteps(b, core.Config{K: 5, D: 2}) }
func BenchmarkStepSRW2CSSK5(b *testing.B) { benchmarkWalkSteps(b, core.Config{K: 5, D: 2, CSS: true}) }
func BenchmarkStepSRW3K4(b *testing.B)    { benchmarkWalkSteps(b, core.Config{K: 4, D: 3}) }
func BenchmarkStepSRW3K5(b *testing.B)    { benchmarkWalkSteps(b, core.Config{K: 5, D: 3}) }
func BenchmarkStepSRW4K5(b *testing.B)    { benchmarkWalkSteps(b, core.Config{K: 5, D: 4}) }

// BenchmarkParallelWalkers runs a fixed total step budget through walker
// ensembles of growing size on the benchmark graph (K=4, D=2, CSS — the
// paper's recommended 4-node method) and reports ns/step and steps/sec.
// On multi-core hardware steps/sec should scale near-linearly until the
// core count; the BENCH_*.json trajectory tracks this across PRs.
func BenchmarkParallelWalkers(b *testing.B) {
	g := benchGraph()
	const totalSteps = 20000
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("walkers=%d", w), func(b *testing.B) {
			client := access.NewGraphClient(g)
			cfg := core.Config{K: 4, D: 2, CSS: true, Seed: 7, Walkers: w}
			est, err := core.NewEstimator(client, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if _, err := est.Run(totalSteps); err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start)
			steps := float64(b.N) * totalSteps
			b.ReportMetric(float64(elapsed.Nanoseconds())/steps, "ns/step")
			b.ReportMetric(steps/elapsed.Seconds(), "steps/sec")
		})
	}
}

// --- baseline micro-benchmarks ---

func BenchmarkWedgeSample(b *testing.B) {
	g := benchGraph()
	s := baseline.NewWedgeSampler(g)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	s.Sample(b.N, rng)
}

func BenchmarkPathSample(b *testing.B) {
	g := benchGraph()
	s := baseline.NewPathSampler(g)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	s.Sample(b.N, rng)
}

func BenchmarkWedgeMHRWStep(b *testing.B) {
	g := benchGraph()
	client := access.NewGraphClient(g)
	rng := rand.New(rand.NewSource(1))
	mh := baseline.NewWedgeMHRW(client, rng)
	b.ResetTimer()
	mh.Run(b.N)
}

// --- exact counting benchmarks ---

func BenchmarkExactESU3(b *testing.B) { benchmarkESU(b, 3) }
func BenchmarkExactESU4(b *testing.B) { benchmarkESU(b, 4) }

func benchmarkESU(b *testing.B, k int) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exact.CountESU(g, k)
	}
}

func BenchmarkExactFourNodeFormulas(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exact.FourNodeCounts(g)
	}
}

// --- generator benchmark (dataset construction cost) ---

func BenchmarkGenHolmeKim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gen.HolmeKim(5000, 4, 0.5, int64(i))
	}
}

// Example-style smoke check that the benchmark harness wiring matches the
// experiment index in README.md.
func ExampleConfig() {
	cfg := core.Config{K: 4, D: 2, CSS: true}
	fmt.Println(cfg.MethodName())
	// Output: SRW2CSS
}
