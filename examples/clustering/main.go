// Command clustering shows the restricted-access scenario the paper is
// designed for: estimate the global clustering coefficient of a large
// network through API calls alone, and report how small the crawl footprint
// was. The clustering coefficient follows from the triangle concentration as
// 3c₂/(2c₂+1) (paper §2.1).
package main

import (
	"fmt"

	graphletrw "repro"
	"repro/internal/gen"
)

func main() {
	// A large "OSN" we may only crawl via its API.
	g := gen.BarabasiAlbert(200000, 8, 7)
	lcc, _ := graphletrw.LargestComponent(g)

	// Wrap the API with accounting so we can report the crawl footprint.
	counting := graphletrw.NewCountingClient(graphletrw.NewClient(lcc), lcc.NumNodes())

	const steps = 20000
	res, err := graphletrw.Estimate(counting, graphletrw.Config{
		K: 3, D: 1, CSS: true, NB: true, Seed: 99,
	}, steps)
	if err != nil {
		panic(err)
	}
	conc := res.Concentration()
	c2 := conc[1]
	ccEst := 3 * c2 / (2*c2 + 1)
	ccExact := graphletrw.ClusteringCoefficient(lcc)

	st := counting.Stats()
	fmt.Printf("network: %d nodes, %d edges\n", lcc.NumNodes(), lcc.NumEdges())
	fmt.Printf("walk steps:                %d\n", steps)
	fmt.Printf("triangle concentration:    %.5f (estimated)\n", c2)
	fmt.Printf("clustering coefficient:    %.5f (estimated)  %.5f (exact)\n", ccEst, ccExact)
	fmt.Printf("crawl footprint:           %d unique nodes (%.3f%% of the graph)\n",
		st.UniqueNodes, 100*float64(st.UniqueNodes)/float64(lcc.NumNodes()))
	fmt.Printf("API calls:                 %d neighbor fetches, %d degree lookups, %d edge probes\n",
		st.NeighborCalls, st.DegreeCalls, st.EdgeProbes)
}
