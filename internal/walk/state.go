// Package walk implements random walks on the d-node subgraph relationship
// graph G(d) of a restricted-access graph (paper §2.1, §5). A state is a set
// of d nodes inducing a connected subgraph of G; G(d) joins two states that
// share d-1 nodes (G(1) is G itself). Neighbor generation is on the fly:
// O(1) for d = 1 and d = 2, full materialization for d >= 3, exactly as the
// paper's implementation section prescribes.
//
// The package provides the plain simple random walk (SRW) and the
// non-backtracking variant (NB-SRW, paper §4.2).
package walk

import "fmt"

// MaxD is the largest supported walk order (k-1 for k = 5... plus d = k
// itself for the SRW-on-G(k) baseline, so 5).
const MaxD = 5

// State is a set of up to MaxD nodes inducing a connected subgraph, stored
// sorted ascending. The zero State is empty. State is comparable and usable
// as a map key.
type State struct {
	v [MaxD]int32
	n uint8
}

// StateOf builds a state from the given nodes (sorted internally; duplicates
// are a bug and panic).
func StateOf(nodes ...int32) State {
	if len(nodes) == 0 || len(nodes) > MaxD {
		panic(fmt.Sprintf("walk: StateOf: %d nodes", len(nodes)))
	}
	var s State
	s.n = uint8(len(nodes))
	copy(s.v[:], nodes)
	// Insertion sort (<= 5 elements).
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && s.v[j] < s.v[j-1]; j-- {
			s.v[j], s.v[j-1] = s.v[j-1], s.v[j]
		}
	}
	for i := 1; i < len(nodes); i++ {
		if s.v[i] == s.v[i-1] {
			panic(fmt.Sprintf("walk: StateOf: duplicate node %d", s.v[i]))
		}
	}
	return s
}

// Len returns the number of nodes in the state.
func (s State) Len() int { return int(s.n) }

// Node returns the i-th node (sorted order).
func (s State) Node(i int) int32 { return s.v[i] }

// Nodes appends the state's nodes to dst.
func (s State) Nodes(dst []int32) []int32 { return append(dst, s.v[:s.n]...) }

// Contains reports whether x is one of the state's nodes.
func (s State) Contains(x int32) bool {
	for i := 0; i < int(s.n); i++ {
		if s.v[i] == x {
			return true
		}
	}
	return false
}

// Shared returns the number of nodes shared with t (both sorted: linear
// merge).
func (s State) Shared(t State) int {
	i, j, c := 0, 0, 0
	for i < int(s.n) && j < int(t.n) {
		switch {
		case s.v[i] < t.v[j]:
			i++
		case s.v[i] > t.v[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// ReplaceOne returns the state with old removed and new added.
func (s State) ReplaceOne(old, new int32) State {
	nodes := make([]int32, 0, MaxD)
	for i := 0; i < int(s.n); i++ {
		if s.v[i] != old {
			nodes = append(nodes, s.v[i])
		}
	}
	nodes = append(nodes, new)
	return StateOf(nodes...)
}

// String renders the state as (v1,v2,...).
func (s State) String() string {
	out := "("
	for i := 0; i < int(s.n); i++ {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprint(s.v[i])
	}
	return out + ")"
}
