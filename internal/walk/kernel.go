package walk

import (
	"math"

	"repro/internal/access"
)

// This file is the merge-based G(d) neighbor kernel for d >= 3 (paper §5).
//
// The naive materialization gathers every neighbor of the d-1 retained nodes,
// sorts, dedups, and then re-derives connectivity of rem ∪ {y} for each
// candidate y with ~d² HasEdge probes — per candidate. Almost all of that is
// recomputable-free work:
//
//   - Adjacency rows are already sorted (access.Client contract), so a
//     (d-1)-way sorted merge enumerates the candidates of one dropped node in
//     ascending order without sorting, and produces for free the membership
//     bitmask of each candidate (which retained nodes it neighbors).
//   - The rem-internal adjacency is invariant across candidates: the
//     connected components of the retained set are computed once per
//     (state, dropped-node) pair, and rem ∪ {y} is connected iff y's
//     membership mask intersects every component. Connectivity becomes a
//     handful of AND instructions; the per-candidate HasEdge storm is gone.
//   - Nothing needs materializing: a walk step needs only the state's G(d)
//     degree (one counting scan) and the i-th neighbor of the uniform draw
//     (one partial scan of a single dropped-node group). The kernel caches a
//     compact stateInfo — degree, per-group counts, internal adjacency masks
//     — instead of neighbor *lists*, so the steady state allocates nothing
//     and builds exactly one State per transition.
//
// The canonical neighbor order (dropped nodes in state order, candidates
// ascending within each group) is exactly the order the naive
// gather→sort→dedup emitted, so RNG draw sequences — and therefore estimates
// — are byte-identical to the historical kernel. referenceNeighbors below
// retains the naive implementation as the equivalence oracle for tests.

// AdjMask is the internal adjacency of a state's nodes: bit j of entry i is
// set iff Node(i) and Node(j) are adjacent in G. Entries beyond the state's
// length are zero.
type AdjMask [MaxD]uint8

// stateInfo is the per-state record the kernel caches in place of a
// materialized neighbor list: 3 words instead of O(Σ deg) states.
type stateInfo struct {
	deg int32       // G(d) degree of the state
	cnt [MaxD]int32 // connected candidates per dropped node (group sizes)
	adj AdjMask     // internal adjacency of the state's nodes
}

// infoCacheCap bounds the stateInfo cache. Entries are ~50 bytes, and the
// walk only re-queries states inside the current window plus CSS chain
// states, so a few hundred entries make recomputation rare; past capacity
// the cache evicts by second chance (see infoCache), so states the walk
// keeps touching survive overflow while drive-by states recycle, and
// steady-state inserts never allocate.
const infoCacheCap = 256

// infoOf returns (computing and caching if needed) the kernel record of st.
func (s *spaceD) infoOf(st State) stateInfo {
	if fi, ok := s.info.get(st); ok {
		return fi
	}
	var fi stateInfo
	d := st.Len()
	// Internal adjacency: the only HasEdge probes the kernel issues —
	// d(d-1)/2 per state, not per candidate.
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if s.c.HasEdge(st.Node(i), st.Node(j)) {
				fi.adj[i] |= 1 << uint(j)
				fi.adj[j] |= 1 << uint(i)
			}
		}
	}
	if d == 3 && s.cc != nil {
		s.countGroups3(st, &fi)
	} else {
		var g groupScan
		for xi := 0; xi < d; xi++ {
			g.prepare(s.c, st, xi, fi.adj)
			fi.cnt[xi] = g.count()
			fi.deg += fi.cnt[xi]
		}
	}
	s.info.put(st, fi)
	return fi
}

// countGroups3 is the closed-form group count for d = 3 on clients whose
// access is free (access.CommonCounter): with rem = {a, b} the candidate set
// is N(a) ∪ N(b) when a ~ b and N(a) ∩ N(b) otherwise, so the count follows
// from degrees, one galloping intersection, and the st-member corrections
// read off the internal adjacency masks — no row scan at all. Crawl-style
// clients take the generic merge instead, which charges their Neighbors
// fetches honestly.
func (s *spaceD) countGroups3(st State, fi *stateInfo) {
	for xi := 0; xi < 3; xi++ {
		ia, ib := 0, 1
		switch xi {
		case 0:
			ia, ib = 1, 2
		case 1:
			ia, ib = 0, 2
		}
		a, b := st.Node(ia), st.Node(ib)
		common := int32(s.cc.CommonNeighborCount(a, b))
		xA := fi.adj[xi]&(1<<uint(ia)) != 0 // dropped node ~ a
		xB := fi.adj[xi]&(1<<uint(ib)) != 0 // dropped node ~ b
		var cnt int32
		if fi.adj[ia]&(1<<uint(ib)) != 0 {
			// rem connected: every union member extends it. Union size minus
			// the st members inside it (a and b are, being mutual neighbors;
			// the dropped node is iff it neighbors either).
			cnt = int32(s.c.Degree(a)) + int32(s.c.Degree(b)) - common - 2
			if xA || xB {
				cnt--
			}
		} else {
			// rem disconnected: the candidate must bridge a and b, i.e. lie in
			// the intersection; only the dropped node can be an st member
			// there.
			cnt = common
			if xA && xB {
				cnt--
			}
		}
		fi.cnt[xi] = cnt
		fi.deg += cnt
	}
}

// nthNeighbor returns the i-th neighbor of st in the canonical order. The
// group counts locate the dropped node, so only one group's rows are merged,
// and the scan stops at the candidate — on average half a group.
func (s *spaceD) nthNeighbor(st State, fi stateInfo, i int32) State {
	for xi := 0; xi < st.Len(); xi++ {
		if i < fi.cnt[xi] {
			var g groupScan
			g.prepare(s.c, st, xi, fi.adj)
			return g.nth(i)
		}
		i -= fi.cnt[xi]
	}
	panic("walk: neighbor index out of range")
}

// groupScan is one (state, dropped-node) merge: the sorted rows of the d-1
// retained nodes, their pre-resolved connected components, and the merge
// cursor. It lives on the stack of its caller; nothing escapes.
type groupScan struct {
	st    State
	n     int               // number of retained nodes (d-1)
	rem   [MaxD - 1]int32   // retained nodes, ascending
	rows  [MaxD - 1][]int32 // their sorted adjacency rows
	pos   [MaxD - 1]int     // merge cursor
	comps [MaxD - 1]uint8   // rem components as membership-mask requirements
	nc    int               // number of components
}

// prepare loads the rows and derives the retained set's connected components
// from the state's internal adjacency masks — no graph probes.
func (g *groupScan) prepare(c access.Client, st State, xi int, adj AdjMask) {
	d := st.Len()
	g.st = st
	g.n = d - 1
	// remAdj is adj restricted to the retained nodes, re-indexed to rem
	// positions (st index i maps to rem position i, or i-1 past xi).
	var remAdj [MaxD - 1]uint8
	for p := 0; p < g.n; p++ {
		si := p
		if p >= xi {
			si = p + 1
		}
		g.rem[p] = st.Node(si)
		g.rows[p] = c.Neighbors(g.rem[p])
		g.pos[p] = 0
		m := adj[si] &^ (1 << uint(xi))
		// Compress the mask from st-index space to rem-index space.
		var rm uint8
		for q := 0; q < d; q++ {
			if q == xi || m&(1<<uint(q)) == 0 {
				continue
			}
			rq := q
			if q > xi {
				rq = q - 1
			}
			rm |= 1 << uint(rq)
		}
		remAdj[p] = rm
	}
	// Flood-fill the components. rem ∪ {y} is connected iff y's membership
	// mask intersects every component (y is the only possible bridge).
	g.nc = 0
	var seen uint8
	for p := 0; p < g.n; p++ {
		if seen&(1<<uint(p)) != 0 {
			continue
		}
		comp := uint8(1 << uint(p))
		for {
			next := comp
			for q := 0; q < g.n; q++ {
				if comp&(1<<uint(q)) != 0 {
					next |= remAdj[q]
				}
			}
			if next == comp {
				break
			}
			comp = next
		}
		seen |= comp
		g.comps[g.nc] = comp
		g.nc++
	}
}

// connected reports whether a candidate with the given membership mask keeps
// rem ∪ {y} connected.
func (g *groupScan) connected(mask uint8) bool {
	for i := 0; i < g.nc; i++ {
		if g.comps[i]&mask == 0 {
			return false
		}
	}
	return true
}

// next advances the merge by one distinct candidate, returning it with its
// membership mask, or (_, 0, false) when the rows are exhausted. Candidates
// come out strictly ascending; mask bit p is set iff rem[p] neighbors y.
func (g *groupScan) next() (y int32, mask uint8, ok bool) {
	min := int32(math.MaxInt32)
	live := false
	for p := 0; p < g.n; p++ {
		if g.pos[p] < len(g.rows[p]) {
			if h := g.rows[p][g.pos[p]]; h < min {
				min = h
			}
			live = true
		}
	}
	if !live {
		return 0, 0, false
	}
	for p := 0; p < g.n; p++ {
		if g.pos[p] < len(g.rows[p]) && g.rows[p][g.pos[p]] == min {
			mask |= 1 << uint(p)
			g.pos[p]++
		}
	}
	return min, mask, true
}

// count scans the whole group and returns the number of connected candidates
// — the degree contribution of this dropped node. No states are built.
func (g *groupScan) count() int32 {
	var cnt int32
	for {
		y, mask, ok := g.next()
		if !ok {
			return cnt
		}
		if g.st.Contains(y) {
			continue
		}
		if g.connected(mask) {
			cnt++
		}
	}
}

// nth scans to the r-th (0-based) connected candidate and builds just that
// neighbor state. r must be below the group's count.
func (g *groupScan) nth(r int32) State {
	if g.n == 2 {
		return g.nth2(r)
	}
	for {
		y, mask, ok := g.next()
		if !ok {
			panic("walk: group exhausted before the selected neighbor")
		}
		if g.st.Contains(y) {
			continue
		}
		if !g.connected(mask) {
			continue
		}
		if r == 0 {
			return stateInsert(g.rem[:g.n], y)
		}
		r--
	}
}

// nth2 is nth for the two-row case (d = 3), a direct two-pointer merge: with
// one rem component any candidate qualifies, with two the candidate must sit
// in both rows.
func (g *groupScan) nth2(r int32) State {
	a, b := g.rows[0], g.rows[1]
	needBoth := g.nc == 2
	i, j := g.pos[0], g.pos[1]
	for {
		var y int32
		var mask uint8
		switch {
		case i < len(a) && (j >= len(b) || a[i] < b[j]):
			y, mask = a[i], 1
			i++
		case j < len(b) && (i >= len(a) || b[j] < a[i]):
			y, mask = b[j], 2
			j++
		case i < len(a):
			y, mask = a[i], 3
			i++
			j++
		default:
			panic("walk: group exhausted before the selected neighbor")
		}
		if needBoth && mask != 3 {
			continue
		}
		if g.st.Contains(y) {
			continue
		}
		if r == 0 {
			return stateInsert(g.rem[:g.n], y)
		}
		r--
	}
}

// appendGroup scans the whole group appending every connected neighbor state
// to dst. Only the list-materializing paths (tests, the neighbors oracle)
// use it; walk transitions never do.
func (g *groupScan) appendGroup(dst []State) []State {
	for {
		y, mask, ok := g.next()
		if !ok {
			return dst
		}
		if g.st.Contains(y) {
			continue
		}
		if g.connected(mask) {
			dst = append(dst, stateInsert(g.rem[:g.n], y))
		}
	}
}

// stateInsert builds the state rem ∪ {y} directly: rem is already sorted, so
// y is spliced into place without the re-sort (and escape) of StateOf.
func stateInsert(rem []int32, y int32) State {
	var s State
	s.n = uint8(len(rem) + 1)
	i := 0
	for i < len(rem) && rem[i] < y {
		s.v[i] = rem[i]
		i++
	}
	s.v[i] = y
	for ; i < len(rem); i++ {
		s.v[i+1] = rem[i]
	}
	return s
}
