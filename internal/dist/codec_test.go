package dist

import (
	"bufio"
	"bytes"
	"io"
	"reflect"
	"testing"

	"repro/internal/core"
)

func sampleAssignments() []*Assignment {
	return []*Assignment{
		{
			Graph: "ba-1m",
			Meta:  GraphMeta{Nodes: 200_000, Edges: 999_975, MaxDegree: 2781},
			Single: &core.Config{
				K: 4, D: 2, CSS: true, NB: true, RecoverStars: false,
				BurnIn: 10, Walkers: 6, Seed: -7,
			},
			Budget: 20_000, Every: 500, Lo: 2, Hi: 4,
		},
		{
			Graph: "g",
			Meta:  GraphMeta{Nodes: 10, Edges: 9, MaxDegree: 3},
			Multi: &core.MultiConfig{
				Sizes: []int{3, 4, 5}, D: 2, CSS: true, Walkers: 4, Seed: 41,
			},
			Budget: 2000, Every: 500, Lo: 0, Hi: 4,
			Resume: []byte("opaque-state-blob"),
		},
		{
			Graph:  "tiny",
			Single: &core.Config{K: 3, D: 1, Seed: 17},
			Budget: 1, Every: 0, Lo: 0, Hi: 1,
		},
	}
}

func TestAssignmentRoundTrip(t *testing.T) {
	for _, a := range sampleAssignments() {
		got, err := DecodeAssignment(a.Encode())
		if err != nil {
			t.Fatalf("%s: %v", a.Graph, err)
		}
		if !reflect.DeepEqual(got, a) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", a.Graph, got, a)
		}
	}
}

func TestAssignmentRejects(t *testing.T) {
	base := *sampleAssignments()[0]
	for name, mutate := range map[string]func(*Assignment){
		"no graph":         func(a *Assignment) { a.Graph = "" },
		"no config":        func(a *Assignment) { a.Single = nil },
		"zero budget":      func(a *Assignment) { a.Budget = 0 },
		"negative every":   func(a *Assignment) { a.Every = -1 },
		"negative lo":      func(a *Assignment) { a.Lo = -1 },
		"hi past walkers":  func(a *Assignment) { a.Hi = 7 },
		"empty partition":  func(a *Assignment) { a.Lo, a.Hi = 3, 3 },
		"inverted bounds":  func(a *Assignment) { a.Lo, a.Hi = 4, 2 },
		"both configs set": func(a *Assignment) { a.Multi = &core.MultiConfig{Sizes: []int{3}} },
	} {
		a := base
		mutate(&a)
		if err := a.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", name)
		}
		if a.Single != nil || a.Multi != nil {
			if (a.Single == nil) != (a.Multi == nil) { // encodable shape
				if _, err := DecodeAssignment(a.Encode()); err == nil {
					t.Errorf("%s: DecodeAssignment accepted", name)
				}
			}
		}
	}

	enc := base.Encode()
	if _, err := DecodeAssignment(enc[:len(enc)-1]); err == nil {
		t.Error("truncated assignment accepted")
	}
	if _, err := DecodeAssignment(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 'X'
	if _, err := DecodeAssignment(bad); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	frames := []*Frame{
		{Kind: FrameSnapshot, Target: 500, State: []byte{1, 2, 3}},
		{Kind: FrameFinal, Target: 20_000, State: bytes.Repeat([]byte{9}, 1000)},
		{Kind: FrameError, Msg: "walker 3: neighbor fetch failed"},
	}
	for _, f := range frames {
		got, err := DecodeFrame(f.Encode())
		if err != nil {
			t.Fatalf("kind %d: %v", f.Kind, err)
		}
		if !reflect.DeepEqual(got, f) {
			t.Errorf("kind %d: round trip mismatch", f.Kind)
		}
	}

	// Stream framing: all frames back through one reader, then clean EOF.
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&buf)
	for _, want := range frames {
		got, err := ReadFrame(br)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("stream round trip mismatch for kind %d", want.Kind)
		}
	}
	if _, err := ReadFrame(br); err != io.EOF {
		t.Errorf("exhausted stream: got %v, want io.EOF", err)
	}
	// A truncated stream must not read as a clean end.
	trunc := bufio.NewReader(bytes.NewReader([]byte{200, 1, 'G', 'D'}))
	if _, err := ReadFrame(trunc); err == nil || err == io.EOF {
		t.Errorf("truncated stream: got %v, want hard error", err)
	}
}

func TestFrameRejects(t *testing.T) {
	for name, f := range map[string]*Frame{
		"snapshot without state": {Kind: FrameSnapshot, Target: 5},
		"final without state":    {Kind: FrameFinal, Target: 5},
		"negative target":        {Kind: FrameSnapshot, Target: -1, State: []byte{1}},
		"error without message":  {Kind: FrameError},
		"unknown kind":           {Kind: 9, State: []byte{1}},
	} {
		if _, err := DecodeFrame(f.Encode()); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// FuzzDecodeAssignment asserts the decoder never panics, never accepts an
// invalid assignment, and that accepted assignments survive a re-encode
// round trip (byte equality is too strong: varints tolerate over-long
// encodings on input while the encoder always emits minimal ones).
func FuzzDecodeAssignment(f *testing.F) {
	for _, a := range sampleAssignments() {
		f.Add(a.Encode())
	}
	f.Add([]byte("GDPA"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeAssignment(data)
		if err != nil {
			return
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("decoder accepted invalid assignment: %v", err)
		}
		back, err := DecodeAssignment(a.Encode())
		if err != nil {
			t.Fatalf("re-decoding own encoding failed: %v", err)
		}
		if !reflect.DeepEqual(back, a) {
			t.Fatal("decode/encode round trip is not stable")
		}
	})
}

// FuzzDecodeFrame asserts the frame decoder never panics and that accepted
// frames survive re-encoding, both standalone and through stream framing.
func FuzzDecodeFrame(f *testing.F) {
	f.Add((&Frame{Kind: FrameSnapshot, Target: 500, State: []byte{1}}).Encode())
	f.Add((&Frame{Kind: FrameError, Msg: "x"}).Encode())
	f.Add([]byte("GDPF"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			t.Fatal(err)
		}
		back, err := ReadFrame(bufio.NewReader(&buf))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back, fr) {
			t.Fatal("stream framing round trip mismatch")
		}
	})
}
