// Command graphlet-pack converts a graph into the .gcsr binary CSR format,
// the store behind graphletd's instant daemon starts and the mmap load
// path: pack once, then every open is milliseconds instead of an edge-list
// re-parse.
//
// Usage:
//
//	graphlet-pack -in graph.txt -out graph.gcsr [-lcc=false] [-verify]
//	graphlet-pack -in graph.txt -out graph.gcsr -format v2 [-block-bytes N]
//	graphlet-pack -in graph.txt -out graph.gcsr -keep-ids
//	graphlet-pack -dataset epinion -out epinion.gcsr
//
// -format selects the output version: v1 (raw arrays, zero-copy mmap) or v2
// (block-compressed adjacency, roughly half the bytes, served through a
// bounded decode cache). By default the largest connected component is
// extracted before packing (the paper's preprocessing, and what lets the
// daemon serve the file straight from the mapping); -lcc=false packs the
// input as-is. -keep-ids preserves the source node IDs of an edge-list
// input: embedded in the file for v2, as a .gids sidecar for v1. -verify
// re-opens the written file through the mmap path and validates every
// structural invariant.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/datasets"
	"repro/internal/graph"
)

func main() {
	var (
		in         = flag.String("in", "", "input graph file (edge list or .gcsr)")
		inFormat   = flag.String("in-format", "auto", "input format: auto|edgelist|gcsr")
		outFormat  = flag.String("format", "v1", "output .gcsr version: v1|v2")
		dataset    = flag.String("dataset", "", "pack a stand-in dataset instead of a file")
		out        = flag.String("out", "", "output .gcsr file (required)")
		lcc        = flag.Bool("lcc", true, "extract the largest connected component before packing")
		keepIDs    = flag.Bool("keep-ids", false, "preserve source node IDs (embedded in v2, .gids sidecar for v1)")
		blockBytes = flag.Int("block-bytes", 0, "v2 target encoded block size (0 = default 64 KiB)")
		verify     = flag.Bool("verify", false, "re-open the output via mmap and validate it")
	)
	flag.Parse()
	if *out == "" || (*in == "") == (*dataset == "") {
		fmt.Fprintln(os.Stderr, "graphlet-pack: need -out and exactly one of -in / -dataset")
		flag.Usage()
		os.Exit(2)
	}
	var version int
	switch *outFormat {
	case "v1", "1":
		version = 1
	case "v2", "2":
		version = 2
	default:
		fail(fmt.Errorf("unknown output format %q (want v1 or v2)", *outFormat))
	}

	start := time.Now()
	var (
		g   *graph.Graph
		ids []int64
	)
	switch {
	case *dataset != "":
		d, err := datasets.Get(*dataset)
		if err != nil {
			fail(err)
		}
		g = d.Graph() // already the LCC; dense IDs are the dataset's IDs
		if *keepIDs {
			fail(fmt.Errorf("-keep-ids applies to -in files (datasets are already densely numbered)"))
		}
	default:
		f, err := graph.ParseFormat(*inFormat)
		if err != nil {
			fail(err)
		}
		if f == graph.FormatAuto {
			f = graph.DetectFormat(*in)
		}
		var loaded *graph.Graph
		if *keepIDs && f == graph.FormatEdgeList {
			loaded, ids, err = graph.LoadEdgeListKeepIDs(*in)
		} else {
			loaded, err = graph.OpenFile(*in, f)
		}
		if err != nil {
			fail(err)
		}
		if ids == nil {
			ids = loaded.OriginalIDs() // a .gcsr input may already carry IDs
		}
		if *keepIDs && ids == nil {
			fail(fmt.Errorf("-keep-ids: input %s carries no source IDs to keep", *in))
		}
		g = loaded
		if *lcc {
			var toOld []int32
			g, toOld = graph.LargestComponent(loaded)
			if ids != nil && g != loaded {
				// Compose the remap through the LCC renumbering.
				lccIDs := make([]int64, len(toOld))
				for v, old := range toOld {
					lccIDs[v] = ids[old]
				}
				ids = lccIDs
			}
		}
	}
	if !*keepIDs {
		ids = nil
	}
	loadTime := time.Since(start)

	start = time.Now()
	opts := graph.SaveOptions{Version: version, BlockBytes: *blockBytes}
	if version == 2 {
		opts.IDs = ids
	}
	if err := graph.SaveOpts(*out, g, opts); err != nil {
		fail(err)
	}
	if version == 1 && ids != nil {
		if err := graph.SaveIDs(graph.IDsSidecarPath(*out), ids); err != nil {
			fail(err)
		}
	}
	saveTime := time.Since(start)

	st, err := os.Stat(*out)
	if err != nil {
		fail(err)
	}
	fmt.Printf("packed %d nodes, %d edges (max degree %d) -> %s (%d bytes, %s)\n",
		g.NumNodes(), g.NumEdges(), g.MaxDegree(), *out, st.Size(), *outFormat)
	if ids != nil {
		where := "embedded"
		if version == 1 {
			where = graph.IDsSidecarPath(*out)
		}
		fmt.Printf("kept %d source IDs (%s)\n", len(ids), where)
	}
	fmt.Printf("load %s, pack %s\n", loadTime.Round(time.Millisecond), saveTime.Round(time.Millisecond))

	if *verify {
		start = time.Now()
		m, err := graph.OpenFile(*out, graph.FormatGCSR)
		if err != nil {
			fail(fmt.Errorf("verify: %w", err))
		}
		if err := graph.Validate(m); err != nil {
			fail(fmt.Errorf("verify: %w", err))
		}
		if m.NumNodes() != g.NumNodes() || m.NumEdges() != g.NumEdges() || m.MaxDegree() != g.MaxDegree() {
			fail(fmt.Errorf("verify: reopened graph %v differs from packed %v", m, g))
		}
		if ids != nil {
			if !m.HasOriginalIDs() {
				fail(fmt.Errorf("verify: kept IDs did not round-trip"))
			}
			for v, id := range ids {
				if m.OriginalID(int32(v)) != id {
					fail(fmt.Errorf("verify: original ID of node %d is %d, want %d", v, m.OriginalID(int32(v)), id))
				}
			}
		}
		m.Close()
		fmt.Printf("verified via mmap in %s\n", time.Since(start).Round(time.Millisecond))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "graphlet-pack:", err)
	os.Exit(1)
}
