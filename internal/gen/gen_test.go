package gen

import (
	"testing"

	"repro/internal/graph"
)

func TestErdosRenyiGNM(t *testing.T) {
	g := ErdosRenyiGNM(100, 300, 1)
	if g.NumNodes() != 100 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	if g.NumEdges() != 300 {
		t.Fatalf("m = %d, want 300", g.NumEdges())
	}
	if err := graph.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestErdosRenyiGNMCapped(t *testing.T) {
	g := ErdosRenyiGNM(5, 100, 1)
	if g.NumEdges() != 10 {
		t.Fatalf("m = %d, want complete graph's 10", g.NumEdges())
	}
}

func TestErdosRenyiGNP(t *testing.T) {
	g := ErdosRenyiGNP(200, 0.05, 7)
	if err := graph.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Expected edges = p * C(200,2) = 0.05*19900 = 995; allow wide slack.
	m := g.NumEdges()
	if m < 700 || m > 1300 {
		t.Errorf("GNP edges = %d, expected around 995", m)
	}
	if g0 := ErdosRenyiGNP(50, 0, 1); g0.NumEdges() != 0 {
		t.Errorf("p=0 produced %d edges", g0.NumEdges())
	}
	if g1 := ErdosRenyiGNP(10, 1, 1); g1.NumEdges() != 45 {
		t.Errorf("p=1 produced %d edges, want 45", g1.NumEdges())
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(500, 3, 42)
	if g.NumNodes() != 500 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	if err := graph.Validate(g); err != nil {
		t.Fatal(err)
	}
	if !graph.IsConnected(g) {
		t.Error("BA graph should be connected")
	}
	// m0 clique + m edges per new node.
	want := int64(3 * 2 / 2 * 2 / 2) // C(4,2) = 6
	want = 6 + int64(500-4)*3
	if g.NumEdges() != want {
		t.Errorf("edges = %d, want %d", g.NumEdges(), want)
	}
	// Preferential attachment should produce a hub noticeably above m.
	if g.MaxDegree() < 10 {
		t.Errorf("max degree %d suspiciously small for BA", g.MaxDegree())
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	a := BarabasiAlbert(200, 2, 9)
	b := BarabasiAlbert(200, 2, 9)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	diff := false
	a.Edges(func(u, v int32) bool {
		if !b.HasEdge(u, v) {
			diff = true
			return false
		}
		return true
	})
	if diff {
		t.Error("same seed produced different edge sets")
	}
	c := BarabasiAlbert(200, 2, 10)
	same := true
	a.Edges(func(u, v int32) bool {
		if !c.HasEdge(u, v) {
			same = false
			return false
		}
		return true
	})
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestHolmeKim(t *testing.T) {
	g := HolmeKim(500, 3, 0.8, 11)
	if g.NumNodes() != 500 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	if err := graph.Validate(g); err != nil {
		t.Fatal(err)
	}
	if !graph.IsConnected(g) {
		t.Error("Holme-Kim graph should be connected")
	}
	// Triad formation should yield clearly more triangles than plain BA.
	ba := BarabasiAlbert(500, 3, 11)
	if tri(g) <= tri(ba) {
		t.Errorf("HolmeKim triangles %d <= BA triangles %d", tri(g), tri(ba))
	}
}

func tri(g *graph.Graph) int64 {
	var n int64
	g.Edges(func(u, v int32) bool {
		n += int64(g.CommonNeighbors(u, v))
		return true
	})
	return n / 3
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(300, 6, 0.1, 3)
	if err := graph.Validate(g); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 300 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	m := g.NumEdges()
	if m < 850 || m > 900 {
		t.Errorf("WS edges = %d, want ~900", m)
	}
}

func TestPowerLawConfiguration(t *testing.T) {
	g := PowerLawConfiguration(2000, 2.5, 2, 100, 5)
	if err := graph.Validate(g); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() < 1500 {
		t.Errorf("suspiciously few edges: %d", g.NumEdges())
	}
	if g.MaxDegree() < 10 {
		t.Errorf("max degree %d too small for power law", g.MaxDegree())
	}
}

func TestRandomRegular(t *testing.T) {
	g := RandomRegular(200, 4, 8)
	if err := graph.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Stub matching drops a few edges; degrees should be close to 4.
	low := 0
	for v := 0; v < g.NumNodes(); v++ {
		d := g.Degree(int32(v))
		if d > 4 {
			t.Fatalf("degree %d > 4", d)
		}
		if d < 3 {
			low++
		}
	}
	if low > 20 {
		t.Errorf("%d nodes with degree < 3", low)
	}
}

func TestFixtures(t *testing.T) {
	if g := Complete(5); g.NumEdges() != 10 || g.MaxDegree() != 4 {
		t.Errorf("K5 wrong: %v", g)
	}
	if g := Cycle(6); g.NumEdges() != 6 || g.MaxDegree() != 2 {
		t.Errorf("C6 wrong: %v", g)
	}
	if g := Path(6); g.NumEdges() != 5 {
		t.Errorf("P6 wrong: %v", g)
	}
	if g := Star(7); g.NumEdges() != 6 || g.Degree(0) != 6 {
		t.Errorf("star wrong: %v", g)
	}
	fig := PaperFigure1()
	if fig.NumNodes() != 4 || fig.NumEdges() != 5 {
		t.Errorf("figure 1 graph wrong: %v", fig)
	}
	if tri(fig) != 2 {
		t.Errorf("figure 1 graph has %d triangles, want 2", tri(fig))
	}
	lol := Lollipop(5, 4)
	if !graph.IsConnected(lol) || lol.NumNodes() != 9 || lol.NumEdges() != 14 {
		t.Errorf("lollipop wrong: %v", lol)
	}
	tt := TwoTriangles()
	if tri(tt) != 2 || tt.NumEdges() != 7 {
		t.Errorf("two-triangles wrong: %v", tt)
	}
}
