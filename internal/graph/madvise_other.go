//go:build !linux

package graph

// adviseMapped is a no-op on platforms whose standard syscall package has
// no Madvise (darwin dropped it; x/sys/unix is out of scope as a
// dependency); the mapping works identically, just without paging hints.
func adviseMapped(data []byte, offEnd int) {}
