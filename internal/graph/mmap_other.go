//go:build !unix

package graph

// OpenMapped falls back to the portable Load path on platforms without
// syscall.Mmap; the returned graph is heap-backed and Close is a no-op.
func OpenMapped(path string) (*Graph, error) {
	return Load(path)
}

// OpenMappedOpts falls back to the portable Load path; without a mapped
// backing there is no decode cache to tune, so the options are unused.
func OpenMappedOpts(path string, _ OpenOptions) (*Graph, error) {
	return Load(path)
}
