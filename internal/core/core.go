// Package core implements the paper's primary contribution: the general
// random-walk framework for estimating k-node graphlet concentration from
// l = k-d+1 consecutive steps of a random walk on the d-node subgraph
// relationship graph G(d) (Algorithm 1), with the two optimizations of §4 —
// corresponding state sampling (CSS, Algorithm 3) and the non-backtracking
// random walk (NB-SRW) — and the Chernoff-Hoeffding sample-size bound of
// Theorem 3.
//
// Special cases recover the prior art the paper compares against:
// d = k-1 is PSRW [36], d = k is the SRW-on-G(k) method of [36], and
// (k=3, d=1) is the Hardiman-Katzir clustering-coefficient walk [11].
//
// The engine is layered:
//
//   - walker (walker.go): one walk, its sliding window, and a private Result
//     accumulator — the pure per-goroutine logic.
//   - ensemble (ensemble.go): spawns Config.Walkers walkers with
//     deterministically derived seeds and window budgets and runs them
//     concurrently; each walker owns its walk.Space and RNG.
//   - merge (Result.Merge): sums walker accumulators in walker-index order,
//     exact because Equation 4 is linear in the accumulated weights, and
//     schedule-independent by construction.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/access"
	"repro/internal/graphlet"
	"repro/internal/walk"
)

// Config selects a method within the framework.
type Config struct {
	K int // graphlet size, 3..5
	D int // walk order, 1..K; l = K-D+1 consecutive steps form one sample

	// CSS enables corresponding state sampling (§4.1): the sample weight is
	// the summed stationary mass of all states corresponding to the sampled
	// subgraph rather than α·π̃e. For l <= 2 both weights coincide and the
	// plain path is used.
	CSS bool
	// NB replaces the simple random walk with the non-backtracking walk
	// (§4.2); stationary weights use nominal degrees max(deg-1, 1).
	NB bool

	// RecoverStars implements the paper's §3.2 footnote 3 for (K=4, D=1):
	// 3-stars have no Hamiltonian path (α = 0) and are invisible to the walk
	// on G, but their count satisfies the linear relation
	//   noninduced-stars = stars + tailed + 2·chordal + 4·clique,
	// and Σ_v C(d_v,3) (the non-induced star count) is estimable from the
	// same walk because E_π[C(d_v,3)/d_v] = Σ_v C(d_v,3) / 2|E| shares the
	// 2|R(1)| = 2|E| scale of all other weights. With this flag the 3-star
	// entry of the result is recovered instead of being zero.
	RecoverStars bool

	// BurnIn is the number of transitions discarded before sampling starts,
	// per walker. The paper uses none (bias decays by SLLN); experiments keep
	// it at 0.
	BurnIn int

	// Walkers is the number of independent concurrent walks the run's window
	// budget is split across (0 and 1 both mean one walk — the historical
	// sequential behavior). Each walker gets its own RNG stream and
	// walk.Space; their unbiased weight accumulators merge by summation
	// (Result.Merge), so the estimate is exact regardless of W. The shared
	// access.Client must be safe for concurrent use (all clients in
	// internal/access and internal/apiserver are).
	Walkers int

	// Seed seeds the engine. Walker i derives its RNG stream from
	// (Seed, i) deterministically, so two runs with equal Config produce
	// byte-identical merged Results, at any GOMAXPROCS.
	Seed int64
}

// MethodName renders the paper's naming scheme, e.g. "SRW2CSS" or
// "SRW1CSSNB".
func (c Config) MethodName() string {
	s := fmt.Sprintf("SRW%d", c.D)
	if c.CSS {
		s += "CSS"
	}
	if c.NB {
		s += "NB"
	}
	return s
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.K < 3 || c.K > graphlet.MaxK {
		return fmt.Errorf("core: K=%d out of range 3..%d", c.K, graphlet.MaxK)
	}
	if c.D < 1 || c.D > c.K {
		return fmt.Errorf("core: D=%d out of range 1..K=%d", c.D, c.K)
	}
	if c.BurnIn < 0 {
		return fmt.Errorf("core: negative BurnIn %d", c.BurnIn)
	}
	if c.Walkers < 0 {
		return fmt.Errorf("core: negative Walkers %d", c.Walkers)
	}
	if c.RecoverStars && (c.K != 4 || c.D != 1) {
		return fmt.Errorf("core: RecoverStars applies only to K=4, D=1")
	}
	return nil
}

// Result holds the outcome of one estimation run (or, after Merge, of
// several independent runs combined).
type Result struct {
	Config Config
	// Steps is the number of windows processed (the paper's sample size n),
	// summed over all walkers.
	Steps int
	// ValidSamples counts windows whose l states covered exactly k distinct
	// nodes (the "valid samples" of Figure 3).
	ValidSamples int
	// Weights[i] is the un-normalized accumulator Ĉ_i — the sum of
	// 1/(α_i·π̃e) (or 1/p̃ under CSS) over valid samples of type i+1.
	// Count estimates follow as 2|R(d)|·Weights[i]/Steps (Equation 4).
	Weights []float64
	// TypeCounts[i] is the raw number of valid samples classified as
	// graphlet type i+1 (diagnostic; not unbiased).
	TypeCounts []int64
	// StarAcc is the accumulated non-induced-star functional Σ C(d_v,3)/d_v
	// (only maintained under Config.RecoverStars). It merges by summation,
	// and the recovered 3-star weight is recomputed from the merged sums —
	// the max(0,·) clamp of the recovery is nonlinear, so clamping per
	// walker before summing would bias the merge.
	StarAcc float64
}

// Merge folds o's accumulators into r: Steps, ValidSamples, Weights and
// TypeCounts all sum. Summation is the exact combination rule because the
// weight accumulator of Equation 4 is linear in the per-window contributions:
// W independent walkers merged this way are statistically identical to one
// walk that processed the union of their windows. The ensemble always merges
// in walker-index order, so merged Results are reproducible bit for bit.
func (r *Result) Merge(o *Result) {
	r.Steps += o.Steps
	r.ValidSamples += o.ValidSamples
	for i := range r.Weights {
		r.Weights[i] += o.Weights[i]
	}
	for i := range r.TypeCounts {
		r.TypeCounts[i] += o.TypeCounts[i]
	}
	r.StarAcc += o.StarAcc
	if r.Config.RecoverStars {
		r.applyStarRecovery()
	}
}

// applyStarRecovery rewrites the invisible 3-star weight from the linear
// relation noninduced = stars + tailed + 2·chordal + 4·clique; all terms
// share the 2|E| scale, so the concentration normalization stays valid.
func (r *Result) applyStarRecovery() {
	w := r.StarAcc - r.Weights[3] - 2*r.Weights[4] - 4*r.Weights[5]
	if w < 0 {
		w = 0
	}
	r.Weights[1] = w
}

// Concentration returns the estimated concentration vector ĉ^k (Equation 5
// or 8). If no valid sample was seen, all entries are zero.
func (r *Result) Concentration() []float64 {
	out := make([]float64, len(r.Weights))
	var sum float64
	for _, w := range r.Weights {
		sum += w
	}
	if sum == 0 {
		return out
	}
	for i, w := range r.Weights {
		out[i] = w / sum
	}
	return out
}

// Counts returns unbiased count estimates Ĉ^k_i given 2|R(d)| (Equation 4).
// For d = 1, 2|R| = 2|E|; for d = 2 use TwoR.
func (r *Result) Counts(twoR float64) []float64 {
	out := make([]float64, len(r.Weights))
	if r.Steps == 0 {
		return out
	}
	for i, w := range r.Weights {
		out[i] = twoR * w / float64(r.Steps)
	}
	return out
}

// Estimator runs the framework on a restricted-access graph: an ensemble of
// Config.Walkers independent walkers over one shared client.
type Estimator struct {
	cfg     Config
	client  access.Client
	walkers []*walker

	// lo is the global index of walkers[0]: 0 for a full ensemble, the
	// partition's first walker index for a NewPartitionEstimator. Quota and
	// seed derivation always use global indices, so a partitioned run's
	// walkers reproduce exactly the trajectories of a full local run.
	lo int

	// done is the checkpoint target reached so far (windows processed across
	// walkers); Snapshot records it and Restore seeds it, making a run a
	// serializable state machine.
	done int
	// restored marks that the next run should continue from the restored
	// state instead of resetting the walkers.
	restored bool
}

// NewEstimator builds an estimator over the client. When cfg.Walkers > 1 the
// client is used from that many goroutines concurrently during Run.
func NewEstimator(client access.Client, cfg Config) (*Estimator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ws := make([]*walker, walkerCount(cfg.Walkers))
	for i := range ws {
		ws[i] = newWalker(client, cfg, walkerSeed(cfg.Seed, i))
	}
	return &Estimator{cfg: cfg, client: client, walkers: ws}, nil
}

// NewPartitionEstimator builds an estimator owning only walkers [lo, hi) of
// the cfg.Walkers-walker ensemble — the unit of distributed execution. The
// partition's walkers use their global seeds (walkerSeed(cfg.Seed, lo+i)) and
// global window quotas, so running every partition of a budget n and merging
// their accumulators in global walker-index order (CombinePartitionStates +
// MergedResult) is byte-identical to one local NewEstimator run of the same
// budget, at any partitioning.
func NewPartitionEstimator(client access.Client, cfg Config, lo, hi int) (*Estimator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := walkerCount(cfg.Walkers)
	if lo < 0 || hi > w || lo >= hi {
		return nil, fmt.Errorf("core: partition [%d,%d) out of range for %d walkers", lo, hi, w)
	}
	ws := make([]*walker, hi-lo)
	for i := range ws {
		ws[i] = newWalker(client, cfg, walkerSeed(cfg.Seed, lo+i))
	}
	return &Estimator{cfg: cfg, client: client, walkers: ws, lo: lo}, nil
}

// Run processes n windows (Algorithm 1), split across the configured
// walkers, and returns the merged estimates.
func (e *Estimator) Run(n int) (*Result, error) {
	return e.RunCheckpoints(n, 0, nil)
}

// RunCheckpoints is Run with a periodic callback: after every `every`
// windows (summed across walkers, and at the end) it synchronizes the
// ensemble and invokes fn with the number of windows processed so far and
// the merged concentration snapshot. Used to trace convergence (Figure 6).
// Checkpoints are ensemble-wide barriers; with fn == nil the walkers run
// barrier-free end to end.
func (e *Estimator) RunCheckpoints(n, every int, fn func(step int, conc []float64)) (*Result, error) {
	return e.RunCheckpointsCtx(context.Background(), n, every, fn)
}

// RunCheckpointsCtx is RunCheckpoints with cooperative, step-granular
// cancellation: each walker polls the context every cancelCheckEvery windows
// inside its stage (and the ensemble checks it again at every checkpoint
// barrier), so a cancel stops the run within a few hundred transitions even
// when the whole budget is a single barrier-free stage. On cancellation it
// returns the merged Result accumulated so far alongside ctx.Err(), so
// callers can report partial progress. The cancellation polls touch no
// walker state, so runs that complete are byte-identical to RunCheckpoints
// at any GOMAXPROCS.
func (e *Estimator) RunCheckpointsCtx(ctx context.Context, n, every int, fn func(step int, conc []float64)) (*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: non-positive sample budget %d", n)
	}
	nw := len(e.walkers)
	// Quotas are always computed against the full ensemble's walker count at
	// global indices, so a partition advances its walkers exactly as a full
	// local run would (for a full ensemble tw == nw and e.lo == 0).
	tw := walkerCount(e.cfg.Walkers)
	resumed := e.restored
	e.restored = false
	if resumed {
		if e.done > n {
			return nil, fmt.Errorf("core: restored state at %d windows exceeds budget %d", e.done, n)
		}
	} else {
		for _, wk := range e.walkers {
			wk.reset()
		}
		// Sequential seed draws: see walker.ensureSeeded.
		for _, wk := range e.walkers {
			wk.ensureSeeded()
		}
		e.done = 0
	}
	prev := e.done
	for _, target := range checkpointTargets(n, every, fn != nil) {
		if target <= prev {
			continue // already covered by the restored state
		}
		if err := ctx.Err(); err != nil {
			return e.merged(), err
		}
		lo, hi := prev, target
		if err := runStage(nw, func(i int) error {
			return e.walkers[i].run(ctx, walkerQuota(hi, tw, e.lo+i)-walkerQuota(lo, tw, e.lo+i))
		}); err != nil {
			if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
				// A mid-stage cancel: the partial accumulators are intact and
				// their merge reports the windows actually processed.
				return e.merged(), err
			}
			return nil, err
		}
		prev = target
		e.done = target
		if fn != nil {
			fn(target, e.merged().Concentration())
		}
	}
	return e.merged(), nil
}

// Snapshot exports the run's complete resumable state. It is only valid
// while the walkers are quiescent: from inside a RunCheckpoints callback
// (the walkers park at the checkpoint barrier for the callback's duration)
// or after a run returned. Snapshots are read-only — taking one changes no
// walker state, so checkpointed runs stay byte-identical to unobserved ones.
func (e *Estimator) Snapshot() *EnsembleState {
	st := &EnsembleState{
		Config:      e.cfg,
		WindowsDone: e.done,
		Walkers:     make([]WalkerState, len(e.walkers)),
	}
	for i, wk := range e.walkers {
		st.Walkers[i] = wk.snapshot()
	}
	return st
}

// Restore loads an exported state into the estimator: the next
// Run/RunCheckpoints call continues the interrupted run from st.WindowsDone
// windows instead of starting over, and — because the RNG streams, windows
// and accumulators are reconstructed exactly — completes with a result
// byte-identical to the uninterrupted run's, at any GOMAXPROCS. The state
// must have been captured under an equal Config (including Walkers and
// Seed). On error the estimator may be partially mutated and must be
// discarded.
func (e *Estimator) Restore(st *EnsembleState) error {
	if st == nil {
		return fmt.Errorf("core: nil ensemble state")
	}
	if st.Config != e.cfg {
		return fmt.Errorf("core: ensemble state was captured under config %+v, estimator has %+v", st.Config, e.cfg)
	}
	if len(st.Walkers) != len(e.walkers) {
		return fmt.Errorf("core: ensemble state has %d walkers, estimator has %d", len(st.Walkers), len(e.walkers))
	}
	tw := walkerCount(e.cfg.Walkers)
	for i, wk := range e.walkers {
		// The quota split is a pure function of (WindowsDone, W, global
		// index); a state whose per-walker window counts disagree with it
		// cannot have come from a checkpoint barrier (of this partition).
		if want := walkerQuota(st.WindowsDone, tw, e.lo+i); st.Walkers[i].ResSteps != want {
			return fmt.Errorf("core: walker %d processed %d windows, want %d at ensemble target %d",
				e.lo+i, st.Walkers[i].ResSteps, want, st.WindowsDone)
		}
		if err := wk.restore(st.Walkers[i]); err != nil {
			return err
		}
	}
	e.done = st.WindowsDone
	e.restored = true
	return nil
}

// merged combines the walkers' private Results in walker-index order.
func (e *Estimator) merged() *Result {
	out := &Result{
		Config:     e.cfg,
		Weights:    make([]float64, len(e.walkers[0].alpha)),
		TypeCounts: make([]int64, len(e.walkers[0].alpha)),
	}
	for _, wk := range e.walkers {
		out.Merge(wk.res)
	}
	return out
}

// SamplingProbability computes the CSS weight p̃ = 2|R(d)|·p for the subgraph
// induced by the given k distinct nodes (Algorithm 3). It is exposed for the
// Table 4 reproduction and for external verification.
func SamplingProbability(client access.Client, k, d int, nb bool, nodes []int32) float64 {
	var scratch []int32
	return samplingProbabilityWith(client, walk.NewSpace(client, d), k, d, nb, nodes, &scratch)
}

func samplingProbabilityWith(client access.Client, space walk.Space, k, d int, nb bool, nodes []int32, scratch *[]int32) float64 {
	hasEdge := func(i, j int) bool { return client.HasEdge(nodes[i], nodes[j]) }
	total := 0.0
	graphlet.EnumerateChains(k, d, hasEdge, func(chain []uint8) bool {
		w := 1.0
		// Interior states only (indices 1..l-2); for l = 1 the weight is the
		// state's degree, but CSS is never used with l <= 2.
		for i := 1; i < len(chain)-1; i++ {
			st := maskToState(nodes, chain[i], scratch)
			deg := space.StateDegree(st)
			if nb {
				deg = nominal(deg)
			}
			w *= 1 / float64(deg)
		}
		total += w
		return true
	})
	return total
}

func maskToState(nodes []int32, mask uint8, scratch *[]int32) walk.State {
	buf := (*scratch)[:0]
	for b := 0; b < len(nodes); b++ {
		if mask&(1<<uint(b)) != 0 {
			buf = append(buf, nodes[b])
		}
	}
	*scratch = buf
	return walk.StateOf(buf...)
}
