package graphletrw

// Walk-kernel benchmarks on a 1M-edge Barabási–Albert graph — the
// BENCH_pr6.json fixture. The epinion StepSRW* benchmarks above track the
// historical trajectory; these isolate the G(d) neighbor kernel at the scale
// the ROADMAP's walk-kernel item targets (hub-heavy degree distribution,
// ~10 average degree, rows far larger than the d<=2 fast paths ever see).
//
// The fixture matches internal/graph's gcsr benchmark graph (same
// model/size/seed) so per-step and load-path numbers in the BENCH_*.json
// trajectory refer to one graph.

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

const (
	ba1mNodes  = 200_000
	ba1mAttach = 5 // ~1M edges
	ba1mSeed   = 1337
)

var ba1m struct {
	once sync.Once
	g    *graph.Graph
}

func ba1mGraph() *graph.Graph {
	ba1m.once.Do(func() { ba1m.g = gen.BarabasiAlbert(ba1mNodes, ba1mAttach, ba1mSeed) })
	return ba1m.g
}

func benchmarkWalkStepsBA(b *testing.B, cfg core.Config) {
	benchmarkWalkStepsOn(b, cfg, ba1mGraph())
}

func benchmarkWalkStepsOn(b *testing.B, cfg core.Config, g *graph.Graph) {
	b.Helper()
	client := access.NewGraphClient(g)
	cfg.Seed = 7
	est, err := core.NewEstimator(client, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := est.Run(b.N); err != nil {
		b.Fatal(err)
	}
}

// ba1mStore materializes the fixture graph in both .gcsr encodings (shared
// with internal/graph's bench fixture files) and opens path with open,
// pre-warming every neighbor row so the timed region measures the
// steady-state step cost, not first-touch page faults or block decodes.
func ba1mOpenWarm(b *testing.B, version int, open func(path string) (*graph.Graph, error)) *graph.Graph {
	b.Helper()
	dir := filepath.Join(os.TempDir(), "graphletrw-gcsr-bench")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		b.Fatal(err)
	}
	name := "ba-1m.gcsr"
	if version == 2 {
		name = "ba-1m.v2.gcsr"
	}
	path := filepath.Join(dir, name)
	if _, err := os.Stat(path); err != nil {
		if err := graph.SaveOpts(path, ba1mGraph(), graph.SaveOptions{Version: version}); err != nil {
			b.Fatal(err)
		}
	}
	g, err := open(path)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { g.Close() })
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		g.Neighbors(v)
	}
	return g
}

// The v1-mmap vs v2-block-cached step pair: the acceptance gate for the
// compressed store is the warm V2Cached step staying within 1.3x of V1Mmap
// at 0 allocs/op (see BENCH_pr10.json).
func BenchmarkStepSRW3K4BA1MV1Mmap(b *testing.B) {
	g := ba1mOpenWarm(b, 1, graph.OpenMapped)
	benchmarkWalkStepsOn(b, core.Config{K: 4, D: 3}, g)
}

func BenchmarkStepSRW3K4BA1MV2Cached(b *testing.B) {
	g := ba1mOpenWarm(b, 2, func(path string) (*graph.Graph, error) {
		return graph.OpenMappedOpts(path, graph.OpenOptions{})
	})
	benchmarkWalkStepsOn(b, core.Config{K: 4, D: 3}, g)
}

func BenchmarkStepSRW3K4BA1M(b *testing.B) { benchmarkWalkStepsBA(b, core.Config{K: 4, D: 3}) }
func BenchmarkStepSRW3K5BA1M(b *testing.B) { benchmarkWalkStepsBA(b, core.Config{K: 5, D: 3}) }
func BenchmarkStepSRW4K5BA1M(b *testing.B) { benchmarkWalkStepsBA(b, core.Config{K: 5, D: 4}) }
func BenchmarkStepNBSRW3K4BA1M(b *testing.B) {
	benchmarkWalkStepsBA(b, core.Config{K: 4, D: 3, NB: true})
}
