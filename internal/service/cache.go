package service

import (
	"container/list"

	"repro/internal/core"
	"repro/internal/obs"
)

// resultCache is an LRU cache of completed estimation results keyed by the
// comparable spec key. Caching whole results is sound because the engine is
// deterministic: equal Config and Seed produce byte-identical merged
// Results at any GOMAXPROCS, so a cached entry is indistinguishable from a
// re-run. Partial (cancelled/failed) results are never cached.
//
// Every entry is a single-size result. A multi-size job fans out into one
// entry per size at settle (the shared-walk per-size results are
// byte-identical to independent single-size runs, so the entries are
// interchangeable with ones a single-size job would have produced), and a
// multi-size submission is answered from the cache by reassembling all of
// its per-size entries (Manager.multiCacheGetLocked).
//
// Each entry remembers the job that produced it (its owner) — a multi-size
// job owns several entries at once, so the owner index is a live-entry
// count. Journal compaction consults the owner set so a result's on-disk
// record survives for as long as any of its cache entries does — even after
// the producing job is pruned from the bounded job table — which is what
// keeps the cache warm across restarts.
//
// The cache is not internally locked; the Manager serializes access under
// its own mutex, which also keeps cache lookups atomic with the in-flight
// coalescing map (a spec must never be both cached and in flight).
type resultCache struct {
	cap       int
	ll        *list.List // front = most recently used
	items     map[specKey]*list.Element
	owners    map[string]int // producing job ID -> its live entry count
	evictions *obs.Counter   // capacity evictions (not dropGraph purges)
}

type cacheEntry struct {
	key   specKey
	res   *core.Result
	owner string
}

func newResultCache(capacity int, evictions *obs.Counter) *resultCache {
	return &resultCache{
		cap:       capacity,
		ll:        list.New(),
		items:     make(map[specKey]*list.Element),
		owners:    make(map[string]int),
		evictions: evictions,
	}
}

// get returns the cached result for the spec key, refreshing its recency.
func (c *resultCache) get(key specKey) (*core.Result, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put inserts (or refreshes) the key's result as produced by job owner,
// evicting the least recently used entry when over capacity.
func (c *resultCache) put(key specKey, res *core.Result, owner string) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		entry := el.Value.(*cacheEntry)
		c.releaseOwner(entry.owner)
		entry.res, entry.owner = res, owner
		if owner != "" {
			c.owners[owner]++
		}
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, res: res, owner: owner})
	c.items[key] = el
	if owner != "" {
		c.owners[owner]++
	}
	for c.ll.Len() > c.cap {
		c.removeElement(c.ll.Back())
		c.evictions.Inc()
	}
}

// releaseOwner drops one live-entry reference from the job's owner count.
func (c *resultCache) releaseOwner(jobID string) {
	if jobID == "" {
		return
	}
	if c.owners[jobID]--; c.owners[jobID] <= 0 {
		delete(c.owners, jobID)
	}
}

// ownsJob reports whether the job's results still back any live cache entry.
func (c *resultCache) ownsJob(jobID string) bool {
	return c.owners[jobID] > 0
}

// ownerSet snapshots the producing-job IDs of all live entries (the async
// compaction path copies it out from under Manager.mu before rewriting
// segments without the lock).
func (c *resultCache) ownerSet() map[string]bool {
	out := make(map[string]bool, len(c.owners))
	for id := range c.owners {
		out[id] = true
	}
	return out
}

// dropGraph removes every entry keyed to the named graph (the graph was
// unregistered; its results must not outlive it) and reports how many were
// purged.
func (c *resultCache) dropGraph(name string) int {
	purged := 0
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		if el.Value.(*cacheEntry).key.graph == name {
			c.removeElement(el)
			purged++
		}
	}
	return purged
}

func (c *resultCache) removeElement(el *list.Element) {
	entry := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, entry.key)
	c.releaseOwner(entry.owner)
}

func (c *resultCache) len() int { return c.ll.Len() }
