package core

import (
	"repro/internal/access"
	"repro/internal/graphlet"
	"repro/internal/walk"
)

// windowCode builds the k-node adjacency code of a window's union nodes for
// classification. Every pair of nodes co-resident in some window state was
// already resolved by the walk kernel (walk.Space.StateAdj hands back the
// internal adjacency masks it computed for incremental connectivity), so only
// the pairs no window state covers are probed with client.HasEdge. With
// l = k-d+1 consecutive d-node states, consecutive states overlap in d-1
// nodes, so uncovered pairs are the rare far-apart ones — classification
// stops re-running the binary-search storm the kernel was built to eliminate.
//
// nodes is the union in first-appearance order (what the accumulators build);
// at(i) returns the i-th window state, oldest first.
func windowCode(client access.Client, space walk.Space, k, l int, nodes []int32, at func(i int) (walk.State, int)) uint16 {
	// known/adj are k×k bitmasks over union-node indices (k <= MaxK = 8 fits
	// a uint8 row... MaxK is 5 here; 8 bits are plenty).
	var known, adj [graphlet.MaxK]uint8
	for i := 0; i < l; i++ {
		s, _ := at(i)
		mask := space.StateAdj(s)
		n := s.Len()
		// Map state-node positions to union indices.
		var idx [walk.MaxD]int
		for a := 0; a < n; a++ {
			x := s.Node(a)
			for u, y := range nodes {
				if y == x {
					idx[a] = u
					break
				}
			}
		}
		for a := 0; a < n; a++ {
			ua := idx[a]
			for b := a + 1; b < n; b++ {
				ub := idx[b]
				known[ua] |= 1 << uint(ub)
				known[ub] |= 1 << uint(ua)
				if mask[a]&(1<<uint(b)) != 0 {
					adj[ua] |= 1 << uint(ub)
					adj[ub] |= 1 << uint(ua)
				}
			}
		}
	}
	return graphlet.CodeOf(k, func(i, j int) bool {
		if known[i]&(1<<uint(j)) != 0 {
			return adj[i]&(1<<uint(j)) != 0
		}
		return client.HasEdge(nodes[i], nodes[j])
	})
}
