package core

import (
	"math"

	"repro/internal/graph"
	"repro/internal/graphlet"
)

// TwoR returns 2|R(d)| — twice the number of edges of the subgraph
// relationship graph G(d) — for d = 1 and d = 2, the cases the paper gives
// closed forms for (§3.3): 2|R(1)| = 2|E| and
// 2|R(2)| = Σ_{(u,v)∈E} (d_u + d_v - 2) = Σ_v d_v² - 2|E|.
// These are the constants needed to turn the framework's weights into
// unbiased count estimates (Equation 4); d = 1 needs no graph scan and d = 2
// needs a single pass, as the paper notes.
func TwoR(g *graph.Graph, d int) float64 {
	switch d {
	case 1:
		return 2 * float64(g.NumEdges())
	case 2:
		var sum float64
		for v := 0; v < g.NumNodes(); v++ {
			dv := float64(g.Degree(int32(v)))
			sum += dv * dv
		}
		return sum - 2*float64(g.NumEdges())
	}
	panic("core: TwoR supports d = 1, 2 only")
}

// WeightedConcentration returns the paper's Figure 5 quantity
// α_i·C_i / Σ_j α_j·C_j for the exact counts of k-node graphlets under
// SRW(d): the probability that a stationary window sample of the walk shows
// type i. Rare graphlets with large α are over-represented relative to their
// plain concentration, which is exactly why small d improves accuracy.
func WeightedConcentration(k, d int, counts []float64) []float64 {
	cat := graphlet.Catalog(k)
	if len(counts) != len(cat) {
		panic("core: WeightedConcentration: counts length mismatch")
	}
	out := make([]float64, len(counts))
	var sum float64
	for i := range counts {
		out[i] = float64(cat[i].Alpha[d]) * counts[i]
		sum += out[i]
	}
	if sum > 0 {
		for i := range out {
			out[i] /= sum
		}
	}
	return out
}

// BoundInput collects the quantities of Theorem 3's sample-size bound.
type BoundInput struct {
	Eps    float64 // relative error ε
	Delta  float64 // failure probability δ
	W      float64 // max over states of 1/πe (or 1/p under CSS)
	Lambda float64 // min{α_i·C_i, α_min·C^k}
	Tau    float64 // mixing time τ(1/8) of the walk
	PhiPi  float64 // ‖φ‖_πe of the initial distribution (1 if started warm)
	Xi     float64 // the theorem's constant ξ (default 1)
}

// SampleSizeBound evaluates Theorem 3: the number of consecutive-step
// samples sufficient for ĉ to be within (1±ε)·c with probability 1-δ,
//
//	n >= ξ · (W/Λ) · τ/ε² · log(‖φ‖_πe/δ).
//
// The constant ξ is universal but not computed by the paper; the returned
// value is therefore meaningful up to that constant and is used to compare
// methods (smaller W/Λ ⇒ fewer samples), mirroring the paper's discussion.
func SampleSizeBound(in BoundInput) float64 {
	xi := in.Xi
	if xi == 0 {
		xi = 1
	}
	phi := in.PhiPi
	if phi == 0 {
		phi = 1
	}
	return xi * (in.W / in.Lambda) * in.Tau / (in.Eps * in.Eps) * math.Log(phi/in.Delta)
}
