// Package stats provides the evaluation machinery of §6: NRMSE over
// independent simulation runs (parallelized across CPUs) and convergence
// series over sample-size checkpoints.
package stats

import (
	"math"
	"runtime"
	"sort"
	"sync"
)

// NRMSE is the paper's accuracy metric:
// sqrt(E[(ĉ-c)²])/c — the root mean squared error of the estimates relative
// to the ground truth, combining variance and bias.
func NRMSE(estimates []float64, truth float64) float64 {
	if truth == 0 || len(estimates) == 0 {
		return math.NaN()
	}
	var sse float64
	for _, e := range estimates {
		d := e - truth
		sse += d * d
	}
	return math.Sqrt(sse/float64(len(estimates))) / truth
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (0 <= q <= 1) of xs by linear
// interpolation between order statistics, without modifying xs. NaN for
// empty input. Used by the scheduler latency benchmarks (p50/p95 queue
// wait) and available to any metric aggregation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// PoolWorkers sizes a worker pool whose tasks are themselves parallel:
// it returns how many tasks may run concurrently so that
// tasks × perTask stays at the machine's parallelism (GOMAXPROCS), and at
// least one task always runs. perTask <= 1 means tasks are sequential
// inside, so the pool gets one worker per CPU. Both the experiment trial
// pool and the estimation service's job pool size themselves with it, so a
// walker-ensemble task never oversubscribes the machine and its wall time
// stays comparable to the same task run alone.
func PoolWorkers(perTask int) int {
	if perTask <= 1 {
		return runtime.GOMAXPROCS(0)
	}
	w := runtime.GOMAXPROCS(0) / perTask
	if w < 1 {
		w = 1
	}
	return w
}

// TrialFunc runs one independent simulation (seeded deterministically by the
// trial index) and returns an estimate vector.
type TrialFunc func(trial int) []float64

// RunTrials executes n independent trials on a worker pool (one worker per
// CPU) and returns the per-trial estimate vectors, ordered by trial index.
func RunTrials(n int, fn TrialFunc) [][]float64 {
	return RunTrialsWorkers(n, 0, fn)
}

// RunTrialsWorkers is RunTrials with an explicit pool size (<= 0 means
// GOMAXPROCS). Pass a reduced size when each trial is itself parallel —
// e.g. a core.Config.Walkers ensemble — so trials × walkers stays at the
// machine's parallelism and per-trial wall time matches a trial run alone.
func RunTrialsWorkers(n, workers int, fn TrialFunc) [][]float64 {
	out := make([][]float64, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var next int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				t := int(next)
				next++
				mu.Unlock()
				if t >= n {
					return
				}
				out[t] = fn(t)
			}
		}()
	}
	wg.Wait()
	return out
}

// NRMSEPerType computes the NRMSE of each vector component across trials.
// Components whose truth is zero yield NaN.
func NRMSEPerType(trials [][]float64, truth []float64) []float64 {
	out := make([]float64, len(truth))
	col := make([]float64, len(trials))
	for i := range truth {
		for t := range trials {
			col[t] = trials[t][i]
		}
		out[i] = NRMSE(col, truth[i])
	}
	return out
}

// NRMSEOfComponent computes the NRMSE of component i across trials.
func NRMSEOfComponent(trials [][]float64, truth []float64, i int) float64 {
	col := make([]float64, len(trials))
	for t := range trials {
		col[t] = trials[t][i]
	}
	return NRMSE(col, truth[i])
}

// ConvergenceSeries aggregates checkpointed trials: point[t][s] is the
// estimate of the tracked component at checkpoint s of trial t; the result
// is the NRMSE at each checkpoint.
func ConvergenceSeries(points [][]float64, truth float64) []float64 {
	if len(points) == 0 {
		return nil
	}
	nCheck := len(points[0])
	out := make([]float64, nCheck)
	col := make([]float64, len(points))
	for s := 0; s < nCheck; s++ {
		for t := range points {
			col[t] = points[t][s]
		}
		out[s] = NRMSE(col, truth)
	}
	return out
}
