package experiments

import (
	"strings"
	"testing"
)

// End-to-end smoke tests for the figure drivers at minimal budgets. They are
// skipped in -short mode: the drivers touch every stand-in dataset (graph
// generation plus 3/4-node ground truth, disk-cached after the first run).

func tiny() Params { return Params{Steps: 500, Trials: 2} }

func TestFig4Report(t *testing.T) {
	if testing.Short() {
		t.Skip("touches all datasets")
	}
	var sb strings.Builder
	Fig4(&sb, tiny())
	out := sb.String()
	for _, want := range []string{
		"(a) triangle", "(b) 4-clique", "(c) 5-clique",
		"SRW1CSSNB", "SRW2CSS", "SRW3", "SRW4",
		"brightkite", "sinaweibo",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fig4 output missing %q", want)
		}
	}
}

func TestFig6Report(t *testing.T) {
	if testing.Short() {
		t.Skip("touches all datasets")
	}
	var sb strings.Builder
	Fig6(&sb, tiny())
	out := sb.String()
	for _, want := range []string{"twitter", "sinaweibo", "pokec", "flickr", "epinion", "slashdot", "steps"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig6 output missing %q", want)
		}
	}
}

func TestFig7Report(t *testing.T) {
	if testing.Short() {
		t.Skip("touches all datasets")
	}
	var sb strings.Builder
	Fig7(&sb, tiny())
	out := sb.String()
	for _, want := range []string{"wedge sampling", "3-path", "SRW1CSSNB", "SRW2CSS", "walk steps"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig7 output missing %q", want)
		}
	}
}

func TestFig8Report(t *testing.T) {
	if testing.Short() {
		t.Skip("touches all datasets")
	}
	var sb strings.Builder
	Fig8(&sb, tiny())
	out := sb.String()
	for _, want := range []string{"Wedge-MHRW", "SRW1CSSNB", "convergence"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig8 output missing %q", want)
		}
	}
}
