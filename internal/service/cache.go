package service

import (
	"container/list"

	"repro/internal/core"
)

// resultCache is an LRU cache of completed estimation results keyed by the
// full Spec. Caching whole results is sound because the engine is
// deterministic: equal Config and Seed produce byte-identical merged
// Results at any GOMAXPROCS, so a cached entry is indistinguishable from a
// re-run. Partial (cancelled/failed) results are never cached.
//
// The cache is not internally locked; the Manager serializes access under
// its own mutex, which also keeps cache lookups atomic with the in-flight
// coalescing map (a spec must never be both cached and in flight).
type resultCache struct {
	cap   int
	ll    *list.List // front = most recently used
	items map[Spec]*list.Element
}

type cacheEntry struct {
	spec Spec
	res  *core.Result
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[Spec]*list.Element),
	}
}

// get returns the cached result for spec, refreshing its recency.
func (c *resultCache) get(spec Spec) (*core.Result, bool) {
	el, ok := c.items[spec]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put inserts (or refreshes) spec's result, evicting the least recently
// used entry when over capacity.
func (c *resultCache) put(spec Spec, res *core.Result) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.items[spec]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[spec] = c.ll.PushFront(&cacheEntry{spec: spec, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).spec)
	}
}

func (c *resultCache) len() int { return c.ll.Len() }
