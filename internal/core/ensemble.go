package core

import (
	"fmt"
	"sync"
)

// The ensemble layer runs Config.Walkers independent walkers concurrently and
// merges their private Results. Three invariants make the merged output
// byte-identical across runs and GOMAXPROCS settings:
//
//  1. Seeds: walker i's RNG seed is a pure function of (Config.Seed, i)
//     (walkerSeed), so every walker's trajectory is fixed up front.
//  2. Budgets: the n-window budget is split by walkerQuota, a pure function
//     of (n, W, i), so each walker processes a fixed window set.
//  3. Merging: Results are summed in walker-index order (mergeResults), so
//     floating-point addition order never depends on goroutine scheduling.

// walkerCount normalizes Config.Walkers: 0 (the zero value) means one walker.
func walkerCount(w int) int {
	if w <= 1 {
		return 1
	}
	return w
}

// walkerSeed derives walker i's RNG seed from the configured seed. Walker 0
// uses the seed unchanged, so a single-walker ensemble reproduces the
// historical single-threaded runs exactly; the rest get splitmix64-scrambled
// streams, which are well separated even for adjacent seeds.
func walkerSeed(seed int64, i int) int64 {
	if i == 0 {
		return seed
	}
	z := uint64(seed) + uint64(i)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// walkerQuota returns how many of the first `total` windows walker i of
// nWalkers owns: an even split with the remainder assigned to the lowest
// indices. It is monotone in total, which lets checkpointed runs advance each
// walker by quota differences.
func walkerQuota(total, nWalkers, i int) int {
	q := total / nWalkers
	if i < total%nWalkers {
		q++
	}
	return q
}

// runStage executes fn(i) for i in [0, n) — concurrently when n > 1 — and
// returns the first error in walker-index order (deterministic even when
// several walkers fail). A panic inside a walker (the HTTP crawl client
// reports transport failures by panicking) is converted into that walker's
// error — uniformly for single- and multi-walker stages, so a long-running
// caller like the graphletd job manager sees a failed job either way
// instead of a crashed process.
func runStage(n int, fn func(i int) error) error {
	if n == 1 {
		return runWalkerGuarded(0, fn)
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = runWalkerGuarded(i, fn)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runWalkerGuarded invokes fn(i), converting a panic into an error.
func runWalkerGuarded(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: walker %d: %v", i, r)
		}
	}()
	return fn(i)
}

// checkpointTargets returns the cumulative window counts at which the
// ensemble synchronizes: every, 2·every, … when snapshots are requested, and
// always the final n. With no callback (or every <= 0) the whole budget is
// one stage, so walkers run barrier-free end to end.
func checkpointTargets(n, every int, snapshots bool) []int {
	var targets []int
	if snapshots && every > 0 {
		for s := every; s <= n; s += every {
			targets = append(targets, s)
		}
	}
	if len(targets) == 0 || targets[len(targets)-1] != n {
		targets = append(targets, n)
	}
	return targets
}
