package service

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/service/journal"
	"repro/internal/stats"
)

// benchmarkMixedLoad measures interactive queue wait under a mixed load —
// long background jobs submitted ahead of a burst of short interactive
// jobs, one worker — and reports the burst's p50/p95 queue wait. classed
// false runs the FIFO baseline (every job in the same class, which the
// scheduler serves in submission order); classed true labels the load with
// priority classes so the burst overtakes the queued long jobs.
func benchmarkMixedLoad(b *testing.B, classed bool) {
	reg := NewRegistry()
	if err := reg.Add("hk", "inline", gen.HolmeKim(400, 3, 0.6, 11)); err != nil {
		b.Fatal(err)
	}
	mgr, err := NewManager(reg, Options{Workers: 1, MaxWalkers: 1, CacheSize: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()

	const (
		longJobs  = 4
		burst     = 8
		longSteps = 300_000
		shortStep = 2_000
	)
	bgClass, fgClass := PriorityBatch, PriorityBatch // FIFO baseline: one class
	if classed {
		bgClass, fgClass = PriorityBackground, PriorityInteractive
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	var waits []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed := int64(i+1) * 1000 // fresh specs every round: no cache, no coalescing
		var ids []string
		for j := 0; j < longJobs; j++ {
			v, err := mgr.Submit(Spec{Graph: "hk", K: 3, D: 1, Steps: longSteps,
				Walkers: 1, Seed: seed + int64(j), Priority: bgClass})
			if err != nil {
				b.Fatal(err)
			}
			ids = append(ids, v.ID)
		}
		var burstIDs []string
		for j := 0; j < burst; j++ {
			v, err := mgr.Submit(Spec{Graph: "hk", K: 3, D: 1, Steps: shortStep,
				Walkers: 1, Seed: seed + 100 + int64(j), Priority: fgClass})
			if err != nil {
				b.Fatal(err)
			}
			burstIDs = append(burstIDs, v.ID)
		}
		for _, id := range append(ids, burstIDs...) {
			if v, err := mgr.Wait(ctx, id); err != nil || v.State != StateDone {
				b.Fatalf("job %s: %+v, %v", id, v, err)
			}
		}
		for _, id := range burstIDs {
			v, _ := mgr.Get(id)
			waits = append(waits, v.StartedAt.Sub(v.CreatedAt).Seconds()*1e3)
		}
	}
	b.StopTimer()
	b.ReportMetric(stats.Quantile(waits, 0.5), "p50-wait-ms")
	b.ReportMetric(stats.Quantile(waits, 0.95), "p95-wait-ms")
}

func BenchmarkSchedulerMixedLoad(b *testing.B) {
	b.Run("fifo", func(b *testing.B) { benchmarkMixedLoad(b, false) })
	b.Run("priority", func(b *testing.B) { benchmarkMixedLoad(b, true) })
}

// BenchmarkJournalReplay measures a cold daemon start over a journaled
// history: Open + full replay + cache warm + worker start + Close.
func BenchmarkJournalReplay(b *testing.B) {
	for _, jobs := range []int{100, 1000} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			dir := b.TempDir()
			reg := NewRegistry()
			if err := reg.Add("g", "inline", gen.HolmeKim(200, 3, 0.5, 9)); err != nil {
				b.Fatal(err)
			}
			info, _ := reg.Info("g")
			jnl, err := journal.Open(filepath.Join(dir, "journal"), journal.Options{})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < jobs; i++ {
				id := fmt.Sprintf("j-%d", i+1)
				spec := Spec{Graph: "g", K: 3, D: 1, Steps: 1000, Walkers: 1,
					Seed: int64(i), Priority: PriorityBatch}
				res := &core.Result{
					Config: spec.config(), Steps: 1000, ValidSamples: 900,
					Weights:    []float64{0.4, 0.6},
					TypeCounts: []int64{500, 400},
				}
				app := func(typ journal.Type, payload any) {
					b.Helper()
					rec := journal.Record{Type: typ, Job: id}
					switch p := payload.(type) {
					case recSubmitted:
						rec.Payload = mustJSON(b, p)
					case recDone:
						rec.Payload = mustJSON(b, p)
					}
					if err := jnl.Append(rec); err != nil {
						b.Fatal(err)
					}
				}
				app(journal.TypeSubmitted, recSubmitted{Spec: spec, GraphMeta: &info})
				app(journal.TypeStarted, nil)
				app(journal.TypeDone, recDone{Result: res})
			}
			if err := jnl.Close(); err != nil {
				b.Fatal(err)
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mgr, err := NewManager(reg, Options{
					Workers: 1, DataDir: dir, CacheSize: 2 * jobs,
				})
				if err != nil {
					b.Fatal(err)
				}
				if st := mgr.Stats(); st.WarmedResults != jobs {
					b.Fatalf("warmed %d results, want %d", st.WarmedResults, jobs)
				}
				mgr.Close()
			}
		})
	}
}

func mustJSON(b *testing.B, v any) []byte {
	b.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		b.Fatal(err)
	}
	return body
}
