package service

import (
	"container/list"

	"repro/internal/core"
	"repro/internal/obs"
)

// resultCache is an LRU cache of completed estimation results keyed by the
// full Spec key. Caching whole results is sound because the engine is
// deterministic: equal Config and Seed produce byte-identical merged
// Results at any GOMAXPROCS, so a cached entry is indistinguishable from a
// re-run. Partial (cancelled/failed) results are never cached.
//
// Each entry remembers the job that produced it (its owner). Journal
// compaction consults the owner set so a result's on-disk record survives
// for as long as its cache entry does — even after the producing job is
// pruned from the bounded job table — which is what keeps the cache warm
// across restarts.
//
// The cache is not internally locked; the Manager serializes access under
// its own mutex, which also keeps cache lookups atomic with the in-flight
// coalescing map (a spec must never be both cached and in flight).
type resultCache struct {
	cap       int
	ll        *list.List // front = most recently used
	items     map[Spec]*list.Element
	owners    map[string]*list.Element // producing job ID -> its live entry
	evictions *obs.Counter             // capacity evictions (not dropGraph purges)
}

type cacheEntry struct {
	spec  Spec
	res   *core.Result
	owner string
}

func newResultCache(capacity int, evictions *obs.Counter) *resultCache {
	return &resultCache{
		cap:       capacity,
		ll:        list.New(),
		items:     make(map[Spec]*list.Element),
		owners:    make(map[string]*list.Element),
		evictions: evictions,
	}
}

// get returns the cached result for spec, refreshing its recency.
func (c *resultCache) get(spec Spec) (*core.Result, bool) {
	el, ok := c.items[spec]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put inserts (or refreshes) spec's result as produced by job owner,
// evicting the least recently used entry when over capacity.
func (c *resultCache) put(spec Spec, res *core.Result, owner string) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.items[spec]; ok {
		entry := el.Value.(*cacheEntry)
		delete(c.owners, entry.owner)
		entry.res, entry.owner = res, owner
		if owner != "" {
			c.owners[owner] = el
		}
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{spec: spec, res: res, owner: owner})
	c.items[spec] = el
	if owner != "" {
		c.owners[owner] = el
	}
	for c.ll.Len() > c.cap {
		c.removeElement(c.ll.Back())
		c.evictions.Inc()
	}
}

// ownsJob reports whether the job's result still backs a live cache entry.
func (c *resultCache) ownsJob(jobID string) bool {
	_, ok := c.owners[jobID]
	return ok
}

// ownerSet snapshots the producing-job IDs of all live entries (the async
// compaction path copies it out from under Manager.mu before rewriting
// segments without the lock).
func (c *resultCache) ownerSet() map[string]bool {
	out := make(map[string]bool, len(c.owners))
	for id := range c.owners {
		out[id] = true
	}
	return out
}

// dropGraph removes every entry keyed to the named graph (the graph was
// unregistered; its results must not outlive it) and reports how many were
// purged.
func (c *resultCache) dropGraph(name string) int {
	purged := 0
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		if el.Value.(*cacheEntry).spec.Graph == name {
			c.removeElement(el)
			purged++
		}
	}
	return purged
}

func (c *resultCache) removeElement(el *list.Element) {
	entry := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, entry.spec)
	delete(c.owners, entry.owner)
}

func (c *resultCache) len() int { return c.ll.Len() }
