// Package mixing estimates random-walk mixing quantities on in-memory
// graphs: the spectral gap of the simple random walk's transition matrix and
// the ε-mixing time bound derived from it. Theorem 3 of the paper states the
// needed sample size is linear in the mixing time τ(1/8); this package makes
// that bound computable for concrete graphs (Definition 2, and the standard
// relaxation-time bound τ(ε) ≤ t_rel · ln(1/(ε·π_min))).
package mixing

import (
	"math"

	"repro/internal/graph"
)

// Result holds the spectral estimates for the simple random walk on a graph.
type Result struct {
	// Lambda2 is the second-largest eigenvalue (in absolute value) of the
	// lazy-symmetrized transition operator — the quantity controlling
	// convergence speed.
	Lambda2 float64
	// SpectralGap is 1 - Lambda2.
	SpectralGap float64
	// RelaxationTime is 1/SpectralGap.
	RelaxationTime float64
	// PiMin is the minimum stationary probability d_min/2|E|.
	PiMin float64
	// Iterations actually used by the power iteration.
	Iterations int
}

// MixingTime bounds τ(eps) via τ(ε) ≤ t_rel · ln(1/(ε·π_min)).
func (r Result) MixingTime(eps float64) float64 {
	if r.SpectralGap <= 0 || r.PiMin <= 0 || eps <= 0 {
		return math.Inf(1)
	}
	return r.RelaxationTime * math.Log(1/(eps*r.PiMin))
}

// Estimate computes the spectral gap of the lazy random walk
// P' = (I+P)/2 on g by power iteration on the stationarity-orthogonal
// complement. Laziness removes periodicity issues (bipartite graphs), and
// the symmetrized operator D^{1/2} P' D^{-1/2} makes the iteration stable.
// maxIter bounds the work; tol is the relative eigenvalue tolerance.
func Estimate(g *graph.Graph, maxIter int, tol float64) Result {
	n := g.NumNodes()
	res := Result{}
	if n == 0 || g.NumEdges() == 0 {
		return res
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	if tol <= 0 {
		tol = 1e-7
	}
	twoM := 2 * float64(g.NumEdges())

	// sqrtPi[v] = sqrt(d_v / 2|E|): the top eigenvector of the symmetrized
	// operator S = D^{-1/2} A D^{-1/2} (lazy: (I+S)/2), with eigenvalue 1.
	sqrtPi := make([]float64, n)
	minPi := math.Inf(1)
	for v := 0; v < n; v++ {
		d := float64(g.Degree(int32(v)))
		pi := d / twoM
		sqrtPi[v] = math.Sqrt(pi)
		if pi > 0 && pi < minPi {
			minPi = pi
		}
	}
	res.PiMin = minPi

	// Power iteration on x ⟂ sqrtPi.
	x := make([]float64, n)
	y := make([]float64, n)
	for v := range x {
		// Deterministic pseudo-random start, orthogonalized below.
		x[v] = math.Sin(float64(v)*12.9898 + 78.233)
	}
	orthogonalize(x, sqrtPi)
	normalize(x)

	lambda := 0.0
	for it := 1; it <= maxIter; it++ {
		res.Iterations = it
		// y = (I + S)/2 · x with S = D^{-1/2} A D^{-1/2}.
		for v := 0; v < n; v++ {
			dv := float64(g.Degree(int32(v)))
			if dv == 0 {
				y[v] = x[v] / 2
				continue
			}
			var acc float64
			for _, u := range g.Neighbors(int32(v)) {
				du := float64(g.Degree(u))
				acc += x[u] / math.Sqrt(dv*du)
			}
			y[v] = (x[v] + acc) / 2
		}
		orthogonalize(y, sqrtPi)
		newLambda := norm(y)
		if newLambda == 0 {
			lambda = 0
			break
		}
		for v := range y {
			y[v] /= newLambda
		}
		x, y = y, x
		if it > 4 && math.Abs(newLambda-lambda) <= tol*newLambda {
			lambda = newLambda
			break
		}
		lambda = newLambda
	}
	// Undo the laziness: eigenvalue μ of lazy operator = (1+λ_orig)/2. The
	// mixing bound uses the lazy chain's gap directly, which is what we
	// report (conservative for the non-lazy walk).
	res.Lambda2 = lambda
	res.SpectralGap = 1 - lambda
	if res.SpectralGap > 0 {
		res.RelaxationTime = 1 / res.SpectralGap
	} else {
		res.RelaxationTime = math.Inf(1)
	}
	return res
}

func orthogonalize(x, unit []float64) {
	var dot float64
	for i := range x {
		dot += x[i] * unit[i]
	}
	for i := range x {
		x[i] -= dot * unit[i]
	}
}

func norm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

func normalize(x []float64) {
	n := norm(x)
	if n == 0 {
		return
	}
	for i := range x {
		x[i] /= n
	}
}
