package experiments

import (
	"strings"
	"testing"
)

// The experiment drivers are exercised end-to-end at the Quick budget; these
// tests pin the structural properties of each report (methods present,
// datasets present, verifications passing) without fixing noisy numbers.

func TestTable2Report(t *testing.T) {
	var sb strings.Builder
	Table2(&sb)
	out := sb.String()
	for _, want := range []string{"SRW(1)", "SRW(2)", "SRW(3)", "g3_1", "g4_6", "match the published"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 output missing %q", want)
		}
	}
}

func TestTable3Report(t *testing.T) {
	var sb strings.Builder
	Table3(&sb)
	out := sb.String()
	if !strings.Contains(out, "g5_21") || !strings.Contains(out, "5-clique") {
		t.Error("table3 missing 5-clique row")
	}
	if n := strings.Count(out, "suspected erratum"); n != 5 {
		t.Errorf("table3 flags %d errata, want 5", n)
	}
}

func TestTable4AllVerified(t *testing.T) {
	var sb strings.Builder
	Table4(&sb)
	out := sb.String()
	if strings.Contains(out, "FAILED") || strings.Contains(out, "false") {
		t.Errorf("table4 verification failed:\n%s", out)
	}
	if strings.Count(out, "true") < 8 {
		t.Errorf("table4 verified fewer rows than expected:\n%s", out)
	}
}

func TestFig5Report(t *testing.T) {
	var sb strings.Builder
	Fig5(&sb, Quick())
	out := sb.String()
	for _, want := range []string{"weighted concentration", "NRMSE", "SRW2CSS", "4-clique"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig5 output missing %q", want)
		}
	}
}

func TestTable6Report(t *testing.T) {
	var sb strings.Builder
	Table6(&sb, Params{Steps: 300, Trials: 2})
	out := sb.String()
	for _, want := range []string{"SRW2", "SRW2CSS", "SRW3", "SRW4", "Exact", "brightkite", "facebook"} {
		if !strings.Contains(out, want) {
			t.Errorf("table6 output missing %q", want)
		}
	}
}

func TestTable7Report(t *testing.T) {
	var sb strings.Builder
	Table7(&sb, Quick())
	out := sb.String()
	for _, want := range []string{"facebook", "twitter", "SRW2CSS", "PSRW", "Exact"} {
		if !strings.Contains(out, want) {
			t.Errorf("table7 output missing %q", want)
		}
	}
}

func TestQuickParams(t *testing.T) {
	p := Quick()
	if p.Steps <= 0 || p.Trials <= 0 {
		t.Fatalf("Quick() = %+v", p)
	}
	def := Params{}.withDefaults()
	if def.Steps != 20000 || def.Trials != 200 {
		t.Fatalf("defaults = %+v", def)
	}
}

func TestFmtF(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		0.12345: "0.1235",
		12345:   "1.234e+04",
		1e-9:    "1.000e-09",
	}
	for x, want := range cases {
		if got := fmtF(x); got != want {
			t.Errorf("fmtF(%v) = %q, want %q", x, got, want)
		}
	}
}
