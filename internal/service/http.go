package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/obs"
)

// Server is the HTTP front end of the estimation service.
//
// Endpoints (JSON):
//
//	GET    /v1/graphs             -> {"graphs":[{name,source,nodes,edges,max_degree}...]}
//	GET    /v1/graphs/{name}      -> one GraphInfo
//	DELETE /v1/graphs/{name}      -> unregister the graph and purge its cached
//	                                 results; queued jobs against it fail
//	                                 cleanly at dispatch
//	POST   /v1/jobs               -> submit a Spec (optional "priority":
//	                                 interactive|batch|background; "sizes":
//	                                 [3,4,5] instead of "k" runs one shared
//	                                 walk covering every listed size, paying
//	                                 the step budget once and fan-out-filling
//	                                 the result cache per size); 202 +
//	                                 JobView (200 when a cache hit answers it
//	                                 instantly)
//	GET    /v1/jobs               -> all jobs in submission order
//	GET    /v1/jobs/{id}          -> one JobView with live progress; a job
//	                                 resumed from a journal checkpoint after
//	                                 a crash reports progress.resumed_steps,
//	                                 the pre-crash steps it preserved
//	GET    /v1/jobs/{id}/events   -> server-sent events: a "snapshot" event,
//	                                 then "checkpoint" events at every
//	                                 progress barrier, then the terminal
//	                                 event ("done"/"failed"/"canceled");
//	                                 each data line is a JobEvent's JobView
//	DELETE /v1/jobs/{id}          -> cancel; running walkers stop within a
//	                                 few hundred transitions
//	GET    /v1/stats              -> service counters (runs, cache hits,
//	                                 queue depths by class, queue-wait
//	                                 quantiles, journal state...)
//	POST   /v1/partitions         -> distributed-execution worker endpoint
//	                                 (binary Assignment in, Frame stream
//	                                 out); 404 unless started with -worker
//
// Operational endpoints (non-JSON unless noted):
//
//	GET    /metrics               -> Prometheus text exposition of the same
//	                                 registry /v1/stats is derived from
//	GET    /healthz               -> liveness: 200 as soon as the listener
//	                                 serves
//	GET    /readyz                -> readiness: 200 once graph registration
//	                                 and journal replay finished, 503 before
type Server struct {
	reg *Registry
	mgr *Manager

	// Metrics is the registry rendered at GET /metrics. NewServer defaults it
	// to the manager's own registry; cmd/graphletd passes the same registry
	// its HTTP middleware records into.
	Metrics *obs.Registry
	// Health gates GET /readyz. Nil reports ready (tests and embedded servers
	// have no startup phase worth gating).
	Health *obs.Health
	// Partitions serves POST /v1/partitions — the distributed-execution
	// worker endpoint (a dist.Handler). Nil (the default) answers 404:
	// a graphletd only accepts partition work when started with -worker.
	Partitions http.Handler
}

// NewServer wires the registry and job manager into an HTTP handler.
func NewServer(reg *Registry, mgr *Manager) *Server {
	return &Server{reg: reg, mgr: mgr, Metrics: mgr.MetricsRegistry()}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimSuffix(r.URL.Path, "/")
	switch {
	case path == "/metrics" && r.Method == http.MethodGet:
		s.Metrics.Handler().ServeHTTP(w, r)
	case path == "/healthz" && r.Method == http.MethodGet:
		s.Health.ServeLive(w, r)
	case path == "/readyz" && r.Method == http.MethodGet:
		s.Health.ServeReady(w, r)
	case path == "/v1/graphs" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]any{"graphs": s.reg.List()})
	case strings.HasPrefix(path, "/v1/graphs/"):
		s.graph(w, r, strings.TrimPrefix(path, "/v1/graphs/"))
	case path == "/v1/jobs" && r.Method == http.MethodPost:
		s.submit(w, r)
	case path == "/v1/jobs" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]any{"jobs": s.mgr.List()})
	case strings.HasPrefix(path, "/v1/jobs/"):
		rest := strings.TrimPrefix(path, "/v1/jobs/")
		if id, ok := strings.CutSuffix(rest, "/events"); ok && r.Method == http.MethodGet {
			s.events(w, r, id)
			return
		}
		s.job(w, r, rest)
	case path == "/v1/stats" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, s.mgr.Stats())
	case path == "/v1/partitions":
		if s.Partitions == nil {
			writeError(w, http.StatusNotFound, "this node does not accept partition work (start with -worker)")
			return
		}
		s.Partitions.ServeHTTP(w, r)
	default:
		writeError(w, http.StatusNotFound, "not found")
	}
}

// graph dispatches GET (introspect) and DELETE (unregister) for one graph.
func (s *Server) graph(w http.ResponseWriter, r *http.Request, name string) {
	switch r.Method {
	case http.MethodGet:
		info, ok := s.reg.Info(name)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Sprintf("unknown graph %q", name))
			return
		}
		writeJSON(w, http.StatusOK, info)
	case http.MethodDelete:
		// Remove first so new submissions fail validation, then purge the
		// cache so a future re-bind of the name cannot serve stale results.
		if !s.reg.Remove(name) {
			writeError(w, http.StatusNotFound, fmt.Sprintf("unknown graph %q", name))
			return
		}
		purged := s.mgr.DropGraph(name)
		writeJSON(w, http.StatusOK, map[string]any{"removed": name, "purged_results": purged})
	default:
		writeError(w, http.StatusMethodNotAllowed, "method not allowed")
	}
}

// submit decodes a Spec and admits it.
func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad spec: %v", err))
		return
	}
	view, err := s.mgr.SubmitCtx(r.Context(), spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	status := http.StatusAccepted
	if view.State.terminal() { // cache hit: answered without queueing
		status = http.StatusOK
	}
	writeJSON(w, status, view)
}

// job dispatches GET (poll) and DELETE (cancel) for one job ID.
func (s *Server) job(w http.ResponseWriter, r *http.Request, id string) {
	switch r.Method {
	case http.MethodGet:
		view, ok := s.mgr.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
			return
		}
		writeJSON(w, http.StatusOK, view)
	case http.MethodDelete:
		view, err := s.mgr.Cancel(id)
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, view)
	default:
		writeError(w, http.StatusMethodNotAllowed, "method not allowed")
	}
}

// events streams a job's lifecycle as server-sent events until the job
// reaches a terminal state or the client disconnects. Slow consumers may
// miss intermediate checkpoints (their buffers overflow and snapshots are
// dropped); the terminal event is always delivered.
func (s *Server) events(w http.ResponseWriter, r *http.Request, id string) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	events, unsub, err := s.mgr.Subscribe(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	defer unsub()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	lastType := ""
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				// Stream over. If the buffer overflowed past the terminal
				// event, fetch and deliver the final state explicitly.
				if !State(lastType).terminal() {
					if view, ok := s.mgr.Get(id); ok && view.State.terminal() {
						writeSSE(w, JobEvent{Type: string(view.State), Job: view})
						flusher.Flush()
					}
				}
				return
			}
			writeSSE(w, ev)
			flusher.Flush()
			lastType = ev.Type
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE renders one JobEvent as an SSE frame: the event line carries the
// type, the data line the JobView.
func writeSSE(w http.ResponseWriter, ev JobEvent) {
	body, err := json.Marshal(ev.Job)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, body)
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// RoutePattern collapses a request path to its route template so HTTP
// metrics stay bounded-cardinality: job IDs and graph names become {id} and
// {name} instead of one label value per resource. Unknown paths share one
// "other" bucket (a scanner probing random URLs must not grow the registry).
func RoutePattern(path string) string {
	path = strings.TrimSuffix(path, "/")
	switch path {
	case "/v1/graphs", "/v1/jobs", "/v1/stats", "/v1/partitions", "/metrics", "/healthz", "/readyz":
		return path
	}
	if strings.HasPrefix(path, "/v1/graphs/") {
		return "/v1/graphs/{name}"
	}
	if rest, ok := strings.CutPrefix(path, "/v1/jobs/"); ok {
		if strings.HasSuffix(rest, "/events") {
			return "/v1/jobs/{id}/events"
		}
		return "/v1/jobs/{id}"
	}
	return "other"
}
