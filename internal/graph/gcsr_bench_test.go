package graph_test

// Load-path and probe benchmarks on a >=1M-edge synthetic graph, the numbers
// behind BENCH_pr3.json: text parse (LoadEdgeList) vs portable binary decode
// (Load) vs zero-copy mmap (OpenMapped), plus HasEdge against hub and
// non-hub endpoints and the cached-arc RandomEdge draw. The fixture graph is
// deterministic (Barabási–Albert, fixed seed) and cached as files under the
// OS temp dir so repeated bench runs skip regeneration.

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

const (
	benchNodes      = 200_000
	benchAttach     = 5 // BA attachment factor: ~1M edges
	benchSeed       = 1337
	benchDirName    = "graphletrw-gcsr-bench"
	benchTxtName    = "ba-1m.txt"
	benchGcsrName   = "ba-1m.gcsr"
	benchGcsrV2Name = "ba-1m.v2.gcsr"
)

var benchFixture struct {
	once  sync.Once
	txt   string
	gcsr  string
	gcsr2 string
	g     *graph.Graph
	err   error
}

// fixture generates the benchmark graph once per process and materializes
// the on-disk encodings (text, .gcsr v1, .gcsr v2), reusing files from
// earlier runs when present (contents are deterministic).
func fixture(b *testing.B) (txt, gcsr string, g *graph.Graph) {
	b.Helper()
	f := &benchFixture
	f.once.Do(func() {
		dir := filepath.Join(os.TempDir(), benchDirName)
		if f.err = os.MkdirAll(dir, 0o755); f.err != nil {
			return
		}
		f.txt = filepath.Join(dir, benchTxtName)
		f.gcsr = filepath.Join(dir, benchGcsrName)
		f.gcsr2 = filepath.Join(dir, benchGcsrV2Name)
		f.g = gen.BarabasiAlbert(benchNodes, benchAttach, benchSeed)
		if _, err := os.Stat(f.txt); err != nil {
			// Write-then-rename so a concurrent bench process never reads a
			// half-written edge list (graph.Save is already atomic).
			tmp := f.txt + ".tmp"
			if f.err = graph.SaveEdgeList(tmp, f.g); f.err != nil {
				return
			}
			if f.err = os.Rename(tmp, f.txt); f.err != nil {
				return
			}
		}
		if _, err := os.Stat(f.gcsr); err != nil {
			if f.err = graph.Save(f.gcsr, f.g); f.err != nil {
				return
			}
		}
		if _, err := os.Stat(f.gcsr2); err != nil {
			if f.err = graph.SaveOpts(f.gcsr2, f.g, graph.SaveOptions{Version: 2}); f.err != nil {
				return
			}
		}
	})
	if f.err != nil {
		b.Fatal(f.err)
	}
	return f.txt, f.gcsr, f.g
}

// fixtureV2 returns the v2-encoded fixture path.
func fixtureV2(b *testing.B) string {
	b.Helper()
	fixture(b)
	return benchFixture.gcsr2
}

func BenchmarkLoadEdgeList(b *testing.B) {
	txt, _, _ := fixture(b)
	b.SetBytes(fileSize(b, txt))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.LoadEdgeList(txt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryLoad(b *testing.B) {
	_, gcsr, _ := fixture(b)
	b.SetBytes(fileSize(b, gcsr))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.Load(gcsr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpenMapped(b *testing.B) {
	_, gcsr, _ := fixture(b)
	b.SetBytes(fileSize(b, gcsr))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := graph.OpenMapped(gcsr)
		if err != nil {
			b.Fatal(err)
		}
		m.Close()
	}
}

func BenchmarkBinaryLoadV2(b *testing.B) {
	gcsr2 := fixtureV2(b)
	b.SetBytes(fileSize(b, gcsr2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.Load(gcsr2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpenMappedV2(b *testing.B) {
	gcsr2 := fixtureV2(b)
	b.SetBytes(fileSize(b, gcsr2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := graph.OpenMapped(gcsr2)
		if err != nil {
			b.Fatal(err)
		}
		m.Close()
	}
}

// openWarmV2 opens the v2 fixture and makes every block resident, the
// steady state a long-running walk settles into under the default cache.
func openWarmV2(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := graph.OpenMapped(fixtureV2(b))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { g.Close() })
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		g.Neighbors(v)
	}
	return g
}

func fileSize(b *testing.B, path string) int64 {
	st, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	return st.Size()
}

// probeTargets picks a hub endpoint (the max-degree node) and a non-hub
// endpoint, plus a pool of probe partners.
func probeTargets(b *testing.B, g *graph.Graph) (hub, nonHub int32, partners []int32) {
	b.Helper()
	hub = -1
	best := -1
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if d := g.Degree(v); d > best {
			best, hub = d, v
		}
		if nonHub == 0 && !g.IsHub(v) && g.Degree(v) > 0 {
			nonHub = v
		}
	}
	if !g.IsHub(hub) {
		b.Fatalf("max-degree node %d (degree %d) is not a hub", hub, best)
	}
	rng := rand.New(rand.NewSource(2))
	partners = make([]int32, 1024)
	for i := range partners {
		partners[i] = int32(rng.Intn(g.NumNodes()))
	}
	return hub, nonHub, partners
}

func BenchmarkHasEdge(b *testing.B) {
	_, _, g := fixture(b)
	hub, nonHub, partners := probeTargets(b, g)
	b.Run("hub", func(b *testing.B) {
		hits := 0
		for i := 0; i < b.N; i++ {
			if g.HasEdge(partners[i&1023], hub) {
				hits++
			}
		}
		sinkInt = hits
	})
	b.Run("nonhub", func(b *testing.B) {
		hits := 0
		for i := 0; i < b.N; i++ {
			if g.HasEdge(partners[i&1023], nonHub) {
				hits++
			}
		}
		sinkInt = hits
	})
}

// BenchmarkHasEdgeV2 is BenchmarkHasEdge over the warm block-compressed
// backing: the delta vs the v1 numbers is the decode-cache routing cost.
func BenchmarkHasEdgeV2(b *testing.B) {
	g := openWarmV2(b)
	hub, nonHub, partners := probeTargets(b, g)
	b.Run("hub", func(b *testing.B) {
		hits := 0
		for i := 0; i < b.N; i++ {
			if g.HasEdge(partners[i&1023], hub) {
				hits++
			}
		}
		sinkInt = hits
	})
	b.Run("nonhub", func(b *testing.B) {
		hits := 0
		for i := 0; i < b.N; i++ {
			if g.HasEdge(partners[i&1023], nonHub) {
				hits++
			}
		}
		sinkInt = hits
	})
}

// BenchmarkNeighborsV2 times a warm cached row fetch against the v1 slice
// expression it replaces.
func BenchmarkNeighborsV2(b *testing.B) {
	g := openWarmV2(b)
	rng := rand.New(rand.NewSource(5))
	nodes := make([]int32, 1024)
	for i := range nodes {
		nodes[i] = int32(rng.Intn(g.NumNodes()))
	}
	b.ResetTimer()
	s := 0
	for i := 0; i < b.N; i++ {
		s += len(g.Neighbors(nodes[i&1023]))
	}
	sinkInt = s
}

func BenchmarkRandomEdge(b *testing.B) {
	_, _, g := fixture(b)
	rng := rand.New(rand.NewSource(3))
	g.RandomEdge(rng) // build the arc index outside the timed region
	b.ResetTimer()
	var s int32
	for i := 0; i < b.N; i++ {
		u, v := g.RandomEdge(rng)
		s += u + v
	}
	sinkInt = int(s)
}

var sinkInt int
