// Partitioned execution: the helpers that let one estimation run span many
// machines and still produce bytes identical to a local run.
//
// The unit of distribution is a contiguous walker range [lo, hi) of the
// ensemble (NewPartitionEstimator / NewPartitionMultiEstimator). A partition
// snapshots exactly like a full run — its EnsembleState carries the full
// Config and the global checkpoint target, just a subset of the walker
// states — so the existing versioned codecs are the wire format. A
// coordinator stitches partition states back together with
// CombinePartitionStates (validating order and quotas) and extracts the
// merged Result with MergedResult, which sums the per-walker accumulators in
// global walker-index order — the exact float addition sequence
// Estimator.merged performs locally. Merging per-partition pre-merged
// Results instead would NOT be byte-identical: float addition is not
// associative, so the per-walker accumulators must cross the wire.

package core

import (
	"fmt"

	"repro/internal/graphlet"
)

// PartitionWindows returns how many of the first `total` windows walkers
// [lo, hi) of a `walkers`-walker ensemble own together — the walk progress a
// partition snapshot at target `total` represents (used for resumed-step
// accounting when a partition fails over from its last snapshot).
func PartitionWindows(total, walkers, lo, hi int) int {
	w := walkerCount(walkers)
	sum := 0
	for i := lo; i < hi && i < w; i++ {
		sum += walkerQuota(total, w, i)
	}
	return sum
}

// Slice extracts the partition [lo, hi) of a full-ensemble state, the resume
// blob for re-dispatching that partition after a coordinator restart. The
// receiver must be a full state (one walker state per configured walker);
// the returned state shares the receiver's walker slices and must be treated
// as read-only.
func (st *EnsembleState) Slice(lo, hi int) (*EnsembleState, error) {
	w := walkerCount(st.Config.Walkers)
	if len(st.Walkers) != w {
		return nil, fmt.Errorf("core: slice of partial ensemble state (%d walker states, ensemble has %d)", len(st.Walkers), w)
	}
	if lo < 0 || hi > w || lo >= hi {
		return nil, fmt.Errorf("core: partition [%d,%d) out of range for %d walkers", lo, hi, w)
	}
	return &EnsembleState{Config: st.Config, WindowsDone: st.WindowsDone, Walkers: st.Walkers[lo:hi]}, nil
}

// CombinePartitionStates stitches per-partition states — ordered by first
// walker index, contiguous, jointly covering every walker — back into the
// full ensemble state. All partitions must have been captured under the same
// Config at the same checkpoint target; each walker's window count must
// match the quota of the global index it lands on, which rejects missing,
// duplicated, and (in general) misordered partitions.
func CombinePartitionStates(parts []*EnsembleState) (*EnsembleState, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("core: no partition states to combine")
	}
	first := parts[0]
	if first == nil {
		return nil, fmt.Errorf("core: nil partition state 0")
	}
	w := walkerCount(first.Config.Walkers)
	out := &EnsembleState{
		Config:      first.Config,
		WindowsDone: first.WindowsDone,
		Walkers:     make([]WalkerState, 0, w),
	}
	for pi, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("core: nil partition state %d", pi)
		}
		if p.Config != first.Config {
			return nil, fmt.Errorf("core: partition %d captured under config %+v, partition 0 under %+v", pi, p.Config, first.Config)
		}
		if p.WindowsDone != first.WindowsDone {
			return nil, fmt.Errorf("core: partition %d at checkpoint target %d, partition 0 at %d", pi, p.WindowsDone, first.WindowsDone)
		}
		for i := range p.Walkers {
			gi := len(out.Walkers) // global index this walker state lands on
			if want := walkerQuota(p.WindowsDone, w, gi); p.Walkers[i].ResSteps != want {
				return nil, fmt.Errorf("core: combined walker %d processed %d windows, want %d at target %d (partitions missing or out of order?)",
					gi, p.Walkers[i].ResSteps, want, p.WindowsDone)
			}
			out.Walkers = append(out.Walkers, p.Walkers[i])
		}
	}
	if len(out.Walkers) != w {
		return nil, fmt.Errorf("core: partitions cover %d walkers, ensemble has %d", len(out.Walkers), w)
	}
	return out, nil
}

// MergedResult computes the merged Result of the walker states the snapshot
// carries, summing accumulators in walker-index order — the identical float
// addition sequence Estimator.merged performs, so for a full-ensemble state
// (local or combined from partitions) the Result is byte-identical to what
// the live run returns at the same checkpoint target.
func (st *EnsembleState) MergedResult() (*Result, error) {
	if st.Config.K < 3 || st.Config.K > graphlet.MaxK {
		return nil, fmt.Errorf("core: merged result: K=%d out of range", st.Config.K)
	}
	nt := graphlet.Count(st.Config.K)
	out := &Result{
		Config:     st.Config,
		Weights:    make([]float64, nt),
		TypeCounts: make([]int64, nt),
	}
	for i := range st.Walkers {
		w := &st.Walkers[i]
		if len(w.Weights) != nt || len(w.TypeCounts) != nt {
			return nil, fmt.Errorf("core: merged result: walker %d accumulator has %d/%d types, want %d",
				i, len(w.Weights), len(w.TypeCounts), nt)
		}
		out.Merge(&Result{
			Config:       st.Config,
			Steps:        w.ResSteps,
			ValidSamples: w.ValidSamples,
			Weights:      w.Weights,
			TypeCounts:   w.TypeCounts,
			StarAcc:      w.StarAcc,
		})
	}
	return out, nil
}

// Slice is EnsembleState.Slice for multi-size states.
func (st *MultiEnsembleState) Slice(lo, hi int) (*MultiEnsembleState, error) {
	w := walkerCount(st.Config.Walkers)
	if len(st.Walkers) != w {
		return nil, fmt.Errorf("core: slice of partial multi ensemble state (%d walker states, ensemble has %d)", len(st.Walkers), w)
	}
	if lo < 0 || hi > w || lo >= hi {
		return nil, fmt.Errorf("core: partition [%d,%d) out of range for %d walkers", lo, hi, w)
	}
	return &MultiEnsembleState{Config: st.Config, WindowsDone: st.WindowsDone, Walkers: st.Walkers[lo:hi]}, nil
}

// CombineMultiPartitionStates is CombinePartitionStates for multi-size
// states; every size's window count is quota-checked per walker.
func CombineMultiPartitionStates(parts []*MultiEnsembleState) (*MultiEnsembleState, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("core: no partition states to combine")
	}
	first := parts[0]
	if first == nil {
		return nil, fmt.Errorf("core: nil partition state 0")
	}
	w := walkerCount(first.Config.Walkers)
	out := &MultiEnsembleState{
		Config:      first.Config,
		WindowsDone: first.WindowsDone,
		Walkers:     make([]MultiWalkerState, 0, w),
	}
	for pi, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("core: nil partition state %d", pi)
		}
		if !p.Config.equal(first.Config) {
			return nil, fmt.Errorf("core: partition %d captured under config %+v, partition 0 under %+v", pi, p.Config, first.Config)
		}
		if p.WindowsDone != first.WindowsDone {
			return nil, fmt.Errorf("core: partition %d at checkpoint target %d, partition 0 at %d", pi, p.WindowsDone, first.WindowsDone)
		}
		for i := range p.Walkers {
			gi := len(out.Walkers)
			want := walkerQuota(p.WindowsDone, w, gi)
			for j := range p.Walkers[i].Accs {
				if done := p.Walkers[i].Accs[j].Done; done != want {
					return nil, fmt.Errorf("core: combined walker %d size[%d] processed %d windows, want %d at target %d (partitions missing or out of order?)",
						gi, j, done, want, p.WindowsDone)
				}
			}
			out.Walkers = append(out.Walkers, p.Walkers[i])
		}
	}
	if len(out.Walkers) != w {
		return nil, fmt.Errorf("core: partitions cover %d walkers, ensemble has %d", len(out.Walkers), w)
	}
	return out, nil
}

// MergedResult computes the merged MultiResult of the walker states the
// snapshot carries, in walker-index order — the float addition sequence of
// MultiEstimator.merged, so for a full state the per-size Results are
// byte-identical to the live run's at the same checkpoint target.
func (st *MultiEnsembleState) MergedResult() (*MultiResult, error) {
	if len(st.Config.Sizes) == 0 {
		return nil, fmt.Errorf("core: merged result: no sizes")
	}
	base := Config{D: st.Config.D, CSS: st.Config.CSS, NB: st.Config.NB}
	out := &MultiResult{Results: make(map[int]*Result, len(st.Config.Sizes))}
	for _, k := range st.Config.Sizes {
		if k < 3 || k > graphlet.MaxK {
			return nil, fmt.Errorf("core: merged result: size %d out of range", k)
		}
		c := base
		c.K = k
		out.Results[k] = &Result{
			Config:     c,
			Weights:    make([]float64, graphlet.Count(k)),
			TypeCounts: make([]int64, graphlet.Count(k)),
		}
	}
	for i := range st.Walkers {
		ws := &st.Walkers[i]
		if len(ws.Accs) != len(st.Config.Sizes) {
			return nil, fmt.Errorf("core: merged result: walker %d has %d size accumulators, want %d",
				i, len(ws.Accs), len(st.Config.Sizes))
		}
		part := &MultiResult{Results: make(map[int]*Result, len(st.Config.Sizes))}
		minDone := ws.Accs[0].Done
		for j, k := range st.Config.Sizes {
			a := &ws.Accs[j]
			nt := graphlet.Count(k)
			if len(a.Weights) != nt || len(a.TypeCounts) != nt {
				return nil, fmt.Errorf("core: merged result: walker %d size %d accumulator has %d/%d types, want %d",
					i, k, len(a.Weights), len(a.TypeCounts), nt)
			}
			c := base
			c.K = k
			part.Results[k] = &Result{
				Config:       c,
				Steps:        a.Done,
				ValidSamples: a.ValidSamples,
				Weights:      a.Weights,
				TypeCounts:   a.TypeCounts,
			}
			if a.Done < minDone {
				minDone = a.Done
			}
		}
		part.Steps = minDone
		out.Merge(part)
	}
	for _, r := range out.Results {
		r.Config.Walkers = st.Config.Walkers
		r.Config.Seed = st.Config.Seed
	}
	return out, nil
}
