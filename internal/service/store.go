package service

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/service/journal"
)

// This file is the Manager's durability layer: every job-lifecycle
// transition is appended to an append-only journal (internal/service/journal)
// as it happens, and on startup the journal is replayed to rebuild the job
// table, warm the result cache with every completed run, and re-queue the
// jobs that were queued or running when the previous process died. The
// journal is the single source of truth; the in-memory job table is a
// replayable view of it (the LogBase pattern).
//
// Record payloads are JSON. encoding/json round-trips float64 exactly
// (shortest-representation encoding), so a result warmed from the journal
// is byte-identical to the run that produced it — the same property that
// makes the in-memory result cache sound.

// recSubmitted is the payload of a TypeSubmitted record.
type recSubmitted struct {
	Spec Spec `json:"spec"`
	// Cached marks a submission answered from the result cache without a
	// run; its terminal record carries no result payload (the cache entry of
	// the originating run, replayed earlier in the log, already holds it).
	Cached bool `json:"cached,omitempty"`
	// GraphMeta fingerprints the topology the spec was admitted against.
	// Within one process a registered name is never re-bound, but across a
	// restart the operator may point the same -graph name at a different
	// file; recovery compares this fingerprint against the freshly
	// registered graph and refuses to warm the cache (or re-run the job)
	// from results that belong to different topology.
	GraphMeta *GraphInfo `json:"graph_meta,omitempty"`
}

// recCheckpoint is the payload of a TypeCheckpoint record.
type recCheckpoint struct {
	Steps         int       `json:"steps"`
	Concentration []float64 `json:"concentration,omitempty"`
}

// recDone is the payload of a TypeDone record.
type recDone struct {
	Result *core.Result `json:"result,omitempty"`
}

// recFailed is the payload of TypeFailed and TypeCanceled records.
type recFailed struct {
	Error string `json:"error,omitempty"`
}

// journalAppendLocked appends one record, best effort: a failed append is
// reported to stderr-by-counter rather than failing the job — the daemon
// keeps serving from memory if the disk fills. Caller holds m.mu. No-op
// while replaying (replay must not re-journal what it reads) or when the
// manager runs without a data dir.
func (m *Manager) journalAppendLocked(typ journal.Type, jobID string, payload any) {
	if m.jnl == nil || m.replaying {
		return
	}
	var body []byte
	if payload != nil {
		var err error
		if body, err = json.Marshal(payload); err != nil {
			m.journalErrs++
			return
		}
	}
	if err := m.jnl.Append(journal.Record{Type: typ, Job: jobID, Payload: body}); err != nil {
		m.journalErrs++
	}
}

// journalTerminalLocked records a job reaching its final state. Caller
// holds m.mu.
func (m *Manager) journalTerminalLocked(j *job) {
	switch j.state {
	case StateDone:
		p := recDone{}
		if !j.cached { // cache hits replay their result via the original run
			p.Result = j.result
		}
		m.journalAppendLocked(journal.TypeDone, j.id, p)
	case StateFailed:
		m.journalAppendLocked(journal.TypeFailed, j.id, recFailed{Error: j.errMsg})
	case StateCanceled:
		m.journalAppendLocked(journal.TypeCanceled, j.id, recFailed{Error: j.errMsg})
	}
}

// recover rebuilds the manager's state from the journal: the job table in
// submission order, the warm result cache, and the re-queued remainder.
// Called from NewManager before the workers start, so no locking is needed;
// m.replaying suppresses re-journaling.
func (m *Manager) recover() error {
	m.replaying = true
	defer func() { m.replaying = false }()

	metas := make(map[string]*GraphInfo) // job ID -> admitted-against fingerprint
	err := m.jnl.Replay(func(rec journal.Record) error {
		j := m.jobs[rec.Job]
		if rec.Type != journal.TypeSubmitted && j == nil {
			// The job's submitted record was compacted away or its segment
			// lost; without a spec the record cannot be applied. Skip rather
			// than fail the whole recovery.
			return nil
		}
		switch rec.Type {
		case journal.TypeSubmitted:
			var p recSubmitted
			if err := json.Unmarshal(rec.Payload, &p); err != nil {
				return fmt.Errorf("service: replay %s %s: %w", rec.Type, rec.Job, err)
			}
			if j == nil {
				j = &job{id: rec.Job, done: make(chan struct{})}
				m.jobs[rec.Job] = j
				m.order = append(m.order, rec.Job)
			}
			j.spec = p.Spec
			j.state = StateQueued
			j.cached = p.Cached
			j.coalesced = 1
			j.created = time.Unix(0, rec.Time)
			j.progress = Progress{Total: p.Spec.Steps}
			metas[j.id] = p.GraphMeta
		case journal.TypeStarted:
			j.state = StateRunning
			j.started = time.Unix(0, rec.Time)
		case journal.TypeCheckpoint:
			var p recCheckpoint
			if err := json.Unmarshal(rec.Payload, &p); err != nil {
				return fmt.Errorf("service: replay %s %s: %w", rec.Type, rec.Job, err)
			}
			j.progress.Steps = p.Steps
			j.progress.Concentration = p.Concentration
		case journal.TypeDone:
			var p recDone
			if err := json.Unmarshal(rec.Payload, &p); err != nil {
				return fmt.Errorf("service: replay %s %s: %w", rec.Type, rec.Job, err)
			}
			j.state = StateDone
			j.finished = time.Unix(0, rec.Time)
			j.result = p.Result
		case journal.TypeFailed, journal.TypeCanceled:
			var p recFailed
			if err := json.Unmarshal(rec.Payload, &p); err != nil {
				return fmt.Errorf("service: replay %s %s: %w", rec.Type, rec.Job, err)
			}
			if rec.Type == journal.TypeFailed {
				j.state = StateFailed
			} else {
				j.state = StateCanceled
			}
			j.finished = time.Unix(0, rec.Time)
			j.errMsg = p.Error
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Second pass in submission order: warm the cache from completed runs,
	// close terminal jobs' done channels, and re-queue whatever the crash
	// interrupted. Both actions require the job's recorded graph
	// fingerprint to match the currently registered graph — a name re-bound
	// to different topology across the restart must neither serve the old
	// results nor silently run old specs against the new graph.
	sameBind := func(id string, graphName string) bool {
		meta := metas[id]
		if meta == nil {
			return false
		}
		info, ok := m.reg.Info(graphName)
		return ok && info.Nodes == meta.Nodes && info.Edges == meta.Edges &&
			info.MaxDegree == meta.MaxDegree
	}
	for _, id := range m.order {
		j := m.jobs[id]
		if n := jobIDNumber(id); n > m.nextID {
			m.nextID = n
		}
		switch {
		case j.state == StateDone:
			if j.result != nil {
				if sameBind(id, j.spec.Graph) {
					m.cache.put(j.spec.key(), j.result, j.id)
					m.warmed++
				}
				j.progress.Steps = j.result.Steps
				j.progress.Concentration = j.result.Concentration()
			} else if j.cached {
				// A cache-hit job: its result lives with the originating run,
				// replayed (and cached) earlier in the log — unless the LRU
				// has since evicted it, in which case the view simply omits
				// the result body.
				if res, ok := m.cache.get(j.spec.key()); ok {
					j.result = res
				}
			}
			close(j.done)
		case j.state.terminal():
			close(j.done)
		default:
			// Queued or running at crash: the walk state is gone, so the job
			// restarts from scratch with a fresh queue slot at its original
			// priority — but only onto the same topology it was admitted
			// against.
			if !sameBind(id, j.spec.Graph) {
				j.state = StateFailed
				j.errMsg = fmt.Sprintf("service: graph %q is not registered with the same topology it was submitted against; job not re-run", j.spec.Graph)
				close(j.done)
				continue
			}
			j.state = StateQueued
			j.progress = Progress{Total: j.spec.Steps}
			j.started = time.Time{}
			if err := m.sched.enqueue(j); err != nil {
				j.state = StateFailed
				j.errMsg = fmt.Sprintf("recovery: %v", err)
				close(j.done)
				continue
			}
			m.inflight[j.spec.key()] = j
			m.recovered++
		}
	}
	m.pruneLocked()
	if m.jnl.Segments() > m.opts.CompactSegments {
		return m.compactJournalLocked()
	}
	return nil
}

// jobIDNumber parses the numeric suffix of a "j-N" job ID (0 if malformed).
func jobIDNumber(id string) int {
	rest, ok := strings.CutPrefix(id, "j-")
	if !ok {
		return 0
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// maybeCompactJournalLocked compacts once the log spans more segments than
// the configured bound, dropping superseded records so on-disk size tracks
// the live job table instead of total request history. Caller holds m.mu.
func (m *Manager) maybeCompactJournalLocked() {
	if m.jnl == nil || m.jnl.Segments() <= m.opts.CompactSegments {
		return
	}
	if err := m.compactJournalLocked(); err != nil {
		m.journalErrs++
	}
}

// compactJournalLocked rewrites the journal keeping, for each job still in
// the table, its submitted record and (when terminal) its terminal record,
// plus the submitted/done pair of any job whose result still backs a live
// cache entry (so restart re-warms the LRU even after the producing job was
// pruned from the bounded table). Started and checkpoint records are
// superseded by construction — a non-terminal job restarts from scratch on
// recovery — and everything else is dead weight. Caller holds m.mu.
func (m *Manager) compactJournalLocked() error {
	return m.jnl.Compact(func(rec journal.Record) bool {
		if m.cache.ownsJob(rec.Job) {
			return rec.Type == journal.TypeSubmitted || rec.Type == journal.TypeDone
		}
		j, ok := m.jobs[rec.Job]
		if !ok {
			return false
		}
		switch rec.Type {
		case journal.TypeSubmitted:
			return true
		case journal.TypeDone, journal.TypeFailed, journal.TypeCanceled:
			return j.state.terminal()
		}
		return false
	})
}
