package dist

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/obs"
)

// ErrBadResume wraps a failure to restore an assignment's resume blob. The
// coordinator treats it as "the snapshot is unusable, re-run from scratch"
// rather than "the worker is unhealthy".
var ErrBadResume = errors.New("dist: resume state rejected")

// DefaultMaxBodyBytes caps POST /v1/partitions request bodies; assignments
// are small except for the optional resume blob.
const DefaultMaxBodyBytes = 64 << 20

// Handler serves POST /v1/partitions: it decodes an Assignment, runs the
// partition against the locally registered graph, and streams Frames back —
// a snapshot at every checkpoint barrier, then a final frame carrying the
// terminal partition state (or an error frame).
//
// The response is written with status 200 before the run starts, so run-time
// failures surface as error frames, not HTTP status codes. Status codes
// cover what can be checked up front: 400 for a malformed assignment, 404
// for an unknown graph, 409 for a graph whose fingerprint disagrees with the
// assignment's, 429 when MaxInflight partitions are already running.
type Handler struct {
	// Lookup resolves a graph name to a crawl client and the local
	// fingerprint. The client must be safe for concurrent use by the
	// partition's walkers (the registry's graph-backed clients are).
	Lookup func(name string) (access.Client, GraphMeta, bool)

	// MaxBodyBytes caps the request body (DefaultMaxBodyBytes when 0).
	MaxBodyBytes int64

	// MaxInflight caps concurrently running partitions; further requests
	// get 429. 0 means unlimited.
	MaxInflight int

	// Served counts served partitions by terminal state ("ok", "error",
	// "rejected"); nil disables counting.
	Served *obs.CounterVec

	inflight atomic.Int64
}

func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	maxBody := h.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		h.count("rejected")
		http.Error(w, "request body unreadable or too large", http.StatusBadRequest)
		return
	}
	asn, err := DecodeAssignment(body)
	if err != nil {
		h.count("rejected")
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if h.Lookup == nil {
		h.count("rejected")
		http.Error(w, "worker mode disabled", http.StatusNotFound)
		return
	}
	client, meta, ok := h.Lookup(asn.Graph)
	if !ok {
		h.count("rejected")
		http.Error(w, fmt.Sprintf("unknown graph %q", asn.Graph), http.StatusNotFound)
		return
	}
	if meta != asn.Meta {
		h.count("rejected")
		http.Error(w, fmt.Sprintf("graph %q fingerprint mismatch: local %+v, assignment %+v",
			asn.Graph, meta, asn.Meta), http.StatusConflict)
		return
	}
	if h.MaxInflight > 0 {
		if h.inflight.Add(1) > int64(h.MaxInflight) {
			h.inflight.Add(-1)
			h.count("rejected")
			http.Error(w, "partition capacity exhausted", http.StatusTooManyRequests)
			return
		}
		defer h.inflight.Add(-1)
	}

	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	emit := func(f *Frame) error {
		if err := WriteFrame(w, f); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	if err := RunPartition(r.Context(), client, asn, emit); err != nil {
		h.count("error")
		// Best effort: the coordinator may already be gone.
		_ = emit(&Frame{Kind: FrameError, Msg: err.Error()})
		return
	}
	h.count("ok")
}

func (h *Handler) count(state string) { h.Served.With(state).Inc() }

// WriteFrame writes one length-prefixed frame to the stream.
func WriteFrame(w io.Writer, f *Frame) error {
	blob := f.Encode()
	hdr := binary.AppendUvarint(make([]byte, 0, 10), uint64(len(blob)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(blob)
	return err
}

// ReadFrame reads one length-prefixed frame; io.EOF cleanly at a frame
// boundary means the stream ended.
func ReadFrame(r *bufio.Reader) (*Frame, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("dist: frame length: %w", err)
	}
	if n > maxBlobBytes+maxMsgBytes {
		return nil, fmt.Errorf("dist: frame of %d bytes exceeds cap", n)
	}
	blob := make([]byte, n)
	if _, err := io.ReadFull(r, blob); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return DecodeFrame(blob)
}

// RunPartition executes an assignment's walker range against client, calling
// emit with a snapshot frame at every intermediate checkpoint barrier and a
// final frame when the budget completes. An emit error cancels the run. It
// is the single execution path for remote workers (via Handler) and the
// coordinator's local failover, so both produce identical frames.
func RunPartition(ctx context.Context, client access.Client, asn *Assignment, emit func(*Frame) error) error {
	if err := asn.Validate(); err != nil {
		return err
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var emitErr error
	send := func(f *Frame) {
		if emitErr == nil {
			if emitErr = emit(f); emitErr != nil {
				cancel()
			}
		}
	}
	var runErr error
	if asn.Single != nil {
		est, err := core.NewPartitionEstimator(client, *asn.Single, asn.Lo, asn.Hi)
		if err != nil {
			return err
		}
		if len(asn.Resume) > 0 {
			st, err := core.DecodeEnsembleState(asn.Resume)
			if err == nil {
				err = est.Restore(st)
			}
			if err != nil {
				return fmt.Errorf("%w: %w", ErrBadResume, err)
			}
		}
		_, runErr = est.RunCheckpointsCtx(cctx, asn.Budget, asn.Every, func(step int, _ []float64) {
			if step < asn.Budget {
				send(&Frame{Kind: FrameSnapshot, Target: step, State: est.Snapshot().Encode()})
			}
		})
		if runErr == nil {
			send(&Frame{Kind: FrameFinal, Target: asn.Budget, State: est.Snapshot().Encode()})
		}
	} else {
		est, err := core.NewPartitionMultiEstimator(client, *asn.Multi, asn.Lo, asn.Hi)
		if err != nil {
			return err
		}
		if len(asn.Resume) > 0 {
			st, err := core.DecodeMultiEnsembleState(asn.Resume)
			if err == nil {
				err = est.Restore(st)
			}
			if err != nil {
				return fmt.Errorf("%w: %w", ErrBadResume, err)
			}
		}
		_, runErr = est.RunCheckpointsCtx(cctx, asn.Budget, asn.Every, func(step int, _ map[int][]float64) {
			if step < asn.Budget {
				send(&Frame{Kind: FrameSnapshot, Target: step, State: est.Snapshot().Encode()})
			}
		})
		if runErr == nil {
			send(&Frame{Kind: FrameFinal, Target: asn.Budget, State: est.Snapshot().Encode()})
		}
	}
	if emitErr != nil {
		return fmt.Errorf("dist: streaming partition [%d,%d): %w", asn.Lo, asn.Hi, emitErr)
	}
	return runErr
}
