package dist

import "repro/internal/obs"

// Metrics instruments the coordinator side of distributed execution. All
// handle types no-op on nil receivers, so a zero Metrics (or a nil Options
// value, which the coordinator replaces with one) disables instrumentation
// without branches at the call sites.
type Metrics struct {
	// Partitions counts partition lifecycle events by state: "dispatched",
	// "completed", "retried", "failed", "failover_local".
	Partitions *obs.CounterVec
	// DispatchSeconds measures dispatch latency: POST start to first frame.
	DispatchSeconds *obs.Histogram
	// StreamSeconds measures full partition stream duration: POST start to
	// final frame.
	StreamSeconds *obs.Histogram
	// PeerHealthy is 1 while a peer's last partition attempt succeeded,
	// 0 after a failure, keyed by peer base URL.
	PeerHealthy *obs.GaugeVec
}

// NewMetrics registers the coordinator metric families on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Partitions: reg.CounterVec("graphletd_partitions_total",
			"Distributed partition lifecycle events by state.", "state"),
		DispatchSeconds: reg.Histogram("graphletd_partition_dispatch_seconds",
			"Latency from partition dispatch to the worker's first frame.",
			obs.LatencyBuckets),
		StreamSeconds: reg.Histogram("graphletd_partition_stream_seconds",
			"Duration of a full partition stream, dispatch to final frame.",
			obs.LatencyBuckets),
		PeerHealthy: reg.GaugeVec("graphletd_peer_healthy",
			"1 while the peer's most recent partition attempt succeeded.", "peer"),
	}
}
