package exact

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphlet"
)

// bruteCounts enumerates all k-subsets of nodes and classifies the connected
// ones — the slowest possible reference.
func bruteCounts(g *graph.Graph, k int) []int64 {
	counts := make([]int64, graphlet.Count(k))
	n := g.NumNodes()
	idx := make([]int, k)
	var rec func(pos, start int)
	rec = func(pos, start int) {
		if pos == k {
			code := graphlet.CodeOf(k, func(i, j int) bool {
				return g.HasEdge(int32(idx[i]), int32(idx[j]))
			})
			if t := graphlet.ClassifyCode(k, code); t >= 0 {
				counts[t]++
			}
			return
		}
		for v := start; v < n; v++ {
			idx[pos] = v
			rec(pos+1, v+1)
		}
	}
	rec(0, 0)
	return counts
}

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"fig1":     gen.PaperFigure1(),
		"k6":       gen.Complete(6),
		"c8":       gen.Cycle(8),
		"p7":       gen.Path(7),
		"star9":    gen.Star(9),
		"lollipop": gen.Lollipop(5, 4),
		"twotri":   gen.TwoTriangles(),
		"ba30":     gen.BarabasiAlbert(30, 3, 1),
		"er40":     gen.ErdosRenyiGNM(40, 90, 2),
		"hk25":     gen.HolmeKim(25, 3, 0.7, 3),
		"ws30":     gen.WattsStrogatz(30, 4, 0.2, 4),
	}
}

func TestESUMatchesBruteForce(t *testing.T) {
	for name, g := range testGraphs() {
		for k := 3; k <= 5; k++ {
			want := bruteCounts(g, k)
			got := CountESU(g, k)
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("%s k=%d type %d (%s): ESU %d, brute %d",
						name, k, i+1, graphlet.ByID(k, i+1).Name, got[i], want[i])
				}
			}
		}
	}
}

func TestESUSerialMatchesParallel(t *testing.T) {
	g := gen.BarabasiAlbert(80, 3, 7)
	for k := 3; k <= 4; k++ {
		s := CountESUSerial(g, k)
		p := CountESU(g, k)
		for i := range s {
			if s[i] != p[i] {
				t.Errorf("k=%d type %d: serial %d != parallel %d", k, i+1, s[i], p[i])
			}
		}
	}
}

func TestThreeNodeCountsMatchesESU(t *testing.T) {
	for name, g := range testGraphs() {
		want := CountESU(g, 3)
		got := ThreeNodeCounts(g)
		if got[0] != want[0] || got[1] != want[1] {
			t.Errorf("%s: fast 3-node %v, ESU %v", name, got, want)
		}
	}
}

func TestFourNodeCountsMatchesESU(t *testing.T) {
	for name, g := range testGraphs() {
		want := CountESU(g, 4)
		got := FourNodeCounts(g)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: 4-node type %d (%s): formula %d, ESU %d",
					name, i+1, graphlet.ByID(4, i+1).Name, got[i], want[i])
			}
		}
	}
}

// TestClosedForms checks counts on graphs with known closed-form answers.
func TestClosedForms(t *testing.T) {
	// K6: C(6,k) cliques, nothing else.
	k6 := gen.Complete(6)
	c3 := CountESU(k6, 3)
	if c3[0] != 0 || c3[1] != 20 {
		t.Errorf("K6 3-node = %v, want [0 20]", c3)
	}
	c4 := CountESU(k6, 4)
	for i := 0; i < 5; i++ {
		if c4[i] != 0 {
			t.Errorf("K6 has non-clique 4-graphlets: %v", c4)
		}
	}
	if c4[5] != 15 {
		t.Errorf("K6 4-cliques = %d, want 15", c4[5])
	}
	c5 := CountESU(k6, 5)
	if c5[20] != 6 {
		t.Errorf("K6 5-cliques = %d, want 6", c5[20])
	}

	// C8: n wedges, n 4-paths (each window of 4 consecutive nodes), n 5-paths.
	c8 := gen.Cycle(8)
	if got := ThreeNodeCounts(c8); got[0] != 8 || got[1] != 0 {
		t.Errorf("C8 3-node = %v, want [8 0]", got)
	}
	four := CountESU(c8, 4)
	if four[0] != 8 { // 4-paths
		t.Errorf("C8 4-paths = %d, want 8", four[0])
	}
	for i := 1; i < 6; i++ {
		if four[i] != 0 {
			t.Errorf("C8 has unexpected 4-node type %d: %v", i+1, four)
		}
	}

	// Star on 9 nodes (8 leaves): C(8,2) wedges, C(8,3) 3-stars, C(8,4) 4-stars.
	st := gen.Star(9)
	if got := ThreeNodeCounts(st); got[0] != 28 || got[1] != 0 {
		t.Errorf("star 3-node = %v, want [28 0]", got)
	}
	four = CountESU(st, 4)
	if four[1] != 56 {
		t.Errorf("star 3-stars = %d, want 56", four[1])
	}
	five := CountESU(st, 5)
	if five[2] != 70 { // 4-star is g5_3
		t.Errorf("star 4-stars = %d, want C(8,4)=70; counts=%v", five[2], five)
	}

	// Paper Figure 1: 2 wedges + 2 triangles (concentrations 0.5/0.5).
	fig := gen.PaperFigure1()
	if got := ThreeNodeCounts(fig); got[0] != 2 || got[1] != 2 {
		t.Errorf("figure-1 graph 3-node = %v, want [2 2]", got)
	}
}

func TestConcentrations(t *testing.T) {
	c := Concentrations([]int64{2, 2})
	if c[0] != 0.5 || c[1] != 0.5 {
		t.Errorf("Concentrations = %v", c)
	}
	z := Concentrations([]int64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("zero counts should give zeros, got %v", z)
	}
}

func TestGlobalClusteringCoefficient(t *testing.T) {
	// K4: fully transitive.
	if cc := GlobalClusteringCoefficient(gen.Complete(4)); cc < 0.999 || cc > 1.001 {
		t.Errorf("K4 clustering = %f, want 1", cc)
	}
	// Star: no triangles.
	if cc := GlobalClusteringCoefficient(gen.Star(10)); cc != 0 {
		t.Errorf("star clustering = %f, want 0", cc)
	}
	// Figure 1: 3*2/(2+3*2) = 6/8.
	if cc := GlobalClusteringCoefficient(gen.PaperFigure1()); cc < 0.749 || cc > 0.751 {
		t.Errorf("figure-1 clustering = %f, want 0.75", cc)
	}
}

func BenchmarkESU4(b *testing.B) {
	g := gen.BarabasiAlbert(2000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountESU(g, 4)
	}
}

func BenchmarkFourNodeFormulas(b *testing.B) {
	g := gen.BarabasiAlbert(2000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FourNodeCounts(g)
	}
}
