package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph. Duplicate edges
// and self loops are dropped (the framework assumes simple graphs).
type Builder struct {
	n     int32
	edges []edge
}

type edge struct{ u, v int32 }

// NewBuilder creates a Builder for a graph with at least n nodes. Adding an
// edge with a larger endpoint grows the node set automatically.
func NewBuilder(n int) *Builder {
	return &Builder{n: int32(n)}
}

// AddEdge records the undirected edge (u, v). Self loops are ignored.
func (b *Builder) AddEdge(u, v int32) {
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	if v >= b.n {
		b.n = v + 1
	}
	b.edges = append(b.edges, edge{u, v})
}

// NumNodes returns the current node count.
func (b *Builder) NumNodes() int { return int(b.n) }

// NumEdgesAdded returns the number of AddEdge calls retained so far (before
// deduplication).
func (b *Builder) NumEdgesAdded() int { return len(b.edges) }

// Build produces the immutable Graph, deduplicating parallel edges.
func (b *Builder) Build() *Graph {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].u != b.edges[j].u {
			return b.edges[i].u < b.edges[j].u
		}
		return b.edges[i].v < b.edges[j].v
	})
	// Deduplicate in place.
	uniq := b.edges[:0]
	for i, e := range b.edges {
		if i > 0 && e == b.edges[i-1] {
			continue
		}
		uniq = append(uniq, e)
	}
	b.edges = uniq

	n := int(b.n)
	deg := make([]int64, n+1)
	for _, e := range b.edges {
		deg[e.u+1]++
		deg[e.v+1]++
	}
	off := make([]int64, n+1)
	for i := 1; i <= n; i++ {
		off[i] = off[i-1] + deg[i]
	}
	adj := make([]int32, off[n])
	cursor := make([]int64, n)
	copy(cursor, off[:n])
	for _, e := range b.edges {
		adj[cursor[e.u]] = e.v
		cursor[e.u]++
		adj[cursor[e.v]] = e.u
		cursor[e.v]++
	}
	g := &Graph{off: off, adj: adj, m: int64(len(b.edges))}
	// Edges were added in (u, v) sorted order per endpoint bucket only for u;
	// the v-side insertions can be out of order, so sort each list.
	for v := 0; v < n; v++ {
		lo, hi := off[v], off[v+1]
		s := adj[lo:hi]
		if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i] < s[j] }) {
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		}
		if d := int(hi - lo); d > g.maxDeg {
			g.maxDeg = d
		}
	}
	g.buildHubIndex()
	return g
}

// FromEdgeList builds a graph directly from a slice of [2]int32 edges.
func FromEdgeList(n int, edges [][2]int32) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// Validate checks structural invariants of the graph (sorted unique neighbor
// lists, symmetry, no self loops, consistent edge count). It is intended for
// tests and returns a descriptive error on the first violation.
func Validate(g *Graph) error {
	var arcs int64
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		ns := g.Neighbors(v)
		arcs += int64(len(ns))
		for i, u := range ns {
			if u == v {
				return fmt.Errorf("self loop at node %d", v)
			}
			if i > 0 && ns[i-1] >= u {
				return fmt.Errorf("neighbor list of %d not strictly sorted at index %d", v, i)
			}
			// Probe u's list directly rather than through HasEdge: the hub
			// bitset fast path answers from v's own row, which would let an
			// asymmetric pair involving a hub slip through.
			back := g.Neighbors(u)
			j := sort.Search(len(back), func(j int) bool { return back[j] >= v })
			if j == len(back) || back[j] != v {
				return fmt.Errorf("asymmetric edge (%d,%d)", v, u)
			}
		}
	}
	if arcs != 2*g.m {
		return fmt.Errorf("arc count %d != 2*|E| = %d", arcs, 2*g.m)
	}
	maxDeg := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.Degree(int32(v)); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg != g.MaxDegree() {
		return fmt.Errorf("cached MaxDegree %d != scanned max degree %d", g.MaxDegree(), maxDeg)
	}
	// Hub bitset rows, when present, must agree bit-for-bit with the
	// adjacency lists (HasEdge answers from them).
	if g.hubIdx != nil {
		if len(g.hubIdx) != g.NumNodes() {
			return fmt.Errorf("hub index length %d != %d nodes", len(g.hubIdx), g.NumNodes())
		}
		for v := int32(0); v < int32(g.NumNodes()); v++ {
			r := g.hubIdx[v]
			if r < 0 {
				continue
			}
			row := g.hubRows[int(r)*g.hubStride : (int(r)+1)*g.hubStride]
			bits := 0
			for _, w := range row {
				for ; w != 0; w &= w - 1 {
					bits++
				}
			}
			if bits != g.Degree(v) {
				return fmt.Errorf("hub row of %d has %d bits, degree is %d", v, bits, g.Degree(v))
			}
			for _, u := range g.Neighbors(v) {
				if row[u>>6]>>(uint(u)&63)&1 != 1 {
					return fmt.Errorf("hub row of %d missing neighbor %d", v, u)
				}
			}
		}
	}
	return nil
}
