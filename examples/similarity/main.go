// Command similarity reproduces the paper's §6.4 application in miniature:
// is Sinaweibo structurally a social network (like Facebook) or a news medium
// (like Twitter)? The 4-node graphlet concentration of each network —
// estimated from 20K random-walk steps — is used as a fingerprint and
// compared with the graphlet-kernel cosine similarity.
package main

import (
	"fmt"

	graphletrw "repro"
	"repro/internal/datasets"
)

func main() {
	names := []string{"facebook", "twitter", "sinaweibo"}
	conc := map[string][]float64{}
	for _, name := range names {
		d, err := datasets.Get(name)
		if err != nil {
			panic(err)
		}
		g := d.Graph()
		res, err := graphletrw.Estimate(graphletrw.NewClient(g), graphletrw.Config{
			K: 4, D: 2, CSS: true, Seed: 2024,
		}, 20000)
		if err != nil {
			panic(err)
		}
		conc[name] = res.Concentration()
		fmt.Printf("%-10s (%d nodes, %d edges): ĉ⁴ = %s\n",
			name, g.NumNodes(), g.NumEdges(), fmtVec(conc[name]))
	}

	fmt.Println()
	simFB := graphletrw.Similarity(conc["sinaweibo"], conc["facebook"])
	simTW := graphletrw.Similarity(conc["sinaweibo"], conc["twitter"])
	fmt.Printf("similarity(sinaweibo, facebook) = %.4f\n", simFB)
	fmt.Printf("similarity(sinaweibo, twitter)  = %.4f\n", simTW)
	if simTW > simFB {
		fmt.Println("=> sinaweibo's building blocks resemble the news-media graph (paper's finding)")
	} else {
		fmt.Println("=> sinaweibo's building blocks resemble the social-network graph")
	}
}

func fmtVec(v []float64) string {
	s := "["
	for i, x := range v {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.4f", x)
	}
	return s + "]"
}
