package service

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// testRegistry registers two small deterministic graphs.
func testRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	if err := reg.Add("hk", "inline", gen.HolmeKim(400, 3, 0.6, 11)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("plc", "inline", gen.PowerLawConfiguration(500, 2.5, 2, 60, 12)); err != nil {
		t.Fatal(err)
	}
	return reg
}

// newTestManager builds a manager or fails the test.
func newTestManager(t *testing.T, reg *Registry, opts Options) *Manager {
	t.Helper()
	mgr, err := NewManager(reg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return mgr
}

func postJob(t *testing.T, url string, spec Spec) (JobView, int) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view JobView
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
	}
	return view, resp.StatusCode
}

func getJob(t *testing.T, url, id string) JobView {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

func pollDone(t *testing.T, url, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if v := getJob(t, url, id); v.State.terminal() {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobView{}
}

func getStats(t *testing.T, url string) Stats {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// End-to-end over the HTTP boundary: register graphs, submit 8 concurrent
// jobs across both, poll every job to completion, then re-query one spec and
// get an instant cached answer.
func TestServiceE2E(t *testing.T) {
	reg := testRegistry(t)
	mgr := newTestManager(t, reg, Options{Workers: 4, MaxWalkers: 4})
	defer mgr.Close()
	srv := httptest.NewServer(NewServer(reg, mgr))
	defer srv.Close()

	// Graph listing and introspection.
	resp, err := http.Get(srv.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Graphs []GraphInfo `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Graphs) != 2 {
		t.Fatalf("listed %d graphs, want 2", len(listing.Graphs))
	}
	for _, info := range listing.Graphs {
		if info.Nodes == 0 || info.Edges == 0 || info.MaxDegree == 0 {
			t.Errorf("degenerate graph info %+v", info)
		}
	}

	// 8 concurrent submissions across both graphs, distinct specs.
	specs := make([]Spec, 8)
	for i := range specs {
		g := "hk"
		if i%2 == 1 {
			g = "plc"
		}
		specs[i] = Spec{
			Graph: g, K: 3 + i%2, D: 1 + i%2, CSS: i%2 == 1,
			Steps: 3000, Walkers: 1 + i%3, Seed: int64(100 + i),
		}
	}
	ids := make([]string, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec Spec) {
			defer wg.Done()
			view, status := postJob(t, srv.URL, spec)
			if status != http.StatusAccepted {
				t.Errorf("submit %d: status %d, want 202", i, status)
				return
			}
			ids[i] = view.ID
		}(i, spec)
	}
	wg.Wait()

	for i, id := range ids {
		if id == "" {
			t.Fatalf("submission %d returned no job ID", i)
		}
		final := pollDone(t, srv.URL, id)
		if final.State != StateDone {
			t.Fatalf("job %s: state %s (err %q), want done", id, final.State, final.Error)
		}
		if final.Result == nil || final.Result.Steps != specs[i].Steps {
			t.Fatalf("job %s: bad result %+v", id, final.Result)
		}
		var sum float64
		for _, c := range final.Result.Concentration {
			sum += c
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("job %s: concentration sums to %v", id, sum)
		}
	}

	// Cached re-query: identical spec answers instantly (HTTP 200, terminal
	// state in the submit response, no new estimation run).
	runsBefore := getStats(t, srv.URL).Runs
	view, status := postJob(t, srv.URL, specs[0])
	if status != http.StatusOK {
		t.Fatalf("cached submit: status %d, want 200", status)
	}
	if view.State != StateDone || !view.Cached || view.Result == nil {
		t.Fatalf("cached submit: %+v, want instant done+cached", view)
	}
	orig := pollDone(t, srv.URL, ids[0])
	for i := range view.Result.Concentration {
		if view.Result.Concentration[i] != orig.Result.Concentration[i] {
			t.Fatalf("cached result diverges from original at %d", i)
		}
	}
	st := getStats(t, srv.URL)
	if st.Runs != runsBefore {
		t.Errorf("cached re-query ran an estimation (runs %d -> %d)", runsBefore, st.Runs)
	}
	if st.CacheHits == 0 || st.CacheSize == 0 {
		t.Errorf("stats after cache hit: %+v", st)
	}
}

// gatedClient blocks the walk's seed draw until the gate opens, letting
// tests hold an estimation "in flight" deterministically.
type gatedClient struct {
	access.Client
	gate <-chan struct{}
}

func (c gatedClient) RandomNode(rng *rand.Rand) int32 {
	<-c.gate
	return c.Client.RandomNode(rng)
}

// A thundering herd of identical submissions is coalesced single-flight:
// every client shares one job ID and exactly one estimation runs.
func TestServiceCoalescing(t *testing.T) {
	reg := testRegistry(t)
	gate := make(chan struct{})
	mgr := newTestManager(t, reg, Options{
		Workers: 4, MaxWalkers: 4,
		NewClient: func(g *graph.Graph) access.Client {
			return gatedClient{Client: access.NewGraphClient(g), gate: gate}
		},
	})
	defer mgr.Close()
	srv := httptest.NewServer(NewServer(reg, mgr))
	defer srv.Close()

	spec := Spec{Graph: "hk", K: 4, D: 2, CSS: true, Steps: 2000, Walkers: 2, Seed: 7}
	const herd = 16
	ids := make([]string, herd)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			view, status := postJob(t, srv.URL, spec)
			if status != http.StatusAccepted {
				t.Errorf("herd %d: status %d", i, status)
				return
			}
			ids[i] = view.ID
		}(i)
	}
	wg.Wait()
	close(gate) // release the single estimation

	for _, id := range ids[1:] {
		if id != ids[0] {
			t.Fatalf("herd split across jobs %q and %q, want one shared job", ids[0], id)
		}
	}
	final := pollDone(t, srv.URL, ids[0])
	if final.State != StateDone {
		t.Fatalf("shared job: state %s (err %q)", final.State, final.Error)
	}
	if final.Coalesced != herd {
		t.Errorf("coalesced = %d, want %d", final.Coalesced, herd)
	}
	if st := getStats(t, srv.URL); st.Runs != 1 {
		t.Errorf("herd of %d cost %d estimation runs, want exactly 1", herd, st.Runs)
	}
}

// Cancellation propagates through the HTTP layer and internal/core: the
// walker ensemble stops at a checkpoint barrier well before exhausting its
// step budget, and the job reports the partial progress.
func TestServiceCancellation(t *testing.T) {
	reg := testRegistry(t)
	mgr := newTestManager(t, reg, Options{
		Workers: 2, MaxWalkers: 4, SnapshotEvery: 200,
		NewClient: func(g *graph.Graph) access.Client {
			// Slow the crawl so the budget takes far longer than the test:
			// without cancellation this job would run for minutes.
			return access.NewDelayed(access.NewGraphClient(g), 50*time.Microsecond)
		},
	})
	defer mgr.Close()
	srv := httptest.NewServer(NewServer(reg, mgr))
	defer srv.Close()

	const budget = 2_000_000
	spec := Spec{Graph: "plc", K: 4, D: 2, Steps: budget, Walkers: 2, Seed: 3}
	view, status := postJob(t, srv.URL, spec)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d", status)
	}

	// Wait until the job is demonstrably running (first checkpoint passed).
	deadline := time.Now().Add(30 * time.Second)
	for {
		v := getJob(t, srv.URL, view.ID)
		if v.State == StateRunning && v.Progress.Steps > 0 {
			break
		}
		if v.State.terminal() {
			t.Fatalf("job finished before cancel: %+v", v)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reported progress")
		}
		time.Sleep(2 * time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+view.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}

	final := pollDone(t, srv.URL, view.ID)
	if final.State != StateCanceled {
		t.Fatalf("state after cancel = %s, want canceled", final.State)
	}
	if final.Progress.Steps == 0 || final.Progress.Steps >= budget {
		t.Fatalf("cancelled job processed %d steps, want in (0, %d)", final.Progress.Steps, budget)
	}
	// Cancelled (partial) runs must not poison the cache.
	if v, status := postJob(t, srv.URL, spec); status != http.StatusAccepted || v.Cached {
		t.Fatalf("resubmit after cancel: status %d cached=%v, want fresh 202", status, v.Cached)
	}
}

// Cancelling a job still waiting in the queue finishes it without a run.
func TestServiceCancelQueued(t *testing.T) {
	reg := testRegistry(t)
	gate := make(chan struct{})
	mgr := newTestManager(t, reg, Options{
		Workers: 1, MaxWalkers: 2,
		NewClient: func(g *graph.Graph) access.Client {
			return gatedClient{Client: access.NewGraphClient(g), gate: gate}
		},
	})
	defer mgr.Close()

	blocker, err := mgr.Submit(Spec{Graph: "hk", K: 3, D: 1, Steps: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := mgr.Submit(Spec{Graph: "hk", K: 3, D: 1, Steps: 1000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := mgr.Cancel(queued.ID); err != nil || v.State != StateCanceled {
		t.Fatalf("cancel queued: %+v, %v", v, err)
	}
	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if v, err := mgr.Wait(ctx, blocker.ID); err != nil || v.State != StateDone {
		t.Fatalf("blocker: %+v, %v", v, err)
	}
	if got := mgr.Stats().Runs; got != 1 {
		t.Errorf("runs = %d, want 1 (queued job must not run after cancel)", got)
	}
}

// Admission validation: unknown graphs, bad configs, and specs over the
// walker cap are rejected.
func TestServiceValidation(t *testing.T) {
	reg := testRegistry(t)
	mgr := newTestManager(t, reg, Options{Workers: 1, MaxWalkers: 4})
	defer mgr.Close()
	srv := httptest.NewServer(NewServer(reg, mgr))
	defer srv.Close()

	bad := []Spec{
		{Graph: "nope", K: 3, D: 1, Steps: 100},
		{Graph: "hk", K: 9, D: 1, Steps: 100},
		{Graph: "hk", K: 3, D: 1, Steps: 0},
		{Graph: "hk", K: 3, D: 1, Steps: 100, Walkers: 64},
	}
	for i, spec := range bad {
		if _, status := postJob(t, srv.URL, spec); status != http.StatusBadRequest {
			t.Errorf("bad spec %d: status %d, want 400", i, status)
		}
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(`{"bogus":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}
}

// The LRU evicts least-recently-used entries at capacity and get refreshes
// recency.
func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2, nil)
	spec := func(seed int64) Spec { return Spec{Graph: "g", K: 3, D: 1, Steps: 10, Seed: seed} }
	res := func(steps int) *core.Result { return &core.Result{Steps: steps} }
	c.put(spec(1).key(), res(1), "j-1")
	c.put(spec(2).key(), res(2), "j-2")
	if r, ok := c.get(spec(1).key()); !ok || r.Steps != 1 { // refresh 1; 2 becomes LRU
		t.Fatalf("spec 1: %v %v", r, ok)
	}
	c.put(spec(3).key(), res(3), "j-3") // evicts 2
	if _, ok := c.get(spec(2).key()); ok {
		t.Error("spec 2 should have been evicted")
	}
	if _, ok := c.get(spec(1).key()); !ok {
		t.Error("spec 1 should have survived")
	}
	if _, ok := c.get(spec(3).key()); !ok {
		t.Error("spec 3 should be cached")
	}
	if c.len() != 2 {
		t.Errorf("cache len = %d, want 2", c.len())
	}
}

// Walkers 0 and 1 are the same engine configuration and must share one
// cache entry, and the job table stays bounded by MaxJobs under sustained
// cache-hit traffic.
func TestServiceNormalizationAndRetention(t *testing.T) {
	reg := testRegistry(t)
	mgr := newTestManager(t, reg, Options{Workers: 2, MaxWalkers: 2, MaxJobs: 5})
	defer mgr.Close()

	spec := Spec{Graph: "hk", K: 3, D: 1, Steps: 1500, Walkers: 1, Seed: 21}
	first, err := mgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if v, err := mgr.Wait(ctx, first.ID); err != nil || v.State != StateDone {
		t.Fatalf("first run: %+v, %v", v, err)
	}

	zero := spec
	zero.Walkers = 0
	v, err := mgr.Submit(zero)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Cached || v.State != StateDone {
		t.Fatalf("walkers=0 resubmit missed the walkers=1 cache entry: %+v", v)
	}

	// Hammer the cache: job records must be pruned down to MaxJobs.
	for i := 0; i < 20; i++ {
		if _, err := mgr.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	if got := mgr.Stats().Jobs; got > 5 {
		t.Errorf("job table holds %d records, want <= MaxJobs = 5", got)
	}
	if got := mgr.Stats().Runs; got != 1 {
		t.Errorf("runs = %d, want 1", got)
	}
}

// panickyClient fails the walk's seed draw, as the HTTP crawl client does on
// a transport error.
type panickyClient struct{ access.Client }

func (panickyClient) RandomNode(*rand.Rand) int32 { panic("transport down") }

// A client panic fails the job instead of crashing the daemon; subsequent
// jobs still run.
func TestServicePanicFailsJob(t *testing.T) {
	reg := testRegistry(t)
	broken := true
	mgr := newTestManager(t, reg, Options{
		Workers: 1, MaxWalkers: 2,
		NewClient: func(g *graph.Graph) access.Client {
			if broken {
				return panickyClient{Client: access.NewGraphClient(g)}
			}
			return access.NewGraphClient(g)
		},
	})
	defer mgr.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	v, err := mgr.Submit(Spec{Graph: "hk", K: 3, D: 1, Steps: 1000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if v, err = mgr.Wait(ctx, v.ID); err != nil || v.State != StateFailed {
		t.Fatalf("broken-client job: %+v, %v, want failed", v, err)
	}
	if !strings.Contains(v.Error, "transport down") {
		t.Errorf("job error %q does not surface the panic", v.Error)
	}

	broken = false
	v, err = mgr.Submit(Spec{Graph: "hk", K: 3, D: 1, Steps: 1000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if v, err = mgr.Wait(ctx, v.ID); err != nil || v.State != StateDone {
		t.Fatalf("daemon did not survive the panic: %+v, %v", v, err)
	}
}
