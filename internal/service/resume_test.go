package service

import (
	"context"
	"encoding/json"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/graph"
	"repro/internal/service/journal"
)

// stallClient passes calls through until the switch flips, then blocks the
// walkers mid-step forever — freezing a run at whatever checkpoint it last
// journaled, the way a SIGKILL freezes a real daemon.
type stallClient struct {
	access.Client
	stall *atomic.Bool
	gate  <-chan struct{}
}

func (c stallClient) Degree(v int32) int {
	if c.stall.Load() {
		<-c.gate
	}
	return c.Client.Degree(v)
}

// The resume acceptance test, end to end: a job killed past 50% of its step
// budget re-queues from its journaled checkpoint snapshot, preserving >= 90%
// of the completed steps (here: all steps up to the last checkpoint), and
// the resumed run's final result is byte-identical to an uninterrupted run
// of the same spec and seed.
func TestResumeAfterCrashByteIdentical(t *testing.T) {
	spec := Spec{Graph: "hk", K: 4, D: 2, CSS: true, Steps: 30000, Walkers: 2, Seed: 1234}

	// Reference: the uninterrupted run.
	refReg := testRegistry(t)
	refMgr := newTestManager(t, refReg, Options{Workers: 1, MaxWalkers: 2, SnapshotEvery: 1000})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	ref, err := refMgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ref, err = refMgr.Wait(ctx, ref.ID); err != nil || ref.State != StateDone {
		t.Fatalf("reference run: %+v, %v", ref, err)
	}
	refMgr.Close()

	// The crashing daemon: progress past 50%, then freeze the walkers and
	// abandon the manager (no Close → no terminal record), SIGKILL-style.
	dir := t.TempDir()
	reg1 := testRegistry(t)
	var stall atomic.Bool
	gate := make(chan struct{}) // never closed: the frozen walkers never finish
	mgr1 := newTestManager(t, reg1, Options{
		Workers: 1, MaxWalkers: 2, SnapshotEvery: 1000, DataDir: dir,
		NewClient: func(g *graph.Graph) access.Client {
			return stallClient{Client: access.NewGraphClient(g), stall: &stall, gate: gate}
		},
	})
	v, err := mgr1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never reached 50% of its budget")
		}
		jv, ok := mgr1.Get(v.ID)
		if !ok {
			t.Fatal("job vanished")
		}
		if jv.State.terminal() {
			t.Fatalf("job finished before the crash: %+v", jv)
		}
		if jv.Progress.Steps >= spec.Steps/2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	stall.Store(true)
	mgr1.syncJournal() // the page cache survives a SIGKILL; the barrier stands in for it

	// Restart on the same data dir with an ungated client; the job resumes
	// mid-budget and completes.
	reg2 := testRegistry(t)
	mgr2 := newTestManager(t, reg2, Options{Workers: 1, MaxWalkers: 2, SnapshotEvery: 1000, DataDir: dir})
	defer mgr2.Close()
	st := mgr2.Stats()
	if st.RecoveredJobs != 1 || st.ResumableJobs != 1 {
		t.Fatalf("stats after restart: %+v, want 1 recovered / 1 resumable", st)
	}
	final, err := mgr2.Wait(ctx, v.ID)
	if err != nil || final.State != StateDone {
		t.Fatalf("resumed job: %+v, %v", final, err)
	}

	// >= 50% of the budget was preserved (the acceptance bar is 90% of
	// *completed* steps; with checkpoints every 1000 windows the loss is at
	// most one checkpoint interval, far under 10% of 15000+ completed steps).
	if final.Progress.ResumedSteps < spec.Steps/2 {
		t.Errorf("resumed %d steps, want >= %d", final.Progress.ResumedSteps, spec.Steps/2)
	}
	if got := mgr2.Stats().ResumedSteps; got != int64(final.Progress.ResumedSteps) {
		t.Errorf("stats resumed_steps %d, want %d", got, final.Progress.ResumedSteps)
	}

	// Byte identity with the uninterrupted run.
	if final.Result == nil || ref.Result == nil {
		t.Fatalf("missing results: resumed %+v, reference %+v", final.Result, ref.Result)
	}
	if final.Result.Steps != ref.Result.Steps || final.Result.ValidSamples != ref.Result.ValidSamples {
		t.Fatalf("resumed result shape differs: %+v vs %+v", final.Result, ref.Result)
	}
	for i := range ref.Result.Weights {
		if final.Result.Weights[i] != ref.Result.Weights[i] {
			t.Fatalf("weight %d differs after resume: %v vs %v",
				i, final.Result.Weights[i], ref.Result.Weights[i])
		}
	}
	for i := range ref.Result.Concentration {
		if final.Result.Concentration[i] != ref.Result.Concentration[i] {
			t.Fatalf("concentration %d differs after resume: %v vs %v",
				i, final.Result.Concentration[i], ref.Result.Concentration[i])
		}
	}
}

// Compaction while a job is mid-run must keep (exactly) its latest
// checkpoint snapshot: terminal traffic from other jobs triggers
// compactions, the log stays bounded, and a crash afterwards still resumes
// the live job mid-budget.
func TestCompactionPreservesResume(t *testing.T) {
	dir := t.TempDir()
	reg1 := testRegistry(t)
	hk, _ := reg1.Get("hk")
	var stall atomic.Bool
	gate := make(chan struct{})
	mgr1 := newTestManager(t, reg1, Options{
		Workers: 2, MaxWalkers: 2, SnapshotEvery: 500, DataDir: dir,
		SegmentBytes: 2048, CompactSegments: 2,
		NewClient: func(g *graph.Graph) access.Client {
			c := access.NewGraphClient(g)
			if g == hk {
				return stallClient{Client: c, stall: &stall, gate: gate}
			}
			return c
		},
	})
	long := Spec{Graph: "hk", K: 4, D: 2, CSS: true, Steps: 30000, Walkers: 1, Seed: 555}
	v, err := mgr1.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("long job never reached 50%")
		}
		jv, _ := mgr1.Get(v.ID)
		if jv.Progress.Steps >= long.Steps/2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// Terminal traffic on the other graph: every finish may trigger a
	// compaction, each of which must carry the live job's snapshot forward.
	for i := 0; i < 6; i++ {
		qv, err := mgr1.Submit(Spec{Graph: "plc", K: 3, D: 1, Steps: 1500, Walkers: 1, Seed: int64(9000 + i)})
		if err != nil {
			t.Fatal(err)
		}
		if qv, err = mgr1.Wait(ctx, qv.ID); err != nil || qv.State != StateDone {
			t.Fatalf("filler job: %+v, %v", qv, err)
		}
	}
	stall.Store(true)
	mgr1.syncJournal()
	if st := mgr1.Stats(); st.JournalErrors != 0 || st.JournalSegments > 4 {
		t.Fatalf("pre-crash journal state: %+v, want compacted and error-free", st)
	}

	mgr2 := newTestManager(t, testRegistry(t), Options{Workers: 2, MaxWalkers: 2, SnapshotEvery: 500, DataDir: dir})
	defer mgr2.Close()
	if st := mgr2.Stats(); st.ResumableJobs != 1 {
		t.Fatalf("stats after restart: %+v, want the long job resumable", st)
	}
	final, err := mgr2.Wait(ctx, v.ID)
	if err != nil || final.State != StateDone {
		t.Fatalf("resumed job: %+v, %v", final, err)
	}
	if final.Progress.ResumedSteps < long.Steps/2 {
		t.Errorf("resumed %d steps after compaction, want >= %d", final.Progress.ResumedSteps, long.Steps/2)
	}
}

// A corrupt (or truncated) snapshot in the journal must degrade to the PR-4
// behavior — re-run from scratch — never fail the job or the recovery.
func TestCorruptSnapshotFallsBackToScratch(t *testing.T) {
	dir := t.TempDir()
	reg := testRegistry(t)
	info, _ := reg.Info("hk")
	spec := Spec{Graph: "hk", K: 3, D: 1, Steps: 2000, Walkers: 1, Seed: 77, Priority: PriorityBatch}

	// Hand-write the journal of an interrupted job whose checkpoint carries
	// garbage where the ensemble snapshot should be.
	jnl, err := journal.Open(filepath.Join(dir, "journal"), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	app := func(typ journal.Type, payload any) {
		t.Helper()
		rec := journal.Record{Type: typ, Job: "j-1"}
		if payload != nil {
			if rec.Payload, err = json.Marshal(payload); err != nil {
				t.Fatal(err)
			}
		}
		if err := jnl.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	app(journal.TypeSubmitted, recSubmitted{Spec: spec, GraphMeta: &info})
	app(journal.TypeStarted, nil)
	app(journal.TypeCheckpoint, recCheckpoint{
		V: checkpointV2, Steps: 1000,
		Concentration: []float64{0.5, 0.5},
		Snapshot:      []byte("definitely not an ensemble state"),
	})
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	mgr := newTestManager(t, reg, Options{Workers: 1, MaxWalkers: 2, DataDir: dir})
	defer mgr.Close()
	if st := mgr.Stats(); st.RecoveredJobs != 1 || st.ResumableJobs != 1 {
		t.Fatalf("stats: %+v, want the corrupt-snapshot job re-queued as resumable", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	final, err := mgr.Wait(ctx, "j-1")
	if err != nil || final.State != StateDone {
		t.Fatalf("job with corrupt snapshot: %+v, %v", final, err)
	}
	if final.Progress.ResumedSteps != 0 {
		t.Errorf("resumed_steps %d from a corrupt snapshot, want 0 (scratch re-run)", final.Progress.ResumedSteps)
	}
	if final.Result == nil || final.Result.Steps != spec.Steps {
		t.Errorf("scratch re-run result: %+v", final.Result)
	}
	if st := mgr.Stats(); st.ResumedSteps != 0 {
		t.Errorf("stats resumed_steps %d, want 0", st.ResumedSteps)
	}
}

// A coalescing-driven priority promotion is re-journaled, so a crash does
// not demote the shared job back to its original class on recovery.
func TestPromotionSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	reg := testRegistry(t)
	gate := make(chan struct{}) // never closed: the blocker strands the queue
	mgr1 := newTestManager(t, reg, Options{
		Workers: 1, MaxWalkers: 2, DataDir: dir,
		NewClient: func(g *graph.Graph) access.Client {
			return gatedClient{Client: access.NewGraphClient(g), gate: gate}
		},
	})
	if _, err := mgr1.Submit(Spec{Graph: "hk", K: 3, D: 1, Steps: 1000, Walkers: 1, Seed: 601}); err != nil {
		t.Fatal(err)
	}
	shared, err := mgr1.Submit(Spec{Graph: "hk", K: 3, D: 1, Steps: 1000, Walkers: 1, Seed: 602, Priority: PriorityBackground})
	if err != nil {
		t.Fatal(err)
	}
	boost, err := mgr1.Submit(Spec{Graph: "hk", K: 3, D: 1, Steps: 1000, Walkers: 1, Seed: 602, Priority: PriorityInteractive})
	if err != nil {
		t.Fatal(err)
	}
	if boost.ID != shared.ID || boost.Spec.Priority != PriorityInteractive {
		t.Fatalf("promotion did not happen: %+v", boost)
	}
	mgr1.syncJournal()
	// Crash (no Close), restart: the shared job re-queues at its promoted
	// class, not the background class of its first submitted record.
	mgr2 := newTestManager(t, testRegistry(t), Options{Workers: 1, MaxWalkers: 2, DataDir: dir})
	defer mgr2.Close()
	got, ok := mgr2.Get(shared.ID)
	if !ok || got.Spec.Priority != PriorityInteractive {
		t.Fatalf("job after restart: %+v (ok=%v), want interactive priority", got, ok)
	}
}

// The recovery double-charge fix: a resumed job charges its class only the
// remaining budget, not the full budget a second time.
func TestResumeChargesRemainingBudget(t *testing.T) {
	fresh := &job{spec: Spec{Steps: 10000}}
	if got := jobCost(fresh); got != 10000 {
		t.Errorf("fresh job cost %v, want 10000", got)
	}
	resumed := &job{spec: Spec{Steps: 10000}, resumeSteps: 9000}
	if got := jobCost(resumed); got != 1000 {
		t.Errorf("resumed job cost %v, want the remaining 1000", got)
	}
	// A snapshot at (or somehow past) the full budget still charges a
	// positive epsilon, keeping the virtual clock monotone.
	edge := &job{spec: Spec{Steps: 10000}, resumeSteps: 10000}
	if got := jobCost(edge); got != 1 {
		t.Errorf("fully-resumed job cost %v, want 1", got)
	}
}

// Async appends preserve transition order: after a burst of concurrent
// submissions and completions, every job's journal records appear in
// lifecycle order (submitted before started before terminal).
func TestAsyncJournalPreservesOrder(t *testing.T) {
	dir := t.TempDir()
	reg := testRegistry(t)
	mgr := newTestManager(t, reg, Options{Workers: 4, MaxWalkers: 2, DataDir: dir, Fsync: true})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var ids []string
	for i := 0; i < 12; i++ {
		v, err := mgr.Submit(Spec{Graph: "hk", K: 3, D: 1, Steps: 1200, Walkers: 1, Seed: int64(3000 + i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	for _, id := range ids {
		if v, err := mgr.Wait(ctx, id); err != nil || v.State != StateDone {
			t.Fatalf("job %s: %+v, %v", id, v, err)
		}
	}
	mgr.Close()

	jnl, err := journal.Open(filepath.Join(dir, "journal"), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jnl.Close()
	phase := map[string]int{} // 0 none, 1 submitted, 2 started/checkpoint, 3 terminal
	err = jnl.Replay(func(rec journal.Record) error {
		p := phase[rec.Job]
		switch rec.Type {
		case journal.TypeSubmitted:
			if p != 0 {
				t.Errorf("job %s: submitted after phase %d", rec.Job, p)
			}
			phase[rec.Job] = 1
		case journal.TypeStarted:
			if p != 1 {
				t.Errorf("job %s: started at phase %d", rec.Job, p)
			}
			phase[rec.Job] = 2
		case journal.TypeCheckpoint:
			if p != 2 {
				t.Errorf("job %s: checkpoint at phase %d", rec.Job, p)
			}
		case journal.TypeDone, journal.TypeFailed, journal.TypeCanceled:
			if p != 2 && p != 1 {
				t.Errorf("job %s: terminal at phase %d", rec.Job, p)
			}
			phase[rec.Job] = 3
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(phase) != len(ids) {
		t.Fatalf("journal holds %d jobs, want %d", len(phase), len(ids))
	}
	for id, p := range phase {
		if p != 3 {
			t.Errorf("job %s ended the log at phase %d, want terminal", id, p)
		}
	}
}
