package dist

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func testGraph() *graph.Graph { return gen.ErdosRenyiGNM(250, 800, 5) }

func metaOf(g *graph.Graph) GraphMeta {
	return GraphMeta{Nodes: g.NumNodes(), Edges: g.NumEdges(), MaxDegree: g.MaxDegree()}
}

func lookupFor(g *graph.Graph, name string) func(string) (access.Client, GraphMeta, bool) {
	return func(n string) (access.Client, GraphMeta, bool) {
		if n != name {
			return nil, GraphMeta{}, false
		}
		return access.NewGraphClient(g), metaOf(g), true
	}
}

// startWorkers brings up n worker servers over g and returns their base URLs.
func startWorkers(t *testing.T, g *graph.Graph, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		srv := httptest.NewServer(&Handler{Lookup: lookupFor(g, "test")})
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls
}

// TestDistributedByteIdentical is the tentpole acceptance test: a job fanned
// across two workers in three partitions produces exactly the bytes of a
// local run, and every OnSync checkpoint is itself a valid full-ensemble
// state whose merged result matches the local run at that target.
func TestDistributedByteIdentical(t *testing.T) {
	g := testGraph()
	cfg := core.Config{K: 4, D: 2, CSS: true, Walkers: 5, Seed: 99}
	const n, every = 3000, 500

	local, err := core.NewEstimator(access.NewGraphClient(g), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantAt := map[int]*core.Result{}
	want, err := local.RunCheckpoints(n, every, func(step int, _ []float64) {
		r, err := local.Snapshot().MergedResult()
		if err != nil {
			t.Errorf("local merged result at %d: %v", step, err)
			return
		}
		wantAt[step] = r
	})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var syncTargets []int
	syncStates := map[int][]byte{}
	peers := startWorkers(t, g, 2)
	finals, err := Run(t.Context(), Options{
		Peers: peers,
		OnSync: func(target int, combined []byte) {
			mu.Lock()
			defer mu.Unlock()
			syncTargets = append(syncTargets, target)
			syncStates[target] = combined
		},
		OnResume: func(int) { t.Error("OnResume fired for an uninterrupted run") },
	}, PartitionAssignments(Assignment{
		Graph: "test", Meta: metaOf(g), Single: &cfg, Budget: n, Every: every,
	}, 3))
	if err != nil {
		t.Fatal(err)
	}

	got := mergeFinals(t, finals)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("distributed result differs from local run:\n got %+v\nwant %+v", got, want)
	}

	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(syncTargets); i++ {
		if syncTargets[i] <= syncTargets[i-1] {
			t.Fatalf("sync targets not strictly increasing: %v", syncTargets)
		}
	}
	if last := syncTargets[len(syncTargets)-1]; last != n {
		t.Fatalf("final sync at %d, want %d (targets %v)", last, n, syncTargets)
	}
	for target, blob := range syncStates {
		st, err := core.DecodeEnsembleState(blob)
		if err != nil {
			t.Fatalf("sync state at %d: %v", target, err)
		}
		r, err := st.MergedResult()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r, wantAt[target]) {
			t.Errorf("sync state at %d differs from local checkpoint", target)
		}
	}
}

func mergeFinals(t *testing.T, finals [][]byte) *core.Result {
	t.Helper()
	parts := make([]*core.EnsembleState, len(finals))
	for i, b := range finals {
		st, err := core.DecodeEnsembleState(b)
		if err != nil {
			t.Fatalf("final %d: %v", i, err)
		}
		parts[i] = st
	}
	combined, err := core.CombinePartitionStates(parts)
	if err != nil {
		t.Fatal(err)
	}
	r, err := combined.MergedResult()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// killingWorker serves partitions but aborts the connection after passing
// killAfter frames, once; subsequent requests run healthy.
type killingWorker struct {
	g         *graph.Graph
	killAfter int
	killed    atomic.Bool
}

func (k *killingWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h := &Handler{Lookup: lookupFor(k.g, "test")}
	if k.killed.Load() {
		h.ServeHTTP(w, r)
		return
	}
	k.killed.Store(true)
	// First request: stream killAfter frames, then die mid-partition.
	body, _ := io.ReadAll(r.Body)
	asn, err := DecodeAssignment(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	client, _, _ := lookupFor(k.g, "test")(asn.Graph)
	w.WriteHeader(http.StatusOK)
	flusher := w.(http.Flusher)
	frames := 0
	_ = RunPartition(r.Context(), client, asn, func(f *Frame) error {
		if frames >= k.killAfter {
			panic(http.ErrAbortHandler) // hard connection drop, like a crashed node
		}
		frames++
		if err := WriteFrame(w, f); err != nil {
			return err
		}
		flusher.Flush()
		return nil
	})
}

// TestDistributedFailover kills a worker two checkpoints into a partition
// and asserts the job still completes with a byte-identical result, the
// retry resumes from the last streamed snapshot, and the preserved-window
// accounting is exact.
func TestDistributedFailover(t *testing.T) {
	g := testGraph()
	cfg := core.Config{K: 4, D: 2, CSS: true, Walkers: 4, Seed: 12}
	const n, every = 3000, 500

	want, err := core.NewEstimator(access.NewGraphClient(g), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := want.Run(n)
	if err != nil {
		t.Fatal(err)
	}

	killer := &killingWorker{g: g, killAfter: 2} // dies after targets 500, 1000
	killSrv := httptest.NewServer(killer)
	t.Cleanup(killSrv.Close)
	healthy := startWorkers(t, g, 1)

	var resumedMu sync.Mutex
	var resumed []int
	asns := PartitionAssignments(Assignment{
		Graph: "test", Meta: metaOf(g), Single: &cfg, Budget: n, Every: every,
	}, 2)
	finals, err := Run(t.Context(), Options{
		// Partition 0's first attempt lands on the killer; its retry rotates
		// to the healthy worker.
		Peers:   []string{killSrv.URL, healthy[0]},
		Backoff: time.Millisecond,
		OnResume: func(preserved int) {
			resumedMu.Lock()
			defer resumedMu.Unlock()
			resumed = append(resumed, preserved)
		},
	}, asns)
	if err != nil {
		t.Fatal(err)
	}
	if got := mergeFinals(t, finals); !reflect.DeepEqual(got, wantRes) {
		t.Errorf("failover result differs from local run:\n got %+v\nwant %+v", got, wantRes)
	}

	// Exactly one partition resumed, preserving its quota share of the last
	// snapshot the dead worker streamed (target 1000).
	resumedMu.Lock()
	defer resumedMu.Unlock()
	wantPreserved := core.PartitionWindows(1000, cfg.Walkers, asns[0].Lo, asns[0].Hi)
	if len(resumed) != 1 || resumed[0] != wantPreserved {
		t.Errorf("resumed windows %v, want [%d]", resumed, wantPreserved)
	}
}

// TestDistributedLocalFailover exhausts remote retries against a dead peer
// and asserts the coordinator finishes the partition locally, still
// byte-identical.
func TestDistributedLocalFailover(t *testing.T) {
	g := testGraph()
	cfg := core.Config{K: 3, D: 1, Walkers: 3, Seed: 7}
	const n = 1500

	want, err := core.NewEstimator(access.NewGraphClient(g), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := want.Run(n)
	if err != nil {
		t.Fatal(err)
	}

	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no capacity", http.StatusTooManyRequests)
	}))
	t.Cleanup(dead.Close)

	finals, err := Run(t.Context(), Options{
		Peers:       []string{dead.URL},
		Retries:     2,
		Backoff:     time.Millisecond,
		LocalClient: func() access.Client { return access.NewGraphClient(g) },
	}, PartitionAssignments(Assignment{
		Graph: "test", Meta: metaOf(g), Single: &cfg, Budget: n, Every: 500,
	}, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := mergeFinals(t, finals); !reflect.DeepEqual(got, wantRes) {
		t.Errorf("local-failover result differs from local run")
	}
}

// TestDistributedStall asserts the stream watchdog abandons a worker that
// accepts the partition and then produces no frames.
func TestDistributedStall(t *testing.T) {
	g := testGraph()
	cfg := core.Config{K: 3, D: 1, Walkers: 2, Seed: 5}
	const n = 1000

	stuck := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.(http.Flusher).Flush()
		<-r.Context().Done() // accept, then never send a frame
	}))
	t.Cleanup(stuck.Close)

	want, err := core.NewEstimator(access.NewGraphClient(g), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := want.Run(n)
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	finals, err := Run(t.Context(), Options{
		Peers:        []string{stuck.URL},
		Retries:      1,
		StallTimeout: 100 * time.Millisecond,
		LocalClient:  func() access.Client { return access.NewGraphClient(g) },
	}, PartitionAssignments(Assignment{
		Graph: "test", Meta: metaOf(g), Single: &cfg, Budget: n, Every: 0,
	}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("stalled stream took %s to abandon", elapsed)
	}
	if got := mergeFinals(t, finals); !reflect.DeepEqual(got, wantRes) {
		t.Errorf("post-stall result differs from local run")
	}
}

// TestDistributedMulti runs the shared-walk multi-size engine through the
// full worker/coordinator path.
func TestDistributedMulti(t *testing.T) {
	g := testGraph()
	cfg := core.MultiConfig{Sizes: []int{3, 4}, D: 2, CSS: true, Walkers: 4, Seed: 41}
	const n, every = 2000, 500

	local, err := core.NewMultiEstimator(access.NewGraphClient(g), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.Run(n)
	if err != nil {
		t.Fatal(err)
	}

	peers := startWorkers(t, g, 2)
	finals, err := Run(t.Context(), Options{Peers: peers}, PartitionAssignments(Assignment{
		Graph: "test", Meta: metaOf(g), Multi: &cfg, Budget: n, Every: every,
	}, 2))
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]*core.MultiEnsembleState, len(finals))
	for i, b := range finals {
		if parts[i], err = core.DecodeMultiEnsembleState(b); err != nil {
			t.Fatal(err)
		}
	}
	combined, err := core.CombineMultiPartitionStates(parts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := combined.MergedResult()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("distributed multi result differs from local run:\n got %+v\nwant %+v", got, want)
	}
}

// TestCoordinatorResume covers coordinator crash recovery: a full-ensemble
// snapshot sliced into per-partition resume blobs completes to the same
// bytes, and OnResume sums to exactly the snapshot's windows.
func TestCoordinatorResume(t *testing.T) {
	g := testGraph()
	cfg := core.Config{K: 4, D: 2, CSS: true, Walkers: 5, Seed: 3}
	const n, every, crashAt = 3000, 500, 1500

	local, err := core.NewEstimator(access.NewGraphClient(g), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var blob []byte
	want, err := local.RunCheckpoints(n, every, func(step int, _ []float64) {
		if step == crashAt {
			blob = local.Snapshot().Encode()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := core.DecodeEnsembleState(blob)
	if err != nil {
		t.Fatal(err)
	}

	asns := PartitionAssignments(Assignment{
		Graph: "test", Meta: metaOf(g), Single: &cfg, Budget: n, Every: every,
	}, 3)
	for _, asn := range asns {
		sl, err := full.Slice(asn.Lo, asn.Hi)
		if err != nil {
			t.Fatal(err)
		}
		asn.Resume = sl.Encode()
	}

	var resumedTotal atomic.Int64
	peers := startWorkers(t, g, 2)
	finals, err := Run(t.Context(), Options{
		Peers:    peers,
		OnResume: func(preserved int) { resumedTotal.Add(int64(preserved)) },
	}, asns)
	if err != nil {
		t.Fatal(err)
	}
	if got := mergeFinals(t, finals); !reflect.DeepEqual(got, want) {
		t.Errorf("resumed distributed result differs from local run")
	}
	if got := resumedTotal.Load(); got != crashAt {
		t.Errorf("resumed windows %d, want %d", got, crashAt)
	}
}

// TestWorkerRejects pins the worker's up-front status codes.
func TestWorkerRejects(t *testing.T) {
	g := testGraph()
	srv := httptest.NewServer(&Handler{Lookup: lookupFor(g, "test")})
	t.Cleanup(srv.Close)

	cfg := core.Config{K: 3, D: 1, Seed: 1}
	good := Assignment{Graph: "test", Meta: metaOf(g), Single: &cfg, Budget: 10, Lo: 0, Hi: 1}

	post := func(body []byte) int {
		t.Helper()
		resp, err := http.Post(srv.URL, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := post([]byte("garbage")); code != http.StatusBadRequest {
		t.Errorf("malformed assignment: status %d, want 400", code)
	}
	unknown := good
	unknown.Graph = "nope"
	if code := post(unknown.Encode()); code != http.StatusNotFound {
		t.Errorf("unknown graph: status %d, want 404", code)
	}
	mismatch := good
	mismatch.Meta.Nodes++
	if code := post(mismatch.Encode()); code != http.StatusConflict {
		t.Errorf("meta mismatch: status %d, want 409", code)
	}
	if code := post(good.Encode()); code != http.StatusOK {
		t.Errorf("valid assignment: status %d, want 200", code)
	}

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", resp.StatusCode)
	}
}
