package access

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// Memo wraps a Client with a concurrency-safe memoizing neighbor cache: the
// first fetch of a node's neighbor list goes to the inner client, every later
// call — from any goroutine — is answered from the cache. Concurrent fetches
// of the same node are coalesced (per-node single flight), so an ensemble of
// parallel walkers crawling over an expensive boundary (the HTTP apiserver
// client, a Delayed client modeling API latency) pays for each neighborhood
// exactly once no matter how many walkers touch it.
//
// Edge probes are answered from whichever endpoint's list is already cached,
// and otherwise charge a fetch of u's list — the strategy a polite crawler
// uses instead of a dedicated edge endpoint. This changes the inner call mix
// (HasEdge on the inner client is never used); wrap a Counting client
// *inside* the Memo to measure the de-duplicated crawl cost, or outside to
// measure the walkers' raw demand.
type Memo struct {
	inner  Client
	shards [memoShards]memoShard

	lookups atomic.Int64
	fetches atomic.Int64
}

const memoShards = 64

type memoShard struct {
	mu sync.Mutex
	m  map[int32]*memoEntry
}

type memoEntry struct {
	once sync.Once
	done atomic.Bool
	ns   []int32
}

// NewMemo wraps inner. The inner client must be safe for concurrent use if
// the Memo is shared across goroutines (all clients in this package and in
// internal/apiserver are).
func NewMemo(inner Client) *Memo {
	c := &Memo{inner: inner}
	for i := range c.shards {
		c.shards[i].m = make(map[int32]*memoEntry)
	}
	return c
}

// MemoStats reports cache effectiveness.
type MemoStats struct {
	// Lookups counts neighbor-list resolutions requested by callers.
	Lookups int64
	// InnerFetches counts neighbor lists actually fetched from the inner
	// client — the de-duplicated crawl footprint.
	InnerFetches int64
}

// Stats returns a snapshot of the cache counters.
func (c *Memo) Stats() MemoStats {
	return MemoStats{Lookups: c.lookups.Load(), InnerFetches: c.fetches.Load()}
}

func (c *Memo) shard(v int32) *memoShard { return &c.shards[uint32(v)%memoShards] }

// neighbors resolves v's neighbor list, fetching it from the inner client at
// most once across all goroutines. A panicking inner fetch (crawl clients
// report transport failures that way) must not poison the cache: the failed
// entry is dropped so a later caller retries, and goroutines that were
// coalesced onto the failed fetch panic too instead of mistaking the nil
// slice for a degree-0 node.
func (c *Memo) neighbors(v int32) []int32 {
	c.lookups.Add(1)
	sh := c.shard(v)
	sh.mu.Lock()
	e, ok := sh.m[v]
	if !ok {
		e = &memoEntry{}
		sh.m[v] = e
	}
	sh.mu.Unlock()
	e.once.Do(func() {
		defer func() {
			if !e.done.Load() { // fetch panicked: un-cache the poisoned entry
				sh.mu.Lock()
				if sh.m[v] == e {
					delete(sh.m, v)
				}
				sh.mu.Unlock()
			}
		}()
		c.fetches.Add(1)
		e.ns = c.inner.Neighbors(v)
		e.done.Store(true)
	})
	if !e.done.Load() {
		panic(fmt.Sprintf("access: memoized fetch of node %d failed in another goroutine", v))
	}
	return e.ns
}

// cached returns v's neighbor list only if it is already fully fetched.
func (c *Memo) cachedList(v int32) ([]int32, bool) {
	sh := c.shard(v)
	sh.mu.Lock()
	e, ok := sh.m[v]
	sh.mu.Unlock()
	if ok && e.done.Load() {
		return e.ns, true
	}
	return nil, false
}

// Degree implements Client.
func (c *Memo) Degree(v int32) int { return len(c.neighbors(v)) }

// Neighbors implements Client.
func (c *Memo) Neighbors(v int32) []int32 { return c.neighbors(v) }

// Neighbor implements Client.
func (c *Memo) Neighbor(v int32, i int) int32 { return c.neighbors(v)[i] }

// HasEdge implements Client, answering from cached neighbor lists when
// either endpoint is present and otherwise fetching u's list.
func (c *Memo) HasEdge(u, v int32) bool {
	if ns, ok := c.cachedList(u); ok {
		return containsSorted(ns, v)
	}
	if ns, ok := c.cachedList(v); ok {
		return containsSorted(ns, u)
	}
	return containsSorted(c.neighbors(u), v)
}

// RandomNode implements Client.
func (c *Memo) RandomNode(rng *rand.Rand) int32 { return c.inner.RandomNode(rng) }

// containsSorted reports whether the sorted list ns contains v.
func containsSorted(ns []int32, v int32) bool {
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}
