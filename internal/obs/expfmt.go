package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Registry in the Prometheus text exposition format,
// version 0.0.4: per family a `# HELP` line (backslash and newline
// escaped), a `# TYPE` line, then one sample line per child — counters and
// gauges as `name{label="value"} v`, histograms as cumulative
// `name_bucket{...,le="bound"}` series ending in `le="+Inf"`, plus
// `name_sum` and `name_count`. Label values escape backslash, double-quote
// and newline. Families are rendered in name order and children in label
// order, so consecutive scrapes of an unchanged registry are byte-identical
// (tests diff them directly).

// ContentType is the Content-Type of the exposition format served by
// Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every family in the registry to w, running collect
// hooks first so pull-style gauges are current.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	collectors := append([]func(){}, r.collectors...)
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	for _, fn := range collectors {
		fn()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		children := f.snapshot()
		if len(children) == 0 {
			continue
		}
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteByte('\n')
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ)
		bw.WriteByte('\n')
		for _, ch := range children {
			switch f.typ {
			case typeCounter:
				writeSample(bw, f.name, f.labels, ch.values, "", "", formatInt(ch.c.Value()))
			case typeGauge:
				writeSample(bw, f.name, f.labels, ch.values, "", "", formatInt(ch.g.Value()))
			case typeHistogram:
				snap := ch.h.Snapshot()
				for i, bound := range snap.Bounds {
					writeSample(bw, f.name+"_bucket", f.labels, ch.values,
						"le", formatFloat(bound), formatInt(snap.Cumulative[i]))
				}
				writeSample(bw, f.name+"_bucket", f.labels, ch.values,
					"le", "+Inf", formatInt(snap.Count))
				writeSample(bw, f.name+"_sum", f.labels, ch.values, "", "", formatFloat(snap.Sum))
				writeSample(bw, f.name+"_count", f.labels, ch.values, "", "", formatInt(snap.Count))
			}
		}
	}
	return bw.Flush()
}

// Handler serves the exposition over HTTP (GET /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		w.WriteHeader(http.StatusOK)
		_ = r.WriteText(w)
	})
}

// writeSample renders one line: name{labels...[,extraName="extraValue"]} value.
func writeSample(bw *bufio.Writer, name string, labels, values []string, extraName, extraValue, sample string) {
	bw.WriteString(name)
	if len(labels) > 0 || extraName != "" {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(values[i]))
			bw.WriteByte('"')
		}
		if extraName != "" {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(extraName)
			bw.WriteString(`="`)
			bw.WriteString(extraValue) // bucket bounds never need escaping
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(sample)
	bw.WriteByte('\n')
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double-quote and newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatInt(v int64) string {
	return strconv.FormatInt(v, 10)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
