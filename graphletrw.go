// Package graphletrw is the public API of this repository: a from-scratch Go
// implementation of "A General Framework for Estimating Graphlet Statistics
// via Random Walk" (Chen, Li, Wang, Lui — VLDB 2016, arXiv:1603.07504).
//
// The framework estimates the concentration of k-node graphlets (k = 3, 4, 5)
// of a graph that can only be crawled through an API, by re-weighting samples
// collected from l = k-d+1 consecutive steps of a random walk on the d-node
// subgraph relationship graph G(d). The walk order d is the framework's
// tuning knob: d = k-1 recovers PSRW, d = k recovers SRW-on-G(k), and small d
// (the paper's recommendation: d = 1 for 3-node graphlets, d = 2 for 4- and
// 5-node) is both faster and more accurate. Two optimizations — corresponding
// state sampling (CSS) and the non-backtracking walk (NB) — further reduce
// error.
//
// Quick start:
//
//	g, _ := graphletrw.LoadGraph("graph.txt")         // or build one
//	client := graphletrw.NewClient(g)                  // restricted access
//	res, _ := graphletrw.Estimate(client, graphletrw.Config{
//		K: 4, D: 2, CSS: true, Seed: 1, Walkers: 8,
//	}, 20000)
//	fmt.Println(res.Concentration())                   // ĉ⁴ per type
//
// Estimation runs on a layered engine: a Config.Walkers-sized ensemble of
// independent walkers splits the step budget, runs concurrently over the
// shared (concurrency-safe) client, and merges the unbiased per-walker
// accumulators by summation (Result.Merge) — deterministically, so equal
// Config and Seed reproduce byte-identical results at any GOMAXPROCS.
//
// See the examples directory for runnable programs and README.md for the
// package layout and the index of every reproduced table and figure.
package graphletrw

import (
	"io"
	"math/rand"

	"repro/internal/access"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/graphlet"
	"repro/internal/kernel"
	"repro/internal/stats"
)

// Graph is an immutable undirected simple graph with sorted adjacency.
type Graph = graph.Graph

// Builder accumulates edges into a Graph.
type Builder = graph.Builder

// Client is the restricted-access crawl interface used by all walks.
type Client = access.Client

// CountingClient wraps a Client with API-call accounting.
type CountingClient = access.Counting

// Config selects a method within the framework (walk order, CSS, NB).
type Config = core.Config

// Result holds the outcome of an estimation run.
type Result = core.Result

// Graphlet describes one of the catalog's subgraph patterns.
type Graphlet = graphlet.Graphlet

// NewBuilder returns a Builder for a graph with at least n nodes.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// LoadGraph reads a whitespace-separated edge list from a file and returns
// its graph (node IDs compacted; comments with '#'/'%' skipped).
func LoadGraph(path string) (*Graph, error) { return graph.LoadEdgeList(path) }

// ReadGraph parses an edge list from a reader.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// SaveGraph writes g to path in the .gcsr binary CSR format (magic/version
// header, checksummed little-endian off/adj arrays). Packed graphs load in
// milliseconds via OpenGraph — zero-copy mmap'd where the platform allows —
// instead of re-parsing an edge list; cmd/graphlet-pack is the CLI wrapper.
func SaveGraph(path string, g *Graph) error { return graph.Save(path, g) }

// OpenGraph opens a graph file in the named format: "edgelist" (text "u v"
// lines), "gcsr" (binary CSR, opened zero-copy via mmap where available), or
// "auto"/"" (detect by extension, then magic bytes). Call Close on the
// returned graph when done with an mmap-backed one.
func OpenGraph(path, format string) (*Graph, error) {
	f, err := graph.ParseFormat(format)
	if err != nil {
		return nil, err
	}
	return graph.OpenFile(path, f)
}

// LargestComponent extracts the largest connected component, as the paper's
// preprocessing does; the second result maps new node IDs to old ones.
func LargestComponent(g *Graph) (*Graph, []int32) { return graph.LargestComponent(g) }

// NewClient exposes an in-memory graph through the restricted-access
// interface.
func NewClient(g *Graph) Client { return access.NewGraphClient(g) }

// NewCountingClient wraps a client with API-call accounting; numNodes sizes
// the unique-node tracking.
func NewCountingClient(c Client, numNodes int) *CountingClient {
	return access.NewCounting(c, numNodes)
}

// MemoClient is a concurrency-safe memoizing neighbor-cache decorator: an
// ensemble of parallel walkers sharing one MemoClient fetches each
// neighborhood from the inner client exactly once (per-node single flight).
type MemoClient = access.Memo

// NewMemoClient wraps c with the shared memoizing neighbor cache. Use it
// when running Config.Walkers > 1 over an expensive boundary (the HTTP crawl
// client, a latency-modeling wrapper) so concurrent walkers never re-fetch a
// neighbor list.
func NewMemoClient(c Client) *MemoClient { return access.NewMemo(c) }

// NewEstimator builds a reusable estimator for the given method.
func NewEstimator(c Client, cfg Config) (*core.Estimator, error) {
	return core.NewEstimator(c, cfg)
}

// MultiConfig configures joint estimation of several graphlet sizes from a
// single walk (the MSS idea of [36] generalized to this framework).
type MultiConfig = core.MultiConfig

// MultiResult maps each requested size to its Result.
type MultiResult = core.MultiResult

// EstimateAll estimates the concentrations of several graphlet sizes from
// one shared random walk on G(d) — one crawl budget, all sizes.
func EstimateAll(c Client, cfg MultiConfig, steps int) (*MultiResult, error) {
	me, err := core.NewMultiEstimator(c, cfg)
	if err != nil {
		return nil, err
	}
	return me.Run(steps)
}

// Estimate runs the framework for the given number of random-walk steps and
// returns concentration estimates (paper Algorithm 1 with the Config's
// optimizations).
func Estimate(c Client, cfg Config, steps int) (*Result, error) {
	est, err := core.NewEstimator(c, cfg)
	if err != nil {
		return nil, err
	}
	return est.Run(steps)
}

// Catalog returns all k-node graphlets in paper order (k = 3, 4, 5).
func Catalog(k int) []Graphlet { return graphlet.Catalog(k) }

// Alpha returns the state-corresponding coefficient α^k_id for SRW(d).
func Alpha(k, d, id int) int64 { return graphlet.Alpha(k, d, id) }

// ExactCounts enumerates the exact k-node graphlet counts of an in-memory
// graph (ESU, parallel).
func ExactCounts(g *Graph, k int) []int64 { return exact.CountESU(g, k) }

// ExactConcentration returns the exact concentration vector of size-k
// graphlets.
func ExactConcentration(g *Graph, k int) []float64 {
	return exact.Concentrations(ExactCounts(g, k))
}

// ClusteringCoefficient returns the exact global clustering coefficient
// 3C₂/(C₁+3C₂).
func ClusteringCoefficient(g *Graph) float64 { return exact.GlobalClusteringCoefficient(g) }

// TwoR returns 2|R(d)| for d = 1, 2 — the constant converting framework
// weights into unbiased count estimates (Equation 4).
func TwoR(g *Graph, d int) float64 { return core.TwoR(g, d) }

// NRMSE is the paper's accuracy metric over independent trial estimates.
func NRMSE(estimates []float64, truth float64) float64 { return stats.NRMSE(estimates, truth) }

// Similarity is the §6.4 graphlet-kernel similarity: the cosine of two
// concentration vectors.
func Similarity(c1, c2 []float64) float64 { return kernel.Cosine(c1, c2) }

// WedgeSampler exposes the wedge-sampling baseline [32] (full access).
type WedgeSampler = baseline.WedgeSampler

// NewWedgeSampler preprocesses g for wedge sampling.
func NewWedgeSampler(g *Graph) *WedgeSampler { return baseline.NewWedgeSampler(g) }

// PathSampler exposes the 3-path-sampling baseline [14] (full access).
type PathSampler = baseline.PathSampler

// NewPathSampler preprocesses g for 3-path sampling.
func NewPathSampler(g *Graph) *PathSampler { return baseline.NewPathSampler(g) }

// NewWedgeMHRW starts the adapted wedge sampler of Algorithm 4 (restricted
// access).
func NewWedgeMHRW(c Client, rng *rand.Rand) *baseline.WedgeMHRW {
	return baseline.NewWedgeMHRW(c, rng)
}
