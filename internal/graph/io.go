package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list ("u v" per line).
// Lines starting with '#' or '%' are comments. Node IDs may be arbitrary
// non-negative integers; they are compacted to a dense range.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	remap := make(map[int64]int32)
	id := func(x int64) int32 {
		if v, ok := remap[x]; ok {
			return v
		}
		v := int32(len(remap))
		remap[x] = v
		return v
	}
	b := NewBuilder(0)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected two fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		b.AddEdge(id(u), id(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// LoadEdgeList reads an edge-list file from disk.
func LoadEdgeList(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// WriteEdgeList writes the graph as "u v" lines (u < v).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	var werr error
	g.Edges(func(u, v int32) bool {
		if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// SaveEdgeList writes the graph to a file.
func SaveEdgeList(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
