package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/access"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
)

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / want
}

func TestWedgeSamplerTriangles(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"fig1": gen.PaperFigure1(),
		"hk":   gen.HolmeKim(200, 3, 0.6, 1),
		"ba":   gen.BarabasiAlbert(300, 3, 2),
	}
	rng := rand.New(rand.NewSource(1))
	for name, g := range graphs {
		s := NewWedgeSampler(g)
		res := s.Sample(200000, rng)
		wantTri := float64(exact.Triangles(g))
		if wantTri == 0 {
			continue
		}
		if re := relErr(res.TriangleCount(), wantTri); re > 0.05 {
			t.Errorf("%s: triangle estimate %.1f, want %.1f (re=%.3f)", name, res.TriangleCount(), wantTri, re)
		}
		counts := exact.ThreeNodeCounts(g)
		conc := exact.Concentrations(counts)
		got := res.Concentration()
		if re := relErr(got[1], conc[1]); re > 0.05 {
			t.Errorf("%s: c32 estimate %.4f, want %.4f", name, got[1], conc[1])
		}
		wantCC := exact.GlobalClusteringCoefficient(g)
		if re := relErr(res.GlobalClustering(), wantCC); re > 0.05 {
			t.Errorf("%s: clustering %.4f, want %.4f", name, res.GlobalClustering(), wantCC)
		}
	}
}

func TestWedgeSamplerTotalWedges(t *testing.T) {
	g := gen.Star(10) // C(9,2) = 36 wedges, all centered at 0
	s := NewWedgeSampler(g)
	if s.TotalWedges != 36 {
		t.Errorf("TotalWedges = %f, want 36", s.TotalWedges)
	}
	rng := rand.New(rand.NewSource(2))
	res := s.Sample(1000, rng)
	if res.Closed != 0 {
		t.Errorf("star has closed wedges: %d", res.Closed)
	}
	if re := relErr(res.WedgeCount(), 36); re > 1e-9 {
		t.Errorf("WedgeCount = %f, want 36", res.WedgeCount())
	}
}

func TestWedgeResultEmpty(t *testing.T) {
	var r WedgeResult
	if r.TriangleCount() != 0 || r.WedgeCount() != 0 {
		t.Error("empty result should be zero")
	}
	c := r.Concentration()
	if c[0] != 0 || c[1] != 0 {
		t.Error("empty concentration should be zeros")
	}
}

func TestPathSamplerCounts(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"hk": gen.HolmeKim(150, 3, 0.6, 3),
		"ba": gen.BarabasiAlbert(200, 3, 4),
	}
	rng := rand.New(rand.NewSource(5))
	for name, g := range graphs {
		s := NewPathSampler(g)
		res := s.Sample(400000, rng)
		want := exact.CountESU(g, 4)
		got := res.Counts()
		for i := range want {
			if want[i] < 50 {
				continue // too rare for this sample budget
			}
			if re := relErr(got[i], float64(want[i])); re > 0.15 {
				t.Errorf("%s type %d: got %.1f, want %d (re=%.3f)", name, i+1, got[i], want[i], re)
			}
		}
		conc := res.Concentration()
		sum := 0.0
		for _, c := range conc {
			sum += c
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: concentration sums to %f", name, sum)
		}
	}
}

func TestPathSamplerTotalPaths(t *testing.T) {
	// P4 (path on 4 nodes): edges (0,1),(1,2),(2,3); τ = 1·1? degrees
	// 1,2,2,1: τ(0,1)=(0)(1)=0, τ(1,2)=1, τ(2,3)=0 ⇒ W=1.
	g := gen.Path(4)
	s := NewPathSampler(g)
	if s.TotalPaths != 1 {
		t.Fatalf("TotalPaths = %f, want 1", s.TotalPaths)
	}
	rng := rand.New(rand.NewSource(6))
	res := s.Sample(1000, rng)
	got := res.Counts()
	if got[0] < 0.99 || got[0] > 1.01 {
		t.Errorf("4-path count = %f, want 1", got[0])
	}
}

func TestWedgeMHRW(t *testing.T) {
	g := gen.HolmeKim(300, 3, 0.6, 7)
	client := access.NewGraphClient(g)
	rng := rand.New(rand.NewSource(8))
	w := NewWedgeMHRW(client, rng)
	res := w.Run(400000)
	conc := exact.Concentrations(exact.ThreeNodeCounts(g))
	got := res.Concentration()
	if re := relErr(got[1], conc[1]); re > 0.10 {
		t.Errorf("c32 = %.4f, want %.4f (re=%.3f)", got[1], conc[1], re)
	}
	if re := relErr(got[0], conc[0]); re > 0.10 {
		t.Errorf("c31 = %.4f, want %.4f", got[0], conc[0])
	}
}

func TestWedgeMHRWAPICost(t *testing.T) {
	// Each MHRW step touches three nodes' neighborhoods (Algorithm 4): the
	// per-step neighbor-call count must be >= 3x a plain SRW step's.
	g := gen.BarabasiAlbert(500, 3, 9)
	client := access.NewCounting(access.NewGraphClient(g), g.NumNodes())
	rng := rand.New(rand.NewSource(10))
	w := NewWedgeMHRW(client, rng)
	client.Reset()
	w.Run(1000)
	st := client.Stats()
	if st.NeighborCalls < 3000 {
		t.Errorf("MHRW neighbor calls = %d for 1000 steps, want >= 3000", st.NeighborCalls)
	}
}

func TestMHRWEmptyResult(t *testing.T) {
	var r MHRWResult
	c := r.Concentration()
	if c[0] != 0 || c[1] != 0 {
		t.Error("empty MHRW concentration should be zeros")
	}
}

// TestMHRWStationary verifies the MH chain's stationary distribution is
// ∝ C(d_v, 2) by visit counting on a small graph.
func TestMHRWStationary(t *testing.T) {
	g := gen.PaperFigure1() // degrees 3,2,3,2 -> weights 3,1,3,1
	client := access.NewGraphClient(g)
	rng := rand.New(rand.NewSource(12))
	w := NewWedgeMHRW(client, rng)
	visits := make([]float64, g.NumNodes())
	const steps = 300000
	for i := 0; i < steps; i++ {
		// One MH transition per Run(1) call; count the post-move position.
		w.Run(1)
		visits[w.cur]++
	}
	weights := []float64{3, 1, 3, 1}
	var tot float64 = 8
	for v := range visits {
		want := weights[v] / tot
		got := visits[v] / steps
		if math.Abs(got-want) > 0.02 {
			t.Errorf("node %d visited %.4f, want %.4f", v, got, want)
		}
	}
}
