package walk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/access"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestStateOf(t *testing.T) {
	s := StateOf(5, 1, 3)
	if s.Len() != 3 || s.Node(0) != 1 || s.Node(1) != 3 || s.Node(2) != 5 {
		t.Fatalf("StateOf(5,1,3) = %v", s)
	}
	if !s.Contains(3) || s.Contains(2) {
		t.Error("Contains wrong")
	}
	if s.String() != "(1,3,5)" {
		t.Errorf("String = %q", s.String())
	}
}

func TestStateOfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate nodes")
		}
	}()
	StateOf(1, 1)
}

func TestStateShared(t *testing.T) {
	a := StateOf(1, 2, 3)
	b := StateOf(2, 3, 4)
	if a.Shared(b) != 2 {
		t.Errorf("Shared = %d, want 2", a.Shared(b))
	}
	if a.Shared(a) != 3 {
		t.Errorf("self Shared = %d", a.Shared(a))
	}
}

func TestStateReplaceOne(t *testing.T) {
	s := StateOf(1, 2, 3).ReplaceOne(2, 7)
	want := StateOf(1, 3, 7)
	if s != want {
		t.Errorf("ReplaceOne = %v, want %v", s, want)
	}
}

// Property: StateOf sorts any distinct node set and Shared is symmetric.
func TestStatePropertyQuick(t *testing.T) {
	f := func(a, b, c, d uint16, e2, f2, g2 uint16) bool {
		n1 := dedup([]int32{int32(a), int32(b), int32(c)})
		n2 := dedup([]int32{int32(d), int32(e2), int32(f2), int32(g2)})
		if len(n1) == 0 || len(n2) == 0 {
			return true
		}
		s1 := StateOf(n1...)
		s2 := StateOf(n2...)
		for i := 1; i < s1.Len(); i++ {
			if s1.Node(i-1) >= s1.Node(i) {
				return false
			}
		}
		return s1.Shared(s2) == s2.Shared(s1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func dedup(in []int32) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, x := range in {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// bruteG_d builds the full G(d) of g by enumeration, returning for each
// state its neighbor set. Used as ground truth for Space implementations.
func bruteGd(g *graph.Graph, d int) map[State][]State {
	var states []State
	var nodes []int32
	n := g.NumNodes()
	// Enumerate all d-subsets and keep the connected ones.
	var rec func(start int)
	rec = func(start int) {
		if len(nodes) == d {
			if inducedConnected(g, nodes) {
				states = append(states, StateOf(append([]int32(nil), nodes...)...))
			}
			return
		}
		for v := start; v < n; v++ {
			nodes = append(nodes, int32(v))
			rec(v + 1)
			nodes = nodes[:len(nodes)-1]
		}
	}
	rec(0)
	adj := make(map[State][]State, len(states))
	for _, s := range states {
		for _, u := range states {
			if s == u {
				continue
			}
			if d == 1 {
				if g.HasEdge(s.Node(0), u.Node(0)) {
					adj[s] = append(adj[s], u)
				}
			} else if s.Shared(u) == d-1 {
				adj[s] = append(adj[s], u)
			}
		}
	}
	return adj
}

func inducedConnected(g *graph.Graph, nodes []int32) bool {
	if len(nodes) == 0 {
		return false
	}
	seen := map[int32]bool{nodes[0]: true}
	queue := []int32{nodes[0]}
	in := map[int32]bool{}
	for _, v := range nodes {
		in[v] = true
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, u := range nodes {
			if in[u] && !seen[u] && g.HasEdge(v, u) {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	return len(seen) == len(nodes)
}

func TestSpaceDegreesMatchBruteForce(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"fig1":     gen.PaperFigure1(),
		"ba":       gen.BarabasiAlbert(30, 2, 1),
		"lollipop": gen.Lollipop(5, 3),
		"cycle":    gen.Cycle(8),
	}
	for name, g := range graphs {
		c := access.NewGraphClient(g)
		for d := 1; d <= 4; d++ {
			brute := bruteGd(g, d)
			sp := NewSpace(c, d)
			for s, ns := range brute {
				if got := sp.StateDegree(s); got != len(ns) {
					t.Errorf("%s d=%d state %v: degree %d, want %d", name, d, s, got, len(ns))
				}
			}
		}
	}
}

func TestSpaceDNeighborsMatchBruteForce(t *testing.T) {
	g := gen.BarabasiAlbert(25, 2, 3)
	c := access.NewGraphClient(g)
	for d := 3; d <= 4; d++ {
		brute := bruteGd(g, d)
		sp := newSpaceD(c, d)
		for s, want := range brute {
			got := sp.neighbors(s)
			if len(got) != len(want) {
				t.Fatalf("d=%d state %v: %d neighbors, want %d", d, s, len(got), len(want))
			}
			wantSet := map[State]bool{}
			for _, u := range want {
				wantSet[u] = true
			}
			for _, u := range got {
				if !wantSet[u] {
					t.Fatalf("d=%d state %v: unexpected neighbor %v", d, s, u)
				}
			}
		}
	}
}

// TestRandomNeighborUniform checks empirically that RandomNeighbor is uniform
// over the brute-force neighbor set, for each d.
func TestRandomNeighborUniform(t *testing.T) {
	g := gen.PaperFigure1()
	c := access.NewGraphClient(g)
	rng := rand.New(rand.NewSource(5))
	for d := 1; d <= 3; d++ {
		brute := bruteGd(g, d)
		sp := NewSpace(c, d)
		for s, ns := range brute {
			if len(ns) == 0 {
				continue
			}
			counts := map[State]int{}
			const trials = 20000
			for i := 0; i < trials; i++ {
				counts[sp.RandomNeighbor(s, rng)]++
			}
			if len(counts) != len(ns) {
				t.Fatalf("d=%d state %v: sampled %d distinct neighbors, want %d", d, s, len(counts), len(ns))
			}
			want := 1.0 / float64(len(ns))
			for u, cnt := range counts {
				frac := float64(cnt) / trials
				if frac < want*0.85 || frac > want*1.15 {
					t.Errorf("d=%d state %v neighbor %v: freq %.4f, want %.4f", d, s, u, frac, want)
				}
			}
		}
	}
}

// TestSRWStationaryDistribution: on a connected non-bipartite graph, the SRW
// visit frequency of node v converges to deg(v)/2|E|.
func TestSRWStationaryDistribution(t *testing.T) {
	g := gen.PaperFigure1() // degrees 3,2,3,2; 2|E| = 10
	c := access.NewGraphClient(g)
	rng := rand.New(rand.NewSource(11))
	w := New(NewSpace(c, 1), false, rng)
	counts := make([]int, g.NumNodes())
	const steps = 400000
	for i := 0; i < steps; i++ {
		counts[w.Step().Node(0)]++
	}
	for v := 0; v < g.NumNodes(); v++ {
		want := float64(g.Degree(int32(v))) / float64(2*g.NumEdges())
		got := float64(counts[v]) / steps
		if got < want-0.01 || got > want+0.01 {
			t.Errorf("node %d visit freq %.4f, want %.4f", v, got, want)
		}
	}
}

// TestNBSRWPreservesStationary: NB-SRW has the same stationary distribution
// as SRW (paper §4.2).
func TestNBSRWPreservesStationary(t *testing.T) {
	g := gen.BarabasiAlbert(40, 2, 7)
	c := access.NewGraphClient(g)
	rng := rand.New(rand.NewSource(13))
	w := New(NewSpace(c, 1), true, rng)
	counts := make([]int, g.NumNodes())
	const steps = 800000
	for i := 0; i < steps; i++ {
		counts[w.Step().Node(0)]++
	}
	for v := 0; v < g.NumNodes(); v++ {
		want := float64(g.Degree(int32(v))) / float64(2*g.NumEdges())
		got := float64(counts[v]) / steps
		if got < want-0.015 || got > want+0.015 {
			t.Errorf("node %d visit freq %.4f, want %.4f", v, got, want)
		}
	}
}

// TestSRW2StationaryDistribution: SRW on G(2) visits each edge-state with
// probability deg_{G(2)}/2|R(2)| and therefore each edge uniformly under the
// expanded chain's pairwise view; here we check the state frequencies.
func TestSRW2StationaryDistribution(t *testing.T) {
	g := gen.PaperFigure1()
	c := access.NewGraphClient(g)
	rng := rand.New(rand.NewSource(17))
	sp := NewSpace(c, 2)
	brute := bruteGd(g, 2)
	var twoR int
	for _, ns := range brute {
		twoR += len(ns)
	}
	w := New(sp, false, rng)
	counts := map[State]int{}
	const steps = 400000
	for i := 0; i < steps; i++ {
		counts[w.Step()]++
	}
	for s, ns := range brute {
		want := float64(len(ns)) / float64(twoR)
		got := float64(counts[s]) / steps
		if got < want-0.01 || got > want+0.01 {
			t.Errorf("state %v freq %.4f, want %.4f", s, got, want)
		}
	}
}

// TestNBSRWNeverBacktracks verifies the defining property when degree > 1.
func TestNBSRWNeverBacktracks(t *testing.T) {
	g := gen.BarabasiAlbert(50, 3, 9) // min degree 3 => never forced back
	c := access.NewGraphClient(g)
	rng := rand.New(rand.NewSource(19))
	w := New(NewSpace(c, 1), true, rng)
	prev := w.Current()
	cur := w.Step()
	for i := 0; i < 50000; i++ {
		next := w.Step()
		if next == prev {
			t.Fatalf("backtracked at step %d despite degree >= 2", i)
		}
		prev, cur = cur, next
	}
	_ = cur
}

// TestNBSRWDegreeOneBacktracks: on a path's endpoint the walk must return.
func TestNBSRWDegreeOneBacktracks(t *testing.T) {
	g := gen.Path(3) // 0-1-2
	c := access.NewGraphClient(g)
	rng := rand.New(rand.NewSource(23))
	w := NewAt(NewSpace(c, 1), StateOf(1), true, rng)
	// Step to an endpoint, then the only move is back to 1.
	s := w.Step()
	if s.Node(0) != 0 && s.Node(0) != 2 {
		t.Fatalf("unexpected step to %v", s)
	}
	s2 := w.Step()
	if s2.Node(0) != 1 {
		t.Fatalf("endpoint must backtrack to 1, got %v", s2)
	}
}

func TestWalkStepsCounter(t *testing.T) {
	g := gen.Cycle(10)
	c := access.NewGraphClient(g)
	rng := rand.New(rand.NewSource(29))
	w := New(NewSpace(c, 1), false, rng)
	w.Burn(7)
	if w.Steps() != 7 {
		t.Errorf("Steps = %d, want 7", w.Steps())
	}
}

// TestCountingClient verifies API accounting.
func TestCountingClient(t *testing.T) {
	g := gen.Cycle(10)
	c := access.NewCounting(access.NewGraphClient(g), g.NumNodes())
	rng := rand.New(rand.NewSource(31))
	w := New(NewSpace(c, 1), false, rng)
	w.Burn(100)
	st := c.Stats()
	if st.DegreeCalls == 0 || st.NeighborCalls == 0 {
		t.Errorf("no API calls recorded: %+v", st)
	}
	if st.UniqueNodes == 0 || st.UniqueNodes > 10 {
		t.Errorf("unique nodes = %d", st.UniqueNodes)
	}
	c.Reset()
	if s := c.Stats(); s.DegreeCalls != 0 || s.UniqueNodes != 0 {
		t.Errorf("reset failed: %+v", s)
	}
}

// TestRandomStateValid: initial states must induce connected subgraphs.
func TestRandomStateValid(t *testing.T) {
	g := gen.BarabasiAlbert(60, 2, 37)
	c := access.NewGraphClient(g)
	rng := rand.New(rand.NewSource(41))
	for d := 1; d <= 4; d++ {
		sp := NewSpace(c, d)
		for i := 0; i < 100; i++ {
			s := sp.RandomState(rng)
			if s.Len() != d {
				t.Fatalf("d=%d: state %v has wrong size", d, s)
			}
			var nodes []int32
			nodes = s.Nodes(nodes)
			if !inducedConnected(g, nodes) {
				t.Fatalf("d=%d: state %v not connected", d, s)
			}
		}
	}
}

// TestWalkStateResume: a walk serialized mid-trajectory (State + the RNG
// stream position) and resumed with a fast-forwarded RNG continues the
// exact trajectory of the uninterrupted walk, for both SRW and NB-SRW at
// every supported order.
func TestWalkStateResume(t *testing.T) {
	g := gen.BarabasiAlbert(80, 3, 19)
	c := access.NewGraphClient(g)
	for d := 1; d <= 4; d++ {
		for _, nb := range []bool{false, true} {
			rng := NewRand(int64(100*d) + 7)
			w := New(NewSpace(c, d), nb, rng.Rand)
			for i := 0; i < 50; i++ {
				w.Step()
			}
			st := w.State()
			pos := rng.Pos()

			var ref []State
			for i := 0; i < 50; i++ {
				ref = append(ref, w.Step())
			}

			rng2 := NewRandAt(int64(100*d)+7, pos)
			w2 := Resume(NewSpace(c, d), st, nb, rng2.Rand)
			if w2.Current() != st.Cur || w2.Steps() != 50 {
				t.Fatalf("d=%d nb=%v: resumed walk at %v/%d, want %v/50", d, nb, w2.Current(), w2.Steps(), st.Cur)
			}
			for i := 0; i < 50; i++ {
				if got := w2.Step(); got != ref[i] {
					t.Fatalf("d=%d nb=%v: resumed step %d = %v, want %v", d, nb, i, got, ref[i])
				}
			}
		}
	}
}
