package walk

import "math/rand"

// Rand is a math/rand.Rand whose stream position is observable and seekable:
// every low-level draw from the underlying source is counted, so a stream can
// be snapshotted as (seed, position) and reconstructed exactly by re-seeding
// and fast-forwarding. This is what makes a random walk's state serializable
// without serializing the generator's internal state — the position is a
// stable, version-independent description of it.
//
// The counted source delegates to rand.NewSource(seed), so the values drawn
// through a Rand are byte-identical to rand.New(rand.NewSource(seed)): code
// that switches from a bare rand.Rand to a Rand reproduces its historical
// streams exactly.
type Rand struct {
	*rand.Rand
	seed int64
	src  *countingSource
}

// countingSource wraps a rand.Source64, counting draws. Int63 and Uint64 both
// advance the underlying generator by exactly one state transition, so a
// fast-forward may replay the count with either method regardless of the mix
// the original consumer used.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// NewRand returns a counted generator seeded with seed, at position 0.
func NewRand(seed int64) *Rand {
	src := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	return &Rand{Rand: rand.New(src), seed: seed, src: src}
}

// NewRandAt returns a counted generator seeded with seed and fast-forwarded
// to position pos: its future draws are identical to those of a NewRand(seed)
// that already consumed pos draws. Cost is O(pos) cheap source transitions
// (tens of nanoseconds each), which bounds resume cost by the interrupted
// run's length, not by any graph work.
func NewRandAt(seed int64, pos uint64) *Rand {
	r := NewRand(seed)
	for i := uint64(0); i < pos; i++ {
		r.src.src.Int63()
	}
	r.src.n = pos
	return r
}

// Seed returns the seed the stream was created with.
func (r *Rand) Seed() int64 { return r.seed }

// Pos returns the number of low-level draws consumed so far.
func (r *Rand) Pos() uint64 { return r.src.n }
