package journal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func reopen(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func collect(t *testing.T, l *Log) []Record {
	t.Helper()
	var recs []Record
	if err := l.Replay(func(rec Record) error {
		recs = append(recs, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return recs
}

// Appended records replay in order with type, job, time and payload intact,
// across a close/reopen cycle.
func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := reopen(t, dir, Options{})
	want := []Record{
		{Type: TypeSubmitted, Job: "j-1", Time: 100, Payload: []byte(`{"spec":1}`)},
		{Type: TypeStarted, Job: "j-1", Time: 200},
		{Type: TypeCheckpoint, Job: "j-1", Time: 300, Payload: []byte(`{"steps":50}`)},
		{Type: TypeDone, Job: "j-1", Time: 400, Payload: []byte(`{"result":true}`)},
		{Type: TypeFailed, Job: "j-2", Time: 500, Payload: []byte(`{"error":"x"}`)},
		{Type: TypeCanceled, Job: "j-3", Time: 600},
	}
	for _, rec := range want {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	check := func(recs []Record) {
		t.Helper()
		if len(recs) != len(want) {
			t.Fatalf("replayed %d records, want %d", len(recs), len(want))
		}
		for i, rec := range recs {
			w := want[i]
			if rec.Type != w.Type || rec.Job != w.Job || rec.Time != w.Time || string(rec.Payload) != string(w.Payload) {
				t.Fatalf("record %d = %+v, want %+v", i, rec, w)
			}
		}
	}
	check(collect(t, l))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l = reopen(t, dir, Options{})
	defer l.Close()
	check(collect(t, l))
}

// A zero Time is stamped at append.
func TestAppendStampsTime(t *testing.T) {
	l := reopen(t, t.TempDir(), Options{})
	defer l.Close()
	if err := l.Append(Record{Type: TypeStarted, Job: "j-1"}); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, l)
	if len(recs) != 1 || recs[0].Time == 0 {
		t.Fatalf("recs = %+v, want one time-stamped record", recs)
	}
}

// Appends rotate into new segments past the size threshold, and replay
// crosses segment boundaries in order.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l := reopen(t, dir, Options{SegmentBytes: 256})
	defer l.Close()
	const n = 64
	payload := []byte(strings.Repeat("x", 40))
	for i := 0; i < n; i++ {
		if err := l.Append(Record{Type: TypeCheckpoint, Job: fmt.Sprintf("j-%d", i), Time: int64(i + 1), Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	if segs := l.Segments(); segs < 4 {
		t.Fatalf("only %d segments after %d oversized appends", segs, n)
	}
	recs := collect(t, l)
	if len(recs) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
	for i, rec := range recs {
		if rec.Time != int64(i+1) {
			t.Fatalf("record %d out of order: time %d", i, rec.Time)
		}
	}
}

// A torn tail (partial frame from a crash mid-write) is truncated on open
// and the intact prefix survives; the log stays appendable.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l := reopen(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if err := l.Append(Record{Type: TypeSubmitted, Job: fmt.Sprintf("j-%d", i), Time: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	path := filepath.Join(dir, "seg-00000001.wal")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Half a frame: a plausible length prefix with no body behind it.
	var torn [6]byte
	binary.LittleEndian.PutUint32(torn[:4], 32)
	if _, err := f.Write(torn[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l = reopen(t, dir, Options{})
	defer l.Close()
	recs := collect(t, l)
	if len(recs) != 3 {
		t.Fatalf("replayed %d records after torn tail, want 3", len(recs))
	}
	if err := l.Append(Record{Type: TypeDone, Job: "j-9", Time: 99}); err != nil {
		t.Fatal(err)
	}
	if recs = collect(t, l); len(recs) != 4 || recs[3].Job != "j-9" {
		t.Fatalf("append after repair: %+v", recs)
	}
}

// Flipping a byte inside a fully present record is corruption, not a torn
// tail: Open must fail loudly rather than silently truncating away the
// intact records behind it. A bad segment header fails open too.
func TestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	l := reopen(t, dir, Options{})
	if err := l.Append(Record{Type: TypeSubmitted, Job: "j-1", Time: 1, Payload: []byte("payload")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: TypeDone, Job: "j-1", Time: 2}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	path := filepath.Join(dir, "seg-00000001.wal")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a payload byte of the first record: a complete frame with a
	// checksum mismatch, followed by an intact record — no crash signature.
	corrupt := append([]byte(nil), data...)
	corrupt[segHeaderSize+frameOverhead+12] ^= 0xFF
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "corrupt record") {
		t.Fatalf("open on mid-segment corruption: %v, want loud corrupt-record error", err)
	}

	if err := os.WriteFile(path, []byte("BOGUS!!!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("open succeeded on a segment with a bad header")
	}
}

// A zero-filled tail (a filesystem that extended the file before the crash
// dropped the write) is a crash signature and is truncated like a torn
// frame, keeping the intact prefix.
func TestZeroFillTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l := reopen(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if err := l.Append(Record{Type: TypeSubmitted, Job: fmt.Sprintf("j-%d", i), Time: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	path := filepath.Join(dir, "seg-00000001.wal")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 256)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l = reopen(t, dir, Options{})
	defer l.Close()
	if recs := collect(t, l); len(recs) != 3 {
		t.Fatalf("replayed %d records after zero-fill tail, want 3", len(recs))
	}
	if err := l.Append(Record{Type: TypeDone, Job: "j-9", Time: 9}); err != nil {
		t.Fatal(err)
	}
	if recs := collect(t, l); len(recs) != 4 {
		t.Fatalf("append after zero-fill repair: %d records", len(recs))
	}
}

// A compaction temporary left by a crash mid-rewrite is cleaned up on Open
// and never mistaken for a real segment.
func TestStrayCompactionTempIgnored(t *testing.T) {
	dir := t.TempDir()
	l := reopen(t, dir, Options{})
	if err := l.Append(Record{Type: TypeSubmitted, Job: "j-1", Time: 1}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// An interrupted Compact leaves the half-written target for segment 2;
	// seg-00000002.wal itself does not exist.
	tmp := filepath.Join(dir, "seg-00000002.wal.tmp")
	if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	l = reopen(t, dir, Options{})
	defer l.Close()
	if recs := collect(t, l); len(recs) != 1 || recs[0].Job != "j-1" {
		t.Fatalf("replay with stray tmp: %+v", recs)
	}
	if err := l.Append(Record{Type: TypeDone, Job: "j-1", Time: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stray compaction temp not cleaned up: %v", err)
	}
}

// Compact drops filtered records, collapses the log to one segment, and the
// survivors replay identically after reopen.
func TestCompact(t *testing.T) {
	dir := t.TempDir()
	l := reopen(t, dir, Options{SegmentBytes: 256})
	payload := []byte(strings.Repeat("y", 40))
	for i := 0; i < 40; i++ {
		typ := TypeCheckpoint
		if i%10 == 9 {
			typ = TypeDone
		}
		if err := l.Append(Record{Type: typ, Job: fmt.Sprintf("j-%d", i/10), Time: int64(i + 1), Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Segments()
	if before < 2 {
		t.Fatalf("want multiple segments before compaction, got %d", before)
	}
	if err := l.Compact(func(rec Record) bool { return rec.Type == TypeDone }); err != nil {
		t.Fatal(err)
	}
	if got := l.Segments(); got != 1 {
		t.Fatalf("segments after compact = %d, want 1", got)
	}
	recs := collect(t, l)
	if len(recs) != 4 {
		t.Fatalf("kept %d records, want 4", len(recs))
	}
	// The compacted log remains appendable and reopenable.
	if err := l.Append(Record{Type: TypeSubmitted, Job: "j-new", Time: 1000}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l = reopen(t, dir, Options{})
	defer l.Close()
	recs = collect(t, l)
	if len(recs) != 5 || recs[4].Job != "j-new" {
		t.Fatalf("after reopen: %d records, last %+v", len(recs), recs[len(recs)-1])
	}
}

// Concurrent appenders do not corrupt the log (exercised under -race).
func TestConcurrentAppend(t *testing.T) {
	l := reopen(t, t.TempDir(), Options{SegmentBytes: 512})
	defer l.Close()
	var wg sync.WaitGroup
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append(Record{Type: TypeCheckpoint, Job: fmt.Sprintf("j-%d", w), Time: int64(i + 1)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if recs := collect(t, l); len(recs) != workers*per {
		t.Fatalf("replayed %d records, want %d", len(recs), workers*per)
	}
}
